#!/usr/bin/env python3
"""Compare google-benchmark JSON output against a committed baseline.

Usage:
    bench_compare.py BASELINE CURRENT [BASELINE CURRENT ...]
                     [--time-tolerance 0.25] [--counter-tolerance 0.05]
                     [--deltas-json PATH] [--update-baselines]
    bench_compare.py --summarize DELTAS_JSON

Each (BASELINE, CURRENT) pair is a google-benchmark ``--benchmark_out``
JSON file, ideally produced with ``--benchmark_repetitions=N`` so median
aggregates are available; without aggregates the median over the raw
iteration entries is computed here.

Two families of values are gated, with separate tolerances:

  * wall time — the benchmark's ``real_time`` and any counter whose name
    looks time-like (``s_<stage>``, ``flow_seconds``). Runner-dependent, so
    the default tolerance is generous (25%), and measurements below the
    noise floor (default 1 ms) are reported but never gated: a stage that
    takes tens of microseconds jitters far more than 25% between runs
    without anything having regressed. Benchmarks matching
    ``--noisy-pattern`` (default: the multi-threaded ``process_time``
    variants, whose wall time is scheduler-bound) get the wider
    ``--noisy-time-tolerance`` instead (default 60%).
  * algorithm counters — every other user counter (probe counts, labels
    computed, cache hits, ...). These are deterministic replays of the same
    workload, so even a small growth is a real regression (default 5%).

Improvements (a value that shrank by more than the same tolerance) are
reported as such — they never fail the gate, but they are the signal to
refresh the baselines so later regressions are measured from the new level.
``--update-baselines`` copies each CURRENT file over its BASELINE path
after the comparison. ``--deltas-json`` records every per-benchmark delta
(regressions, improvements and drift alike) as structured JSON;
``--summarize`` renders such a file as a short markdown digest (used for
the CI job summary).

A benchmark present in the baseline but missing from the current run is a
failure (a silently dropped benchmark must not pass the gate); a benchmark
only in the current run is reported but does not fail. Improvements never
fail. Exit status: 0 clean, 1 regression, 2 bad invocation/input.
"""

import argparse
import json
import math
import re
import shutil
import sys
from statistics import median

TIME_LIKE_COUNTERS = ("flow_seconds",)
TIME_LIKE_PREFIXES = ("s_",)

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def is_time_like(counter_name):
    return counter_name in TIME_LIKE_COUNTERS or any(
        counter_name.startswith(p) for p in TIME_LIKE_PREFIXES
    )


def load_medians(path):
    """Returns {benchmark name: {"real_time_ns": float, "counters": {...}}}."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}")
    entries = doc.get("benchmarks", [])
    aggregates = {}
    iterations = {}
    for entry in entries:
        unit = TIME_UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
        record = {
            "real_time_ns": float(entry.get("real_time", 0.0)) * unit,
            "counters": {
                k: float(v)
                for k, v in entry.items()
                if isinstance(v, (int, float)) and not k.startswith(("real_", "cpu_"))
                and k not in ("iterations", "repetitions", "repetition_index",
                              "threads", "family_index", "per_family_instance_index")
            },
        }
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                aggregates[entry["run_name"]] = record
        else:
            iterations.setdefault(entry.get("run_name", entry["name"]), []).append(record)
    if aggregates:
        return aggregates
    # No aggregates (run without --benchmark_repetitions): take medians here.
    result = {}
    for name, records in iterations.items():
        counters = {}
        for key in records[0]["counters"]:
            counters[key] = median(r["counters"].get(key, 0.0) for r in records)
        result[name] = {
            "real_time_ns": median(r["real_time_ns"] for r in records),
            "counters": counters,
        }
    return result


def compare_value(name, what, base, cur, tolerance, deltas, gated=True):
    if base <= 0.0:
        return
    ratio = cur / base
    delta = {
        "benchmark": name,
        "metric": what,
        "baseline": base,
        "current": cur,
        "change": ratio - 1.0 if not math.isnan(ratio) else None,
        "tolerance": tolerance,
        "gated": gated,
    }
    if not gated:
        delta["status"] = "below-noise-floor" if ratio > 1.0 + tolerance else "ok"
    elif math.isnan(ratio) or ratio > 1.0 + tolerance:
        delta["status"] = "regression"
    elif ratio < 1.0 - tolerance:
        delta["status"] = "improvement"
    elif ratio != 1.0:
        delta["status"] = "drift"
    else:
        delta["status"] = "ok"
    deltas.append(delta)


def compare_files(baseline_path, current_path, args, deltas):
    baseline = load_medians(baseline_path)
    current = load_medians(current_path)
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            deltas.append({"benchmark": name, "metric": "(benchmark)",
                           "status": "missing",
                           "detail": f"present in {baseline_path} but missing from the run"})
            continue
        floor_ns = args.time_noise_floor_ms * 1e6
        time_tolerance = (args.noisy_time_tolerance
                          if re.search(args.noisy_pattern, name) else args.time_tolerance)
        compare_value(name, "real_time", base["real_time_ns"], cur["real_time_ns"],
                      time_tolerance, deltas,
                      gated=max(base["real_time_ns"], cur["real_time_ns"]) >= floor_ns)
        for counter, base_value in sorted(base["counters"].items()):
            cur_value = cur["counters"].get(counter)
            if cur_value is None:
                deltas.append({"benchmark": name, "metric": f"counter {counter}",
                               "status": "missing",
                               "detail": "counter disappeared from the run"})
                continue
            if is_time_like(counter):
                # Time-like counters are in seconds.
                floor_s = args.time_noise_floor_ms * 1e-3
                compare_value(name, f"counter {counter}", base_value, cur_value,
                              time_tolerance, deltas,
                              gated=max(base_value, cur_value) >= floor_s)
            else:
                compare_value(name, f"counter {counter}", base_value, cur_value,
                              args.counter_tolerance, deltas)
    for name in sorted(set(current) - set(baseline)):
        deltas.append({"benchmark": name, "metric": "(benchmark)", "status": "new",
                       "detail": "new benchmark (no baseline yet)"})


def format_delta(delta):
    if "detail" in delta:
        return f"{delta['benchmark']}: {delta['detail']}"
    return (f"{delta['benchmark']}: {delta['metric']} "
            f"{delta['baseline']:.6g} -> {delta['current']:.6g} "
            f"({delta['change']:+.1%})")


def summarize(path):
    """Markdown digest of a --deltas-json file (for CI job summaries)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            deltas = json.load(f)["deltas"]
    except (OSError, json.JSONDecodeError, KeyError) as e:
        raise SystemExit(f"bench_compare: cannot read deltas from {path}: {e}")
    by_status = {}
    for delta in deltas:
        by_status.setdefault(delta["status"], []).append(delta)
    print("### Benchmark gate")
    print()
    counts = ", ".join(f"{len(v)} {k}" for k, v in sorted(by_status.items()))
    print(f"{len(deltas)} comparison(s): {counts or 'none'}")
    sections = [("regression", "Regressions (gate failures)"),
                ("missing", "Missing benchmarks/counters (gate failures)"),
                ("improvement", "Improvements (consider refreshing baselines)"),
                ("drift", "Within-tolerance drift"),
                ("below-noise-floor", "Below the noise floor (not gated)"),
                ("new", "New benchmarks")]
    for status, title in sections:
        entries = by_status.get(status, [])
        if not entries:
            continue
        print()
        print(f"**{title}**")
        for delta in entries:
            print(f"- {format_delta(delta)}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*", metavar="BASELINE CURRENT",
                        help="pairs of baseline and current benchmark JSON files")
    parser.add_argument("--time-tolerance", type=float, default=0.25,
                        help="allowed relative wall-time growth (default 0.25)")
    parser.add_argument("--counter-tolerance", type=float, default=0.05,
                        help="allowed relative counter growth (default 0.05)")
    parser.add_argument("--time-noise-floor-ms", type=float, default=1.0,
                        help="wall-time measurements where both sides are below this "
                             "many milliseconds are reported but not gated (default 1.0)")
    parser.add_argument("--noisy-pattern", default=r"process_time",
                        help="regex for benchmarks whose wall time is scheduler-bound "
                             "(default: the multi-threaded process_time variants)")
    parser.add_argument("--noisy-time-tolerance", type=float, default=0.60,
                        help="wall-time tolerance for --noisy-pattern matches (default 0.60)")
    parser.add_argument("--deltas-json", metavar="PATH",
                        help="write every per-benchmark delta as structured JSON")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy each CURRENT file over its BASELINE path after "
                             "comparing (refresh after an intentional perf change)")
    parser.add_argument("--summarize", metavar="DELTAS_JSON",
                        help="print a markdown digest of a --deltas-json file and exit")
    args = parser.parse_args(argv)
    if args.summarize:
        if args.files:
            parser.error("--summarize takes no BASELINE CURRENT pairs")
        return summarize(args.summarize)
    if not args.files or len(args.files) % 2 != 0:
        parser.error("expected BASELINE CURRENT pairs")

    deltas = []
    for i in range(0, len(args.files), 2):
        compare_files(args.files[i], args.files[i + 1], args, deltas)

    if args.deltas_json:
        with open(args.deltas_json, "w", encoding="utf-8") as f:
            json.dump({"deltas": deltas}, f, indent=2)
            f.write("\n")

    failures = [d for d in deltas if d["status"] in ("regression", "missing")]
    improvements = [d for d in deltas if d["status"] == "improvement"]
    notes = [d for d in deltas if d["status"] in ("drift", "below-noise-floor", "new")]

    for delta in improvements:
        print(f"improved: {format_delta(delta)}")
    for delta in notes:
        suffix = " below the noise floor, not gated" \
            if delta["status"] == "below-noise-floor" else ""
        print(f"note: {format_delta(delta)}{suffix}")

    if args.update_baselines:
        for i in range(0, len(args.files), 2):
            shutil.copyfile(args.files[i + 1], args.files[i])
            print(f"bench_compare: refreshed {args.files[i]} from {args.files[i + 1]}")

    if failures:
        print(f"bench_compare: {len(failures)} regression(s):", file=sys.stderr)
        for delta in failures:
            tol = delta.get("tolerance")
            suffix = f" exceeds +{tol:.0%} tolerance" if tol is not None else ""
            print(f"  FAIL: {format_delta(delta)}{suffix}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({len(improvements)} improvement(s), "
          f"{len(notes)} drift note(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
