// tsd — the always-on mapping daemon.
//
//   $ ./tsd --socket /tmp/tsd.sock [--tcp-port N] [--workers N]
//           [--cache-dir PATH] [--hot-mb N] [--hot-entries N]
//           [--hot-policy recency|cost-aware]
//           [--max-queue N] [--per-client N]
//           [--budget-ms N] [--per-request-ms N]
//           [--jsonl PATH] [--max-attempts N]
//           [--failpoints SPEC] [--trace-json PATH]
//           [--http-port N] [--trace-ring N]
//
// Serves the line-delimited JSON mapping protocol (service/mapping_server.hpp)
// over a Unix-domain socket, optionally also on TCP loopback (--tcp-port 0
// picks an ephemeral port and prints it). SIGTERM/SIGINT drain gracefully:
// running requests wind down to best-so-far, queued requests report
// cancelled, every admitted request still lands in the JSONL stream. A
// second signal terminates hard, as usual.
//
// --http-port N (0 = ephemeral, printed at startup as http:127.0.0.1:PORT)
// opens the observability endpoint: GET /metrics (Prometheus text
// exposition), GET /healthz (200 while serving, 503 during the drain), and
// GET /trace/<seq> for per-request trace JSON when --trace-ring N keeps the
// last N requests' span trees in memory. --hot-policy picks the hot tier's
// eviction policy (DESIGN.md §16); results are bit-identical either way.
//
// Every numeric flag goes through parse_int_strict: a malformed value is a
// usage error (exit 2), never a silent zero.

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/flow_cli.hpp"
#include "base/run_budget.hpp"
#include "base/trace.hpp"
#include "cache/flow_cache.hpp"
#include "service/mapping_server.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "error: " << message << '\n'
            << "usage: tsd --socket PATH [--tcp-port N] [--workers N]\n"
               "           [--cache-dir PATH] [--hot-mb N] [--hot-entries N]\n"
               "           [--hot-policy recency|cost-aware]\n"
               "           [--max-queue N] [--per-client N]\n"
               "           [--budget-ms N] [--per-request-ms N]\n"
               "           [--jsonl PATH] [--max-attempts N]\n"
               "           [--failpoints SPEC] [--trace-json PATH]\n"
               "           [--http-port N] [--trace-ring N]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbosyn;
  std::string socket_path;
  std::string cache_dir;
  std::string jsonl_path;
  std::string trace_path;
  std::string failpoints;
  std::string hot_policy_name_arg = "recency";
  int tcp_port = -1;
  int http_port = -1;
  int workers = 2;
  int per_client = 1;
  int max_attempts = 2;
  long long hot_mb = 64;
  long long hot_entries = 0;
  long long trace_ring = 0;
  long long max_queue = 256;
  long long budget_ms = 0;
  long long per_request_ms = 0;

  const auto int_flag = [&](const char* name, int i, long long lo, long long hi,
                            long long* out) {
    if (i + 1 >= argc) usage_error(std::string(name) + " needs a value");
    if (!parse_int_strict(argv[i + 1], lo, hi, *out)) {
      usage_error(std::string(name) + " expects an integer in [" + std::to_string(lo) +
                  ", " + std::to_string(hi) + "], got '" + argv[i + 1] + "'");
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    long long value = 0;
    if (a == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (a == "--cache-dir" && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (a == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (a == "--trace-json" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--failpoints" && i + 1 < argc) {
      failpoints = argv[++i];
    } else if (a == "--tcp-port") {
      int_flag("--tcp-port", i, 0, 65535, &value);
      tcp_port = static_cast<int>(value);
      ++i;
    } else if (a == "--http-port") {
      int_flag("--http-port", i, 0, 65535, &value);
      http_port = static_cast<int>(value);
      ++i;
    } else if (a == "--trace-ring") {
      int_flag("--trace-ring", i, 0, 1 << 20, &trace_ring);
      ++i;
    } else if (a == "--hot-policy" && i + 1 < argc) {
      hot_policy_name_arg = argv[++i];
      if (!parse_hot_policy(hot_policy_name_arg).has_value()) {
        usage_error("--hot-policy expects 'recency' or 'cost-aware', got '" +
                    hot_policy_name_arg + "'");
      }
    } else if (a == "--workers") {
      int_flag("--workers", i, 1, 1 << 10, &value);
      workers = static_cast<int>(value);
      ++i;
    } else if (a == "--per-client") {
      int_flag("--per-client", i, 1, 1 << 10, &value);
      per_client = static_cast<int>(value);
      ++i;
    } else if (a == "--max-attempts") {
      int_flag("--max-attempts", i, 1, 100, &value);
      max_attempts = static_cast<int>(value);
      ++i;
    } else if (a == "--hot-mb") {
      int_flag("--hot-mb", i, 0, 1 << 20, &hot_mb);
      ++i;
    } else if (a == "--hot-entries") {
      int_flag("--hot-entries", i, 0, 1 << 30, &hot_entries);
      ++i;
    } else if (a == "--max-queue") {
      int_flag("--max-queue", i, 1, 1 << 20, &max_queue);
      ++i;
    } else if (a == "--budget-ms") {
      int_flag("--budget-ms", i, 0, 1LL << 40, &budget_ms);
      ++i;
    } else if (a == "--per-request-ms") {
      int_flag("--per-request-ms", i, 0, 1LL << 40, &per_request_ms);
      ++i;
    } else {
      usage_error("unknown flag '" + a + "'");
    }
  }
  if (socket_path.empty() && tcp_port < 0) {
    usage_error("--socket PATH (or --tcp-port N) is required");
  }

  try {
    if (!failpoint::configure_from_env()) return 2;
    if (!failpoints.empty()) {
      std::string error;
      if (!failpoint::configure(failpoints, &error)) usage_error("--failpoints: " + error);
    }

    std::unique_ptr<FlowCache> cache;
    if (!cache_dir.empty()) {
      cache = std::make_unique<FlowCache>(cache_dir);
      const FlowCache::RecoveryStats recovered = cache->recover();
      if (recovered.total() > 0) {
        std::cerr << "tsd: cache recovery removed " << recovered.total()
                  << " damaged file(s)\n";
      }
      if (hot_mb > 0) {
        cache->enable_hot_tier(static_cast<std::size_t>(hot_mb) << 20,
                               static_cast<std::size_t>(hot_entries));
        cache->set_hot_policy(*parse_hot_policy(hot_policy_name_arg));
      }
    }
    std::unique_ptr<std::ofstream> jsonl;
    if (!jsonl_path.empty()) {
      jsonl = std::make_unique<std::ofstream>(jsonl_path, std::ios::app);
      TS_CHECK(jsonl->good(), "cannot open --jsonl file '" << jsonl_path << "'");
    }
    std::unique_ptr<TraceSink> trace;
    if (!trace_path.empty()) trace = std::make_unique<TraceSink>();

    // SIGTERM/SIGINT cancel the global token; the server's monitor thread
    // turns that into a graceful drain. A second signal kills, as usual.
    install_sigint_cancellation();
    install_sigterm_cancellation();

    MappingServerOptions options;
    options.socket_path = socket_path;
    options.tcp_port = tcp_port;
    options.workers = workers;
    options.max_queue = static_cast<std::size_t>(max_queue);
    options.per_client_in_flight = per_client;
    options.global_budget_ms = budget_ms;
    options.per_request_deadline_ms = per_request_ms;
    options.cache = cache.get();
    options.flow.trace = trace.get();
    options.max_attempts = max_attempts;
    options.jsonl = jsonl.get();
    options.external_shutdown = &global_cancel_token();
    options.http_port = http_port;
    options.trace_ring_entries = static_cast<std::size_t>(trace_ring);

    MappingServer server(std::move(options));
    server.start();
    std::cout << "tsd: serving";
    if (!socket_path.empty()) std::cout << " unix:" << socket_path;
    if (server.port() >= 0) std::cout << " tcp:127.0.0.1:" << server.port();
    if (server.http_port() >= 0) std::cout << " http:127.0.0.1:" << server.http_port();
    std::cout << " (workers=" << workers << ")" << std::endl;

    server.wait();
    std::cout << "tsd: drained — admitted=" << server.admitted()
              << " completed=" << server.completed() << " failed=" << server.failed()
              << " cancelled=" << server.cancelled()
              << " poison_blocked=" << server.poison_blocked()
              << " jsonl_faults=" << server.jsonl_faults() << std::endl;
    if (trace != nullptr && !trace->write_json_file(trace_path)) {
      std::cerr << "tsd: cannot write trace to " << trace_path << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "tsd: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
