#!/usr/bin/env python3
"""promlint — lint tsd's /metrics exposition and cross-check it against STATS.

Usage:
    promlint.py SCRAPE [--previous EARLIER_SCRAPE] [--stats STATS_JSON]

SCRAPE is a file holding one GET /metrics body (Prometheus text exposition
format 0.0.4). The lint enforces the invariants the daemon's renderer is
supposed to guarantee by construction — this script is the independent
check that it actually does:

  * every sample belongs to a family declared with both # HELP and # TYPE,
    and samples sit directly under their family block (no interleaving);
  * no family is declared twice;
  * counter families are `_total`-suffixed;
  * every value parses as a finite float and no series repeats.

With --previous (an earlier scrape of the same daemon), every counter
series from the earlier scrape must still exist and must not have
decreased — counters only go up.

With --stats (the JSON body of a STATS reply captured while the daemon is
idle), the numeric totals exposed on /metrics must equal the corresponding
STATS fields exactly: both renderings are defined to come from the same
snapshot structure, so any drift is a bug, not noise.

Exit status: 0 clean, 1 on any violation (each printed to stderr), 2 usage.
Stdlib only — CI runs this on a bare runner.
"""

import json
import math
import sys

VIOLATIONS = []


def violation(msg):
    VIOLATIONS.append(msg)
    print("promlint: " + msg, file=sys.stderr)


def parse_labels(text, where):
    """Parses '{k="v",...}' into a sorted tuple of (key, value) pairs."""
    labels = []
    i = 0
    while i < len(text):
        eq = text.find('=', i)
        if eq < 0 or eq + 1 >= len(text) or text[eq + 1] != '"':
            violation(f"{where}: malformed labels '{{{text}}}'")
            return None
        key = text[i:eq].strip()
        value = []
        j = eq + 2
        while j < len(text) and text[j] != '"':
            if text[j] == '\\' and j + 1 < len(text):
                esc = text[j + 1]
                value.append({'n': '\n', '\\': '\\', '"': '"'}.get(esc, esc))
                j += 2
            else:
                value.append(text[j])
                j += 1
        if j >= len(text):
            violation(f"{where}: unterminated label value in '{{{text}}}'")
            return None
        labels.append((key, ''.join(value)))
        i = j + 1
        if i < len(text) and text[i] == ',':
            i += 1
    return tuple(sorted(labels))


def parse_exposition(path):
    """Returns (families, series): family name -> type, and
    (name, labels) -> float value. Lints structure along the way."""
    families = {}   # name -> type
    helps = set()
    series = {}     # (name, labels) -> value
    current = None  # family of the open block
    with open(path, encoding='utf-8') as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith('# HELP '):
            parts = line.split(' ', 3)
            if len(parts) < 4 or not parts[3]:
                violation(f"{where}: HELP without text")
                continue
            if parts[2] in helps:
                violation(f"{where}: duplicate HELP for family '{parts[2]}'")
            helps.add(parts[2])
            continue
        if line.startswith('# TYPE '):
            parts = line.split(' ')
            if len(parts) != 4:
                violation(f"{where}: malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in ('counter', 'gauge', 'histogram', 'summary', 'untyped'):
                violation(f"{where}: unknown type '{kind}' for family '{name}'")
            if name in families:
                violation(f"{where}: duplicate TYPE for family '{name}'")
            if name not in helps:
                violation(f"{where}: TYPE for '{name}' without a preceding HELP")
            if kind == 'counter' and not name.endswith('_total'):
                violation(f"{where}: counter family '{name}' lacks the _total suffix")
            families[name] = kind
            current = name
            continue
        if line.startswith('#'):
            continue  # comments are legal exposition content
        # Sample: name[{labels}] value
        brace = line.find('{')
        if brace >= 0:
            close = line.rfind('}')
            if close < brace:
                violation(f"{where}: unbalanced braces")
                continue
            name = line[:brace]
            labels = parse_labels(line[brace + 1:close], where)
            if labels is None:
                continue
            value_text = line[close + 1:].strip()
        else:
            name, _, value_text = line.partition(' ')
            labels = ()
            value_text = value_text.strip()
        if name not in families:
            violation(f"{where}: sample for undeclared family '{name}'")
            continue
        if name != current:
            violation(f"{where}: sample for '{name}' outside its family block "
                      f"(current block: '{current}')")
        try:
            value = float(value_text)
        except ValueError:
            violation(f"{where}: unparseable value '{value_text}'")
            continue
        if math.isnan(value) or math.isinf(value):
            violation(f"{where}: non-finite value for '{name}'")
            continue
        key = (name, labels)
        if key in series:
            violation(f"{where}: duplicate series {name}{dict(labels)}")
        series[key] = value
    return families, series


def check_monotone(prev_path, cur_path, prev, cur, families):
    for (name, labels), before in prev.items():
        if families.get(name) != 'counter':
            continue
        if (name, labels) not in cur:
            violation(f"counter series {name}{dict(labels)} present in "
                      f"{prev_path} vanished from {cur_path}")
            continue
        after = cur[(name, labels)]
        if after < before:
            violation(f"counter {name}{dict(labels)} decreased: "
                      f"{before} -> {after}")


# /metrics family (no labels) -> path into the STATS JSON object. Families
# whose STATS source is optional (cache block) are simply skipped when the
# path is absent.
STATS_MAP = {
    'ts_server_admitted_total': ('server', 'admitted'),
    'ts_server_completed_total': ('server', 'completed'),
    'ts_server_failed_total': ('server', 'failed'),
    'ts_server_cancelled_total': ('server', 'cancelled'),
    'ts_server_rejected_total': ('server', 'rejected'),
    'ts_server_poison_blocked_total': ('server', 'poison_blocked'),
    'ts_server_retries_total': ('server', 'retries'),
    'ts_server_workers': ('server', 'workers'),
    'ts_server_jsonl_faults_total': ('server', 'jsonl_faults'),
    'ts_queue_depth': ('server', 'queue_depth'),
    'ts_queue_in_flight': ('server', 'in_flight'),
    'ts_queue_high_depth': ('server', 'high_queued'),
    'ts_queue_high_served_total': ('server', 'high_served'),
    'ts_queue_normal_served_total': ('server', 'normal_served'),
    'ts_budget_total_ms': ('budget', 'total_ms'),
    'ts_budget_remaining_ms': ('budget', 'remaining_ms'),
    'ts_cache_hits_total': ('cache', 'hits'),
    'ts_cache_misses_total': ('cache', 'misses'),
    'ts_cache_stores_total': ('cache', 'stores'),
    'ts_cache_rejects_total': ('cache', 'rejects'),
    'ts_cache_near_hits_total': ('cache', 'near_hits'),
    'ts_cache_recovered_entries_total': ('cache', 'recovered_entries'),
    'ts_cache_recovered_tmp_total': ('cache', 'recovered_tmp'),
    'ts_cache_recovered_sidecars_total': ('cache', 'recovered_sidecars'),
    'ts_cache_store_retries_total': ('cache', 'store_retries'),
    'ts_cache_hot_hits_total': ('cache', 'hot_hits'),
    'ts_cache_hot_evictions_total': ('cache', 'hot_evictions'),
    'ts_cache_hot_cost_evictions_total': ('cache', 'hot_cost_evictions'),
    'ts_cache_hot_cost_retained_seconds_total': ('cache', 'hot_cost_retained_seconds'),
    'ts_cache_hot_entries': ('cache', 'hot_entries'),
    'ts_cache_hot_bytes': ('cache', 'hot_bytes'),
    'ts_portfolio_runs_total': ('portfolio', 'runs'),
    'ts_portfolio_cancelled_engines_total': ('portfolio', 'cancelled_engines'),
    'ts_portfolio_cancelled_wall_saved_seconds_total':
        ('portfolio', 'cancelled_wall_saved_seconds'),
    'ts_ledger_probes_total': ('ledger', 'probes'),
    'ts_ledger_imported_probes_total': ('ledger', 'imported_probes'),
    'ts_flow_seconds_total': ('flow_seconds',),
}

# Labeled families: metric -> (label key, path prefix, optional leaf).
LABELED_STATS_MAP = {
    'ts_portfolio_wins_total': ('engine', ('portfolio', 'wins'), None),
    'ts_stage_seconds_total': ('stage', ('stages',), 'seconds'),
    'ts_stage_runs_total': ('stage', ('stages',), 'runs'),
    'ts_failpoint_triggers_total': ('site', ('failpoints',), None),
}


def json_path(obj, path):
    for step in path:
        if not isinstance(obj, dict) or step not in obj:
            return None
        obj = obj[step]
    return obj


def check_stats(stats_path, series):
    with open(stats_path, encoding='utf-8') as handle:
        stats = json.load(handle)
    for metric, path in STATS_MAP.items():
        expected = json_path(stats, path)
        got = series.get((metric, ()))
        if expected is None:
            if got is not None and not path[0] == 'cache':
                violation(f"{metric} exposed but STATS lacks {'.'.join(path)}")
            continue
        if got is None:
            violation(f"STATS has {'.'.join(path)} but /metrics lacks {metric}")
            continue
        if float(expected) != got:
            violation(f"{metric} = {got} but STATS {'.'.join(path)} = {expected}")
    for metric, (label_key, prefix, leaf) in LABELED_STATS_MAP.items():
        table = json_path(stats, prefix)
        if not isinstance(table, dict):
            continue
        for entry_name, entry in table.items():
            expected = entry if leaf is None else entry.get(leaf)
            key = (metric, ((label_key, entry_name),))
            got = series.get(key)
            if got is None:
                violation(f"STATS {'.'.join(prefix)}[{entry_name}] has no "
                          f"{metric}{{{label_key}=\"{entry_name}\"}} sample")
            elif float(expected) != got:
                violation(f"{metric}{{{label_key}=\"{entry_name}\"}} = {got} "
                          f"but STATS says {expected}")


def main(argv):
    scrape = None
    previous = None
    stats = None
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == '--previous' and i + 1 < len(argv):
            previous = argv[i + 1]
            i += 2
        elif arg == '--stats' and i + 1 < len(argv):
            stats = argv[i + 1]
            i += 2
        elif arg.startswith('-'):
            print(__doc__, file=sys.stderr)
            return 2
        elif scrape is None:
            scrape = arg
            i += 1
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if scrape is None:
        print(__doc__, file=sys.stderr)
        return 2

    families, series = parse_exposition(scrape)
    if not families:
        violation(f"{scrape}: no metric families at all")
    if previous is not None:
        _, prev_series = parse_exposition(previous)
        check_monotone(previous, scrape, prev_series, series, families)
    if stats is not None:
        check_stats(stats, series)

    if VIOLATIONS:
        print(f"promlint: {len(VIOLATIONS)} violation(s)", file=sys.stderr)
        return 1
    print(f"promlint: {scrape}: {len(families)} families, "
          f"{len(series)} series, clean")
    return 0


if __name__ == '__main__':
    sys.exit(main(sys.argv))
