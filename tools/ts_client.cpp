// ts_client — command-line client for the tsd mapping daemon.
//
//   $ ./ts_client --socket /tmp/tsd.sock --map adder.blif --flow turbosyn --k 5
//   $ ./ts_client --socket /tmp/tsd.sock --stats
//   $ ./ts_client --socket /tmp/tsd.sock --ping
//   $ ./ts_client --socket /tmp/tsd.sock --cancel 7 --client ci
//   $ ./ts_client --socket /tmp/tsd.sock --shutdown
//   $ echo 'STATS' | ./ts_client --socket /tmp/tsd.sock --stdin
//
// --map reads the BLIF file and ships it inline (the daemon never touches
// the client's filesystem); --send-path sends the path instead, for a
// daemon sharing the filesystem. A map invocation prints the "queued" ack
// and then blocks for the "result" record; the other verbs print their one
// reply. --stdin forwards raw protocol lines and prints every reply until
// EOF. --trace-fetch ID --http-port N pulls /trace/ID from the daemon's
// observability endpoint and prints the JSON body.
//
// Exit status: 0 on a successful terminal reply, 1 when the server answers
// with an error reply or a failed/cancelled result record (the server's
// error text goes to stderr), when the connection drops before a terminal
// reply, or when a trace fetch misses; 2 on usage errors. CI scripts rely
// on this: a failed map must fail the step.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/flow_cli.hpp"
#include "base/json_util.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "error: " << message << '\n'
            << "usage: ts_client (--socket PATH | --tcp-port N)\n"
               "         (--map FILE [--send-path] [--flow NAME] [--k N]\n"
               "            [--portfolio E1,E2,...] [--priority high|normal]\n"
               "            [--deadline-ms N] [--id N] [--client NAME]\n"
               "          | --stats | --ping | --cancel ID [--client NAME]\n"
               "          | --shutdown | --stdin)\n"
               "       ts_client --trace-fetch ID --http-port N\n";
  std::exit(2);
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, std::string line) {
  line += '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one '\n'-terminated line (buffered across calls). False on EOF.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// The reply that ends a request/response exchange (vs the "queued" ack).
bool terminal_reply(const std::string& line) {
  return line.find("\"reply\":\"queued\"") == std::string::npos;
}

/// If `line` reports a failure — an error reply, or a result record whose
/// run did not succeed — extracts the server's error text (decoded from the
/// flat protocol object when it parses; the raw line otherwise) and returns
/// true. Successful replies return false.
bool extract_error(const std::string& line, std::string* message) {
  const bool error_reply = line.find("\"reply\":\"error\"") != std::string::npos;
  const bool failed_result = line.find("\"reply\":\"result\"") != std::string::npos &&
                             line.find("\"ok\":false") != std::string::npos;
  if (!error_reply && !failed_result) return false;
  *message = line;
  std::vector<std::pair<std::string, turbosyn::JsonScalar>> fields;
  if (turbosyn::parse_flat_json_object(line, fields)) {
    for (const auto& [key, value] : fields) {
      if (key == "error" && value.kind == turbosyn::JsonScalar::Kind::kString) {
        *message = value.text;
        break;
      }
    }
  }
  return true;
}

/// One GET against the daemon's observability endpoint. Prints the body on
/// a 200 and returns 0; anything else (connect failure, non-200, truncated
/// response) reports to stderr and returns 1.
int http_fetch(int port, const std::string& target) {
  const int fd = connect_tcp(port);
  if (fd < 0) {
    std::cerr << "ts_client: cannot connect to http port " << port << '\n';
    return 1;
  }
  // send_line appends the final '\n', completing the blank line that ends
  // the header block.
  if (!send_line(fd, "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                     "Connection: close\r\n\r")) {
    std::cerr << "ts_client: send failed\n";
    ::close(fd);
    return 1;
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body_at = response.find("\r\n\r\n");
  if (body_at == std::string::npos) {
    std::cerr << "ts_client: malformed http response\n";
    return 1;
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    std::cerr << "ts_client: " << target << ": " << status_line << '\n';
    return 1;
  }
  std::cout << response.substr(body_at + 4);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbosyn;
  std::string socket_path;
  std::string map_file;
  std::string flow = "turbosyn";
  std::string portfolio;
  std::string priority;
  std::string client_name;
  int tcp_port = -1;
  long long k = 5;
  long long id = 0;
  long long deadline_ms = 0;
  long long cancel_id = -1;
  long long trace_fetch_id = -1;
  int http_port = -1;
  bool send_path = false;
  bool stats = false, ping = false, shutdown_req = false, stdin_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(a + " needs a value");
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = value();
    } else if (a == "--tcp-port") {
      long long port = 0;
      if (!parse_int_strict(value(), 0, 65535, port)) usage_error("bad --tcp-port");
      tcp_port = static_cast<int>(port);
    } else if (a == "--map") {
      map_file = value();
    } else if (a == "--send-path") {
      send_path = true;
    } else if (a == "--flow") {
      flow = value();
    } else if (a == "--portfolio") {
      // Validated by the daemon against its engine registry; a bad name
      // comes back as an error reply naming the engine.
      portfolio = value();
    } else if (a == "--priority") {
      priority = value();
      if (priority != "high" && priority != "normal") {
        usage_error("--priority expects 'high' or 'normal'");
      }
    } else if (a == "--client") {
      client_name = value();
    } else if (a == "--k") {
      if (!parse_int_strict(value(), 2, 32, k)) usage_error("--k expects [2, 32]");
    } else if (a == "--id") {
      if (!parse_int_strict(value(), 0, 1LL << 60, id)) usage_error("bad --id");
    } else if (a == "--deadline-ms") {
      if (!parse_int_strict(value(), 0, 1LL << 40, deadline_ms)) {
        usage_error("bad --deadline-ms");
      }
    } else if (a == "--cancel") {
      if (!parse_int_strict(value(), 0, 1LL << 60, cancel_id)) usage_error("bad --cancel");
    } else if (a == "--trace-fetch") {
      if (!parse_int_strict(value(), 0, 1LL << 60, trace_fetch_id)) {
        usage_error("bad --trace-fetch");
      }
    } else if (a == "--http-port") {
      long long port = 0;
      if (!parse_int_strict(value(), 0, 65535, port)) usage_error("bad --http-port");
      http_port = static_cast<int>(port);
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--ping") {
      ping = true;
    } else if (a == "--shutdown") {
      shutdown_req = true;
    } else if (a == "--stdin") {
      stdin_mode = true;
    } else {
      usage_error("unknown flag '" + a + "'");
    }
  }
  const int verbs = (!map_file.empty() ? 1 : 0) + (stats ? 1 : 0) + (ping ? 1 : 0) +
                    (cancel_id >= 0 ? 1 : 0) + (shutdown_req ? 1 : 0) +
                    (stdin_mode ? 1 : 0) + (trace_fetch_id >= 0 ? 1 : 0);
  if (verbs != 1) {
    usage_error(
        "exactly one of --map/--stats/--ping/--cancel/--shutdown/--stdin/--trace-fetch");
  }
  if (trace_fetch_id >= 0) {
    if (http_port < 0) usage_error("--trace-fetch needs --http-port");
    return http_fetch(http_port, "/trace/" + std::to_string(trace_fetch_id));
  }
  if (socket_path.empty() && tcp_port < 0) usage_error("--socket or --tcp-port is required");

  const int fd = !socket_path.empty() ? connect_unix(socket_path) : connect_tcp(tcp_port);
  if (fd < 0) {
    std::cerr << "ts_client: cannot connect\n";
    return 1;
  }

  int status = 0;
  std::string buffer, line;
  if (stdin_mode) {
    // Raw passthrough: one reply per line sent, printed as received.
    std::string input;
    while (std::getline(std::cin, input)) {
      if (!send_line(fd, input)) break;
      if (!read_line(fd, buffer, line)) break;
      std::cout << line << '\n';
    }
  } else {
    std::string request;
    if (!map_file.empty()) {
      request = "{\"op\":\"map\",\"id\":" + std::to_string(id);
      if (!client_name.empty()) request += ",\"client\":" + json_quote(client_name);
      request += ",\"flow\":" + json_quote(flow) + ",\"k\":" + std::to_string(k);
      if (!portfolio.empty()) request += ",\"portfolio\":" + json_quote(portfolio);
      if (!priority.empty()) request += ",\"priority\":" + json_quote(priority);
      if (deadline_ms > 0) request += ",\"deadline_ms\":" + std::to_string(deadline_ms);
      if (send_path) {
        request += ",\"path\":" + json_quote(map_file);
      } else {
        std::ifstream in(map_file, std::ios::binary);
        if (!in) {
          std::cerr << "ts_client: cannot read " << map_file << '\n';
          ::close(fd);
          return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        request += ",\"blif\":" + json_quote(text.str());
      }
      request += "}";
    } else if (stats) {
      request = "STATS";
    } else if (ping) {
      request = "PING";
    } else if (shutdown_req) {
      request = "SHUTDOWN";
    } else {
      request = "{\"op\":\"cancel\",\"id\":" + std::to_string(cancel_id);
      if (!client_name.empty()) request += ",\"client\":" + json_quote(client_name);
      request += "}";
    }
    if (!send_line(fd, request)) {
      std::cerr << "ts_client: send failed\n";
      status = 1;
    } else {
      // Print the ack (map) and block until the terminal reply. An error
      // reply is a failure of the request itself: surface the server's
      // message on stderr and exit nonzero so scripts see it.
      bool done = false;
      while (!done && read_line(fd, buffer, line)) {
        std::cout << line << '\n';
        done = terminal_reply(line);
        std::string error_text;
        if (done && extract_error(line, &error_text)) {
          std::cerr << "ts_client: server error: " << error_text << '\n';
          status = 1;
        }
      }
      if (!done) {
        std::cerr << "ts_client: connection closed before a terminal reply\n";
        status = 1;
      }
    }
  }
  ::close(fd);
  return status;
}
