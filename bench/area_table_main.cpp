// Area companion to Table 1: LUT and FF counts of the three flows.
//
// The paper (Section 6) notes that "TurboSYN loses on area as compared to
// TurboMap and FlowSYN-s due to shortcomings of the single-output functional
// decomposition" — this table reproduces that comparison, plus the effect of
// the label-relaxation LUT-reduction technique (Section 5 / tech report).
//
// Usage: area_table_main [--quick] [--audit]

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "verify/audit.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);
  std::vector<BenchmarkSpec> suite = table1_suite();
  if (!cli.full) suite.resize(10);  // the no-relax rerun doubles TurboSYN cost
  if (cli.quick) suite.resize(6);

  const bool audit = cli.audit;
  FlowOptions opt;
  opt.num_threads = cli.threads;
  opt.budget = cli.budget;
  opt.incremental = cli.incremental;
  opt.collect_artifacts = audit;
  opt.trace = cli.trace();
  FlowOptions no_relax = opt;
  no_relax.label_relaxation = false;
  bool audits_ok = true;

  TextTable table({"circuit", "FS-s LUT", "TM LUT", "TS LUT", "TS LUT (no relax)", "FS-s FF",
                   "TM FF", "TS FF"});
  double log_ratio_tm = 0.0;
  double log_relax = 0.0;
  int rows = 0;
  for (const BenchmarkSpec& spec : suite) {
    const Circuit c = generate_fsm_circuit(spec);
    const FlowResult fs = run_flowsyn_s(c, opt);
    const FlowResult tm = run_turbomap(c, opt);
    const FlowResult ts = run_turbosyn(c, opt);
    const FlowResult ts_nr = run_turbosyn(c, no_relax);
    table.add_row({spec.name, std::to_string(fs.luts), std::to_string(tm.luts),
                   std::to_string(ts.luts), std::to_string(ts_nr.luts),
                   std::to_string(fs.ffs), std::to_string(tm.ffs), std::to_string(ts.ffs)});
    log_ratio_tm += std::log(static_cast<double>(ts.luts) / tm.luts);
    log_relax += std::log(static_cast<double>(ts_nr.luts) / std::max(1, ts.luts));
    ++rows;
    if (audit) {
      audits_ok &= audit_and_report(c, fs, opt, spec.name + ":flowsyn_s", std::cout);
      audits_ok &= audit_and_report(c, tm, opt, spec.name + ":turbomap", std::cout);
      audits_ok &= audit_and_report(c, ts, opt, spec.name + ":turbosyn", std::cout);
      audits_ok &= audit_and_report(c, ts_nr, no_relax, spec.name + ":turbosyn_norelax",
                                    std::cout);
    }
    std::cerr << "[area] " << spec.name << " done\n";
  }

  std::cout << "Area companion to Table 1 — LUT / FF counts, K=5\n";
  table.print(std::cout);
  std::cout << "\ngeomean LUT ratio TurboSYN / TurboMap = "
            << format_double(std::exp(log_ratio_tm / rows))
            << "  (paper: TurboSYN loses area to TurboMap)\n";
  std::cout << "label relaxation LUT saving (no-relax / relax) = "
            << format_double(std::exp(log_relax / rows)) << "x\n";
  if (!cli.write_trace()) return 1;
  return audits_ok ? 0 : 1;
}
