// Table 1 of the paper: minimum clock period (MDR ratio) under retiming and
// pipelining, and CPU time, for FlowSYN-s, TurboMap and TurboSYN over the
// 16-circuit suite (12 MCNC FSM + 4 ISCAS'89 stand-ins), K = 5.
//
// The paper reports TurboSYN reducing the clock period by 1.72x vs FlowSYN-s
// and 1.96x vs TurboMap on average; the geometric-mean ratios printed at the
// bottom are the reproduction of that headline.
//
// Usage: table1_main [--quick]   (--quick runs the first 6 circuits only)
//                    [--audit]   (re-verify every invariant of each result)

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "netlist/circuit.hpp"
#include "verify/audit.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

namespace {

double phi_of(const turbosyn::FlowResult& r) { return static_cast<double>(r.phi); }

}  // namespace

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);

  std::vector<BenchmarkSpec> suite = table1_suite();
  if (cli.quick) suite.resize(6);

  const bool audit = cli.audit;
  FlowOptions opt;  // K = 5, PLD on, as in the paper
  opt.num_threads = cli.threads;
  opt.budget = cli.budget;
  opt.incremental = cli.incremental;
  opt.collect_artifacts = audit;
  opt.trace = cli.trace();
  bool audits_ok = true;
  TextTable table({"circuit", "GATE", "FF", "FS-s phi", "FS-s s", "TM phi", "TM s", "TS phi",
                   "TS s"});

  double log_fs = 0.0;
  double log_tm = 0.0;
  double log_ts = 0.0;
  int rows = 0;
  for (const BenchmarkSpec& spec : suite) {
    const Circuit c = generate_fsm_circuit(spec);
    const CircuitStats st = compute_stats(c);
    const FlowResult fs = run_flowsyn_s(c, opt);
    const FlowResult tm = run_turbomap(c, opt);
    const FlowResult ts = run_turbosyn(c, opt);
    table.add_row({spec.name, std::to_string(st.gates), std::to_string(st.ffs),
                   std::to_string(fs.phi), format_double(fs.seconds),
                   std::to_string(tm.phi), format_double(tm.seconds),
                   std::to_string(ts.phi), format_double(ts.seconds)});
    log_fs += std::log(phi_of(fs));
    log_tm += std::log(phi_of(tm));
    log_ts += std::log(phi_of(ts));
    ++rows;
    if (audit) {
      audits_ok &= audit_and_report(c, fs, opt, spec.name + ":flowsyn_s", std::cout);
      audits_ok &= audit_and_report(c, tm, opt, spec.name + ":turbomap", std::cout);
      audits_ok &= audit_and_report(c, ts, opt, spec.name + ":turbosyn", std::cout);
    }
    std::cerr << "[table1] " << spec.name << " done (FS-s " << fs.phi << ", TM " << tm.phi
              << ", TS " << ts.phi << ")\n";
  }

  std::cout << "Table 1 — minimum clock period (MDR ratio) under retiming + pipelining, K=5\n";
  table.print(std::cout);
  const double gm_fs = std::exp(log_fs / rows);
  const double gm_tm = std::exp(log_tm / rows);
  const double gm_ts = std::exp(log_ts / rows);
  std::cout << "\ngeomean phi:  FlowSYN-s " << format_double(gm_fs) << "   TurboMap "
            << format_double(gm_tm) << "   TurboSYN " << format_double(gm_ts) << '\n';
  std::cout << "clock period reduction:  TurboSYN vs FlowSYN-s = "
            << format_double(gm_fs / gm_ts) << "x   (paper: 1.72x)\n";
  std::cout << "                         TurboSYN vs TurboMap  = "
            << format_double(gm_tm / gm_ts) << "x   (paper: 1.96x)\n";
  if (!cli.write_trace()) return 1;
  return audits_ok ? 0 : 1;
}
