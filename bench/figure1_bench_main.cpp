// The paper's Figure 1 walk-through as a measured experiment: at K=3, the
// registered loop s ^ (a&b) ^ (c&d) cannot reach MDR ratio 1 without
// resynthesis; TurboSYN's sequential functional decomposition moves the two
// AND terms into encoder LUTs off the loop and reaches ratio 1. The bench
// also sweeps ring circuits where plain TurboMap already collapses the loop.

#include <cstdlib>
#include <iostream>
#include <string>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "retime/cycle_ratio.hpp"
#include "verify/audit.hpp"
#include "workloads/samples.hpp"
#include "workloads/table.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);
  const bool audit = cli.audit;
  bool audits_ok = true;

  {
    const Circuit c = figure1_circuit();
    FlowOptions opt;
    opt.num_threads = cli.threads;
    opt.budget = cli.budget;
    opt.incremental = cli.incremental;
    opt.k = 3;
    opt.collect_artifacts = audit;
    opt.trace = cli.trace();
    const FlowResult tm = run_turbomap(c, opt);
    const FlowResult ts = run_turbosyn(c, opt);
    std::cout << "Figure 1 circuit (K=3): input MDR = " << circuit_mdr(c).ratio << '\n';
    std::cout << "  TurboMap : phi = " << tm.phi << ", LUTs = " << tm.luts
              << " (expected phi 2: the 5-input loop function needs two LUTs)\n";
    std::cout << "  TurboSYN : phi = " << ts.phi << ", LUTs = " << ts.luts
              << " (expected phi 1 via Roth-Karp encoders off the loop)\n\n";
    if (audit) {
      audits_ok &= audit_and_report(c, tm, opt, "figure1:turbomap", std::cout);
      audits_ok &= audit_and_report(c, ts, opt, "figure1:turbosyn", std::cout);
    }
  }

  TextTable table({"ring (stages/regs)", "input MDR", "TM phi", "TS phi"});
  for (const auto& [stages, regs] : {std::pair{4, 2}, {6, 2}, {8, 2}, {9, 3}, {12, 3}}) {
    const Circuit c = ring_circuit(stages, regs);
    FlowOptions opt;
    opt.num_threads = cli.threads;
    opt.budget = cli.budget;
    opt.incremental = cli.incremental;
    opt.collect_artifacts = audit;
    opt.trace = cli.trace();
    const FlowResult tm = run_turbomap(c, opt);
    const FlowResult ts = run_turbosyn(c, opt);
    if (audit) {
      const std::string ring = "ring" + std::to_string(stages) + "_" + std::to_string(regs);
      audits_ok &= audit_and_report(c, tm, opt, ring + ":turbomap", std::cout);
      audits_ok &= audit_and_report(c, ts, opt, ring + ":turbosyn", std::cout);
    }
    table.add_row({std::to_string(stages) + "/" + std::to_string(regs),
                   circuit_mdr(c).ratio.to_string(), std::to_string(tm.phi),
                   std::to_string(ts.phi)});
  }
  std::cout << "Ring sweep (K=5): loop compaction under retiming-aware mapping\n";
  table.print(std::cout);
  if (!cli.write_trace()) return 1;
  return audits_ok ? 0 : 1;
}
