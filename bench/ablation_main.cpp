// Ablations over the design choices DESIGN.md calls out:
//   - expansion depth past the allowed frontier of E_v (reconvergence
//     coverage vs cost of the partial flow network),
//   - multiplicity engine (OBDD, as in the paper, vs truth tables),
//   - decomposition min-cut height span,
//   - packing on/off.
// Reported per configuration: TurboSYN phi, LUTs and time over a subset of
// the suite.
//
// Usage: ablation_main [--quick] [--audit]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "verify/audit.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

namespace {

struct Config {
  std::string name;
  turbosyn::FlowOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);
  std::vector<BenchmarkSpec> suite = table1_suite();
  suite.resize(cli.full ? 6 : 3);  // ablations multiply the cost per circuit

  const bool audit = cli.audit;
  std::vector<Config> configs;
  {
    Config base{"base (extra=2, bdd, span=3, pack)", FlowOptions{}};
    base.options.num_threads = cli.threads;
    base.options.budget = cli.budget;
    base.options.incremental = cli.incremental;
    base.options.collect_artifacts = audit;
    base.options.trace = cli.trace();
    configs.push_back(base);
    Config e0 = base;
    e0.name = "expansion extra=0";
    e0.options.expansion.extra_levels = 0;
    configs.push_back(e0);
    Config e4 = base;
    e4.name = "expansion extra=4";
    e4.options.expansion.extra_levels = 4;
    configs.push_back(e4);
    Config tt = base;
    tt.name = "multiplicity via truth tables";
    tt.options.use_bdd = false;
    configs.push_back(tt);
    Config span1 = base;
    span1.name = "height span=1";
    span1.options.height_span = 1;
    configs.push_back(span1);
    Config nolcc = base;
    nolcc.name = "low-cost cuts off";
    nolcc.options.low_cost_cuts = false;
    configs.push_back(nolcc);
    Config nodedupe = base;
    nodedupe.name = "dedupe off";
    nodedupe.options.dedupe = false;
    configs.push_back(nodedupe);
    Config nopack = base;
    nopack.name = "packing off";
    nopack.options.pack = false;
    configs.push_back(nopack);
  }

  TextTable table({"config", "circuit", "TS phi", "TS LUT", "TS s"});
  bool audits_ok = true;
  for (const Config& cfg : configs) {
    for (const BenchmarkSpec& spec : suite) {
      const Circuit c = generate_fsm_circuit(spec);
      const FlowResult ts = run_turbosyn(c, cfg.options);
      if (audit) {
        audits_ok &= audit_and_report(c, ts, cfg.options, cfg.name + " / " + spec.name,
                                      std::cout);
      }
      table.add_row({cfg.name, spec.name, std::to_string(ts.phi), std::to_string(ts.luts),
                     format_double(ts.seconds)});
      std::cerr << "[ablation] " << cfg.name << " / " << spec.name << " done\n";
    }
  }
  std::cout << "TurboSYN design-choice ablations (K=5)\n";
  table.print(std::cout);
  if (!cli.write_trace()) return 1;
  return audits_ok ? 0 : 1;
}
