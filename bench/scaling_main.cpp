// The scalability claim (abstract): "TurboSYN can optimize sequential
// circuits of over 10^4 gates and 10^3 flipflops in reasonable time."
//
// Runs TurboMap and TurboSYN over circuits from 1k to 12k gates and reports
// wall-clock time, the found ratio and the label-computation volume.
//
// Usage: scaling_main [--quick] [--threads N] [--audit]
//        (--quick stops at 4k gates; --threads bounds the label engine,
//        0 = all cores, 1 = sequential; --audit re-verifies each result)

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "verify/audit.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);
  std::vector<BenchmarkSpec> suite = scaling_suite();
  if (cli.quick) suite.resize(3);
  // TurboSYN on the largest circuits takes tens of minutes; by default it
  // runs up to 4k gates (TurboMap covers the full range), --full runs all.
  const int ts_gate_limit = cli.full ? 1 << 30 : 4000;

  const bool audit = cli.audit;
  FlowOptions opt;
  opt.num_threads = cli.threads;
  opt.budget = cli.budget;
  opt.incremental = cli.incremental;
  opt.collect_artifacts = audit;
  opt.trace = cli.trace();
  bool audits_ok = true;
  TextTable table({"circuit", "GATE", "FF", "TM phi", "TM s", "TS phi", "TS s", "TS sweeps"});
  for (const BenchmarkSpec& spec : suite) {
    const Circuit c = generate_fsm_circuit(spec);
    const CircuitStats st = compute_stats(c);
    const FlowResult tm = run_turbomap(c, opt);
    if (audit) audits_ok &= audit_and_report(c, tm, opt, spec.name + ":turbomap", std::cout);
    if (spec.num_gates > ts_gate_limit) {
      table.add_row({spec.name, std::to_string(st.gates), std::to_string(st.ffs),
                     std::to_string(tm.phi), format_double(tm.seconds), "-", "-", "-"});
      std::cerr << "[scaling] " << spec.name << ": TM " << format_double(tm.seconds)
                << "s (TS skipped, use --full)\n";
      continue;
    }
    const FlowResult ts = run_turbosyn(c, opt);
    if (audit) audits_ok &= audit_and_report(c, ts, opt, spec.name + ":turbosyn", std::cout);
    table.add_row({spec.name, std::to_string(st.gates), std::to_string(st.ffs),
                   std::to_string(tm.phi), format_double(tm.seconds),
                   std::to_string(ts.phi), format_double(ts.seconds),
                   std::to_string(ts.stats.sweeps)});
    std::cerr << "[scaling] " << spec.name << ": TM " << format_double(tm.seconds)
              << "s, TS " << format_double(ts.seconds) << "s\n";
  }
  std::cout << "Scalability — TurboMap / TurboSYN runtime vs circuit size (K=5)\n";
  table.print(std::cout);
  if (!cli.write_trace()) return 1;
  return audits_ok ? 0 : 1;
}
