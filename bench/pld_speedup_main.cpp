// The PLD claim (paper Section 4): positive loop detection speeds up the
// label computation by 10~50x over the previous n^2 stopping criterion.
//
// For every suite circuit we first find the minimum feasible ratio phi* with
// TurboMap, then time the *infeasible* probe at phi* - 1 — the case the
// stopping criterion governs — once with PLD (isolation check + 6n bound)
// and once with the n^2 criterion. The per-circuit speedup in label sweeps
// and wall-clock time reproduces the claim's regime.
//
// Usage: pld_speedup_main [--quick] [--threads N] [--audit]

#include <chrono>
#include <cstdlib>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "core/labeling.hpp"
#include "verify/audit.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

namespace {

struct Probe {
  double seconds = 0.0;
  std::int64_t sweeps = 0;
  bool feasible = false;
  turbosyn::Status status = turbosyn::Status::kOk;
};

Probe run_probe(const turbosyn::Circuit& c, int phi, bool use_pld, int threads,
                const turbosyn::RunBudget& budget, std::int64_t sweep_budget = 0) {
  using Clock = std::chrono::steady_clock;
  turbosyn::LabelOptions lo;
  lo.k = 5;
  lo.use_pld = use_pld;
  lo.num_threads = threads;
  lo.sweep_budget = sweep_budget;
  lo.budget = budget;
  const auto start = Clock::now();
  const turbosyn::LabelResult r = turbosyn::compute_labels(c, phi, lo);
  Probe p;
  p.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  p.sweeps = r.stats.sweeps;
  p.feasible = r.feasible;
  p.status = r.status;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);
  std::vector<BenchmarkSpec> suite = table1_suite();
  if (cli.quick) suite.resize(6);

  const bool audit = cli.audit;
  FlowOptions opt;
  opt.num_threads = cli.threads;
  opt.budget = cli.budget;
  opt.incremental = cli.incremental;
  opt.collect_artifacts = audit;
  opt.trace = cli.trace();
  bool audits_ok = true;
  TextTable table({"circuit", "phi*", "PLD sweeps", "PLD s", "n^2 sweeps", "n^2 s",
                   "speedup"});
  double log_speedup = 0.0;
  int rows = 0;
  for (const BenchmarkSpec& spec : suite) {
    const Circuit c = generate_fsm_circuit(spec);
    const FlowResult tm = run_turbomap(c, opt);
    if (audit) audits_ok &= audit_and_report(c, tm, opt, spec.name + ":turbomap", std::cout);
    if (tm.phi <= 1) {
      std::cerr << "[pld] " << spec.name << " skipped (phi* = 1, no infeasible probe)\n";
      continue;
    }
    const Probe with_pld = run_probe(c, tm.phi - 1, /*use_pld=*/true, cli.threads, opt.budget);
    // The n^2 baseline is cut off at 200x the PLD sweep count so large
    // circuits finish; a truncated run makes the reported speedup a lower
    // bound (marked with ">").
    const std::int64_t budget = 200 * std::max<std::int64_t>(1, with_pld.sweeps);
    const Probe without =
        run_probe(c, tm.phi - 1, /*use_pld=*/false, cli.threads, opt.budget, budget);
    // The label engine distinguishes a sweep-budget stop (kDegraded: no
    // infeasibility certificate) from a genuine divergence certificate (kOk),
    // so truncation is read off the status instead of the sweep count.
    const bool truncated = without.status == Status::kDegraded;
    if (!truncated && with_pld.feasible != without.feasible) {
      std::cerr << "[pld] WARNING: criteria disagree on " << spec.name << '\n';
    }
    const double speedup = without.seconds / std::max(1e-9, with_pld.seconds);
    table.add_row({spec.name, std::to_string(tm.phi), std::to_string(with_pld.sweeps),
                   format_double(with_pld.seconds, 3),
                   (truncated ? ">" : "") + std::to_string(without.sweeps),
                   format_double(without.seconds, 3),
                   (truncated ? ">" : "") + format_double(speedup, 1)});
    log_speedup += std::log(speedup);
    ++rows;
    std::cerr << "[pld] " << spec.name << " speedup " << format_double(speedup, 1) << "x\n";
  }

  std::cout << "PLD ablation — infeasible probe at phi*-1: PLD vs n^2 stopping criterion\n";
  table.print(std::cout);
  if (rows > 0) {
    std::cout << "\ngeomean speedup = " << format_double(std::exp(log_speedup / rows), 1)
              << "x   (paper: 10~50x)\n";
  }
  if (!cli.write_trace()) return 1;
  return audits_ok ? 0 : 1;
}
