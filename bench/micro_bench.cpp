// Microbenchmarks (google-benchmark) for the engineering-critical kernels:
// truth-table composition, BDD construction and column multiplicity, the
// Dinic K-cut test, Roth–Karp decomposition, the expanded-circuit build and
// the sequential simulator. These are the inner loops that the per-sweep
// label computation cost (and hence every table) rests on.
//
// BM_Flow* additionally time the four public flows end to end and attach
// the per-stage StageMetrics breakdown as counters; see the comment above
// set_flow_counters for the BENCH_flow.json invocation.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "bdd/bdd.hpp"
#include "core/engines.hpp"
#include "core/expanded.hpp"
#include "core/flows.hpp"
#include "core/labeling.hpp"
#include "core/portfolio.hpp"
#include "decomp/roth_karp.hpp"
#include "graph/max_flow.hpp"
#include "netlist/blif.hpp"
#include "service/batch_runner.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"

namespace turbosyn {
namespace {

TruthTable random_tt(Rng& rng, int vars) {
  TruthTable t = TruthTable::constant(vars, false);
  for (std::size_t w = 0; w < t.num_words(); ++w) {
    // Build word-wise for speed.
    for (std::uint32_t b = 0; b < 64 && (w * 64 + b) < t.num_bits(); ++b) {
      if (rng.next_bool()) t.set_bit(static_cast<std::uint32_t>(w * 64 + b), true);
    }
  }
  return t;
}

void BM_TruthTableCompose(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  Rng rng(1);
  const TruthTable g = random_tt(rng, 5);
  std::vector<TruthTable> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(random_tt(rng, arity));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose(g, inputs));
  }
}
BENCHMARK(BM_TruthTableCompose)->Arg(8)->Arg(12)->Arg(15);

void BM_BddFromTruthTable(benchmark::State& state) {
  const int arity = static_cast<int>(state.range(0));
  Rng rng(2);
  const TruthTable t = random_tt(rng, arity);
  for (auto _ : state) {
    BddManager mgr(arity);
    benchmark::DoNotOptimize(mgr.from_truth_table(t));
  }
}
BENCHMARK(BM_BddFromTruthTable)->Arg(10)->Arg(13)->Arg(15);

void BM_ColumnMultiplicityBdd(benchmark::State& state) {
  Rng rng(3);
  const TruthTable t = random_tt(rng, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(column_multiplicity_bdd(t, 5));
  }
}
BENCHMARK(BM_ColumnMultiplicityBdd);

void BM_ColumnMultiplicityTt(benchmark::State& state) {
  Rng rng(3);
  const TruthTable t = random_tt(rng, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(column_multiplicity_tt(t, 5));
  }
}
BENCHMARK(BM_ColumnMultiplicityTt);

void BM_RothKarpDecompose(benchmark::State& state) {
  // A decomposable function: tree of ANDs/XORs over 12 inputs.
  const int m = 12;
  TruthTable f = TruthTable::constant(m, false);
  {
    TruthTable acc = TruthTable::var(m, 0) & TruthTable::var(m, 1);
    for (int i = 2; i + 1 < m; i += 2) {
      acc = acc ^ (TruthTable::var(m, i) & TruthTable::var(m, i + 1));
    }
    f = acc;
  }
  std::vector<int> eff(m, 0);
  DecompOptions opt;
  opt.k = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_for_label(f, eff, 3, opt));
  }
}
BENCHMARK(BM_RothKarpDecompose);

void BM_DinicKCutTest(benchmark::State& state) {
  // Layered DAG flow network, the shape of a FlowMap cone test.
  const int layers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MaxFlow flow;
    const int s = flow.add_node();
    const int t = flow.add_node();
    std::vector<int> prev;
    for (int i = 0; i < 8; ++i) {
      const int in = flow.add_node();
      const int out = flow.add_node();
      flow.add_arc(in, out, 1);
      flow.add_arc(s, in, MaxFlow::kInfinity);
      prev.push_back(out);
    }
    for (int l = 1; l < layers; ++l) {
      std::vector<int> cur;
      for (int i = 0; i < 8; ++i) {
        const int in = flow.add_node();
        const int out = flow.add_node();
        flow.add_arc(in, out, 1);
        flow.add_arc(prev[static_cast<std::size_t>(i)], in, MaxFlow::kInfinity);
        flow.add_arc(prev[static_cast<std::size_t>((i + 1) % 8)], in, MaxFlow::kInfinity);
        cur.push_back(out);
      }
      prev = cur;
    }
    for (const int out : prev) flow.add_arc(out, t, MaxFlow::kInfinity);
    benchmark::DoNotOptimize(flow.compute(s, t, 5));
  }
}
BENCHMARK(BM_DinicKCutTest)->Arg(4)->Arg(16);

void BM_ExpandedNetworkBuildAndCut(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(table1_suite()[0]);
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 1);
  for (const NodeId pi : c.pis()) labels[static_cast<std::size_t>(pi)] = 0;
  ExpandedOptions opt;
  // Pick a gate deep in the circuit.
  NodeId root = kNoNode;
  for (NodeId v = c.num_nodes() - 1; v >= 0; --v) {
    if (c.is_gate(v) && !c.fanin_edges(v).empty()) {
      root = v;
      break;
    }
  }
  for (auto _ : state) {
    ExpandedNetwork net(c, labels, 2, root, 1, opt);
    benchmark::DoNotOptimize(net.find_cut(5));
  }
}
BENCHMARK(BM_ExpandedNetworkBuildAndCut);

void BM_LabelComputationTurboMap(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  LabelOptions lo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_labels(c, 2, lo));
  }
}
BENCHMARK(BM_LabelComputationTurboMap);

// End-to-end labeling at 1 / 2 / all threads (Arg = num_threads, 0 = every
// core). Emit machine-readable results with
//   micro_bench --benchmark_filter=BM_Label --benchmark_out=BENCH_labeling.json
//               --benchmark_out_format=json
void BM_LabelEngineThreads(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(table1_suite()[0]);
  LabelOptions lo;
  lo.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LabelEngine engine(c, lo);
    benchmark::DoNotOptimize(engine.compute(2));
  }
}
BENCHMARK(BM_LabelEngineThreads)->Arg(1)->Arg(2)->Arg(0)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// The same probe through one warm engine: the φ-search steady state, where
// graph analysis, decomposition cache and scratch arenas are all amortized.
void BM_LabelEngineWarmProbe(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(table1_suite()[0]);
  LabelOptions lo;
  lo.num_threads = static_cast<int>(state.range(0));
  LabelEngine engine(c, lo);
  (void)engine.compute(3);  // seed the warm-start map
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(2));
  }
}
BENCHMARK(BM_LabelEngineWarmProbe)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// A descending multi-probe suite through one warm engine — the φ-search
// pattern the dirty-set incremental path accelerates (each probe seeds from
// the previous fixpoint and re-touches only nodes whose bound can move).
// Arg: 1 = incremental (default), 0 = cold full sweeps. The deterministic
// node_updates / nodes_skipped / dirty_rounds counters feed the bench gate;
// the incremental variant must stay well under the cold one's updates.
void BM_LabelEngineDescendingProbes(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(table1_suite()[0]);
  LabelOptions lo;
  lo.num_threads = 1;
  lo.incremental = state.range(0) != 0;
  LabelStats stats;
  for (auto _ : state) {
    LabelEngine engine(c, lo);
    stats = LabelStats{};
    for (int phi = 12; phi >= 1; --phi) {
      const LabelResult r = engine.compute(phi);
      stats.accumulate(r.stats);
      benchmark::DoNotOptimize(&r);
      if (!r.feasible) break;
    }
  }
  state.counters["node_updates"] =
      benchmark::Counter(static_cast<double>(stats.node_updates));
  state.counters["nodes_skipped"] =
      benchmark::Counter(static_cast<double>(stats.nodes_skipped));
  state.counters["dirty_rounds"] =
      benchmark::Counter(static_cast<double>(stats.dirty_rounds));
}
BENCHMARK(BM_LabelEngineDescendingProbes)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Scaling-suite labeling: the large-circuit regime the parallel engine
// targets (one infeasible + one feasible probe, as a binary search sees).
void BM_LabelEngineScalingCircuit(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(scaling_suite()[0]);
  LabelOptions lo;
  lo.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LabelEngine engine(c, lo);
    benchmark::DoNotOptimize(engine.compute(1));
    benchmark::DoNotOptimize(engine.compute(2));
  }
}
BENCHMARK(BM_LabelEngineScalingCircuit)->Arg(1)->Arg(2)->Arg(0)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// End-to-end flow benchmarks with the per-stage breakdown attached as
// counters (stage wall time under "s_<stage>", summed over repeated stages;
// plus the probe count and the flow's own wall time share). Emit
// machine-readable results with
//   micro_bench --benchmark_filter=BM_Flow --benchmark_out=BENCH_flow.json
//               --benchmark_out_format=json
void set_flow_counters(benchmark::State& state, const FlowResult& r) {
  std::map<std::string, double> seconds;
  for (const StageMetric& s : r.stage_metrics.stages) seconds[s.name] += s.seconds;
  for (const auto& [name, secs] : seconds) {
    state.counters["s_" + name] = benchmark::Counter(secs);
  }
  state.counters["probes"] = benchmark::Counter(static_cast<double>(r.probes.size()));
  state.counters["phi"] = benchmark::Counter(static_cast<double>(r.phi));
  state.counters["labels_computed"] =
      benchmark::Counter(static_cast<double>(r.stats.node_updates));
  state.counters["nodes_skipped"] =
      benchmark::Counter(static_cast<double>(r.stats.nodes_skipped));
  state.counters["dirty_rounds"] =
      benchmark::Counter(static_cast<double>(r.stats.dirty_rounds));
  state.counters["flow_seconds"] = benchmark::Counter(r.seconds);
}

void BM_FlowTurboMap(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  FlowOptions opt;
  FlowResult r;
  for (auto _ : state) {
    r = run_turbomap(c, opt);
    benchmark::DoNotOptimize(r);
  }
  set_flow_counters(state, r);
}
BENCHMARK(BM_FlowTurboMap)->Unit(benchmark::kMillisecond);

void BM_FlowTurboSyn(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  FlowOptions opt;
  FlowResult r;
  for (auto _ : state) {
    r = run_turbosyn(c, opt);
    benchmark::DoNotOptimize(r);
  }
  set_flow_counters(state, r);
}
BENCHMARK(BM_FlowTurboSyn)->Unit(benchmark::kMillisecond);

void BM_FlowFlowSynS(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  FlowOptions opt;
  FlowResult r;
  for (auto _ : state) {
    r = run_flowsyn_s(c, opt);
    benchmark::DoNotOptimize(r);
  }
  set_flow_counters(state, r);
}
BENCHMARK(BM_FlowFlowSynS)->Unit(benchmark::kMillisecond);

void BM_FlowTurboMapPeriod(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  FlowOptions opt;
  FlowResult r;
  for (auto _ : state) {
    r = run_turbomap_period(c, opt);
    benchmark::DoNotOptimize(r);
  }
  set_flow_counters(state, r);
}
BENCHMARK(BM_FlowTurboMapPeriod)->Unit(benchmark::kMillisecond);

// Portfolio race over the registry engines, sequential (Arg 0: engines run
// in list order, dominated engines are skipped) vs concurrent (Arg 1: lanes
// race over the shared pool with first-to-certificate cancellation). Emit
// machine-readable results with
//   micro_bench --benchmark_filter=BM_Portfolio
//               --benchmark_out=BENCH_portfolio.json --benchmark_out_format=json
// The sequential variant's cancelled_engines / probes counters are
// deterministic replays and feed the bench gate; the concurrent variant
// emits only winner-side counters (which losers got far enough to record
// probes is scheduler-dependent).
void BM_Portfolio(benchmark::State& state) {
  const bool concurrent = state.range(0) == 1;
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  std::vector<const EngineSpec*> engines;
  const std::string invalid = parse_portfolio("turbomap,turbosyn,flowsyn_s", engines);
  TS_CHECK(invalid.empty(), invalid);
  FlowOptions opt;
  PortfolioOptions popt;
  popt.concurrent = concurrent;
  FlowResult r;
  for (auto _ : state) {
    r = run_portfolio(engines, c, opt, popt);
    benchmark::DoNotOptimize(r);
  }
  state.counters["phi"] = benchmark::Counter(static_cast<double>(r.phi));
  const EngineSpec* winner = find_engine(r.engine);
  state.counters["winner_strength"] =
      benchmark::Counter(winner != nullptr ? static_cast<double>(winner->strength) : -1.0);
  if (!concurrent) {
    double cancelled = 0.0;
    for (const EngineRun& row : r.portfolio) cancelled += row.cancelled ? 1.0 : 0.0;
    state.counters["cancelled_engines"] = benchmark::Counter(cancelled);
    state.counters["probes"] = benchmark::Counter(static_cast<double>(r.probes.size()));
  }
  state.counters["flow_seconds"] = benchmark::Counter(r.seconds);
}
BENCHMARK(BM_Portfolio)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

// Batch multi-circuit scheduler, cold (Arg 0: every iteration starts from an
// empty artifact cache and populates it) vs warm (Arg 1: the cache is
// pre-populated once, so every circuit replays its probe ledger). Emit
// machine-readable results with
//   micro_bench --benchmark_filter=BM_Batch --benchmark_out=BENCH_batch.json
//               --benchmark_out_format=json
void BM_BatchFlow(benchmark::State& state) {
  namespace fs = std::filesystem;
  const bool warm = state.range(0) == 1;
  const fs::path dir = fs::temp_directory_path() / "turbosyn_bench_batch";
  fs::create_directories(dir);
  std::vector<BatchJob> jobs;
  for (const BenchmarkSpec& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    const fs::path path = dir / (spec.name + ".blif");
    write_blif_file(c, path.string(), spec.name);
    BatchJob job;
    job.name = spec.name;
    job.path = path.string();
    jobs.push_back(job);
  }
  const fs::path cache_dir = dir / (warm ? "cache_warm" : "cache_cold");
  BatchOptions options;
  options.num_workers = 1;  // deterministic single-lane schedule
  std::optional<FlowCache> cache;  // outlives the loop so counters are readable
  BatchSummary summary;
  if (warm) {
    fs::remove_all(cache_dir);
    cache.emplace(cache_dir.string());
    options.cache = &*cache;
    (void)run_batch(jobs, options);  // populate once; iterations all hit
    for (auto _ : state) {
      summary = run_batch(jobs, options);
      benchmark::DoNotOptimize(summary);
    }
  } else {
    for (auto _ : state) {
      state.PauseTiming();
      fs::remove_all(cache_dir);
      cache.emplace(cache_dir.string());
      options.cache = &*cache;
      state.ResumeTiming();
      summary = run_batch(jobs, options);
      benchmark::DoNotOptimize(summary);
    }
  }
  state.counters["cache_hits"] = benchmark::Counter(static_cast<double>(summary.cache_hits));
  state.counters["completed"] = benchmark::Counter(static_cast<double>(summary.completed));
  // Fault-tolerance counters (DESIGN.md §13): all deterministically zero on a
  // healthy run, so the bench gate flags any retry/quarantine/recovery churn
  // sneaking into the hot path.
  state.counters["retries"] = benchmark::Counter(static_cast<double>(summary.retries));
  state.counters["quarantined"] = benchmark::Counter(static_cast<double>(summary.quarantined));
  state.counters["recovered_entries"] =
      benchmark::Counter(cache ? static_cast<double>(cache->recovered_entries()) : 0.0);
  state.counters["store_retries"] =
      benchmark::Counter(cache ? static_cast<double>(cache->retries()) : 0.0);
}
BENCHMARK(BM_BatchFlow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SequentialSimulation(benchmark::State& state) {
  const Circuit c = generate_fsm_circuit(table1_suite()[0]);
  Rng rng(7);
  const auto stimulus = random_stimulus(rng, c.num_pis(), 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_sequence(c, stimulus));
  }
}
BENCHMARK(BM_SequentialSimulation);

}  // namespace
}  // namespace turbosyn

BENCHMARK_MAIN();
