# Empty compiler generated dependencies file for pipeline_explorer.
# This may be replaced when dependencies are built.
