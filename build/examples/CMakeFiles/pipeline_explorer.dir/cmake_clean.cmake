file(REMOVE_RECURSE
  "CMakeFiles/pipeline_explorer.dir/pipeline_explorer.cpp.o"
  "CMakeFiles/pipeline_explorer.dir/pipeline_explorer.cpp.o.d"
  "pipeline_explorer"
  "pipeline_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
