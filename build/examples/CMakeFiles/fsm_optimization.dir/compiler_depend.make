# Empty compiler generated dependencies file for fsm_optimization.
# This may be replaced when dependencies are built.
