file(REMOVE_RECURSE
  "CMakeFiles/fsm_optimization.dir/fsm_optimization.cpp.o"
  "CMakeFiles/fsm_optimization.dir/fsm_optimization.cpp.o.d"
  "fsm_optimization"
  "fsm_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
