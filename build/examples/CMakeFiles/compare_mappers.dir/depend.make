# Empty dependencies file for compare_mappers.
# This may be replaced when dependencies are built.
