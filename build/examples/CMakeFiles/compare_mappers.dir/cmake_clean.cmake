file(REMOVE_RECURSE
  "CMakeFiles/compare_mappers.dir/compare_mappers.cpp.o"
  "CMakeFiles/compare_mappers.dir/compare_mappers.cpp.o.d"
  "compare_mappers"
  "compare_mappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_mappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
