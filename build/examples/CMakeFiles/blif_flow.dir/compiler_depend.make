# Empty compiler generated dependencies file for blif_flow.
# This may be replaced when dependencies are built.
