file(REMOVE_RECURSE
  "CMakeFiles/blif_flow.dir/blif_flow.cpp.o"
  "CMakeFiles/blif_flow.dir/blif_flow.cpp.o.d"
  "blif_flow"
  "blif_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blif_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
