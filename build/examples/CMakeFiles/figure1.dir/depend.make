# Empty dependencies file for figure1.
# This may be replaced when dependencies are built.
