file(REMOVE_RECURSE
  "CMakeFiles/figure1.dir/figure1.cpp.o"
  "CMakeFiles/figure1.dir/figure1.cpp.o.d"
  "figure1"
  "figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
