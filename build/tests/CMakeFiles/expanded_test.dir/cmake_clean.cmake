file(REMOVE_RECURSE
  "CMakeFiles/expanded_test.dir/expanded_test.cpp.o"
  "CMakeFiles/expanded_test.dir/expanded_test.cpp.o.d"
  "expanded_test"
  "expanded_test.pdb"
  "expanded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expanded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
