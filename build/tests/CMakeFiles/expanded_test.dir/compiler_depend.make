# Empty compiler generated dependencies file for expanded_test.
# This may be replaced when dependencies are built.
