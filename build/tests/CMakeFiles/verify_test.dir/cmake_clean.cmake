file(REMOVE_RECURSE
  "CMakeFiles/verify_test.dir/verify_test.cpp.o"
  "CMakeFiles/verify_test.dir/verify_test.cpp.o.d"
  "verify_test"
  "verify_test.pdb"
  "verify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
