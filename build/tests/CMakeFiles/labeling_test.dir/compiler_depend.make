# Empty compiler generated dependencies file for labeling_test.
# This may be replaced when dependencies are built.
