file(REMOVE_RECURSE
  "CMakeFiles/howard_test.dir/howard_test.cpp.o"
  "CMakeFiles/howard_test.dir/howard_test.cpp.o.d"
  "howard_test"
  "howard_test.pdb"
  "howard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/howard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
