# Empty compiler generated dependencies file for howard_test.
# This may be replaced when dependencies are built.
