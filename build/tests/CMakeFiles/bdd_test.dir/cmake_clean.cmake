file(REMOVE_RECURSE
  "CMakeFiles/bdd_test.dir/bdd_test.cpp.o"
  "CMakeFiles/bdd_test.dir/bdd_test.cpp.o.d"
  "bdd_test"
  "bdd_test.pdb"
  "bdd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
