file(REMOVE_RECURSE
  "CMakeFiles/retime_test.dir/retime_test.cpp.o"
  "CMakeFiles/retime_test.dir/retime_test.cpp.o.d"
  "retime_test"
  "retime_test.pdb"
  "retime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
