# Empty dependencies file for retime_test.
# This may be replaced when dependencies are built.
