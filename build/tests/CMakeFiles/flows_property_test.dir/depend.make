# Empty dependencies file for flows_property_test.
# This may be replaced when dependencies are built.
