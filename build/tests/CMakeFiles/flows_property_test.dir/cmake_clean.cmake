file(REMOVE_RECURSE
  "CMakeFiles/flows_property_test.dir/flows_property_test.cpp.o"
  "CMakeFiles/flows_property_test.dir/flows_property_test.cpp.o.d"
  "flows_property_test"
  "flows_property_test.pdb"
  "flows_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flows_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
