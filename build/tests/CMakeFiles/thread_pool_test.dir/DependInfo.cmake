
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/thread_pool_test.dir/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ts_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/ts_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/ts_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/retime/CMakeFiles/ts_retime.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/ts_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ts_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/ts_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ts_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
