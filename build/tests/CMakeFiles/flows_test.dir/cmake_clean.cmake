file(REMOVE_RECURSE
  "CMakeFiles/flows_test.dir/flows_test.cpp.o"
  "CMakeFiles/flows_test.dir/flows_test.cpp.o.d"
  "flows_test"
  "flows_test.pdb"
  "flows_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
