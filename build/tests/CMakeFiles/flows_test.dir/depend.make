# Empty dependencies file for flows_test.
# This may be replaced when dependencies are built.
