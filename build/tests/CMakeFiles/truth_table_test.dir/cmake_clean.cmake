file(REMOVE_RECURSE
  "CMakeFiles/truth_table_test.dir/truth_table_test.cpp.o"
  "CMakeFiles/truth_table_test.dir/truth_table_test.cpp.o.d"
  "truth_table_test"
  "truth_table_test.pdb"
  "truth_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/truth_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
