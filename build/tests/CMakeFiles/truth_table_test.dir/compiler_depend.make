# Empty compiler generated dependencies file for truth_table_test.
# This may be replaced when dependencies are built.
