# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/truth_table_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/flows_test[1]_include.cmake")
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/bdd_test[1]_include.cmake")
include("/root/repo/build/tests/blif_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/decomp_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/retime_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/howard_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/expanded_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/flows_property_test[1]_include.cmake")
