# Empty compiler generated dependencies file for ts_core.
# This may be replaced when dependencies are built.
