file(REMOVE_RECURSE
  "CMakeFiles/ts_core.dir/expanded.cpp.o"
  "CMakeFiles/ts_core.dir/expanded.cpp.o.d"
  "CMakeFiles/ts_core.dir/flows.cpp.o"
  "CMakeFiles/ts_core.dir/flows.cpp.o.d"
  "CMakeFiles/ts_core.dir/labeling.cpp.o"
  "CMakeFiles/ts_core.dir/labeling.cpp.o.d"
  "CMakeFiles/ts_core.dir/mapgen.cpp.o"
  "CMakeFiles/ts_core.dir/mapgen.cpp.o.d"
  "libts_core.a"
  "libts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
