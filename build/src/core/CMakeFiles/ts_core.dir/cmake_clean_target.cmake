file(REMOVE_RECURSE
  "libts_core.a"
)
