# Empty compiler generated dependencies file for ts_sim.
# This may be replaced when dependencies are built.
