file(REMOVE_RECURSE
  "libts_sim.a"
)
