file(REMOVE_RECURSE
  "CMakeFiles/ts_sim.dir/cone.cpp.o"
  "CMakeFiles/ts_sim.dir/cone.cpp.o.d"
  "CMakeFiles/ts_sim.dir/simulator.cpp.o"
  "CMakeFiles/ts_sim.dir/simulator.cpp.o.d"
  "libts_sim.a"
  "libts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
