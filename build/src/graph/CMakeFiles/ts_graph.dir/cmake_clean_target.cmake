file(REMOVE_RECURSE
  "libts_graph.a"
)
