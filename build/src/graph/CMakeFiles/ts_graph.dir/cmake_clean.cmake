file(REMOVE_RECURSE
  "CMakeFiles/ts_graph.dir/bellman_ford.cpp.o"
  "CMakeFiles/ts_graph.dir/bellman_ford.cpp.o.d"
  "CMakeFiles/ts_graph.dir/digraph.cpp.o"
  "CMakeFiles/ts_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/ts_graph.dir/max_flow.cpp.o"
  "CMakeFiles/ts_graph.dir/max_flow.cpp.o.d"
  "CMakeFiles/ts_graph.dir/scc.cpp.o"
  "CMakeFiles/ts_graph.dir/scc.cpp.o.d"
  "libts_graph.a"
  "libts_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
