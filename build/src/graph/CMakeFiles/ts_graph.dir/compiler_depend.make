# Empty compiler generated dependencies file for ts_graph.
# This may be replaced when dependencies are built.
