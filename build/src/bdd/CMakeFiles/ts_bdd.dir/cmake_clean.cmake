file(REMOVE_RECURSE
  "CMakeFiles/ts_bdd.dir/bdd.cpp.o"
  "CMakeFiles/ts_bdd.dir/bdd.cpp.o.d"
  "libts_bdd.a"
  "libts_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
