# Empty dependencies file for ts_bdd.
# This may be replaced when dependencies are built.
