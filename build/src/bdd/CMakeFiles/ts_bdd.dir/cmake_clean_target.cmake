file(REMOVE_RECURSE
  "libts_bdd.a"
)
