# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("graph")
subdirs("netlist")
subdirs("sim")
subdirs("bdd")
subdirs("decomp")
subdirs("retime")
subdirs("mapping")
subdirs("core")
subdirs("verify")
subdirs("workloads")
