# Empty dependencies file for ts_base.
# This may be replaced when dependencies are built.
