file(REMOVE_RECURSE
  "libts_base.a"
)
