
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/logging.cpp" "src/base/CMakeFiles/ts_base.dir/logging.cpp.o" "gcc" "src/base/CMakeFiles/ts_base.dir/logging.cpp.o.d"
  "/root/repo/src/base/rational.cpp" "src/base/CMakeFiles/ts_base.dir/rational.cpp.o" "gcc" "src/base/CMakeFiles/ts_base.dir/rational.cpp.o.d"
  "/root/repo/src/base/rng.cpp" "src/base/CMakeFiles/ts_base.dir/rng.cpp.o" "gcc" "src/base/CMakeFiles/ts_base.dir/rng.cpp.o.d"
  "/root/repo/src/base/thread_pool.cpp" "src/base/CMakeFiles/ts_base.dir/thread_pool.cpp.o" "gcc" "src/base/CMakeFiles/ts_base.dir/thread_pool.cpp.o.d"
  "/root/repo/src/base/truth_table.cpp" "src/base/CMakeFiles/ts_base.dir/truth_table.cpp.o" "gcc" "src/base/CMakeFiles/ts_base.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
