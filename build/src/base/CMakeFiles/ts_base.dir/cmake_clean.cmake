file(REMOVE_RECURSE
  "CMakeFiles/ts_base.dir/logging.cpp.o"
  "CMakeFiles/ts_base.dir/logging.cpp.o.d"
  "CMakeFiles/ts_base.dir/rational.cpp.o"
  "CMakeFiles/ts_base.dir/rational.cpp.o.d"
  "CMakeFiles/ts_base.dir/rng.cpp.o"
  "CMakeFiles/ts_base.dir/rng.cpp.o.d"
  "CMakeFiles/ts_base.dir/thread_pool.cpp.o"
  "CMakeFiles/ts_base.dir/thread_pool.cpp.o.d"
  "CMakeFiles/ts_base.dir/truth_table.cpp.o"
  "CMakeFiles/ts_base.dir/truth_table.cpp.o.d"
  "libts_base.a"
  "libts_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
