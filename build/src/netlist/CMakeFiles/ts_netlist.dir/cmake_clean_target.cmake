file(REMOVE_RECURSE
  "libts_netlist.a"
)
