file(REMOVE_RECURSE
  "CMakeFiles/ts_netlist.dir/blif.cpp.o"
  "CMakeFiles/ts_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/ts_netlist.dir/circuit.cpp.o"
  "CMakeFiles/ts_netlist.dir/circuit.cpp.o.d"
  "CMakeFiles/ts_netlist.dir/dot.cpp.o"
  "CMakeFiles/ts_netlist.dir/dot.cpp.o.d"
  "CMakeFiles/ts_netlist.dir/gates.cpp.o"
  "CMakeFiles/ts_netlist.dir/gates.cpp.o.d"
  "libts_netlist.a"
  "libts_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
