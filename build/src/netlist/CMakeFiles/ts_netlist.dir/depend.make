# Empty dependencies file for ts_netlist.
# This may be replaced when dependencies are built.
