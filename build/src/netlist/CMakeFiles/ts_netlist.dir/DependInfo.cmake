
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/blif.cpp" "src/netlist/CMakeFiles/ts_netlist.dir/blif.cpp.o" "gcc" "src/netlist/CMakeFiles/ts_netlist.dir/blif.cpp.o.d"
  "/root/repo/src/netlist/circuit.cpp" "src/netlist/CMakeFiles/ts_netlist.dir/circuit.cpp.o" "gcc" "src/netlist/CMakeFiles/ts_netlist.dir/circuit.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/netlist/CMakeFiles/ts_netlist.dir/dot.cpp.o" "gcc" "src/netlist/CMakeFiles/ts_netlist.dir/dot.cpp.o.d"
  "/root/repo/src/netlist/gates.cpp" "src/netlist/CMakeFiles/ts_netlist.dir/gates.cpp.o" "gcc" "src/netlist/CMakeFiles/ts_netlist.dir/gates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ts_base.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ts_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
