file(REMOVE_RECURSE
  "CMakeFiles/ts_verify.dir/equiv.cpp.o"
  "CMakeFiles/ts_verify.dir/equiv.cpp.o.d"
  "libts_verify.a"
  "libts_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
