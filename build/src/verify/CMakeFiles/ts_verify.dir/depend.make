# Empty dependencies file for ts_verify.
# This may be replaced when dependencies are built.
