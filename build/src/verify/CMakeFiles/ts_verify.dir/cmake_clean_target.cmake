file(REMOVE_RECURSE
  "libts_verify.a"
)
