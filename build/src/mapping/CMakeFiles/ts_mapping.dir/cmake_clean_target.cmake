file(REMOVE_RECURSE
  "libts_mapping.a"
)
