file(REMOVE_RECURSE
  "CMakeFiles/ts_mapping.dir/cone_cut.cpp.o"
  "CMakeFiles/ts_mapping.dir/cone_cut.cpp.o.d"
  "CMakeFiles/ts_mapping.dir/dedupe.cpp.o"
  "CMakeFiles/ts_mapping.dir/dedupe.cpp.o.d"
  "CMakeFiles/ts_mapping.dir/flowmap.cpp.o"
  "CMakeFiles/ts_mapping.dir/flowmap.cpp.o.d"
  "CMakeFiles/ts_mapping.dir/pack.cpp.o"
  "CMakeFiles/ts_mapping.dir/pack.cpp.o.d"
  "CMakeFiles/ts_mapping.dir/seq_split.cpp.o"
  "CMakeFiles/ts_mapping.dir/seq_split.cpp.o.d"
  "libts_mapping.a"
  "libts_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
