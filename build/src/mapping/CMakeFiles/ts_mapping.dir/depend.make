# Empty dependencies file for ts_mapping.
# This may be replaced when dependencies are built.
