file(REMOVE_RECURSE
  "CMakeFiles/ts_decomp.dir/gate_decomp.cpp.o"
  "CMakeFiles/ts_decomp.dir/gate_decomp.cpp.o.d"
  "CMakeFiles/ts_decomp.dir/roth_karp.cpp.o"
  "CMakeFiles/ts_decomp.dir/roth_karp.cpp.o.d"
  "libts_decomp.a"
  "libts_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
