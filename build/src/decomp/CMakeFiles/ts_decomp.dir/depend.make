# Empty dependencies file for ts_decomp.
# This may be replaced when dependencies are built.
