
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/gate_decomp.cpp" "src/decomp/CMakeFiles/ts_decomp.dir/gate_decomp.cpp.o" "gcc" "src/decomp/CMakeFiles/ts_decomp.dir/gate_decomp.cpp.o.d"
  "/root/repo/src/decomp/roth_karp.cpp" "src/decomp/CMakeFiles/ts_decomp.dir/roth_karp.cpp.o" "gcc" "src/decomp/CMakeFiles/ts_decomp.dir/roth_karp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ts_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/ts_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ts_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
