file(REMOVE_RECURSE
  "libts_decomp.a"
)
