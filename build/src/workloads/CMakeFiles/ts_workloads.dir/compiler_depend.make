# Empty compiler generated dependencies file for ts_workloads.
# This may be replaced when dependencies are built.
