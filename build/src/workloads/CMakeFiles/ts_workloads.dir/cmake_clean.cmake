file(REMOVE_RECURSE
  "CMakeFiles/ts_workloads.dir/generator.cpp.o"
  "CMakeFiles/ts_workloads.dir/generator.cpp.o.d"
  "CMakeFiles/ts_workloads.dir/samples.cpp.o"
  "CMakeFiles/ts_workloads.dir/samples.cpp.o.d"
  "CMakeFiles/ts_workloads.dir/table.cpp.o"
  "CMakeFiles/ts_workloads.dir/table.cpp.o.d"
  "libts_workloads.a"
  "libts_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
