file(REMOVE_RECURSE
  "libts_workloads.a"
)
