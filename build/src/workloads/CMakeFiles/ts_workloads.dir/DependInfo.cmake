
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/generator.cpp" "src/workloads/CMakeFiles/ts_workloads.dir/generator.cpp.o" "gcc" "src/workloads/CMakeFiles/ts_workloads.dir/generator.cpp.o.d"
  "/root/repo/src/workloads/samples.cpp" "src/workloads/CMakeFiles/ts_workloads.dir/samples.cpp.o" "gcc" "src/workloads/CMakeFiles/ts_workloads.dir/samples.cpp.o.d"
  "/root/repo/src/workloads/table.cpp" "src/workloads/CMakeFiles/ts_workloads.dir/table.cpp.o" "gcc" "src/workloads/CMakeFiles/ts_workloads.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/ts_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ts_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ts_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
