# Empty compiler generated dependencies file for ts_retime.
# This may be replaced when dependencies are built.
