file(REMOVE_RECURSE
  "CMakeFiles/ts_retime.dir/cycle_ratio.cpp.o"
  "CMakeFiles/ts_retime.dir/cycle_ratio.cpp.o.d"
  "CMakeFiles/ts_retime.dir/howard.cpp.o"
  "CMakeFiles/ts_retime.dir/howard.cpp.o.d"
  "CMakeFiles/ts_retime.dir/pipeline.cpp.o"
  "CMakeFiles/ts_retime.dir/pipeline.cpp.o.d"
  "CMakeFiles/ts_retime.dir/retiming.cpp.o"
  "CMakeFiles/ts_retime.dir/retiming.cpp.o.d"
  "libts_retime.a"
  "libts_retime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_retime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
