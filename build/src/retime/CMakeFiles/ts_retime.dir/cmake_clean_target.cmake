file(REMOVE_RECURSE
  "libts_retime.a"
)
