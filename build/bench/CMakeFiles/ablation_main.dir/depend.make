# Empty dependencies file for ablation_main.
# This may be replaced when dependencies are built.
