file(REMOVE_RECURSE
  "CMakeFiles/ablation_main.dir/ablation_main.cpp.o"
  "CMakeFiles/ablation_main.dir/ablation_main.cpp.o.d"
  "ablation_main"
  "ablation_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
