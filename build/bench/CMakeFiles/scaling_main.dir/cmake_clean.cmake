file(REMOVE_RECURSE
  "CMakeFiles/scaling_main.dir/scaling_main.cpp.o"
  "CMakeFiles/scaling_main.dir/scaling_main.cpp.o.d"
  "scaling_main"
  "scaling_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
