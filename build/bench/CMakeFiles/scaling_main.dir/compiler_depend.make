# Empty compiler generated dependencies file for scaling_main.
# This may be replaced when dependencies are built.
