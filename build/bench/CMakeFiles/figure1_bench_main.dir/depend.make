# Empty dependencies file for figure1_bench_main.
# This may be replaced when dependencies are built.
