file(REMOVE_RECURSE
  "CMakeFiles/figure1_bench_main.dir/figure1_bench_main.cpp.o"
  "CMakeFiles/figure1_bench_main.dir/figure1_bench_main.cpp.o.d"
  "figure1_bench_main"
  "figure1_bench_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_bench_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
