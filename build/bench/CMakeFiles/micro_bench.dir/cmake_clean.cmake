file(REMOVE_RECURSE
  "CMakeFiles/micro_bench.dir/micro_bench.cpp.o"
  "CMakeFiles/micro_bench.dir/micro_bench.cpp.o.d"
  "micro_bench"
  "micro_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
