# Empty compiler generated dependencies file for micro_bench.
# This may be replaced when dependencies are built.
