# Empty dependencies file for area_table_main.
# This may be replaced when dependencies are built.
