file(REMOVE_RECURSE
  "CMakeFiles/area_table_main.dir/area_table_main.cpp.o"
  "CMakeFiles/area_table_main.dir/area_table_main.cpp.o.d"
  "area_table_main"
  "area_table_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_table_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
