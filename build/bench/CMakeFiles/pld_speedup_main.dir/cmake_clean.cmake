file(REMOVE_RECURSE
  "CMakeFiles/pld_speedup_main.dir/pld_speedup_main.cpp.o"
  "CMakeFiles/pld_speedup_main.dir/pld_speedup_main.cpp.o.d"
  "pld_speedup_main"
  "pld_speedup_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pld_speedup_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
