# Empty compiler generated dependencies file for pld_speedup_main.
# This may be replaced when dependencies are built.
