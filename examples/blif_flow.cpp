// Command-line synthesis flow over BLIF files:
//
//   $ ./blif_flow input.blif output.blif [K] [turbosyn|turbomap|flowsyn_s|turbomap_period]
//               [--portfolio=E1,E2,...]  (race registry engines, keep the best
//                                         certified result; overrides the
//                                         positional flow name)
//               [--engines-list]  (print the engine registry and exit)
//               [--audit]  (re-verify every invariant of the result)
//               [--trace-json=PATH]  (per-stage/per-probe trace of the run)
//               [--cache-dir=PATH]  (persistent flow-artifact cache: a repeat
//                                    run of an unchanged circuit replays its
//                                    probe ledger instead of recomputing)
//               [--deadline-ms N] [--bdd-node-budget N] ...  (run budgets)
//
// Reads a SIS-style BLIF netlist, decomposes wide gates to make it
// K-bounded, runs the selected flow, reports the metrics and writes the
// mapped LUT network as BLIF. With no arguments it demonstrates the flow on
// the embedded pattern-detector FSM. Ctrl-C cancels cooperatively: the flow
// returns its best-so-far mapping instead of aborting.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/flow_cli.hpp"
#include "cache/cached_flow.hpp"
#include "core/engines.hpp"
#include "core/flows.hpp"
#include "core/portfolio.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "verify/audit.hpp"
#include "workloads/samples.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  try {
    // Flags ("--flag value", "--flag=value" and the value-less --audit) may
    // appear anywhere; everything else is positional.
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        if (a != "--audit" && a.find('=') == std::string::npos && i + 1 < argc) {
          ++i;  // skip the flag's value
        }
        continue;
      }
      pos.push_back(a);
    }
    const FlowCli cli = flow_cli_from_args(argc, argv);
    if (cli.engines_list) {
      std::cout << engine_list_text();
      return 0;
    }
    std::vector<const EngineSpec*> engines;
    if (!cli.portfolio.empty()) {
      const std::string invalid = parse_portfolio(cli.portfolio, engines);
      if (!invalid.empty()) {
        std::cerr << "error: --portfolio: " << invalid << '\n';
        return 2;
      }
    }
    Circuit input =
        !pos.empty() ? read_blif_file(pos[0]) : read_blif_string(pattern_fsm_blif());
    const int k = pos.size() > 2 ? std::stoi(pos[2]) : 5;
    const std::string flow = pos.size() > 3 ? pos[3] : "turbosyn";
    FlowKind kind = FlowKind::kTurboSyn;
    if (engines.empty()) {
      TS_CHECK(flow_kind_from_name(flow, kind),
               "unknown flow '" << flow
                                << "' (expected turbomap|turbosyn|flowsyn_s|turbomap_period)");
    }

    if (!input.is_k_bounded(k)) {
      std::cout << "decomposing gates wider than " << k << " inputs\n";
      input = gate_decompose(input, k);
    }
    const CircuitStats stats = compute_stats(input);
    std::cout << "input: " << stats.gates << " gates, " << stats.ffs << " FFs, MDR "
              << circuit_mdr(input).ratio << '\n';

    FlowOptions options;
    options.k = k;
    options.budget = cli.budget;
    options.incremental = cli.incremental;
    options.collect_artifacts = cli.audit;
    options.trace = cli.trace();
    std::optional<FlowCache> cache;
    if (!cli.cache_dir.empty()) {
      cache.emplace(cli.cache_dir);
      cache->recover();  // GC leftovers of any earlier crashed run
    }
    CacheRunInfo cache_info;
    const FlowResult result =
        engines.empty()
            ? run_flow_cached(kind, input, options, cache ? &*cache : nullptr, &cache_info)
            : run_portfolio_cached(engines, input, options, PortfolioOptions{},
                                   cache ? &*cache : nullptr, &cache_info);
    if (cache) {
      std::cout << "cache: " << (cache_info.hit ? "hit (probe ledger replayed)"
                                                : cache_info.stored ? "miss (stored)" : "miss")
                << " in " << cli.cache_dir << '\n';
    }
    const std::string tag = engines.empty() ? flow : "portfolio";
    if (!engines.empty()) {
      std::cout << "portfolio: winner " << result.engine << " among " << cli.portfolio << '\n';
      for (const EngineRun& row : result.portfolio) {
        std::cout << "  " << row.name << ": status " << status_name(row.status)
                  << (row.certified ? ", certified phi " + std::to_string(row.phi) : "")
                  << (row.cancelled ? ", cancelled" : "") << ", " << row.seconds << " s\n";
      }
    }
    std::cout << tag << ": phi = " << result.phi << ", exact MDR = " << result.exact_mdr
              << ", " << result.luts << " LUTs, " << result.ffs << " FFs, period "
              << result.period << " after pipelining, " << result.seconds << " s, status "
              << status_name(result.status) << '\n';
    if (result.timed_out) {
      std::cout << "note: run stopped early; the mapping above is the best found so far\n";
    }
    if (!result.degraded_nodes.empty()) {
      std::cout << "note: " << result.degraded_nodes.size()
                << " node(s) degraded to plain K-cut labels under resource ceilings\n";
    }
    if (cli.audit) {
      // A portfolio result is audited under the winner's effective options
      // (its registry deltas applied), since those produced the artifacts.
      FlowOptions audit_options = options;
      if (!engines.empty()) {
        const EngineSpec* winner = find_engine(result.engine);
        if (winner != nullptr) audit_options = winner->apply(options);
      }
      if (!audit_and_report(input, result, audit_options, tag, std::cout)) return 1;
    }

    if (pos.size() > 1) {
      write_blif_file(result.mapped, pos[1], "mapped");
      std::cout << "wrote " << pos[1] << '\n';
    } else {
      std::cout << write_blif_string(result.mapped, "mapped");
    }
    if (!cli.write_trace()) return 1;
  } catch (const turbosyn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
