// Command-line synthesis flow over BLIF files:
//
//   $ ./blif_flow input.blif output.blif [K] [turbosyn|turbomap|flowsyn_s]
//
// Reads a SIS-style BLIF netlist, decomposes wide gates to make it
// K-bounded, runs the selected flow, reports the metrics and writes the
// mapped LUT network as BLIF. With no arguments it demonstrates the flow on
// the embedded pattern-detector FSM.

#include <fstream>
#include <iostream>
#include <string>

#include "base/check.hpp"
#include "core/flows.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "workloads/samples.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  try {
    Circuit input = argc > 1 ? read_blif_file(argv[1]) : read_blif_string(pattern_fsm_blif());
    const int k = argc > 3 ? std::stoi(argv[3]) : 5;
    const std::string flow = argc > 4 ? argv[4] : "turbosyn";

    if (!input.is_k_bounded(k)) {
      std::cout << "decomposing gates wider than " << k << " inputs\n";
      input = gate_decompose(input, k);
    }
    const CircuitStats stats = compute_stats(input);
    std::cout << "input: " << stats.gates << " gates, " << stats.ffs << " FFs, MDR "
              << circuit_mdr(input).ratio << '\n';

    FlowOptions options;
    options.k = k;
    FlowResult result;
    if (flow == "turbomap") {
      result = run_turbomap(input, options);
    } else if (flow == "flowsyn_s") {
      result = run_flowsyn_s(input, options);
    } else {
      result = run_turbosyn(input, options);
    }
    std::cout << flow << ": phi = " << result.phi << ", exact MDR = " << result.exact_mdr
              << ", " << result.luts << " LUTs, " << result.ffs << " FFs, period "
              << result.period << " after pipelining, " << result.seconds << " s\n";

    if (argc > 2) {
      write_blif_file(result.mapped, argv[2], "mapped");
      std::cout << "wrote " << argv[2] << '\n';
    } else {
      std::cout << write_blif_string(result.mapped, "mapped");
    }
  } catch (const turbosyn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
