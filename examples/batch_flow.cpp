// Batch multi-circuit scheduler over the shared thread pool:
//
//   $ ./batch_flow manifest.txt [--jsonl PATH] [--workers N]
//                  [--per-circuit-deadline-ms N]
//                  [--cache-dir=PATH]  (shared persistent artifact cache)
//                  [--deadline-ms N] ... (whole-batch run budgets)
//
// The manifest lists one circuit per line: `path.blif [flow] [K]` where
// `flow` is turbomap | turbosyn | flowsyn_s | turbomap_period (default
// turbosyn) or a comma-separated engine list ("turbosyn,turbomap") raced as
// a sequential portfolio, and K defaults to 5; `#` comments and blank lines
// are ignored.
// Each circuit runs its flow sequentially while the pool schedules whole
// circuits across cores; one JSONL record streams out per circuit as it
// finishes. Ctrl-C drains the batch cooperatively: running circuits return
// best-so-far mappings, queued circuits are skipped.
//
// With no manifest, a demo batch of the embedded sample circuits is written
// to a temporary directory and run twice — cold, then warm through the
// cache — to show the artifact store at work.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/flow_cli.hpp"
#include "service/batch_runner.hpp"
#include "workloads/samples.hpp"

namespace {

using namespace turbosyn;

void print_summary(const BatchSummary& summary) {
  std::cout << "batch: " << summary.completed << " completed, " << summary.failed
            << " failed, " << summary.skipped << " skipped, " << summary.cache_hits
            << " cache hits, " << summary.retries << " retries, " << summary.quarantined
            << " quarantined, " << summary.seconds << " s\n";
  for (const BatchRecord& record : summary.records) {
    std::cout << "  " << record.name << " ["
              << (record.portfolio.empty() ? flow_kind_name(record.flow) : "portfolio")
              << " K=" << record.k << "] ";
    if (record.skipped) {
      std::cout << "skipped\n";
    } else if (!record.ok || record.status == Status::kFailed) {
      std::cout << "failed: " << record.error;
      if (!record.failed_stage.empty()) std::cout << " (stage " << record.failed_stage << ')';
      if (record.quarantined) {
        std::cout << " [quarantined after " << record.attempts << " attempt(s)]";
      }
      std::cout << '\n';
    } else {
      std::cout << "phi=" << record.phi << " luts=" << record.luts
                << " period=" << record.period
                << (record.engine.empty() ? "" : " winner=" + record.engine)
                << (record.cache_hit ? " (cache hit)" : "")
                << (record.attempts > 1 ? " (retried)" : "") << " " << record.seconds
                << " s\n";
    }
  }
  if (!summary.poisoned.empty()) {
    std::cout << "  poison list:";
    for (const std::string& name : summary.poisoned) std::cout << ' ' << name;
    std::cout << '\n';
  }
}

/// Writes the embedded sample circuits as BLIF files plus a manifest, and
/// returns the manifest path.
std::string write_demo_batch(const std::filesystem::path& dir) {
  const std::vector<std::pair<std::string, std::string>> samples = {
      {"counter3", counter3_blif()},
      {"pattern_fsm", pattern_fsm_blif()},
      {"traffic_light", traffic_light_blif()},
      {"gray_counter", gray_counter_blif()},
  };
  std::filesystem::create_directories(dir);
  const std::filesystem::path manifest_path = dir / "manifest.txt";
  std::ofstream manifest(manifest_path);
  manifest << "# demo batch: embedded sample circuits\n";
  for (const auto& [name, blif] : samples) {
    const std::filesystem::path blif_path = dir / (name + ".blif");
    std::ofstream out(blif_path);
    out << blif;
    manifest << blif_path.string() << " turbosyn 4\n";
  }
  return manifest_path.string();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const FlowCli cli = flow_cli_from_args(argc, argv);
    std::string manifest_path;
    std::string jsonl_path;
    BatchOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--jsonl" && i + 1 < argc) {
        jsonl_path = argv[++i];
      } else if (a.rfind("--jsonl=", 0) == 0) {
        jsonl_path = a.substr(std::string("--jsonl=").size());
      } else if (a == "--workers" && i + 1 < argc) {
        // Strict: "--workers abc" must not stoi-crash or silently misparse.
        if (!parse_int_strict(argv[++i], 0, 1 << 16, options.num_workers)) {
          std::cerr << "error: --workers expects an integer in [0, " << (1 << 16)
                    << "], got '" << argv[i] << "'\n";
          return 2;
        }
      } else if (a == "--per-circuit-deadline-ms" && i + 1 < argc) {
        long long deadline = 0;
        if (!parse_int_strict(argv[++i], 0, 1LL << 40, deadline)) {
          std::cerr << "error: --per-circuit-deadline-ms expects an integer in [0, "
                    << (1LL << 40) << "], got '" << argv[i] << "'\n";
          return 2;
        }
        options.per_circuit_deadline_ms = deadline;
      } else if (a.rfind("--", 0) == 0) {
        if (a.find('=') == std::string::npos && i + 1 < argc) ++i;  // flag value
      } else {
        manifest_path = a;
      }
    }

    const bool demo = manifest_path.empty();
    std::filesystem::path demo_dir;
    if (demo) {
      demo_dir = std::filesystem::temp_directory_path() / "turbosyn_batch_demo";
      manifest_path = write_demo_batch(demo_dir);
      std::cout << "no manifest given; demo batch written to " << demo_dir << "\n\n";
    }
    const std::vector<BatchJob> jobs = read_batch_manifest_file(manifest_path);
    TS_CHECK(!jobs.empty(), "manifest '" << manifest_path << "' lists no circuits");

    std::optional<FlowCache> cache;
    std::string cache_dir = cli.cache_dir;
    if (demo && cache_dir.empty()) cache_dir = (demo_dir / "cache").string();
    if (!cache_dir.empty()) {
      cache.emplace(cache_dir);
      // Crash recovery before the first lookup: GC stray tmp files, torn
      // entries and dangling near-miss sidecars a killed run left behind.
      const FlowCache::RecoveryStats rec = cache->recover();
      if (rec.total() > 0) {
        std::cout << "cache recovery: " << rec.stray_tmp << " stray tmp, "
                  << rec.torn_entries << " torn entries, " << rec.dangling_sidecars
                  << " dangling sidecars removed\n";
      }
    }
    options.flow.budget = cli.budget;
    options.flow.incremental = cli.incremental;
    options.flow.trace = cli.trace();
    options.cache = cache ? &*cache : nullptr;
    options.cancel = &global_cancel_token();  // Ctrl-C drains the batch

    std::ofstream jsonl_file;
    if (!jsonl_path.empty()) {
      jsonl_file.open(jsonl_path);
      TS_CHECK(jsonl_file.good(), "cannot open JSONL sink '" << jsonl_path << "'");
    }
    std::ostream* jsonl = jsonl_path.empty() ? nullptr : &jsonl_file;

    std::cout << "cold run (" << jobs.size() << " circuits):\n";
    print_summary(run_batch(jobs, options, jsonl));
    if (demo) {
      std::cout << "\nwarm run (same circuits through the cache at " << cache_dir << "):\n";
      print_summary(run_batch(jobs, options, jsonl));
    }
    if (!jsonl_path.empty()) std::cout << "\nwrote JSONL records to " << jsonl_path << '\n';
    if (!cli.write_trace()) return 1;
  } catch (const turbosyn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
