// The paper's Figure 1, step by step: why a target MDR ratio of 1 needs
// sequential functional decomposition, and what TurboSYN's labels, cuts and
// encoder LUTs look like on the smallest circuit that demonstrates it.
//
//   $ ./figure1

#include <iostream>

#include "core/flows.hpp"
#include "core/labeling.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "workloads/samples.hpp"

int main() {
  using namespace turbosyn;
  const Circuit c = figure1_circuit();
  std::cout << "Circuit (BLIF):\n" << write_blif_string(c, "figure1") << '\n';
  std::cout << "The loop g2 ->FF-> g1 -> g2 computes s ^ (a&b) ^ (c&d): 5 distinct\n"
               "inputs, so at K=3 no single LUT covers it and plain mapping keeps two\n"
               "LUTs on the loop — MDR ratio 2.\n\n";

  LabelOptions turbomap_opts;
  turbomap_opts.k = 3;
  const LabelResult tm = compute_labels(c, 1, turbomap_opts);
  std::cout << "TurboMap label computation at phi=1: "
            << (tm.feasible ? "feasible" : "positive loop -> infeasible") << " after "
            << tm.stats.sweeps << " sweeps\n";

  LabelOptions turbosyn_opts = turbomap_opts;
  turbosyn_opts.enable_decomposition = true;
  const LabelResult ts = compute_labels(c, 1, turbosyn_opts);
  std::cout << "TurboSYN label computation at phi=1: "
            << (ts.feasible ? "feasible" : "infeasible") << " after " << ts.stats.sweeps
            << " sweeps, " << ts.stats.decomp_successes << " successful decompositions\n\n";

  FlowOptions options;
  options.k = 3;
  const FlowResult result = run_turbosyn(c, options);
  std::cout << "TurboSYN mapping: phi = " << result.phi << ", exact MDR = " << result.exact_mdr
            << ", " << result.luts << " LUTs\n";
  std::cout << "Mapped network (note the two encoder LUTs feeding the loop LUT):\n"
            << write_blif_string(result.mapped, "figure1_mapped");
  return 0;
}
