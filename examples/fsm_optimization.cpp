// Domain scenario: optimizing a controller-style FSM netlist for clock
// period. Compares the three flows of the paper (FlowSYN-s, TurboMap,
// TurboSYN) on a generated MCNC-class circuit, then validates the winner by
// simulation against the original.
//
//   $ ./fsm_optimization [gates]        (default 250)

#include <iostream>

#include "base/flow_cli.hpp"
#include "base/rng.hpp"
#include "core/flows.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  BenchmarkSpec spec;
  spec.name = "controller";
  spec.seed = 4242;
  spec.num_pis = 6;
  spec.num_pos = 4;
  spec.num_gates = 250;
  if (argc > 1 && !parse_int_strict(argv[1], 1, 1 << 20, spec.num_gates)) {
    std::cerr << "error: [gates] expects an integer in [1, " << (1 << 20) << "], got '"
              << argv[1] << "'\n";
    return 2;
  }
  spec.feedback = 0.05;
  const Circuit fsm = generate_fsm_circuit(spec);
  const CircuitStats stats = compute_stats(fsm);
  std::cout << "controller FSM: " << stats.gates << " gates, " << stats.ffs << " FFs, "
            << stats.sccs_with_cycle << " feedback SCCs\n\n";

  FlowOptions options;  // K = 5
  const FlowResult fs = run_flowsyn_s(fsm, options);
  const FlowResult tm = run_turbomap(fsm, options);
  const FlowResult ts = run_turbosyn(fsm, options);

  TextTable table({"flow", "phi", "exact MDR", "LUTs", "FFs", "period", "time (s)"});
  const auto row = [&](const char* name, const FlowResult& r) {
    table.add_row({name, std::to_string(r.phi), r.exact_mdr.to_string(),
                   std::to_string(r.luts), std::to_string(r.ffs), std::to_string(r.period),
                   format_double(r.seconds)});
  };
  row("FlowSYN-s", fs);
  row("TurboMap", tm);
  row("TurboSYN", ts);
  table.print(std::cout);

  // Validate the TurboSYN mapping by random simulation (the warm-up skips
  // the absorbed-register transient, as in retiming literature).
  Rng rng(99);
  const auto stimulus = random_stimulus(rng, fsm.num_pis(), 200);
  const auto golden = simulate_sequence(fsm, stimulus);
  const auto mapped = simulate_sequence(ts.mapped, stimulus);
  int mismatches = 0;
  for (std::size_t t = 16; t < golden.size(); ++t) {
    if (golden[t] != mapped[t]) ++mismatches;
  }
  std::cout << "\nsimulation check (184 post-warmup cycles): "
            << (mismatches == 0 ? "outputs match" : "MISMATCH") << '\n';
  return mismatches == 0 ? 0 : 1;
}
