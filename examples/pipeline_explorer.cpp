// Scenario: latency/period trade-off exploration. Given a mapped network,
// pipelining trades I/O latency (extra register stages) for clock period
// down to the MDR bound. This example maps a circuit with TurboSYN, then
// sweeps explicit pipeline depths and reports the period retiming reaches at
// each depth — the curve that motivates minimizing the MDR ratio in the
// first place.
//
//   $ ./pipeline_explorer [gates]      (default 150)

#include <iostream>

#include "base/flow_cli.hpp"
#include "core/flows.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/pipeline.hpp"
#include "retime/retiming.hpp"
#include "workloads/generator.hpp"
#include "workloads/table.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  BenchmarkSpec spec;
  spec.name = "dsp";
  spec.seed = 616;
  spec.num_pis = 6;
  spec.num_pos = 4;
  spec.num_gates = 150;
  if (argc > 1 && !parse_int_strict(argv[1], 1, 1 << 20, spec.num_gates)) {
    std::cerr << "error: [gates] expects an integer in [1, " << (1 << 20) << "], got '"
              << argv[1] << "'\n";
    return 2;
  }
  spec.feedback = 0.04;
  spec.exotic_gate_ratio = 0.2;
  const Circuit c = generate_fsm_circuit(spec);

  FlowOptions options;
  options.pipeline = false;  // we sweep pipelining manually below
  const FlowResult ts = run_turbosyn(c, options);
  std::cout << "TurboSYN mapping: phi = " << ts.phi << ", exact MDR = " << ts.exact_mdr
            << ", " << ts.luts << " LUTs\n";
  std::cout << "period floor under retiming + pipelining = ceil(MDR) = "
            << ts.exact_mdr.ceil() << "\n\n";

  TextTable table({"pipeline stages", "clock period after retiming", "latency added"});
  {
    Circuit plain = ts.mapped;
    table.add_row({"0", std::to_string(retime_min_period(plain)), "0"});
  }
  for (int stages = 1; stages <= 8; stages *= 2) {
    Circuit piped = ts.mapped;
    pipeline_inputs(piped, stages);
    pipeline_outputs(piped, stages);
    table.add_row({std::to_string(stages), std::to_string(retime_min_period(piped)),
                   std::to_string(2 * stages) + " cycles"});
  }
  table.print(std::cout);
  std::cout << "\nThe period saturates at the loop bound: pipelining cannot fix loops,\n"
               "which is why TurboSYN minimizes the MDR ratio of the mapping itself.\n";
  return 0;
}
