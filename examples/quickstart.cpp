// Quickstart: parse a BLIF FSM, run the full TurboSYN flow, inspect the
// result, and write the mapped network back out as BLIF.
//
//   $ ./quickstart [--threads N]   (0 = all cores, 1 = sequential)
//                  [--audit]       (re-verify every invariant of the result)
//                  [--deadline-ms N] [--bdd-node-budget N] ...  (run budgets)
//
// The circuit is a 3-bit counter with enable (embedded as a string); the
// same code works for any SIS-style BLIF file via read_blif_file().

#include <cstdlib>
#include <iostream>
#include <string>

#include "base/budget_cli.hpp"
#include "core/flows.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "verify/audit.hpp"
#include "workloads/samples.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--threads" && i + 1 < argc) threads = std::atoi(argv[++i]);
  }
  const RunBudget budget = budget_from_cli(argc, argv);
  const bool audit = audit_flag_from_cli(argc, argv);

  // 1. Load a sequential circuit (latches become edge weights of the
  //    retiming graph).
  const Circuit counter = read_blif_string(counter3_blif());
  const CircuitStats stats = compute_stats(counter);
  std::cout << "input: " << stats.gates << " gates, " << stats.ffs << " FFs, max fanin "
            << stats.max_fanin << ", input MDR ratio " << circuit_mdr(counter).ratio << "\n\n";

  // 2. Map for minimum MDR ratio with TurboSYN (K-LUTs, retiming-aware,
  //    with sequential functional decomposition).
  FlowOptions options;
  options.k = 4;
  options.num_threads = threads;  // 0 = use every core for the label engine
  options.budget = budget;        // unlimited unless budget flags were given
  options.collect_artifacts = audit;
  const FlowResult result = run_turbosyn(counter, options);

  std::cout << "TurboSYN result:\n";
  std::cout << "  status                 = " << status_name(result.status)
            << (result.timed_out ? " (stopped early; best-so-far result)" : "") << '\n';
  std::cout << "  minimum ratio phi      = " << result.phi << '\n';
  std::cout << "  exact MDR of mapping   = " << result.exact_mdr << '\n';
  std::cout << "  LUTs / FFs             = " << result.luts << " / " << result.ffs << '\n';
  std::cout << "  clock period after pipelining + retiming = " << result.period << " (with "
            << result.pipeline_stages << " pipeline stages)\n";
  std::cout << "  label sweeps           = " << result.stats.sweeps << "\n\n";

  // 3. Optionally re-verify every claimed invariant of the result.
  if (audit && !audit_and_report(counter, result, options, "turbosyn", std::cout)) return 1;

  // 4. The mapped network is a Circuit like any other: write it as BLIF.
  std::cout << "mapped network as BLIF:\n" << write_blif_string(result.mapped, "counter3_mapped");
  return 0;
}
