// Quickstart: parse a BLIF FSM, run the full TurboSYN flow, inspect the
// result, and write the mapped network back out as BLIF.
//
//   $ ./quickstart [--threads N]   (0 = all cores, 1 = sequential)
//                  [--audit]       (re-verify every invariant of the result)
//                  [--trace-json=PATH]  (per-stage/per-probe trace of the run)
//                  [--cache-dir=PATH]   (reuse flow artifacts across runs)
//                  [--deadline-ms N] [--bdd-node-budget N] ...  (run budgets)
//
// The circuit is a 3-bit counter with enable (embedded as a string); the
// same code works for any SIS-style BLIF file via read_blif_file().

#include <iostream>
#include <optional>
#include <string>

#include "base/flow_cli.hpp"
#include "cache/cached_flow.hpp"
#include "core/flows.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "verify/audit.hpp"
#include "workloads/samples.hpp"

int main(int argc, char** argv) {
  using namespace turbosyn;
  const FlowCli cli = flow_cli_from_args(argc, argv);

  // 1. Load a sequential circuit (latches become edge weights of the
  //    retiming graph).
  const Circuit counter = read_blif_string(counter3_blif());
  const CircuitStats stats = compute_stats(counter);
  std::cout << "input: " << stats.gates << " gates, " << stats.ffs << " FFs, max fanin "
            << stats.max_fanin << ", input MDR ratio " << circuit_mdr(counter).ratio << "\n\n";

  // 2. Map for minimum MDR ratio with TurboSYN (K-LUTs, retiming-aware,
  //    with sequential functional decomposition).
  FlowOptions options;
  options.k = 4;
  options.num_threads = cli.threads;  // 0 = use every core for the label engine
  options.budget = cli.budget;        // unlimited unless budget flags were given
  options.incremental = cli.incremental;
  options.collect_artifacts = cli.audit;
  options.trace = cli.trace();  // nullptr unless --trace-json was given
  std::optional<FlowCache> cache;  // --cache-dir: persistent artifact store
  if (!cli.cache_dir.empty()) {
    cache.emplace(cli.cache_dir);
    cache->recover();  // GC leftovers of any earlier crashed run
  }
  CacheRunInfo cache_info;
  const FlowResult result = run_flow_cached(FlowKind::kTurboSyn, counter, options,
                                            cache ? &*cache : nullptr, &cache_info);

  std::cout << "TurboSYN result:\n";
  std::cout << "  status                 = " << status_name(result.status)
            << (result.timed_out ? " (stopped early; best-so-far result)" : "") << '\n';
  std::cout << "  minimum ratio phi      = " << result.phi << '\n';
  std::cout << "  exact MDR of mapping   = " << result.exact_mdr << '\n';
  std::cout << "  LUTs / FFs             = " << result.luts << " / " << result.ffs << '\n';
  std::cout << "  clock period after pipelining + retiming = " << result.period << " (with "
            << result.pipeline_stages << " pipeline stages)\n";
  std::cout << "  label sweeps           = " << result.stats.sweeps << "\n";
  if (cache) {
    std::cout << "  cache                  = "
              << (cache_info.hit ? "hit (search replayed from the artifact store)"
                                 : cache_info.stored ? "miss (entry stored)" : "miss")
              << '\n';
  }

  // 3. Each flow carries a per-stage wall-time/counter breakdown.
  std::cout << "  stage breakdown        =";
  for (const StageMetric& stage : result.stage_metrics.stages) {
    std::cout << ' ' << stage.name;
  }
  std::cout << " (" << result.probes.size() << " label probes)\n\n";

  // 4. Optionally re-verify every claimed invariant of the result.
  if (cli.audit && !audit_and_report(counter, result, options, "turbosyn", std::cout)) return 1;

  // 5. The mapped network is a Circuit like any other: write it as BLIF.
  std::cout << "mapped network as BLIF:\n" << write_blif_string(result.mapped, "counter3_mapped");

  // 6. With --trace-json=PATH, dump the span tree the flow recorded.
  if (!cli.write_trace()) return 1;
  if (!cli.trace_json_path.empty()) {
    std::cout << "\nwrote trace to " << cli.trace_json_path << '\n';
  }
  return 0;
}
