// Scenario: choosing the LUT size. Sweeps K for TurboMap and TurboSYN on a
// pattern-detector FSM plus a generated datapath-ish circuit and reports how
// the achievable MDR ratio and area move — the K-vs-period tradeoff that
// motivates retiming-aware mapping in the paper's introduction.
//
//   $ ./compare_mappers

#include <iostream>

#include "core/flows.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"
#include "workloads/table.hpp"

namespace {

void sweep(const turbosyn::Circuit& c, const std::string& label) {
  using namespace turbosyn;
  std::cout << label << ":\n";
  TextTable table({"K", "TM phi", "TM LUTs", "TS phi", "TS LUTs"});
  for (int k = 3; k <= 6; ++k) {
    FlowOptions options;
    options.k = k;
    // Narrow LUTs may need the input re-decomposed first (dmig/DOGMA role).
    const Circuit bounded = c.is_k_bounded(k) ? c : gate_decompose(c, k);
    const FlowResult tm = run_turbomap(bounded, options);
    const FlowResult ts = run_turbosyn(bounded, options);
    table.add_row({std::to_string(k), std::to_string(tm.phi), std::to_string(tm.luts),
                   std::to_string(ts.phi), std::to_string(ts.luts)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace turbosyn;
  sweep(read_blif_string(pattern_fsm_blif()), "pattern-1011 detector FSM");

  BenchmarkSpec spec;
  spec.name = "datapath";
  spec.seed = 515;
  spec.num_pis = 8;
  spec.num_pos = 4;
  spec.num_gates = 120;
  spec.feedback = 0.06;
  spec.exotic_gate_ratio = 0.15;  // mostly AND/OR/XOR: decomposition-friendly
  sweep(generate_fsm_circuit(spec), "generated datapath (120 gates)");
  return 0;
}
