// End-to-end tests of the three flows on hand-built circuits and the tiny
// synthetic suite. The invariants checked here are the paper's core claims:
//   - the mapped network's exact MDR ratio never exceeds the reported phi;
//   - the mapped (un-retimed) network is cycle-accurate equivalent to the
//     input circuit from the all-zero initial state;
//   - TurboSYN's phi is never worse than TurboMap's, and on the Figure-1
//     circuit it is strictly better (ratio 1 vs 2 at K=3).

#include <gtest/gtest.h>

#include <random>

#include "base/rng.hpp"
#include "core/flows.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/retiming.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

// Sequential mapping absorbs registers into LUTs, but zero-state-safe cut
// selection (see expanded.hpp) guarantees the recomputed pre-history matches
// the registers' power-up zeros, so the un-retimed mapped network matches
// the original from cycle 0 — no warm-up transient.
void expect_equivalent(const Circuit& a, const Circuit& b, int cycles, std::uint64_t seed,
                       int warmup = 0) {
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  Rng rng(seed);
  const auto stimulus = random_stimulus(rng, a.num_pis(), cycles);
  const auto out_a = simulate_sequence(a, stimulus);
  const auto out_b = simulate_sequence(b, stimulus);
  for (int t = warmup; t < cycles; ++t) {
    ASSERT_EQ(out_a[static_cast<std::size_t>(t)], out_b[static_cast<std::size_t>(t)])
        << "outputs diverge at cycle " << t;
  }
}

TEST(Flows, Figure1TurboMapNeedsRatio2) {
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  const FlowResult r = run_turbomap(c, opt);
  EXPECT_EQ(r.phi, 2);
  EXPECT_LE(r.exact_mdr, Rational(2));
  expect_equivalent(c, r.mapped, 64, 11);
}

TEST(Flows, Figure1TurboSynReachesRatio1) {
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  const FlowResult r = run_turbosyn(c, opt);
  EXPECT_EQ(r.phi, 1);
  EXPECT_LE(r.exact_mdr, Rational(1));
  EXPECT_LE(r.period, 1);
  expect_equivalent(c, r.mapped, 64, 12);
}

TEST(Flows, RingCollapsesUnderWideLuts) {
  // 4 unit-delay XOR stages, 2 registers: input MDR = 2. At K=5 TurboMap can
  // cover two stages per LUT, reaching ratio 1.
  const Circuit c = ring_circuit(4, 2);
  EXPECT_EQ(circuit_mdr(c).ratio, Rational(2));
  FlowOptions opt;
  opt.k = 5;
  const FlowResult r = run_turbomap(c, opt);
  EXPECT_EQ(r.phi, 1);
  expect_equivalent(c, r.mapped, 64, 13);
}

TEST(Flows, FlowSynSBaselineIsEquivalentAndMeasured) {
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  const FlowResult r = run_flowsyn_s(c, opt);
  EXPECT_GE(r.phi, 1);
  EXPECT_LE(Rational(r.phi - 1), r.exact_mdr);  // phi = ceil(mdr) (or 1)
  expect_equivalent(c, r.mapped, 64, 14);
}

class TinySuiteFlows : public ::testing::TestWithParam<int> {};

TEST_P(TinySuiteFlows, AllThreeFlowsProduceValidEquivalentMappings) {
  const BenchmarkSpec spec = tiny_suite()[static_cast<std::size_t>(GetParam())];
  const Circuit c = generate_fsm_circuit(spec);
  FlowOptions opt;
  opt.k = 5;

  const FlowResult tm = run_turbomap(c, opt);
  EXPECT_LE(tm.exact_mdr, Rational(tm.phi)) << spec.name;
  EXPECT_TRUE(tm.mapped.is_k_bounded(opt.k));
  expect_equivalent(c, tm.mapped, 48, spec.seed);

  const FlowResult ts = run_turbosyn(c, opt);
  EXPECT_LE(ts.exact_mdr, Rational(ts.phi)) << spec.name;
  EXPECT_LE(ts.phi, tm.phi) << spec.name;  // decomposition never hurts phi
  EXPECT_TRUE(ts.mapped.is_k_bounded(opt.k));
  expect_equivalent(c, ts.mapped, 48, spec.seed + 1);

  const FlowResult fs = run_flowsyn_s(c, opt);
  EXPECT_TRUE(fs.mapped.is_k_bounded(opt.k));
  expect_equivalent(c, fs.mapped, 48, spec.seed + 2);
  // TurboSYN should stay within one step of the FF-cutting baseline on the
  // ratio. The extra +1 is the price of zero-state safety: a LUT may not
  // recompute a register-crossed gate whose function is 1 on all-zero inputs
  // (see expanded.hpp), so a loop the baseline sweeps away (or that an
  // unrestricted crossing cut would collapse) can cost one extra LUT level.
  const Rational fs_bound = fs.exact_mdr < Rational(1) ? Rational(1) : fs.exact_mdr + Rational(1);
  EXPECT_LE(Rational(ts.phi), fs_bound + Rational(1));
}

INSTANTIATE_TEST_SUITE_P(AllTiny, TinySuiteFlows, ::testing::Range(0, 6));

TEST(Flows, ZeroStateSafetyKeepsNonResynchronizingLoopsExact) {
  // Regression for a miscompilation found by the flow fuzzer (seed 10): a
  // cut crossed a register through a gate whose function is 1 on all-zero
  // inputs, so the LUT booted into a state the original circuit never
  // visits, and on parity-style loops the outputs disagreed at EVERY cycle,
  // past any warmup. Zero-state-safe cuts keep such gates on the cut (read
  // through real registers), making the mapping exact from cycle 0.
  std::mt19937_64 rng(10 * 0x9e3779b97f4a7c15ull + 1);
  BenchmarkSpec spec;
  spec.name = "fuzz10";
  spec.seed = 10;
  spec.num_pis = 2 + static_cast<int>(rng() % 4);
  spec.num_pos = 2 + static_cast<int>(rng() % 4);
  spec.num_gates = 10 + static_cast<int>(rng() % 22);
  spec.feedback = 0.05 + 0.25 * (static_cast<double>(rng() % 1000) / 1000.0);
  spec.max_fanin = 2 + static_cast<int>(rng() % 3);
  spec.locality = 6 + static_cast<int>(rng() % 13);
  spec.exotic_gate_ratio = 0.35 * (static_cast<double>(rng() % 1000) / 1000.0);
  const Circuit c = generate_fsm_circuit(spec);
  FlowOptions opt;
  opt.k = 4;
  const FlowResult tm = run_turbomap(c, opt);
  expect_equivalent(c, tm.mapped, 256, 10, /*warmup=*/0);
  const FlowResult ts = run_turbosyn(c, opt);
  expect_equivalent(c, ts.mapped, 256, 11, /*warmup=*/0);
}

TEST(Flows, TurboMapPeriodModeMatchesRetimingBound) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  FlowOptions opt;
  opt.k = 5;
  const FlowResult r = run_turbomap_period(c, opt);
  // The label-theoretic optimum never exceeds the achieved (measured) period,
  // which in turn never exceeds the unmapped circuit's period.
  EXPECT_EQ(circuit_clock_period(r.mapped), r.period);
  EXPECT_LE(r.phi, r.period);
  EXPECT_LE(r.period, circuit_clock_period(c));
}

TEST(Flows, PldOffGivesSameAnswerAsPldOn) {
  for (int i = 0; i < 3; ++i) {
    const Circuit c = generate_fsm_circuit(tiny_suite()[static_cast<std::size_t>(i)]);
    FlowOptions on;
    on.k = 4;
    FlowOptions off = on;
    off.use_pld = false;
    const FlowResult a = run_turbomap(c, on);
    const FlowResult b = run_turbomap(c, off);
    EXPECT_EQ(a.phi, b.phi);
    // PLD must never need more sweeps than the n^2 criterion.
    EXPECT_LE(a.stats.sweeps, b.stats.sweeps);
  }
}

// The whole flow — ratio search, warm-started probes and mapping generation —
// must produce the same mapped network whether the label engine runs
// sequentially or in parallel.
TEST(Flows, ParallelFlowMatchesSequentialFlow) {
  for (int i = 0; i < 3; ++i) {
    const Circuit c = generate_fsm_circuit(tiny_suite()[static_cast<std::size_t>(i)]);
    FlowOptions seq;
    seq.k = 4;
    seq.num_threads = 1;
    FlowOptions par = seq;
    par.num_threads = 4;
    const FlowResult a = run_turbosyn(c, seq);
    const FlowResult b = run_turbosyn(c, par);
    EXPECT_EQ(a.phi, b.phi) << i;
    EXPECT_EQ(a.luts, b.luts) << i;
    EXPECT_EQ(write_blif_string(a.mapped), write_blif_string(b.mapped)) << i;
  }
}

TEST(Flows, TruthTableEngineMatchesBddEngine) {
  const Circuit c = figure1_circuit();
  FlowOptions bdd_opt;
  bdd_opt.k = 3;
  FlowOptions tt_opt = bdd_opt;
  tt_opt.use_bdd = false;
  EXPECT_EQ(run_turbosyn(c, bdd_opt).phi, run_turbosyn(c, tt_opt).phi);
}

}  // namespace
}  // namespace turbosyn
