#include <gtest/gtest.h>

#include <set>

#include "base/check.hpp"
#include "base/logging.hpp"
#include "base/rational.hpp"
#include "base/rng.hpp"

namespace turbosyn {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    TS_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "TS_CHECK did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message 42"), std::string::npos);
  }
}

TEST(Rational, NormalizationAndAccessors) {
  const Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_FALSE(r.is_integer());
  EXPECT_TRUE(Rational(4, 2).is_integer());
  EXPECT_THROW((void)Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_THROW((void)(Rational(1) / Rational(0)), Error);
}

TEST(Rational, ComparisonsCrossMultiply) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(7, 7), Rational(1));
  // Large values that would overflow naive 64-bit cross multiplication are
  // handled in 128 bits.
  EXPECT_LT(Rational(INT32_MAX, 1), Rational(INT64_MAX / 2, 1));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, MediantLiesBetween) {
  const Rational a(1, 3);
  const Rational b(1, 2);
  const Rational m = Rational::mediant(a, b);
  EXPECT_LT(a, m);
  EXPECT_LT(m, b);
}

TEST(Rational, MediantOverflowThrowsInsteadOfWrapping) {
  // num/den sums exceeding int64 must throw like operator+/* do, not wrap.
  const Rational big(INT64_MAX - 1, 1);
  EXPECT_THROW((void)Rational::mediant(big, big), Error);
  const Rational wide(1, INT64_MAX - 1);
  EXPECT_THROW((void)Rational::mediant(wide, wide), Error);
  // Near-boundary but representable sums still work.
  const Rational half_num(INT64_MAX / 2, 5);
  EXPECT_EQ(Rational::mediant(half_num, half_num), half_num);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(5, 3).to_string(), "5/3");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_THROW((void)rng.next_below(0), Error);
  for (int i = 0; i < 100; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Logging, LevelGatesOutput) {
  set_log_level(LogLevel::kQuiet);
  TS_INFO("this should not crash");  // dropped
  set_log_level(LogLevel::kDebug);
  TS_DEBUG("emitted at debug level");
  set_log_level(LogLevel::kQuiet);
  EXPECT_EQ(log_level(), LogLevel::kQuiet);
}

}  // namespace
}  // namespace turbosyn
