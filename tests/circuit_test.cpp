#include "netlist/circuit.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {
namespace {

TEST(Circuit, BasicConstruction) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec fanins[2] = {{a, 0}, {b, 1}};
  const NodeId g = c.add_gate("g", tt_and(2), fanins);
  const NodeId po = c.add_po("$po:o", {g, 0});
  c.validate();

  EXPECT_EQ(c.num_pis(), 2);
  EXPECT_EQ(c.num_pos(), 1);
  EXPECT_EQ(c.num_gates(), 1);
  EXPECT_EQ(c.num_ffs(), 1);
  EXPECT_TRUE(c.is_pi(a));
  EXPECT_TRUE(c.is_gate(g));
  EXPECT_TRUE(c.is_po(po));
  EXPECT_EQ(c.delay(a), 0);
  EXPECT_EQ(c.delay(g), 1);
  EXPECT_EQ(c.delay(po), 0);
  EXPECT_EQ(c.fanin(g, 1), b);
  EXPECT_EQ(c.find("g"), g);
  EXPECT_EQ(c.find("missing"), kNoNode);
}

TEST(Circuit, DuplicateNamesRejected) {
  Circuit c;
  c.add_pi("x");
  EXPECT_THROW((void)c.add_pi("x"), Error);
}

TEST(Circuit, ArityMismatchRejected) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec fanins[1] = {{a, 0}};
  EXPECT_THROW((void)c.add_gate("g", tt_and(2), fanins), Error);
}

TEST(Circuit, TwoPhaseConstructionSupportsCycles) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g1 = c.declare_gate("g1");
  const NodeId g2 = c.declare_gate("g2");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {g2, 1}};  // loop closed by a register
  c.finish_gate(g1, tt_xor(2), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  c.finish_gate(g2, tt_not(), f2);
  c.add_po("$po:o", {g2, 0});
  c.validate();
  EXPECT_EQ(compute_stats(c).sccs_with_cycle, 1);
}

TEST(Circuit, ValidateRejectsUnfinishedGate) {
  Circuit c;
  c.add_pi("a");
  c.declare_gate("g");
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, ValidateRejectsCombinationalLoop) {
  Circuit c;
  const NodeId g1 = c.declare_gate("g1");
  const NodeId g2 = c.declare_gate("g2");
  const Circuit::FaninSpec f1[1] = {{g2, 0}};
  c.finish_gate(g1, tt_not(), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  c.finish_gate(g2, tt_not(), f2);
  EXPECT_THROW(c.validate(), Error);
}

TEST(Circuit, FinishGateTwiceRejected) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g = c.declare_gate("g");
  const Circuit::FaninSpec f[1] = {{a, 0}};
  c.finish_gate(g, tt_buf(), f);
  EXPECT_THROW(c.finish_gate(g, tt_buf(), f), Error);
}

TEST(Circuit, NegativeEdgeWeightRejected) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f[1] = {{a, -1}};
  EXPECT_THROW((void)c.add_gate("g", tt_buf(), f), Error);
}

TEST(Circuit, ConstantsAreSources) {
  Circuit c;
  const NodeId k1 = c.add_gate("one", TruthTable::constant(0, true), {});
  c.add_po("$po:o", {k1, 0});
  c.validate();
  EXPECT_TRUE(c.is_source(k1));
  EXPECT_EQ(c.delay(k1), 0);
  EXPECT_EQ(c.num_gates(), 0);  // constants are not LUT-consuming gates
}

TEST(Circuit, StatsCountsSelfLoops) {
  Circuit c;
  const NodeId g = c.declare_gate("g");
  const Circuit::FaninSpec f[1] = {{g, 1}};
  c.finish_gate(g, tt_not(), f);
  c.add_po("$po:o", {g, 0});
  EXPECT_EQ(compute_stats(c).sccs_with_cycle, 1);
}

TEST(Circuit, ToDigraphPreservesIdsAndWeights) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f[1] = {{a, 3}};
  const NodeId g = c.add_gate("g", tt_buf(), f);
  c.add_po("$po:o", {g, 0});
  const Digraph d = c.to_digraph();
  EXPECT_EQ(d.num_nodes(), c.num_nodes());
  EXPECT_EQ(d.num_edges(), c.num_edges());
  EXPECT_EQ(d.edge(0).from, a);
  EXPECT_EQ(d.edge(0).weight, 3);
}

}  // namespace
}  // namespace turbosyn
