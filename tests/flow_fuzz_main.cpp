// Differential flow fuzzer: random sequential circuits through every flow,
// with the invariant auditor as the oracle.
//
//   $ flow_fuzz_main [--seeds N | --seeds A..B] [--time-budget SECONDS]
//                    [--threads N] [--through-cache] [--portfolio]
//                    [--hot-policy] [--require-all] [--verbose]
//
// Per seed it generates a small random FSM circuit (workloads/generator),
// runs TurboMap and TurboSYN, and checks:
//   - every flow result passes the full stage-by-stage audit
//     (structure, interface, labels, cuts, MDR, period, equivalence);
//   - 1-thread and N-thread runs are bit-identical (phi, period and the
//     BLIF text of the mapped network);
//   - replaying a run with the same options is bit-identical (every 4th
//     seed);
//   - budget-degraded runs (every 3rd seed: tight decomposition/flow
//     ceilings) still audit clean and never beat the unlimited phi;
//   - deadline-interrupted runs (every 5th seed: 0 ms deadline) still audit
//     clean — the identity fallback must stay equivalent;
//   - TurboMap and TurboSYN mappings are pairwise bounded-equivalent;
//   - with --through-cache, every seed also replays TurboSYN through a fresh
//     flow-artifact cache (src/cache): the populate run and the cache-hit run
//     must both be bit-identical with the uncached run, the hit's probe
//     ledger must contain only imported records, and the hit must pass the
//     full audit;
//   - with --portfolio, every seed also races a rotating engine portfolio
//     (core/portfolio) in both sequential and concurrent modes: the race
//     must be bit-identical to the best standalone engine under the shared
//     selection order, every cancelled row must be certificate-free, and
//     the result must pass the full audit including the "portfolio" check;
//   - with --hot-policy, every seed replays the same store/hit/evict access
//     sequence through two fresh caches whose hot tiers are entry-capped
//     small enough to churn, one under the recency policy and one under
//     cost-aware: every run must be bit-identical across the two policies
//     (and to the uncached run), hits must still import-only their ledgers,
//     and the hit must pass the full audit — the eviction policy may change
//     WHAT stays resident, never a result.
//
// Exits nonzero on the first failing seed's summary. --time-budget stops
// early once the budget is spent; with --require-all, not finishing every
// requested seed is itself a failure (CI uses this to keep the box honest).

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "cache/cached_flow.hpp"
#include "core/engines.hpp"
#include "core/flows.hpp"
#include "core/portfolio.hpp"
#include "netlist/blif.hpp"
#include "verify/audit.hpp"
#include "verify/equiv.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace turbosyn;

struct FuzzConfig {
  std::uint64_t first_seed = 1;
  std::uint64_t last_seed = 50;
  double time_budget_s = 0.0;  // 0 = unlimited
  int threads = 2;             // the "N" of the 1-vs-N determinism check
  bool through_cache = false;  // replay every seed through a flow cache
  bool portfolio = false;      // race a rotating engine portfolio per seed
  bool hot_policy = false;     // recency-vs-cost-aware hot-tier oracle
  bool require_all = false;
  bool verbose = false;
};

FuzzConfig parse_args(int argc, char** argv) {
  FuzzConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds" && i + 1 < argc) {
      const std::string v = argv[++i];
      const auto dots = v.find("..");
      if (dots == std::string::npos) {
        cfg.first_seed = 1;
        cfg.last_seed = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        cfg.first_seed = std::strtoull(v.substr(0, dots).c_str(), nullptr, 10);
        cfg.last_seed = std::strtoull(v.substr(dots + 2).c_str(), nullptr, 10);
      }
    } else if (a == "--time-budget" && i + 1 < argc) {
      cfg.time_budget_s = std::strtod(argv[++i], nullptr);
    } else if (a == "--threads" && i + 1 < argc) {
      cfg.threads = std::atoi(argv[++i]);
    } else if (a == "--through-cache") {
      cfg.through_cache = true;
    } else if (a == "--portfolio") {
      cfg.portfolio = true;
    } else if (a == "--hot-policy") {
      cfg.hot_policy = true;
    } else if (a == "--require-all") {
      cfg.require_all = true;
    } else if (a == "--verbose") {
      cfg.verbose = true;
    } else {
      std::cerr << "usage: flow_fuzz_main [--seeds N|A..B] [--time-budget S] [--threads N]"
                   " [--through-cache] [--portfolio] [--hot-policy] [--require-all]"
                   " [--verbose]\n";
      std::exit(2);
    }
  }
  return cfg;
}

/// Small random spec: the circuits stay tiny so the full audit (including
/// bounded equivalence) fits dozens of seeds into a CI time box.
BenchmarkSpec spec_for_seed(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  BenchmarkSpec spec;
  spec.name = "fuzz" + std::to_string(seed);
  spec.seed = seed;
  spec.num_pis = 2 + static_cast<int>(rng() % 4);
  spec.num_pos = 2 + static_cast<int>(rng() % 4);
  spec.num_gates = 10 + static_cast<int>(rng() % 22);
  spec.feedback = 0.05 + 0.25 * (static_cast<double>(rng() % 1000) / 1000.0);
  spec.max_fanin = 2 + static_cast<int>(rng() % 3);
  spec.locality = 6 + static_cast<int>(rng() % 13);
  spec.exotic_gate_ratio = 0.35 * (static_cast<double>(rng() % 1000) / 1000.0);
  return spec;
}

struct SeedOutcome {
  int checks = 0;
  std::vector<std::string> failures;
};

void expect(SeedOutcome& out, bool ok, const std::string& what) {
  ++out.checks;
  if (!ok) out.failures.push_back(what);
}

void audit_into(SeedOutcome& out, const Circuit& input, const FlowResult& result,
                const FlowOptions& opt, const std::string& tag, std::uint64_t seed,
                bool verbose) {
  AuditOptions audit;
  audit.seq_cycles = 128;
  audit.seq_runs = 2;
  audit.seq_seed = seed;
  const AuditReport report = audit_flow(input, result, opt, audit);
  ++out.checks;
  if (!report.passed()) {
    out.failures.push_back("audit " + tag + " failed:\n" + report.breakdown());
  } else if (verbose) {
    std::cerr << "  audit " << tag << ": PASS (" << report.checks.size() << " stages)\n";
  }
}

std::string fingerprint(const FlowResult& r) {
  return std::to_string(r.phi) + "|" + std::to_string(r.period) + "|" +
         std::to_string(r.pipeline_stages) + "|" + write_blif_string(r.mapped, "fp");
}

/// A copy of `c` with one gate's function complemented: the smallest
/// near-miss edit — same interface and wiring, one local logic change.
Circuit mutate_one_gate(const Circuit& c, std::uint64_t seed) {
  std::vector<NodeId> gates;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v) && !c.fanin_edges(v).empty()) gates.push_back(v);
  }
  TS_CHECK(!gates.empty(), "generated circuit has no gates to mutate");
  const NodeId victim = gates[seed % gates.size()];

  Circuit m;
  std::vector<NodeId> map(static_cast<std::size_t>(c.num_nodes()), kNoNode);
  const auto mapped = [&map](NodeId v) -> NodeId& { return map[static_cast<std::size_t>(v)]; };
  for (const NodeId v : c.pis()) mapped(v) = m.add_pi(c.name(v));
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v)) mapped(v) = m.declare_gate(c.name(v));
  }
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v)) continue;
    std::vector<Circuit::FaninSpec> fanins;
    for (const EdgeId e : c.fanin_edges(v)) {
      fanins.push_back({mapped(c.edge(e).from), c.edge(e).weight});
    }
    const TruthTable& f = c.function(v);
    m.finish_gate(mapped(v), v == victim ? ~f : f, fanins);
  }
  for (const NodeId v : c.pos()) {
    const EdgeId e = c.fanin_edges(v)[0];
    m.add_po(c.name(v), {mapped(c.edge(e).from), c.edge(e).weight});
  }
  m.validate();
  return m;
}

SeedOutcome run_seed(std::uint64_t seed, const FuzzConfig& cfg, FlowCache* cache) {
  SeedOutcome out;
  const Circuit c = generate_fsm_circuit(spec_for_seed(seed));

  FlowOptions opt;
  opt.k = 4;
  opt.num_threads = 1;
  opt.collect_artifacts = true;

  const FlowResult tm = run_turbomap(c, opt);
  audit_into(out, c, tm, opt, "turbomap", seed, cfg.verbose);
  const FlowResult ts = run_turbosyn(c, opt);
  audit_into(out, c, ts, opt, "turbosyn", seed, cfg.verbose);
  expect(out, ts.phi <= tm.phi, "turbosyn phi " + std::to_string(ts.phi) +
                                    " worse than turbomap phi " + std::to_string(tm.phi));

  // Thread-count determinism: the parallel label engine must not change the
  // result, bit for bit.
  if (cfg.threads != 1) {
    FlowOptions par = opt;
    par.num_threads = cfg.threads;
    const FlowResult tm_par = run_turbomap(c, par);
    expect(out, fingerprint(tm_par) == fingerprint(tm),
           "turbomap differs between 1 and " + std::to_string(cfg.threads) + " threads");
    if (seed % 2 == 0) {
      const FlowResult ts_par = run_turbosyn(c, par);
      expect(out, fingerprint(ts_par) == fingerprint(ts),
             "turbosyn differs between 1 and " + std::to_string(cfg.threads) + " threads");
    }
  }

  // Replay determinism: same options, same process, same bits.
  if (seed % 4 == 0) {
    const FlowResult replay = run_turbosyn(c, opt);
    expect(out, fingerprint(replay) == fingerprint(ts), "turbosyn replay is not bit-identical");
  }

  // Incremental-vs-cold bit-identity: dirty-set warm starts must change the
  // work counters only — phi, labels and the mapping stay identical. (The
  // runs above used the default, incremental path.)
  {
    FlowOptions cold_opt = opt;
    cold_opt.incremental = false;
    const FlowResult tm_cold = run_turbomap(c, cold_opt);
    expect(out, fingerprint(tm_cold) == fingerprint(tm),
           "turbomap incremental and cold runs differ");
    expect(out, tm_cold.artifacts.labels.labels == tm.artifacts.labels.labels,
           "turbomap incremental and cold label vectors differ");
    if (seed % 2 == 1) {
      const FlowResult ts_cold = run_turbosyn(c, cold_opt);
      expect(out, fingerprint(ts_cold) == fingerprint(ts),
             "turbosyn incremental and cold runs differ");
      expect(out, ts_cold.artifacts.labels.labels == ts.artifacts.labels.labels,
             "turbosyn incremental and cold label vectors differ");
    }
  }

  // Tight resource ceilings: the run may degrade, but the result must still
  // audit clean and can only be worse than the unlimited run.
  if (seed % 3 == 0) {
    FlowOptions tight = opt;
    tight.budget.set_decomp_attempt_budget(2);
    tight.budget.set_flow_augment_budget(200);
    const FlowResult degraded = run_turbosyn(c, tight);
    audit_into(out, c, degraded, tight, "turbosyn/tight-budget", seed, cfg.verbose);
    expect(out, degraded.phi >= ts.phi,
           "budgeted turbosyn phi " + std::to_string(degraded.phi) +
               " beats the unlimited phi " + std::to_string(ts.phi));
  }

  // Expired deadline: the flow falls back to its best-so-far (possibly
  // identity) mapping, which must still be a valid, equivalent network.
  if (seed % 5 == 0) {
    FlowOptions expired = opt;
    expired.budget.set_deadline_after_ms(0);
    const FlowResult fallback = run_turbomap(c, expired);
    audit_into(out, c, fallback, expired, "turbomap/expired-deadline", seed, cfg.verbose);
  }

  // Through-cache replay: populating the flow-artifact cache and replaying
  // the hit must both reproduce the uncached run, bit for bit, and the hit's
  // imported probe ledger must still satisfy the auditor.
  if (cache != nullptr) {
    CacheRunInfo cold_info;
    const FlowResult cold = run_flow_cached(FlowKind::kTurboSyn, c, opt, cache, &cold_info);
    expect(out, fingerprint(cold) == fingerprint(ts),
           "through-cache: populate run differs from the uncached run");
    expect(out, cold_info.stored || cold_info.hit, "through-cache: populate run not stored");
    CacheRunInfo warm_info;
    const FlowResult warm = run_flow_cached(FlowKind::kTurboSyn, c, opt, cache, &warm_info);
    expect(out, warm_info.hit, "through-cache: second run missed the cache");
    expect(out, fingerprint(warm) == fingerprint(ts),
           "through-cache: cache-hit run differs from the uncached run");
    bool all_imported = !warm.probes.empty();
    for (const ProbeRecord& probe : warm.probes) all_imported = all_imported && probe.imported;
    expect(out, !warm_info.hit || all_imported,
           "through-cache: cache-hit probe ledger has non-imported records");
    if (warm_info.hit) audit_into(out, c, warm, opt, "turbosyn/through-cache", seed, cfg.verbose);

    // Near-miss warm start: a one-gate edit of the same circuit retrieves
    // the stored TurboMap entry as a donor seed; the seeded run must match
    // its own cold (no-incremental) run bit for bit, the seed must never
    // certify anything, and the result must still audit clean.
    if (seed % 2 == 0) {
      CacheRunInfo tm_info;
      const FlowResult tm_cached =
          run_flow_cached(FlowKind::kTurboMap, c, opt, cache, &tm_info);
      expect(out, fingerprint(tm_cached) == fingerprint(tm),
             "through-cache: turbomap populate run differs from the uncached run");
      const Circuit edited = mutate_one_gate(c, seed);
      FlowOptions cold_opt = opt;
      cold_opt.incremental = false;
      const FlowResult edited_cold = run_turbomap(edited, cold_opt);
      CacheRunInfo near_info;
      const FlowResult seeded =
          run_flow_cached(FlowKind::kTurboMap, edited, opt, cache, &near_info);
      expect(out, !near_info.hit, "near-miss: edited circuit hit the exact cache");
      expect(out, fingerprint(seeded) == fingerprint(edited_cold),
             "near-miss: seeded run differs from the cold run");
      bool seed_certifies = false;
      for (const ProbeRecord& rec : seeded.probes) {
        if (rec.seed_only && rec.feasible) seed_certifies = true;
      }
      expect(out, !seed_certifies, "near-miss: seed-only record claims a verdict");
      if (near_info.near_miss) {
        audit_into(out, edited, seeded, opt, "turbomap/near-miss", seed, cfg.verbose);
      }
    }
  }

  // Hot-tier policy invariance: the identical access sequence through two
  // fresh caches — recency vs cost-aware eviction, tiers capped at two
  // entries so the three distinct circuits below force eviction churn —
  // must produce bit-identical results run for run (and match the uncached
  // baselines), with audit-clean imported ledgers on the hits.
  if (cfg.hot_policy) {
    const Circuit edited = mutate_one_gate(c, seed);
    FlowOptions cold_opt = opt;
    cold_opt.incremental = false;
    const FlowResult edited_baseline = run_turbosyn(edited, cold_opt);

    struct PolicyRun {
      std::string populate, populate_tm, populate_edited, hit, hit_edited;
      bool hit_hit = false, hit_edited_hit = false;
      std::int64_t hot_cost_evictions = 0;
    };
    const HotPolicy policies[] = {HotPolicy::kRecency, HotPolicy::kCostAware};
    PolicyRun runs[2];
    for (int p = 0; p < 2; ++p) {
      const std::filesystem::path dir =
          std::filesystem::temp_directory_path() /
          ("turbosyn_fuzz_hotpol." + std::to_string(::getpid()) + "." +
           std::to_string(seed) + "." + hot_policy_name(policies[p]));
      std::filesystem::remove_all(dir);
      FlowCache hot_cache(dir.string());
      hot_cache.enable_hot_tier(std::size_t{16} << 20, 2);
      hot_cache.set_hot_policy(policies[p]);

      PolicyRun& r = runs[p];
      r.populate = fingerprint(run_flow_cached(FlowKind::kTurboSyn, c, opt, &hot_cache));
      r.populate_tm = fingerprint(run_flow_cached(FlowKind::kTurboMap, c, opt, &hot_cache));
      r.populate_edited =
          fingerprint(run_flow_cached(FlowKind::kTurboSyn, edited, opt, &hot_cache));
      CacheRunInfo hit_info;
      const FlowResult hit = run_flow_cached(FlowKind::kTurboSyn, c, opt, &hot_cache, &hit_info);
      r.hit = fingerprint(hit);
      r.hit_hit = hit_info.hit;
      CacheRunInfo edited_info;
      const FlowResult hit_edited =
          run_flow_cached(FlowKind::kTurboSyn, edited, opt, &hot_cache, &edited_info);
      r.hit_edited = fingerprint(hit_edited);
      r.hit_edited_hit = edited_info.hit;
      r.hot_cost_evictions = hot_cache.hot_cost_evictions();

      const std::string tag = std::string("hot-policy/") + hot_policy_name(policies[p]);
      expect(out, r.populate == fingerprint(ts), tag + ": populate differs from uncached");
      expect(out, r.populate_tm == fingerprint(tm),
             tag + ": turbomap populate differs from uncached");
      expect(out, r.hit_hit, tag + ": replay of the stored circuit missed");
      expect(out, r.hit_edited_hit, tag + ": replay of the edited circuit missed");
      bool all_imported = !hit.probes.empty();
      for (const ProbeRecord& probe : hit.probes) all_imported = all_imported && probe.imported;
      expect(out, !r.hit_hit || all_imported, tag + ": hit ledger has non-imported records");
      if (r.hit_hit) audit_into(out, c, hit, opt, tag, seed, cfg.verbose);
      std::filesystem::remove_all(dir);
    }
    expect(out, runs[0].populate_edited == runs[1].populate_edited,
           "hot-policy: edited populate differs between policies");
    expect(out, runs[0].hit == runs[1].hit, "hot-policy: hit differs between policies");
    expect(out, runs[0].hit_edited == runs[1].hit_edited,
           "hot-policy: edited hit differs between policies");
    expect(out, runs[0].populate_edited == fingerprint(edited_baseline),
           "hot-policy: edited populate differs from the cold baseline");
    expect(out, runs[0].hot_cost_evictions == 0,
           "hot-policy: recency run reported cost-aware evictions");
  }

  // Portfolio race vs the "run everything, pick the best" oracle: the race
  // (sequential and concurrent alike) must be bit-identical to the best
  // standalone engine under the shared selection order, cancelled rows must
  // be certificate-free, and the race must audit clean (the "portfolio"
  // check re-verifies the table).
  if (cfg.portfolio) {
    static const std::vector<std::vector<std::string>> kPortfolios = {
        {"turbomap", "turbosyn", "flowsyn_s"},
        {"turbosyn", "turbomap"},
        {"turbomap_nopld", "turbosyn_bisect", "flowsyn_s"},
        {"turbosyn_tt", "turbomap"},
    };
    const std::vector<std::string>& names = kPortfolios[seed % kPortfolios.size()];
    std::vector<const EngineSpec*> engines;
    const std::string invalid = parse_portfolio(
        [&names] {
          std::string joined;
          for (const std::string& n : names) {
            if (!joined.empty()) joined += ',';
            joined += n;
          }
          return joined;
        }(),
        engines);
    expect(out, invalid.empty(), "portfolio spec rejected: " + invalid);

    std::vector<FlowResult> standalone;
    for (const EngineSpec* spec : engines) standalone.push_back(run_engine(*spec, c, opt));
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < engines.size(); ++i) {
      if (standalone[i].status != Status::kOk) continue;
      if (!best || portfolio_prefers(standalone[i].phi, engines[i]->strength, i,
                                     standalone[*best].phi, engines[*best]->strength,
                                     *best)) {
        best = i;
      }
    }
    expect(out, best.has_value(), "portfolio oracle: no standalone engine certified");
    if (best) {
      PortfolioOptions seq;
      seq.concurrent = false;
      const FlowResult race_seq = run_portfolio(engines, c, opt, seq);
      expect(out, race_seq.engine == engines[*best]->name,
             "sequential race winner " + race_seq.engine + " != oracle " +
                 engines[*best]->name);
      expect(out, fingerprint(race_seq) == fingerprint(standalone[*best]),
             "sequential race differs from the best standalone engine");
      const FlowResult race_con = run_portfolio(engines, c, opt);
      expect(out, race_con.engine == engines[*best]->name,
             "concurrent race winner " + race_con.engine + " != oracle " +
                 engines[*best]->name);
      expect(out, fingerprint(race_con) == fingerprint(standalone[*best]),
             "concurrent race differs from the best standalone engine");
      for (const EngineRun& row : race_con.portfolio) {
        expect(out, !(row.cancelled && row.certified),
               "cancelled engine " + row.name + " holds a certificate");
      }
      audit_into(out, c, race_con, opt, "portfolio", seed, cfg.verbose);
    }
  }

  // Pairwise: the two mappings of the same input must agree with each other.
  {
    SequentialCheckOptions pairwise;
    pairwise.cycles = 128;
    pairwise.runs = 2;
    pairwise.warmup = 32;
    pairwise.seed = seed;
    ++out.checks;
    try {
      if (!sequentially_equivalent_bounded(tm.mapped, ts.mapped, pairwise)) {
        out.failures.push_back("turbomap and turbosyn mappings disagree");
      }
    } catch (const Error& e) {
      out.failures.push_back(std::string("pairwise check threw: ") + e.what());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const FuzzConfig cfg = parse_args(argc, argv);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  // --through-cache: one fresh store per process, shared across seeds (each
  // seed's circuit is distinct, so first touch misses and the replay hits).
  std::optional<turbosyn::FlowCache> cache;
  std::filesystem::path cache_dir;
  if (cfg.through_cache) {
    cache_dir = std::filesystem::temp_directory_path() /
                ("turbosyn_flow_fuzz_cache." + std::to_string(::getpid()));
    std::filesystem::remove_all(cache_dir);
    cache.emplace(cache_dir.string());
  }

  std::uint64_t seeds_run = 0;
  std::uint64_t seeds_failed = 0;
  std::uint64_t checks = 0;
  bool out_of_time = false;
  for (std::uint64_t seed = cfg.first_seed; seed <= cfg.last_seed; ++seed) {
    if (cfg.time_budget_s > 0 && elapsed_s() > cfg.time_budget_s) {
      out_of_time = true;
      break;
    }
    SeedOutcome out;
    try {
      out = run_seed(seed, cfg, cache ? &*cache : nullptr);
    } catch (const std::exception& e) {
      out.failures.push_back(std::string("unhandled exception: ") + e.what());
    }
    ++seeds_run;
    checks += static_cast<std::uint64_t>(out.checks);
    if (!out.failures.empty()) {
      ++seeds_failed;
      std::cerr << "[flow_fuzz] seed " << seed << " FAILED:\n";
      for (const std::string& f : out.failures) std::cerr << "  " << f << '\n';
    } else if (cfg.verbose) {
      std::cerr << "[flow_fuzz] seed " << seed << " ok (" << out.checks << " checks)\n";
    }
  }

  if (cache) {
    cache.reset();
    std::filesystem::remove_all(cache_dir);
  }

  const std::uint64_t requested = cfg.last_seed - cfg.first_seed + 1;
  std::cout << "[flow_fuzz] " << seeds_run << "/" << requested << " seeds, " << checks
            << " checks, " << seeds_failed << " failed, "
            << static_cast<int>(elapsed_s()) << "s" << (out_of_time ? " (time budget hit)" : "")
            << '\n';
  if (seeds_failed > 0) return 1;
  if (cfg.require_all && seeds_run < requested) {
    std::cerr << "[flow_fuzz] --require-all: only " << seeds_run << " of " << requested
              << " seeds ran within the time budget\n";
    return 1;
  }
  return 0;
}
