// Randomized malformed-BLIF smoke test: the parser must reject or accept
// every mutated input cleanly — throw turbosyn::Error with a useful message,
// or parse successfully — and must never crash, corrupt memory (run this
// under ASan/UBSan in CI) or hang.
//
//   $ ./blif_fuzz_main [--seconds N] [--seed S]
//
// Mutations cover the malformed shapes seen in the wild: truncated files,
// flipped cover polarities, cover-row width mismatches, unknown directives,
// duplicated drivers, garbage after .end, random byte edits and line
// shuffles. Every accepted circuit is additionally validated end-to-end by
// re-serializing it.

#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/blif.hpp"
#include "workloads/samples.hpp"

namespace {

using turbosyn::Rng;

std::string random_token(Rng& rng) {
  static const char* pool[] = {".names", ".latch", ".inputs", ".outputs", ".end",
                               ".model", ".clock", ".exdc",   "01-",      "a",
                               "b",      "o",     "1",        "0",        "-",
                               "\\",     "#x",    "q2",       "zz9"};
  return pool[rng.next_below(sizeof(pool) / sizeof(pool[0]))];
}

std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  if (s.empty()) return random_token(rng);  // fully truncated earlier round
  const int kind = static_cast<int>(rng.next_below(8));
  switch (kind) {
    case 0:  // truncate at a random byte (mid-token, mid-line, anywhere)
      s.resize(rng.next_below(s.size() + 1));
      break;
    case 1: {  // flip random bytes
      for (int i = 0; i < 4 && !s.empty(); ++i) {
        s[rng.next_below(s.size())] = static_cast<char>(rng.next_in(1, 126));
      }
      break;
    }
    case 2: {  // flip a cover polarity bit ('1' <-> '0') to mix polarities
      for (std::size_t i = 0; i < s.size(); ++i) {
        if ((s[i] == '1' || s[i] == '0') && rng.next_bool(0.2)) {
          s[i] = s[i] == '1' ? '0' : '1';
        }
      }
      break;
    }
    case 3: {  // widen or narrow a cover row (width mismatch)
      const auto pos = s.find("1 1");
      if (pos != std::string::npos) s.insert(pos, rng.next_bool() ? "1" : "1-0");
      break;
    }
    case 4:  // unknown directive
      s.insert(rng.next_below(s.size() + 1), "\n.subckt foo a=b\n");
      break;
    case 5:  // garbage after .end
      s += "\nleftover tokens after the end\n";
      break;
    case 6: {  // splice random tokens into a random line
      std::string line;
      const int n = static_cast<int>(rng.next_in(1, 6));
      for (int i = 0; i < n; ++i) line += random_token(rng) + " ";
      s.insert(rng.next_below(s.size() + 1), "\n" + line + "\n");
      break;
    }
    default: {  // duplicate a chunk (duplicate drivers / repeated sections)
      const std::size_t from = rng.next_below(s.size());
      const std::size_t len = rng.next_below(s.size() - from + 1);
      s.insert(rng.next_below(s.size() + 1), s.substr(from, len));
      break;
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace turbosyn;
  double seconds = 5.0;
  std::uint64_t seed = 42;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--seconds") seconds = std::atof(argv[i + 1]);
    if (flag == "--seed") seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
  }

  const std::vector<std::string> corpus = {counter3_blif(), pattern_fsm_blif(),
                                           traffic_light_blif(), gray_counter_blif()};
  Rng rng(seed);
  const auto start = std::chrono::steady_clock::now();
  long iterations = 0;
  long accepted = 0;
  long rejected = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() <
         seconds) {
    std::string input = corpus[rng.next_below(corpus.size())];
    const int rounds = static_cast<int>(rng.next_in(1, 3));
    for (int i = 0; i < rounds; ++i) input = mutate(input, rng);
    try {
      const Circuit c = read_blif_string(input, "<fuzz>");
      // Accepted circuits must round-trip through the writer.
      (void)write_blif_string(c);
      ++accepted;
    } catch (const Error&) {
      ++rejected;  // clean rejection is the expected outcome
    }
    // Anything else (segfault, unhandled exception type, sanitizer report,
    // hang) fails the harness.
    ++iterations;
  }
  std::printf("blif_fuzz: %ld inputs in %.1fs (%ld accepted, %ld rejected), seed %llu\n",
              iterations, seconds, accepted, rejected,
              static_cast<unsigned long long>(seed));
  return iterations > 0 ? 0 : 1;
}
