#include "netlist/blif.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

TEST(BlifReader, ParsesCombinationalNames) {
  const Circuit c = read_blif_string(R"(.model and2
.inputs a b
.outputs o
.names a b o
11 1
.end
)");
  EXPECT_EQ(c.num_pis(), 2);
  EXPECT_EQ(c.num_pos(), 1);
  EXPECT_EQ(c.num_gates(), 1);
  EXPECT_EQ(c.num_ffs(), 0);
  const NodeId g = c.find("o");
  ASSERT_NE(g, kNoNode);
  EXPECT_TRUE(c.function(g).bit(0b11));
  EXPECT_FALSE(c.function(g).bit(0b01));
}

TEST(BlifReader, DontCaresAndZeroPolarity) {
  // o = NOT(a AND b) via 0-polarity cover.
  const Circuit c = read_blif_string(R"(.model nand
.inputs a b
.outputs o
.names a b o
11 0
.end
)");
  const NodeId g = c.find("o");
  EXPECT_FALSE(c.function(g).bit(0b11));
  EXPECT_TRUE(c.function(g).bit(0b10));

  const Circuit d = read_blif_string(R"(.model dc
.inputs a b c
.outputs o
.names a b c o
1-1 1
.end
)");
  const NodeId h = d.find("o");
  EXPECT_TRUE(d.function(h).bit(0b101));
  EXPECT_TRUE(d.function(h).bit(0b111));
  EXPECT_FALSE(d.function(h).bit(0b001));
}

TEST(BlifReader, LatchChainsBecomeEdgeWeights) {
  const Circuit c = read_blif_string(R"(.model chain
.inputs a
.outputs o
.latch g q1 0
.latch q1 q2 0
.names a g
1 1
.names q2 o
1 1
.end
)");
  // One consumer of the two-deep chain: 2 FF bits (raw == shared here).
  EXPECT_EQ(c.num_ffs(), 2);
  EXPECT_EQ(c.num_ffs_shared(), 2);
  const NodeId o = c.find("o");
  const auto& e = c.edge(c.fanin_edges(o)[0]);
  EXPECT_EQ(e.from, c.find("g"));
  EXPECT_EQ(e.weight, 2);
}

TEST(BlifReader, SequentialLoopThroughLatch) {
  // Toggle flip-flop: n = NOT q, q = latch(n) — a cycle, legal because the
  // latch breaks it.
  const Circuit c = read_blif_string(R"(.model toggle
.inputs en
.outputs q
.latch n q 0
.names en q n
10 1
01 1
.end
)");
  // q feeds both the gate and the PO: 2 raw FF bits on edges, 1 shared.
  EXPECT_EQ(c.num_ffs(), 2);
  EXPECT_EQ(c.num_ffs_shared(), 1);
  EXPECT_EQ(compute_stats(c).sccs_with_cycle, 1);
}

TEST(BlifReader, ConstantFunctions) {
  const Circuit c = read_blif_string(R"(.model consts
.inputs a
.outputs o1 o0
.names k1
1
.names k0
.names a k1 o1
11 1
.names a k0 o0
10 1
.end
)");
  const NodeId k1 = c.find("k1");
  const NodeId k0 = c.find("k0");
  EXPECT_TRUE(c.function(k1).bit(0));
  EXPECT_FALSE(c.function(k0).bit(0));
}

TEST(BlifReader, RejectsMalformedInput) {
  EXPECT_THROW((void)read_blif_string(".model x\n.inputs a\n.outputs o\n.end\n"), Error);
  EXPECT_THROW((void)read_blif_string(R"(.model x
.inputs a
.outputs o
.names a o
11 1
.end
)"),
               Error);  // cover row wider than the input list
  EXPECT_THROW((void)read_blif_string(R"(.model x
.inputs a
.outputs o
.names a o
1 1
.names a o
0 1
.end
)"),
               Error);  // o driven twice
  EXPECT_THROW((void)read_blif_string(R"(.model x
.inputs a
.outputs o
.latch o o 0
.end
)"),
               Error);  // latch loop without combinational driver
}

TEST(BlifReader, CommentsAndContinuations) {
  const Circuit c = read_blif_string(R"(.model cc  # trailing comment
# full-line comment
.inputs a \
b
.outputs o
.names a b o
11 1
.end
)");
  EXPECT_EQ(c.num_pis(), 2);
}

TEST(BlifRoundTrip, SamplesSimulateIdentically) {
  for (const std::string& text : {counter3_blif(), pattern_fsm_blif()}) {
    const Circuit original = read_blif_string(text);
    const Circuit reparsed = read_blif_string(write_blif_string(original));
    Rng rng(47);
    const auto stimulus = random_stimulus(rng, original.num_pis(), 128);
    EXPECT_EQ(simulate_sequence(original, stimulus), simulate_sequence(reparsed, stimulus));
  }
}

TEST(BlifRoundTrip, GeneratedCircuitsSurviveExactly) {
  for (const auto& spec : tiny_suite()) {
    const Circuit original = generate_fsm_circuit(spec);
    const Circuit reparsed = read_blif_string(write_blif_string(original));
    EXPECT_EQ(reparsed.num_pis(), original.num_pis()) << spec.name;
    EXPECT_EQ(reparsed.num_pos(), original.num_pos()) << spec.name;
    EXPECT_EQ(reparsed.num_ffs(), original.num_ffs()) << spec.name;
    Rng rng(spec.seed);
    const auto stimulus = random_stimulus(rng, original.num_pis(), 96);
    EXPECT_EQ(simulate_sequence(original, stimulus), simulate_sequence(reparsed, stimulus))
        << spec.name;
  }
}

TEST(BlifWriter, PoNamePrefixIsStripped) {
  const Circuit c = read_blif_string(counter3_blif());
  const std::string text = write_blif_string(c);
  EXPECT_EQ(text.find("$po:"), std::string::npos);
  EXPECT_NE(text.find(".outputs q0 q1 q2"), std::string::npos);
}

}  // namespace
}  // namespace turbosyn
