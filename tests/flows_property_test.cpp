// Property sweeps over the full Table-1 suite (smaller circuits only, to
// keep test time bounded): the cross-flow invariants that the paper's
// comparison rests on, checked per circuit rather than in aggregate.

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/flows.hpp"
#include "retime/cycle_ratio.hpp"
#include "sim/simulator.hpp"
#include "verify/equiv.hpp"
#include "workloads/generator.hpp"

namespace turbosyn {
namespace {

class SuiteFlowProperties : public ::testing::TestWithParam<int> {};

TEST_P(SuiteFlowProperties, TurboSynInvariantsHold) {
  static const int picks[] = {0, 1, 12, 13};  // bbara, bbsse, s298, s400
  const BenchmarkSpec spec = table1_suite()[static_cast<std::size_t>(
      picks[static_cast<std::size_t>(GetParam())])];
  const Circuit c = generate_fsm_circuit(spec);
  FlowOptions opt;

  const FlowResult tm = run_turbomap(c, opt);
  const FlowResult ts = run_turbosyn(c, opt);

  // 1. phi ordering: resynthesis never hurts; both within the input bound.
  EXPECT_LE(ts.phi, tm.phi) << spec.name;
  EXPECT_LE(Rational(tm.phi), circuit_mdr(c).ratio + Rational(1)) << spec.name;

  // 2. The mapped networks honor their reported ratios exactly.
  EXPECT_LE(tm.exact_mdr, Rational(tm.phi)) << spec.name;
  EXPECT_LE(ts.exact_mdr, Rational(ts.phi)) << spec.name;

  // 3. phi-1 is genuinely infeasible for TurboSYN's label computation
  //    (minimality of the binary search answer).
  if (ts.phi > 1) {
    LabelOptions lo = opt.label_options(true);
    EXPECT_FALSE(compute_labels(c, ts.phi - 1, lo).feasible) << spec.name;
  }

  // 4. Pipelining + retiming achieves a period within the ceil(MDR) theory
  //    bound relative to what the mapping allows.
  EXPECT_GE(Rational(ts.period), ts.exact_mdr) << spec.name;

  // 5. Behavior preserved (bounded, with absorbed-register warm-up).
  SequentialCheckOptions check;
  check.warmup = 16;
  check.cycles = 128;
  check.runs = 2;
  EXPECT_TRUE(sequentially_equivalent_bounded(c, ts.mapped, check)) << spec.name;
  EXPECT_TRUE(sequentially_equivalent_bounded(c, tm.mapped, check)) << spec.name;

  // 6. Every LUT respects K; every loop in the mapping carries a register.
  EXPECT_TRUE(ts.mapped.is_k_bounded(opt.k)) << spec.name;
  ts.mapped.validate();
}

INSTANTIATE_TEST_SUITE_P(SmallTable1, SuiteFlowProperties, ::testing::Range(0, 4));

TEST(FlowDeterminism, SameInputSameResult) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  FlowOptions opt;
  const FlowResult a = run_turbosyn(c, opt);
  const FlowResult b = run_turbosyn(c, opt);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.luts, b.luts);
  EXPECT_EQ(a.ffs, b.ffs);
  EXPECT_EQ(a.exact_mdr, b.exact_mdr);
}

TEST(FlowOptionsKnobs, EveryConfigurationStaysCorrect) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[4]);
  Rng rng(77);
  const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
  const auto golden = simulate_sequence(c, stimulus);
  for (const bool relax : {false, true}) {
    for (const bool lcc : {false, true}) {
      for (const bool dd : {false, true}) {
        FlowOptions opt;
        opt.label_relaxation = relax;
        opt.low_cost_cuts = lcc;
        opt.dedupe = dd;
        opt.pack = dd;  // vary jointly to halve the sweep
        const FlowResult r = run_turbosyn(c, opt);
        EXPECT_TRUE(r.mapped.is_k_bounded(opt.k));
        EXPECT_LE(r.exact_mdr, Rational(r.phi));
        const auto mapped_out = simulate_sequence(r.mapped, stimulus);
        for (std::size_t t = 16; t < golden.size(); ++t) {
          ASSERT_EQ(golden[t], mapped_out[t])
              << "relax=" << relax << " lcc=" << lcc << " dd=" << dd << " t=" << t;
        }
      }
    }
  }
}

}  // namespace
}  // namespace turbosyn
