#include "verify/equiv.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "core/flows.hpp"
#include "mapping/flowmap.hpp"
#include "mapping/seq_split.hpp"
#include "netlist/blif.hpp"
#include "netlist/gates.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

Circuit two_gate(const TruthTable& top) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId g1 = c.add_gate("g1", tt_and(2), f1);
  const Circuit::FaninSpec f2[2] = {{g1, 0}, {d, 0}};
  const NodeId g2 = c.add_gate("g2", top, f2);
  c.add_po("$po:o", {g2, 0});
  return c;
}

TEST(CombEquiv, DetectsEquivalenceAcrossStructures) {
  // (a AND b) OR d built directly vs via De Morgan.
  const Circuit lhs = two_gate(tt_or(2));
  Circuit rhs;
  const NodeId a = rhs.add_pi("a");
  const NodeId b = rhs.add_pi("b");
  const NodeId d = rhs.add_pi("d");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId n1 = rhs.add_gate("n1", tt_nand(2), f1);
  const Circuit::FaninSpec f2[1] = {{d, 0}};
  const NodeId n2 = rhs.add_gate("n2", tt_not(), f2);
  const Circuit::FaninSpec f3[2] = {{n1, 0}, {n2, 0}};
  const NodeId n3 = rhs.add_gate("o", tt_nand(2), f3);
  rhs.add_po("$po:o", {n3, 0});
  EXPECT_TRUE(combinationally_equivalent(lhs, rhs));
}

TEST(CombEquiv, CounterexampleIsReal) {
  const Circuit lhs = two_gate(tt_or(2));   // (a&b) | d
  const Circuit rhs = two_gate(tt_xor(2));  // (a&b) ^ d
  const auto cex = combinational_counterexample(lhs, rhs);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->po_name, "o");
  // The functions differ exactly where (a&b) & d: check the witness.
  const bool a = (cex->witness >> 0) & 1;
  const bool b = (cex->witness >> 1) & 1;
  const bool d = (cex->witness >> 2) & 1;
  EXPECT_NE(((a && b) || d), ((a && b) != d));
}

TEST(CombEquiv, FlowMapMappingIsFormallyEquivalent) {
  // The comb block of the split counter, mapped by FlowSYN, must be
  // formally equivalent to the original block.
  const Circuit seq = read_blif_string(counter3_blif());
  const SequentialSplit split = split_at_registers(seq);
  FlowMapOptions opt;
  opt.k = 4;
  opt.enable_decomposition = true;
  const FlowMapResult labels = flowmap(split.comb, opt);
  const Circuit mapped = generate_mapped_circuit(split.comb, labels, opt);
  EXPECT_TRUE(combinationally_equivalent(split.comb, mapped));
}

TEST(CombEquiv, RejectsRegisteredCircuits) {
  const Circuit seq = read_blif_string(counter3_blif());
  EXPECT_THROW((void)combinationally_equivalent(seq, seq), Error);
}

TEST(SeqEquiv, IdenticalCircuitsPass) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  EXPECT_TRUE(sequentially_equivalent_bounded(c, c));
}

TEST(SeqEquiv, TurboSynMappingPassesAfterWarmup) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  FlowOptions opt;
  const FlowResult ts = run_turbosyn(c, opt);
  SequentialCheckOptions check;
  check.warmup = 12;
  EXPECT_TRUE(sequentially_equivalent_bounded(c, ts.mapped, check));
}

TEST(SeqEquiv, FindsInjectedFault) {
  const Circuit good = read_blif_string(pattern_fsm_blif());
  // Break the output gate: z = s1 & s0 & NOT x instead of ... & x.
  Circuit bad = read_blif_string(R"(.model pattern1011
.inputs x
.outputs z
.latch ns0 s0 0
.latch ns1 s1 0
.names x ns0
1 1
.names x s0 s1 ns1
010 1
101 1
011 1
.names x s0 s1 z
011 1
.end
)");
  const auto cex = sequential_counterexample(good, bad);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->po_name, "z");
}

}  // namespace
}  // namespace turbosyn
