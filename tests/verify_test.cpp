#include "verify/equiv.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "core/flows.hpp"
#include "mapping/flowmap.hpp"
#include "mapping/seq_split.hpp"
#include "netlist/blif.hpp"
#include "netlist/gates.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

Circuit two_gate(const TruthTable& top) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId g1 = c.add_gate("g1", tt_and(2), f1);
  const Circuit::FaninSpec f2[2] = {{g1, 0}, {d, 0}};
  const NodeId g2 = c.add_gate("g2", top, f2);
  c.add_po("$po:o", {g2, 0});
  return c;
}

TEST(CombEquiv, DetectsEquivalenceAcrossStructures) {
  // (a AND b) OR d built directly vs via De Morgan.
  const Circuit lhs = two_gate(tt_or(2));
  Circuit rhs;
  const NodeId a = rhs.add_pi("a");
  const NodeId b = rhs.add_pi("b");
  const NodeId d = rhs.add_pi("d");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId n1 = rhs.add_gate("n1", tt_nand(2), f1);
  const Circuit::FaninSpec f2[1] = {{d, 0}};
  const NodeId n2 = rhs.add_gate("n2", tt_not(), f2);
  const Circuit::FaninSpec f3[2] = {{n1, 0}, {n2, 0}};
  const NodeId n3 = rhs.add_gate("o", tt_nand(2), f3);
  rhs.add_po("$po:o", {n3, 0});
  EXPECT_TRUE(combinationally_equivalent(lhs, rhs));
}

TEST(CombEquiv, CounterexampleIsReal) {
  const Circuit lhs = two_gate(tt_or(2));   // (a&b) | d
  const Circuit rhs = two_gate(tt_xor(2));  // (a&b) ^ d
  const auto cex = combinational_counterexample(lhs, rhs);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->po_name, "o");
  // The functions differ exactly where (a&b) & d: check the witness
  // (assignment is indexed by lhs.pis() order: a, b, d).
  ASSERT_EQ(cex->assignment.size(), 3u);
  const bool a = cex->assignment[0];
  const bool b = cex->assignment[1];
  const bool d = cex->assignment[2];
  EXPECT_NE(((a && b) || d), ((a && b) != d));
}

TEST(CombEquiv, FlowMapMappingIsFormallyEquivalent) {
  // The comb block of the split counter, mapped by FlowSYN, must be
  // formally equivalent to the original block.
  const Circuit seq = read_blif_string(counter3_blif());
  const SequentialSplit split = split_at_registers(seq);
  FlowMapOptions opt;
  opt.k = 4;
  opt.enable_decomposition = true;
  const FlowMapResult labels = flowmap(split.comb, opt);
  const Circuit mapped = generate_mapped_circuit(split.comb, labels, opt);
  EXPECT_TRUE(combinationally_equivalent(split.comb, mapped));
}

TEST(CombEquiv, RejectsRegisteredCircuits) {
  const Circuit seq = read_blif_string(counter3_blif());
  EXPECT_THROW((void)combinationally_equivalent(seq, seq), Error);
}

// Chain of 2-input ORs over pis [0, use): avoids a 2^n truth table.
Circuit wide_or(int num_pis, int use, const std::string& po) {
  Circuit c;
  std::vector<NodeId> pis;
  for (int i = 0; i < num_pis; ++i) pis.push_back(c.add_pi("p" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < use; ++i) {
    const Circuit::FaninSpec f[2] = {{acc, 0}, {pis[static_cast<std::size_t>(i)], 0}};
    acc = c.add_gate("or" + std::to_string(i), tt_or(2), f);
  }
  c.add_po("$po:" + po, {acc, 0});
  return c;
}

TEST(CombEquiv, HandlesMoreThan32Inputs) {
  // 40 PIs: packing the counterexample with `1 << var` (int) would be UB
  // from variable 31 on; the vector<bool> representation has no word limit.
  const Circuit lhs = wide_or(40, 40, "o");
  const Circuit rhs = wide_or(40, 40, "o");
  EXPECT_TRUE(combinationally_equivalent(lhs, rhs));
}

TEST(CombEquiv, CounterexampleBeyondBit32IsReal) {
  const Circuit lhs = wide_or(40, 40, "o");  // OR of all 40 PIs
  const Circuit rhs = wide_or(40, 39, "o");  // ignores p39
  const auto cex = combinational_counterexample(lhs, rhs);
  ASSERT_TRUE(cex.has_value());
  ASSERT_EQ(cex->assignment.size(), 40u);
  // The functions differ exactly when p39 is the only set input.
  EXPECT_TRUE(cex->assignment[39]);
  for (int i = 0; i < 39; ++i) EXPECT_FALSE(cex->assignment[static_cast<std::size_t>(i)]);
}

TEST(CombEquiv, BeyondBddVariableCapThrowsCleanly) {
  // The ROBDD engine is capped at 63 variables (sat counts are uint64);
  // wider miters must reject loudly, not overflow.
  const Circuit lhs = wide_or(70, 70, "o");
  const Circuit rhs = wide_or(70, 70, "o");
  EXPECT_THROW((void)combinationally_equivalent(lhs, rhs), Error);
  // The bounded sequential checker has no PI-width limit.
  EXPECT_TRUE(sequentially_equivalent_bounded(lhs, rhs));
}

TEST(SeqEquiv, IdenticalCircuitsPass) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  EXPECT_TRUE(sequentially_equivalent_bounded(c, c));
}

TEST(SeqEquiv, TurboSynMappingPassesAfterWarmup) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  FlowOptions opt;
  const FlowResult ts = run_turbosyn(c, opt);
  SequentialCheckOptions check;
  check.warmup = 12;
  EXPECT_TRUE(sequentially_equivalent_bounded(c, ts.mapped, check));
}

TEST(SeqEquiv, FindsInjectedFault) {
  const Circuit good = read_blif_string(pattern_fsm_blif());
  // Break the output gate: z = s1 & s0 & NOT x instead of ... & x.
  Circuit bad = read_blif_string(R"(.model pattern1011
.inputs x
.outputs z
.latch ns0 s0 0
.latch ns1 s1 0
.names x ns0
1 1
.names x s0 s1 ns1
010 1
101 1
011 1
.names x s0 s1 z
011 1
.end
)");
  const auto cex = sequential_counterexample(good, bad);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->po_name, "z");
}

// x -> latch -> y, with POs "a" = x (combinational) and "b" = y (delayed).
Circuit two_output_fsm(bool swap_po_order, bool swap_pi_order) {
  Circuit c;
  NodeId x;
  NodeId e;
  if (swap_pi_order) {
    e = c.add_pi("en");
    x = c.add_pi("x");
  } else {
    x = c.add_pi("x");
    e = c.add_pi("en");
  }
  const Circuit::FaninSpec f[2] = {{x, 0}, {e, 0}};
  const NodeId g = c.add_gate("g", tt_and(2), f);
  if (swap_po_order) {
    c.add_po("$po:b", {g, 1});
    c.add_po("$po:a", {g, 0});
  } else {
    c.add_po("$po:a", {g, 0});
    c.add_po("$po:b", {g, 1});
  }
  return c;
}

TEST(SeqEquiv, MatchesOutputsByNameNotPosition) {
  // Same machine, POs declared in the opposite order: positional comparison
  // would diff "a" against "b" and report a bogus counterexample.
  const Circuit lhs = two_output_fsm(false, false);
  const Circuit rhs = two_output_fsm(true, false);
  EXPECT_TRUE(sequentially_equivalent_bounded(lhs, rhs));
  // And a genuinely differing pair still reports the right PO name.
  Circuit broken = two_output_fsm(true, false);
  {
    Circuit fresh;
    const NodeId x = fresh.add_pi("x");
    const NodeId e = fresh.add_pi("en");
    const Circuit::FaninSpec f[2] = {{x, 0}, {e, 0}};
    const NodeId g = fresh.add_gate("g", tt_or(2), f);  // OR, not AND
    fresh.add_po("$po:b", {g, 1});
    fresh.add_po("$po:a", {g, 0});
    broken = fresh;
  }
  const auto cex = sequential_counterexample(two_output_fsm(false, false), broken);
  ASSERT_TRUE(cex.has_value());
  EXPECT_TRUE(cex->po_name == "a" || cex->po_name == "b");
}

TEST(SeqEquiv, MatchesInputsByNameNotPosition) {
  const Circuit lhs = two_output_fsm(false, false);
  const Circuit rhs = two_output_fsm(false, true);  // PIs declared swapped
  EXPECT_TRUE(sequentially_equivalent_bounded(lhs, rhs));
}

}  // namespace
}  // namespace turbosyn
