#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/gates.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/pipeline.hpp"
#include "retime/retiming.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

/// Linear pipeline: pi -> g0 -> g1 -> ... -> po with the given edge weights.
Circuit pipeline_chain(std::span<const int> weights) {
  Circuit c;
  NodeId prev = c.add_pi("in");
  int prev_w = weights.empty() ? 0 : weights[0];
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    const Circuit::FaninSpec fanins[1] = {{prev, prev_w}};
    prev = c.add_gate("g" + std::to_string(i), tt_not(), fanins);
    prev_w = weights[i + 1];
  }
  c.add_po("$po:out", {prev, prev_w});
  c.validate();
  return c;
}

TEST(ClockPeriod, LongestCombinationalPath) {
  // in -> g0 -> g1 -> g2 (no registers) -> po: period = 3.
  EXPECT_EQ(circuit_clock_period(pipeline_chain(std::vector<int>{0, 0, 0, 0})), 3);
  // A register in the middle halves it.
  EXPECT_EQ(circuit_clock_period(pipeline_chain(std::vector<int>{0, 0, 1, 0})), 2);
}

TEST(Retiming, BalancesAPipeline) {
  // All registers piled at the input: retiming should spread them out.
  Circuit c = pipeline_chain(std::vector<int>{3, 0, 0, 0});
  EXPECT_EQ(circuit_clock_period(c), 3);
  EXPECT_EQ(retime_min_period(c), 1);
  EXPECT_EQ(circuit_clock_period(c), 1);
}

TEST(Retiming, PreservesCycleWeights) {
  Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  const Digraph before = c.to_digraph();
  const auto mdr_before = circuit_mdr(c);
  retime_min_period(c);
  // Retiming is a potential transformation: every cycle keeps its register
  // count, so the MDR ratio is invariant.
  EXPECT_EQ(circuit_mdr(c).ratio, mdr_before.ratio);
  EXPECT_EQ(c.num_edges(), before.num_edges());
}

TEST(Retiming, PipelineBehaviorPreservedAfterWarmup) {
  Circuit original = pipeline_chain(std::vector<int>{3, 0, 0, 0});
  Circuit retimed = original;
  retime_min_period(retimed);
  Rng rng(41);
  const auto stimulus = random_stimulus(rng, 1, 64);
  const auto a = simulate_sequence(original, stimulus);
  const auto b = simulate_sequence(retimed, stimulus);
  // Acyclic circuit: outputs depend only on the last few inputs, so after a
  // warm-up of the total register depth the streams coincide.
  for (std::size_t t = 4; t < a.size(); ++t) EXPECT_EQ(a[t], b[t]) << t;
}

TEST(Retiming, InfeasibleBelowMdrBound) {
  // Ring of 4 gates, 2 registers: MDR = 2, so period 1 is impossible under
  // retiming alone.
  const Circuit c = ring_circuit(4, 2);
  const Digraph g = c.to_digraph();
  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = c.delay(v);
  std::vector<NodeId> pinned(c.pis().begin(), c.pis().end());
  pinned.insert(pinned.end(), c.pos().begin(), c.pos().end());
  EXPECT_FALSE(feasible_retiming(g, delay, 1, pinned).has_value());
  EXPECT_TRUE(feasible_retiming(g, delay, 2, pinned).has_value());
}

TEST(Retiming, MinPeriodNeverExceedsInitialPeriod) {
  for (const auto& spec : tiny_suite()) {
    Circuit c = generate_fsm_circuit(spec);
    const std::int64_t before = circuit_clock_period(c);
    const std::int64_t after = retime_min_period(c);
    EXPECT_LE(after, before) << spec.name;
    EXPECT_EQ(after, circuit_clock_period(c)) << spec.name;
  }
}

// ---- MDR ratio ----

TEST(CycleRatio, AcyclicIsZero) {
  const Circuit c = pipeline_chain(std::vector<int>{1, 0, 1, 0});
  EXPECT_EQ(circuit_mdr(c).ratio, Rational(0));
  EXPECT_TRUE(circuit_mdr(c).critical_cycle.empty());
}

TEST(CycleRatio, RingHasExactRationalRatio) {
  EXPECT_EQ(circuit_mdr(ring_circuit(5, 2)).ratio, Rational(5, 2));
  EXPECT_EQ(circuit_mdr(ring_circuit(7, 3)).ratio, Rational(7, 3));
  EXPECT_EQ(circuit_mdr(ring_circuit(4, 4)).ratio, Rational(1));
}

TEST(CycleRatio, CriticalCycleAchievesTheRatio) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[3]);
  const Digraph g = c.to_digraph();
  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = c.delay(v);
  const CycleRatioResult r = max_delay_to_register_ratio(g, delay);
  ASSERT_FALSE(r.critical_cycle.empty());
  std::int64_t d_sum = 0;
  std::int64_t w_sum = 0;
  for (const EdgeId e : r.critical_cycle) {
    d_sum += delay[static_cast<std::size_t>(g.edge(e).to)];
    w_sum += g.edge(e).weight;
  }
  EXPECT_EQ(Rational(d_sum, w_sum), r.ratio);
  // Decision procedure agrees on both sides of the ratio.
  EXPECT_FALSE(has_cycle_above_ratio(g, delay, r.ratio));
  EXPECT_TRUE(has_cycle_above_ratio(g, delay, r.ratio - Rational(1, 1000)));
}

TEST(CycleRatio, CombinationalLoopThrows) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g1 = c.declare_gate("g1");
  const NodeId g2 = c.declare_gate("g2");
  // g1 and g2 form a zero-weight cycle; bypass validate() via to_digraph.
  const Circuit::FaninSpec f1[2] = {{a, 0}, {g2, 0}};
  c.finish_gate(g1, tt_and(2), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  c.finish_gate(g2, tt_not(), f2);
  c.add_po("$po:o", {g2, 0});
  EXPECT_THROW((void)circuit_mdr(c), Error);
}

// ---- pipelining ----

TEST(Pipelining, ReachesTheMdrBoundOnPipelines) {
  // Purely feed-forward circuit: MDR = 0, so pipelining reaches period 1.
  Circuit c = pipeline_chain(std::vector<int>{0, 0, 0, 0, 0});
  const PipelineResult p = pipeline_and_retime(c);
  EXPECT_EQ(p.period, 1);
  EXPECT_GE(p.stages, 1);
  EXPECT_EQ(circuit_clock_period(c), 1);
}

TEST(Pipelining, StagesShiftOutputsByStages) {
  Circuit original = pipeline_chain(std::vector<int>{0, 0, 0});
  Circuit piped = original;
  pipeline_inputs(piped, 2);
  Rng rng(43);
  const auto stimulus = random_stimulus(rng, 1, 64);
  const auto a = simulate_sequence(original, stimulus);
  const auto b = simulate_sequence(piped, stimulus);
  for (std::size_t t = 2; t < b.size(); ++t) EXPECT_EQ(b[t], a[t - 2]);
}

TEST(Pipelining, SuiteCircuitsReachCeilOfMdr) {
  for (const auto& spec : tiny_suite()) {
    Circuit c = generate_fsm_circuit(spec);
    const Rational mdr = circuit_mdr(c).ratio;
    const PipelineResult p = pipeline_and_retime(c);
    EXPECT_GE(Rational(p.period), mdr) << spec.name;          // theory lower bound
    EXPECT_EQ(circuit_clock_period(c), p.period) << spec.name;  // achieved
  }
}

}  // namespace
}  // namespace turbosyn
