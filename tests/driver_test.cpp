// FlowDriver / ProbeLedger / trace tests: the stage pipeline's contracts.
//
//   - the ProbeLedger guarantees each (mode, phi) is probed at most once per
//     run (duplicate record() throws; flow results carry a duplicate-free
//     ledger export);
//   - the driver enforces the artifact contract: a stage whose consumed
//     artifact is missing, or whose produced artifact already exists, fails
//     loudly before running;
//   - StageMetrics account for the flow's wall time (within tolerance) and
//     carry the counters the stages emit;
//   - the TraceSink's span tree is well-formed and its JSON serialization is
//     valid and consistent with the flow's own timing;
//   - AuditStage composes into a pipeline and passes on a healthy flow.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>

#include "base/check.hpp"
#include "base/trace.hpp"
#include "core/driver.hpp"
#include "core/flows.hpp"
#include "core/stages/mapgen_stage.hpp"
#include "core/stages/pack_stage.hpp"
#include "core/stages/phi_search.hpp"
#include "core/stages/pipeline_retime_stage.hpp"
#include "core/stages/ub_probe.hpp"
#include "verify/audit_stage.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

StageList turbomap_stage_list() {
  StageList stages;
  stages.push_back(std::make_unique<UbProbeStage>(UbProbeStage::Kind::kIdentityMdr));
  stages.push_back(std::make_unique<PhiSearchStage>(PhiSearchStage::Config{}));
  stages.push_back(std::make_unique<MapGenStage>());
  stages.push_back(std::make_unique<PackStage>());
  stages.push_back(
      std::make_unique<PipelineRetimeStage>(PipelineRetimeStage::Kind::kPipelineRetime));
  return stages;
}

Circuit small_fsm() {
  BenchmarkSpec spec;
  spec.name = "driver_test_fsm";
  spec.seed = 33;
  spec.num_pis = 5;
  spec.num_pos = 4;
  spec.num_gates = 120;
  spec.feedback = 0.08;
  return generate_fsm_circuit(spec);
}

/// Smaller circuit for the TurboSYN-based tests: the decomposition scan
/// dominates their runtime.
Circuit tiny_fsm() {
  BenchmarkSpec spec;
  spec.name = "driver_test_tiny";
  spec.seed = 19;
  spec.num_pis = 4;
  spec.num_pos = 3;
  spec.num_gates = 36;
  spec.feedback = 0.1;
  return generate_fsm_circuit(spec);
}

TEST(ProbeLedger, DuplicateRecordThrows) {
  ProbeLedger ledger;
  ProbeRecord r;
  r.phi = 3;
  r.mode = LabelMode::kPlain;
  r.feasible = true;
  ledger.record(r);
  EXPECT_TRUE(ledger.contains(LabelMode::kPlain, 3));
  EXPECT_FALSE(ledger.contains(LabelMode::kDecomp, 3));
  EXPECT_FALSE(ledger.contains(LabelMode::kPlain, 2));
  // Same phi under the other mode is a distinct key.
  r.mode = LabelMode::kDecomp;
  ledger.record(r);
  EXPECT_EQ(ledger.size(), 2u);
  // Re-recording an existing key must fail loudly.
  EXPECT_THROW(ledger.record(r), Error);
  ASSERT_NE(ledger.find(LabelMode::kPlain, 3), nullptr);
  EXPECT_EQ(ledger.find(LabelMode::kPlain, 3)->phi, 3);
  EXPECT_EQ(ledger.find(LabelMode::kDecomp, 2), nullptr);
}

TEST(ProbeLedger, ClassifyProbeSoundness) {
  LabelResult r;
  r.feasible = true;
  r.status = Status::kOk;
  EXPECT_EQ(classify_probe(r), ProbeOutcome::kOk);
  r.feasible = false;
  EXPECT_EQ(classify_probe(r), ProbeOutcome::kInfeasible);
  // A degraded infeasible verdict is NOT a divergence certificate.
  r.status = Status::kDegraded;
  EXPECT_EQ(classify_probe(r), ProbeOutcome::kDegraded);
  r.status = Status::kDeadlineExceeded;
  EXPECT_EQ(classify_probe(r), ProbeOutcome::kInterrupted);
  r.status = Status::kCancelled;
  EXPECT_EQ(classify_probe(r), ProbeOutcome::kInterrupted);
}

TEST(ProbeLedger, HashTiesLabelsToRecords) {
  const std::vector<int> a{0, 1, 2, 3};
  const std::vector<int> b{0, 1, 2, 4};
  EXPECT_EQ(hash_labels(a), hash_labels(a));
  EXPECT_NE(hash_labels(a), hash_labels(b));
  EXPECT_NE(hash_labels(a), 0u);
}

// Each (mode, phi) appears at most once in a flow's exported ledger — the
// ISSUE's "no phi probed twice per run" guarantee, across both TurboSYN
// phases sharing one ledger.
TEST(FlowDriver, NoPhiProbedTwicePerRun) {
  const Circuit c = tiny_fsm();
  FlowOptions opt;
  const FlowResult r = run_turbosyn(c, opt);
  ASSERT_FALSE(r.probes.empty());
  std::map<std::pair<int, int>, int> seen;
  for (const ProbeRecord& rec : r.probes) {
    const auto key = std::make_pair(static_cast<int>(rec.mode), rec.phi);
    EXPECT_EQ(++seen[key], 1) << "phi=" << rec.phi << " mode=" << label_mode_name(rec.mode)
                              << " probed twice";
  }
  // The decomposition scan starts from TurboMap's certificate: exactly one
  // imported record, at (decomp, TurboMap's phi), feasible, with no stats.
  int imported = 0;
  for (const ProbeRecord& rec : r.probes) {
    if (!rec.imported) continue;
    ++imported;
    EXPECT_EQ(rec.mode, LabelMode::kDecomp);
    EXPECT_TRUE(rec.feasible);
    EXPECT_EQ(rec.stats.sweeps, 0);
    EXPECT_EQ(rec.seconds, 0.0);
  }
  EXPECT_EQ(imported, 1);
}

TEST(FlowDriver, MissingConsumedArtifactThrows) {
  const Circuit c = small_fsm();
  FlowOptions opt;
  FlowDriver driver(c, opt);
  // MapGen consumes kWinningLabels, which no stage has produced.
  MapGenStage mapgen;
  EXPECT_THROW(driver.run(mapgen), Error);
}

TEST(FlowDriver, DuplicateProducedArtifactThrows) {
  const Circuit c = small_fsm();
  FlowOptions opt;
  FlowDriver driver(c, opt);
  UbProbeStage ub(UbProbeStage::Kind::kIdentityMdr);
  driver.run(ub);
  UbProbeStage again(UbProbeStage::Kind::kClockPeriod);
  EXPECT_THROW(driver.run(again), Error);
}

TEST(FlowDriver, StageMetricsAccountForFlowTime) {
  const Circuit c = small_fsm();
  FlowOptions opt;
  const FlowResult r = run_turbomap(c, opt);
  ASSERT_EQ(r.stage_metrics.stages.size(), 5u);
  const char* expected[] = {"ub-probe", "phi-search", "mapgen", "pack", "pipeline-retime"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.stage_metrics.stages[i].name, expected[i]);
    EXPECT_GE(r.stage_metrics.stages[i].seconds, 0.0);
  }
  // The stages are the flow: their wall times must sum to the flow's own
  // (within 5%, plus absolute slack for scheduler noise on tiny runs).
  const double sum = r.stage_metrics.total_seconds();
  EXPECT_LE(sum, r.seconds * 1.05 + 2e-3);
  EXPECT_GE(sum, r.seconds * 0.95 - 2e-3);
  // The search stage carries the label-engine counters.
  const StageMetric* search = r.stage_metrics.find("phi-search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->counter("probes"), static_cast<std::int64_t>(r.probes.size()));
  EXPECT_GT(search->counter("labels_computed"), 0);
  EXPECT_EQ(search->counter("no_such_counter"), 0);
  // Stage counters are deltas of the accumulated stats: summed over the
  // whole timeline they reproduce the flow totals exactly.
  std::int64_t label_sum = 0;
  for (const StageMetric& stage : r.stage_metrics.stages) {
    label_sum += stage.counter("labels_computed");
  }
  EXPECT_EQ(label_sum, r.stats.node_updates);
}

TEST(FlowDriver, TurboSynConcatenatesPhaseTimelines) {
  const Circuit c = tiny_fsm();
  FlowOptions opt;
  const FlowResult r = run_turbosyn(c, opt);
  // Two five-stage phases in one timeline, phase A first.
  ASSERT_EQ(r.stage_metrics.stages.size(), 10u);
  EXPECT_EQ(r.stage_metrics.stages[0].name, "ub-probe");
  EXPECT_EQ(r.stage_metrics.stages[5].name, "ub-probe");
  const double sum = r.stage_metrics.total_seconds();
  EXPECT_LE(sum, r.seconds * 1.05 + 2e-3);
}

TEST(Trace, SpanTreeIsWellFormedAndTimed) {
  const Circuit c = tiny_fsm();
  TraceSink sink;
  FlowOptions opt;
  opt.trace = &sink;
  const FlowResult r = run_turbosyn(c, opt);

  const auto events = sink.events();
  ASSERT_FALSE(events.empty());
  int roots = 0;
  std::map<int, const TraceEvent*> by_id;
  for (const TraceEvent& e : events) by_id[e.id] = &e;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.seconds, 0.0);
    if (e.parent == -1) {
      ++roots;
      EXPECT_EQ(e.depth, 0);
    } else {
      ASSERT_TRUE(by_id.count(e.parent)) << "span " << e.id << " has unknown parent";
      EXPECT_EQ(e.depth, by_id[e.parent]->depth + 1);
      EXPECT_LT(e.parent, e.id) << "parents open before their children";
    }
  }
  // One flow invocation: exactly one root span, covering the run.
  EXPECT_EQ(roots, 1);
  EXPECT_EQ(events[0].name, "flow:turbosyn");
  EXPECT_NEAR(sink.total_seconds(), r.seconds, r.seconds * 0.05 + 2e-3);
  // Counters roll up: the probe spans account for every ledger record that
  // was actually probed (imported certificates open no span).
  const auto totals = sink.totals();
  ASSERT_TRUE(totals.count("probes"));
  std::int64_t probed = 0;
  for (const ProbeRecord& rec : r.probes) probed += rec.imported ? 0 : 1;
  EXPECT_EQ(totals.at("probes"), probed);

  // Serialization: stable schema markers, one span object per event.
  const std::string json = sink.to_json();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"flow:turbosyn\""), std::string::npos);
  EXPECT_NE(json.find("\"stage:phi-search\""), std::string::npos);
  std::size_t span_objects = 0;
  for (std::size_t pos = json.find("\"id\":"); pos != std::string::npos;
       pos = json.find("\"id\":", pos + 1)) {
    ++span_objects;
  }
  EXPECT_EQ(span_objects, events.size());
}

TEST(Trace, InertSpansCostNothingAndRecordNothing) {
  TraceSpan inert;  // default-constructed: no sink
  EXPECT_FALSE(inert.enabled());
  inert.counter("ignored", 7);
  EXPECT_EQ(inert.seconds_so_far(), 0.0);
  TraceSink sink;
  {
    TraceSpan span(&sink, "outer");
    TraceSpan child(&sink, "inner", "detail");
    child.counter("c", 2);
    child.counter("c", 3);
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  // Children close (and post) before their parents; ids are in open order.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_EQ(events[1].detail, "detail");
  ASSERT_EQ(events[1].counters.size(), 1u);
  EXPECT_EQ(events[1].counters[0].second, 5);  // accumulated by name
}

TEST(AuditStage, ComposesIntoPipelineAndPasses) {
  const Circuit c = small_fsm();
  FlowOptions opt;
  opt.collect_artifacts = true;
  FlowDriver driver(c, opt);
  StageList stages = turbomap_stage_list();
  AuditReport report;
  AuditOptions aopt;
  aopt.check_equivalence = false;  // keep the in-pipeline audit fast
  stages.push_back(std::make_unique<AuditStage>(aopt, &report));
  driver.run(stages);
  const FlowResult result = driver.finish();
  EXPECT_TRUE(report.passed()) << report.breakdown();
  ASSERT_FALSE(report.checks.empty());
  // The in-pipeline audit sees the ledger (probes check ran, not skipped)…
  bool probes_checked = false;
  for (const AuditCheck& check : report.checks) {
    if (check.name == "probes") probes_checked = check.status == AuditStatus::kPass;
  }
  EXPECT_TRUE(probes_checked);
  // …and the audit itself shows up in the stage timeline.
  const StageMetric* audit_metric = result.stage_metrics.find("audit");
  ASSERT_NE(audit_metric, nullptr);
  EXPECT_EQ(audit_metric->counter("audit_failures"), 0);
}

}  // namespace
}  // namespace turbosyn
