// Unit tests of the label computation (TurboMap/TurboSYN core) and the
// expanded-circuit machinery, on circuits small enough to reason about by
// hand — plus property tests against the exact MDR of the input.

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "core/expanded.hpp"
#include "core/labeling.hpp"
#include "core/mapgen.hpp"
#include "netlist/gates.hpp"
#include "retime/cycle_ratio.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

LabelOptions turbomap_options(int k) {
  LabelOptions lo;
  lo.k = k;
  return lo;
}

TEST(Expanded, PathsCarryRegisterCounts) {
  // Ring of 3 gates, one register; expanding from r0 must produce copies
  // r0^0, r2^0 ... and eventually r0^1 (one lap).
  const Circuit c = ring_circuit(3, 1);
  const NodeId r0 = c.find("r0");
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 1);
  for (const NodeId pi : c.pis()) labels[static_cast<std::size_t>(pi)] = 0;
  ExpandedNetwork net(c, labels, 3, r0, 1, ExpandedOptions{});
  EXPECT_TRUE(net.viable());
  EXPECT_GE(net.num_expanded_nodes(), 4);
  const auto cut = net.find_cut(5);
  ASSERT_TRUE(cut.has_value());
  // The cut covers the enable input and the loop signal at some register depth.
  bool loop_signal = false;
  for (const SeqCutNode& n : *cut) {
    if (!c.is_pi(n.node)) {
      EXPECT_GE(n.w, 1);
      loop_signal = true;
    }
  }
  EXPECT_TRUE(loop_signal);
}

TEST(Expanded, CutFunctionMatchesHandComputation) {
  // figure1: cut {g2^1, a, b, c, d} of E_g2 computes s ^ (a&b) ^ (c&d).
  const Circuit c = figure1_circuit();
  const NodeId g2 = c.find("g2");
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 2);
  for (const NodeId pi : c.pis()) labels[static_cast<std::size_t>(pi)] = 0;
  ExpandedNetwork net(c, labels, 1, g2, 2, ExpandedOptions{});
  const auto cut = net.find_cut(15);
  ASSERT_TRUE(cut.has_value());
  ASSERT_EQ(cut->size(), 5u);
  const TruthTable f = net.cut_function(*cut);
  // Identify variable indices by cut node identity.
  int s_var = -1;
  for (std::size_t i = 0; i < cut->size(); ++i) {
    if ((*cut)[i].node == g2) {
      EXPECT_EQ((*cut)[i].w, 1);
      s_var = static_cast<int>(i);
    }
  }
  ASSERT_NE(s_var, -1);
  // Flipping s always flips f (it enters through XOR).
  EXPECT_EQ(f.cofactor(s_var, false), ~f.cofactor(s_var, true));
  EXPECT_EQ(f.count_ones(), f.num_bits() / 2);
}

TEST(Labeling, SingleLutLoopConvergesAtRatio1) {
  // One XOR gate with a self-loop register: a single LUT, ratio 1.
  Circuit c;
  const NodeId en = c.add_pi("en");
  const NodeId g = c.declare_gate("g");
  const Circuit::FaninSpec f[2] = {{g, 1}, {en, 0}};
  c.finish_gate(g, tt_xor(2), f);
  c.add_po("$po:q", {g, 0});
  const LabelResult r = compute_labels(c, 1, turbomap_options(4));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.labels[static_cast<std::size_t>(g)], 1);
}

TEST(Labeling, RingFeasibilityTracksLutCapacity) {
  // Ring with a *distinct* enable per stage (the shared-enable ring of
  // ring_circuit collapses under XOR cancellation): covering two stages
  // needs 3 distinct inputs, so ratio 1 is feasible at K=3 but not at K=2.
  Circuit c;
  std::vector<NodeId> en;
  for (int i = 0; i < 4; ++i) en.push_back(c.add_pi("en" + std::to_string(i)));
  std::vector<NodeId> ring;
  for (int i = 0; i < 4; ++i) ring.push_back(c.declare_gate("r" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) {
    const int w = (i % 2 == 0) ? 1 : 0;  // 2 registers on the 4-stage loop
    const Circuit::FaninSpec f[2] = {{ring[static_cast<std::size_t>((i + 3) % 4)], w},
                                     {en[static_cast<std::size_t>(i)], 0}};
    c.finish_gate(ring[static_cast<std::size_t>(i)], tt_xor(2), f);
  }
  c.add_po("$po:q", {ring[0], 0});
  c.validate();
  EXPECT_TRUE(compute_labels(c, 1, turbomap_options(3)).feasible);
  EXPECT_FALSE(compute_labels(c, 1, turbomap_options(2)).feasible);
  EXPECT_TRUE(compute_labels(c, 2, turbomap_options(2)).feasible);
}

TEST(Labeling, FeasibilityIsMonotoneInPhiAndK) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    bool prev = false;
    for (int phi = 1; phi <= 6; ++phi) {
      const bool feasible = compute_labels(c, phi, turbomap_options(5)).feasible;
      EXPECT_TRUE(!prev || feasible) << spec.name << " phi=" << phi;  // monotone
      prev = feasible;
    }
    // Larger K never hurts.
    for (int phi = 1; phi <= 3; ++phi) {
      const bool k4 = compute_labels(c, phi, turbomap_options(4)).feasible;
      const bool k6 = compute_labels(c, phi, turbomap_options(6)).feasible;
      EXPECT_TRUE(!k4 || k6) << spec.name << " phi=" << phi;
    }
  }
}

TEST(Labeling, IdentityMappingRatioIsAlwaysFeasible) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    const int ub = static_cast<int>(std::max<std::int64_t>(1, circuit_mdr(c).ratio.ceil()));
    EXPECT_TRUE(compute_labels(c, ub, turbomap_options(5)).feasible) << spec.name;
  }
}

TEST(Labeling, DecompositionOnlyAddsFeasibility) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    for (int phi = 1; phi <= 4; ++phi) {
      LabelOptions plain = turbomap_options(5);
      LabelOptions syn = plain;
      syn.enable_decomposition = true;
      const bool tm = compute_labels(c, phi, plain).feasible;
      const bool ts = compute_labels(c, phi, syn).feasible;
      EXPECT_TRUE(!tm || ts) << spec.name << " phi=" << phi;
    }
  }
}

TEST(Labeling, ConvergedLabelsSatisfyLocalEquations) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  LabelOptions lo = turbomap_options(5);
  int phi = 1;
  LabelResult r = compute_labels(c, phi, lo);
  while (!r.feasible) r = compute_labels(c, ++phi, lo);
  LabelStats stats;
  std::vector<int> labels = r.labels;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v) || c.fanin_edges(v).empty()) continue;
    // Re-running the update at the fixpoint must not change any label.
    EXPECT_EQ(label_update(c, labels, phi, v, lo, stats), r.labels[static_cast<std::size_t>(v)])
        << c.name(v);
  }
}

TEST(Labeling, RealizationsExistAtConvergedLabels) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[4]);
  LabelOptions lo = turbomap_options(5);
  lo.enable_decomposition = true;
  int phi = 1;
  LabelResult r = compute_labels(c, phi, lo);
  while (!r.feasible) r = compute_labels(c, ++phi, lo);
  LabelStats stats;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v) || c.fanin_edges(v).empty()) continue;
    const auto real = realize_node(c, r.labels, phi, v,
                                   r.labels[static_cast<std::size_t>(v)], lo, stats);
    ASSERT_TRUE(real.has_value()) << c.name(v);
    for (const SeqCutNode& in : real->cut) {
      // Height constraint: eff(in) + 1 <= l(v).
      EXPECT_LE(r.labels[static_cast<std::size_t>(in.node)] - phi * in.w + 1,
                r.labels[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(Labeling, MappedMdrNeverExceedsPhiAcrossSuite) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    LabelOptions lo = turbomap_options(5);
    lo.enable_decomposition = true;
    int phi = 1;
    LabelResult r = compute_labels(c, phi, lo);
    while (!r.feasible) r = compute_labels(c, ++phi, lo);
    LabelStats stats;
    MapGenOptions mopts;
    const Circuit mapped = generate_sequential_mapping(c, r, phi, lo, mopts, stats);
    EXPECT_LE(circuit_mdr(mapped).ratio, Rational(phi)) << spec.name;
  }
}

TEST(Labeling, PoLabelsComputedForClockPeriodMode) {
  const Circuit c = ring_circuit(4, 2);
  const LabelResult r = compute_labels(c, 2, turbomap_options(5));
  ASSERT_TRUE(r.feasible);
  EXPECT_GE(r.max_po_label, 1);
}

// The parallel engine batches updates but computes the same least fixpoint:
// labels, feasibility and PO labels must match the sequential legacy order
// bit for bit, for any thread count, with and without decomposition.
TEST(Labeling, ParallelMatchesSequentialAcrossSuite) {
  for (const bool decompose : {false, true}) {
    for (const auto& spec : tiny_suite()) {
      const Circuit c = generate_fsm_circuit(spec);
      for (int phi = 1; phi <= 3; ++phi) {
        LabelOptions seq = turbomap_options(5);
        seq.enable_decomposition = decompose;
        seq.num_threads = 1;
        const LabelResult a = compute_labels(c, phi, seq);
        for (const int threads : {4, 0}) {
          LabelOptions par = seq;
          par.num_threads = threads;
          const LabelResult b = compute_labels(c, phi, par);
          ASSERT_EQ(a.feasible, b.feasible)
              << spec.name << " phi=" << phi << " threads=" << threads;
          if (a.feasible) {
            EXPECT_EQ(a.labels, b.labels)
                << spec.name << " phi=" << phi << " threads=" << threads;
            EXPECT_EQ(a.max_po_label, b.max_po_label) << spec.name << " phi=" << phi;
          }
        }
      }
    }
  }
}

// Warm starts reuse the converged labels of a higher feasible phi as the
// initial lower bounds of a lower probe; the least fixpoint is unchanged, so
// an engine probing downwards must reproduce every cold one-shot result.
TEST(Labeling, WarmStartedEngineMatchesColdComputation) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    LabelOptions lo = turbomap_options(5);
    LabelEngine engine(c, lo);
    for (int phi = 6; phi >= 1; --phi) {  // descending: every probe warm-starts
      const LabelResult warm = engine.compute(phi);
      const LabelResult cold = compute_labels(c, phi, lo);
      ASSERT_EQ(warm.feasible, cold.feasible) << spec.name << " phi=" << phi;
      if (cold.feasible) {
        EXPECT_EQ(warm.labels, cold.labels) << spec.name << " phi=" << phi;
        EXPECT_EQ(warm.max_po_label, cold.max_po_label) << spec.name << " phi=" << phi;
      }
    }
  }
}

// The decomposition update is not monotone, so warm starts could converge on
// a different (still valid) fixpoint than a cold run — which would make
// TurboSYN results depend on probe history, and on tiny_suite()[3] picks
// feedback cuts whose zero-initialized transient never dies out. The engine
// therefore runs decomposition probes cold; a descending scan (the shape
// search_min_ratio uses with a known UB) must reproduce cold results.
TEST(Labeling, DecompositionProbesIgnoreWarmStartsAndMatchCold) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    LabelOptions lo = turbomap_options(5);
    lo.enable_decomposition = true;
    LabelEngine engine(c, lo);
    for (int phi = 4; phi >= 2; --phi) {
      const LabelResult warm = engine.compute(phi);
      const LabelResult cold = compute_labels(c, phi, lo);
      ASSERT_EQ(warm.feasible, cold.feasible) << spec.name << " phi=" << phi;
      if (cold.feasible) {
        EXPECT_EQ(warm.labels, cold.labels) << spec.name << " phi=" << phi;
      }
    }
  }
}

// Probing up and down in arbitrary order (as run_turbomap_period's search
// does) must also stay consistent with cold runs.
TEST(Labeling, EngineIsConsistentUnderArbitraryProbeOrder) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  LabelOptions lo = turbomap_options(5);
  LabelEngine engine(c, lo);
  for (const int phi : {3, 1, 5, 2, 4, 1, 3}) {
    const LabelResult warm = engine.compute(phi);
    const LabelResult cold = compute_labels(c, phi, lo);
    ASSERT_EQ(warm.feasible, cold.feasible) << "phi=" << phi;
    if (cold.feasible) EXPECT_EQ(warm.labels, cold.labels) << "phi=" << phi;
  }
}

// Scratch arenas only recycle buffers; repeated computations through the same
// engine (hence the same arenas) must be byte-identical.
TEST(Labeling, ScratchReuseIsDeterministic) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[3]);
  LabelOptions lo = turbomap_options(5);
  lo.enable_decomposition = true;
  LabelEngine engine(c, lo);
  const LabelResult first = engine.compute(2);
  const LabelResult second = engine.compute(2);
  ASSERT_EQ(first.feasible, second.feasible);
  EXPECT_EQ(first.labels, second.labels);
}

TEST(Labeling, RejectsUnboundedCircuit) {
  Circuit c;
  std::vector<Circuit::FaninSpec> wide;
  for (int i = 0; i < 6; ++i) wide.push_back({c.add_pi("i" + std::to_string(i)), 0});
  const NodeId g = c.add_gate("g", tt_and(6), wide);
  c.add_po("$po:o", {g, 0});
  EXPECT_THROW((void)compute_labels(c, 2, turbomap_options(4)), Error);
}

}  // namespace
}  // namespace turbosyn
