// Dedicated coverage of the expanded circuit E_v and its partial flow
// network: register-count bookkeeping, mandatory/allowed classification,
// frontier handling, node budgets and the low-cost (sharing-aware) cut rule.

#include "core/expanded.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "netlist/gates.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

std::vector<int> base_labels(const Circuit& c) {
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 1);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_source(v)) labels[static_cast<std::size_t>(v)] = 0;
  }
  return labels;
}

TEST(Expanded, TrivialFaninCutAtHeightLPlusOne) {
  // With all fanins at eff+1 <= H, the fanin cut is found immediately.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f[2] = {{a, 0}, {b, 1}};
  const NodeId g = c.add_gate("g", tt_and(2), f);
  c.add_po("$po:o", {g, 0});
  const auto labels = base_labels(c);
  ExpandedNetwork net(c, labels, 1, g, 1, ExpandedOptions{});
  const auto cut = net.find_cut(2);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->size(), 2u);
  EXPECT_EQ((*cut)[0], (SeqCutNode{a, 0}));
  EXPECT_EQ((*cut)[1], (SeqCutNode{b, 1}));
  EXPECT_EQ(net.cut_function(*cut), tt_and(2));
}

TEST(Expanded, MandatoryPiBlocksTheCut) {
  // Height limit below every PI copy's requirement: no cut exists.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f[1] = {{a, 0}};
  const NodeId g = c.add_gate("g", tt_not(), f);
  c.add_po("$po:o", {g, 0});
  const auto labels = base_labels(c);
  // H = 0: (a,0) needs eff+1 = 1 <= 0 -> mandatory -> uncuttable path.
  ExpandedNetwork net(c, labels, 1, g, 0, ExpandedOptions{});
  EXPECT_FALSE(net.find_cut(4).has_value());
}

TEST(Expanded, RegisteredPiCopyBecomesAllowed) {
  // Same shape but the edge carries a register: eff(a,1) = -phi, so the copy
  // is allowed even at H = 0.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f[1] = {{a, 1}};
  const NodeId g = c.add_gate("g", tt_not(), f);
  c.add_po("$po:o", {g, 0});
  const auto labels = base_labels(c);
  ExpandedNetwork net(c, labels, 1, g, 0, ExpandedOptions{});
  const auto cut = net.find_cut(4);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ((*cut)[0], (SeqCutNode{a, 1}));
}

TEST(Expanded, LoopUnrollsWithIncreasingRegisterCounts) {
  const Circuit c = figure1_circuit();
  const NodeId g2 = c.find("g2");
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 2);
  for (const NodeId pi : c.pis()) labels[static_cast<std::size_t>(pi)] = 0;
  // At H = 2 the zero-register copy of g1 (eff+1 = 3) is mandatory, so any
  // cut through the loop uses copies behind at least one register.
  ExpandedNetwork net(c, labels, 1, g2, 2, ExpandedOptions{});
  EXPECT_GE(net.num_expanded_nodes(), 6);
  const auto cut = net.find_cut(15);
  ASSERT_TRUE(cut.has_value());
  for (const SeqCutNode& n : *cut) {
    if (n.node == g2 || n.node == c.find("g1")) EXPECT_GE(n.w, 1);
  }
}

TEST(Expanded, NodeBudgetMakesQueryUnviable) {
  const Circuit c = figure1_circuit();
  const NodeId g2 = c.find("g2");
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 2);
  for (const NodeId pi : c.pis()) labels[static_cast<std::size_t>(pi)] = 0;
  ExpandedOptions opt;
  opt.node_budget = 2;
  ExpandedNetwork net(c, labels, 1, g2, 5, opt);
  EXPECT_FALSE(net.viable());
  EXPECT_FALSE(net.find_cut(15).has_value());
}

TEST(Expanded, LowCostCutPrefersSharedSignals) {
  // Diamond: root over u (from a,b) and v (from a,b): min cuts are {u,v} and
  // {a,b}; marking {a,b} as shared must steer the choice there.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f[2] = {{a, 0}, {b, 0}};
  const NodeId u = c.add_gate("u", tt_and(2), f);
  const NodeId v = c.add_gate("v", tt_or(2), f);
  const Circuit::FaninSpec fr[2] = {{u, 0}, {v, 0}};
  const NodeId r = c.add_gate("r", tt_xor(2), fr);
  c.add_po("$po:o", {r, 0});
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 0);
  labels[static_cast<std::size_t>(u)] = 1;
  labels[static_cast<std::size_t>(v)] = 1;
  labels[static_cast<std::size_t>(r)] = 2;

  const auto prefer_pis = [&](const SeqCutNode& n) { return c.is_pi(n.node); };
  ExpandedNetwork net(c, labels, 1, r, 2, ExpandedOptions{});
  const auto cut = net.find_low_cost_cut(2, prefer_pis);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (std::vector<SeqCutNode>{{a, 0}, {b, 0}}));

  const auto prefer_gates = [&](const SeqCutNode& n) { return c.is_gate(n.node); };
  ExpandedNetwork net2(c, labels, 1, r, 2, ExpandedOptions{});
  const auto cut2 = net2.find_low_cost_cut(2, prefer_gates);
  ASSERT_TRUE(cut2.has_value());
  EXPECT_EQ(*cut2, (std::vector<SeqCutNode>{{u, 0}, {v, 0}}));
}

TEST(Expanded, LowCostNeverExceedsMinCutSize) {
  const Circuit c = lfsr_circuit(6, std::vector<int>{2, 4});
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 1);
  for (const NodeId pi : c.pis()) labels[static_cast<std::size_t>(pi)] = 0;
  for (NodeId g = 0; g < c.num_nodes(); ++g) {
    if (!c.is_gate(g) || c.fanin_edges(g).empty()) continue;
    ExpandedNetwork plain(c, labels, 2, g, 1, ExpandedOptions{});
    const auto min_cut = plain.find_cut(6);
    ExpandedNetwork weighted(c, labels, 2, g, 1, ExpandedOptions{});
    const auto lc = weighted.find_low_cost_cut(6, [](const SeqCutNode&) { return false; });
    ASSERT_EQ(min_cut.has_value(), lc.has_value());
    if (min_cut) EXPECT_EQ(min_cut->size(), lc->size());
  }
}

TEST(Expanded, CutFunctionComposesAcrossRegisters) {
  // Two buffers with a register between them: the cut {(a,1)} computes BUF.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f1[1] = {{a, 1}};
  const NodeId g1 = c.add_gate("g1", tt_not(), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  const NodeId g2 = c.add_gate("g2", tt_not(), f2);
  c.add_po("$po:o", {g2, 0});
  const auto labels = base_labels(c);
  ExpandedNetwork net(c, labels, 1, g2, 2, ExpandedOptions{});
  const auto cut = net.find_cut(2);
  ASSERT_TRUE(cut.has_value());
  if (cut->size() == 1 && (*cut)[0].node == a) {
    EXPECT_EQ(net.cut_function(*cut), tt_buf());  // NOT of NOT
  }
}

}  // namespace
}  // namespace turbosyn
