#include "base/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace turbosyn {
namespace {

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.for_each(n, [&](std::size_t i, int) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndSingleItemRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.for_each(0, [&](std::size_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.for_each(1, [&](std::size_t i, int lane) {
    ++calls;
    EXPECT_EQ(i, 0u);
    // A single item never needs a worker: the caller runs it on lane 0.
    EXPECT_EQ(lane, 0);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, LanesAreInRangeAndExclusive) {
  ThreadPool pool(4);
  const int lanes = pool.num_workers() + 1;
  std::vector<std::atomic<int>> in_use(static_cast<std::size_t>(lanes));
  std::atomic<bool> overlap{false};
  pool.for_each(5000, [&](std::size_t, int lane) {
    ASSERT_GE(lane, 0);
    ASSERT_LT(lane, lanes);
    if (in_use[static_cast<std::size_t>(lane)].fetch_add(1) != 0) overlap = true;
    if (in_use[static_cast<std::size_t>(lane)].fetch_sub(1) != 1) overlap = true;
  });
  EXPECT_FALSE(overlap.load()) << "two concurrent items observed the same lane";
}

TEST(ThreadPoolTest, MaxWorkersBoundsLaneCount) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<int> lanes_seen;
  pool.for_each(
      2000,
      [&](std::size_t, int lane) {
        std::lock_guard<std::mutex> lock(mutex);
        lanes_seen.insert(lane);
      },
      /*max_workers=*/1);
  // One worker plus the caller: lanes 0 and 1 only.
  EXPECT_LE(lanes_seen.size(), 2u);
  for (const int lane : lanes_seen) EXPECT_LT(lane, 2);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<std::size_t> completed{0};
  try {
    pool.for_each(1000, [&](std::size_t i, int) {
      if (i == 137) throw std::runtime_error("boom");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every non-throwing item still ran: an exception never cancels the loop.
  EXPECT_EQ(completed.load(), 999u);
}

TEST(ThreadPoolTest, UnevenWorkloadsComplete) {
  ThreadPool pool(3);
  const std::size_t n = 400;
  std::vector<std::atomic<int>> hits(n);
  pool.for_each(n, [&](std::size_t i, int) {
    // The last chunk is far heavier; stealing must rebalance it.
    if (i >= n - 8) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, BackToBackJobsReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    const std::size_t n = static_cast<std::size_t>(1 + (round % 7));
    pool.for_each(n, [&](std::size_t i, int) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  // hardware_concurrency-1 may legitimately be > 0; force the degenerate case
  // only when it actually is zero, otherwise just exercise the pool.
  std::vector<std::atomic<int>> hits(64);
  pool.for_each(64, [&](std::size_t i, int lane) {
    EXPECT_LT(lane, pool.num_workers() + 1);
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsShared) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace turbosyn
