// Fault-injection and recovery tests (DESIGN.md §13): the failpoint
// registry's spec grammar and counters, crash/corruption hardening of the
// flow-artifact cache (checksum trailer, recover() GC, retry-with-backoff),
// driver containment of stage failures, SIGTERM cooperative cancellation,
// and supervised batch execution (retry, quarantine, JSONL sink absorption).
//
// The fork()-based crash drills live in their own suite
// (FlowCacheCrashRecovery) and run before any test that spins up the global
// thread pool; they simulate kill -9 between two instructions via the
// failpoint crash action (std::_Exit, no destructors, no flushes).

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/run_budget.hpp"
#include "cache/cached_flow.hpp"
#include "cache/flow_cache.hpp"
#include "core/flows.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"
#include "service/batch_runner.hpp"
#include "verify/audit.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ts_fault_test_" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

FlowOptions small_options() {
  FlowOptions opt;
  opt.k = 4;
  opt.num_threads = 1;
  return opt;
}

Circuit bounded_sample(const std::string& blif, int k = 4) {
  Circuit c = read_blif_string(blif);
  if (!c.is_k_bounded(k)) c = gate_decompose(c, k);
  return c;
}

std::string fingerprint(const FlowResult& r) {
  return std::to_string(r.phi) + "|" + std::to_string(r.period) + "|" +
         std::to_string(r.pipeline_stages) + "|" + write_blif_string(r.mapped, "fp");
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

/// A synthetic but fully certified (key, entry) pair: the winning probe is
/// feasible, ok, and hashes the winning labels — everything parse validation
/// demands — without the cost of running a real flow.
struct Crafted {
  CacheKey key;
  CacheEntry entry;
};

Crafted crafted_entry() {
  Crafted out;
  out.key = make_cache_key(read_blif_string(counter3_blif()), small_options(),
                           FlowKind::kTurboSyn);
  CacheEntry& e = out.entry;
  e.phi = 2;
  e.mode = LabelMode::kPlain;
  e.max_po_label = 1;
  e.winning_labels = {0, 0, 1, 2, 1, 2};
  CachedProbe win;
  win.phi = 2;
  win.mode = LabelMode::kPlain;
  win.status = Status::kOk;
  win.feasible = true;
  win.label_hash = hash_labels(std::span<const int>(e.winning_labels));
  win.max_po_label = 1;
  e.probes.push_back(win);
  e.luts = 3;
  e.ffs = 2;
  e.mdr_num = 3;
  e.mdr_den = 2;
  e.period = 4;
  e.pipeline_stages = 1;
  e.mapped_blif = ".model mapped\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
  return out;
}

/// Number of "*.tmp.*" files under `dir`.
int count_tmp_files(const fs::path& dir) {
  int n = 0;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (de.path().filename().string().find(".tmp.") != std::string::npos) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Failpoint registry

TEST(FailpointRegistry, DisarmedByDefaultAndZeroLookup) {
  failpoint::clear();
  EXPECT_FALSE(failpoint::enabled());
  EXPECT_EQ(failpoint::poll("any.site").action, failpoint::Action::kOff);
  EXPECT_EQ(failpoint::hits("any.site"), 0);  // poll never reached the registry
}

TEST(FailpointRegistry, CountLimitFiresThenGoesQuiet) {
  failpoint::Scoped scoped("siteA=error*2");
  EXPECT_TRUE(failpoint::enabled());
  EXPECT_EQ(failpoint::check("siteA").action, failpoint::Action::kError);
  EXPECT_EQ(failpoint::check("siteA").action, failpoint::Action::kError);
  EXPECT_EQ(failpoint::check("siteA").action, failpoint::Action::kOff);
  EXPECT_EQ(failpoint::hits("siteA"), 3);
  EXPECT_EQ(failpoint::triggers("siteA"), 2);
}

TEST(FailpointRegistry, FromDelaysTheFirstFiring) {
  failpoint::Scoped scoped("siteB=error@2*1");
  EXPECT_EQ(failpoint::check("siteB").action, failpoint::Action::kOff);
  EXPECT_EQ(failpoint::check("siteB").action, failpoint::Action::kError);
  EXPECT_EQ(failpoint::check("siteB").action, failpoint::Action::kOff);
  EXPECT_EQ(failpoint::triggers("siteB"), 1);
}

TEST(FailpointRegistry, PartialAndDelayCarryArgs) {
  failpoint::Scoped scoped("p=partial,q=partial:40,d=delay:0");
  EXPECT_EQ(failpoint::check("p").action, failpoint::Action::kPartialWrite);
  EXPECT_EQ(failpoint::check("p").arg, 16);  // documented default
  EXPECT_EQ(failpoint::check("q").arg, 40);
  EXPECT_EQ(failpoint::check("d").action, failpoint::Action::kDelay);
}

TEST(FailpointRegistry, ThrowPolicyThrowsError) {
  failpoint::Scoped scoped("t=throw");
  EXPECT_THROW(failpoint::check("t"), Error);
  EXPECT_EQ(failpoint::triggers("t"), 1);
}

TEST(FailpointRegistry, MalformedSpecArmsNothing) {
  failpoint::clear();
  std::string error;
  EXPECT_FALSE(failpoint::configure("x=bogus", &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_FALSE(failpoint::configure("noequals", &error));
  EXPECT_FALSE(failpoint::configure("x=error*0", &error));  // count 0 is invalid
  EXPECT_FALSE(failpoint::configure("x=error@0", &error));  // from is 1-based
  // A malformed spec mixed with a valid clause arms neither.
  EXPECT_FALSE(failpoint::configure("ok=error,x=bogus", &error));
  EXPECT_FALSE(failpoint::enabled());
  EXPECT_EQ(failpoint::poll("ok").action, failpoint::Action::kOff);
}

TEST(FailpointRegistry, OffDisarmsOneSiteLaterClauseWins) {
  failpoint::Scoped scoped("a=error,b=error");
  std::string error;
  ASSERT_TRUE(failpoint::configure("a=off", &error));
  EXPECT_TRUE(failpoint::enabled());  // b is still armed
  EXPECT_EQ(failpoint::check("a").action, failpoint::Action::kOff);
  EXPECT_EQ(failpoint::check("b").action, failpoint::Action::kError);
}

TEST(FailpointRegistry, ClearResetsCountersAndDisarms) {
  std::string error;
  ASSERT_TRUE(failpoint::configure("c=error", &error));
  failpoint::check("c");
  EXPECT_EQ(failpoint::triggers("c"), 1);
  failpoint::clear();
  EXPECT_FALSE(failpoint::enabled());
  EXPECT_EQ(failpoint::hits("c"), 0);
  EXPECT_EQ(failpoint::triggers("c"), 0);
  EXPECT_TRUE(failpoint::trigger_counts().empty());
}

TEST(FailpointRegistry, TriggerCountsListFiredSites) {
  failpoint::Scoped scoped("x=error,y=error");
  failpoint::check("x");
  failpoint::check("x");
  failpoint::check("y");
  const auto counts = failpoint::trigger_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "x");
  EXPECT_EQ(counts[0].second, 2);
  EXPECT_EQ(counts[1].first, "y");
  EXPECT_EQ(counts[1].second, 1);
}

TEST(FailpointRegistry, EnvVariableArmsAndRejectsMalformed) {
  failpoint::clear();
  ::setenv("TS_FAILPOINTS", "envsite=error*1", 1);
  EXPECT_TRUE(failpoint::configure_from_env());
  EXPECT_EQ(failpoint::check("envsite").action, failpoint::Action::kError);
  failpoint::clear();
  ::setenv("TS_FAILPOINTS", "envsite=nonsense", 1);
  EXPECT_FALSE(failpoint::configure_from_env());
  EXPECT_FALSE(failpoint::enabled());
  ::unsetenv("TS_FAILPOINTS");
  EXPECT_TRUE(failpoint::configure_from_env());  // unset is a no-op
  failpoint::clear();
}

TEST(FailpointRegistry, KnownSitesCatalogCoversTheInstrumentedPaths) {
  const std::vector<std::string> sites = failpoint::known_sites();
  for (const char* expected : {"blif.read", "cache.entry.read", "cache.entry.write",
                               "cache.entry.rename", "cache.sidecar.read",
                               "cache.sidecar.write", "driver.stage", "batch.job",
                               "batch.jsonl.write"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "catalog is missing site " << expected;
  }
}

// ---------------------------------------------------------------------------
// Cache corruption hardening (crafted entries; no flows involved)

TEST(FlowCacheFaults, RoundTripSurvivesTheChecksumTrailer) {
  const fs::path dir = test_dir("roundtrip");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  const auto hit = cache.lookup(crafted.key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->phi, crafted.entry.phi);
  EXPECT_EQ(hit->winning_labels, crafted.entry.winning_labels);
  EXPECT_EQ(hit->mapped_blif, crafted.entry.mapped_blif);
  EXPECT_EQ(cache.recovered_entries(), 0);
}

TEST(FlowCacheFaults, TruncatedEntryIsACountedCleanMiss) {
  const fs::path dir = test_dir("truncated");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  const fs::path path = cache.entry_path(crafted.key);
  const std::string content = read_file(path);
  write_file(path, content.substr(0, content.size() / 2));

  EXPECT_FALSE(cache.lookup(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_entries(), 1);
  EXPECT_EQ(cache.misses(), 1);
  // The slot self-heals: a fresh store overwrites the torn file.
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
}

TEST(FlowCacheFaults, ChecksumCatchesMidFileCorruptionThatStillTokenizes) {
  const fs::path dir = test_dir("midfile");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  const fs::path path = cache.entry_path(crafted.key);
  std::string content = read_file(path);
  // Flip one byte inside the BLIF body: same length, still tokenizes, and no
  // certification field (labels, probe hashes) changes — only the checksum
  // trailer can catch this.
  const std::size_t at = content.find(".model mapped");
  ASSERT_NE(at, std::string::npos);
  content[at + std::string(".model ").size()] = 'x';
  write_file(path, content);

  EXPECT_FALSE(cache.lookup(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_entries(), 1);
}

TEST(FlowCacheFaults, MissingTrailerIsASchemaViolation) {
  const fs::path dir = test_dir("notrailer");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  const fs::path path = cache.entry_path(crafted.key);
  std::string content = read_file(path);
  const std::size_t sum = content.rfind("sum ");
  ASSERT_NE(sum, std::string::npos);
  write_file(path, content.substr(0, sum));
  EXPECT_FALSE(cache.lookup(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_entries(), 1);
}

TEST(FlowCacheFaults, InjectedPartialWriteIsNeverServed) {
  const fs::path dir = test_dir("partial");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.entry.write=partial:80*1");
  // The torn write still renames (store reports success — exactly what an
  // fsync-less crash looks like)...
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  EXPECT_EQ(failpoint::triggers("cache.entry.write"), 1);
  // ...but the checksum trailer is gone with the tail, so the entry demotes
  // to a clean miss instead of replaying half a result.
  EXPECT_FALSE(cache.lookup(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_entries(), 1);
}

TEST(FlowCacheFaults, TransientWriteFaultIsRetriedWithBackoff) {
  const fs::path dir = test_dir("retrywrite");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.entry.write=error*2");
  EXPECT_TRUE(cache.store(crafted.key, crafted.entry));  // 3rd attempt lands
  EXPECT_EQ(cache.retries(), 2);
  EXPECT_EQ(failpoint::triggers("cache.entry.write"), 2);
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
  EXPECT_EQ(cache.stores(), 1);
}

TEST(FlowCacheFaults, PersistentWriteFaultExhaustsAttempts) {
  const fs::path dir = test_dir("exhaust");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.entry.write=error");
  EXPECT_FALSE(cache.store(crafted.key, crafted.entry));
  EXPECT_EQ(cache.retries(), 2);  // 3 attempts = 2 retries
  EXPECT_EQ(cache.rejects(), 1);
  EXPECT_EQ(cache.stores(), 0);
  EXPECT_FALSE(cache.lookup(crafted.key).has_value());
}

TEST(FlowCacheFaults, RenameFaultIsRetriedAndLeavesNoStrayTmp) {
  const fs::path dir = test_dir("rename");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.entry.rename=error*1");
  EXPECT_TRUE(cache.store(crafted.key, crafted.entry));
  EXPECT_EQ(cache.retries(), 1);
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
  EXPECT_EQ(count_tmp_files(dir), 0);
}

TEST(FlowCacheFaults, ReadFaultDegradesToMissWithoutRetrying) {
  const fs::path dir = test_dir("readfault");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  failpoint::Scoped scoped("cache.entry.read=error*1");
  EXPECT_FALSE(cache.lookup(crafted.key).has_value());  // fault round: miss
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());   // entry was intact all along
  EXPECT_EQ(cache.retries(), 0);  // reads never burn backoff sleeps
  EXPECT_EQ(cache.recovered_entries(), 0);
}

TEST(FlowCacheFaults, ThrowPolicyAtReadSiteIsAbsorbed) {
  const fs::path dir = test_dir("readthrow");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  failpoint::Scoped scoped("cache.entry.read=throw*1");
  EXPECT_NO_THROW({ EXPECT_FALSE(cache.lookup(crafted.key).has_value()); });
}

TEST(FlowCacheFaults, HashCollisionIsACleanMissEvenUnderReadFault) {
  const fs::path dir = test_dir("collision");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  // Forged key: same 64-bit hash (same file on disk), different canonical
  // text — a simulated hash collision. The byte-for-byte key comparison must
  // reject it.
  CacheKey forged = crafted.key;
  forged.text += "#";
  EXPECT_FALSE(cache.lookup(forged).has_value());
  EXPECT_EQ(cache.hits(), 0);
  // Same forgery with a read fault landing mid-sequence: still never a hit.
  failpoint::Scoped scoped("cache.entry.read=error@2*1");
  EXPECT_FALSE(cache.lookup(forged).has_value());  // hit 1: collision check
  EXPECT_FALSE(cache.lookup(forged).has_value());  // hit 2: injected read fault
  EXPECT_FALSE(cache.lookup(forged).has_value());  // hit 3: collision check again
  EXPECT_EQ(cache.hits(), 0);
  // The honest key still works.
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
}

TEST(FlowCacheFaults, GarbageSidecarIsACleanMissNeverAPoisonedImport) {
  const fs::path dir = test_dir("sidecar");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  const fs::path sidecar = dir / ("near_" + hex16(crafted.key.near_sketch) + ".tsni");
  write_file(sidecar, "!! not a sidecar at all \x01\x02\x03");
  EXPECT_FALSE(cache.lookup_near(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_sidecars(), 1);
  // Truncated header (magic but no donor hash): same clean outcome.
  write_file(sidecar, "turbosyn-near 1\n");
  EXPECT_FALSE(cache.lookup_near(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_sidecars(), 2);
}

TEST(FlowCacheFaults, SidecarPointingAtTornDonorNeverImports) {
  const fs::path dir = test_dir("torndonor");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  // A well-formed sidecar whose donor entry file is garbage.
  const std::uint64_t donor_hash = 0x1234567890abcdefull;
  write_file(dir / ("near_" + hex16(crafted.key.near_sketch) + ".tsni"),
             "turbosyn-near 1\n" + hex16(donor_hash) + "\n");
  write_file(dir / (hex16(donor_hash) + ".tsce"), "turbosyn-cache 3\ngarbage");
  EXPECT_FALSE(cache.lookup_near(crafted.key).has_value());
  EXPECT_EQ(cache.recovered_entries(), 1);  // the torn donor was detected
}

TEST(FlowCacheFaults, SidecarReadFaultMeansNoDonor) {
  const fs::path dir = test_dir("sidecarread");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.sidecar.read=error");
  EXPECT_FALSE(cache.lookup_near(crafted.key).has_value());
  EXPECT_GE(failpoint::triggers("cache.sidecar.read"), 1);
}

TEST(FlowCacheFaults, SidecarWriteFaultStoresTheEntryWithoutTheIndex) {
  const fs::path dir = test_dir("sidecarwrite");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.sidecar.write=error*1");
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
  EXPECT_FALSE(
      fs::exists(dir / ("near_" + hex16(crafted.key.near_sketch) + ".tsni")));
}

TEST(FlowCacheFaults, RecoverGCsStrayTmpTornEntriesAndDanglingSidecars) {
  const fs::path dir = test_dir("recover");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));  // the healthy survivor

  write_file(dir / (hex16(0) + ".tsce.tmp.123.4"), "half-written entry");
  write_file(dir / (hex16(0xffffffffffffffffull) + ".tsce"), "turbosyn-cache 3 torn");
  write_file(dir / ("near_" + hex16(0x42) + ".tsni"),
             "turbosyn-near 1\n" + hex16(0xdeadbeef) + "\n");  // donor missing

  const FlowCache::RecoveryStats stats = cache.recover();
  EXPECT_EQ(stats.stray_tmp, 1);
  EXPECT_EQ(stats.torn_entries, 1);
  EXPECT_EQ(stats.dangling_sidecars, 1);
  EXPECT_EQ(stats.total(), 3);
  EXPECT_EQ(cache.recovered_tmp(), 1);
  EXPECT_EQ(cache.recovered_entries(), 1);
  EXPECT_EQ(cache.recovered_sidecars(), 1);

  // The healthy entry and its sidecar survived, and a second pass is clean.
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
  EXPECT_TRUE(fs::exists(dir / ("near_" + hex16(crafted.key.near_sketch) + ".tsni")));
  EXPECT_EQ(cache.recover().total(), 0);
}

TEST(FlowCacheFaults, RecoverRemovesAnEntryFiledUnderTheWrongName) {
  const fs::path dir = test_dir("misfiled");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  // A stale rename: a byte-identical copy of a valid entry under a name that
  // does not match its stored hash.
  fs::copy_file(cache.entry_path(crafted.key), dir / (hex16(7) + ".tsce"));
  const FlowCache::RecoveryStats stats = cache.recover();
  EXPECT_EQ(stats.torn_entries, 1);
  EXPECT_FALSE(fs::exists(dir / (hex16(7) + ".tsce")));
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
}

TEST(FlowCacheFaults, RecoverOnAMissingDirectoryIsAnEmptyPass) {
  FlowCache cache((fs::path(::testing::TempDir()) / "ts_fault_never_created").string());
  EXPECT_EQ(cache.recover().total(), 0);
}

// ---------------------------------------------------------------------------
// Crash drills: kill -9 between two instructions, via fork()

TEST(FlowCacheCrashRecovery, CrashBetweenWriteAndRenameIsGCdAndNeverServed) {
  const fs::path dir = test_dir("crash");
  const Crafted crafted = crafted_entry();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die (no destructors, no flushes) after writing the tmp file but
    // before the rename — the classic stray-tmp crash window.
    failpoint::configure("cache.entry.rename=crash:137");
    FlowCache child_cache(dir.string());
    child_cache.store(crafted.key, crafted.entry);
    std::_Exit(9);  // unreachable unless the failpoint failed to fire
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 137) << "child did not crash at the rename failpoint";

  // The crash left a stray tmp and no published entry.
  EXPECT_EQ(count_tmp_files(dir), 1);
  FlowCache cache(dir.string());
  EXPECT_FALSE(cache.lookup(crafted.key).has_value());  // clean miss, no crash

  const FlowCache::RecoveryStats stats = cache.recover();
  EXPECT_EQ(stats.stray_tmp, 1);
  EXPECT_EQ(count_tmp_files(dir), 0);

  // Post-recovery the slot works normally again.
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
}

TEST(FlowCacheCrashRecovery, CrashOnSecondStoreKeepsTheFirstEntryServable) {
  const fs::path dir = test_dir("crash2");
  const Crafted crafted = crafted_entry();
  FlowCache cache(dir.string());
  ASSERT_TRUE(cache.store(crafted.key, crafted.entry));

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    failpoint::configure("cache.entry.rename=crash:137");
    FlowCache child_cache(dir.string());
    child_cache.store(crafted.key, crafted.entry);
    std::_Exit(9);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 137);

  // The published entry predates the crash and stays valid; recover() only
  // removes the dead writer's tmp.
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
  const FlowCache::RecoveryStats stats = cache.recover();
  EXPECT_EQ(stats.stray_tmp, 1);
  EXPECT_EQ(stats.torn_entries, 0);
  EXPECT_TRUE(cache.lookup(crafted.key).has_value());
}

// ---------------------------------------------------------------------------
// Driver containment

TEST(DriverContainment, StageFaultYieldsFailedResultAndSkipsTheRest) {
  const Circuit c = bounded_sample(counter3_blif());
  failpoint::Scoped scoped("driver.stage.pack=error");
  const FlowResult result = run_turbomap(c, small_options());
  EXPECT_EQ(result.status, Status::kFailed);
  EXPECT_EQ(result.failed_stage, "pack");
  EXPECT_NE(result.failure.find("failpoint"), std::string::npos);
  EXPECT_FALSE(result.timed_out);  // containment is not an interrupt
  // pack is the last stage that ran; pipeline-retime never started.
  ASSERT_FALSE(result.stage_metrics.stages.empty());
  EXPECT_EQ(result.stage_metrics.stages.back().name, "pack");
  EXPECT_EQ(result.stage_metrics.stages.back().counter("failed"), 1);
  EXPECT_EQ(result.stage_metrics.find("pipeline-retime"), nullptr);
  // A failed run is never a certificate and never cacheable.
  EXPECT_FALSE(FlowCache::storable(result));
}

TEST(DriverContainment, GenericStageSiteFailsTheFirstBoundary) {
  const Circuit c = bounded_sample(counter3_blif());
  failpoint::Scoped scoped("driver.stage=error*1");
  const FlowResult result = run_turbomap(c, small_options());
  EXPECT_EQ(result.status, Status::kFailed);
  EXPECT_EQ(result.failed_stage, "ub-probe");
}

TEST(DriverContainment, ThrowPolicyIsContainedLikeARealStageDefect) {
  const Circuit c = bounded_sample(counter3_blif());
  failpoint::Scoped scoped("driver.stage.phi-search=throw");
  FlowResult result;
  EXPECT_NO_THROW({ result = run_turbomap(c, small_options()); });
  EXPECT_EQ(result.status, Status::kFailed);
  EXPECT_EQ(result.failed_stage, "phi-search");
}

TEST(DriverContainment, TurboSynPhaseAFailureEndsTheFlow) {
  const Circuit c = bounded_sample(gray_counter_blif());
  failpoint::Scoped scoped("driver.stage.mapgen=error*1");
  const FlowResult result = run_turbosyn(c, small_options());
  EXPECT_EQ(result.status, Status::kFailed);
  EXPECT_EQ(result.failed_stage, "mapgen");
}

TEST(DriverContainment, AuditReportsContainmentAndSkipsProductChecks) {
  const Circuit c = bounded_sample(counter3_blif());
  FlowOptions opt = small_options();
  FlowResult result;
  {
    failpoint::Scoped scoped("driver.stage.mapgen=error");
    result = run_turbomap(c, opt);
  }
  ASSERT_EQ(result.status, Status::kFailed);
  const AuditReport report = audit_flow(c, result, opt);
  ASSERT_FALSE(report.checks.empty());
  EXPECT_EQ(report.checks[0].name, "containment");
  EXPECT_EQ(report.checks[0].status, AuditStatus::kPass);
  EXPECT_TRUE(report.passed());  // coherent containment, everything else skipped
  for (std::size_t i = 1; i < report.checks.size(); ++i) {
    EXPECT_EQ(report.checks[i].status, AuditStatus::kSkipped) << report.checks[i].name;
  }
}

TEST(DriverContainment, AuditFlagsAnIncoherentContainmentRecord) {
  const Circuit c = bounded_sample(counter3_blif());
  FlowOptions opt = small_options();
  FlowResult result = run_turbomap(c, opt);
  result.failed_stage = "pack";  // failing stage named on a non-failed result
  const AuditReport report = audit_flow(c, result, opt);
  ASSERT_FALSE(report.checks.empty());
  EXPECT_EQ(report.checks[0].name, "containment");
  EXPECT_EQ(report.checks[0].status, AuditStatus::kFail);
}

TEST(DriverContainment, UnknownArmedSiteLeavesTheFlowBitIdentical) {
  const Circuit c = bounded_sample(counter3_blif());
  const FlowResult clean = run_turbomap(c, small_options());
  failpoint::Scoped scoped("no.such.site=error");
  const FlowResult armed = run_turbomap(c, small_options());
  EXPECT_EQ(fingerprint(armed), fingerprint(clean));
  EXPECT_EQ(armed.status, Status::kOk);
}

TEST(DriverContainment, CacheWriteFaultsNeverChangeTheFlowResult) {
  const fs::path dir = test_dir("flowwritefault");
  const Circuit c = bounded_sample(gray_counter_blif());
  FlowOptions opt = small_options();
  const FlowResult uncached = run_turbosyn(c, opt);

  FlowCache cache(dir.string());
  failpoint::Scoped scoped("cache.entry.write=error");
  CacheRunInfo info;
  const FlowResult result = run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &info);
  EXPECT_EQ(fingerprint(result), fingerprint(uncached));
  EXPECT_FALSE(info.hit);
  EXPECT_FALSE(info.stored);  // every store attempt was eaten by the fault
  EXPECT_EQ(cache.stores(), 0);
}

// ---------------------------------------------------------------------------
// SIGTERM cooperative cancellation

TEST(SignalCancellation, SigtermCancelsTheGlobalTokenLikeSigint) {
  global_cancel_token().reset();
  install_sigterm_cancellation();
  ASSERT_FALSE(global_cancel_token().cancelled());
  std::raise(SIGTERM);  // the handler runs synchronously on this thread
  EXPECT_TRUE(global_cancel_token().cancelled());
  // The handler resets the disposition so a second SIGTERM terminates a
  // stuck process; re-arm defaults for the rest of the suite.
  global_cancel_token().reset();
  std::signal(SIGTERM, SIG_DFL);
}

// ---------------------------------------------------------------------------
// Supervised batch execution

/// One-job manifest on disk for the batch tests.
BatchJob write_job(const fs::path& dir, const std::string& name, const std::string& blif) {
  const fs::path path = dir / (name + ".blif");
  write_file(path, blif);
  BatchJob job;
  job.name = name;
  job.path = path.string();
  job.flow = FlowKind::kTurboSyn;
  job.k = 4;
  return job;
}

TEST(BatchSupervision, TransientJobFaultIsRetriedToACleanRecord) {
  const fs::path dir = test_dir("batchretry");
  const BatchJob job = write_job(dir, "counter3", counter3_blif());
  BatchOptions options;

  const BatchSummary clean = run_batch({job}, options);
  ASSERT_EQ(clean.records.size(), 1u);
  ASSERT_TRUE(clean.records[0].ok);

  failpoint::Scoped scoped("batch.job=error*1");
  const BatchSummary summary = run_batch({job}, options);
  ASSERT_EQ(summary.records.size(), 1u);
  const BatchRecord& record = summary.records[0];
  EXPECT_TRUE(record.ok);
  EXPECT_EQ(record.status, Status::kOk);
  EXPECT_EQ(record.attempts, 2);
  EXPECT_FALSE(record.quarantined);
  EXPECT_EQ(summary.retries, 1);
  EXPECT_EQ(summary.completed, 1);
  EXPECT_EQ(summary.quarantined, 0);
  // The retried run is bit-identical to the fault-free one.
  EXPECT_EQ(record.phi, clean.records[0].phi);
  EXPECT_EQ(record.luts, clean.records[0].luts);
  EXPECT_EQ(record.period, clean.records[0].period);
}

TEST(BatchSupervision, DeterministicIngestFaultIsQuarantined) {
  const fs::path dir = test_dir("batchquarantine");
  const BatchJob job = write_job(dir, "counter3", counter3_blif());
  BatchOptions options;
  failpoint::Scoped scoped("blif.read=error");
  std::ostringstream jsonl;
  const BatchSummary summary = run_batch({job}, options, &jsonl);
  ASSERT_EQ(summary.records.size(), 1u);
  const BatchRecord& record = summary.records[0];
  EXPECT_FALSE(record.ok);
  EXPECT_EQ(record.attempts, 2);
  EXPECT_TRUE(record.quarantined);
  EXPECT_NE(record.error.find("blif.read"), std::string::npos);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_EQ(summary.quarantined, 1);
  ASSERT_EQ(summary.poisoned.size(), 1u);
  EXPECT_EQ(summary.poisoned[0], "counter3");
  // The quarantine is visible in the streamed record too.
  EXPECT_NE(jsonl.str().find("\"quarantined\":true"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"attempts\":2"), std::string::npos);
}

TEST(BatchSupervision, ContainedStageFailureBecomesAFailedRecordNotADeadProcess) {
  const fs::path dir = test_dir("batchcontain");
  const BatchJob job = write_job(dir, "gray", gray_counter_blif());
  BatchOptions options;
  failpoint::Scoped scoped("driver.stage=error");
  std::ostringstream jsonl;
  const BatchSummary summary = run_batch({job}, options, &jsonl);
  ASSERT_EQ(summary.records.size(), 1u);
  const BatchRecord& record = summary.records[0];
  EXPECT_TRUE(record.ok);  // the flow ran; it reported a contained failure
  EXPECT_EQ(record.status, Status::kFailed);
  EXPECT_EQ(record.failed_stage, "ub-probe");
  EXPECT_TRUE(record.quarantined);
  EXPECT_EQ(summary.failed, 1);
  EXPECT_NE(jsonl.str().find("\"failed_stage\":\"ub-probe\""), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"status\":\"failed\""), std::string::npos);
}

TEST(BatchSupervision, JsonlSinkFaultIsAbsorbedAndCounted) {
  const fs::path dir = test_dir("batchjsonl");
  const std::vector<BatchJob> jobs = {write_job(dir, "counter3", counter3_blif()),
                                      write_job(dir, "gray", gray_counter_blif())};
  BatchOptions options;
  failpoint::Scoped scoped("batch.jsonl.write=error");
  std::ostringstream jsonl;
  const BatchSummary summary = run_batch(jobs, options, &jsonl);
  EXPECT_EQ(summary.completed, 2);  // the batch itself is unharmed
  EXPECT_EQ(summary.jsonl_write_faults, 2);
  for (const BatchRecord& record : summary.records) EXPECT_TRUE(record.ok);
}

TEST(BatchSupervision, SingleAttemptModeNeverRetries) {
  const fs::path dir = test_dir("batchsingle");
  const BatchJob job = write_job(dir, "counter3", counter3_blif());
  BatchOptions options;
  options.max_attempts = 1;
  failpoint::Scoped scoped("batch.job=error*1");
  const BatchSummary summary = run_batch({job}, options);
  ASSERT_EQ(summary.records.size(), 1u);
  EXPECT_FALSE(summary.records[0].ok);
  EXPECT_EQ(summary.records[0].attempts, 1);
  EXPECT_TRUE(summary.records[0].quarantined);
  EXPECT_EQ(summary.retries, 0);
}

}  // namespace
}  // namespace turbosyn
