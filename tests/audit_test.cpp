#include "verify/audit.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "base/check.hpp"
#include "core/flows.hpp"
#include "netlist/blif.hpp"
#include "netlist/gates.hpp"
#include "retime/cycle_ratio.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

FlowOptions audited_options() {
  FlowOptions opt;
  opt.collect_artifacts = true;
  return opt;
}

// ---- Clean flows must audit green. ----

TEST(AuditFlow, CleanTurboSynPassesEveryStage) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  const FlowOptions opt = audited_options();
  const FlowResult ts = run_turbosyn(c, opt);
  const AuditReport report = audit_flow(c, ts, opt);
  EXPECT_TRUE(report.passed()) << report.breakdown();
  for (const AuditCheck& check : report.checks) {
    if (check.name == "portfolio") {
      // Standalone run: there is no race table to re-verify.
      EXPECT_EQ(check.status, AuditStatus::kSkipped) << check.detail;
      continue;
    }
    EXPECT_EQ(check.status, AuditStatus::kPass)
        << check.name << ": " << check.detail;
  }
}

TEST(AuditFlow, CleanTurboMapPeriodPassesEveryStage) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  const FlowOptions opt = audited_options();
  const FlowResult tm = run_turbomap_period(c, opt);
  const AuditReport report = audit_flow(c, tm, opt);
  EXPECT_TRUE(report.passed()) << report.breakdown();
}

TEST(AuditFlow, FlowSynSSkipsLabelStagesButPasses) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  const FlowOptions opt = audited_options();
  const FlowResult fs = run_flowsyn_s(c, opt);
  const AuditReport report = audit_flow(c, fs, opt);
  EXPECT_TRUE(report.passed()) << report.breakdown();
  int skips = 0;
  for (const AuditCheck& check : report.checks) {
    if (check.status == AuditStatus::kSkipped) ++skips;
  }
  // labels + cuts + probes (no label search) + portfolio (standalone run)
  EXPECT_EQ(skips, 4);
}

TEST(AuditFlow, ReportAndCliHelpersWork) {
  const Circuit c = ring_circuit(4, 2);
  const FlowOptions opt = audited_options();
  const FlowResult ts = run_turbosyn(c, opt);
  std::ostringstream os;
  EXPECT_TRUE(audit_and_report(c, ts, opt, "ring", os));
  EXPECT_NE(os.str().find("audit ring: PASS"), std::string::npos);
  EXPECT_NE(os.str().find("[PASS] mdr"), std::string::npos);

  const char* with_flag[] = {const_cast<char*>("prog"), const_cast<char*>("--audit")};
  const char* without[] = {const_cast<char*>("prog"), const_cast<char*>("--threads")};
  EXPECT_TRUE(audit_flag_from_cli(2, const_cast<char**>(with_flag)));
  EXPECT_FALSE(audit_flag_from_cli(2, const_cast<char**>(without)));
}

// ---- Seeded violations: every tampered artifact must be caught. ----

TEST(AuditLabels, CatchesTamperedGateLabel) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  const FlowOptions opt = audited_options();
  const FlowResult tm = run_turbomap(c, opt);
  ASSERT_TRUE(tm.artifacts.valid);
  EXPECT_FALSE(audit_labels(c, tm.artifacts.labels.labels, tm.artifacts.phi).has_value());

  std::vector<int> broken = tm.artifacts.labels.labels;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v) && !c.fanin_edges(v).empty()) {
      broken[static_cast<std::size_t>(v)] += 10;
      break;
    }
  }
  const auto failure = audit_labels(c, broken, tm.artifacts.phi);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("outside"), std::string::npos) << *failure;
}

TEST(AuditLabels, CatchesNonzeroSourceLabel) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  const FlowOptions opt = audited_options();
  const FlowResult tm = run_turbomap(c, opt);
  ASSERT_TRUE(tm.artifacts.valid);
  std::vector<int> broken = tm.artifacts.labels.labels;
  broken[static_cast<std::size_t>(c.pis()[0])] = 1;
  const auto failure = audit_labels(c, broken, tm.artifacts.phi);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("source"), std::string::npos) << *failure;
}

TEST(AuditMappingRecord, CatchesDroppedCutElement) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  const FlowOptions opt = audited_options();
  const FlowResult tm = run_turbomap(c, opt);
  ASSERT_TRUE(tm.artifacts.valid);
  const auto& art = tm.artifacts;
  for (const MappingRecord& rec : art.records) {
    ASSERT_FALSE(
        audit_mapping_record(c, art.labels.labels, art.phi, opt.k, rec).has_value());
  }
  // Drop one cut element from a multi-input record: the LUT arity no longer
  // matches the cut, or the cone function changes — either way it must fail.
  for (const MappingRecord& rec : art.records) {
    if (rec.real.cut.size() < 2) continue;
    MappingRecord broken = rec;
    broken.real.cut.pop_back();
    EXPECT_TRUE(
        audit_mapping_record(c, art.labels.labels, art.phi, opt.k, broken).has_value());
    return;
  }
  GTEST_SKIP() << "no multi-input record in this mapping";
}

TEST(AuditMappingRecord, CatchesShiftedCutRegisterCount) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[1]);
  const FlowOptions opt = audited_options();
  const FlowResult tm = run_turbomap(c, opt);
  ASSERT_TRUE(tm.artifacts.valid);
  const auto& art = tm.artifacts;
  // Bump one cut input's register count: the cut no longer covers the real
  // fanin frontier (coverage/cone failure) or the height bound breaks.
  for (const MappingRecord& rec : art.records) {
    MappingRecord broken = rec;
    broken.real.cut[0].w += 1;
    if (audit_mapping_record(c, art.labels.labels, art.phi, opt.k, broken).has_value()) {
      return;  // caught, as required
    }
  }
  FAIL() << "no shifted-register cut was caught by the auditor";
}

TEST(AuditMappingRecord, CatchesZeroStateUnsafeInteriorCopy) {
  // x -> g1 (NOT) -> [1 FF] -> g2 (OR with x). A cone rooted at g2 whose cut
  // digs through the registered inverter recomputes g1 for cycle 0 as
  // NOT(0) = 1, but the real register powered up holding 0 — the auditor
  // must reject such an interior copy outright.
  Circuit c;
  const NodeId x = c.add_pi("x");
  const Circuit::FaninSpec f1[1] = {{x, 0}};
  const NodeId g1 = c.add_gate("g1", tt_not(), f1);
  const Circuit::FaninSpec f2[2] = {{g1, 1}, {x, 0}};
  const NodeId g2 = c.add_gate("g2", tt_or(2), f2);
  c.add_po("$po:o", {g2, 0});
  c.validate();

  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 0);
  labels[static_cast<std::size_t>(g1)] = 1;
  labels[static_cast<std::size_t>(g2)] = 1;
  MappingRecord rec;
  rec.root = g2;
  rec.height = 2;
  rec.real.cut = {SeqCutNode{x, 0}, SeqCutNode{x, 1}};
  // g2 = OR(NOT(x@1), x@0) over cut variables (x@0, x@1).
  rec.real.func = TruthTable::var(2, 0) | ~TruthTable::var(2, 1);
  const auto failure = audit_mapping_record(c, labels, /*phi=*/1, /*k=*/4, rec);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("zero-state-unsafe"), std::string::npos) << *failure;

  // The safe realization of the same root — reading the inverter through the
  // register as a cut input — passes.
  MappingRecord safe;
  safe.root = g2;
  safe.height = 2;
  safe.real.cut = {SeqCutNode{g1, 1}, SeqCutNode{x, 0}};
  safe.real.func = TruthTable::var(2, 0) | TruthTable::var(2, 1);
  EXPECT_FALSE(audit_mapping_record(c, labels, /*phi=*/1, /*k=*/4, safe).has_value());
}

TEST(AuditRetiming, CatchesNegativeEdgeAndPinnedLag) {
  const Circuit c = ring_circuit(3, 1);  // two zero-weight gate-to-gate edges
  std::vector<int> r(static_cast<std::size_t>(c.num_nodes()), 0);
  const std::vector<NodeId> pinned(c.pis().begin(), c.pis().end());
  EXPECT_FALSE(audit_retiming_legality(c, r, pinned).has_value());

  // Lag the source of a zero-weight gate-to-gate edge: that edge goes
  // negative under w(e) + r(to) - r(from).
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    const Circuit::Edge& edge = c.edge(e);
    if (edge.weight == 0 && c.is_gate(edge.from) && c.is_gate(edge.to)) {
      r[static_cast<std::size_t>(edge.from)] = 1;
      break;
    }
  }
  const auto neg = audit_retiming_legality(c, r, pinned);
  ASSERT_TRUE(neg.has_value());
  EXPECT_NE(neg->find("negative"), std::string::npos) << *neg;

  std::fill(r.begin(), r.end(), 0);
  r[static_cast<std::size_t>(c.pis()[0])] = 1;
  const auto pin = audit_retiming_legality(c, r, pinned);
  ASSERT_TRUE(pin.has_value());
  EXPECT_NE(pin->find("pinned"), std::string::npos) << *pin;
}

TEST(AuditMdr, CatchesPhiViolatingLoop) {
  // 3-gate ring with one register: MDR = 3/1. Certifying phi = 2 is a lie.
  const Circuit ring = ring_circuit(3, 1);
  ASSERT_EQ(circuit_mdr(ring).ratio, Rational(3));
  EXPECT_FALSE(audit_mdr(ring, 3, Rational(3)).has_value());

  const auto phi_violation = audit_mdr(ring, 2, Rational(3));
  ASSERT_TRUE(phi_violation.has_value());
  EXPECT_NE(phi_violation->find("exceeds"), std::string::npos) << *phi_violation;

  const auto wrong_claim = audit_mdr(ring, 3, Rational(2));
  ASSERT_TRUE(wrong_claim.has_value());
  EXPECT_NE(wrong_claim->find("Howard"), std::string::npos) << *wrong_claim;
}

TEST(AuditPeriod, CatchesPeriodBelowMdrBound) {
  const Circuit ring = ring_circuit(3, 1);  // MDR 3: period 1 is impossible
  const auto failure = audit_period(ring, 1, 0);
  ASSERT_TRUE(failure.has_value());
  EXPECT_NE(failure->find("below the MDR lower bound"), std::string::npos) << *failure;
  // Period 3 with no pipelining is achievable (retiming spreads the ring).
  EXPECT_FALSE(audit_period(ring, 3, 0).has_value());
}

TEST(AuditFlow, CatchesInequivalentMappedNetwork) {
  const Circuit good = read_blif_string(pattern_fsm_blif());
  // The same FSM with the output gate broken (z drops the x term).
  const Circuit bad = read_blif_string(R"(.model pattern1011
.inputs x
.outputs z
.latch ns0 s0 0
.latch ns1 s1 0
.names x ns0
1 1
.names x s0 s1 ns1
010 1
101 1
011 1
.names x s0 s1 z
011 1
.end
)");
  FlowResult forged;
  forged.mapped = bad;
  forged.exact_mdr = circuit_mdr(bad).ratio;
  forged.phi = 10;  // generous: keep the mdr stage green, isolate equivalence
  forged.period = 0;  // skip the period stage; equivalence is the target
  const AuditReport report = audit_flow(good, forged, FlowOptions{});
  EXPECT_FALSE(report.passed());
  bool equivalence_failed = false;
  for (const AuditCheck& check : report.checks) {
    if (check.name == "equivalence") {
      equivalence_failed = check.status == AuditStatus::kFail;
    }
  }
  EXPECT_TRUE(equivalence_failed) << report.breakdown();
}

TEST(AuditFlow, CatchesInterfaceMismatch) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  const FlowOptions opt = audited_options();
  FlowResult ts = run_turbosyn(c, opt);
  Circuit renamed;  // same shape, one PI renamed
  {
    Circuit tmp = ts.mapped;
    std::string blif = write_blif_string(tmp, "m");
    const std::string from = ".inputs";
    const auto at = blif.find(from);
    ASSERT_NE(at, std::string::npos);
    blif.insert(at + from.size(), " extra_pi");
    renamed = read_blif_string(blif);
  }
  ts.mapped = renamed;
  AuditOptions audit;
  audit.check_equivalence = false;  // PI sets differ; the miter would throw
  const AuditReport report = audit_flow(c, ts, opt, audit);
  bool interface_failed = false;
  for (const AuditCheck& check : report.checks) {
    if (check.name == "interface") interface_failed = check.status == AuditStatus::kFail;
  }
  EXPECT_TRUE(interface_failed) << report.breakdown();
}

}  // namespace
}  // namespace turbosyn
