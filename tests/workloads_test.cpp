#include <gtest/gtest.h>

#include <sstream>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "mapping/dedupe.hpp"
#include "netlist/blif.hpp"
#include "netlist/dot.hpp"
#include "netlist/gates.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"
#include "workloads/table.hpp"

namespace turbosyn {
namespace {

// ---- generator ----

TEST(Generator, DeterministicForSameSpec) {
  const BenchmarkSpec spec = table1_suite()[3];
  const Circuit a = generate_fsm_circuit(spec);
  const Circuit b = generate_fsm_circuit(spec);
  EXPECT_EQ(write_blif_string(a), write_blif_string(b));
}

TEST(Generator, DifferentSeedsDiffer) {
  BenchmarkSpec spec = tiny_suite()[0];
  const Circuit a = generate_fsm_circuit(spec);
  spec.seed += 1;
  const Circuit b = generate_fsm_circuit(spec);
  EXPECT_NE(write_blif_string(a), write_blif_string(b));
}

TEST(Generator, MeetsStructuralContract) {
  for (const auto& spec : table1_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    c.validate();
    const CircuitStats st = compute_stats(c);
    EXPECT_EQ(st.gates, spec.num_gates) << spec.name;
    EXPECT_EQ(st.pis, spec.num_pis) << spec.name;
    EXPECT_EQ(st.pos, spec.num_pos) << spec.name;
    EXPECT_LE(st.max_fanin, spec.max_fanin) << spec.name;
    EXPECT_GE(st.ffs, 1) << spec.name;               // sequential
    EXPECT_GE(st.sccs_with_cycle, 1) << spec.name;   // has loops
  }
}

TEST(Generator, SuiteSizesMatchTheBenchmarkRegime) {
  const auto suite = table1_suite();
  EXPECT_EQ(suite.size(), 16u);  // 12 MCNC + 4 ISCAS'89 stand-ins
  for (const auto& spec : suite) {
    EXPECT_GE(spec.num_gates, 80) << spec.name;
    EXPECT_LE(spec.num_gates, 800) << spec.name;
  }
}

TEST(Generator, RejectsDegenerateSpecs) {
  BenchmarkSpec spec;
  spec.num_pis = 0;
  EXPECT_THROW((void)generate_fsm_circuit(spec), Error);
}

// ---- samples ----

TEST(Samples, Figure1HasTheDocumentedShape) {
  const Circuit c = figure1_circuit();
  EXPECT_EQ(c.num_pis(), 4);
  EXPECT_EQ(c.num_gates(), 2);
  EXPECT_EQ(c.num_ffs(), 1);
  EXPECT_EQ(compute_stats(c).sccs_with_cycle, 1);
}

TEST(Samples, RingSpreadsRegistersEvenly) {
  for (const auto& [stages, regs] : {std::pair{6, 2}, {9, 3}, {5, 5}}) {
    const Circuit c = ring_circuit(stages, regs);
    EXPECT_EQ(c.num_gates(), stages);
    EXPECT_EQ(c.num_ffs(), regs);
  }
}

// ---- dedupe ----

TEST(Dedupe, MergesStructuralDuplicates) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f[2] = {{a, 0}, {b, 0}};
  const NodeId g1 = c.add_gate("g1", tt_and(2), f);
  const NodeId g2 = c.add_gate("g2", tt_and(2), f);  // duplicate of g1
  const Circuit::FaninSpec fr[2] = {{g1, 0}, {g2, 0}};
  const NodeId r = c.add_gate("r", tt_xor(2), fr);
  c.add_po("$po:o", {r, 0});
  DedupeStats stats;
  const Circuit d = dedupe_luts(c, &stats);
  EXPECT_EQ(stats.before, 3);
  EXPECT_EQ(stats.after, 2);
  // x ^ x == 0 semantics preserved (both XOR inputs now the same signal).
  Rng rng(3);
  const auto stimulus = random_stimulus(rng, 2, 16);
  EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(d, stimulus));
}

TEST(Dedupe, CascadesThroughLevels) {
  // Two identical two-level trees collapse into one.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f[2] = {{a, 0}, {b, 1}};
  const NodeId u1 = c.add_gate("u1", tt_or(2), f);
  const NodeId u2 = c.add_gate("u2", tt_or(2), f);
  const Circuit::FaninSpec f1[2] = {{u1, 0}, {a, 0}};
  const Circuit::FaninSpec f2[2] = {{u2, 0}, {a, 0}};
  const NodeId v1 = c.add_gate("v1", tt_and(2), f1);
  const NodeId v2 = c.add_gate("v2", tt_and(2), f2);
  c.add_po("$po:o1", {v1, 0});
  c.add_po("$po:o2", {v2, 0});
  DedupeStats stats;
  const Circuit d = dedupe_luts(c, &stats);
  EXPECT_EQ(d.num_gates(), 2);
  EXPECT_GE(stats.rounds, 2);
}

TEST(Dedupe, DistinguishesWeights) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f0[1] = {{a, 0}};
  const Circuit::FaninSpec f1[1] = {{a, 1}};
  const NodeId g1 = c.add_gate("g1", tt_not(), f0);
  const NodeId g2 = c.add_gate("g2", tt_not(), f1);  // registered: different signal
  const Circuit::FaninSpec fr[2] = {{g1, 0}, {g2, 0}};
  const NodeId r = c.add_gate("r", tt_xor(2), fr);
  c.add_po("$po:o", {r, 0});
  const Circuit d = dedupe_luts(c);
  EXPECT_EQ(d.num_gates(), 3);  // nothing merged
}

TEST(Dedupe, SequentialSuiteBehaviorPreserved) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    const Circuit d = dedupe_luts(c);
    EXPECT_LE(d.num_gates(), c.num_gates());
    Rng rng(spec.seed + 21);
    const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
    EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(d, stimulus)) << spec.name;
  }
}

// ---- dot ----

TEST(Dot, EmitsNodesEdgesAndRegisterLabels) {
  const Circuit c = figure1_circuit();
  const std::string dot = write_dot_string(c);
  EXPECT_NE(dot.find("digraph circuit"), std::string::npos);
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);     // PIs
  EXPECT_NE(dot.find("shape=invtriangle"), std::string::npos);  // POs
  EXPECT_NE(dot.find("label=\"1\" style=bold"), std::string::npos);  // FF edge
}

TEST(Dot, AnnotationsAppear) {
  const Circuit c = figure1_circuit();
  std::vector<int> labels(static_cast<std::size_t>(c.num_nodes()), 7);
  DotOptions opt;
  opt.annotations = labels;
  EXPECT_NE(write_dot_string(c, opt).find("l=7"), std::string::npos);
}

// ---- text table ----

TEST(TextTable, AlignsAndValidates) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), Error);
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
}

}  // namespace
}  // namespace turbosyn
