// Portfolio racing: determinism of the winner, soundness of cancellation,
// merged-ledger structure, and the "portfolio" audit check (including its
// rejection of seeded wrong-winner and incoherent-row fixtures).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/engines.hpp"
#include "core/flows.hpp"
#include "core/portfolio.hpp"
#include "netlist/blif.hpp"
#include "verify/audit.hpp"
#include "workloads/generator.hpp"

namespace turbosyn {
namespace {

Circuit test_circuit(std::uint64_t seed = 11, int gates = 40) {
  BenchmarkSpec spec;
  spec.name = "portfolio" + std::to_string(seed);
  spec.seed = seed;
  spec.num_pis = 4;
  spec.num_pos = 3;
  spec.num_gates = gates;
  spec.feedback = 0.12;
  spec.max_fanin = 3;
  return generate_fsm_circuit(spec);
}

FlowOptions test_options() {
  FlowOptions opt;
  opt.k = 4;
  opt.num_threads = 1;  // pinned: the race itself is the only parallelism
  opt.collect_artifacts = true;
  return opt;
}

std::vector<const EngineSpec*> engines_of(const std::vector<std::string>& names) {
  std::vector<const EngineSpec*> engines;
  for (const std::string& name : names) {
    const EngineSpec* spec = find_engine(name);
    EXPECT_NE(spec, nullptr) << name;
    engines.push_back(spec);
  }
  return engines;
}

std::string fingerprint(const FlowResult& r) {
  return std::to_string(r.phi) + "|" + std::to_string(r.period) + "|" +
         std::to_string(r.pipeline_stages) + "|" + write_blif_string(r.mapped, "fp");
}

/// The oracle: run every engine standalone to completion and pick the best
/// certificate under the shared selection order.
std::size_t best_standalone(const std::vector<const EngineSpec*>& engines,
                            const std::vector<FlowResult>& results) {
  std::size_t best = 0;
  bool have = false;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    if (results[i].status != Status::kOk) continue;
    if (!have || portfolio_prefers(results[i].phi, engines[i]->strength, i,
                                   results[best].phi, engines[best]->strength, best)) {
      best = i;
      have = true;
    }
  }
  EXPECT_TRUE(have) << "no standalone engine certified";
  return best;
}

AuditStatus portfolio_check_status(const Circuit& input, const FlowResult& result,
                                   const FlowOptions& options) {
  AuditOptions audit;
  audit.check_equivalence = false;  // the race structure is what's under test
  const AuditReport report = audit_flow(input, result, options, audit);
  for (const AuditCheck& check : report.checks) {
    if (check.name == "portfolio") return check.status;
  }
  ADD_FAILURE() << "no 'portfolio' check in the report";
  return AuditStatus::kSkipped;
}

TEST(Portfolio, SequentialRaceMatchesBestStandalone) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  const auto engines = engines_of({"turbomap", "turbosyn", "flowsyn_s"});

  std::vector<FlowResult> standalone;
  for (const EngineSpec* spec : engines) standalone.push_back(run_engine(*spec, c, opt));
  const std::size_t best = best_standalone(engines, standalone);

  PortfolioOptions popt;
  popt.concurrent = false;
  const FlowResult race = run_portfolio(engines, c, opt, popt);
  EXPECT_EQ(race.engine, engines[best]->name);
  EXPECT_EQ(fingerprint(race), fingerprint(standalone[best]));
  ASSERT_EQ(race.portfolio.size(), engines.size());
}

TEST(Portfolio, ConcurrentRaceDeterministicWinner) {
  const Circuit c = test_circuit(23, 48);
  const FlowOptions opt = test_options();
  const auto engines = engines_of({"turbomap", "turbosyn", "flowsyn_s"});

  PortfolioOptions seq;
  seq.concurrent = false;
  const FlowResult reference = run_portfolio(engines, c, opt, seq);

  // The concurrent race may cancel different losers on different runs, but
  // the winner and its result are pinned by the dominance rule: bit-identical
  // to the sequential race, run after run.
  for (int round = 0; round < 3; ++round) {
    const FlowResult race = run_portfolio(engines, c, opt);
    EXPECT_EQ(race.engine, reference.engine) << "round " << round;
    EXPECT_EQ(fingerprint(race), fingerprint(reference)) << "round " << round;
  }
}

TEST(Portfolio, SequentialDominanceSkipsDominatedEngines) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  // The strongest engine leads, so its certificate dominates both followers
  // before they start: provably-lost work is skipped, not run.
  const auto engines = engines_of({"turbosyn", "turbomap", "flowsyn_s"});

  PortfolioOptions popt;
  popt.concurrent = false;
  const FlowResult race = run_portfolio(engines, c, opt, popt);
  ASSERT_EQ(race.portfolio.size(), 3u);
  EXPECT_EQ(race.engine, "turbosyn");
  EXPECT_TRUE(race.portfolio[0].certified);
  EXPECT_FALSE(race.portfolio[0].cancelled);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_TRUE(race.portfolio[i].cancelled) << i;
    EXPECT_FALSE(race.portfolio[i].certified) << i;
    EXPECT_EQ(race.portfolio[i].status, Status::kCancelled) << i;
    EXPECT_EQ(race.portfolio[i].seconds, 0.0) << i;
  }
}

TEST(Portfolio, MergedLedgerUniqueTaggedAndSound) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  // turbomap leads but cannot cancel the stronger turbosyn: both run, both
  // ledgers merge.
  const auto engines = engines_of({"turbomap", "turbosyn"});

  PortfolioOptions popt;
  popt.concurrent = false;
  const FlowResult race = run_portfolio(engines, c, opt, popt);
  EXPECT_EQ(race.engine, "turbosyn");
  EXPECT_TRUE(race.portfolio[0].certified);
  EXPECT_TRUE(race.portfolio[1].certified);

  std::set<std::string> keys;
  bool winner_certificate = false;
  ASSERT_FALSE(race.probes.empty());
  for (const ProbeRecord& rec : race.probes) {
    EXPECT_TRUE(rec.engine == "turbomap" || rec.engine == "turbosyn") << rec.engine;
    if (rec.seed_only) continue;
    const std::string key = rec.engine + "|" + std::to_string(static_cast<int>(rec.mode)) +
                            "|" + std::to_string(rec.phi);
    EXPECT_TRUE(keys.insert(key).second) << "duplicate probe " << key;
    if (rec.engine == race.engine && rec.phi == race.phi && rec.feasible &&
        rec.outcome == ProbeOutcome::kOk) {
      winner_certificate = true;
    }
  }
  EXPECT_TRUE(winner_certificate) << "merged ledger lost the winner's certificate";
}

TEST(Portfolio, AuditPassesCleanRace) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  const auto engines = engines_of({"turbomap", "turbosyn", "flowsyn_s"});
  const FlowResult race = run_portfolio(engines, c, opt);

  AuditOptions audit;
  audit.seq_cycles = 96;
  audit.seq_runs = 2;
  const AuditReport report = audit_flow(c, race, opt, audit);
  EXPECT_TRUE(report.passed()) << report.breakdown();
  EXPECT_EQ(portfolio_check_status(c, race, opt), AuditStatus::kPass);
}

TEST(PortfolioAudit, RejectsSeededWrongWinner) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  const auto engines = engines_of({"turbomap", "turbosyn"});
  PortfolioOptions popt;
  popt.concurrent = false;
  FlowResult race = run_portfolio(engines, c, opt, popt);
  ASSERT_EQ(race.engine, "turbosyn");
  EXPECT_EQ(portfolio_check_status(c, race, opt), AuditStatus::kPass);

  // Seeded fixture: the table claims the weaker certified engine won. Either
  // the winner-row check (φ mismatch) or the selection-minimality re-check
  // (turbosyn's equal-φ, higher-strength certificate) must reject it.
  race.engine = "turbomap";
  EXPECT_EQ(portfolio_check_status(c, race, opt), AuditStatus::kFail);
}

TEST(PortfolioAudit, RejectsIncoherentCancelledRow) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  const auto engines = engines_of({"turbosyn", "turbomap", "flowsyn_s"});
  PortfolioOptions popt;
  popt.concurrent = false;
  FlowResult race = run_portfolio(engines, c, opt, popt);
  ASSERT_TRUE(race.portfolio[1].cancelled);

  // A cancelled row must carry an interrupt status; claiming it finished
  // cleanly while cancelled is incoherent provenance.
  race.portfolio[1].status = Status::kOk;
  EXPECT_EQ(portfolio_check_status(c, race, opt), AuditStatus::kFail);
}

TEST(PortfolioAudit, RejectsUnknownEngineRow) {
  const Circuit c = test_circuit();
  const FlowOptions opt = test_options();
  const auto engines = engines_of({"turbosyn", "turbomap"});
  PortfolioOptions popt;
  popt.concurrent = false;
  FlowResult race = run_portfolio(engines, c, opt, popt);

  race.portfolio[1].name = "not_in_registry";
  EXPECT_EQ(portfolio_check_status(c, race, opt), AuditStatus::kFail);
}

TEST(Portfolio, ParseRejectsBadSpecs) {
  std::vector<const EngineSpec*> engines;
  EXPECT_NE(parse_portfolio("turbosyn,bogus", engines).find("bogus"), std::string::npos);
  EXPECT_NE(parse_portfolio("turbomap,turbomap", engines).find("twice"), std::string::npos);
  EXPECT_NE(parse_portfolio("turbomap_period,turbosyn", engines).find("incomparable"),
            std::string::npos);
  EXPECT_FALSE(parse_portfolio("turbosyn,,turbomap", engines).empty());
  EXPECT_TRUE(parse_portfolio("turbosyn,turbomap,flowsyn_s", engines).empty());
  EXPECT_EQ(engines.size(), 3u);
}

}  // namespace
}  // namespace turbosyn
