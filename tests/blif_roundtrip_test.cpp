// BLIF round-trip: write -> parse -> structural compare.
//
// The simulation-based round-trip tests in blif_test.cpp prove behavioral
// equality; these prove the stronger structural property — every node comes
// back with the same kind, name, fanin list (drivers in slot order, with
// latch counts preserved as edge weights) and exact gate function — for
// hand-written models exercising latch chains and .names covers with
// don't-cares, and for the embedded samples and generated suites.
//
// One normalization: BLIF cannot express "output is an alias of an internal
// signal", so a PO whose display name differs from its driver's comes back
// with a single-fanin identity buffer named after the PO. The comparison
// looks through that buffer (symmetrically on both sides); everything else
// is exact.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <string>

#include "netlist/blif.hpp"
#include "netlist/circuit.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

/// Canonical node key: POs are compared by display name (the internal
/// "$po:" prefix also survives the round trip, but display names are the
/// interface contract).
std::string node_key(const Circuit& c, NodeId v) {
  return c.is_po(v) ? "$po$" + po_display_name(c, v) : c.name(v);
}

bool is_identity_buffer(const TruthTable& f) {
  return f.num_vars() == 1 && !f.bit(0) && f.bit(1);
}

/// The PO's alias buffer, if its driver is one: a single-fanin identity gate
/// named after the PO on a weight-0 edge (the only way BLIF can name an
/// output after an internal signal). Returns -1 otherwise.
NodeId po_alias(const Circuit& c, NodeId po) {
  const auto& e = c.edge(c.fanin_edges(po)[0]);
  if (e.weight == 0 && c.is_gate(e.from) && c.fanin_edges(e.from).size() == 1 &&
      c.name(e.from) == po_display_name(c, po) && is_identity_buffer(c.function(e.from))) {
    return e.from;
  }
  return -1;
}

/// A PO's effective driver (name) and total latch count, looking through its
/// alias buffer if present.
std::pair<std::string, int> resolve_po(const Circuit& c, NodeId po) {
  const auto& e = c.edge(c.fanin_edges(po)[0]);
  NodeId d = e.from;
  int w = e.weight;
  if (po_alias(c, po) == d) {
    const auto& e2 = c.edge(c.fanin_edges(d)[0]);
    w += e2.weight;
    d = e2.from;
  }
  return {c.name(d), w};
}

/// Asserts b is structurally identical to a — same nodes by name and kind,
/// same fanin drivers in slot order with the same latch counts, and the
/// same gate function per gate — modulo PO alias buffers, which both sides
/// resolve through.
void expect_structurally_equal(const Circuit& a, const Circuit& b) {
  std::set<NodeId> a_alias;
  std::set<NodeId> b_alias;
  for (const NodeId po : a.pos()) {
    if (const NodeId g = po_alias(a, po); g >= 0) a_alias.insert(g);
  }
  for (const NodeId po : b.pos()) {
    if (const NodeId g = po_alias(b, po); g >= 0) b_alias.insert(g);
  }
  ASSERT_EQ(a.num_nodes() - static_cast<int>(a_alias.size()),
            b.num_nodes() - static_cast<int>(b_alias.size()));
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  ASSERT_EQ(a.num_ffs(), b.num_ffs());
  std::map<std::string, NodeId> b_by_name;
  for (NodeId v = 0; v < b.num_nodes(); ++v) b_by_name[node_key(b, v)] = v;
  ASSERT_EQ(static_cast<int>(b_by_name.size()), b.num_nodes()) << "duplicate names";
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.is_po(v) || a_alias.count(v) != 0) continue;
    const auto it = b_by_name.find(node_key(a, v));
    ASSERT_NE(it, b_by_name.end()) << "node '" << node_key(a, v) << "' lost in round trip";
    const NodeId w = it->second;
    ASSERT_EQ(a.kind(v), b.kind(w)) << node_key(a, v);
    const auto a_edges = a.fanin_edges(v);
    const auto b_edges = b.fanin_edges(w);
    ASSERT_EQ(a_edges.size(), b_edges.size()) << node_key(a, v);
    for (std::size_t i = 0; i < a_edges.size(); ++i) {
      const auto& ea = a.edge(a_edges[i]);
      const auto& eb = b.edge(b_edges[i]);
      EXPECT_EQ(node_key(a, ea.from), node_key(b, eb.from))
          << "fanin slot " << i << " of '" << node_key(a, v) << "'";
      EXPECT_EQ(ea.weight, eb.weight)
          << "latch count on fanin slot " << i << " of '" << node_key(a, v) << "'";
    }
    if (a.is_gate(v) && !a_edges.empty()) {
      EXPECT_EQ(a.function(v), b.function(w)) << "function of '" << node_key(a, v) << "'";
    }
  }
  // POs are compared through their alias buffers: same effective driver and
  // total latch count.
  std::map<std::string, NodeId> b_po_by_name;
  for (const NodeId po : b.pos()) b_po_by_name[po_display_name(b, po)] = po;
  for (const NodeId po : a.pos()) {
    const auto it = b_po_by_name.find(po_display_name(a, po));
    ASSERT_NE(it, b_po_by_name.end()) << "PO '" << po_display_name(a, po) << "' lost";
    EXPECT_EQ(resolve_po(a, po), resolve_po(b, it->second)) << po_display_name(a, po);
  }
}

void expect_roundtrip(const Circuit& original) {
  const std::string text = write_blif_string(original, "roundtrip");
  const Circuit reparsed = read_blif_string(text, "<roundtrip>");
  expect_structurally_equal(original, reparsed);
  // The writer's output must itself be stable: a second trip is textually
  // identical (the canonical form is a fixpoint).
  EXPECT_EQ(write_blif_string(reparsed, "roundtrip"), text);
}

TEST(BlifRoundTripStructural, NamesWithDontCares) {
  // Covers with '-' in the input plane: a 2-of-3 style function whose
  // minterm expansion differs textually from the source but must describe
  // the same truth table, plus an inverter and a constant-1 row.
  const Circuit c = read_blif_string(R"(
.model dc
.inputs a b sel
.outputs y z
.names a b sel y
11- 1
-01 1
0-1 1
.names y z
0 1
.end
)");
  expect_roundtrip(c);
}

TEST(BlifRoundTripStructural, LatchChainsBecomeEdgeWeights) {
  // A 3-deep latch chain on one path and a single latch on another: the
  // parser folds chains into edge weights; the writer re-expands them. The
  // round trip must preserve the weights exactly.
  const Circuit c = read_blif_string(R"(
.model chains
.inputs x
.outputs out
.latch x d1 0
.latch d1 d2 0
.latch d2 d3 0
.names d3 g
0 1
.latch g g1 0
.names g1 out
1 1
)");
  ASSERT_EQ(c.num_ffs(), 4);
  expect_roundtrip(c);
}

TEST(BlifRoundTripStructural, SelfLoopThroughLatch) {
  // Registered feedback: a gate reading its own output through a latch
  // (the canonical retiming-graph cycle).
  const Circuit c = read_blif_string(R"(
.model loop
.inputs en
.outputs q
.latch s s_q 0
.names en s_q s
01 1
10 1
.names s q
1 1
.end
)");
  ASSERT_EQ(c.num_ffs(), 1);
  expect_roundtrip(c);
}

TEST(BlifRoundTripStructural, EmbeddedSamples) {
  expect_roundtrip(read_blif_string(counter3_blif()));
  expect_roundtrip(read_blif_string(pattern_fsm_blif()));
}

TEST(BlifRoundTripStructural, GeneratedSuite) {
  for (const auto& spec : tiny_suite()) {
    SCOPED_TRACE(spec.name);
    expect_roundtrip(generate_fsm_circuit(spec));
  }
}

}  // namespace
}  // namespace turbosyn
