#include <gtest/gtest.h>

#include "base/check.hpp"
#include "graph/bellman_ford.hpp"
#include "graph/digraph.hpp"
#include "graph/max_flow.hpp"
#include "graph/scc.hpp"

namespace turbosyn {
namespace {

Digraph chain(int n) {
  Digraph g;
  g.add_nodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(Digraph, AdjacencyBookkeeping) {
  Digraph g;
  const NodeId a = g.add_node();
  const NodeId b = g.add_node();
  const EdgeId e = g.add_edge(a, b, 3);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge(e).from, a);
  EXPECT_EQ(g.edge(e).to, b);
  EXPECT_EQ(g.weight(e), 3);
  EXPECT_EQ(g.fanout_count(a), 1);
  EXPECT_EQ(g.fanin_count(b), 1);
  EXPECT_THROW(g.add_edge(a, 5), Error);
}

TEST(Scc, ChainHasSingletonComponentsInTopoOrder) {
  const Digraph g = chain(5);
  const SccDecomposition scc = strongly_connected_components(g);
  ASSERT_EQ(scc.components.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scc.component_of[static_cast<std::size_t>(i)], i);
  }
}

TEST(Scc, DetectsCycleComponent) {
  Digraph g;
  g.add_nodes(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // cycle {1,2}
  g.add_edge(2, 3);
  const SccDecomposition scc = strongly_connected_components(g);
  ASSERT_EQ(scc.components.size(), 3u);
  EXPECT_EQ(scc.component_of[1], scc.component_of[2]);
  // Topological: 0 before {1,2} before 3.
  EXPECT_LT(scc.component_of[0], scc.component_of[1]);
  EXPECT_LT(scc.component_of[2], scc.component_of[3]);
}

TEST(Scc, SkipEdgePredicateBreaksCycles) {
  Digraph g;
  g.add_nodes(2);
  g.add_edge(0, 1, 0);
  const EdgeId back = g.add_edge(1, 0, 1);
  const SccDecomposition with_all = strongly_connected_components(g);
  EXPECT_EQ(with_all.components.size(), 1u);
  const SccDecomposition without =
      strongly_connected_components(g, [&](EdgeId e) { return e == back; });
  EXPECT_EQ(without.components.size(), 2u);
}

TEST(Topo, OrdersRespectEdges) {
  Digraph g;
  g.add_nodes(4);
  g.add_edge(2, 0);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const std::vector<NodeId> order = topological_order(g);
  std::vector<int> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  EXPECT_LT(pos[2], pos[0]);
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Topo, ThrowsOnCycle) {
  Digraph g;
  g.add_nodes(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW((void)topological_order(g), Error);
}

TEST(BellmanFord, NoPositiveCycleOnDag) {
  const Digraph g = chain(4);
  const auto result = find_positive_cycle(g, [](EdgeId) { return 100; });
  EXPECT_FALSE(result.found);
}

TEST(BellmanFord, FindsPositiveCycleAndItsEdges) {
  Digraph g;
  g.add_nodes(3);
  g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(2, 1);
  const auto result = find_positive_cycle(g, [&](EdgeId e) { return e == e1 ? 2 : -1; });
  ASSERT_TRUE(result.found);
  // The cycle 1 -> 2 -> 1 has cost 2 - 1 = 1 > 0.
  ASSERT_EQ(result.edges.size(), 2u);
  EXPECT_TRUE((result.edges[0] == e1 && result.edges[1] == e2) ||
              (result.edges[0] == e2 && result.edges[1] == e1));
}

TEST(BellmanFord, ZeroCostCycleIsNotPositive) {
  Digraph g;
  g.add_nodes(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto result = find_positive_cycle(g, [](EdgeId) { return 0; });
  EXPECT_FALSE(result.found);
}

TEST(MaxFlow, SimpleBipartite) {
  MaxFlow f(4);
  // 0 -> {1,2} -> 3 with unit middle capacities.
  f.add_arc(0, 1, 5);
  f.add_arc(0, 2, 5);
  f.add_arc(1, 3, 1);
  f.add_arc(2, 3, 1);
  EXPECT_EQ(f.compute(0, 3), 2);
}

TEST(MaxFlow, RespectsLimitWithEarlyExit) {
  MaxFlow f(2);
  for (int i = 0; i < 10; ++i) f.add_arc(0, 1, 1);
  EXPECT_GT(f.compute(0, 1, 3), 3);  // stops early, reports "exceeds limit"
}

TEST(MaxFlow, MinCutSourceSide) {
  MaxFlow f(4);
  f.add_arc(0, 1, 10);
  f.add_arc(1, 2, 1);  // bottleneck
  f.add_arc(2, 3, 10);
  EXPECT_EQ(f.compute(0, 3), 1);
  const auto side = f.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, NodeSplitCutIdentifiesNodes) {
  // Diamond: s -> a -> {b, c} -> d -> t, node capacities 1 via splitting:
  // min node cut should be {a} or {d} with size 1.
  MaxFlow f;
  const int s = f.add_node();
  const int t = f.add_node();
  const int a_in = f.add_node(), a_out = f.add_node();
  const int b_in = f.add_node(), b_out = f.add_node();
  const int c_in = f.add_node(), c_out = f.add_node();
  const int d_in = f.add_node(), d_out = f.add_node();
  f.add_arc(a_in, a_out, 1);
  f.add_arc(b_in, b_out, 1);
  f.add_arc(c_in, c_out, 1);
  f.add_arc(d_in, d_out, 1);
  f.add_arc(s, a_in, MaxFlow::kInfinity);
  f.add_arc(a_out, b_in, MaxFlow::kInfinity);
  f.add_arc(a_out, c_in, MaxFlow::kInfinity);
  f.add_arc(b_out, d_in, MaxFlow::kInfinity);
  f.add_arc(c_out, d_in, MaxFlow::kInfinity);
  f.add_arc(d_out, t, MaxFlow::kInfinity);
  EXPECT_EQ(f.compute(s, t), 1);
}

}  // namespace
}  // namespace turbosyn
