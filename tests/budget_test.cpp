// Run budgets, cooperative cancellation and graceful degradation.
//
// The invariants checked here are the anytime contract:
//   - an unconfigured budget never interferes (kOk, bit-identical results);
//   - resource ceilings (BDD nodes, decomposition attempts, flow
//     augmentations, sweep caps) degrade nodes to their plain K-cut labels
//     and report Status::kDegraded — the mapping stays valid and equivalent;
//   - deadlines and cancellation stop the search cooperatively and still
//     return an equivalent best-so-far (or identity-fallback) mapping;
//   - a budget-imposed "infeasible" is distinguishable from a genuine
//     divergence certificate (kDegraded vs kOk).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "base/rng.hpp"
#include "base/run_budget.hpp"
#include "base/thread_pool.hpp"
#include "bdd/bdd.hpp"
#include "core/flows.hpp"
#include "core/labeling.hpp"
#include "netlist/blif.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

// Sequential mapping absorbs registers into LUTs, which changes the
// effective initial state; equivalence is checked from `warmup` onward.
void expect_equivalent(const Circuit& a, const Circuit& b, int cycles, std::uint64_t seed,
                       int warmup = 12) {
  ASSERT_EQ(a.num_pis(), b.num_pis());
  ASSERT_EQ(a.num_pos(), b.num_pos());
  Rng rng(seed);
  const auto stimulus = random_stimulus(rng, a.num_pis(), cycles);
  const auto out_a = simulate_sequence(a, stimulus);
  const auto out_b = simulate_sequence(b, stimulus);
  for (int t = warmup; t < cycles; ++t) {
    ASSERT_EQ(out_a[static_cast<std::size_t>(t)], out_b[static_cast<std::size_t>(t)])
        << "outputs diverge at cycle " << t;
  }
}

TEST(RunBudget, DefaultIsUnlimited) {
  const RunBudget b;
  EXPECT_FALSE(b.limited());
  EXPECT_EQ(b.check(), Status::kOk);
  EXPECT_FALSE(b.interrupted());
  EXPECT_EQ(b.bdd_node_budget(), 0u);
  EXPECT_EQ(b.flow_augment_budget(), 0);
  // With no attempt ceiling every claim succeeds.
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(b.try_consume_decomp_attempt());
}

TEST(RunBudget, CancelTokenFiresAndCopiesShareState) {
  CancelToken token;
  RunBudget b;
  b.set_cancel_token(&token);
  const RunBudget copy = b;  // copies share the same logical budget
  EXPECT_EQ(b.check(), Status::kOk);
  token.cancel();
  EXPECT_EQ(b.check(), Status::kCancelled);
  EXPECT_EQ(copy.check(), Status::kCancelled);
  EXPECT_TRUE(copy.interrupted());
  token.reset();
  EXPECT_EQ(b.check(), Status::kOk);
}

TEST(RunBudget, ExpiredDeadlineLatches) {
  RunBudget b;
  b.set_deadline_after_ms(0);
  // The deadline is "now"; the first check at or after it latches the verdict.
  const auto until = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (b.check() != Status::kDeadlineExceeded) {
    ASSERT_LT(std::chrono::steady_clock::now(), until) << "deadline never fired";
    std::this_thread::yield();
  }
  EXPECT_EQ(b.check(), Status::kDeadlineExceeded);  // latched
  EXPECT_TRUE(b.interrupted());
}

TEST(RunBudget, DecompAttemptCeilingIsShared) {
  RunBudget b;
  b.set_decomp_attempt_budget(2);
  const RunBudget copy = b;
  EXPECT_TRUE(b.try_consume_decomp_attempt());
  EXPECT_TRUE(copy.try_consume_decomp_attempt());
  EXPECT_FALSE(b.try_consume_decomp_attempt());
  EXPECT_FALSE(copy.try_consume_decomp_attempt());
}

TEST(RunBudget, CombineStatusKeepsTheWorse) {
  EXPECT_EQ(combine_status(Status::kOk, Status::kOk), Status::kOk);
  EXPECT_EQ(combine_status(Status::kOk, Status::kDegraded), Status::kDegraded);
  EXPECT_EQ(combine_status(Status::kDegraded, Status::kDeadlineExceeded),
            Status::kDeadlineExceeded);
  EXPECT_EQ(combine_status(Status::kCancelled, Status::kDeadlineExceeded), Status::kCancelled);
  EXPECT_EQ(combine_status(Status::kInvalidInput, Status::kDegraded), Status::kInvalidInput);
}

TEST(Bdd, SaturatingManagerLatchesExhaustionInsteadOfThrowing) {
  BddManager mgr(4, /*node_budget=*/1, BddManager::OnBudget::kSaturate);
  EXPECT_FALSE(mgr.exhausted());
  // XOR over 4 vars cannot fit in one node beyond the terminals.
  TruthTable f = TruthTable::var(4, 0);
  for (int i = 1; i < 4; ++i) f = f ^ TruthTable::var(4, i);
  EXPECT_NO_THROW((void)mgr.from_truth_table(f));
  EXPECT_TRUE(mgr.exhausted());
}

TEST(Budget, BddStarvedTurboSynDegradesToPlainCutLabels) {
  // At K=3 the Figure-1 loop needs Roth-Karp decomposition to reach ratio 1;
  // with a 1-node BDD ceiling every decomposition attempt saturates, so
  // TurboSYN degrades to TurboMap's ratio 2 — and says so via the status.
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  opt.num_threads = 1;
  opt.budget.set_bdd_node_budget(1);
  const FlowResult r = run_turbosyn(c, opt);
  EXPECT_EQ(r.phi, 2);
  EXPECT_EQ(r.status, Status::kDegraded);
  EXPECT_FALSE(r.timed_out);
  EXPECT_GT(r.stats.bdd_budget_hits, 0);
  EXPECT_FALSE(r.degraded_nodes.empty());
  expect_equivalent(c, r.mapped, 64, 21);
}

TEST(Budget, DecompAttemptCeilingStillYieldsEquivalentMapping) {
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  opt.num_threads = 1;
  opt.budget.set_decomp_attempt_budget(1);
  const FlowResult r = run_turbosyn(c, opt);
  EXPECT_TRUE(r.phi == 1 || r.phi == 2);
  EXPECT_NE(r.status, Status::kDeadlineExceeded);
  EXPECT_NE(r.status, Status::kCancelled);
  expect_equivalent(c, r.mapped, 64, 22);
}

TEST(Budget, FlowAugmentCeilingFallsBackToIdentityMapping) {
  // One augmenting path per cut test makes every K-cut test fail, so no
  // probe converges: the flow reports the identity-mapping fallback, still
  // equivalent to the input, with a kDegraded (not kOk) verdict.
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  opt.num_threads = 1;
  opt.budget.set_flow_augment_budget(1);
  const FlowResult r = run_turbomap(c, opt);
  EXPECT_EQ(r.status, Status::kDegraded);
  EXPECT_GT(r.stats.flow_budget_hits, 0);
  expect_equivalent(c, r.mapped, 64, 23);
}

TEST(Budget, ExpiredDeadlineReturnsIdentityFallback) {
  const Circuit c = figure1_circuit();
  FlowOptions opt;
  opt.k = 3;
  opt.num_threads = 1;
  opt.budget.set_deadline_after_ms(0);
  const FlowResult r = run_turbomap(c, opt);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_TRUE(r.timed_out);
  expect_equivalent(c, r.mapped, 64, 24);
}

TEST(Budget, PreCancelledTokenStopsTurboSynGracefully) {
  const Circuit c = figure1_circuit();
  CancelToken token;
  token.cancel();
  FlowOptions opt;
  opt.k = 3;
  opt.num_threads = 1;
  opt.budget.set_cancel_token(&token);
  const FlowResult r = run_turbosyn(c, opt);
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_TRUE(r.timed_out);
  expect_equivalent(c, r.mapped, 64, 25);
}

TEST(Budget, AsyncCancellationDrainsParallelEngine) {
  // Cancel from another thread mid-run with a parallel label engine: the
  // flow must terminate promptly and still return a valid, equivalent
  // mapping (best-so-far or the identity fallback).
  const Circuit c = generate_fsm_circuit(tiny_suite()[0]);
  CancelToken token;
  FlowOptions opt;
  opt.num_threads = 4;
  opt.budget.set_cancel_token(&token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    token.cancel();
  });
  const FlowResult r = run_turbosyn(c, opt);
  canceller.join();
  // Depending on timing the run may have finished before the cancel landed.
  EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kDegraded ||
              r.status == Status::kCancelled)
      << status_name(r.status);
  expect_equivalent(c, r.mapped, 64, 26);
}

TEST(Budget, SweepBudgetVerdictIsNotACertificate) {
  // TurboMap at phi = 1 on the Figure-1 circuit is genuinely infeasible:
  // without any budget the infeasible verdict is a certificate (kOk). With a
  // 1-sweep cap (and the n^2 criterion, which the cap undercuts) the same
  // verdict is only budget exhaustion, reported as kDegraded.
  const Circuit c = figure1_circuit();
  LabelOptions lo;
  lo.k = 3;
  lo.num_threads = 1;

  const LabelResult certified = compute_labels(c, 1, lo);
  EXPECT_FALSE(certified.feasible);
  EXPECT_EQ(certified.status, Status::kOk);

  LabelOptions capped = lo;
  capped.use_pld = false;
  capped.sweep_budget = 1;
  const LabelResult budgeted = compute_labels(c, 1, capped);
  EXPECT_FALSE(budgeted.feasible);
  EXPECT_EQ(budgeted.status, Status::kDegraded);
}

TEST(Budget, UnlimitedBudgetIsBitIdentical) {
  const Circuit c = figure1_circuit();
  FlowOptions plain;
  plain.k = 3;
  plain.num_threads = 1;
  FlowOptions budgeted = plain;
  budgeted.budget.set_deadline_after_ms(1000L * 3600);  // far-future deadline
  const FlowResult a = run_turbosyn(c, plain);
  const FlowResult b = run_turbosyn(c, budgeted);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.luts, b.luts);
  EXPECT_EQ(a.period, b.period);
  EXPECT_EQ(b.status, Status::kOk);
  EXPECT_EQ(write_blif_string(a.mapped), write_blif_string(b.mapped));
}

TEST(ThreadPoolBudget, CancellationDrainsWithoutRunningRemainingItems) {
  ThreadPool pool(3);
  CancelToken token;
  RunBudget budget;
  budget.set_cancel_token(&token);
  std::atomic<int> executed{0};
  constexpr std::size_t kItems = 100000;
  pool.for_each(
      kItems,
      [&](std::size_t, int) {
        // The first executed item cancels; lanes observe the token between
        // items, so almost everything is skipped (but still counted — the
        // call returns normally).
        executed.fetch_add(1, std::memory_order_relaxed);
        token.cancel();
      },
      /*max_workers=*/0, &budget);
  // Every lane can run at most the item it already claimed before observing
  // the cancellation.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LE(executed.load(), pool.num_workers() + 1);
}

}  // namespace
}  // namespace turbosyn
