// Cross-module integration: BLIF files on disk -> gate decomposition ->
// flows -> verification -> BLIF out, on the hand-written sample circuits
// (counter, pattern detector, traffic light, Gray counter, LFSR).

#include <cstdio>
#include <fstream>
#include <set>
#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "core/flows.hpp"
#include "decomp/gate_decomp.hpp"
#include "mapping/dedupe.hpp"
#include "netlist/blif.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/howard.hpp"
#include "sim/simulator.hpp"
#include "verify/equiv.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

std::vector<std::string> sample_blifs() {
  return {counter3_blif(), pattern_fsm_blif(), traffic_light_blif(), gray_counter_blif()};
}

TEST(Integration, AllSamplesParseValidateAndSimulate) {
  for (const std::string& text : sample_blifs()) {
    const Circuit c = read_blif_string(text);
    c.validate();
    Rng rng(5);
    const auto stimulus = random_stimulus(rng, c.num_pis(), 32);
    EXPECT_EQ(simulate_sequence(c, stimulus).size(), 32u);
  }
}

TEST(Integration, GrayCounterOutputsAreGray) {
  const Circuit c = read_blif_string(gray_counter_blif());
  Simulator sim(c);
  std::vector<int> codes;
  for (int t = 0; t < 18; ++t) {
    const auto out = sim.step({true});
    int code = 0;
    for (int i = 0; i < 4; ++i) {
      if (out[static_cast<std::size_t>(i)]) code |= 1 << i;
    }
    codes.push_back(code);
  }
  // Consecutive Gray codes differ in exactly one bit; all 16 values appear.
  for (std::size_t t = 1; t < codes.size(); ++t) {
    EXPECT_EQ(__builtin_popcount(static_cast<unsigned>(codes[t] ^ codes[t - 1])), 1) << t;
  }
  std::set<int> distinct(codes.begin(), codes.end());
  EXPECT_EQ(distinct.size(), 16u);
}

TEST(Integration, LfsrHasFullPeriodStructure) {
  // Taps {1, 2} over 3 bits is not what we check — we check the model:
  // gate count, FF count and that the state evolves (non-constant output).
  const Circuit c = lfsr_circuit(5, std::vector<int>{2, 3});
  EXPECT_EQ(c.num_gates(), 5);
  EXPECT_EQ(circuit_mdr(c).ratio, Rational(1));  // every loop edge registered
  Simulator sim(c);
  std::vector<bool> outs;
  std::vector<bool> inputs = {true, false, false, false, false, false, false, false};
  for (const bool in : inputs) outs.push_back(sim.step({in})[0]);
  bool any_one = false;
  for (const bool b : outs) any_one = any_one || b;
  EXPECT_TRUE(any_one);  // the injected 1 reaches the output
}

TEST(Integration, BlifFileRoundTripOnDisk) {
  const std::string path = testing::TempDir() + "/ts_roundtrip.blif";
  const Circuit original = read_blif_string(traffic_light_blif());
  write_blif_file(original, path, "traffic");
  const Circuit reread = read_blif_file(path);
  Rng rng(17);
  const auto stimulus = random_stimulus(rng, original.num_pis(), 64);
  EXPECT_EQ(simulate_sequence(original, stimulus), simulate_sequence(reread, stimulus));
  std::remove(path.c_str());
  EXPECT_THROW((void)read_blif_file(path), Error);
}

class SampleFlowIntegration : public ::testing::TestWithParam<int> {};

TEST_P(SampleFlowIntegration, TurboSynOnSamplesEndToEnd) {
  const Circuit raw = read_blif_string(sample_blifs()[static_cast<std::size_t>(GetParam())]);
  const int k = 4;
  const Circuit c = raw.is_k_bounded(k) ? raw : gate_decompose(raw, k);
  FlowOptions opt;
  opt.k = k;
  const FlowResult r = run_turbosyn(c, opt);
  EXPECT_GE(r.phi, 1);
  EXPECT_LE(r.exact_mdr, Rational(r.phi));
  EXPECT_TRUE(r.mapped.is_k_bounded(k));
  SequentialCheckOptions check;
  check.warmup = 12;
  EXPECT_TRUE(sequentially_equivalent_bounded(c, r.mapped, check));
  // Howard and Bellman–Ford agree on the mapped network too.
  std::vector<int> delay(static_cast<std::size_t>(r.mapped.num_nodes()));
  for (NodeId v = 0; v < r.mapped.num_nodes(); ++v) {
    delay[static_cast<std::size_t>(v)] = r.mapped.delay(v);
  }
  EXPECT_EQ(max_cycle_ratio_howard(r.mapped.to_digraph(), delay).ratio,
            circuit_mdr(r.mapped).ratio);
}

INSTANTIATE_TEST_SUITE_P(Samples, SampleFlowIntegration, ::testing::Range(0, 4));

TEST(Integration, DedupeAfterMappingNeverBreaksEquivalence) {
  const Circuit c = read_blif_string(gray_counter_blif());
  FlowOptions opt;
  opt.k = 5;
  opt.dedupe = false;  // get the raw mapping, dedupe explicitly
  const FlowResult r = run_turbosyn(c, opt);
  const Circuit deduped = dedupe_luts(r.mapped);
  EXPECT_LE(deduped.num_gates(), r.mapped.num_gates());
  Rng rng(23);
  const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
  EXPECT_EQ(simulate_sequence(r.mapped, stimulus), simulate_sequence(deduped, stimulus));
}

TEST(Integration, LowCostCutsDoNotChangePhi) {
  const Circuit c = read_blif_string(pattern_fsm_blif());
  FlowOptions on;
  on.k = 4;
  FlowOptions off = on;
  off.low_cost_cuts = false;
  const FlowResult a = run_turbosyn(c, on);
  const FlowResult b = run_turbosyn(c, off);
  EXPECT_EQ(a.phi, b.phi);  // sharing-aware cuts are an area choice only
}

}  // namespace
}  // namespace turbosyn
