#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "decomp/gate_decomp.hpp"
#include "decomp/roth_karp.hpp"
#include "netlist/gates.hpp"
#include "sim/simulator.hpp"

namespace turbosyn {
namespace {

TruthTable random_tt(Rng& rng, int vars) {
  TruthTable t = TruthTable::constant(vars, false);
  for (std::uint32_t i = 0; i < t.num_bits(); ++i) {
    if (rng.next_bool()) t.set_bit(i, true);
  }
  return t;
}

// ---- Column multiplicity ----

TEST(ColumnMultiplicity, KnownValues) {
  // f = (x0 & x1) | x2 : cofactors over {x0, x1} are {x2, 1} -> mu = 2.
  const TruthTable f = (TruthTable::var(3, 0) & TruthTable::var(3, 1)) | TruthTable::var(3, 2);
  EXPECT_EQ(column_multiplicity_bdd(f, 2), 2u);
  EXPECT_EQ(column_multiplicity_tt(f, 2), 2u);
  // A 2-input mux selected by a free var has mu = 4 over its two data inputs
  // (all four subfunctions of the select distinct... here: s? a : b with
  // bound {a, b}: cofactors are {0, s, !s... } -> compute both engines agree).
  const TruthTable mux = tt_mux().remap(3, std::vector<int>{2, 0, 1});  // data first
  EXPECT_EQ(column_multiplicity_bdd(mux, 2), column_multiplicity_tt(mux, 2));
}

TEST(ColumnMultiplicity, EnginesAgreeOnRandomFunctions) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = static_cast<int>(rng.next_in(3, 11));
    const int boundary = static_cast<int>(rng.next_in(1, vars - 1));
    const TruthTable f = random_tt(rng, vars);
    EXPECT_EQ(column_multiplicity_bdd(f, boundary), column_multiplicity_tt(f, boundary))
        << "vars=" << vars << " boundary=" << boundary;
  }
}

TEST(ColumnMultiplicity, XorChainIsAlwaysTwo) {
  for (int vars = 3; vars <= 12; ++vars) {
    for (int boundary = 1; boundary < vars; ++boundary) {
      EXPECT_EQ(column_multiplicity_bdd(tt_xor(vars), boundary), 2u);
    }
  }
}

// ---- decompose_for_label ----

TEST(RothKarp, TrivialWhenFunctionFits) {
  const TruthTable f = tt_and(4);
  const std::vector<int> eff(4, 0);
  DecompOptions opt;
  opt.k = 5;
  const DecompResult r = decompose_for_label(f, eff, 1, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.luts.size(), 1u);
  EXPECT_EQ(r.achieved_label, 1);
  EXPECT_TRUE(decomposition_matches(r, f));
}

TEST(RothKarp, XorChainDecomposesToDepthTwo) {
  const int m = 10;
  const TruthTable f = tt_xor(m);
  const std::vector<int> eff(static_cast<std::size_t>(m), 0);
  DecompOptions opt;
  opt.k = 5;
  const DecompResult r = decompose_for_label(f, eff, 2, opt);
  ASSERT_TRUE(r.success);
  EXPECT_LE(r.achieved_label, 2);
  EXPECT_TRUE(decomposition_matches(r, f));
}

TEST(RothKarp, CriticalInputStaysShallow) {
  // f = s ^ (a&b) ^ (c&d) with s critical (eff = 1): target 2 forces s into
  // the root while {a,b} and {c,d} go through encoders (the Figure-1 case).
  const TruthTable f = TruthTable::var(5, 0) ^
                       (TruthTable::var(5, 1) & TruthTable::var(5, 2)) ^
                       (TruthTable::var(5, 3) & TruthTable::var(5, 4));
  const std::vector<int> eff = {1, 0, 0, 0, 0};
  DecompOptions opt;
  opt.k = 3;
  const DecompResult r = decompose_for_label(f, eff, 2, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.achieved_label, 2);
  EXPECT_TRUE(decomposition_matches(r, f));
  // s (input 0) must feed the root LUT directly.
  const DecompLut& root = r.luts.back();
  bool s_at_root = false;
  for (const DecompFanin& fin : root.fanins) {
    if (fin == DecompFanin::input(0)) s_at_root = true;
  }
  EXPECT_TRUE(s_at_root);
}

TEST(RothKarp, FailsWhenNoSlackAnywhere) {
  // All inputs critical and too many of them: no bound set is allowed.
  const TruthTable f = tt_xor(7);
  const std::vector<int> eff(7, 1);
  DecompOptions opt;
  opt.k = 5;
  const DecompResult r = decompose_for_label(f, eff, 2, opt);
  EXPECT_FALSE(r.success);
}

TEST(RothKarp, NonSupportInputsAreDropped) {
  // f only depends on x0, x4; the other variables came from a wide min-cut.
  const TruthTable f = TruthTable::var(6, 0) & TruthTable::var(6, 4);
  const std::vector<int> eff = {0, 5, 5, 5, 0, 5};  // junk labels on non-support
  DecompOptions opt;
  opt.k = 4;
  const DecompResult r = decompose_for_label(f, eff, 1, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.achieved_label, 1);
  EXPECT_TRUE(decomposition_matches(r, f));
}

TEST(RothKarp, BothEnginesProduceEquivalentResults) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const int m = static_cast<int>(rng.next_in(6, 9));
    const TruthTable f = random_tt(rng, m);
    const std::vector<int> eff(static_cast<std::size_t>(m), 0);
    DecompOptions bdd_opt;
    bdd_opt.k = 5;
    DecompOptions tt_opt = bdd_opt;
    tt_opt.use_bdd = false;
    const DecompResult a = decompose_for_label(f, eff, 3, bdd_opt);
    const DecompResult b = decompose_for_label(f, eff, 3, tt_opt);
    EXPECT_EQ(a.success, b.success);
    if (a.success) {
      EXPECT_TRUE(decomposition_matches(a, f));
      EXPECT_TRUE(decomposition_matches(b, f));
    }
  }
}

class RothKarpRandomFunctions : public ::testing::TestWithParam<int> {};

TEST_P(RothKarpRandomFunctions, AnySuccessIsExactAndKBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const int m = static_cast<int>(rng.next_in(5, 12));
  const TruthTable f = random_tt(rng, m);
  std::vector<int> eff(static_cast<std::size_t>(m));
  for (auto& e : eff) e = static_cast<int>(rng.next_in(0, 2));
  const int target = static_cast<int>(rng.next_in(2, 4));
  DecompOptions opt;
  opt.k = static_cast<int>(rng.next_in(3, 6));
  const DecompResult r = decompose_for_label(f, eff, target, opt);
  if (!r.success) return;  // random functions are often indecomposable
  EXPECT_TRUE(decomposition_matches(r, f));
  EXPECT_LE(r.achieved_label, target);
  for (const DecompLut& lut : r.luts) {
    EXPECT_LE(lut.func.num_vars(), opt.k);
    EXPECT_EQ(static_cast<std::size_t>(lut.func.num_vars()), lut.fanins.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RothKarpRandomFunctions, ::testing::Range(0, 25));

// ---- gate_decompose ----

TEST(GateDecompose, WideAndBecomesBalancedTree) {
  Circuit c;
  std::vector<Circuit::FaninSpec> fanins;
  for (int i = 0; i < 9; ++i) fanins.push_back({c.add_pi("i" + std::to_string(i)), 0});
  const NodeId g = c.add_gate("wide", tt_and(9), fanins);
  c.add_po("$po:o", {g, 0});
  const Circuit d = gate_decompose(c, 3);
  EXPECT_TRUE(d.is_k_bounded(3));
  // Balanced 3-ary tree over 9 inputs: 3 + 1 gates, depth 2.
  EXPECT_EQ(d.num_gates(), 4);
}

TEST(GateDecompose, PreservesSequentialBehavior) {
  // A wide XNOR fed through registers, in a feedback loop.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId g = c.declare_gate("g");
  std::vector<Circuit::FaninSpec> fanins;
  fanins.push_back({a, 0});
  fanins.push_back({b, 1});
  fanins.push_back({g, 1});  // self feedback
  for (int i = 0; i < 4; ++i) fanins.push_back({c.add_pi("p" + std::to_string(i)), 0});
  c.finish_gate(g, tt_xnor(7), fanins);
  c.add_po("$po:q", {g, 0});
  c.validate();

  const Circuit d = gate_decompose(c, 4);
  EXPECT_TRUE(d.is_k_bounded(4));
  Rng rng(31);
  const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
  EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(d, stimulus));
}

TEST(GateDecompose, RandomWideFunctionsViaShannon) {
  Rng rng(37);
  for (int trial = 0; trial < 5; ++trial) {
    Circuit c;
    const int m = static_cast<int>(rng.next_in(6, 9));
    std::vector<Circuit::FaninSpec> fanins;
    for (int i = 0; i < m; ++i) fanins.push_back({c.add_pi("i" + std::to_string(i)), 0});
    const NodeId g = c.add_gate("wide", random_tt(rng, m), fanins);
    c.add_po("$po:o", {g, 0});
    const Circuit d = gate_decompose(c, 4);
    EXPECT_TRUE(d.is_k_bounded(4));
    const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
    EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(d, stimulus));
  }
}

TEST(GateDecompose, RequiresKAtLeastThree) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g = c.add_gate("g", tt_buf(), std::vector<Circuit::FaninSpec>{{a, 0}});
  c.add_po("$po:o", {g, 0});
  EXPECT_THROW((void)gate_decompose(c, 2), Error);
}

}  // namespace
}  // namespace turbosyn
