// Tests for the persistent flow-artifact cache (src/cache) and the batch
// multi-circuit scheduler (src/service): canonical keying, hit/miss
// bit-identity, the malformed-entry and quarantine rules of DESIGN.md §11,
// concurrent writers, and the batch manifest format.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/check.hpp"
#include "cache/cached_flow.hpp"
#include "cache/flow_cache.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"
#include "netlist/canonical.hpp"
#include "service/batch_runner.hpp"
#include "verify/audit.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root.
fs::path test_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ts_cache_test_" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string fingerprint(const FlowResult& r) {
  return std::to_string(r.phi) + "|" + std::to_string(r.period) + "|" +
         std::to_string(r.pipeline_stages) + "|" + write_blif_string(r.mapped, "fp");
}

FlowOptions small_options() {
  FlowOptions opt;
  opt.k = 4;
  opt.num_threads = 1;
  return opt;
}

/// A K-bounded copy of the sample (the flows require K-bounded inputs).
Circuit bounded_sample(const std::string& blif, int k = 4) {
  Circuit c = read_blif_string(blif);
  if (!c.is_k_bounded(k)) c = gate_decompose(c, k);
  return c;
}

// ---------------------------------------------------------------------------
// Canonical form and keying

TEST(CanonicalForm, IndependentOfDeclarationOrder) {
  // The same two-LUT netlist with the gate declarations (and output list)
  // permuted: node ids differ, the canonical form must not.
  const char* forward =
      ".model t\n.inputs a b\n.outputs y z\n"
      ".names a b y\n11 1\n"
      ".names a b z\n10 1\n"
      ".end\n";
  const char* reversed =
      ".model t\n.inputs b a\n.outputs z y\n"
      ".names a b z\n10 1\n"
      ".names a b y\n11 1\n"
      ".end\n";
  const CanonicalForm lhs = canonical_circuit_form(read_blif_string(forward));
  const CanonicalForm rhs = canonical_circuit_form(read_blif_string(reversed));
  EXPECT_EQ(lhs.text, rhs.text);
  EXPECT_EQ(lhs.hash, rhs.hash);
}

TEST(CanonicalForm, DistinguishesLogicAndStructure) {
  const Circuit counter = read_blif_string(counter3_blif());
  const Circuit fsm = read_blif_string(pattern_fsm_blif());
  EXPECT_NE(canonical_circuit_form(counter).text, canonical_circuit_form(fsm).text);

  // Same wires, different truth table: must change the form.
  const char* and_gate = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n";
  const char* or_gate = ".model t\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n";
  EXPECT_NE(canonical_circuit_form(read_blif_string(and_gate)).text,
            canonical_circuit_form(read_blif_string(or_gate)).text);
}

TEST(CacheKey, CoversResultRelevantOptionsOnly) {
  const Circuit c = read_blif_string(counter3_blif());
  FlowOptions opt = small_options();
  const CacheKey base = make_cache_key(c, opt, FlowKind::kTurboSyn);

  FlowOptions other_k = opt;
  other_k.k = 5;
  EXPECT_NE(base.hash, make_cache_key(c, other_k, FlowKind::kTurboSyn).hash);
  EXPECT_NE(base.text, make_cache_key(c, other_k, FlowKind::kTurboSyn).text);

  EXPECT_NE(base.text, make_cache_key(c, opt, FlowKind::kTurboMap).text);

  // Thread count and observability knobs must not split the key space.
  FlowOptions threads = opt;
  threads.num_threads = 8;
  threads.collect_artifacts = true;
  EXPECT_EQ(base.text, make_cache_key(c, threads, FlowKind::kTurboSyn).text);
}

// ---------------------------------------------------------------------------
// Hit/miss behavior of run_flow_cached

TEST(FlowCacheRun, HitIsBitIdenticalWithUncachedAndAuditsClean) {
  const fs::path dir = test_dir("hit");
  const Circuit c = bounded_sample(gray_counter_blif());
  FlowOptions opt = small_options();
  opt.collect_artifacts = true;  // for the audit below

  const FlowResult uncached = run_turbosyn(c, opt);

  FlowCache cache(dir.string());
  CacheRunInfo cold_info;
  const FlowResult cold = run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &cold_info);
  EXPECT_FALSE(cold_info.hit);
  EXPECT_TRUE(cold_info.stored);
  EXPECT_EQ(cache.stores(), 1);
  EXPECT_EQ(fingerprint(cold), fingerprint(uncached));

  CacheRunInfo warm_info;
  const FlowResult warm = run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &warm_info);
  EXPECT_TRUE(warm_info.hit);
  EXPECT_FALSE(warm_info.stored);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(fingerprint(warm), fingerprint(uncached));
  EXPECT_EQ(write_blif_string(warm.mapped, "m"), write_blif_string(uncached.mapped, "m"));

  // The hit replays the search from imported records only — no label probe
  // may have run — and the imported ledger must still satisfy the auditor.
  ASSERT_FALSE(warm.probes.empty());
  for (const ProbeRecord& probe : warm.probes) EXPECT_TRUE(probe.imported);
  AuditOptions audit;
  audit.seq_cycles = 64;
  audit.seq_runs = 2;
  const AuditReport report = audit_flow(c, warm, opt, audit);
  EXPECT_TRUE(report.passed()) << report.breakdown();
}

TEST(FlowCacheRun, DistinctOptionsMissAndNullCachePassesThrough) {
  const fs::path dir = test_dir("miss");
  const Circuit c = read_blif_string(counter3_blif());
  FlowCache cache(dir.string());

  FlowOptions opt = small_options();
  CacheRunInfo info;
  (void)run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &info);
  EXPECT_TRUE(info.stored);

  // A different K is a different key: miss, then its own entry.
  FlowOptions k5 = opt;
  k5.k = 5;
  (void)run_flow_cached(FlowKind::kTurboSyn, c, k5, &cache, &info);
  EXPECT_FALSE(info.hit);
  EXPECT_EQ(cache.stores(), 2);

  // FlowSYN-s runs no label search and always passes through uncached.
  (void)run_flow_cached(FlowKind::kFlowSynS, c, opt, &cache, &info);
  EXPECT_FALSE(info.hit);
  EXPECT_FALSE(info.stored);

  // No cache at all: plain run_flow.
  const FlowResult plain = run_flow_cached(FlowKind::kTurboSyn, c, opt, nullptr, &info);
  EXPECT_FALSE(info.hit);
  EXPECT_FALSE(info.stored);
  EXPECT_GT(plain.luts, 0);
}

// ---------------------------------------------------------------------------
// Near-miss warm starts: a small edit retrieves the old entry as a seed

namespace {

/// counter3 with gate n2's function edited (one minterm dropped): same PIs
/// and POs, so the near-miss sketch matches the unedited circuit's.
std::string counter3_edited_blif() {
  std::string blif = counter3_blif();
  const std::string cube = "0111 1\n";
  const auto pos = blif.find(cube);
  TS_CHECK(pos != std::string::npos, "sample drifted: expected n2 cube missing");
  blif.erase(pos, cube.size());
  return blif;
}

}  // namespace

TEST(FlowCacheNearMiss, EditedCircuitWarmStartsAndStaysBitIdentical) {
  const fs::path dir = test_dir("near");
  const Circuit donor = read_blif_string(counter3_blif());
  FlowOptions opt = small_options();
  opt.collect_artifacts = true;

  FlowCache cache(dir.string());
  CacheRunInfo donor_info;
  (void)run_flow_cached(FlowKind::kTurboMap, donor, opt, &cache, &donor_info);
  ASSERT_TRUE(donor_info.stored);
  EXPECT_FALSE(donor_info.near_miss);  // empty cache: nothing to seed from

  const Circuit edited = read_blif_string(counter3_edited_blif());
  ASSERT_NE(canonical_circuit_form(edited).hash, canonical_circuit_form(donor).hash);
  ASSERT_EQ(make_cache_key(edited, opt, FlowKind::kTurboMap).near_sketch,
            make_cache_key(donor, opt, FlowKind::kTurboMap).near_sketch);

  const FlowResult cold = run_turbomap(edited, opt);

  CacheRunInfo near_info;
  const FlowResult seeded =
      run_flow_cached(FlowKind::kTurboMap, edited, opt, &cache, &near_info);
  EXPECT_FALSE(near_info.hit);
  EXPECT_TRUE(near_info.near_miss);
  EXPECT_TRUE(near_info.stored);
  EXPECT_EQ(cache.near_hits(), 1);

  // Bit-identical to the cold run: the seed accelerates, never decides.
  EXPECT_EQ(fingerprint(seeded), fingerprint(cold));
  EXPECT_EQ(write_blif_string(seeded.mapped, "m"), write_blif_string(cold.mapped, "m"));

  // The import leaves a seed-only provenance record — never a verdict.
  bool saw_seed = false;
  for (const ProbeRecord& rec : seeded.probes) {
    if (!rec.seed_only) continue;
    saw_seed = true;
    EXPECT_TRUE(rec.imported);
    EXPECT_FALSE(rec.feasible);
  }
  EXPECT_TRUE(saw_seed);
  AuditOptions audit;
  audit.seq_cycles = 64;
  audit.seq_runs = 2;
  const AuditReport report = audit_flow(edited, seeded, opt, audit);
  EXPECT_TRUE(report.passed()) << report.breakdown();

  // The seeded run stored its own entry; the replayed hit carries no
  // seed-only records (they are provenance of one run, not artifacts).
  CacheRunInfo hit_info;
  const FlowResult replay =
      run_flow_cached(FlowKind::kTurboMap, edited, opt, &cache, &hit_info);
  EXPECT_TRUE(hit_info.hit);
  EXPECT_FALSE(hit_info.near_miss);
  EXPECT_EQ(fingerprint(replay), fingerprint(cold));
  for (const ProbeRecord& rec : replay.probes) EXPECT_FALSE(rec.seed_only);
  const AuditReport replay_report = audit_flow(edited, replay, opt, audit);
  EXPECT_TRUE(replay_report.passed()) << replay_report.breakdown();
}

TEST(FlowCacheNearMiss, DisabledIncrementalAndForeignSketchSkipSeeding) {
  const fs::path dir = test_dir("near_gate");
  const Circuit donor = read_blif_string(counter3_blif());
  FlowOptions opt = small_options();

  FlowCache cache(dir.string());
  CacheRunInfo info;
  (void)run_flow_cached(FlowKind::kTurboMap, donor, opt, &cache, &info);
  ASSERT_TRUE(info.stored);

  // --no-incremental turns near-miss seeding off with it.
  const Circuit edited = read_blif_string(counter3_edited_blif());
  FlowOptions no_inc = opt;
  no_inc.incremental = false;
  (void)run_flow_cached(FlowKind::kTurboMap, edited, no_inc, &cache, &info);
  EXPECT_FALSE(info.near_miss);
  EXPECT_EQ(cache.near_hits(), 0);

  // A different interface is a different sketch: no donor.
  const Circuit foreign = bounded_sample(gray_counter_blif());
  (void)run_flow_cached(FlowKind::kTurboMap, foreign, opt, &cache, &info);
  EXPECT_FALSE(info.near_miss);
  EXPECT_EQ(cache.near_hits(), 0);
}

// ---------------------------------------------------------------------------
// Malformed entries: every corruption is a clean miss

class FlowCacheEntryFile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = test_dir("entry_file");
    circuit_ = read_blif_string(counter3_blif());
    options_ = small_options();
    key_ = make_cache_key(circuit_, options_, FlowKind::kTurboSyn);
    cache_ = std::make_unique<FlowCache>(dir_.string());
    CacheRunInfo info;
    (void)run_flow_cached(FlowKind::kTurboSyn, circuit_, options_, cache_.get(), &info);
    ASSERT_TRUE(info.stored);
    path_ = cache_->entry_path(key_);
    ASSERT_TRUE(fs::exists(path_));
  }

  std::string read_entry() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void write_entry(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  fs::path dir_;
  Circuit circuit_;
  FlowOptions options_;
  CacheKey key_;
  std::unique_ptr<FlowCache> cache_;
  std::string path_;
};

TEST_F(FlowCacheEntryFile, IntactEntryHits) {
  EXPECT_TRUE(cache_->lookup(key_).has_value());
}

TEST_F(FlowCacheEntryFile, SchemaVersionMismatchIsACleanMiss) {
  std::string bytes = read_entry();
  const std::string header =
      "turbosyn-cache " + std::to_string(FlowCache::kSchemaVersion);
  ASSERT_EQ(bytes.rfind(header, 0), 0u);
  bytes.replace(0, header.size(), "turbosyn-cache 999");
  write_entry(bytes);
  EXPECT_FALSE(cache_->lookup(key_).has_value());

  // The miss is recoverable: a fresh run repopulates and hits again.
  CacheRunInfo info;
  (void)run_flow_cached(FlowKind::kTurboSyn, circuit_, options_, cache_.get(), &info);
  EXPECT_FALSE(info.hit);
  EXPECT_TRUE(info.stored);
  EXPECT_TRUE(cache_->lookup(key_).has_value());
}

TEST_F(FlowCacheEntryFile, TruncatedEntryIsACleanMiss) {
  const std::string bytes = read_entry();
  for (const double fraction : {0.25, 0.5, 0.9}) {
    write_entry(bytes.substr(0, static_cast<std::size_t>(bytes.size() * fraction)));
    EXPECT_FALSE(cache_->lookup(key_).has_value()) << "fraction " << fraction;
  }
}

TEST_F(FlowCacheEntryFile, CorruptedFieldsAreACleanMiss) {
  const std::string bytes = read_entry();
  // Flip the stored key hash: content addressing must reject the entry.
  {
    std::string hashed = bytes;
    const auto pos = hashed.find("hash ");
    ASSERT_NE(pos, std::string::npos);
    hashed[pos + 5] = hashed[pos + 5] == 'f' ? '0' : 'f';
    write_entry(hashed);
    EXPECT_FALSE(cache_->lookup(key_).has_value());
  }
  // Non-numeric phi.
  {
    std::string garbled = bytes;
    const auto pos = garbled.find("\nphi ");
    ASSERT_NE(pos, std::string::npos);
    garbled[pos + 5] = 'x';
    write_entry(garbled);
    EXPECT_FALSE(cache_->lookup(key_).has_value());
  }
  // Arbitrary binary garbage.
  write_entry(std::string(256, '\xff'));
  EXPECT_FALSE(cache_->lookup(key_).has_value());
  // Empty file (a writer that never completed its rename cannot produce
  // this, but a full disk can).
  write_entry("");
  EXPECT_FALSE(cache_->lookup(key_).has_value());
}

TEST_F(FlowCacheEntryFile, KeyTextCollisionIsACleanMiss) {
  // Same hash, different key text (a simulated 64-bit collision): the
  // byte-for-byte key comparison must degrade it to a miss.
  FlowOptions other = options_;
  other.k = 5;
  const CacheKey other_key = make_cache_key(circuit_, other, FlowKind::kTurboSyn);
  CacheKey forged = other_key;
  forged.hash = key_.hash;  // address the existing entry with foreign text
  EXPECT_FALSE(cache_->lookup(forged).has_value());
}

// ---------------------------------------------------------------------------
// Quarantine: degraded or interrupted runs are never stored

TEST(FlowCacheQuarantine, StorableRejectsInexactRuns) {
  const fs::path dir = test_dir("quarantine");
  const Circuit c = read_blif_string(counter3_blif());
  FlowOptions opt = small_options();
  opt.collect_artifacts = true;
  FlowResult exact = run_turbosyn(c, opt);
  ASSERT_EQ(exact.status, Status::kOk);
  ASSERT_TRUE(FlowCache::storable(exact));

  FlowResult degraded = exact;
  degraded.status = Status::kDegraded;
  EXPECT_FALSE(FlowCache::storable(degraded));

  FlowResult interrupted = exact;
  interrupted.timed_out = true;
  EXPECT_FALSE(FlowCache::storable(interrupted));

  FlowResult no_artifacts = exact;
  no_artifacts.artifacts.valid = false;
  EXPECT_FALSE(FlowCache::storable(no_artifacts));

  // store() enforces the same rule and counts the reject.
  FlowCache cache(dir.string());
  const CacheKey key = make_cache_key(c, opt, FlowKind::kTurboSyn);
  EXPECT_FALSE(cache.store(key, FlowCache::entry_from_result(exact, c)) &&
               FlowCache::storable(degraded));
  EXPECT_FALSE(cache.lookup(key).has_value() && !FlowCache::storable(exact));
}

TEST(FlowCacheQuarantine, ExpiredDeadlineRunIsNotStored) {
  const fs::path dir = test_dir("deadline");
  const Circuit c = bounded_sample(gray_counter_blif());
  FlowOptions opt = small_options();
  opt.budget.set_deadline_after_ms(0);

  FlowCache cache(dir.string());
  CacheRunInfo info;
  const FlowResult result = run_flow_cached(FlowKind::kTurboMap, c, opt, &cache, &info);
  ASSERT_TRUE(result.timed_out || result.status != Status::kOk);
  EXPECT_FALSE(info.stored);
  EXPECT_EQ(cache.stores(), 0);
  EXPECT_GE(cache.rejects(), 1);

  // And the poisoned attempt left nothing behind: the next (unlimited) run
  // is a genuine miss, not a stale-certificate hit.
  FlowOptions unlimited = small_options();
  CacheRunInfo clean_info;
  (void)run_flow_cached(FlowKind::kTurboMap, c, unlimited, &cache, &clean_info);
  EXPECT_FALSE(clean_info.hit);
}

// ---------------------------------------------------------------------------
// Concurrency: racing writers and readers (exercised under TSan in CI)

TEST(FlowCacheConcurrency, RacingWritersAndReadersStaySound) {
  const fs::path dir = test_dir("race");
  const Circuit c = read_blif_string(traffic_light_blif());
  FlowOptions opt = small_options();
  FlowCache cache(dir.string());
  const CacheKey key = make_cache_key(c, opt, FlowKind::kTurboSyn);

  // Two batch tasks mapping the same circuit write the same entry while two
  // readers poll: every lookup must see no entry or a complete one.
  const int kWriters = 2;
  const int kReaders = 2;
  const int kRounds = 16;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        CacheRunInfo info;
        const FlowResult result = run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &info);
        ASSERT_GT(result.luts, 0);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds * 4; ++round) {
        const std::optional<CacheEntry> entry = cache.lookup(key);
        if (entry.has_value()) {
          ASSERT_GE(entry->phi, 1);
          ASSERT_FALSE(entry->winning_labels.empty());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(cache.lookup(key).has_value());
  EXPECT_GE(cache.hits() + cache.misses(), kWriters * kRounds);
}

TEST(FlowCacheConcurrency, HotTierRacingLookupsStayCoherent) {
  // Many threads hammering a two-entry hot tier with three circuits: splices
  // and evictions race, but every result must stay bit-identical to the
  // single-threaded baseline and the tier must respect its caps throughout.
  const fs::path dir = test_dir("hot_race");
  FlowOptions opt = small_options();
  FlowCache cache(dir.string());
  cache.enable_hot_tier(8u << 20, 2);

  std::vector<Circuit> circuits;
  circuits.push_back(bounded_sample(counter3_blif()));
  circuits.push_back(bounded_sample(traffic_light_blif()));
  circuits.push_back(bounded_sample(gray_counter_blif()));
  std::vector<std::string> baseline;
  for (const Circuit& c : circuits) {
    baseline.push_back(fingerprint(run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache)));
  }

  const int kThreads = 4;
  const int kRounds = 24;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t i = static_cast<std::size_t>(t + round) % circuits.size();
        const FlowResult result =
            run_flow_cached(FlowKind::kTurboSyn, circuits[i], opt, &cache);
        ASSERT_EQ(fingerprint(result), baseline[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(cache.hot_hits(), 1);
  EXPECT_LE(cache.hot_entries(), 2);
  EXPECT_GE(cache.hot_evictions(), 1);  // three circuits through two slots
}

// ---------------------------------------------------------------------------
// Batch manifest parsing and the batch runner

TEST(BatchManifest, ParsesFlowsDefaultsAndComments) {
  std::istringstream manifest(
      "# comment line\n"
      "\n"
      "a/counter.blif\n"
      "b/fsm.blif turbomap\n"
      "c/deep.blif turbomap_period 6\n");
  const std::vector<BatchJob> jobs = read_batch_manifest(manifest, "m.txt");
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].name, "counter");
  EXPECT_EQ(jobs[0].flow, FlowKind::kTurboSyn);
  EXPECT_EQ(jobs[0].k, 5);
  EXPECT_EQ(jobs[1].flow, FlowKind::kTurboMap);
  EXPECT_EQ(jobs[2].flow, FlowKind::kTurboMapPeriod);
  EXPECT_EQ(jobs[2].k, 6);
}

TEST(BatchManifest, RejectsMalformedLinesWithContext) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return read_batch_manifest(in, "m.txt");
  };
  EXPECT_THROW(parse("x.blif nosuchflow\n"), Error);
  EXPECT_THROW(parse("x.blif turbosyn banana\n"), Error);
  EXPECT_THROW(parse("x.blif turbosyn 1\n"), Error);  // K < 2
  EXPECT_THROW(parse("x.blif turbosyn 5 extra\n"), Error);
  try {
    (void)parse("x.blif nosuchflow\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("m.txt:1"), std::string::npos) << e.what();
  }
}

TEST(BatchRunner, RunsAManifestThroughTheSharedCache) {
  const fs::path dir = test_dir("batch");
  const std::vector<std::pair<std::string, std::string>> samples = {
      {"counter3", counter3_blif()},
      {"pattern_fsm", pattern_fsm_blif()},
      {"gray_counter", gray_counter_blif()},
  };
  std::vector<BatchJob> jobs;
  for (const auto& [name, blif] : samples) {
    const fs::path path = dir / (name + ".blif");
    std::ofstream(path) << blif;
    BatchJob job;
    job.name = name;
    job.path = path.string();
    job.k = 4;
    jobs.push_back(job);
  }
  // One failing job: parse errors are reported per record, not thrown.
  BatchJob missing;
  missing.name = "missing";
  missing.path = (dir / "missing.blif").string();
  jobs.push_back(missing);

  FlowCache cache((dir / "cache").string());
  BatchOptions options;
  options.cache = &cache;
  std::ostringstream jsonl;
  const BatchSummary cold = run_batch(jobs, options, &jsonl);
  EXPECT_EQ(cold.completed, 3);
  EXPECT_EQ(cold.failed, 1);
  EXPECT_EQ(cold.cache_hits, 0);

  const BatchSummary warm = run_batch(jobs, options);
  EXPECT_EQ(warm.completed, 3);
  EXPECT_EQ(warm.cache_hits, 3);
  for (std::size_t i = 0; i + 1 < warm.records.size(); ++i) {
    EXPECT_EQ(warm.records[i].phi, cold.records[i].phi);
    EXPECT_EQ(warm.records[i].luts, cold.records[i].luts);
    EXPECT_EQ(warm.records[i].period, cold.records[i].period);
  }

  // One JSONL object per job, streamed in completion order.
  int lines = 0;
  std::string line;
  std::istringstream stream(jsonl.str());
  while (std::getline(stream, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, static_cast<int>(jobs.size()));
  const std::string error_record = batch_record_json(warm.records.back());
  EXPECT_NE(error_record.find("\"ok\":false"), std::string::npos);
}

TEST(BatchRunner, CancelSkipsQueuedJobs) {
  const fs::path dir = test_dir("cancel");
  const fs::path blif_path = dir / "counter.blif";
  std::ofstream(blif_path) << counter3_blif();
  std::vector<BatchJob> jobs(8);
  for (auto& job : jobs) {
    job.name = "counter";
    job.path = blif_path.string();
    job.k = 4;
  }
  CancelToken cancel;
  cancel.cancel();  // already cancelled: every job is skipped
  BatchOptions options;
  options.cancel = &cancel;
  const BatchSummary summary = run_batch(jobs, options);
  EXPECT_EQ(summary.completed + summary.failed, 0);
  EXPECT_EQ(summary.skipped, static_cast<int>(jobs.size()));
  for (const BatchRecord& record : summary.records) {
    EXPECT_TRUE(record.skipped);
    EXPECT_EQ(record.status, Status::kCancelled);
  }
}

}  // namespace
}  // namespace turbosyn
