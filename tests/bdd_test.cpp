#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {
namespace {

TruthTable random_tt(Rng& rng, int vars) {
  TruthTable t = TruthTable::constant(vars, false);
  for (std::uint32_t i = 0; i < t.num_bits(); ++i) {
    if (rng.next_bool()) t.set_bit(i, true);
  }
  return t;
}

TEST(Bdd, TerminalsAndVars) {
  BddManager mgr(4);
  EXPECT_TRUE(mgr.is_const(mgr.zero()));
  EXPECT_TRUE(mgr.is_const(mgr.one()));
  const BddRef x1 = mgr.var(1);
  EXPECT_EQ(mgr.var_of(x1), 1);
  EXPECT_EQ(mgr.low(x1), mgr.zero());
  EXPECT_EQ(mgr.high(x1), mgr.one());
  EXPECT_EQ(mgr.nvar(1), mgr.bdd_not(x1));
}

TEST(Bdd, HashConsingIsCanonical) {
  BddManager mgr(3);
  // (x0 AND x1) built two different ways must be the same node.
  const BddRef a = mgr.bdd_and(mgr.var(0), mgr.var(1));
  const BddRef b = mgr.bdd_not(mgr.bdd_or(mgr.nvar(0), mgr.nvar(1)));
  EXPECT_EQ(a, b);
}

TEST(Bdd, IteBasicIdentities) {
  BddManager mgr(3);
  const BddRef f = mgr.var(0);
  const BddRef g = mgr.var(1);
  EXPECT_EQ(mgr.ite(mgr.one(), f, g), f);
  EXPECT_EQ(mgr.ite(mgr.zero(), f, g), g);
  EXPECT_EQ(mgr.ite(f, g, g), g);
  EXPECT_EQ(mgr.ite(f, mgr.one(), mgr.zero()), f);
}

TEST(Bdd, TruthTableRoundTripRandom) {
  Rng rng(11);
  for (const int vars : {1, 3, 6, 9, 12}) {
    for (int trial = 0; trial < 4; ++trial) {
      const TruthTable t = random_tt(rng, vars);
      BddManager mgr(vars);
      const BddRef f = mgr.from_truth_table(t);
      EXPECT_EQ(mgr.to_truth_table(f, vars), t) << "vars=" << vars;
    }
  }
}

TEST(Bdd, OperatorsMatchTruthTables) {
  Rng rng(13);
  const int vars = 7;
  const TruthTable ta = random_tt(rng, vars);
  const TruthTable tb = random_tt(rng, vars);
  BddManager mgr(vars);
  const BddRef a = mgr.from_truth_table(ta);
  const BddRef b = mgr.from_truth_table(tb);
  EXPECT_EQ(mgr.to_truth_table(mgr.bdd_and(a, b), vars), ta & tb);
  EXPECT_EQ(mgr.to_truth_table(mgr.bdd_or(a, b), vars), ta | tb);
  EXPECT_EQ(mgr.to_truth_table(mgr.bdd_xor(a, b), vars), ta ^ tb);
  EXPECT_EQ(mgr.to_truth_table(mgr.bdd_not(a), vars), ~ta);
}

TEST(Bdd, SatCountMatchesPopcount) {
  Rng rng(17);
  for (const int vars : {2, 5, 10}) {
    const TruthTable t = random_tt(rng, vars);
    BddManager mgr(vars);
    EXPECT_EQ(mgr.sat_count(mgr.from_truth_table(t)), t.count_ones());
  }
}

TEST(Bdd, SupportMatchesTruthTable) {
  const TruthTable t = TruthTable::var(6, 1) ^ TruthTable::var(6, 4);
  BddManager mgr(6);
  EXPECT_EQ(mgr.support(mgr.from_truth_table(t)), t.support());
}

TEST(Bdd, RestrictMatchesCofactor) {
  Rng rng(19);
  const int vars = 6;
  const TruthTable t = random_tt(rng, vars);
  BddManager mgr(vars);
  const BddRef f = mgr.from_truth_table(t);
  for (int v = 0; v < vars; ++v) {
    EXPECT_EQ(mgr.to_truth_table(mgr.restrict_var(f, v, false), vars), t.cofactor(v, false));
    EXPECT_EQ(mgr.to_truth_table(mgr.restrict_var(f, v, true), vars), t.cofactor(v, true));
  }
}

TEST(Bdd, DagSizeOfXorIsLinear) {
  const int vars = 10;
  BddManager mgr(vars);
  const BddRef f = mgr.from_truth_table(tt_xor(vars));
  // XOR has exactly 2 nodes per level except the top.
  EXPECT_EQ(mgr.dag_size(f), static_cast<std::size_t>(2 * vars - 1));
}

TEST(Bdd, BoundaryCofactorsCountColumnMultiplicity) {
  // f = (x0 AND x1) XOR x2: cofactors over {x0, x1} are {x2, NOT x2} -> 2.
  const TruthTable f = (TruthTable::var(3, 0) & TruthTable::var(3, 1)) ^ TruthTable::var(3, 2);
  BddManager mgr(3);
  const BddRef r = mgr.from_truth_table(f);
  EXPECT_EQ(mgr.boundary_cofactors(r, 2).size(), 2u);
  // Over {x0} the cofactors are x2 and x1 XOR' x2-ish: x0=0 -> x2; x0=1 -> x1^x2.
  EXPECT_EQ(mgr.boundary_cofactors(r, 1).size(), 2u);
}

TEST(Bdd, CofactorAtWalksBoundAssignments) {
  const TruthTable f = (TruthTable::var(3, 0) & TruthTable::var(3, 1)) ^ TruthTable::var(3, 2);
  BddManager mgr(3);
  const BddRef r = mgr.from_truth_table(f);
  const BddRef c00 = mgr.cofactor_at(r, 2, 0b00);
  const BddRef c11 = mgr.cofactor_at(r, 2, 0b11);
  EXPECT_EQ(mgr.to_truth_table(c00, 3), TruthTable::var(3, 2));
  EXPECT_EQ(mgr.to_truth_table(c11, 3), ~TruthTable::var(3, 2));
}

TEST(Bdd, NodeBudgetIsEnforced) {
  BddManager mgr(16, /*node_budget=*/8);
  EXPECT_THROW(
      {
        BddRef acc = mgr.one();
        for (int i = 0; i < 16; ++i) acc = mgr.bdd_and(acc, mgr.var(i));
      },
      Error);
}

}  // namespace
}  // namespace turbosyn
