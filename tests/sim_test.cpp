#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "netlist/blif.hpp"
#include "netlist/gates.hpp"
#include "sim/cone.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

TEST(Simulator, CombinationalGateEvaluation) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f[2] = {{a, 0}, {b, 0}};
  const NodeId g = c.add_gate("g", tt_xor(2), f);
  c.add_po("$po:o", {g, 0});
  Simulator sim(c);
  EXPECT_EQ(sim.step({false, false}), std::vector<bool>{false});
  EXPECT_EQ(sim.step({true, false}), std::vector<bool>{true});
  EXPECT_EQ(sim.step({true, true}), std::vector<bool>{false});
}

TEST(Simulator, RegisterDelaysByWeight) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f[1] = {{a, 2}};
  const NodeId g = c.add_gate("g", tt_buf(), f);
  c.add_po("$po:o", {g, 0});
  Simulator sim(c);
  EXPECT_FALSE(sim.step({true})[0]);   // t=0: sees a(-2) = 0
  EXPECT_FALSE(sim.step({false})[0]);  // t=1: sees a(-1) = 0
  EXPECT_TRUE(sim.step({false})[0]);   // t=2: sees a(0) = 1
  EXPECT_FALSE(sim.step({false})[0]);  // t=3: sees a(1) = 0
}

TEST(Simulator, CounterCountsWithEnable) {
  const Circuit c = read_blif_string(counter3_blif());
  Simulator sim(c);
  int value = 0;
  for (int t = 0; t < 20; ++t) {
    const bool en = (t % 3) != 0;
    const auto out = sim.step({en});
    // The outputs are the register values *before* this cycle's increment.
    EXPECT_EQ(out[0], (value & 1) != 0) << t;
    EXPECT_EQ(out[1], (value & 2) != 0) << t;
    EXPECT_EQ(out[2], (value & 4) != 0) << t;
    if (en) value = (value + 1) & 7;
  }
}

TEST(Simulator, PatternDetectorFires) {
  const Circuit c = read_blif_string(pattern_fsm_blif());
  Simulator sim(c);
  const std::string input = "0101101111011";
  std::string z;
  for (const char bit : input) z.push_back(sim.step({bit == '1'})[0] ? '1' : '0');
  // Mealy 1011 detector with one-cycle state delay: expected firing positions
  // computed by hand over the stream (overlaps allowed).
  std::string expected;
  std::string window;
  for (const char bit : input) {
    window.push_back(bit);
    const bool hit = window.size() >= 4 && window.substr(window.size() - 4) == "1011";
    expected.push_back(hit ? '1' : '0');
  }
  EXPECT_EQ(z, expected);
}

TEST(Simulator, ResetClearsState) {
  const Circuit c = read_blif_string(counter3_blif());
  Simulator sim(c);
  sim.step({true});
  sim.step({true});
  sim.reset();
  EXPECT_EQ(sim.step({true}), (std::vector<bool>{false, false, false}));
}

TEST(Simulator, RejectsWrongInputWidth) {
  const Circuit c = read_blif_string(counter3_blif());
  Simulator sim(c);
  EXPECT_THROW((void)sim.step({true, false}), Error);
}

// ---- cone_truth_table ----

TEST(Cone, ExtractsComposedFunction) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const NodeId d = c.add_pi("d");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId g1 = c.add_gate("g1", tt_and(2), f1);
  const Circuit::FaninSpec f2[2] = {{g1, 0}, {d, 0}};
  const NodeId g2 = c.add_gate("g2", tt_xor(2), f2);
  c.add_po("$po:o", {g2, 0});

  const NodeId leaves[3] = {a, b, d};
  const TruthTable t = cone_truth_table(c, g2, leaves);
  EXPECT_EQ(t, (TruthTable::var(3, 0) & TruthTable::var(3, 1)) ^ TruthTable::var(3, 2));
}

TEST(Cone, LeafCutsOffTraversal) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f1[1] = {{a, 0}};
  const NodeId g1 = c.add_gate("g1", tt_not(), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  const NodeId g2 = c.add_gate("g2", tt_not(), f2);
  c.add_po("$po:o", {g2, 0});
  // With g1 as the leaf, g2 is just an inverter of it.
  const NodeId leaves[1] = {g1};
  EXPECT_EQ(cone_truth_table(c, g2, leaves), tt_not());
}

TEST(Cone, RegisteredEdgeInsideConeRejected) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f1[1] = {{a, 1}};
  const NodeId g1 = c.add_gate("g1", tt_not(), f1);
  c.add_po("$po:o", {g1, 0});
  const NodeId leaves[1] = {a};
  EXPECT_THROW((void)cone_truth_table(c, g1, leaves), Error);
}

TEST(Cone, EscapingLeafSetRejected) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId g1 = c.add_gate("g1", tt_or(2), f1);
  c.add_po("$po:o", {g1, 0});
  const NodeId leaves[1] = {a};  // b unreachable as a leaf
  EXPECT_THROW((void)cone_truth_table(c, g1, leaves), Error);
}

}  // namespace
}  // namespace turbosyn
