// Randomized fault-injection fuzzer: failpoint schedules over the cache,
// driver and batch layers, with bit-identity against a fault-free baseline
// as the oracle.
//
//   $ fault_fuzz_main [--seeds N | --seeds A..B] [--time-budget SECONDS]
//                     [--require-all] [--verbose]
//
// Per seed it generates a small random FSM circuit (workloads/generator),
// computes the fault-free TurboSYN result as the baseline, then arms a
// random failpoint schedule (1..3 sites out of the compiled-in catalog, each
// with a random action, first-hit offset and trigger count) and drives the
// cached flow and the supervised batch runner through it. The invariants,
// for every schedule (DESIGN.md §13):
//   - no crash: no fault escapes as an exception from run_flow_cached() or
//     run_batch(), and the process never dies;
//   - a run (or batch record) that reports kOk is bit-identical to the
//     fault-free baseline — a retried attempt, a cache hit, and a run that
//     absorbed injected faults all produce the same bits;
//   - a run that reports kFailed names its failing stage and is never
//     storable (a degraded result is never a certificate);
//   - after clearing the schedule and running recover(), a clean run over
//     the same (possibly fault-corrupted) cache directory is kOk and
//     bit-identical — no torn entry is ever served, no fault poisons later
//     runs;
//   - every 3rd seed, a forked child crashes (_Exit, no destructors) at the
//     cache rename boundary; the parent verifies the stray tmp is
//     garbage-collected and the store works again afterwards.
//
// Exits nonzero on the first failing seed's summary. --time-budget stops
// early once the budget is spent; with --require-all, not finishing every
// requested seed is itself a failure.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "cache/cached_flow.hpp"
#include "decomp/gate_decomp.hpp"
#include "cache/flow_cache.hpp"
#include "core/flows.hpp"
#include "netlist/blif.hpp"
#include "service/batch_runner.hpp"
#include "workloads/generator.hpp"

namespace {

using namespace turbosyn;
namespace fs = std::filesystem;

struct FuzzConfig {
  std::uint64_t first_seed = 1;
  std::uint64_t last_seed = 50;
  double time_budget_s = 0.0;  // 0 = unlimited
  bool require_all = false;
  bool verbose = false;
};

FuzzConfig parse_args(int argc, char** argv) {
  FuzzConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--seeds" && i + 1 < argc) {
      const std::string v = argv[++i];
      const auto dots = v.find("..");
      if (dots == std::string::npos) {
        cfg.first_seed = 1;
        cfg.last_seed = std::strtoull(v.c_str(), nullptr, 10);
      } else {
        cfg.first_seed = std::strtoull(v.substr(0, dots).c_str(), nullptr, 10);
        cfg.last_seed = std::strtoull(v.substr(dots + 2).c_str(), nullptr, 10);
      }
    } else if (a == "--time-budget" && i + 1 < argc) {
      cfg.time_budget_s = std::strtod(argv[++i], nullptr);
    } else if (a == "--require-all") {
      cfg.require_all = true;
    } else if (a == "--verbose") {
      cfg.verbose = true;
    } else {
      std::cerr << "usage: fault_fuzz_main [--seeds N|A..B] [--time-budget S]"
                   " [--require-all] [--verbose]\n";
      std::exit(2);
    }
  }
  return cfg;
}

BenchmarkSpec spec_for_seed(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 7);
  BenchmarkSpec spec;
  spec.name = "faultfuzz" + std::to_string(seed);
  spec.seed = seed;
  spec.num_pis = 2 + static_cast<int>(rng() % 3);
  spec.num_pos = 2 + static_cast<int>(rng() % 3);
  spec.num_gates = 8 + static_cast<int>(rng() % 14);
  spec.feedback = 0.05 + 0.2 * (static_cast<double>(rng() % 1000) / 1000.0);
  spec.max_fanin = 2 + static_cast<int>(rng() % 3);
  spec.locality = 6 + static_cast<int>(rng() % 9);
  return spec;
}

struct SeedOutcome {
  int checks = 0;
  std::vector<std::string> failures;
};

void expect(SeedOutcome& out, bool ok, const std::string& what) {
  ++out.checks;
  if (!ok) out.failures.push_back(what);
}

std::string fingerprint(const FlowResult& r) {
  return std::to_string(r.phi) + "|" + std::to_string(r.period) + "|" +
         std::to_string(r.pipeline_stages) + "|" + write_blif_string(r.mapped, "fp");
}

/// Sites a cached-flow run can reach, with the actions that make sense at
/// each (throw and delay are legal everywhere; partial only shapes writes).
struct SitePolicy {
  const char* site;
  std::vector<const char*> actions;
};

const std::vector<SitePolicy>& flow_site_pool() {
  static const std::vector<SitePolicy> pool = {
      {"cache.entry.read", {"error", "throw", "delay:0"}},
      {"cache.entry.write", {"error", "throw", "partial:64", "delay:0"}},
      {"cache.entry.rename", {"error", "throw", "delay:0"}},
      {"cache.sidecar.read", {"error", "throw", "delay:0"}},
      {"cache.sidecar.write", {"error", "throw", "delay:0"}},
      {"driver.stage", {"error", "throw", "delay:0"}},
      {"driver.stage.ub-probe", {"error", "throw"}},
      {"driver.stage.phi-search", {"error", "throw"}},
      {"driver.stage.mapgen", {"error", "throw"}},
      {"driver.stage.pack", {"error", "throw"}},
      {"driver.stage.pipeline-retime", {"error", "throw"}},
  };
  return pool;
}

const std::vector<SitePolicy>& batch_site_pool() {
  static const std::vector<SitePolicy> pool = {
      {"batch.job", {"error", "throw"}},
      {"blif.read", {"error"}},
      {"batch.jsonl.write", {"error"}},
      {"driver.stage", {"error", "throw"}},
      {"cache.entry.write", {"error", "partial:32"}},
  };
  return pool;
}

/// One random schedule: 1..3 distinct sites, each with a random action, a
/// random first-hit offset (@1..3) and a bounded trigger count (*1..4) so
/// retried work can eventually get past the fault.
std::string random_schedule(std::mt19937_64& rng, const std::vector<SitePolicy>& pool) {
  const std::size_t n = 1 + rng() % 3;
  std::vector<std::size_t> picks;
  while (picks.size() < n && picks.size() < pool.size()) {
    const std::size_t p = rng() % pool.size();
    if (std::find(picks.begin(), picks.end(), p) == picks.end()) picks.push_back(p);
  }
  std::string spec;
  for (const std::size_t p : picks) {
    const SitePolicy& sp = pool[p];
    if (!spec.empty()) spec += ',';
    spec += sp.site;
    spec += '=';
    spec += sp.actions[rng() % sp.actions.size()];
    spec += '@' + std::to_string(1 + rng() % 3);
    spec += '*' + std::to_string(1 + rng() % 4);
  }
  return spec;
}

/// The flow phase: faulted rounds through a fresh cache, then a clean
/// recovery pass over whatever state the faults left behind.
void fuzz_flow(SeedOutcome& out, const Circuit& c, const FlowOptions& opt,
               const std::string& baseline_fp, const fs::path& dir, std::mt19937_64& rng,
               bool verbose) {
  FlowCache cache(dir.string());
  const std::string spec = random_schedule(rng, flow_site_pool());
  if (verbose) std::cerr << "  flow schedule: " << spec << '\n';
  std::string cfg_error;
  if (!failpoint::configure(spec, &cfg_error)) {
    out.failures.push_back("generated schedule failed to parse: " + spec + ": " + cfg_error);
    return;
  }

  for (int round = 0; round < 2; ++round) {
    CacheRunInfo info;
    FlowResult result;
    try {
      result = run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &info);
    } catch (const std::exception& e) {
      expect(out, false, "fault escaped run_flow_cached (schedule " + spec +
                             "): " + e.what());
      continue;
    }
    if (result.status == Status::kOk) {
      expect(out, fingerprint(result) == baseline_fp,
             "kOk result under faults differs from the fault-free baseline (schedule " +
                 spec + ")");
    } else if (result.status == Status::kFailed) {
      expect(out, !result.failed_stage.empty(),
             "kFailed result without a failing stage (schedule " + spec + ")");
      expect(out, !FlowCache::storable(result),
             "a failed run claims to be storable (schedule " + spec + ")");
    }
    // A hit replays real stages through the driver, so an injected stage
    // fault during the replay round is a *contained* kFailed (checked
    // above) — legitimate. What a hit may never do is complete with
    // something other than the exact baseline.
    if (info.hit) {
      expect(out,
             (result.status == Status::kOk && fingerprint(result) == baseline_fp) ||
                 result.status == Status::kFailed,
             "a cache hit served something other than the exact baseline (schedule " +
                 spec + ")");
    }
  }
  failpoint::clear();

  // Whatever the faults tore, recovery plus clean runs must converge back to
  // the exact baseline — the cache never stays poisoned.
  try {
    cache.recover();
  } catch (const std::exception& e) {
    expect(out, false, std::string("recover() threw: ") + e.what());
  }
  for (int round = 0; round < 2; ++round) {
    CacheRunInfo info;
    const FlowResult clean = run_flow_cached(FlowKind::kTurboSyn, c, opt, &cache, &info);
    expect(out, clean.status == Status::kOk && fingerprint(clean) == baseline_fp,
           "clean run after faults (schedule " + spec + ") is not bit-identical");
  }
}

/// The batch phase: one supervised job under a batch-layer schedule, then a
/// clean batch over the same file. run_batch must return in both cases.
void fuzz_batch(SeedOutcome& out, const fs::path& blif_path, const FlowResult& baseline,
                std::mt19937_64& rng, bool verbose) {
  BatchJob job;
  job.name = "fuzz";
  job.path = blif_path.string();
  job.flow = FlowKind::kTurboSyn;
  job.k = 4;
  BatchOptions options;
  options.retry_backoff_ms = 0;  // keep the fuzz loop fast

  const std::string spec = random_schedule(rng, batch_site_pool());
  if (verbose) std::cerr << "  batch schedule: " << spec << '\n';
  std::string cfg_error;
  if (!failpoint::configure(spec, &cfg_error)) {
    out.failures.push_back("generated batch schedule failed to parse: " + spec);
    return;
  }
  std::ostringstream jsonl;
  BatchSummary summary;
  try {
    summary = run_batch({job}, options, &jsonl);
  } catch (const std::exception& e) {
    failpoint::clear();
    expect(out, false, "fault escaped run_batch (schedule " + spec + "): " + e.what());
    return;
  }
  failpoint::clear();

  expect(out, summary.records.size() == 1, "batch lost its record (schedule " + spec + ")");
  if (summary.records.size() == 1) {
    const BatchRecord& record = summary.records[0];
    if (record.ok && record.status == Status::kOk) {
      expect(out,
             record.phi == baseline.phi && record.period == baseline.period &&
                 record.luts == baseline.luts,
             "clean-looking batch record differs from the baseline (schedule " + spec + ")");
    }
    expect(out, record.attempts >= 1 && record.attempts <= options.max_attempts,
           "attempt count out of range (schedule " + spec + ")");
    const bool failed_final = (!record.ok || record.status == Status::kFailed);
    expect(out, record.quarantined == (failed_final && record.attempts >= options.max_attempts),
           "quarantine flag inconsistent with the final attempt (schedule " + spec + ")");
    expect(out, summary.quarantined == (record.quarantined ? 1 : 0),
           "summary quarantine count disagrees with the record (schedule " + spec + ")");
  }
  expect(out, summary.completed + summary.failed + summary.skipped == 1,
         "batch summary does not account for the job (schedule " + spec + ")");

  // Clean batch over the same file: the schedule must leave no residue.
  const BatchSummary clean = run_batch({job}, options);
  expect(out,
         clean.records.size() == 1 && clean.records[0].ok &&
             clean.records[0].status == Status::kOk &&
             clean.records[0].phi == baseline.phi &&
             clean.records[0].period == baseline.period,
         "clean batch after faults (schedule " + spec + ") does not match the baseline");
}

/// The crash phase: a forked child dies (_Exit, no destructors) at the cache
/// rename boundary; the parent verifies GC and that the slot still works.
void fuzz_crash(SeedOutcome& out, const Circuit& c, const FlowOptions& opt,
                const FlowResult& baseline, const fs::path& dir) {
  if (!FlowCache::storable(baseline)) return;  // nothing certified to store
  const CacheKey key = make_cache_key(c, opt, FlowKind::kTurboSyn);
  const CacheEntry entry = FlowCache::entry_from_result(baseline, c);

  const pid_t pid = ::fork();
  if (pid < 0) {
    expect(out, false, "fork failed for the crash drill");
    return;
  }
  if (pid == 0) {
    failpoint::configure("cache.entry.rename=crash:137");
    FlowCache child_cache(dir.string());
    child_cache.store(key, entry);
    std::_Exit(9);  // unreachable unless the failpoint failed to fire
  }
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  expect(out, WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 137,
         "crash-drill child did not die at the rename failpoint");

  FlowCache cache(dir.string());
  expect(out, !cache.lookup(key).has_value(), "a crashed store published an entry");
  const FlowCache::RecoveryStats stats = cache.recover();
  expect(out, stats.stray_tmp >= 1, "recover() missed the crashed writer's tmp file");
  expect(out, cache.store(key, entry) && cache.lookup(key).has_value(),
         "the slot is unusable after crash recovery");
}

SeedOutcome run_seed(std::uint64_t seed, const FuzzConfig& cfg, const fs::path& root) {
  SeedOutcome out;
  const Circuit c = generate_fsm_circuit(spec_for_seed(seed));

  FlowOptions opt;
  opt.k = 4;
  opt.num_threads = 1;
  opt.collect_artifacts = true;

  // Fault-free baseline: the oracle every later phase compares against.
  const FlowResult baseline = run_turbosyn(c, opt);
  const std::string baseline_fp = fingerprint(baseline);

  const fs::path seed_dir = root / ("seed" + std::to_string(seed));
  std::filesystem::create_directories(seed_dir);
  std::mt19937_64 rng(seed * 0xd1342543de82ef95ull + 11);

  fuzz_flow(out, c, opt, baseline_fp, seed_dir / "cache", rng, cfg.verbose);
  const fs::path blif_path = seed_dir / "fuzz.blif";
  {
    std::ofstream blif(blif_path);
    blif << write_blif_string(c, "fuzz");
  }
  // The batch oracle must come from the circuit the batch will actually
  // run — the BLIF writer may insert PO buffers, so the file's structure
  // (and hence its LUT count) can differ from the in-memory baseline.
  FlowResult batch_baseline;
  {
    Circuit from_file = read_blif_file(blif_path.string());
    if (!from_file.is_k_bounded(opt.k)) from_file = gate_decompose(from_file, opt.k);
    batch_baseline = run_turbosyn(from_file, opt);
  }
  fuzz_batch(out, blif_path, batch_baseline, rng, cfg.verbose);
  if (seed % 3 == 0) fuzz_crash(out, c, opt, baseline, seed_dir / "crash_cache");

  failpoint::clear();  // belt and braces: never leak a schedule across seeds
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const FuzzConfig cfg = parse_args(argc, argv);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("turbosyn_fault_fuzz." + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  std::uint64_t seeds_run = 0;
  std::uint64_t seeds_failed = 0;
  std::uint64_t checks = 0;
  bool out_of_time = false;
  for (std::uint64_t seed = cfg.first_seed; seed <= cfg.last_seed; ++seed) {
    if (cfg.time_budget_s > 0 && elapsed_s() > cfg.time_budget_s) {
      out_of_time = true;
      break;
    }
    SeedOutcome out;
    try {
      out = run_seed(seed, cfg, root);
    } catch (const std::exception& e) {
      out.failures.push_back(std::string("unhandled exception: ") + e.what());
      turbosyn::failpoint::clear();
    }
    ++seeds_run;
    checks += static_cast<std::uint64_t>(out.checks);
    if (!out.failures.empty()) {
      ++seeds_failed;
      std::cerr << "[fault_fuzz] seed " << seed << " FAILED:\n";
      for (const std::string& f : out.failures) std::cerr << "  " << f << '\n';
    } else if (cfg.verbose) {
      std::cerr << "[fault_fuzz] seed " << seed << " ok (" << out.checks << " checks)\n";
    }
  }
  std::filesystem::remove_all(root);

  const std::uint64_t requested = cfg.last_seed - cfg.first_seed + 1;
  std::cout << "[fault_fuzz] " << seeds_run << "/" << requested << " seeds, " << checks
            << " checks, " << seeds_failed << " failed, " << static_cast<int>(elapsed_s())
            << "s" << (out_of_time ? " (time budget hit)" : "") << '\n';
  if (seeds_failed > 0) return 1;
  if (cfg.require_all && seeds_run < requested) {
    std::cerr << "[fault_fuzz] --require-all: only " << seeds_run << " of " << requested
              << " seeds ran within the time budget\n";
    return 1;
  }
  return 0;
}
