// Howard's algorithm cross-checked against the Bellman–Ford cycle-ratio
// engine on hand-built circuits and the synthetic suites.

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "netlist/gates.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/howard.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

CycleRatioResult howard_of(const Circuit& c) {
  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = c.delay(v);
  return max_cycle_ratio_howard(c.to_digraph(), delay);
}

TEST(Howard, RingRatios) {
  EXPECT_EQ(howard_of(ring_circuit(5, 2)).ratio, Rational(5, 2));
  EXPECT_EQ(howard_of(ring_circuit(7, 3)).ratio, Rational(7, 3));
  EXPECT_EQ(howard_of(ring_circuit(6, 6)).ratio, Rational(1));
}

TEST(Howard, AcyclicIsZero) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec f[1] = {{a, 1}};
  const NodeId g = c.add_gate("g", tt_buf(), f);
  c.add_po("$po:o", {g, 0});
  EXPECT_EQ(howard_of(c).ratio, Rational(0));
  EXPECT_TRUE(howard_of(c).critical_cycle.empty());
}

TEST(Howard, CriticalCycleIsConsistent) {
  const Circuit c = generate_fsm_circuit(tiny_suite()[2]);
  const Digraph g = c.to_digraph();
  const CycleRatioResult r = howard_of(c);
  ASSERT_FALSE(r.critical_cycle.empty());
  std::int64_t d_sum = 0;
  std::int64_t w_sum = 0;
  for (const EdgeId e : r.critical_cycle) {
    d_sum += c.delay(g.edge(e).to);
    w_sum += g.edge(e).weight;
  }
  EXPECT_EQ(Rational(d_sum, w_sum), r.ratio);
}

class HowardVsBellmanFord : public ::testing::TestWithParam<int> {};

TEST_P(HowardVsBellmanFord, EnginesAgreeOnSuiteCircuits) {
  const auto specs = tiny_suite();
  const Circuit c = generate_fsm_circuit(specs[static_cast<std::size_t>(GetParam()) % specs.size()]);
  EXPECT_EQ(howard_of(c).ratio, circuit_mdr(c).ratio);
}

INSTANTIATE_TEST_SUITE_P(Suite, HowardVsBellmanFord, ::testing::Range(0, 6));

TEST(Howard, AgreesOnTable1Circuit) {
  const Circuit c = generate_fsm_circuit(table1_suite()[0]);
  EXPECT_EQ(howard_of(c).ratio, circuit_mdr(c).ratio);
}

TEST(Howard, CombinationalLoopThrows) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId g1 = c.declare_gate("g1");
  const NodeId g2 = c.declare_gate("g2");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {g2, 0}};
  c.finish_gate(g1, tt_and(2), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  c.finish_gate(g2, tt_not(), f2);
  c.add_po("$po:o", {g2, 0});
  EXPECT_THROW((void)howard_of(c), Error);
}

}  // namespace
}  // namespace turbosyn
