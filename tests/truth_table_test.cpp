#include "base/truth_table.hpp"

#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {
namespace {

TEST(TruthTable, ConstantsHaveExpectedBits) {
  const TruthTable f = TruthTable::constant(3, false);
  const TruthTable t = TruthTable::constant(3, true);
  EXPECT_TRUE(f.is_const0());
  EXPECT_TRUE(t.is_const1());
  EXPECT_EQ(f.count_ones(), 0u);
  EXPECT_EQ(t.count_ones(), 8u);
}

TEST(TruthTable, VarProjectsItsInput) {
  for (int n = 1; n <= 8; ++n) {
    for (int v = 0; v < n; ++v) {
      const TruthTable x = TruthTable::var(n, v);
      for (std::uint32_t a = 0; a < x.num_bits(); ++a) {
        EXPECT_EQ(x.bit(a), ((a >> v) & 1) != 0) << "n=" << n << " v=" << v << " a=" << a;
      }
    }
  }
}

TEST(TruthTable, VarWorksAboveWordBoundary) {
  // Variables with index >= 6 select whole 64-bit words.
  const TruthTable x = TruthTable::var(8, 7);
  EXPECT_FALSE(x.bit(0));
  EXPECT_TRUE(x.bit(1u << 7));
  EXPECT_EQ(x.count_ones(), 128u);
}

TEST(TruthTable, LogicOperatorsMatchBitwiseSemantics) {
  Rng rng(42);
  for (int n : {2, 5, 7}) {
    TruthTable a = TruthTable::constant(n, false);
    TruthTable b = TruthTable::constant(n, false);
    for (std::uint32_t i = 0; i < a.num_bits(); ++i) {
      a.set_bit(i, rng.next_bool());
      b.set_bit(i, rng.next_bool());
    }
    const TruthTable c_and = a & b;
    const TruthTable c_or = a | b;
    const TruthTable c_xor = a ^ b;
    const TruthTable c_not = ~a;
    for (std::uint32_t i = 0; i < a.num_bits(); ++i) {
      EXPECT_EQ(c_and.bit(i), a.bit(i) && b.bit(i));
      EXPECT_EQ(c_or.bit(i), a.bit(i) || b.bit(i));
      EXPECT_EQ(c_xor.bit(i), a.bit(i) != b.bit(i));
      EXPECT_EQ(c_not.bit(i), !a.bit(i));
    }
  }
}

TEST(TruthTable, CofactorFixesAVariable) {
  Rng rng(7);
  for (int n : {3, 6, 9}) {
    TruthTable f = TruthTable::constant(n, false);
    for (std::uint32_t i = 0; i < f.num_bits(); ++i) f.set_bit(i, rng.next_bool());
    for (int v = 0; v < n; ++v) {
      const TruthTable f0 = f.cofactor(v, false);
      const TruthTable f1 = f.cofactor(v, true);
      for (std::uint32_t i = 0; i < f.num_bits(); ++i) {
        const std::uint32_t at0 = i & ~(std::uint32_t{1} << v);
        const std::uint32_t at1 = i | (std::uint32_t{1} << v);
        EXPECT_EQ(f0.bit(i), f.bit(at0));
        EXPECT_EQ(f1.bit(i), f.bit(at1));
      }
    }
  }
}

TEST(TruthTable, SupportDetectsRealDependencies) {
  // f = x0 XOR x2 over 4 variables.
  const TruthTable f = TruthTable::var(4, 0) ^ TruthTable::var(4, 2);
  EXPECT_EQ(f.support(), (std::vector<int>{0, 2}));
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
}

TEST(TruthTable, DropVarRemovesNonSupportVariable) {
  const TruthTable f = TruthTable::var(4, 0) & TruthTable::var(4, 3);
  const TruthTable g = f.drop_var(1);  // x3 shifts down to position 2
  EXPECT_EQ(g.num_vars(), 3);
  EXPECT_EQ(g, TruthTable::var(3, 0) & TruthTable::var(3, 2));
  EXPECT_THROW((void)f.drop_var(0), Error);
}

TEST(TruthTable, RemapPermutesVariables) {
  const TruthTable f = TruthTable::var(3, 0) & ~TruthTable::var(3, 2);
  const int map[3] = {2, 1, 0};
  const TruthTable g = f.remap(3, map);
  EXPECT_EQ(g, TruthTable::var(3, 2) & ~TruthTable::var(3, 0));
}

TEST(TruthTable, RemapCanWidenArity) {
  const TruthTable f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
  const int map[2] = {4, 1};
  const TruthTable g = f.remap(5, map);
  EXPECT_EQ(g, TruthTable::var(5, 4) ^ TruthTable::var(5, 1));
}

TEST(TruthTable, ComposeAppliesInnerFunctions) {
  // g(u, v) = u AND v; u = x0 XOR x1, v = x2 => overall (x0^x1) & x2.
  const TruthTable g = tt_and(2);
  const TruthTable u = TruthTable::var(3, 0) ^ TruthTable::var(3, 1);
  const TruthTable v = TruthTable::var(3, 2);
  const TruthTable inputs[2] = {u, v};
  EXPECT_EQ(compose(g, inputs), u & v);
}

TEST(TruthTable, BinaryStringRoundTrip) {
  const TruthTable f = TruthTable::from_binary_string(2, "0110");  // XOR
  EXPECT_EQ(f, tt_xor(2));
  EXPECT_THROW((void)TruthTable::from_binary_string(2, "011"), Error);
  EXPECT_THROW((void)TruthTable::from_binary_string(2, "012x"), Error);
}

TEST(TruthTable, HashDiffersAcrossFunctions) {
  EXPECT_NE(tt_and(3).hash(), tt_or(3).hash());
  EXPECT_NE(tt_and(3).hash(), tt_and(4).hash());
  EXPECT_EQ(tt_xor(5).hash(), tt_xor(5).hash());
}

TEST(TruthTable, GateLibraryBasics) {
  EXPECT_EQ(tt_mux().bit(0b000u), false);  // s=0 -> a
  EXPECT_EQ(tt_mux().bit(0b010u), true);   // s=0, a=1
  EXPECT_EQ(tt_mux().bit(0b001u), false);  // s=1 -> b=0
  EXPECT_EQ(tt_mux().bit(0b101u), true);   // s=1, b=1
  EXPECT_EQ(tt_maj3().count_ones(), 4u);
  EXPECT_EQ(tt_nand(2), ~tt_and(2));
  EXPECT_EQ(tt_xnor(3), ~tt_xor(3));
}

TEST(TruthTable, ArityBoundsEnforced) {
  EXPECT_THROW((void)TruthTable::constant(17, false), Error);
  EXPECT_THROW((void)TruthTable::var(3, 3), Error);
}

}  // namespace
}  // namespace turbosyn
