#include <gtest/gtest.h>

#include "base/check.hpp"
#include "base/rng.hpp"
#include "mapping/cone_cut.hpp"
#include "mapping/flowmap.hpp"
#include "mapping/pack.hpp"
#include "mapping/seq_split.hpp"
#include "netlist/blif.hpp"
#include "netlist/gates.hpp"
#include "sim/cone.hpp"
#include "sim/simulator.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

/// Random combinational K-bounded DAG for property tests.
Circuit random_dag(Rng& rng, int gates, int pis, int max_fanin) {
  Circuit c;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) pool.push_back(c.add_pi("i" + std::to_string(i)));
  NodeId last = pool[0];
  for (int i = 0; i < gates; ++i) {
    const int arity = static_cast<int>(rng.next_in(2, max_fanin));
    std::vector<Circuit::FaninSpec> fanins;
    std::vector<NodeId> chosen;
    for (int f = 0; f < arity; ++f) {
      NodeId pick;
      do {
        pick = pool[rng.next_below(pool.size())];
      } while (std::count(chosen.begin(), chosen.end(), pick) != 0);
      chosen.push_back(pick);
      fanins.push_back({pick, 0});
    }
    TruthTable func = TruthTable::constant(arity, false);
    for (std::uint32_t m = 0; m < func.num_bits(); ++m) {
      if (rng.next_bool()) func.set_bit(m, true);
    }
    last = c.add_gate("g" + std::to_string(i), func, fanins);
    pool.push_back(last);
  }
  c.add_po("$po:o", {last, 0});
  c.validate();
  return c;
}

// ---- min_height_cut ----

TEST(ConeCut, TrivialFaninCutWhenAllLabelsAllowed) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f[2] = {{a, 0}, {b, 0}};
  const NodeId g = c.add_gate("g", tt_and(2), f);
  c.add_po("$po:o", {g, 0});
  const std::vector<int> label(static_cast<std::size_t>(c.num_nodes()), 0);
  const auto cut = min_height_cut(c, g, label, 0, 4);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, (std::vector<NodeId>{a, b}));
}

TEST(ConeCut, ReconvergenceGivesSmallerCut) {
  // a feeds two gates which reconverge: min cut through {a, b} is 2 while the
  // fanin cut of the root is also 2 — deepen: diamond with single source.
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec fu[1] = {{a, 0}};
  const NodeId u = c.add_gate("u", tt_not(), fu);
  const NodeId v = c.add_gate("v", tt_buf(), fu);
  const Circuit::FaninSpec fr[2] = {{u, 0}, {v, 0}};
  const NodeId r = c.add_gate("r", tt_and(2), fr);
  c.add_po("$po:o", {r, 0});
  const std::vector<int> label(static_cast<std::size_t>(c.num_nodes()), 0);
  const auto cut = min_height_cut(c, r, label, 0, 4);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, std::vector<NodeId>{a});  // the flow sees through u and v
}

TEST(ConeCut, HeightLimitExcludesHighLabels) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const Circuit::FaninSpec fu[1] = {{a, 0}};
  const NodeId u = c.add_gate("u", tt_not(), fu);
  const Circuit::FaninSpec fr[1] = {{u, 0}};
  const NodeId r = c.add_gate("r", tt_not(), fr);
  c.add_po("$po:o", {r, 0});
  std::vector<int> label(static_cast<std::size_t>(c.num_nodes()), 0);
  label[static_cast<std::size_t>(u)] = 1;
  // Height limit 0: u (label 1) must be inside, cut falls back to {a}.
  const auto cut = min_height_cut(c, r, label, 0, 4);
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(*cut, std::vector<NodeId>{a});
  // Negative height: impossible.
  EXPECT_FALSE(min_height_cut(c, r, label, -1, 4).has_value());
}

TEST(ConeCut, SizeLimitRespected) {
  Circuit c;
  std::vector<Circuit::FaninSpec> fanins;
  for (int i = 0; i < 5; ++i) fanins.push_back({c.add_pi("i" + std::to_string(i)), 0});
  const NodeId g = c.add_gate("g", tt_xor(5), fanins);
  c.add_po("$po:o", {g, 0});
  const std::vector<int> label(static_cast<std::size_t>(c.num_nodes()), 0);
  EXPECT_FALSE(min_height_cut(c, g, label, 0, 4).has_value());
  EXPECT_TRUE(min_height_cut(c, g, label, 0, 5).has_value());
}

// ---- FlowMap / FlowSYN ----

TEST(FlowMap, DepthOfTwoLevelCircuit) {
  // 8-input AND as two levels of 4-AND: at K=4 depth 2, at K=8 depth 1.
  Circuit c;
  std::vector<Circuit::FaninSpec> level0;
  for (int i = 0; i < 8; ++i) level0.push_back({c.add_pi("i" + std::to_string(i)), 0});
  const Circuit::FaninSpec fa[4] = {level0[0], level0[1], level0[2], level0[3]};
  const Circuit::FaninSpec fb[4] = {level0[4], level0[5], level0[6], level0[7]};
  const NodeId ga = c.add_gate("ga", tt_and(4), fa);
  const NodeId gb = c.add_gate("gb", tt_and(4), fb);
  const Circuit::FaninSpec fr[2] = {{ga, 0}, {gb, 0}};
  const NodeId r = c.add_gate("r", tt_and(2), fr);
  c.add_po("$po:o", {r, 0});

  FlowMapOptions opt;
  opt.k = 4;
  EXPECT_EQ(flowmap(c, opt).depth, 2);
}

TEST(FlowMap, MappedCircuitIsEquivalentAndKBounded) {
  Rng rng(53);
  for (int trial = 0; trial < 8; ++trial) {
    const Circuit c = random_dag(rng, 40, 5, 4);
    FlowMapOptions opt;
    opt.k = 4;
    const FlowMapResult labels = flowmap(c, opt);
    const Circuit mapped = generate_mapped_circuit(c, labels, opt);
    EXPECT_TRUE(mapped.is_k_bounded(opt.k));
    Rng sim_rng(trial);
    const auto stimulus = random_stimulus(sim_rng, c.num_pis(), 32);
    EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(mapped, stimulus));
  }
}

TEST(FlowMap, DepthNeverBelowLowerBoundAndMonotoneInK) {
  Rng rng(59);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = random_dag(rng, 60, 6, 4);
    int prev_depth = 1 << 20;
    for (int k = 4; k <= 6; ++k) {
      FlowMapOptions opt;
      opt.k = k;
      const int depth = flowmap(c, opt).depth;
      EXPECT_LE(depth, prev_depth);  // bigger LUTs never increase depth
      prev_depth = depth;
    }
  }
}

TEST(FlowSyn, DecompositionNeverIncreasesDepth) {
  Rng rng(61);
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit c = random_dag(rng, 50, 6, 4);
    FlowMapOptions plain;
    plain.k = 4;
    FlowMapOptions syn = plain;
    syn.enable_decomposition = true;
    const int d_plain = flowmap(c, plain).depth;
    const FlowMapResult syn_result = flowmap(c, syn);
    EXPECT_LE(syn_result.depth, d_plain);
    // Resynthesized mapping stays functionally correct.
    const Circuit mapped = generate_mapped_circuit(c, syn_result, syn);
    Rng sim_rng(trial + 100);
    const auto stimulus = random_stimulus(sim_rng, c.num_pis(), 32);
    EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(mapped, stimulus));
  }
}

TEST(FlowMap, RejectsSequentialAndUnboundedInputs) {
  const Circuit seq = read_blif_string(counter3_blif());
  FlowMapOptions opt;
  opt.k = 4;
  EXPECT_THROW((void)flowmap(seq, opt), Error);
}

// ---- split / merge ----

TEST(SeqSplit, RoundTripThroughIdentityMapping) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    const SequentialSplit split = split_at_registers(c);
    for (EdgeId e = 0; e < split.comb.num_edges(); ++e) {
      EXPECT_EQ(split.comb.edge(e).weight, 0);
    }
    // Merging the unmapped comb circuit back must reproduce the behavior.
    const Circuit merged = merge_registers(c, split, split.comb);
    Rng rng(spec.seed + 7);
    const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
    EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(merged, stimulus))
        << spec.name;
  }
}

TEST(SeqSplit, PseudoBoundaryBookkeeping) {
  const Circuit c = read_blif_string(counter3_blif());
  const SequentialSplit split = split_at_registers(c);
  EXPECT_EQ(split.pseudo_pi.size(), 3u);  // q0, q1, q2
  EXPECT_EQ(split.pseudo_po.size(), 3u);  // n0, n1, n2 observed
  EXPECT_EQ(split.comb.num_pis(), c.num_pis() + 3);
}

// ---- packing ----

TEST(Pack, MergesSingleFanoutChains) {
  Circuit c;
  const NodeId a = c.add_pi("a");
  const NodeId b = c.add_pi("b");
  const Circuit::FaninSpec f1[2] = {{a, 0}, {b, 0}};
  const NodeId g1 = c.add_gate("g1", tt_and(2), f1);
  const Circuit::FaninSpec f2[1] = {{g1, 0}};
  const NodeId g2 = c.add_gate("g2", tt_not(), f2);
  c.add_po("$po:o", {g2, 0});
  PackStats stats;
  const Circuit packed = pack_luts(c, 4, &stats);
  EXPECT_EQ(stats.luts_before, 2);
  EXPECT_EQ(stats.luts_after, 1);
  const NodeId root = packed.find("g2");
  ASSERT_NE(root, kNoNode);
  EXPECT_EQ(packed.function(root), tt_nand(2));
}

TEST(Pack, RespectsKAndFanoutConstraints) {
  Circuit c;
  std::vector<Circuit::FaninSpec> wide;
  for (int i = 0; i < 4; ++i) wide.push_back({c.add_pi("i" + std::to_string(i)), 0});
  const NodeId g1 = c.add_gate("g1", tt_and(4), wide);
  const Circuit::FaninSpec f2[2] = {{g1, 0}, wide[0]};
  const NodeId g2 = c.add_gate("g2", tt_or(2), f2);
  const Circuit::FaninSpec f3[1] = {{g1, 0}};  // second fanout of g1
  const NodeId g3 = c.add_gate("g3", tt_not(), f3);
  c.add_po("$po:o2", {g2, 0});
  c.add_po("$po:o3", {g3, 0});
  PackStats stats;
  const Circuit packed = pack_luts(c, 4, &stats);
  // g1 has two fanouts: nothing merges.
  EXPECT_EQ(stats.merges, 0);
  EXPECT_EQ(packed.num_gates(), 3);
}

TEST(Pack, SequentialCircuitsKeepBehavior) {
  for (const auto& spec : tiny_suite()) {
    const Circuit c = generate_fsm_circuit(spec);
    PackStats stats;
    const Circuit packed = pack_luts(c, 6, &stats);
    EXPECT_LE(packed.num_gates(), c.num_gates()) << spec.name;
    EXPECT_TRUE(packed.is_k_bounded(6));
    Rng rng(spec.seed + 13);
    const auto stimulus = random_stimulus(rng, c.num_pis(), 64);
    EXPECT_EQ(simulate_sequence(c, stimulus), simulate_sequence(packed, stimulus))
        << spec.name;
  }
}

}  // namespace
}  // namespace turbosyn
