// Tests for the always-on mapping daemon (src/service/mapping_server) and
// the parsing fixes that ride along with it: the line protocol, round-robin
// admission with per-client caps, budget-pool slicing, live cancellation,
// the FlowCache hot tier, graceful drain (a real SIGTERM fork drill), plus
// regressions for strict --threads parsing, quote-aware manifests,
// duplicate-stem de-duplication, round-trippable seconds, and the shared
// JSON escaper.
//
// The SIGTERM drill forks, so it runs before any test that spawns threads
// (gtest keeps registration order); CI's TSan job excludes it and the death
// tests by filter.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/flow_cli.hpp"
#include "base/json_util.hpp"
#include "base/run_budget.hpp"
#include "base/trace.hpp"
#include "cache/cached_flow.hpp"
#include "cache/flow_cache.hpp"
#include "core/probe_ledger.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"
#include "netlist/canonical.hpp"
#include "service/batch_runner.hpp"
#include "service/mapping_server.hpp"
#include "workloads/generator.hpp"
#include "workloads/samples.hpp"

namespace turbosyn {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test directory under the gtest temp root.
fs::path test_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ts_service_test_" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Minimal raw protocol client (the daemon speaks '\n'-terminated lines).
struct TestClient {
  int fd = -1;
  std::string buffer;

  ~TestClient() {
    if (fd >= 0) ::close(fd);
  }

  bool connect_unix(const std::string& path) {
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) return false;
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    return true;
  }

  /// Retries until the daemon (possibly in a child process) has bound.
  bool connect_retry(const std::string& path, int attempts = 300) {
    for (int i = 0; i < attempts; ++i) {
      if (connect_unix(path)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  bool send(const std::string& line) {
    std::string wire = line + "\n";
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read(std::string& line) {
    for (;;) {
      const std::size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

/// A map request line. Empty `client` omits the field (the server then uses
/// the connection's default client id, which the bare CANCEL verb targets).
std::string map_line(std::int64_t id, const std::string& blif,
                     const std::string& client = "", int k = 4,
                     const std::string& flow = "turbosyn") {
  std::string line = "{\"op\":\"map\",\"id\":" + std::to_string(id);
  if (!client.empty()) line += ",\"client\":" + json_quote(client);
  line += ",\"flow\":" + json_quote(flow) + ",\"k\":" + std::to_string(k) +
          ",\"blif\":" + json_quote(blif) + "}";
  return line;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Reads replies until the "result" line for `id` arrives.
bool read_result_for(TestClient& client, std::int64_t id, std::string& line) {
  const std::string tag = "\"id\":" + std::to_string(id) + ",";
  while (client.read(line)) {
    if (contains(line, "\"reply\":\"result\"") && contains(line, tag)) return true;
  }
  return false;
}

/// Polls STATS until the aggregate contains `needle`. Only safe while no
/// result lines can arrive on this connection (they would be consumed).
bool wait_for_stats(TestClient& client, const std::string& needle, int attempts = 500) {
  std::string line;
  for (int i = 0; i < attempts; ++i) {
    if (!client.send("STATS")) return false;
    do {
      if (!client.read(line)) return false;
    } while (!contains(line, "\"reply\":\"stats\""));
    if (contains(line, needle)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// A circuit big enough that a flow on it cannot finish before a cancel or
/// SIGTERM lands (it is always cancelled — the full runtime never elapses).
std::string slow_blif() {
  BenchmarkSpec spec;
  spec.name = "slow";
  spec.seed = 41;
  spec.num_gates = 2500;
  spec.feedback = 0.05;
  spec.max_fanin = 4;
  return write_blif_string(generate_fsm_circuit(spec), "slow");
}

FlowOptions small_options() {
  FlowOptions opt;
  opt.k = 4;
  opt.num_threads = 1;
  return opt;
}

Circuit bounded_sample(const std::string& blif, int k = 4) {
  Circuit c = read_blif_string(blif);
  if (!c.is_k_bounded(k)) c = gate_decompose(c, k);
  return c;
}

std::string fingerprint(const FlowResult& r) {
  return std::to_string(r.phi) + "|" + std::to_string(r.period) + "|" +
         std::to_string(r.pipeline_stages) + "|" + write_blif_string(r.mapped, "fp");
}

// ---------------------------------------------------------------------------
// SIGTERM drain drill (fork: keep first, before any test spawns threads)

TEST(ServiceDrainDrill, SigtermDrainLosesNoRecords) {
  const fs::path dir = test_dir("drill");
  const fs::path sock = dir / "tsd.sock";
  const fs::path jsonl = dir / "records.jsonl";
  const std::string slow = slow_blif();
  const std::string quick = counter3_blif();

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The daemon process: SIGTERM must drain it exactly like tsd. No gtest
    // assertions in the child — exit codes only.
    std::ofstream out(jsonl);
    if (!out) std::_Exit(5);
    install_sigterm_cancellation();
    MappingServerOptions options;
    options.socket_path = sock.string();
    options.workers = 1;
    options.flow = small_options();
    options.jsonl = &out;
    options.external_shutdown = &global_cancel_token();
    MappingServer server(std::move(options));
    try {
      server.start();
    } catch (...) {
      std::_Exit(3);
    }
    server.wait();
    std::_Exit(server.jsonl_faults() == 0 ? 0 : 4);
  }

  // Admit three requests — the first slow enough to still be running — then
  // SIGTERM mid-flight.
  TestClient client;
  ASSERT_TRUE(client.connect_retry(sock.string()));
  std::string line;
  ASSERT_TRUE(client.send(map_line(1, slow)));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"queued\"")) << line;
  ASSERT_TRUE(client.send(map_line(2, quick)));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"queued\"")) << line;
  ASSERT_TRUE(client.send(map_line(3, quick)));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"queued\"")) << line;

  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Every admitted request produced exactly one JSONL record, even across
  // the drain: the slow one wound down (or was skipped), the queued ones
  // were drained as cancelled.
  std::ifstream in(jsonl);
  ASSERT_TRUE(in.good());
  std::map<std::string, int> ids;
  int lines = 0;
  for (std::string record; std::getline(in, record);) {
    ++lines;
    EXPECT_TRUE(contains(record, "\"seq\":")) << record;
    for (const char* tag : {"\"id\":1,", "\"id\":2,", "\"id\":3,"}) {
      if (contains(record, tag)) ++ids[tag];
    }
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(ids.size(), 3u);
  for (const auto& [tag, count] : ids) EXPECT_EQ(count, 1) << tag;
}

// ---------------------------------------------------------------------------
// Strict integer parsing (the --threads regression)

TEST(ParseIntStrict, AcceptsOnlyWholeTokensInRange) {
  long long out = -99;
  EXPECT_TRUE(parse_int_strict("7", 0, 100, out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(parse_int_strict("-7", -10, 10, out));
  EXPECT_EQ(out, -7);
  EXPECT_TRUE(parse_int_strict("0", 0, 0, out));
  EXPECT_EQ(out, 0);

  long long untouched = 42;
  EXPECT_FALSE(parse_int_strict("abc", 0, 100, untouched));
  EXPECT_FALSE(parse_int_strict("3x", 0, 100, untouched));  // atoi said 3
  EXPECT_FALSE(parse_int_strict("", 0, 100, untouched));
  EXPECT_FALSE(parse_int_strict("-", 0, 100, untouched));
  EXPECT_FALSE(parse_int_strict(" 7", 0, 100, untouched));
  EXPECT_FALSE(parse_int_strict("+7", 0, 100, untouched));
  EXPECT_FALSE(parse_int_strict("7 ", 0, 100, untouched));
  EXPECT_FALSE(parse_int_strict("101", 0, 100, untouched));  // out of range
  EXPECT_FALSE(parse_int_strict("-11", -10, 10, untouched));
  EXPECT_FALSE(parse_int_strict("99999999999999999999", 0, 1LL << 62, untouched));
  EXPECT_EQ(untouched, 42);

  int narrow = 0;
  EXPECT_TRUE(parse_int_strict("12", 2, 32, narrow));
  EXPECT_EQ(narrow, 12);
  EXPECT_FALSE(parse_int_strict("33", 2, 32, narrow));
}

TEST(FlowCliDeathTest, ThreadsRejectsNonIntegerWithExit2) {
  // "--threads abc" used to atoi() to 0 and silently grab every core.
  const auto parse = [](const char* value) {
    const char* argv[] = {"prog", "--threads", value};
    flow_cli_from_args(3, const_cast<char**>(argv));
  };
  EXPECT_EXIT(parse("abc"), ::testing::ExitedWithCode(2),
              "--threads expects an integer");
  EXPECT_EXIT(parse("3x"), ::testing::ExitedWithCode(2),
              "--threads expects an integer");
}

// ---------------------------------------------------------------------------
// Manifest parsing: quoting, diagnostics, stem de-duplication

std::vector<BatchJob> parse_manifest(const std::string& text) {
  std::istringstream in(text);
  return read_batch_manifest(in, "m.txt");
}

std::string manifest_error(const std::string& text) {
  try {
    parse_manifest(text);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(BatchManifest, QuotedPathsKeepTheirSpaces) {
  const auto jobs = parse_manifest("\"a b/x.blif\" turbomap 4\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].path, "a b/x.blif");
  EXPECT_EQ(jobs[0].flow, FlowKind::kTurboMap);
  EXPECT_EQ(jobs[0].k, 4);
  EXPECT_EQ(jobs[0].name, "x");
}

TEST(BatchManifest, QuotedPathsDecodeEscapes) {
  const auto jobs = parse_manifest("\"she said \\\"hi\\\"\\\\x.blif\"\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].path, "she said \"hi\"\\x.blif");
}

TEST(BatchManifest, DiagnosticsNameTheField) {
  // An unquoted space used to shear the path and blame a bogus flow field.
  EXPECT_TRUE(contains(manifest_error("a.blif bogusflow\n"), "unknown flow"));
  EXPECT_TRUE(contains(manifest_error("a.blif bogusflow\n"), "field 2"));
  EXPECT_TRUE(contains(manifest_error("a.blif turbosyn 1\n"), "field 3"));
  EXPECT_TRUE(contains(manifest_error("a.blif turbosyn 1\n"), "[2, 32]"));
  EXPECT_TRUE(contains(manifest_error("a.blif turbosyn 4x\n"), "field 3"));
  EXPECT_TRUE(
      contains(manifest_error("a.blif turbosyn 4 extra\n"), "trailing field"));
  EXPECT_TRUE(contains(manifest_error("\"unterminated.blif\n"), "unterminated quote"));
  // Errors carry file:line context.
  EXPECT_TRUE(contains(manifest_error("a.blif turbosyn 4\nb.blif nope\n"), "m.txt:2"));
}

TEST(BatchManifest, CommentsAndBlanksIgnored) {
  const auto jobs = parse_manifest("# header\n\n  a.blif\n# tail\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].path, "a.blif");
  EXPECT_EQ(jobs[0].flow, FlowKind::kTurboSyn);  // defaults
  EXPECT_EQ(jobs[0].k, 5);
}

TEST(BatchManifest, DuplicateStemsAreDeduplicated) {
  // a/x.blif and b/x.blif used to stream two records both named "x", so the
  // summary's poison list could not identify which manifest entry failed.
  const auto jobs =
      parse_manifest("a/x.blif\nb/x.blif\nc/x.blif\nd/x~2.blif\ny.blif\n");
  ASSERT_EQ(jobs.size(), 5u);
  EXPECT_EQ(jobs[0].name, "x");
  EXPECT_EQ(jobs[1].name, "x~2");
  EXPECT_EQ(jobs[2].name, "x~3");
  EXPECT_EQ(jobs[3].name, "x~2~2");  // literal stem "x~2" collides with the alias
  EXPECT_EQ(jobs[4].name, "y");
}

// ---------------------------------------------------------------------------
// Record JSON: round-trippable seconds, one shared escaper

TEST(RecordJson, SecondsRoundTripExactly) {
  for (const double value : {1.0 / 3.0, 0.1, 1234.000000000001, 98765.4321098765,
                             1e-9, 0.0}) {
    BatchRecord record;
    record.name = "t";
    record.seconds = value;
    const std::string json = batch_record_json(record);
    const std::size_t pos = json.find("\"seconds\":");
    ASSERT_NE(pos, std::string::npos) << json;
    const double parsed = std::strtod(json.c_str() + pos + 10, nullptr);
    // Bit-exact: the default 6-significant-digit rendering failed this.
    EXPECT_EQ(parsed, value) << json;
  }
}

TEST(RecordJson, EscaperMatchesTraceSink) {
  // '\r' round-tripped through the batch escaper but not the trace sink's
  // before both were rerouted through base/json_util.
  const std::string name = "a\rb\x01" "c\"d\\e\nf\tg";
  std::string escaped;
  json_escape(escaped, name);
  EXPECT_TRUE(contains(escaped, "\\r"));
  EXPECT_TRUE(contains(escaped, "\\u0001"));

  BatchRecord record;
  record.name = name;
  EXPECT_TRUE(contains(batch_record_json(record), escaped));

  TraceSink sink;
  { TraceSpan span(&sink, name); }
  EXPECT_TRUE(contains(sink.to_json(), escaped));
}

TEST(JsonUtil, DoubleRendersRoundTrippable) {
  for (const double value : {1.0 / 3.0, 2.2250738585072014e-308, 1.7976931348623157e308,
                             6.02214076e23, -0.25}) {
    const std::string text = json_double(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_double(std::nan("")), "0");
}

TEST(JsonUtil, FlatObjectParserIsStrict) {
  std::vector<std::pair<std::string, JsonScalar>> fields;
  ASSERT_TRUE(parse_flat_json_object(
      R"({"s":"a\nb","n":-3.5e2,"t":true,"f":false,"z":null})", fields));
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0].second.kind, JsonScalar::Kind::kString);
  EXPECT_EQ(fields[0].second.text, "a\nb");
  EXPECT_EQ(fields[1].second.kind, JsonScalar::Kind::kNumber);
  EXPECT_EQ(fields[1].second.text, "-3.5e2");  // raw spelling preserved
  EXPECT_TRUE(fields[2].second.boolean);
  EXPECT_FALSE(fields[3].second.boolean);
  EXPECT_EQ(fields[4].second.kind, JsonScalar::Kind::kNull);

  std::string error;
  EXPECT_FALSE(parse_flat_json_object("{\"a\":1} trailing", fields, &error));
  EXPECT_FALSE(parse_flat_json_object("{\"a\":{\"nested\":1}}", fields, &error));
  EXPECT_FALSE(parse_flat_json_object("{\"a\":[1]}", fields, &error));
  EXPECT_FALSE(parse_flat_json_object("{\"a\":\"unterminated}", fields, &error));
  EXPECT_FALSE(parse_flat_json_object("{\"a\":1,,\"b\":2}", fields, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Protocol line parsing

TEST(ProtocolParse, BareVerbs) {
  EXPECT_EQ(parse_protocol_line("PING").kind, ParsedLine::Kind::kPing);
  EXPECT_EQ(parse_protocol_line("  STATS  ").kind, ParsedLine::Kind::kStats);
  EXPECT_EQ(parse_protocol_line("SHUTDOWN").kind, ParsedLine::Kind::kShutdown);
  const ParsedLine cancel = parse_protocol_line("CANCEL 12");
  EXPECT_EQ(cancel.kind, ParsedLine::Kind::kCancel);
  EXPECT_EQ(cancel.cancel_id, 12);
}

TEST(ProtocolParse, CancelRejectsAtoiSemantics) {
  for (const char* bad : {"CANCEL 3x", "CANCEL abc", "CANCEL", "CANCEL -1"}) {
    const ParsedLine parsed = parse_protocol_line(bad);
    EXPECT_EQ(parsed.kind, ParsedLine::Kind::kError) << bad;
    EXPECT_FALSE(parsed.error.empty()) << bad;
  }
}

TEST(ProtocolParse, MapObjectFull) {
  const ParsedLine parsed = parse_protocol_line(
      R"({"op":"map","id":7,"client":"ci","blif":".model x\n","flow":"turbomap","k":6,"deadline_ms":2000})");
  ASSERT_EQ(parsed.kind, ParsedLine::Kind::kMap) << parsed.error;
  EXPECT_EQ(parsed.map.id, 7);
  EXPECT_EQ(parsed.map.client, "ci");
  EXPECT_EQ(parsed.map.blif, ".model x\n");
  EXPECT_EQ(parsed.map.flow, FlowKind::kTurboMap);
  EXPECT_EQ(parsed.map.k, 6);
  EXPECT_EQ(parsed.map.deadline_ms, 2000);
}

TEST(ProtocolParse, MapObjectDefaults) {
  const ParsedLine parsed = parse_protocol_line(R"({"op":"map","id":1,"path":"a.blif"})");
  ASSERT_EQ(parsed.kind, ParsedLine::Kind::kMap) << parsed.error;
  EXPECT_EQ(parsed.map.flow, FlowKind::kTurboSyn);
  EXPECT_EQ(parsed.map.k, 5);
  EXPECT_EQ(parsed.map.deadline_ms, 0);
  EXPECT_TRUE(parsed.map.client.empty());
}

TEST(ProtocolParse, ErrorsNameTheField) {
  struct Case {
    const char* line;
    const char* needle;
  };
  const Case cases[] = {
      {R"({"op":"map","id":1,"blif":"x","k":99})", "'k'"},
      {R"({"op":"map","id":1,"blif":"x","k":99})", "[2, 32]"},
      {R"({"op":"map","id":"3","blif":"x"})", "'id'"},
      {R"({"op":"map","id":3.5,"blif":"x"})", "'id'"},
      {R"({"op":"map","id":-1,"blif":"x"})", "'id'"},
      {R"({"op":"map","id":1,"blif":"x","flow":"nope"})", "'flow'"},
      {R"({"op":"map","id":1,"blif":"x","deadline_ms":"soon"})", "'deadline_ms'"},
      {R"({"op":"map","id":1,"blif":"x","bogus":1})", "'bogus'"},
      {R"({"op":"frobnicate","id":1})", "'op'"},
  };
  for (const Case& c : cases) {
    const ParsedLine parsed = parse_protocol_line(c.line);
    EXPECT_EQ(parsed.kind, ParsedLine::Kind::kError) << c.line;
    EXPECT_TRUE(contains(parsed.error, c.needle))
        << c.line << " -> " << parsed.error;
  }
  // A map needs a circuit, and malformed JSON is an error, never a crash.
  EXPECT_EQ(parse_protocol_line(R"({"op":"map","id":1})").kind,
            ParsedLine::Kind::kError);
  EXPECT_EQ(parse_protocol_line("{nope").kind, ParsedLine::Kind::kError);
  EXPECT_EQ(parse_protocol_line("FROB").kind, ParsedLine::Kind::kError);
}

// ---------------------------------------------------------------------------
// AdmissionQueue: fairness, caps, cancel, drain

AdmissionQueue::Ticket make_ticket(const std::string& client, std::int64_t id,
                                   std::uint64_t seq) {
  AdmissionQueue::Ticket ticket;
  ticket.request.client = client;
  ticket.request.id = id;
  ticket.seq = seq;
  ticket.cancel = std::make_shared<CancelToken>();
  return ticket;
}

TEST(AdmissionQueueTest, PerClientCapKeepsChattyClientsOutOfEveryLane) {
  AdmissionQueue queue(16, 1);
  ASSERT_TRUE(queue.push(make_ticket("a", 1, 1)));
  ASSERT_TRUE(queue.push(make_ticket("a", 2, 2)));
  ASSERT_TRUE(queue.push(make_ticket("b", 1, 3)));

  const auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request.client, "a");
  EXPECT_EQ(first->request.id, 1);

  // "a" is at its in-flight cap: "b" goes next even though a#2 arrived first.
  const auto second = queue.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request.client, "b");

  queue.complete("a", 1);
  const auto third = queue.pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->request.client, "a");
  EXPECT_EQ(third->request.id, 2);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(queue.in_flight(), 2);  // b#1 and a#2
}

TEST(AdmissionQueueTest, PopsAlternateRoundRobinNotFifo) {
  AdmissionQueue queue(16, 2);
  ASSERT_TRUE(queue.push(make_ticket("a", 1, 1)));
  ASSERT_TRUE(queue.push(make_ticket("a", 2, 2)));
  ASSERT_TRUE(queue.push(make_ticket("b", 1, 3)));
  ASSERT_TRUE(queue.push(make_ticket("b", 2, 4)));
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    const auto ticket = queue.pop();
    ASSERT_TRUE(ticket.has_value());
    order.push_back(ticket->request.client);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b"}));
}

TEST(AdmissionQueueTest, FullQueueRejects) {
  AdmissionQueue queue(1, 1);
  ASSERT_TRUE(queue.push(make_ticket("a", 1, 1)));
  EXPECT_FALSE(queue.push(make_ticket("a", 2, 2)));
  const auto ticket = queue.pop();
  ASSERT_TRUE(ticket.has_value());
  // Depth bounds queued tickets, not in-flight ones.
  EXPECT_TRUE(queue.push(make_ticket("a", 2, 2)));
}

TEST(AdmissionQueueTest, CancelReachesQueuedAndRunningTickets) {
  AdmissionQueue queue(16, 1);
  ASSERT_TRUE(queue.push(make_ticket("a", 1, 1)));
  ASSERT_TRUE(queue.push(make_ticket("b", 1, 2)));

  // Queued: the token fires but the ticket stays queued for its worker.
  EXPECT_TRUE(queue.cancel("b", 1));
  EXPECT_EQ(queue.depth(), 2u);

  const auto running = queue.pop();
  ASSERT_TRUE(running.has_value());
  EXPECT_EQ(running->request.client, "a");
  EXPECT_FALSE(running->cancel->cancelled());
  EXPECT_TRUE(queue.cancel("a", 1));  // in-flight, via the running set
  EXPECT_TRUE(running->cancel->cancelled());

  const auto cancelled = queue.pop();
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->request.client, "b");
  EXPECT_TRUE(cancelled->cancel->cancelled());

  EXPECT_FALSE(queue.cancel("a", 99));  // unknown id
  queue.complete("a", 1);
  EXPECT_FALSE(queue.cancel("a", 1));  // completed tickets are gone
}

TEST(AdmissionQueueTest, CloseWakesPoppersAndDrainReturnsLeftoversInSeqOrder) {
  AdmissionQueue queue(16, 1);
  ASSERT_TRUE(queue.push(make_ticket("b", 1, 3)));
  ASSERT_TRUE(queue.push(make_ticket("a", 1, 1)));
  ASSERT_TRUE(queue.push(make_ticket("a", 2, 2)));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.push(make_ticket("c", 1, 4)));

  queue.cancel_all();
  const auto leftovers = queue.drain();
  ASSERT_EQ(leftovers.size(), 3u);
  EXPECT_EQ(leftovers[0].seq, 1u);
  EXPECT_EQ(leftovers[1].seq, 2u);
  EXPECT_EQ(leftovers[2].seq, 3u);
  for (const auto& ticket : leftovers) EXPECT_TRUE(ticket.cancel->cancelled());
  EXPECT_EQ(queue.depth(), 0u);
}

// ---------------------------------------------------------------------------
// BudgetPool

TEST(BudgetPoolTest, UnlimitedPoolHonorsOnlyTheCeilings) {
  BudgetPool unlimited(0, 0);
  EXPECT_EQ(unlimited.carve(0), 0);      // 0 = no deadline at all
  EXPECT_EQ(unlimited.carve(500), 500);  // a request's own deadline sticks
  EXPECT_EQ(unlimited.remaining(), -1);

  BudgetPool capped(0, 200);
  EXPECT_EQ(capped.carve(0), 200);     // server default slice
  EXPECT_EQ(capped.carve(5000), 200);  // the ceiling wins
  EXPECT_EQ(capped.carve(100), 100);   // a tighter request wins
}

TEST(BudgetPoolTest, PoolMetersActualSpendWithRefunds) {
  BudgetPool pool(1000, 400);
  EXPECT_EQ(pool.carve(0), 400);
  EXPECT_EQ(pool.remaining(), 600);
  EXPECT_EQ(pool.carve(5000), 400);
  EXPECT_EQ(pool.remaining(), 200);
  EXPECT_EQ(pool.carve(0), 200);  // pool-limited slice
  EXPECT_EQ(pool.remaining(), 0);
  // Exhausted: requests still run, on honest 1ms slices.
  EXPECT_EQ(pool.carve(0), 1);
  EXPECT_EQ(pool.carve(800), 1);
  // A slice's unused portion comes back.
  pool.refund(400, 100);
  EXPECT_EQ(pool.remaining(), 300);
  pool.refund(400, 5000);  // overspend refunds nothing (clamped at 0)
  EXPECT_EQ(pool.remaining(), 300);
}

// ---------------------------------------------------------------------------
// FlowCache hot tier

TEST(HotTier, LruEvictionAndDiskFallback) {
  const fs::path dir = test_dir("hot_lru");
  FlowCache cache(dir.string());
  cache.enable_hot_tier(16u << 20, 2);  // entry-capped at two
  EXPECT_TRUE(cache.hot_tier_enabled());
  const FlowOptions opt = small_options();

  const Circuit first = bounded_sample(counter3_blif());
  const Circuit second = bounded_sample(traffic_light_blif());
  const Circuit third = bounded_sample(gray_counter_blif());

  const std::string cold = fingerprint(run_flow_cached(FlowKind::kTurboSyn, first, opt, &cache));
  run_flow_cached(FlowKind::kTurboSyn, second, opt, &cache);
  run_flow_cached(FlowKind::kTurboSyn, third, opt, &cache);

  // Three stores through a two-entry tier: the LRU entry (`first`) fell out.
  EXPECT_EQ(cache.hot_entries(), 2);
  EXPECT_GE(cache.hot_evictions(), 1);
  EXPECT_GT(cache.hot_bytes(), 0);
  EXPECT_EQ(cache.stores(), 3);
  EXPECT_EQ(cache.hot_hits(), 0);

  // The evicted entry is still a disk hit, and the hit re-admits it hot.
  CacheRunInfo info;
  const std::string warm =
      fingerprint(run_flow_cached(FlowKind::kTurboSyn, first, opt, &cache, &info));
  EXPECT_TRUE(info.hit);
  EXPECT_EQ(cache.hot_hits(), 0);  // that one came from disk
  const std::string hot =
      fingerprint(run_flow_cached(FlowKind::kTurboSyn, first, opt, &cache, &info));
  EXPECT_TRUE(info.hit);
  EXPECT_EQ(cache.hot_hits(), 1);  // this one never touched disk
  EXPECT_EQ(cache.hot_entries(), 2);

  // Hot, disk, and cold runs are bit-identical.
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, hot);
}

TEST(HotTier, ByteCapAndReconfiguration) {
  const fs::path dir = test_dir("hot_bytes");
  FlowCache cache(dir.string());
  const FlowOptions opt = small_options();

  // A 1-byte tier admits nothing (an entry alone exceeds the cap).
  cache.enable_hot_tier(1);
  run_flow_cached(FlowKind::kTurboSyn, bounded_sample(counter3_blif()), opt, &cache);
  EXPECT_EQ(cache.hot_entries(), 0);

  // Widen, fill, then shrink: the shrink evicts immediately.
  cache.enable_hot_tier(16u << 20);
  run_flow_cached(FlowKind::kTurboSyn, bounded_sample(counter3_blif()), opt, &cache);
  run_flow_cached(FlowKind::kTurboSyn, bounded_sample(traffic_light_blif()), opt, &cache);
  EXPECT_EQ(cache.hot_entries(), 2);
  const std::int64_t evictions_before = cache.hot_evictions();
  cache.enable_hot_tier(16u << 20, 1);
  EXPECT_EQ(cache.hot_entries(), 1);
  EXPECT_GT(cache.hot_evictions(), evictions_before);

  // Disabling clears the tier; the persistent store still serves hits.
  cache.enable_hot_tier(0);
  EXPECT_FALSE(cache.hot_tier_enabled());
  EXPECT_EQ(cache.hot_entries(), 0);
  CacheRunInfo info;
  run_flow_cached(FlowKind::kTurboSyn, bounded_sample(counter3_blif()), opt, &cache, &info);
  EXPECT_TRUE(info.hit);
}

// ---------------------------------------------------------------------------
// Hot-tier eviction policy (cost-aware admission)

TEST(HotPolicyNames, RoundTripAndRejection) {
  EXPECT_STREQ(hot_policy_name(HotPolicy::kRecency), "recency");
  EXPECT_STREQ(hot_policy_name(HotPolicy::kCostAware), "cost-aware");
  EXPECT_EQ(parse_hot_policy("recency"), HotPolicy::kRecency);
  EXPECT_EQ(parse_hot_policy("cost-aware"), HotPolicy::kCostAware);
  EXPECT_FALSE(parse_hot_policy("lru").has_value());
  EXPECT_FALSE(parse_hot_policy("").has_value());
  EXPECT_FALSE(parse_hot_policy("Cost-Aware").has_value());
}

/// A synthetic storable entry whose only interesting property is its cost.
/// Self-consistent enough to survive the full parse/certification path on a
/// disk lookup (a feasible probe record certifying the winning labels).
CacheEntry costed_entry(double flow_wall_seconds) {
  CacheEntry entry;
  entry.phi = 3;
  entry.max_po_label = 1;
  entry.winning_labels = {0, 1};
  CachedProbe probe;
  probe.phi = entry.phi;
  probe.feasible = true;
  probe.label_hash = hash_labels(std::span<const int>(entry.winning_labels));
  probe.max_po_label = entry.max_po_label;
  entry.probes.push_back(probe);
  entry.flow_wall_seconds = flow_wall_seconds;
  entry.mapped_blif = ".model synthetic\n.end\n";
  return entry;
}

CacheKey synthetic_key(std::uint64_t n) {
  CacheKey key;
  key.text = "synthetic key " + std::to_string(n);
  key.hash = fnv1a64(key.text);  // lookup re-derives and checks this tie
  key.near_sketch = key.hash ^ 0x5555555555555555ull;
  return key;
}

TEST(HotTier, CostAwareSparesExpensiveLruTail) {
  const fs::path dir = test_dir("hot_cost");
  FlowCache cache(dir.string());
  cache.enable_hot_tier(16u << 20, 2);
  EXPECT_EQ(cache.hot_policy(), HotPolicy::kRecency);
  cache.set_hot_policy(HotPolicy::kCostAware);
  EXPECT_EQ(cache.hot_policy(), HotPolicy::kCostAware);

  // Oldest entry is 100000x more expensive than the two cheap ones.
  const CacheKey expensive = synthetic_key(1);
  const CacheKey cheap = synthetic_key(2);
  const CacheKey fresh = synthetic_key(3);
  ASSERT_TRUE(cache.store(expensive, costed_entry(100.0)));
  ASSERT_TRUE(cache.store(cheap, costed_entry(0.001)));
  EXPECT_EQ(cache.hot_entries(), 2);

  // The third store must evict: plain LRU would drop `expensive` (the
  // tail), cost-aware drops `cheap` because its score is vanishing.
  ASSERT_TRUE(cache.store(fresh, costed_entry(0.001)));
  EXPECT_EQ(cache.hot_entries(), 2);
  EXPECT_EQ(cache.hot_evictions(), 1);
  EXPECT_EQ(cache.hot_cost_evictions(), 1);
  EXPECT_DOUBLE_EQ(cache.hot_cost_retained_seconds(), 100.0);

  // `expensive` is still resident (a hot hit); `cheap` fell back to disk.
  ASSERT_TRUE(cache.lookup(expensive).has_value());
  EXPECT_EQ(cache.hot_hits(), 1);
  const std::optional<CacheEntry> demoted = cache.lookup(cheap);
  ASSERT_TRUE(demoted.has_value());
  EXPECT_EQ(cache.hot_hits(), 1);  // served from disk, not memory
  EXPECT_DOUBLE_EQ(demoted->flow_wall_seconds, 0.001);
}

TEST(HotTier, RecencyPolicyIgnoresCost) {
  const fs::path dir = test_dir("hot_recency_cost");
  FlowCache cache(dir.string());
  cache.enable_hot_tier(16u << 20, 2);  // default policy: recency

  const CacheKey expensive = synthetic_key(1);
  const CacheKey cheap = synthetic_key(2);
  const CacheKey fresh = synthetic_key(3);
  ASSERT_TRUE(cache.store(expensive, costed_entry(100.0)));
  ASSERT_TRUE(cache.store(cheap, costed_entry(0.001)));
  ASSERT_TRUE(cache.store(fresh, costed_entry(0.001)));

  // Inverse of the cost-aware case: the expensive-but-old entry is the LRU
  // tail and leaves first, cost notwithstanding.
  EXPECT_EQ(cache.hot_evictions(), 1);
  EXPECT_EQ(cache.hot_cost_evictions(), 0);
  EXPECT_DOUBLE_EQ(cache.hot_cost_retained_seconds(), 0.0);
  ASSERT_TRUE(cache.lookup(cheap).has_value());
  EXPECT_EQ(cache.hot_hits(), 1);
  ASSERT_TRUE(cache.lookup(expensive).has_value());
  EXPECT_EQ(cache.hot_hits(), 1);  // evicted: this hit came from disk
}

TEST(HotTier, ZeroCostDegradesToLruUnderCostAware) {
  const fs::path dir = test_dir("hot_zero_cost");
  FlowCache cache(dir.string());
  cache.enable_hot_tier(16u << 20, 2);
  cache.set_hot_policy(HotPolicy::kCostAware);

  // All costs equal (zero): the last_use tie-break reduces the score scan
  // to exact LRU order, so recency and cost-aware behave identically.
  ASSERT_TRUE(cache.store(synthetic_key(1), costed_entry(0.0)));
  ASSERT_TRUE(cache.store(synthetic_key(2), costed_entry(0.0)));
  ASSERT_TRUE(cache.store(synthetic_key(3), costed_entry(0.0)));
  EXPECT_EQ(cache.hot_evictions(), 1);
  EXPECT_EQ(cache.hot_cost_evictions(), 0);
  ASSERT_TRUE(cache.lookup(synthetic_key(2)).has_value());
  ASSERT_TRUE(cache.lookup(synthetic_key(3)).has_value());
  EXPECT_EQ(cache.hot_hits(), 2);  // 2 and 3 stayed; 1 was the LRU victim
}

TEST(HotTier, MidRunPolicyReconfigurationKeepsResidents) {
  const fs::path dir = test_dir("hot_reconfig");
  FlowCache cache(dir.string());
  cache.enable_hot_tier(16u << 20, 2);

  const CacheKey expensive = synthetic_key(1);
  const CacheKey cheap = synthetic_key(2);
  ASSERT_TRUE(cache.store(expensive, costed_entry(50.0)));
  ASSERT_TRUE(cache.store(cheap, costed_entry(0.001)));

  // Flip to cost-aware with entries resident: nothing is dropped, and the
  // next eviction already follows the new policy (sparing the expensive
  // LRU tail).
  cache.set_hot_policy(HotPolicy::kCostAware);
  EXPECT_EQ(cache.hot_entries(), 2);
  ASSERT_TRUE(cache.store(synthetic_key(3), costed_entry(0.001)));
  EXPECT_EQ(cache.hot_cost_evictions(), 1);
  ASSERT_TRUE(cache.lookup(expensive).has_value());
  EXPECT_EQ(cache.hot_hits(), 1);

  // Flip back mid-run: plain LRU again, cost ignored from here on.
  cache.set_hot_policy(HotPolicy::kRecency);
  ASSERT_TRUE(cache.store(synthetic_key(4), costed_entry(0.001)));
  EXPECT_EQ(cache.hot_cost_evictions(), 1);  // unchanged
  ASSERT_TRUE(cache.lookup(expensive).has_value());
  EXPECT_EQ(cache.hot_hits(), 2);  // the recently-hit entry survived as MRU
}

// ---------------------------------------------------------------------------
// MappingServer over a real Unix socket

MappingServerOptions server_options(const fs::path& sock) {
  MappingServerOptions options;
  options.socket_path = sock.string();
  options.workers = 1;
  options.flow = small_options();
  return options;
}

TEST(MappingServerTest, PingProtocolErrorsAndEmptyStats) {
  const fs::path dir = test_dir("ping");
  MappingServer server(server_options(dir / "tsd.sock"));
  server.start();

  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  std::string line;

  ASSERT_TRUE(client.send("PING"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"pong\"")) << line;

  ASSERT_TRUE(client.send("FROB"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"error\"")) << line;
  EXPECT_TRUE(contains(line, "unknown verb")) << line;

  ASSERT_TRUE(client.send(R"({"op":"map","id":1,"k":"4","blif":"x"})"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"error\"")) << line;
  EXPECT_TRUE(contains(line, "'k'")) << line;

  ASSERT_TRUE(client.send("STATS"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"stats\"")) << line;
  EXPECT_TRUE(contains(line, "\"admitted\":0")) << line;
  EXPECT_TRUE(contains(line, "\"draining\":false")) << line;

  server.request_shutdown();
  server.wait();
  EXPECT_EQ(server.admitted(), 0);
}

TEST(MappingServerTest, MapMissThenHotTierRepeat) {
  const fs::path dir = test_dir("hot_repeat");
  FlowCache cache((dir / "cache").string());
  cache.enable_hot_tier(16u << 20);
  std::ostringstream jsonl;
  MappingServerOptions options = server_options(dir / "tsd.sock");
  options.cache = &cache;
  options.jsonl = &jsonl;
  MappingServer server(std::move(options));
  server.start();

  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  const std::string blif = counter3_blif();
  std::string line;

  ASSERT_TRUE(client.send(map_line(1, blif, "ci")));
  ASSERT_TRUE(read_result_for(client, 1, line));
  EXPECT_TRUE(contains(line, "\"ok\":true")) << line;
  EXPECT_TRUE(contains(line, "\"cache_hit\":false")) << line;
  EXPECT_TRUE(contains(line, "\"client\":\"ci\"")) << line;

  // The same circuit again: served from the in-memory hot tier.
  ASSERT_TRUE(client.send(map_line(2, blif, "ci")));
  ASSERT_TRUE(read_result_for(client, 2, line));
  EXPECT_TRUE(contains(line, "\"ok\":true")) << line;
  EXPECT_TRUE(contains(line, "\"cache_hit\":true")) << line;

  ASSERT_TRUE(client.send("STATS"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"hot_hits\":1")) << line;
  EXPECT_TRUE(contains(line, "\"hot_entries\":1")) << line;
  EXPECT_TRUE(contains(line, "\"completed\":2")) << line;

  server.request_shutdown();
  server.wait();
  EXPECT_EQ(server.completed(), 2);

  // Both records streamed through the sink, with admission seq envelopes.
  int lines = 0;
  std::istringstream records(jsonl.str());
  for (std::string record; std::getline(records, record);) {
    ++lines;
    EXPECT_TRUE(contains(record, "\"seq\":")) << record;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_EQ(server.jsonl_faults(), 0);
}

TEST(MappingServerTest, PoisonedResubmissionAnsweredWithoutRerunning) {
  const fs::path dir = test_dir("poison");
  MappingServerOptions options = server_options(dir / "tsd.sock");
  options.max_attempts = 2;
  options.retry_backoff_ms = 1;
  MappingServer server(std::move(options));
  server.start();

  // Every run of this circuit faults deterministically: two attempts, then
  // quarantine.
  failpoint::Scoped scoped("batch.job=error*10");
  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  const std::string blif = pattern_fsm_blif();
  std::string line;

  ASSERT_TRUE(client.send(map_line(1, blif, "ci")));
  ASSERT_TRUE(read_result_for(client, 1, line));
  EXPECT_TRUE(contains(line, "\"quarantined\":true")) << line;
  EXPECT_TRUE(contains(line, "\"attempts\":2")) << line;

  // Resubmission: answered from the poison set, zero further attempts.
  ASSERT_TRUE(client.send(map_line(2, blif, "ci")));
  ASSERT_TRUE(read_result_for(client, 2, line));
  EXPECT_TRUE(contains(line, "\"quarantined\":true")) << line;
  EXPECT_TRUE(contains(line, "\"attempts\":0")) << line;
  EXPECT_TRUE(contains(line, "quarantined (failed deterministically")) << line;

  server.request_shutdown();
  server.wait();
  EXPECT_EQ(server.poison_blocked(), 1);
  // Only the executed-and-quarantined run counts as failed; the blocked
  // resubmission has its own counter.
  EXPECT_EQ(server.failed(), 1);
}

TEST(MappingServerTest, LiveCancelAndQueueFullRejection) {
  const fs::path dir = test_dir("cancel");
  MappingServerOptions options = server_options(dir / "tsd.sock");
  options.max_queue = 1;
  MappingServer server(std::move(options));
  server.start();

  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  std::string line;

  // Occupy the single worker lane, and wait until it has actually popped.
  ASSERT_TRUE(client.send(map_line(1, slow_blif())));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"queued\"")) << line;
  ASSERT_TRUE(wait_for_stats(client, "\"in_flight\":1"));

  // One slot queues; the next is rejected, not silently dropped.
  ASSERT_TRUE(client.send(map_line(2, counter3_blif())));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"queued\"")) << line;
  ASSERT_TRUE(client.send(map_line(3, counter3_blif())));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"error\"")) << line;
  EXPECT_TRUE(contains(line, "admission queue is full")) << line;

  // Cancel the queued request, then the running one (bare verbs target the
  // connection's default client — these requests sent no client field).
  ASSERT_TRUE(client.send("CANCEL 2"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"found\":true")) << line;
  ASSERT_TRUE(client.send("CANCEL 1"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"found\":true")) << line;
  ASSERT_TRUE(client.send("CANCEL 99"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"found\":false")) << line;

  // The running request winds down to a cancelled record; the queued one is
  // skipped without ever running.
  std::map<std::int64_t, std::string> results;
  while (results.size() < 2 && client.read(line)) {
    if (!contains(line, "\"reply\":\"result\"")) continue;
    for (const std::int64_t id : {1, 2}) {
      if (contains(line, "\"id\":" + std::to_string(id) + ",")) results[id] = line;
    }
  }
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(contains(results[1], "\"status\":\"cancelled\"")) << results[1];
  EXPECT_TRUE(contains(results[2], "\"skipped\":true")) << results[2];
  EXPECT_TRUE(contains(results[2], "\"status\":\"cancelled\"")) << results[2];

  server.request_shutdown();
  server.wait();
  EXPECT_EQ(server.cancelled(), 2);
  EXPECT_EQ(server.rejected(), 1);
}

TEST(MappingServerTest, ShutdownVerbDrainsAndRefusesNewWork) {
  const fs::path dir = test_dir("shutdown");
  MappingServer server(server_options(dir / "tsd.sock"));
  server.start();

  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  std::string line;
  ASSERT_TRUE(client.send("SHUTDOWN"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"shutdown\"")) << line;
  server.wait();
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.admitted(), 0);
}

TEST(MappingServerTest, TcpLoopbackListener) {
  MappingServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.workers = 1;
  options.flow = small_options();
  MappingServer server(std::move(options));
  server.start();
  const int port = server.port();
  ASSERT_GT(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  TestClient client;
  client.fd = fd;
  std::string line;
  ASSERT_TRUE(client.send("PING"));
  ASSERT_TRUE(client.read(line));
  EXPECT_TRUE(contains(line, "\"reply\":\"pong\"")) << line;

  server.request_shutdown();
  server.wait();
}

// ---------------------------------------------------------------------------
// HTTP observability endpoint

/// One blocking request against 127.0.0.1:`port`. Returns the raw response
/// (status line, headers, body), or "" when the connection itself failed —
/// which is how the tests detect a stopped endpoint.
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& target) {
  return http_request(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

/// Body of a raw response (everything past the header block).
std::string http_body(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

TEST(HttpEndpointTest, RoutesMetricsHealthzAndTraces) {
  const fs::path dir = test_dir("http");
  FlowCache cache((dir / "cache").string());
  cache.enable_hot_tier(16u << 20);
  MappingServerOptions options = server_options(dir / "tsd.sock");
  options.cache = &cache;
  options.http_port = 0;  // ephemeral
  options.trace_ring_entries = 4;
  MappingServer server(std::move(options));
  server.start();
  const int port = server.http_port();
  ASSERT_GT(port, 0);

  EXPECT_TRUE(contains(http_get(port, "/healthz"), " 200 "));
  EXPECT_TRUE(contains(http_body(http_get(port, "/healthz")), "ok"));
  EXPECT_TRUE(contains(http_get(port, "/nope"), " 404 "));
  EXPECT_TRUE(contains(http_get(port, "/trace/notanumber"), " 404 "));
  EXPECT_TRUE(contains(http_request(port, "POST /metrics HTTP/1.1\r\n\r\n"), " 405 "));

  // A mapped request earns a trace handle, echoed in the reply envelope.
  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  std::string line;
  ASSERT_TRUE(client.send(map_line(1, counter3_blif(), "ci")));
  ASSERT_TRUE(read_result_for(client, 1, line));
  const std::size_t tag = line.find("\"trace\":");
  ASSERT_NE(tag, std::string::npos) << line;
  std::string seq;
  for (std::size_t i = tag + 8;
       i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])); ++i) {
    seq += line[i];
  }
  ASSERT_FALSE(seq.empty());

  const std::string trace = http_get(port, "/trace/" + seq);
  EXPECT_TRUE(contains(trace, " 200 ")) << trace;
  EXPECT_TRUE(contains(trace, "application/json")) << trace;
  EXPECT_TRUE(contains(http_body(trace), "\"version\": 1")) << trace;
  EXPECT_TRUE(contains(http_body(trace), "\"spans\": [")) << trace;
  EXPECT_TRUE(contains(http_get(port, "/trace/999999"), " 404 "));

  // The exposition carries the request's footprint and the active policy.
  const std::string metrics = http_body(http_get(port, "/metrics"));
  EXPECT_TRUE(contains(metrics, "# TYPE ts_server_admitted_total counter")) << metrics;
  EXPECT_TRUE(contains(metrics, "ts_server_admitted_total 1\n")) << metrics;
  EXPECT_TRUE(contains(metrics, "ts_cache_misses_total 1\n")) << metrics;
  EXPECT_TRUE(contains(metrics, "ts_cache_hot_policy{policy=\"recency\"} 1\n")) << metrics;
  EXPECT_TRUE(contains(metrics, "ts_trace_ring_stored_total 1\n")) << metrics;

  // Bit-for-bit consistency: the scrape, a direct render of the snapshot,
  // and the STATS reply all describe the same struct. The daemon is idle,
  // so back-to-back reads must agree exactly.
  EXPECT_EQ(metrics, render_prometheus(server.snapshot()));
  ASSERT_TRUE(client.send("STATS"));
  // The queued ack and the worker's result race on the wire; skip any stray
  // ack still buffered ahead of the stats reply.
  do {
    ASSERT_TRUE(client.read(line));
  } while (!contains(line, "\"reply\":\"stats\""));
  EXPECT_EQ(line, render_stats_json(server.snapshot()));

  // The drain flips readiness but keeps the endpoint answering: a scraper
  // watching /healthz sees the drain, not a vanished daemon.
  server.request_shutdown();
  const std::string draining = http_get(port, "/healthz");
  EXPECT_TRUE(contains(draining, " 503 ")) << draining;
  EXPECT_TRUE(contains(http_body(draining), "draining")) << draining;
  server.wait();
  EXPECT_TRUE(http_get(port, "/healthz").empty());  // endpoint stopped last
}

TEST(HttpEndpointTest, TraceRingEvictsOldestAndKeepsTotals) {
  const fs::path dir = test_dir("http_ring");
  MappingServerOptions options = server_options(dir / "tsd.sock");
  options.http_port = 0;
  options.trace_ring_entries = 1;  // the second trace evicts the first
  MappingServer server(std::move(options));
  server.start();
  const int port = server.http_port();
  ASSERT_GT(port, 0);

  TestClient client;
  ASSERT_TRUE(client.connect_unix((dir / "tsd.sock").string()));
  std::string line;
  ASSERT_TRUE(client.send(map_line(1, counter3_blif(), "ci")));
  ASSERT_TRUE(read_result_for(client, 1, line));
  ASSERT_TRUE(client.send(map_line(2, traffic_light_blif(), "ci")));
  ASSERT_TRUE(read_result_for(client, 2, line));

  // seq 1 was evicted by seq 2; only the newest handle resolves.
  EXPECT_TRUE(contains(http_get(port, "/trace/1"), " 404 "));
  EXPECT_TRUE(contains(http_get(port, "/trace/2"), " 200 "));
  const std::string metrics = http_body(http_get(port, "/metrics"));
  EXPECT_TRUE(contains(metrics, "ts_trace_ring_stored_total 2\n")) << metrics;
  EXPECT_TRUE(contains(metrics, "ts_trace_ring_evicted_total 1\n")) << metrics;
  EXPECT_TRUE(contains(metrics, "ts_trace_ring_entries 1\n")) << metrics;
  // Evicted traces still count into the aggregated trace counters.
  EXPECT_TRUE(contains(metrics, "# TYPE ts_trace_counter_total counter")) << metrics;

  server.request_shutdown();
  server.wait();
}

// ---------------------------------------------------------------------------
// ts_client exit codes (the built binary against an in-process daemon)

#ifdef TS_CLIENT_BIN

/// Runs the ts_client binary with `args`, capturing stderr. Returns the
/// exit status (-1 if it did not exit normally).
int run_ts_client(const std::string& args, const fs::path& stderr_file) {
  const std::string cmd = std::string(TS_CLIENT_BIN) + " " + args + " >/dev/null 2>" +
                          stderr_file.string();
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(TsClientTool, ExitCodesFollowReplyOutcome) {
  const fs::path dir = test_dir("tsclient");
  const fs::path err = dir / "stderr.txt";
  MappingServerOptions options = server_options(dir / "tsd.sock");
  options.http_port = 0;
  options.trace_ring_entries = 4;
  MappingServer server(std::move(options));
  server.start();
  const std::string sock = " --socket " + (dir / "tsd.sock").string();

  std::ofstream(dir / "good.blif") << counter3_blif();
  std::ofstream(dir / "bad.blif") << "this is not a blif netlist\n";

  EXPECT_EQ(run_ts_client("--ping" + sock, err), 0);
  EXPECT_EQ(run_ts_client("--map " + (dir / "good.blif").string() + sock, err), 0);

  // A failed result record must exit nonzero with the server's text on
  // stderr — a failed map must fail the calling script.
  EXPECT_EQ(run_ts_client("--map " + (dir / "bad.blif").string() + sock, err), 1);
  std::string text = slurp(err);
  EXPECT_TRUE(contains(text, "ts_client: server error:")) << text;

  // Same for a protocol-level error reply (unknown portfolio engine).
  EXPECT_EQ(run_ts_client("--map " + (dir / "good.blif").string() +
                              " --portfolio nosuchengine" + sock,
                          err),
            1);
  text = slurp(err);
  EXPECT_TRUE(contains(text, "ts_client: server error:")) << text;

  // Trace fetches: a missing id is exit 1, a real one exit 0.
  const std::string http = " --http-port " + std::to_string(server.http_port());
  EXPECT_EQ(run_ts_client("--trace-fetch 999999" + http, err), 1);
  EXPECT_EQ(run_ts_client("--trace-fetch 1" + http, err), 0);

  server.request_shutdown();
  server.wait();

  // With the daemon gone, connecting at all fails: exit 1.
  EXPECT_EQ(run_ts_client("--ping" + sock, err), 1);
}

TEST(TsClientTool, ExitsNonzeroWhenConnectionDropsMidResponse) {
  const fs::path dir = test_dir("tsclient_drop");
  const fs::path err = dir / "stderr.txt";
  std::ofstream(dir / "good.blif") << counter3_blif();

  // A fake daemon that acks the map as queued and then hangs up: the client
  // must not report success for a request it never saw finish.
  const std::string sock_path = (dir / "fake.sock").string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, sock_path.c_str(), sizeof(addr.sun_path) - 1);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  std::thread fake([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    std::string request;
    char chunk[4096];
    while (request.find('\n') == std::string::npos) {
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) break;
      request.append(chunk, static_cast<std::size_t>(n));
    }
    const std::string ack = "{\"reply\":\"queued\",\"id\":1}\n";
    (void)!::send(fd, ack.data(), ack.size(), MSG_NOSIGNAL);
    ::close(fd);  // drop before the terminal reply
  });

  EXPECT_EQ(run_ts_client("--map " + (dir / "good.blif").string() + " --socket " + sock_path,
                          err),
            1);
  const std::string text = slurp(err);
  EXPECT_TRUE(contains(text, "connection closed before a terminal reply")) << text;
  fake.join();
  ::close(listen_fd);
}

#endif  // TS_CLIENT_BIN

}  // namespace
}  // namespace turbosyn
