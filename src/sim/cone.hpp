#pragma once
// Extraction of the combinational function of a logic cone.
//
// Given a root node and a set of leaves that cuts every path from the root
// to the sources, computes the root's truth table over the leaves. Used by
// the combinational mappers (FlowMap/FlowSYN) to derive LUT functions and by
// the tests to prove functional equivalence of mapped cones.

#include <span>

#include "base/truth_table.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// Truth table of `root` over `leaves` (variable i = leaves[i]).
/// Requirements: every path from root into the circuit reaches a leaf before
/// a PI/PO/latch, and all traversed edges have weight 0; at most
/// TruthTable::kMaxVars leaves. Throws turbosyn::Error otherwise.
TruthTable cone_truth_table(const Circuit& c, NodeId root, std::span<const NodeId> leaves);

}  // namespace turbosyn
