#include "sim/simulator.hpp"

#include "base/check.hpp"
#include "graph/scc.hpp"

namespace turbosyn {

Simulator::Simulator(const Circuit& circuit) : circuit_(circuit) {
  const Digraph g = circuit.to_digraph();
  eval_order_ = topological_order(g, [&](EdgeId e) { return g.edge(e).weight > 0; });
  values_.assign(static_cast<std::size_t>(circuit.num_nodes()), 0);
  regs_.resize(static_cast<std::size_t>(circuit.num_edges()));
  for (EdgeId e = 0; e < circuit.num_edges(); ++e) {
    regs_[static_cast<std::size_t>(e)].assign(
        static_cast<std::size_t>(circuit.edge(e).weight), 0);
  }
}

void Simulator::reset() {
  for (auto& chain : regs_) chain.assign(chain.size(), 0);
  values_.assign(values_.size(), 0);
}

bool Simulator::edge_value(EdgeId e) const {
  const auto& chain = regs_[static_cast<std::size_t>(e)];
  if (chain.empty()) return values_[static_cast<std::size_t>(circuit_.edge(e).from)] != 0;
  return chain.front() != 0;
}

std::vector<bool> Simulator::step(const std::vector<bool>& pi_values) {
  TS_CHECK(pi_values.size() == static_cast<std::size_t>(circuit_.num_pis()),
           "expected " << circuit_.num_pis() << " PI values, got " << pi_values.size());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    values_[static_cast<std::size_t>(circuit_.pis()[i])] = pi_values[i] ? 1 : 0;
  }
  for (const NodeId v : eval_order_) {
    if (circuit_.is_pi(v)) continue;
    const auto fanins = circuit_.fanin_edges(v);
    if (circuit_.is_po(v)) {
      values_[static_cast<std::size_t>(v)] = edge_value(fanins[0]) ? 1 : 0;
      continue;
    }
    std::uint32_t assignment = 0;
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      if (edge_value(fanins[i])) assignment |= std::uint32_t{1} << i;
    }
    values_[static_cast<std::size_t>(v)] = circuit_.function(v).bit(assignment) ? 1 : 0;
  }
  std::vector<bool> outputs;
  outputs.reserve(static_cast<std::size_t>(circuit_.num_pos()));
  for (const NodeId po : circuit_.pos()) {
    outputs.push_back(values_[static_cast<std::size_t>(po)] != 0);
  }
  // Advance the registers: shift each chain by one, feeding the driver value.
  for (EdgeId e = 0; e < circuit_.num_edges(); ++e) {
    auto& chain = regs_[static_cast<std::size_t>(e)];
    if (chain.empty()) continue;
    chain.erase(chain.begin());
    chain.push_back(values_[static_cast<std::size_t>(circuit_.edge(e).from)]);
  }
  return outputs;
}

std::vector<std::vector<bool>> simulate_sequence(const Circuit& circuit,
                                                 const std::vector<std::vector<bool>>& inputs) {
  Simulator sim(circuit);
  std::vector<std::vector<bool>> outputs;
  outputs.reserve(inputs.size());
  for (const auto& in : inputs) outputs.push_back(sim.step(in));
  return outputs;
}

std::vector<std::vector<bool>> random_stimulus(Rng& rng, int num_inputs, int length) {
  std::vector<std::vector<bool>> seq(static_cast<std::size_t>(length));
  for (auto& cycle : seq) {
    cycle.resize(static_cast<std::size_t>(num_inputs));
    for (std::size_t i = 0; i < cycle.size(); ++i) cycle[i] = rng.next_bool();
  }
  return seq;
}

}  // namespace turbosyn
