#include "sim/cone.hpp"

#include <unordered_map>
#include <vector>

#include "base/check.hpp"

namespace turbosyn {
namespace {

class ConeEvaluator {
 public:
  ConeEvaluator(const Circuit& c, std::span<const NodeId> leaves) : circuit_(c) {
    const int m = static_cast<int>(leaves.size());
    TS_CHECK(m <= TruthTable::kMaxVars, "cone has too many leaves (" << m << ")");
    for (int i = 0; i < m; ++i) {
      const bool inserted = memo_.emplace(leaves[static_cast<std::size_t>(i)],
                                          TruthTable::var(m, i))
                                .second;
      TS_CHECK(inserted, "duplicate cone leaf");
    }
    arity_ = m;
  }

  const TruthTable& eval(NodeId v) {
    const auto it = memo_.find(v);
    if (it != memo_.end()) return it->second;
    TS_CHECK(circuit_.is_gate(v),
             "cone of '" << circuit_.name(v) << "' escapes the leaf set at a non-gate");
    const auto fanins = circuit_.fanin_edges(v);
    std::vector<TruthTable> inputs;
    inputs.reserve(fanins.size());
    for (const EdgeId e : fanins) {
      TS_CHECK(circuit_.edge(e).weight == 0,
               "combinational cone crosses a registered edge into '" << circuit_.name(v) << "'");
      inputs.push_back(eval(circuit_.edge(e).from));
    }
    TruthTable result = inputs.empty() ? circuit_.function(v).remap(arity_, {})
                                       : compose(circuit_.function(v), inputs);
    return memo_.emplace(v, std::move(result)).first->second;
  }

 private:
  const Circuit& circuit_;
  std::unordered_map<NodeId, TruthTable> memo_;
  int arity_ = 0;
};

}  // namespace

TruthTable cone_truth_table(const Circuit& c, NodeId root, std::span<const NodeId> leaves) {
  ConeEvaluator evaluator(c, leaves);
  return evaluator.eval(root);
}

}  // namespace turbosyn
