#pragma once
// Cycle-accurate logic simulation of sequential circuits.
//
// Flip-flops live on edges (weight w = a chain of w FFs, all initialized to
// zero). One step() evaluates the combinational logic from the current
// register contents + primary inputs, samples the outputs, then advances all
// registers. Used by tests to validate transformations (e.g. pipelined /
// retimed circuits produce time-shifted but otherwise equal output streams).

#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

class Simulator {
 public:
  explicit Simulator(const Circuit& circuit);

  /// Resets every flip-flop to zero.
  void reset();

  /// Advances one clock cycle. `pi_values` must have one entry per PI in
  /// pis() order; returns PO values in pos() order.
  std::vector<bool> step(const std::vector<bool>& pi_values);

  /// Value of an arbitrary node after the last step (PIs included).
  bool value(NodeId v) const { return values_[static_cast<std::size_t>(v)] != 0; }

  const Circuit& circuit() const { return circuit_; }

 private:
  bool edge_value(EdgeId e) const;

  const Circuit& circuit_;
  std::vector<NodeId> eval_order_;               // topological over 0-weight edges
  std::vector<std::uint8_t> values_;             // node outputs, current cycle
  std::vector<std::vector<std::uint8_t>> regs_;  // per-edge FF chain, index 0 = oldest
};

/// Runs the circuit on an input sequence from the all-zero state and returns
/// one PO-value vector per cycle.
std::vector<std::vector<bool>> simulate_sequence(const Circuit& circuit,
                                                 const std::vector<std::vector<bool>>& inputs);

/// Deterministic random stimulus: `length` cycles of `num_inputs` bits.
std::vector<std::vector<bool>> random_stimulus(Rng& rng, int num_inputs, int length);

}  // namespace turbosyn
