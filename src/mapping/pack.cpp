#include "mapping/pack.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "base/check.hpp"

namespace turbosyn {
namespace {

struct Lut {
  TruthTable func;
  std::vector<Circuit::FaninSpec> fanins;  // driver may be PI or another LUT
  bool alive = true;
};

/// Composes consumer with producer absorbed at fanin position `slot`.
/// Returns the merged function over `merged_fanins`.
TruthTable merge_functions(const Lut& consumer, const Lut& producer, std::size_t slot,
                           const std::vector<Circuit::FaninSpec>& merged_fanins) {
  const auto index_of = [&](const Circuit::FaninSpec& f) {
    for (std::size_t i = 0; i < merged_fanins.size(); ++i) {
      if (merged_fanins[i].driver == f.driver && merged_fanins[i].weight == f.weight) {
        return static_cast<int>(i);
      }
    }
    TS_ASSERT(false);
    return -1;
  };
  const int arity = static_cast<int>(merged_fanins.size());
  TruthTable result = TruthTable::constant(arity, false);
  for (std::uint32_t x = 0; x < result.num_bits(); ++x) {
    std::uint32_t p_in = 0;
    for (std::size_t i = 0; i < producer.fanins.size(); ++i) {
      if ((x >> index_of(producer.fanins[i])) & 1) p_in |= std::uint32_t{1} << i;
    }
    const bool p_val = producer.func.bit(p_in);
    std::uint32_t c_in = 0;
    for (std::size_t i = 0; i < consumer.fanins.size(); ++i) {
      const bool v = (i == slot) ? p_val : (((x >> index_of(consumer.fanins[i])) & 1) != 0);
      if (v) c_in |= std::uint32_t{1} << i;
    }
    if (consumer.func.bit(c_in)) result.set_bit(x, true);
  }
  return result;
}

}  // namespace

Circuit pack_luts(const Circuit& c, int k, PackStats* stats) {
  // Mutable working copy of the LUT network.
  std::vector<Lut> luts(static_cast<std::size_t>(c.num_nodes()));
  std::vector<int> fanout_uses(static_cast<std::size_t>(c.num_nodes()), 0);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v)) continue;
    luts[static_cast<std::size_t>(v)].func = c.function(v);
    for (const EdgeId e : c.fanin_edges(v)) {
      luts[static_cast<std::size_t>(v)].fanins.push_back({c.edge(e).from, c.edge(e).weight});
    }
  }
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    ++fanout_uses[static_cast<std::size_t>(c.edge(e).from)];
  }

  PackStats local;
  local.luts_before = c.num_gates();

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < c.num_nodes(); ++v) {
      Lut& consumer = luts[static_cast<std::size_t>(v)];
      if (!c.is_gate(v) || !consumer.alive) continue;
      for (std::size_t slot = 0; slot < consumer.fanins.size(); ++slot) {
        const Circuit::FaninSpec fin = consumer.fanins[slot];
        if (fin.weight != 0 || !c.is_gate(fin.driver) || fin.driver == v) continue;
        Lut& producer = luts[static_cast<std::size_t>(fin.driver)];
        if (!producer.alive || producer.fanins.empty()) continue;
        if (fanout_uses[static_cast<std::size_t>(fin.driver)] != 1) continue;
        // Merged support, deduplicated by (driver, weight).
        std::vector<Circuit::FaninSpec> merged;
        const auto add_unique = [&](const Circuit::FaninSpec& f) {
          for (const auto& g : merged) {
            if (g.driver == f.driver && g.weight == f.weight) return;
          }
          merged.push_back(f);
        };
        for (std::size_t i = 0; i < consumer.fanins.size(); ++i) {
          if (i != slot) add_unique(consumer.fanins[i]);
        }
        for (const auto& f : producer.fanins) add_unique(f);
        if (static_cast<int>(merged.size()) > k) continue;

        consumer.func = merge_functions(consumer, producer, slot, merged);
        // Re-balance the use counts: the old consumer slots and all producer
        // slots disappear; the merged slots take their place.
        for (const auto& f : consumer.fanins) {
          --fanout_uses[static_cast<std::size_t>(f.driver)];
        }
        for (const auto& f : producer.fanins) {
          --fanout_uses[static_cast<std::size_t>(f.driver)];
        }
        for (const auto& f : merged) {
          ++fanout_uses[static_cast<std::size_t>(f.driver)];
        }
        consumer.fanins = merged;
        producer.alive = false;
        ++local.merges;
        changed = true;
        break;  // consumer changed; revisit it on the next sweep
      }
    }
  }

  // Emit the packed circuit.
  Circuit out;
  std::vector<NodeId> to_out(static_cast<std::size_t>(c.num_nodes()), kNoNode);
  for (const NodeId pi : c.pis()) to_out[static_cast<std::size_t>(pi)] = out.add_pi(c.name(pi));
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v) && luts[static_cast<std::size_t>(v)].alive) {
      to_out[static_cast<std::size_t>(v)] = out.declare_gate(c.name(v));
    }
  }
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v) || !luts[static_cast<std::size_t>(v)].alive) continue;
    std::vector<Circuit::FaninSpec> fanins;
    for (const auto& f : luts[static_cast<std::size_t>(v)].fanins) {
      const NodeId d = to_out[static_cast<std::size_t>(f.driver)];
      TS_ASSERT(d != kNoNode);
      fanins.push_back({d, f.weight});
    }
    out.finish_gate(to_out[static_cast<std::size_t>(v)], luts[static_cast<std::size_t>(v)].func,
                    fanins);
  }
  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    const NodeId d = to_out[static_cast<std::size_t>(e.from)];
    TS_ASSERT(d != kNoNode);
    out.add_po(c.name(po), {d, e.weight});
  }
  out.validate();

  local.luts_after = out.num_gates();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace turbosyn
