#pragma once
// K-feasible cuts on combinational cones (the FlowMap network construction).
//
// For a root t with fanin labels already fixed, the question "is there a cut
// of t's fanin cone whose cut nodes all have label <= h and whose size is at
// most limit?" reduces to a max-flow <= limit test on the node-split cone
// network: nodes with label > h (and the root) collapse into the sink, every
// other cone node gets capacity 1, and cone leaves hang off the source.

#include <optional>
#include <span>
#include <vector>

#include "netlist/circuit.hpp"

namespace turbosyn {

/// Minimum cut of root's combinational fanin cone with all cut-node labels
/// <= height_limit; nullopt if every such cut has more than size_limit
/// nodes (or height_limit < 0). The returned cut is in deterministic node
/// order, never contains the root, and covers every path into the cone.
/// All edges in the cone must have weight 0.
std::optional<std::vector<NodeId>> min_height_cut(const Circuit& c, NodeId root,
                                                  std::span<const int> label, int height_limit,
                                                  int size_limit);

}  // namespace turbosyn
