#include "mapping/seq_split.hpp"

#include <map>

#include "base/check.hpp"
#include "netlist/gates.hpp"

namespace turbosyn {
namespace {

std::string pseudo_pi_name(const Circuit& c, NodeId driver, int weight) {
  return "$ffin:" + c.name(driver) + ":" + std::to_string(weight);
}

std::string pseudo_po_name(const Circuit& c, NodeId driver) {
  return "$ffsrc:" + c.name(driver);
}

}  // namespace

SequentialSplit split_at_registers(const Circuit& c) {
  SequentialSplit split;
  Circuit& comb = split.comb;

  std::vector<NodeId> to_comb(static_cast<std::size_t>(c.num_nodes()), kNoNode);
  for (const NodeId pi : c.pis()) to_comb[static_cast<std::size_t>(pi)] = comb.add_pi(c.name(pi));
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v)) to_comb[static_cast<std::size_t>(v)] = comb.declare_gate(c.name(v));
  }

  std::map<std::pair<NodeId, int>, NodeId> pseudo;  // (driver, weight) -> comb PI
  std::map<NodeId, bool> needs_src;                 // drivers observed through registers
  const auto boundary = [&](NodeId driver, int weight) -> Circuit::FaninSpec {
    if (weight == 0) return {to_comb[static_cast<std::size_t>(driver)], 0};
    const auto [it, inserted] = pseudo.emplace(std::make_pair(driver, weight), kNoNode);
    if (inserted) {
      it->second = comb.add_pi(pseudo_pi_name(c, driver, weight));
      split.pseudo_pi.emplace(it->second,
                              SequentialSplit::RegisteredSignal{driver, weight});
      needs_src[driver] = true;
    }
    return {it->second, 0};
  };

  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v)) continue;
    std::vector<Circuit::FaninSpec> fanins;
    for (const EdgeId e : c.fanin_edges(v)) {
      fanins.push_back(boundary(c.edge(e).from, c.edge(e).weight));
    }
    comb.finish_gate(to_comb[static_cast<std::size_t>(v)], c.function(v), fanins);
  }
  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    comb.add_po(c.name(po), boundary(e.from, e.weight));
  }
  for (const auto& [driver, unused] : needs_src) {
    (void)unused;
    const NodeId po = comb.add_po(pseudo_po_name(c, driver),
                                  {to_comb[static_cast<std::size_t>(driver)], 0});
    split.pseudo_po.emplace(po, driver);
  }
  comb.validate();
  return split;
}

Circuit merge_registers(const Circuit& original, const SequentialSplit& split,
                        const Circuit& mapped_comb) {
  Circuit out;
  std::vector<NodeId> to_out(static_cast<std::size_t>(mapped_comb.num_nodes()), kNoNode);
  for (const NodeId pi : original.pis()) {
    const NodeId mpi = mapped_comb.find(original.name(pi));
    TS_CHECK(mpi != kNoNode, "mapped circuit lost PI '" << original.name(pi) << "'");
    to_out[static_cast<std::size_t>(mpi)] = out.add_pi(original.name(pi));
  }
  for (NodeId v = 0; v < mapped_comb.num_nodes(); ++v) {
    if (mapped_comb.is_gate(v)) to_out[static_cast<std::size_t>(v)] = out.declare_gate(mapped_comb.name(v));
  }

  // Resolves a mapped_comb node to the final-circuit fanin it represents:
  // gates and real PIs map 1:1; pseudo-PIs become weighted edges from the
  // mapped driver of the corresponding original register source.
  const auto resolve = [&](NodeId v) -> Circuit::FaninSpec {
    if (to_out[static_cast<std::size_t>(v)] != kNoNode) {
      return {to_out[static_cast<std::size_t>(v)], 0};
    }
    TS_CHECK(mapped_comb.is_pi(v), "unmapped internal node in merge");
    const NodeId comb_pi = split.comb.find(mapped_comb.name(v));
    const auto sig_it = split.pseudo_pi.find(comb_pi);
    TS_CHECK(sig_it != split.pseudo_pi.end(),
             "mapped circuit has unknown PI '" << mapped_comb.name(v) << "'");
    const auto& sig = sig_it->second;
    const NodeId src_po = mapped_comb.find(pseudo_po_name(original, sig.driver));
    TS_CHECK(src_po != kNoNode, "mapped circuit lost register source '"
                                    << original.name(sig.driver) << "'");
    const auto& e = mapped_comb.edge(mapped_comb.fanin_edges(src_po)[0]);
    TS_ASSERT(e.weight == 0);
    const NodeId driver_out = to_out[static_cast<std::size_t>(e.from)];
    TS_CHECK(driver_out != kNoNode, "register source resolves to a pseudo node");
    return {driver_out, sig.weight};
  };

  for (NodeId v = 0; v < mapped_comb.num_nodes(); ++v) {
    if (!mapped_comb.is_gate(v)) continue;
    std::vector<Circuit::FaninSpec> fanins;
    for (const EdgeId e : mapped_comb.fanin_edges(v)) {
      TS_ASSERT(mapped_comb.edge(e).weight == 0);
      fanins.push_back(resolve(mapped_comb.edge(e).from));
    }
    out.finish_gate(to_out[static_cast<std::size_t>(v)], mapped_comb.function(v), fanins);
  }
  for (const NodeId po : mapped_comb.pos()) {
    if (mapped_comb.name(po).rfind("$ffsrc:", 0) == 0) continue;  // pseudo boundary
    const auto& e = mapped_comb.edge(mapped_comb.fanin_edges(po)[0]);
    out.add_po(mapped_comb.name(po), resolve(e.from));
  }
  out.validate();
  return out;
}

}  // namespace turbosyn
