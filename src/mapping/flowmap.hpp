#pragma once
// FlowMap (depth-optimal combinational K-LUT mapping, Cong–Ding '94) and
// FlowSYN (FlowMap + OBDD functional decomposition to beat the combinational
// depth limit, Cong–Ding '93).
//
// Both run on a purely combinational circuit (all edge weights 0). Labels:
// l(PI) = 0; for a gate t with p = max fanin label, l(t) = p if a K-feasible
// cut of height <= p-1 exists (max-flow test), else p+1 — unless FlowSYN
// resynthesis finds a wide min-cut (size <= Cmax) whose function decomposes
// into K-LUTs with the critical inputs kept in the free set, which also
// achieves l(t) = p.

#include <optional>
#include <vector>

#include "decomp/roth_karp.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

struct FlowMapOptions {
  int k = 5;                        // LUT input count
  bool enable_decomposition = false;  // false = FlowMap, true = FlowSYN
  int cmax = 15;                    // max resynthesis cut width (paper: 15)
  int min_cut_height_span = 2;      // try min-cuts at heights p-1 .. p-span
  bool use_bdd = true;              // decomposition multiplicity engine
};

struct NodeMapping {
  int label = 0;
  std::vector<NodeId> cut;                 // LUT inputs if not resynthesized
  std::optional<DecompResult> decomp;      // LUT DAG over `cut` if resynthesized
};

struct FlowMapResult {
  std::vector<NodeMapping> nodes;  // indexed by NodeId
  int depth = 0;                   // max label over PO drivers
};

/// Computes labels and per-node cuts. The circuit must be combinational
/// (every edge weight 0) and k-bounded.
FlowMapResult flowmap(const Circuit& c, const FlowMapOptions& options);

/// Materializes the LUT network chosen by flowmap(): walks back from the
/// POs, instantiates one LUT (or decomposition DAG) per needed node. The
/// result is a combinational Circuit of K-LUTs with the same PIs/POs.
Circuit generate_mapped_circuit(const Circuit& c, const FlowMapResult& result,
                                const FlowMapOptions& options);

}  // namespace turbosyn
