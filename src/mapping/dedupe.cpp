#include "mapping/dedupe.hpp"

#include <deque>
#include <map>
#include <unordered_set>
#include <vector>

#include "base/check.hpp"

namespace turbosyn {
namespace {

/// Union-find over node ids (path-compressing find).
NodeId find_rep(std::vector<NodeId>& rep, NodeId v) {
  while (rep[static_cast<std::size_t>(v)] != v) {
    rep[static_cast<std::size_t>(v)] = rep[static_cast<std::size_t>(rep[static_cast<std::size_t>(v)])];
    v = rep[static_cast<std::size_t>(v)];
  }
  return v;
}

}  // namespace

Circuit dedupe_luts(const Circuit& c, DedupeStats* stats) {
  std::vector<NodeId> rep(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) rep[static_cast<std::size_t>(v)] = v;

  DedupeStats local;
  local.before = c.num_gates();

  bool changed = true;
  while (changed) {
    changed = false;
    ++local.rounds;
    // Key: function hash + resolved (driver, weight) fanin list.
    std::map<std::pair<std::uint64_t, std::vector<std::int64_t>>, NodeId> seen;
    for (NodeId v = 0; v < c.num_nodes(); ++v) {
      if (!c.is_gate(v) || find_rep(rep, v) != v) continue;
      std::vector<std::int64_t> fanins;
      for (const EdgeId e : c.fanin_edges(v)) {
        const NodeId d = find_rep(rep, c.edge(e).from);
        fanins.push_back((static_cast<std::int64_t>(d) << 20) | c.edge(e).weight);
      }
      const auto key = std::make_pair(c.function(v).hash(), std::move(fanins));
      const auto [it, inserted] = seen.emplace(key, v);
      if (!inserted && c.function(it->second) == c.function(v)) {
        rep[static_cast<std::size_t>(v)] = it->second;
        changed = true;
      }
    }
  }

  // Emit representatives reachable from the POs.
  std::unordered_set<NodeId> live;
  std::deque<NodeId> queue;
  const auto mark = [&](NodeId v) {
    const NodeId r = find_rep(rep, v);
    if (live.insert(r).second) queue.push_back(r);
  };
  for (const NodeId po : c.pos()) mark(c.edge(c.fanin_edges(po)[0]).from);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    if (!c.is_gate(v)) continue;
    for (const EdgeId e : c.fanin_edges(v)) mark(c.edge(e).from);
  }

  Circuit out;
  std::vector<NodeId> to_out(static_cast<std::size_t>(c.num_nodes()), kNoNode);
  for (const NodeId pi : c.pis()) to_out[static_cast<std::size_t>(pi)] = out.add_pi(c.name(pi));
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v) && live.count(v) != 0) {
      to_out[static_cast<std::size_t>(v)] = out.declare_gate(c.name(v));
    }
  }
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v) || live.count(v) == 0) continue;
    std::vector<Circuit::FaninSpec> fanins;
    for (const EdgeId e : c.fanin_edges(v)) {
      const NodeId d = to_out[static_cast<std::size_t>(find_rep(rep, c.edge(e).from))];
      TS_ASSERT(d != kNoNode);
      fanins.push_back({d, c.edge(e).weight});
    }
    out.finish_gate(to_out[static_cast<std::size_t>(v)], c.function(v), fanins);
  }
  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    out.add_po(c.name(po), {to_out[static_cast<std::size_t>(find_rep(rep, e.from))], e.weight});
  }
  out.validate();

  local.after = out.num_gates();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace turbosyn
