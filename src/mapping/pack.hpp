#pragma once
// Greedy LUT packing (the mpack/flowpack-flavored post-processing).
//
// After mapping generation, a LUT u with a single fanout into LUT v over a
// register-free connection can be absorbed into v whenever the merged
// support still fits in K inputs. This only shortens paths, so depth and
// MDR ratio never degrade. The paper uses mpack [4] and flowpack [6] here
// and notes the post-processing is not its contribution; this greedy pass
// plays the same role.

#include "netlist/circuit.hpp"

namespace turbosyn {

struct PackStats {
  int luts_before = 0;
  int luts_after = 0;
  int merges = 0;
};

/// Returns a functionally equivalent circuit with single-fanout LUTs packed
/// into their consumers where the merged input count stays <= k.
Circuit pack_luts(const Circuit& c, int k, PackStats* stats = nullptr);

}  // namespace turbosyn
