#include "mapping/cone_cut.hpp"

#include <algorithm>
#include <unordered_map>

#include "base/check.hpp"
#include "graph/max_flow.hpp"

namespace turbosyn {

std::optional<std::vector<NodeId>> min_height_cut(const Circuit& c, NodeId root,
                                                  std::span<const int> label, int height_limit,
                                                  int size_limit) {
  TS_CHECK(size_limit >= 1, "cut size limit must be positive");
  if (height_limit < 0) return std::nullopt;

  // Collect the fanin cone (root included) over zero-weight edges.
  std::vector<NodeId> cone;
  std::unordered_map<NodeId, int> cone_index;  // node -> dense index
  cone.push_back(root);
  cone_index.emplace(root, 0);
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const NodeId v = cone[i];
    // Only expand past nodes that are (or must be) inside the LUT: the root
    // and nodes whose label exceeds the height limit. Nodes that may sit on
    // the cut still need their fanins reachable for flow correctness, so
    // expand everything — cuts deeper than a splittable node matter.
    for (const EdgeId e : c.fanin_edges(v)) {
      TS_CHECK(c.edge(e).weight == 0, "min_height_cut crossed a registered edge");
      const NodeId u = c.edge(e).from;
      if (cone_index.emplace(u, static_cast<int>(cone.size())).second) cone.push_back(u);
    }
  }

  // Node-split flow network. Collapsed nodes (root, label > height_limit)
  // share the sink; splittable nodes get in->out with capacity 1; cone
  // leaves (no fanins) attach to the source.
  MaxFlow flow;
  const int source = flow.add_node();
  const int sink = flow.add_node();
  std::vector<int> in_id(cone.size(), -1);
  std::vector<int> out_id(cone.size(), -1);
  std::vector<bool> collapsed(cone.size(), false);
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const NodeId v = cone[i];
    collapsed[i] = (v == root) || label[static_cast<std::size_t>(v)] > height_limit;
    if (collapsed[i]) {
      in_id[i] = out_id[i] = sink;
    } else {
      in_id[i] = flow.add_node();
      out_id[i] = flow.add_node();
      flow.add_arc(in_id[i], out_id[i], 1);
    }
  }
  for (std::size_t i = 0; i < cone.size(); ++i) {
    const NodeId v = cone[i];
    const auto fanins = c.fanin_edges(v);
    if (fanins.empty()) {
      if (!collapsed[i]) flow.add_arc(source, in_id[i], MaxFlow::kInfinity);
      // A collapsed leaf (can only be the root as a constant) needs no arc.
      continue;
    }
    for (const EdgeId e : fanins) {
      const int u = cone_index.at(c.edge(e).from);
      if (out_id[static_cast<std::size_t>(u)] == sink && in_id[i] == sink) continue;
      flow.add_arc(out_id[static_cast<std::size_t>(u)], in_id[i], MaxFlow::kInfinity);
    }
  }

  const std::int64_t value = flow.compute(source, sink, size_limit);
  if (value > size_limit) return std::nullopt;

  const std::vector<bool> side = flow.min_cut_source_side();
  std::vector<NodeId> cut;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    if (collapsed[i]) continue;
    if (side[static_cast<std::size_t>(in_id[i])] && !side[static_cast<std::size_t>(out_id[i])]) {
      cut.push_back(cone[i]);
    }
  }
  std::sort(cut.begin(), cut.end());
  TS_ASSERT(static_cast<std::int64_t>(cut.size()) == value);
  return cut;
}

}  // namespace turbosyn
