#pragma once
// Splitting a sequential circuit at its registers (and merging back).
//
// FlowSYN-s — the strongest prior-art baseline in the paper — cuts the
// circuit at all FFs, maps every combinational block independently, then
// stitches the mapped blocks back together with the original FFs. The split
// introduces a pseudo-PI per distinct (driver, register-count) signal and a
// pseudo-PO per register driver so the mapper must keep those nodes
// observable.

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/circuit.hpp"

namespace turbosyn {

struct SequentialSplit {
  Circuit comb;  // combinational circuit (every edge weight 0)
  /// Original driver node feeding pseudo-PI i of `comb`, plus its delay.
  struct RegisteredSignal {
    NodeId driver = kNoNode;  // node in the ORIGINAL circuit
    int weight = 0;           // number of FFs between driver and this signal
  };
  /// comb PI node -> registered signal (absent for real PIs).
  std::unordered_map<NodeId, RegisteredSignal> pseudo_pi;
  /// comb PO node -> original driver it observes (absent for real POs).
  std::unordered_map<NodeId, NodeId> pseudo_po;
};

/// Cuts at all registers. Real PI/PO/gate names are preserved.
SequentialSplit split_at_registers(const Circuit& c);

/// Re-assembles a sequential circuit from a mapped version of split.comb:
/// pseudo-PIs become weighted edges from the mapped driver (located via the
/// pseudo-PO of the same original driver), pseudo boundary nodes disappear.
/// `mapped_comb` must have the same PI/PO names as split.comb.
Circuit merge_registers(const Circuit& original, const SequentialSplit& split,
                        const Circuit& mapped_comb);

}  // namespace turbosyn
