#pragma once
// Structural LUT deduplication (strash-style).
//
// Sequential mapping generation replicates logic freely (node replication is
// part of the retiming-aware formulation) and TurboSYN's decomposition can
// emit identical encoder LUTs for different roots. Two gates with the same
// function and the same (driver, register-count) fanin list compute the same
// signal, so one can be dropped. Iterates to a fixpoint; a cheap stand-in
// for the multi-output decomposition the paper lists as future work.

#include "netlist/circuit.hpp"

namespace turbosyn {

struct DedupeStats {
  int before = 0;
  int after = 0;
  int rounds = 0;
};

/// Returns an equivalent circuit with structurally identical gates merged.
Circuit dedupe_luts(const Circuit& c, DedupeStats* stats = nullptr);

}  // namespace turbosyn
