#include "mapping/flowmap.hpp"

#include <algorithm>
#include <unordered_map>

#include "base/check.hpp"
#include "graph/scc.hpp"
#include "mapping/cone_cut.hpp"
#include "sim/cone.hpp"

namespace turbosyn {
namespace {

std::vector<NodeId> trivial_cut(const Circuit& c, NodeId t) {
  std::vector<NodeId> cut;
  for (const EdgeId e : c.fanin_edges(t)) cut.push_back(c.edge(e).from);
  std::sort(cut.begin(), cut.end());
  cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
  return cut;
}

}  // namespace

FlowMapResult flowmap(const Circuit& c, const FlowMapOptions& options) {
  TS_CHECK(c.is_k_bounded(options.k), "flowmap requires a k-bounded circuit");
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    TS_CHECK(c.edge(e).weight == 0, "flowmap requires a combinational circuit");
  }

  FlowMapResult result;
  result.nodes.assign(static_cast<std::size_t>(c.num_nodes()), NodeMapping{});
  std::vector<int> label(static_cast<std::size_t>(c.num_nodes()), 0);

  const Digraph g = c.to_digraph();
  for (const NodeId t : topological_order(g)) {
    NodeMapping& m = result.nodes[static_cast<std::size_t>(t)];
    if (c.is_pi(t)) continue;
    if (c.is_po(t)) {
      m.label = label[static_cast<std::size_t>(c.edge(c.fanin_edges(t)[0]).from)];
      label[static_cast<std::size_t>(t)] = m.label;
      result.depth = std::max(result.depth, m.label);
      continue;
    }
    if (c.fanin_edges(t).empty()) {  // constant: free, like a PI
      m.label = 0;
      m.cut = {};
      continue;
    }
    int p = 0;
    for (const EdgeId e : c.fanin_edges(t)) {
      p = std::max(p, label[static_cast<std::size_t>(c.edge(e).from)]);
    }
    // Try l(t) = p with a K-feasible cut of height <= p-1.
    if (auto cut = min_height_cut(c, t, label, p - 1, options.k)) {
      m.label = p;
      m.cut = std::move(*cut);
    } else if (options.enable_decomposition) {
      // FlowSYN: widen to a min-cut (<= Cmax inputs) at decreasing heights
      // and resynthesize the cut function.
      m.label = p + 1;
      for (int h = p - 1; h >= p - options.min_cut_height_span && h >= 0; --h) {
        const auto wide = min_height_cut(c, t, label, h, options.cmax);
        if (!wide) break;  // cuts only get wider as the height shrinks
        const TruthTable f = cone_truth_table(c, t, *wide);
        std::vector<int> eff(wide->size());
        for (std::size_t i = 0; i < wide->size(); ++i) {
          eff[i] = label[static_cast<std::size_t>((*wide)[i])];
        }
        DecompOptions dopt;
        dopt.k = options.k;
        dopt.use_bdd = options.use_bdd;
        DecompResult d = decompose_for_label(f, eff, p, dopt);
        if (d.success) {
          m.label = p;
          m.cut = std::move(*wide);
          m.decomp = std::move(d);
          break;
        }
      }
      if (m.label == p + 1) m.cut = trivial_cut(c, t);
    } else {
      m.label = p + 1;
      m.cut = trivial_cut(c, t);
    }
    label[static_cast<std::size_t>(t)] = m.label;
  }
  return result;
}

Circuit generate_mapped_circuit(const Circuit& c, const FlowMapResult& result,
                                const FlowMapOptions& options) {
  Circuit out;
  std::unordered_map<NodeId, NodeId> mapped;  // original -> LUT node in `out`
  for (const NodeId pi : c.pis()) mapped.emplace(pi, out.add_pi(c.name(pi)));

  int fresh = 0;
  // Recursively materialize the LUT rooted at original node v.
  auto build = [&](auto&& self, NodeId v) -> NodeId {
    const auto it = mapped.find(v);
    if (it != mapped.end()) return it->second;
    TS_CHECK(c.is_gate(v), "mapping generation reached an unmapped non-gate");
    const NodeMapping& m = result.nodes[static_cast<std::size_t>(v)];
    std::vector<Circuit::FaninSpec> inputs;
    inputs.reserve(m.cut.size());
    for (const NodeId u : m.cut) inputs.push_back({self(self, u), 0});
    NodeId root;
    if (m.decomp.has_value()) {
      // Encoder LUTs first, then the decomposition root takes v's name.
      std::vector<NodeId> lut_node(m.decomp->luts.size(), kNoNode);
      for (std::size_t i = 0; i < m.decomp->luts.size(); ++i) {
        const DecompLut& lut = m.decomp->luts[i];
        std::vector<Circuit::FaninSpec> fanins;
        for (const DecompFanin& fin : lut.fanins) {
          if (fin.kind == DecompFanin::Kind::kInput) {
            fanins.push_back(inputs[static_cast<std::size_t>(fin.index)]);
          } else {
            fanins.push_back({lut_node[static_cast<std::size_t>(fin.index)], 0});
          }
        }
        const bool is_root = (i + 1 == m.decomp->luts.size());
        const std::string name =
            is_root ? c.name(v) : c.name(v) + "$e" + std::to_string(fresh++);
        lut_node[i] = out.add_gate(name, lut.func, fanins);
      }
      root = lut_node.back();
    } else {
      const TruthTable f = m.cut.empty() ? c.function(v) : cone_truth_table(c, v, m.cut);
      root = out.add_gate(c.name(v), f, inputs);
    }
    mapped.emplace(v, root);
    return root;
  };

  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    out.add_po(c.name(po), {build(build, e.from), 0});
  }
  out.validate();
  TS_CHECK(out.is_k_bounded(options.k), "mapped circuit exceeds K inputs per LUT");
  return out;
}

}  // namespace turbosyn
