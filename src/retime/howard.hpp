#pragma once
// Howard's policy-iteration algorithm for the maximum cycle ratio.
//
// An independent engine for the same quantity cycle_ratio.hpp computes by
// binary search + Bellman–Ford: max over cycles of delay(C)/registers(C).
// Policy iteration converges in few iterations in practice and serves both
// as a faster alternative on large graphs and as a cross-check in tests.
//
// Formulation: edge value val(e) = delay(head(e)), edge time tau(e) = w(e).
// We seek the maximum of sum(val)/sum(tau) over cycles with sum(tau) > 0.
// Combinational loops (sum(tau) == 0 with positive value) are rejected, as
// in cycle_ratio.hpp.

#include <span>

#include "retime/cycle_ratio.hpp"

namespace turbosyn {

/// Exact MDR ratio via Howard's algorithm. Throws turbosyn::Error on a
/// zero-register positive-delay cycle. Returns ratio 0 for acyclic graphs.
CycleRatioResult max_cycle_ratio_howard(const Digraph& g, std::span<const int> delay);

}  // namespace turbosyn
