#pragma once
// Maximum delay-to-register (MDR) ratio: max over all directed cycles C of
// delay(C) / registers(C).
//
// Papaefthymiou's theory (paper refs [16, 22]) says this ratio is the only
// lower bound on the clock period once both retiming and pipelining are
// allowed — TurboSYN therefore minimizes the MDR ratio of the mapped
// network. The computation is exact over rationals: an integer binary search
// narrows the range, then a cycle-ratio-improvement loop (find a positive
// cycle for the candidate ratio via Bellman–Ford on integer costs
// q*d(v) - p*w(e), jump to that cycle's exact ratio) converges to the max.

#include <span>
#include <vector>

#include "base/rational.hpp"
#include "graph/digraph.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

struct CycleRatioResult {
  /// 0 when the graph has no cycle with positive delay.
  Rational ratio = Rational(0, 1);
  /// Edges of a critical cycle achieving the ratio (empty if ratio is 0).
  std::vector<EdgeId> critical_cycle;
};

/// Exact MDR ratio. Throws turbosyn::Error if some cycle has positive delay
/// but zero registers (combinational loop — infinite ratio).
CycleRatioResult max_delay_to_register_ratio(const Digraph& g, std::span<const int> delay);

/// Convenience for circuits (unit delay model).
CycleRatioResult circuit_mdr(const Circuit& c);

/// Decision procedure: true iff some cycle has delay(C) > ratio * regs(C).
/// Exposed because the label-computation tests compare against it.
bool has_cycle_above_ratio(const Digraph& g, std::span<const int> delay, const Rational& ratio);

}  // namespace turbosyn
