#pragma once
// Leiserson–Saxe retiming on the unit-delay retiming graph.
//
// clock_period: longest purely-combinational (zero-weight) path delay.
// feasible_retiming: the FEAS algorithm — iteratively increment r(v) for
// nodes whose arrival time exceeds the target; converges within |V|-1
// rounds iff a legal retiming with period <= c exists. PIs and POs are
// pinned (r = 0) so I/O latency is preserved; pipelining (see pipeline.hpp)
// is the transformation that trades latency for period.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// Longest zero-weight-path delay; throws turbosyn::Error if the zero-weight
/// subgraph has a cycle (combinational loop).
std::int64_t clock_period(const Digraph& g, std::span<const int> delay);

/// FEAS. Returns the retiming r (one lag per node, pinned nodes forced to 0)
/// achieving period <= c, or nullopt if impossible.
std::optional<std::vector<int>> feasible_retiming(const Digraph& g, std::span<const int> delay,
                                                  std::int64_t c, std::span<const NodeId> pinned);

/// Minimum achievable period under retiming (binary search over FEAS) plus a
/// witness retiming.
struct RetimeResult {
  std::int64_t period = 0;
  std::vector<int> r;
};
RetimeResult min_period_retiming(const Digraph& g, std::span<const int> delay,
                                 std::span<const NodeId> pinned);

// ---- Circuit-level conveniences (unit delay model, PIs/POs pinned) ----

std::int64_t circuit_clock_period(const Circuit& c);

/// Applies a retiming in place: w_r(e) = w(e) + r(to) - r(from).
/// Throws if any weight would become negative.
void apply_retiming(Circuit& c, std::span<const int> r);

/// Retimes the circuit to minimum clock period; returns the new period.
std::int64_t retime_min_period(Circuit& c);

}  // namespace turbosyn
