#include "retime/pipeline.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/retiming.hpp"

namespace turbosyn {

void pipeline_inputs(Circuit& c, int stages) {
  TS_CHECK(stages >= 0, "pipeline stage count must be non-negative");
  if (stages == 0) return;
  for (const NodeId pi : c.pis()) {
    for (const EdgeId e : c.fanout_edges(pi)) {
      c.set_edge_weight(e, c.edge(e).weight + stages);
    }
  }
}

void pipeline_outputs(Circuit& c, int stages) {
  TS_CHECK(stages >= 0, "pipeline stage count must be non-negative");
  if (stages == 0) return;
  for (const NodeId po : c.pos()) {
    for (const EdgeId e : c.fanin_edges(po)) {
      c.set_edge_weight(e, c.edge(e).weight + stages);
    }
  }
}

PipelineResult pipeline_and_retime(Circuit& c, int max_stages, const RunBudget* budget) {
  const Rational mdr = circuit_mdr(c).ratio;
  const std::int64_t floor_target = std::max<std::int64_t>(1, mdr.ceil());

  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = c.delay(v);
  std::vector<NodeId> pinned(c.pis().begin(), c.pis().end());
  pinned.insert(pinned.end(), c.pos().begin(), c.pos().end());

  // Try the MDR bound first, then relax the target period; for each target,
  // grow the pipeline depth geometrically. The fallback (no pipelining,
  // plain min-period retiming) always succeeds.
  Status status = Status::kOk;
  const auto stopped = [&] {
    if (budget == nullptr || !budget->interrupted()) return false;
    status = budget->check();
    return true;
  };
  const std::int64_t fallback =
      min_period_retiming(c.to_digraph(), delay, pinned).period;
  std::int64_t configs = 0;
  for (std::int64_t target = floor_target; target < fallback && status == Status::kOk;
       ++target) {
    int stages = 1;
    while (stages <= max_stages) {
      if (stopped()) break;
      ++configs;
      Digraph g = c.to_digraph();
      for (const NodeId pi : c.pis()) {
        for (const EdgeId e : g.fanout_edges(pi)) {
          g.set_weight(e, g.edge(e).weight + stages);
        }
      }
      for (const NodeId po : c.pos()) {
        for (const EdgeId e : g.fanin_edges(po)) {
          g.set_weight(e, g.edge(e).weight + stages);
        }
      }
      if (auto r = feasible_retiming(g, delay, target, pinned)) {
        pipeline_inputs(c, stages);
        pipeline_outputs(c, stages);
        apply_retiming(c, *r);
        return PipelineResult{target, stages, configs, Status::kOk};
      }
      stages *= 2;
    }
  }
  const RetimeResult best = min_period_retiming(c.to_digraph(), delay, pinned);
  apply_retiming(c, best.r);
  return PipelineResult{best.period, 0, configs, status};
}

}  // namespace turbosyn
