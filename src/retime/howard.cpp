#include "retime/howard.hpp"

#include <algorithm>
#include <vector>

#include "base/check.hpp"
#include "graph/scc.hpp"

namespace turbosyn {
namespace {

/// Per-node policy-iteration state within one SCC.
struct NodeState {
  EdgeId policy = kNoEdge;  // chosen out-edge (stays inside the SCC)
  Rational sigma = Rational(0);  // ratio of the node's policy cycle
  Rational d = Rational(0);      // potential relative to the cycle
};

class HowardScc {
 public:
  HowardScc(const Digraph& g, std::span<const int> delay, std::span<const NodeId> nodes,
            std::span<const int> component_of, int comp)
      : g_(g), delay_(delay), nodes_(nodes) {
    // Initial policy: first out-edge that stays inside the SCC.
    for (const NodeId v : nodes) {
      for (const EdgeId e : g.fanout_edges(v)) {
        if (component_of[static_cast<std::size_t>(g.edge(e).to)] == comp) {
          state(v).policy = e;
          break;
        }
      }
      TS_ASSERT(state(v).policy != kNoEdge);  // SCC nodes have internal successors
    }
  }

  /// Runs policy iteration; returns the best cycle found.
  CycleRatioResult run() {
    CycleRatioResult best;
    // Policy iteration converges in finitely many steps; the guard is a
    // safety net far above anything observed.
    const int max_rounds = 50 + 10 * static_cast<int>(nodes_.size());
    for (int round = 0; round < max_rounds; ++round) {
      evaluate();
      if (!improve()) break;
    }
    for (const NodeId v : nodes_) {
      if (cycle_of_.count(v) != 0 &&
          (best.critical_cycle.empty() || state(v).sigma > best.ratio)) {
        best.ratio = state(v).sigma;
        best.critical_cycle = cycle_of_.at(v);
      }
    }
    return best;
  }

 private:
  NodeState& state(NodeId v) { return states_[v]; }

  /// Finds policy cycles, their ratios, and node potentials.
  void evaluate() {
    cycle_of_.clear();
    std::unordered_map<NodeId, int> color;  // 0 unseen, 1 on stack, 2 done
    for (const NodeId v : nodes_) color[v] = 0;

    for (const NodeId start : nodes_) {
      if (color[start] != 0) continue;
      // Walk the functional graph until a visited node.
      std::vector<NodeId> path;
      NodeId v = start;
      while (color[v] == 0) {
        color[v] = 1;
        path.push_back(v);
        v = g_.edge(state(v).policy).to;
      }
      if (color[v] == 1) {
        // Found a new cycle starting at v within `path`.
        const auto it = std::find(path.begin(), path.end(), v);
        std::vector<EdgeId> cycle;
        std::int64_t val = 0;
        std::int64_t tau = 0;
        for (auto p = it; p != path.end(); ++p) {
          const EdgeId e = state(*p).policy;
          cycle.push_back(e);
          val += delay_[static_cast<std::size_t>(g_.edge(e).to)];
          tau += g_.edge(e).weight;
        }
        TS_CHECK(tau > 0 || val == 0,
                 "combinational loop (positive delay, zero registers): ratio unbounded");
        const Rational sigma = tau > 0 ? Rational(val, tau) : Rational(0);
        // Anchor the cycle: d(v) = 0, then propagate backwards around it:
        // for policy edge u->w, d(u) = val(e) - sigma*tau(e) + d(w).
        state(v).sigma = sigma;
        state(v).d = Rational(0);
        std::vector<NodeId> cyc_nodes(it, path.end());
        for (std::size_t i = cyc_nodes.size(); i-- > 1;) {
          const NodeId u = cyc_nodes[i];
          const EdgeId e = state(u).policy;
          const NodeId w = g_.edge(e).to;
          state(u).sigma = sigma;
          state(u).d = Rational(delay_[static_cast<std::size_t>(g_.edge(e).to)]) -
                       sigma * Rational(g_.edge(e).weight) + state(w).d;
        }
        for (const NodeId u : cyc_nodes) cycle_of_[u] = cycle;
      }
      // Pop the path: tree nodes take values from their policy successor.
      for (auto p = path.rbegin(); p != path.rend(); ++p) {
        const NodeId u = *p;
        if (color[u] == 2) continue;
        const EdgeId e = state(u).policy;
        const NodeId w = g_.edge(e).to;
        if (cycle_of_.count(u) == 0) {
          state(u).sigma = state(w).sigma;
          state(u).d = Rational(delay_[static_cast<std::size_t>(g_.edge(e).to)]) -
                       state(u).sigma * Rational(g_.edge(e).weight) + state(w).d;
          cycle_of_[u] = cycle_of_.at(w);
        }
        color[u] = 2;
      }
    }
  }

  /// One improvement sweep; true if any policy changed.
  bool improve() {
    bool changed = false;
    for (const NodeId u : nodes_) {
      for (const EdgeId e : g_.fanout_edges(u)) {
        const NodeId v = g_.edge(e).to;
        if (states_.count(v) == 0) continue;  // leaves the SCC
        const NodeState& su = state(u);
        const NodeState& sv = state(v);
        bool better = false;
        if (sv.sigma > su.sigma) {
          better = true;
        } else if (sv.sigma == su.sigma) {
          const Rational cand = Rational(delay_[static_cast<std::size_t>(v)]) -
                                su.sigma * Rational(g_.edge(e).weight) + sv.d;
          if (cand > su.d) better = true;
        }
        if (better && e != su.policy) {
          state(u).policy = e;
          changed = true;
        }
      }
    }
    return changed;
  }

  const Digraph& g_;
  std::span<const int> delay_;
  std::span<const NodeId> nodes_;
  std::unordered_map<NodeId, NodeState> states_;
  std::unordered_map<NodeId, std::vector<EdgeId>> cycle_of_;
};

}  // namespace

CycleRatioResult max_cycle_ratio_howard(const Digraph& g, std::span<const int> delay) {
  TS_CHECK(static_cast<int>(delay.size()) == g.num_nodes(), "one delay per node required");
  const SccDecomposition scc = strongly_connected_components(g);
  CycleRatioResult best;
  for (std::size_t comp = 0; comp < scc.components.size(); ++comp) {
    const auto& nodes = scc.components[comp];
    bool has_cycle = nodes.size() > 1;
    if (!has_cycle) {
      for (const EdgeId e : g.fanout_edges(nodes[0])) {
        if (g.edge(e).to == nodes[0]) has_cycle = true;
      }
    }
    if (!has_cycle) continue;
    HowardScc howard(g, delay, nodes, scc.component_of, static_cast<int>(comp));
    const CycleRatioResult r = howard.run();
    if (r.ratio > best.ratio || best.critical_cycle.empty()) {
      if (!r.critical_cycle.empty() &&
          (best.critical_cycle.empty() || r.ratio > best.ratio)) {
        best = r;
      }
    }
  }
  return best;
}

}  // namespace turbosyn
