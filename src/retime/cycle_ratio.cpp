#include "retime/cycle_ratio.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "graph/bellman_ford.hpp"

namespace turbosyn {
namespace {

/// Positive cycle under costs q*d(to) - p*w(e), i.e. a cycle with
/// delay(C)/regs(C) > p/q (for regs(C) > 0; zero-register cycles with
/// positive delay also show up as positive, which is how combinational
/// loops are diagnosed).
PositiveCycle cycle_above(const Digraph& g, std::span<const int> delay, const Rational& ratio) {
  const std::int64_t p = ratio.num();
  const std::int64_t q = ratio.den();
  return find_positive_cycle(g, [&](EdgeId e) {
    const auto& edge = g.edge(e);
    return q * delay[static_cast<std::size_t>(edge.to)] - p * edge.weight;
  });
}

struct CycleMeasure {
  std::int64_t delay_sum = 0;
  std::int64_t weight_sum = 0;
};

CycleMeasure measure(const Digraph& g, std::span<const int> delay,
                     std::span<const EdgeId> cycle) {
  CycleMeasure m;
  for (const EdgeId e : cycle) {
    m.delay_sum += delay[static_cast<std::size_t>(g.edge(e).to)];
    m.weight_sum += g.edge(e).weight;
  }
  return m;
}

}  // namespace

bool has_cycle_above_ratio(const Digraph& g, std::span<const int> delay, const Rational& ratio) {
  return cycle_above(g, delay, ratio).found;
}

CycleRatioResult max_delay_to_register_ratio(const Digraph& g, std::span<const int> delay) {
  TS_CHECK(static_cast<int>(delay.size()) == g.num_nodes(), "one delay per node required");
  CycleRatioResult result;

  // Integer binary search on floor(ratio) to cut down improvement rounds.
  std::int64_t total_delay = 0;
  for (const int d : delay) total_delay += d;
  std::int64_t lo = 0;                    // ratio > lo has a witness (once found)
  std::int64_t hi = total_delay + 1;      // ratio > hi never
  if (!cycle_above(g, delay, Rational(0, 1)).found) return result;  // no positive-delay cycle
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (cycle_above(g, delay, Rational(mid, 1)).found) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  // Ratio improvement from p/q = lo upward.
  Rational current(lo, 1);
  PositiveCycle witness = cycle_above(g, delay, current);
  while (witness.found) {
    const CycleMeasure m = measure(g, delay, witness.edges);
    TS_CHECK(m.weight_sum > 0,
             "combinational loop (positive delay, zero registers): MDR ratio is unbounded");
    const Rational candidate(m.delay_sum, m.weight_sum);
    TS_ASSERT(candidate > current);
    result.ratio = candidate;
    result.critical_cycle = witness.edges;
    current = candidate;
    witness = cycle_above(g, delay, current);
  }
  return result;
}

CycleRatioResult circuit_mdr(const Circuit& c) {
  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = c.delay(v);
  return max_delay_to_register_ratio(c.to_digraph(), delay);
}

}  // namespace turbosyn
