#include "retime/retiming.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "base/check.hpp"
#include "graph/scc.hpp"

namespace turbosyn {
namespace {

/// Arrival times over the zero-weight subgraph of g with the per-node lag r
/// applied to edge weights; nullopt if the retimed zero-weight subgraph is
/// cyclic (infinite period).
std::optional<std::vector<std::int64_t>> arrival_times(const Digraph& g,
                                                       std::span<const int> delay,
                                                       std::span<const int> r) {
  const auto retimed_weight = [&](EdgeId e) {
    const auto& edge = g.edge(e);
    return edge.weight + r[static_cast<std::size_t>(edge.to)] -
           r[static_cast<std::size_t>(edge.from)];
  };
  std::vector<NodeId> order;
  try {
    order = topological_order(g, [&](EdgeId e) { return retimed_weight(e) != 0; });
  } catch (const Error&) {
    return std::nullopt;
  }
  std::vector<std::int64_t> at(static_cast<std::size_t>(g.num_nodes()), 0);
  for (const NodeId v : order) {
    std::int64_t best = 0;
    for (const EdgeId e : g.fanin_edges(v)) {
      if (retimed_weight(e) != 0) continue;
      best = std::max(best, at[static_cast<std::size_t>(g.edge(e).from)]);
    }
    at[static_cast<std::size_t>(v)] = best + delay[static_cast<std::size_t>(v)];
  }
  return at;
}

}  // namespace

std::int64_t clock_period(const Digraph& g, std::span<const int> delay) {
  const std::vector<int> zero(static_cast<std::size_t>(g.num_nodes()), 0);
  const auto at = arrival_times(g, delay, zero);
  TS_CHECK(at.has_value(), "combinational loop: clock period is unbounded");
  return at->empty() ? 0 : *std::max_element(at->begin(), at->end());
}

namespace {

/// Exact retiming feasibility via Leiserson–Saxe difference constraints:
/// W(u,v)/D(u,v) from per-source lexicographic Dijkstra, then Bellman–Ford
/// on   r(u) - r(v) <= w(e)              (legality)
///      r(u) - r(v) <= W(u,v) - 1        (whenever D(u,v) > c)
///      r(p) = r(q)                      (pinned nodes share a lag)
/// O(V E log V + V^2) building + O(V * #constraints) solving — used below
/// for graphs small enough to afford it.
std::optional<std::vector<int>> feasible_retiming_exact(const Digraph& g,
                                                        std::span<const int> delay,
                                                        std::int64_t c,
                                                        std::span<const NodeId> pinned) {
  const int n = g.num_nodes();
  // Lexicographic distance: (registers, -delay-sum-of-heads).
  struct Dist {
    std::int64_t w;
    std::int64_t neg_d;
    bool operator>(const Dist& o) const {
      return w != o.w ? w > o.w : neg_d > o.neg_d;
    }
  };
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // Difference-constraint edges: r(u) - r(v) <= bound  ==  arc v -> u, bound.
  struct Constraint {
    NodeId u;
    NodeId v;
    std::int64_t bound;
  };
  std::vector<Constraint> constraints;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    constraints.push_back({g.edge(e).from, g.edge(e).to, g.edge(e).weight});
  }
  for (std::size_t i = 1; i < pinned.size(); ++i) {
    constraints.push_back({pinned[i - 1], pinned[i], 0});
    constraints.push_back({pinned[i], pinned[i - 1], 0});
  }

  for (NodeId u = 0; u < n; ++u) {
    // Dijkstra from u; the source distance stays "unvisited" so that cycles
    // back to u produce a genuine W(u,u)/D(u,u).
    std::vector<Dist> dist(static_cast<std::size_t>(n), Dist{kInf, 0});
    using Entry = std::tuple<std::int64_t, std::int64_t, NodeId>;  // (w, -d, node)
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    const auto offer = [&](NodeId to, std::int64_t w, std::int64_t neg_d) {
      Dist& best = dist[static_cast<std::size_t>(to)];
      if (w < best.w || (w == best.w && neg_d < best.neg_d)) {
        best = Dist{w, neg_d};
        queue.emplace(w, neg_d, to);
      }
    };
    for (const EdgeId e : g.fanout_edges(u)) {
      const auto& edge = g.edge(e);
      offer(edge.to, edge.weight, -static_cast<std::int64_t>(delay[static_cast<std::size_t>(edge.to)]));
    }
    while (!queue.empty()) {
      const auto [w, neg_d, v] = queue.top();
      queue.pop();
      if (dist[static_cast<std::size_t>(v)].w != w ||
          dist[static_cast<std::size_t>(v)].neg_d != neg_d) {
        continue;  // stale entry
      }
      for (const EdgeId e : g.fanout_edges(v)) {
        const auto& edge = g.edge(e);
        offer(edge.to, w + edge.weight,
              neg_d - static_cast<std::int64_t>(delay[static_cast<std::size_t>(edge.to)]));
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (dist[static_cast<std::size_t>(v)].w >= kInf) continue;
      const std::int64_t total_delay =
          -dist[static_cast<std::size_t>(v)].neg_d + delay[static_cast<std::size_t>(u)];
      if (total_delay > c) {
        constraints.push_back({u, v, dist[static_cast<std::size_t>(v)].w - 1});
      }
    }
  }

  // Bellman–Ford from a virtual all-zero source; negative cycle = infeasible.
  std::vector<std::int64_t> r(static_cast<std::size_t>(n), 0);
  for (int round = 0; round <= n; ++round) {
    bool relaxed = false;
    for (const Constraint& cst : constraints) {
      const std::int64_t cand = r[static_cast<std::size_t>(cst.v)] + cst.bound;
      if (cand < r[static_cast<std::size_t>(cst.u)]) {
        r[static_cast<std::size_t>(cst.u)] = cand;
        relaxed = true;
      }
    }
    if (!relaxed) {
      const std::int64_t base = pinned.empty() ? 0 : r[static_cast<std::size_t>(pinned[0])];
      std::vector<int> result(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v) {
        result[static_cast<std::size_t>(v)] = static_cast<int>(r[static_cast<std::size_t>(v)] - base);
      }
      // Safety: the retimed graph must be legal and meet the period.
      const auto at = arrival_times(g, delay, result);
      if (!at.has_value()) return std::nullopt;
      for (const std::int64_t a : *at) {
        if (a > c) return std::nullopt;
      }
      return result;
    }
  }
  return std::nullopt;
}

/// Largest graph the exact solver is applied to; beyond it the conservative
/// increment-only FEAS below takes over (it never returns an illegal
/// retiming, but may miss solutions that need lags below the pinned I/O).
constexpr int kExactRetimingLimit = 1500;

}  // namespace

std::optional<std::vector<int>> feasible_retiming(const Digraph& g, std::span<const int> delay,
                                                  std::int64_t c, std::span<const NodeId> pinned) {
  TS_CHECK(c >= 0, "target period must be non-negative");
  const int n = g.num_nodes();
  TS_CHECK(static_cast<int>(delay.size()) == n, "one delay per node required");
  for (const int d : delay) {
    if (d > c) return std::nullopt;  // a single node already exceeds the period
  }
  if (n <= kExactRetimingLimit) return feasible_retiming_exact(g, delay, c, pinned);

  std::vector<bool> is_pinned(static_cast<std::size_t>(n), false);
  for (const NodeId v : pinned) is_pinned[static_cast<std::size_t>(v)] = true;

  std::vector<int> r(static_cast<std::size_t>(n), 0);
  // FEAS with pinned I/O: violators increment their lag; pinned nodes never
  // move. A zero-weight successor of a violator violates too, so the only
  // way a weight can go negative is an increment against a pinned head —
  // which proves that lag exceeded its legal maximum, hence infeasibility.
  // (With the I/O pinned, solutions requiring negative internal lags are
  // unreachable; pipelining — extra registers at the PI/PO boundary, see
  // pipeline.hpp — is the transformation that restores that headroom.)
  for (int round = 0; round <= n; ++round) {
    const auto at = arrival_times(g, delay, r);
    if (!at.has_value()) return std::nullopt;  // zero-weight cycle appeared
    bool violated = false;
    bool any_movable = false;
    for (NodeId v = 0; v < n; ++v) {
      if ((*at)[static_cast<std::size_t>(v)] > c) {
        violated = true;
        if (!is_pinned[static_cast<std::size_t>(v)]) {
          ++r[static_cast<std::size_t>(v)];
          any_movable = true;
        }
      }
    }
    if (!violated) return r;
    if (!any_movable) return std::nullopt;  // only pinned nodes violate
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      if (edge.weight + r[static_cast<std::size_t>(edge.to)] -
              r[static_cast<std::size_t>(edge.from)] <
          0) {
        return std::nullopt;  // lag exceeded the legal maximum
      }
    }
  }
  return std::nullopt;
}

RetimeResult min_period_retiming(const Digraph& g, std::span<const int> delay,
                                 std::span<const NodeId> pinned) {
  std::int64_t hi = clock_period(g, delay);
  std::int64_t lo = 0;
  for (const int d : delay) lo = std::max<std::int64_t>(lo, d);
  RetimeResult best{hi, std::vector<int>(static_cast<std::size_t>(g.num_nodes()), 0)};
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (auto r = feasible_retiming(g, delay, mid, pinned)) {
      best = RetimeResult{mid, std::move(*r)};
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

namespace {

std::vector<int> circuit_delays(const Circuit& c) {
  std::vector<int> delay(static_cast<std::size_t>(c.num_nodes()));
  for (NodeId v = 0; v < c.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = c.delay(v);
  return delay;
}

std::vector<NodeId> circuit_pinned(const Circuit& c) {
  std::vector<NodeId> pinned(c.pis().begin(), c.pis().end());
  pinned.insert(pinned.end(), c.pos().begin(), c.pos().end());
  return pinned;
}

}  // namespace

std::int64_t circuit_clock_period(const Circuit& c) {
  return clock_period(c.to_digraph(), circuit_delays(c));
}

void apply_retiming(Circuit& c, std::span<const int> r) {
  TS_CHECK(static_cast<int>(r.size()) == c.num_nodes(), "one lag per node required");
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    const auto& edge = c.edge(e);
    const int w = edge.weight + r[static_cast<std::size_t>(edge.to)] -
                  r[static_cast<std::size_t>(edge.from)];
    TS_CHECK(w >= 0, "retiming drives edge weight negative");
    c.set_edge_weight(e, w);
  }
}

std::int64_t retime_min_period(Circuit& c) {
  const RetimeResult result =
      min_period_retiming(c.to_digraph(), circuit_delays(c), circuit_pinned(c));
  apply_retiming(c, result.r);
  return result.period;
}

}  // namespace turbosyn
