#pragma once
// Pipelining: inserting flip-flop stages at the primary inputs.
//
// Pipelining adds the same number of FFs on every PI fanout edge; combined
// with retiming it eliminates critical I/O paths, so the clock period is
// bounded only by the MDR ratio of the loops (paper refs [16, 22]). This is
// the post-processing step that turns a minimum-MDR mapping into a
// minimum-clock-period implementation.

#include <cstdint>

#include "base/run_budget.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// Adds `stages` flip-flops to every PI fanout edge (changes I/O latency by
/// `stages` cycles, preserves the input-output function modulo that shift).
void pipeline_inputs(Circuit& c, int stages);

/// Adds `stages` flip-flops in front of every PO (output registers).
void pipeline_outputs(Circuit& c, int stages);

struct PipelineResult {
  std::int64_t period = 0;  // achieved clock period
  int stages = 0;           // pipeline stages inserted at the PIs
  /// (target period, depth) configurations tested by feasible retiming —
  /// the search's work metric, surfaced through trace/StageMetrics.
  std::int64_t configs_tried = 0;
  /// kOk unless the search was stopped by `budget` before it finished; the
  /// result is then the always-valid no-pipelining fallback.
  Status status = Status::kOk;
};

/// Minimizes the clock period using input pipelining + retiming. Searches
/// target periods from max(1, ceil(MDR)) upward and pipeline depths up to
/// max_stages; mutates the circuit to the winning configuration. `budget`
/// (optional) is polled between candidate configurations: once it fires, the
/// search stops and the plain min-period retiming fallback is applied.
PipelineResult pipeline_and_retime(Circuit& c, int max_stages = 64,
                                   const RunBudget* budget = nullptr);

}  // namespace turbosyn
