#pragma once
// Portfolio racing: run several registry engines on one circuit and keep the
// best result, cancelling engines that provably cannot win.
//
// Racing protocol (DESIGN.md §15). Every engine gets its own FlowDriver,
// its own fresh ProbeLedger, a forked RunBudget slice and a per-engine
// CancelToken chained under the flow-level token. The moment an engine
// finishes *exactly* (status kOk — a certificate), every other engine E
// that provably cannot beat it is cancelled:
//
//   cancel E on winner W  iff  never_beats(E, W)  and
//                              (strength(E) < strength(W) or W is listed
//                               earlier than E)
//
// never_beats() (core/engines.hpp) encodes the dominance facts —
// decomposition is strictly label-improving, a label search never loses to
// the search-free baseline, equal strength + equal quality key means an
// identical certified φ — and the position tie-break keeps the selection
// deterministic: an engine is only cancelled when the already-finished
// winner would also be preferred over it by the selection order
// (portfolio_prefers). Running the race is therefore bit-identical to
// running every engine to completion and picking the best, which is exactly
// what the fuzz oracle asserts.
//
// Selection. Among engines that finished with a certificate, the winner
// minimizes (φ, -strength, list position). When no engine certified (global
// deadline, SIGINT), the fallback is the least-degraded finished result
// under the same tie-break — still a valid, equivalent network, per the
// anytime guarantee of every engine.
//
// Ledger merge. The winner's probe records are tagged with its name; every
// loser's records follow in list order, tagged likewise. Uniqueness is
// re-enforced on (engine, mode, φ) as the merge replays through a
// ProbeLedger, and the winner's certificate stays authoritative: the
// auditor restricts severity/certification checks to records tagged with
// FlowResult::engine, so a losing engine's degraded probes can never
// outrank the winner's certificate.

#include <cstdint>
#include <string>
#include <vector>

#include "core/engines.hpp"

namespace turbosyn {

struct PortfolioOptions {
  /// Race the engines concurrently over ThreadPool::global(). Top-level
  /// callers only: for_each does not nest, so contexts already running
  /// inside a pool lane (the batch scheduler, the daemon's workers) must
  /// use the sequential mode — engines then run in list order and a
  /// certificate lets the runner *skip* every dominated engine that has not
  /// started yet, which preserves most of the wall-clock win.
  bool concurrent = true;
  /// Pool workers to involve (0 = all). Concurrent mode forces each
  /// engine's own label search to num_threads = 1 — the lanes are the
  /// parallelism.
  int max_workers = 0;
  /// Optional wall-clock pool to carve per-engine deadline slices from;
  /// unused slice time is refunded, so the pool meters actual spend. Not
  /// owned. nullptr = each engine simply forks the flow budget.
  BudgetPool* budget_pool = nullptr;
  /// Requested slice per engine when budget_pool is set (0 = the pool's
  /// per-request ceiling).
  std::int64_t slice_ms = 0;
};

/// Parses a comma-separated engine list ("turbosyn,turbomap,flowsyn_s")
/// against the registry and validates it as a portfolio. Returns an empty
/// string on success (with `engines` filled), else a caller-printable error
/// naming the offending entry. Validation: at least one engine, no
/// duplicate names, one uniform objective (mixing the clock-period engine
/// with MDR engines would race incomparable φ's).
std::string parse_portfolio(const std::string& spec_list,
                            std::vector<const EngineSpec*>& engines);

/// Same validation for an already-resolved engine list.
std::string validate_portfolio(const std::vector<const EngineSpec*>& engines);

/// Races the engines on `c` and returns the selected result with merged,
/// engine-tagged probes, FlowResult::engine set to the winner and one
/// EngineRun row per engine in FlowResult::portfolio. The engine list must
/// validate (TS_CHECK). Trace: a "flow:portfolio" root span with one
/// "engine:<name>" span per engine, cancelled losers marked with detail
/// "cancelled" and counter cancelled=1.
FlowResult run_portfolio(const std::vector<const EngineSpec*>& engines, const Circuit& c,
                         const FlowOptions& options, const PortfolioOptions& popt = {});

}  // namespace turbosyn
