#include "core/expanded.hpp"

#include <algorithm>
#include <deque>

#include "base/check.hpp"
#include "graph/max_flow.hpp"

namespace turbosyn {
namespace {

std::uint64_t pack(SeqCutNode id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.node)) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.w));
}

}  // namespace

ExpandedNetwork::ExpandedNetwork(const Circuit& c, std::span<const int> labels, int phi,
                                 NodeId root, int height_limit, const ExpandedOptions& options)
    : circuit_(c),
      labels_(labels),
      phi_(phi),
      root_(root),
      height_limit_(height_limit),
      options_(options) {
  TS_CHECK(phi >= 1, "target ratio must be at least 1");
  expand();
}

bool ExpandedNetwork::allowed(SeqCutNode id) const {
  // eff(u, w) + 1 <= H, i.e. this copy may be a LUT input.
  const std::int64_t eff =
      static_cast<std::int64_t>(labels_[static_cast<std::size_t>(id.node)]) -
      static_cast<std::int64_t>(phi_) * id.w;
  return eff + 1 <= height_limit_;
}

int ExpandedNetwork::intern(SeqCutNode id) {
  const auto [it, inserted] = index_.emplace(pack(id), static_cast<int>(nodes_.size()));
  if (inserted) {
    ExpNode n;
    n.id = id;
    n.allowed = allowed(id);
    nodes_.push_back(std::move(n));
  }
  return it->second;
}

void ExpandedNetwork::expand() {
  // BFS from the root. slack[i] = number of allowed nodes on the best path
  // from the root to node i (the root itself is always interior). Mandatory
  // nodes always expand; allowed nodes expand while slack <= extra_levels.
  const int root_idx = intern(SeqCutNode{root_, 0});
  std::vector<int> slack(1, 0);
  std::deque<int> queue{root_idx};
  while (!queue.empty()) {
    const int i = queue.front();
    queue.pop_front();
    // Copy the fields used below: intern() may reallocate nodes_.
    const SeqCutNode id = nodes_[static_cast<std::size_t>(i)].id;
    const bool node_allowed = nodes_[static_cast<std::size_t>(i)].allowed;
    const bool is_root = (i == root_idx);
    const int my_slack = slack[static_cast<std::size_t>(i)];
    const bool should_expand = is_root || !node_allowed || my_slack <= options_.extra_levels;
    if (!should_expand || nodes_[static_cast<std::size_t>(i)].expanded) continue;
    if (circuit_.is_pi(id.node)) continue;  // sources have no fanins
    nodes_[static_cast<std::size_t>(i)].expanded = true;
    const int child_slack = my_slack + ((node_allowed && !is_root) ? 1 : 0);
    for (const EdgeId e : circuit_.fanin_edges(id.node)) {
      const auto& edge = circuit_.edge(e);
      const SeqCutNode child{edge.from, id.w + edge.weight};
      const std::size_t before = nodes_.size();
      const int j = intern(child);
      if (nodes_.size() > before) {
        slack.push_back(child_slack + (nodes_[static_cast<std::size_t>(j)].allowed ? 1 : 0));
        queue.push_back(j);
      } else if (child_slack + (nodes_[static_cast<std::size_t>(j)].allowed ? 1 : 0) <
                 slack[static_cast<std::size_t>(j)]) {
        slack[static_cast<std::size_t>(j)] =
            child_slack + (nodes_[static_cast<std::size_t>(j)].allowed ? 1 : 0);
        queue.push_back(j);  // better slack may unlock expansion
      }
      nodes_[static_cast<std::size_t>(i)].fanins.push_back(j);
      if (static_cast<int>(nodes_.size()) > options_.node_budget) {
        viable_ = false;
        return;
      }
    }
  }
}

std::optional<std::vector<SeqCutNode>> ExpandedNetwork::find_cut_impl(
    std::int64_t value_limit, const std::function<std::int64_t(const ExpNode&)>& capacity_of) {
  if (!viable_) return std::nullopt;

  MaxFlow flow;
  const int source = flow.add_node();
  const int sink = flow.add_node();
  std::vector<int> in_id(nodes_.size());
  std::vector<int> out_id(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].id.node == root_ && nodes_[i].id.w == 0) {
      in_id[i] = out_id[i] = sink;
      continue;
    }
    in_id[i] = flow.add_node();
    out_id[i] = flow.add_node();
    flow.add_arc(in_id[i], out_id[i],
                 nodes_[i].allowed ? capacity_of(nodes_[i]) : MaxFlow::kInfinity);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const ExpNode& n = nodes_[i];
    if (n.expanded && !n.fanins.empty()) {
      for (const int j : n.fanins) {
        flow.add_arc(out_id[static_cast<std::size_t>(j)], in_id[i], MaxFlow::kInfinity);
      }
    } else if (n.expanded) {
      // Constant gate: no PI dependence, free inside the LUT — no flow demand.
    } else {
      // PI copy or unexpanded frontier: feeds from the flow source.
      flow.add_arc(source, in_id[i], MaxFlow::kInfinity);
    }
  }

  const std::int64_t value = flow.compute(source, sink, value_limit);
  if (value > value_limit) return std::nullopt;

  const std::vector<bool> side = flow.min_cut_source_side();
  std::vector<SeqCutNode> cut;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (in_id[i] == sink || !nodes_[i].allowed) continue;
    if (side[static_cast<std::size_t>(in_id[i])] && !side[static_cast<std::size_t>(out_id[i])]) {
      cut.push_back(nodes_[i].id);
    }
  }
  std::sort(cut.begin(), cut.end());
  return cut;
}

std::optional<std::vector<SeqCutNode>> ExpandedNetwork::find_cut(int size_limit) {
  auto cut = find_cut_impl(size_limit, [](const ExpNode&) { return std::int64_t{1}; });
  TS_ASSERT(!cut.has_value() || static_cast<int>(cut->size()) <= size_limit);
  return cut;
}

std::optional<std::vector<SeqCutNode>> ExpandedNetwork::find_low_cost_cut(
    int size_limit, const std::function<bool(const SeqCutNode&)>& shared) {
  // Capacity B per node plus 1 for non-shared nodes, with B > size_limit:
  // the min cut is lexicographically (size, #non-shared)-minimal, and a cut
  // of size <= size_limit exists iff max-flow <= (B+1)*size_limit.
  const std::int64_t b = size_limit + 1;
  auto cut = find_cut_impl((b + 1) * size_limit, [&](const ExpNode& n) {
    return b + (shared(n.id) ? 0 : 1);
  });
  if (cut.has_value() && static_cast<int>(cut->size()) > size_limit) return std::nullopt;
  return cut;
}

TruthTable ExpandedNetwork::cut_function(std::span<const SeqCutNode> cut) const {
  const int arity = static_cast<int>(cut.size());
  TS_CHECK(arity <= TruthTable::kMaxVars, "cut too wide for truth-table extraction");
  std::unordered_map<std::uint64_t, TruthTable> memo;
  for (int i = 0; i < arity; ++i) {
    memo.emplace(pack(cut[static_cast<std::size_t>(i)]), TruthTable::var(arity, i));
  }
  auto eval = [&](auto&& self, const ExpNode& n) -> const TruthTable& {
    const auto it = memo.find(pack(n.id));
    if (it != memo.end()) return it->second;
    TS_CHECK(circuit_.is_gate(n.id.node) && n.expanded,
             "cut does not cover every path to the root");
    std::vector<TruthTable> inputs;
    inputs.reserve(n.fanins.size());
    for (const int j : n.fanins) {
      inputs.push_back(self(self, nodes_[static_cast<std::size_t>(j)]));
    }
    TruthTable result = inputs.empty()
                            ? circuit_.function(n.id.node).remap(arity, {})
                            : compose(circuit_.function(n.id.node), inputs);
    return memo.emplace(pack(n.id), std::move(result)).first->second;
  };
  const auto root_it = index_.find(pack(SeqCutNode{root_, 0}));
  TS_ASSERT(root_it != index_.end());
  return eval(eval, nodes_[static_cast<std::size_t>(root_it->second)]);
}

}  // namespace turbosyn
