#include "core/expanded.hpp"

#include <algorithm>
#include <unordered_map>

#include "base/check.hpp"

namespace turbosyn {
namespace {

std::uint64_t pack(SeqCutNode id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.node)) << 24) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.w));
}

std::uint64_t hash_key(std::uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  return key;
}

}  // namespace

ExpandedNetwork::ExpandedNetwork(const Circuit& c, std::span<const int> labels, int phi,
                                 NodeId root, int height_limit, const ExpandedOptions& options) {
  build(c, labels, phi, root, height_limit, options);
}

void ExpandedNetwork::build(const Circuit& c, std::span<const int> labels, int phi, NodeId root,
                            int height_limit, const ExpandedOptions& options) {
  TS_CHECK(phi >= 1, "target ratio must be at least 1");
  circuit_ = &c;
  labels_ = labels;
  phi_ = phi;
  root_ = root;
  height_limit_ = height_limit;
  options_ = options;
  viable_ = true;
  has_weighted_copy_ = false;
  flow_budget_hit_ = false;
  augmentations_ = 0;
  num_nodes_ = 0;
  fanin_pool_.clear();
  // Pre-size the per-query scratch to the high-water mark of earlier builds,
  // so a query no larger than any previous one reallocates nothing.
  slack_.reserve(hw_nodes_);
  bfs_queue_.reserve(hw_nodes_);
  fanin_pool_.reserve(hw_nodes_ * 2);
  cut_side_.reserve(hw_cut_side_);
  // O(1) index clear; on epoch wrap-around the stale stamps must be wiped.
  if (++index_epoch_ == 0) {
    index_epoch_ = 1;
    std::fill(index_slots_.begin(), index_slots_.end(), IndexSlot{});
  }
  index_size_ = 0;
  expand();
}

bool ExpandedNetwork::allowed(SeqCutNode id) const {
  // eff(u, w) + 1 <= H, i.e. this copy may be a LUT input.
  const std::int64_t eff =
      static_cast<std::int64_t>(labels_[static_cast<std::size_t>(id.node)]) -
      static_cast<std::int64_t>(phi_) * id.w;
  return eff + 1 <= height_limit_;
}

int ExpandedNetwork::find_index(std::uint64_t key) const {
  if (index_slots_.empty()) return -1;
  const std::size_t mask = index_slots_.size() - 1;
  for (std::size_t i = hash_key(key) & mask;; i = (i + 1) & mask) {
    const IndexSlot& slot = index_slots_[i];
    if (slot.epoch != index_epoch_) return -1;
    if (slot.key == key) return slot.value;
  }
}

void ExpandedNetwork::index_grow() {
  const std::size_t new_size = index_slots_.empty() ? 256 : index_slots_.size() * 2;
  std::vector<IndexSlot> old;
  old.swap(index_slots_);
  index_slots_.assign(new_size, IndexSlot{});
  const std::size_t mask = new_size - 1;
  for (const IndexSlot& slot : old) {
    if (slot.epoch != index_epoch_) continue;
    std::size_t i = hash_key(slot.key) & mask;
    while (index_slots_[i].epoch == index_epoch_) i = (i + 1) & mask;
    index_slots_[i] = slot;
    index_slots_[i].epoch = index_epoch_;
  }
}

int ExpandedNetwork::intern(SeqCutNode id) {
  if (index_size_ * 10 >= index_slots_.size() * 7) index_grow();
  const std::uint64_t key = pack(id);
  const std::size_t mask = index_slots_.size() - 1;
  std::size_t i = hash_key(key) & mask;
  while (index_slots_[i].epoch == index_epoch_) {
    if (index_slots_[i].key == key) return index_slots_[i].value;
    i = (i + 1) & mask;
  }
  const int value = static_cast<int>(num_nodes_);
  if (id.w > 0) has_weighted_copy_ = true;
  index_slots_[i] = IndexSlot{key, value, index_epoch_};
  ++index_size_;
  if (num_nodes_ == nodes_.size()) {
    nodes_.emplace_back();
  }
  ExpNode& n = nodes_[num_nodes_];
  n.id = id;
  n.allowed = allowed(id);
  n.expanded = false;
  n.fanin_begin = 0;
  n.fanin_end = 0;
  ++num_nodes_;
  return value;
}

void ExpandedNetwork::expand() {
  // BFS from the root. slack[i] = number of allowed nodes on the best path
  // from the root to node i (the root itself is always interior). Mandatory
  // nodes always expand; allowed nodes expand while slack <= extra_levels.
  const CsrTopology& topo = circuit_->topology();
  const int root_idx = intern(SeqCutNode{root_, 0});
  slack_.clear();
  slack_.push_back(0);
  bfs_queue_.clear();
  bfs_queue_.push_back(root_idx);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const int i = bfs_queue_[head];
    // Copy the fields used below: intern() may reallocate nodes_.
    const SeqCutNode id = nodes_[static_cast<std::size_t>(i)].id;
    const bool node_allowed = nodes_[static_cast<std::size_t>(i)].allowed;
    const bool is_root = (i == root_idx);
    const int my_slack = slack_[static_cast<std::size_t>(i)];
    const bool should_expand = is_root || !node_allowed || my_slack <= options_.extra_levels;
    if (!should_expand || nodes_[static_cast<std::size_t>(i)].expanded) continue;
    if (topo.flag(id.node, CsrTopology::kIsPi)) continue;  // sources have no fanins
    // Zero-state safety: a register-crossed copy (w >= 1) is only allowed
    // inside a LUT when its function is 0 on the all-zero input. Interior
    // copies at w >= 1 are recomputed for cycles t < w from pre-history
    // values, and every register powers up holding 0 — so recomputation is
    // faithful exactly when all-zero inputs reproduce the stored 0. Copies
    // violating that stay unexpanded frontier nodes: they may be cut inputs
    // (read through real, zero-initialized registers) but never interior.
    if (id.w > 0 && topo.flag(id.node, CsrTopology::kZeroUnsafe)) continue;
    nodes_[static_cast<std::size_t>(i)].expanded = true;
    const int child_slack = my_slack + ((node_allowed && !is_root) ? 1 : 0);
    const std::int32_t fanin_begin = static_cast<std::int32_t>(fanin_pool_.size());
    const std::int32_t slot_begin = topo.fanin_offset[static_cast<std::size_t>(id.node)];
    const std::int32_t slot_end = topo.fanin_offset[static_cast<std::size_t>(id.node) + 1];
    for (std::int32_t s = slot_begin; s < slot_end; ++s) {
      const SeqCutNode child{topo.fanin_src[static_cast<std::size_t>(s)],
                             id.w + topo.fanin_weight[static_cast<std::size_t>(s)]};
      const std::size_t before = num_nodes_;
      const int j = intern(child);
      if (num_nodes_ > before) {
        slack_.push_back(child_slack + (nodes_[static_cast<std::size_t>(j)].allowed ? 1 : 0));
        bfs_queue_.push_back(j);
      } else if (child_slack + (nodes_[static_cast<std::size_t>(j)].allowed ? 1 : 0) <
                 slack_[static_cast<std::size_t>(j)]) {
        slack_[static_cast<std::size_t>(j)] =
            child_slack + (nodes_[static_cast<std::size_t>(j)].allowed ? 1 : 0);
        bfs_queue_.push_back(j);  // better slack may unlock expansion
      }
      fanin_pool_.push_back(j);
      if (static_cast<int>(num_nodes_) > options_.node_budget) {
        viable_ = false;
        return;
      }
    }
    nodes_[static_cast<std::size_t>(i)].fanin_begin = fanin_begin;
    nodes_[static_cast<std::size_t>(i)].fanin_end =
        static_cast<std::int32_t>(fanin_pool_.size());
  }
  hw_nodes_ = std::max(hw_nodes_, num_nodes_);
}

std::optional<std::vector<SeqCutNode>> ExpandedNetwork::find_cut_impl(
    std::int64_t value_limit, const std::function<std::int64_t(const ExpNode&)>& capacity_of) {
  if (!viable_) return std::nullopt;

  flow_.reset();
  const int source = flow_.add_node();
  const int sink = flow_.add_node();
  in_id_.resize(num_nodes_);
  out_id_.resize(num_nodes_);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (nodes_[i].id.node == root_ && nodes_[i].id.w == 0) {
      in_id_[i] = out_id_[i] = sink;
      continue;
    }
    in_id_[i] = flow_.add_node();
    out_id_[i] = flow_.add_node();
    flow_.add_arc(in_id_[i], out_id_[i],
                  nodes_[i].allowed ? capacity_of(nodes_[i]) : MaxFlow::kInfinity);
  }
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const ExpNode& n = nodes_[i];
    if (n.expanded && n.fanin_end > n.fanin_begin) {
      for (std::int32_t s = n.fanin_begin; s < n.fanin_end; ++s) {
        const int j = fanin_pool_[static_cast<std::size_t>(s)];
        flow_.add_arc(out_id_[static_cast<std::size_t>(j)], in_id_[i], MaxFlow::kInfinity);
      }
    } else if (n.expanded) {
      // Constant gate: no PI dependence, free inside the LUT — no flow demand.
    } else {
      // PI copy or unexpanded frontier: feeds from the flow source.
      flow_.add_arc(source, in_id_[i], MaxFlow::kInfinity);
    }
  }

  const std::int64_t value =
      flow_.compute(source, sink, value_limit, options_.flow_augment_budget);
  augmentations_ += flow_.last_augmentations();
  if (value > value_limit) {
    if (flow_.augment_budget_hit()) flow_budget_hit_ = true;
    return std::nullopt;
  }

  flow_.min_cut_source_side(cut_side_);
  hw_cut_side_ = std::max(hw_cut_side_, cut_side_.size());
  std::vector<SeqCutNode> cut;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (in_id_[i] == sink || !nodes_[i].allowed) continue;
    if (cut_side_[static_cast<std::size_t>(in_id_[i])] &&
        !cut_side_[static_cast<std::size_t>(out_id_[i])]) {
      cut.push_back(nodes_[i].id);
    }
  }
  std::sort(cut.begin(), cut.end());
  return cut;
}

std::optional<std::vector<SeqCutNode>> ExpandedNetwork::find_cut(int size_limit) {
  auto cut = find_cut_impl(size_limit, [](const ExpNode&) { return std::int64_t{1}; });
  TS_ASSERT(!cut.has_value() || static_cast<int>(cut->size()) <= size_limit);
  return cut;
}

std::optional<std::vector<SeqCutNode>> ExpandedNetwork::find_low_cost_cut(
    int size_limit, const std::function<bool(const SeqCutNode&)>& shared) {
  // Capacity B per node plus 1 for non-shared nodes, with B > size_limit:
  // the min cut is lexicographically (size, #non-shared)-minimal, and a cut
  // of size <= size_limit exists iff max-flow <= (B+1)*size_limit.
  const std::int64_t b = size_limit + 1;
  auto cut = find_cut_impl((b + 1) * size_limit, [&](const ExpNode& n) {
    return b + (shared(n.id) ? 0 : 1);
  });
  if (cut.has_value() && static_cast<int>(cut->size()) > size_limit) return std::nullopt;
  return cut;
}

TruthTable ExpandedNetwork::cut_function(std::span<const SeqCutNode> cut) const {
  const int arity = static_cast<int>(cut.size());
  TS_CHECK(arity <= TruthTable::kMaxVars, "cut too wide for truth-table extraction");
  std::unordered_map<std::uint64_t, TruthTable> memo;
  for (int i = 0; i < arity; ++i) {
    memo.emplace(pack(cut[static_cast<std::size_t>(i)]), TruthTable::var(arity, i));
  }
  auto eval = [&](auto&& self, const ExpNode& n) -> const TruthTable& {
    const auto it = memo.find(pack(n.id));
    if (it != memo.end()) return it->second;
    TS_CHECK(circuit_->is_gate(n.id.node) && n.expanded,
             "cut does not cover every path to the root");
    std::vector<TruthTable> inputs;
    inputs.reserve(static_cast<std::size_t>(n.fanin_end - n.fanin_begin));
    for (std::int32_t s = n.fanin_begin; s < n.fanin_end; ++s) {
      inputs.push_back(
          self(self, nodes_[static_cast<std::size_t>(fanin_pool_[static_cast<std::size_t>(s)])]));
    }
    TruthTable result = inputs.empty()
                            ? circuit_->function(n.id.node).remap(arity, {})
                            : compose(circuit_->function(n.id.node), inputs);
    return memo.emplace(pack(n.id), std::move(result)).first->second;
  };
  const int root_idx = find_index(pack(SeqCutNode{root_, 0}));
  TS_ASSERT(root_idx >= 0);
  return eval(eval, nodes_[static_cast<std::size_t>(root_idx)]);
}

}  // namespace turbosyn
