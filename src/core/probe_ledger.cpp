#include "core/probe_ledger.hpp"

#include <string>

#include "base/check.hpp"

namespace turbosyn {

const char* label_mode_name(LabelMode m) {
  switch (m) {
    case LabelMode::kPlain:
      return "plain";
    case LabelMode::kDecomp:
      return "decomp";
  }
  return "?";
}

const char* probe_outcome_name(ProbeOutcome o) {
  switch (o) {
    case ProbeOutcome::kOk:
      return "ok";
    case ProbeOutcome::kInfeasible:
      return "infeasible";
    case ProbeOutcome::kDegraded:
      return "degraded";
    case ProbeOutcome::kInterrupted:
      return "interrupted";
  }
  return "?";
}

std::uint64_t hash_labels(std::span<const int> labels) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const int label : labels) {
    std::uint32_t bits = static_cast<std::uint32_t>(label);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= bits & 0xffu;
      h *= 1099511628211ULL;
      bits >>= 8;
    }
  }
  return h;
}

ProbeOutcome classify_probe(const LabelResult& r) {
  if (is_interrupt(r.status)) return ProbeOutcome::kInterrupted;
  if (r.status != Status::kOk) return ProbeOutcome::kDegraded;
  return r.feasible ? ProbeOutcome::kOk : ProbeOutcome::kInfeasible;
}

bool ProbeLedger::contains(const std::string& engine, LabelMode mode, int phi) const {
  return find(engine, mode, phi) != nullptr;
}

const ProbeRecord* ProbeLedger::find(const std::string& engine, LabelMode mode,
                                     int phi) const {
  for (const ProbeRecord& r : records_) {
    // Seed-only records are provenance, not verdicts: they never answer a
    // (mode, phi) query, so a genuine probe at the seed's phi still runs.
    if (r.engine == engine && r.mode == mode && r.phi == phi && !r.seed_only) return &r;
  }
  return nullptr;
}

void ProbeLedger::record(ProbeRecord r) {
  // The no-reprobe rule keys on genuine verdicts; seed-only records may
  // coexist with a later probe at the same (engine, mode, phi).
  TS_CHECK(r.seed_only || !contains(r.engine, r.mode, r.phi),
           "phi=" + std::to_string(r.phi) + " (" + label_mode_name(r.mode) +
               (r.engine.empty() ? std::string() : ", engine " + r.engine) +
               ") probed twice in one run");
  records_.push_back(std::move(r));
}

}  // namespace turbosyn
