#include "core/mapgen.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "base/check.hpp"

namespace turbosyn {
namespace {

struct Chosen {
  NodeRealization real;
  int height = 0;                // realized height (label, or relaxed above it)
  std::vector<int> input_depth;  // LUT levels from cut input i to the output
};

/// LUT levels from each cut input to the realized node's output.
std::vector<int> compute_input_depths(const NodeRealization& real) {
  std::vector<int> depth(real.cut.size(), 1);
  if (!real.decomp.has_value()) return depth;
  const auto& luts = real.decomp->luts;
  // dist[j] = levels from LUT j's output to the root's output (root = last).
  std::vector<int> dist(luts.size(), 0);
  for (std::size_t j = luts.size(); j-- > 0;) {
    for (const DecompFanin& fin : luts[j].fanins) {
      if (fin.kind == DecompFanin::Kind::kLut) {
        auto& d = dist[static_cast<std::size_t>(fin.index)];
        d = std::max(d, dist[j] + 1);
      }
    }
  }
  std::fill(depth.begin(), depth.end(), 0);
  for (std::size_t j = 0; j < luts.size(); ++j) {
    for (const DecompFanin& fin : luts[j].fanins) {
      if (fin.kind == DecompFanin::Kind::kInput) {
        auto& d = depth[static_cast<std::size_t>(fin.index)];
        d = std::max(d, dist[j] + 1);
      }
    }
  }
  return depth;
}

class Generator {
 public:
  Generator(const Circuit& c, const LabelResult& labels, int phi,
            const LabelOptions& label_options, const MapGenOptions& options, LabelStats& stats,
            std::vector<MappingRecord>* records)
      : c_(c),
        labels_(labels),
        phi_(phi),
        lopts_(label_options),
        opts_(options),
        stats_(stats),
        records_(records) {}

  Circuit run() {
    // Pass 1: realize every transitively needed node at its final label.
    for (const NodeId po : c_.pos()) {
      request(c_.edge(c_.fanin_edges(po)[0]).from);
    }
    drain_queue();

    if (opts_.label_relaxation) relax();

    return emit();
  }

 private:
  bool is_mappable(NodeId v) const { return c_.is_gate(v) && !c_.fanin_edges(v).empty(); }

  void request(NodeId v) {
    if (!is_mappable(v)) return;  // PIs and constants need no realization
    if (chosen_.count(v) || pending_.count(v)) return;
    pending_.insert(v);
    queue_.push_back(v);
  }

  void drain_queue() {
    while (!queue_.empty()) {
      const NodeId v = queue_.front();
      queue_.pop_front();
      pending_.erase(v);
      if (chosen_.count(v)) continue;
      BaseReal base = base_realization(v);
      install(v, std::move(base.real), base.height);
    }
  }

  struct BaseReal {
    NodeRealization real;
    int height = 0;
  };

  BaseReal base_realization(NodeId v) {
    const std::function<bool(const SeqCutNode&)> shared = [this](const SeqCutNode& n) {
      return used_inputs_.count((static_cast<std::uint64_t>(
                                     static_cast<std::uint32_t>(n.node))
                                 << 24) |
                                static_cast<std::uint32_t>(n.w)) != 0;
    };
    const int label = labels_.labels[static_cast<std::size_t>(v)];
    int height = label;
    auto real = realize_node(c_, labels_.labels, phi_, v, height, lopts_, stats_, nullptr,
                             opts_.low_cost_cuts ? &shared : nullptr, &scratch_);
    if (!real.has_value() && lopts_.budget.limited()) {
      // A resource ceiling can make the realization that justified this label
      // during labeling unavailable now (the BDD/flow/attempt budget fires at
      // a different point of a different traversal). Climb the height until
      // something is realizable — the trivial fanin cut guarantees success
      // within num_gates extra levels, and any height is structurally valid
      // (just possibly slower).
      const int cap = label + c_.num_gates() + 2;
      while (!real.has_value() && height < cap) {
        ++height;
        real = realize_node(c_, labels_.labels, phi_, v, height, lopts_, stats_, nullptr,
                            opts_.low_cost_cuts ? &shared : nullptr, &scratch_);
      }
    }
    TS_CHECK(real.has_value(), "converged labels must be realizable at node '" << c_.name(v)
                                                                               << "'");
    return BaseReal{std::move(*real), height};
  }

  void install(NodeId v, NodeRealization real, int height) {
    Chosen ch;
    ch.input_depth = compute_input_depths(real);
    ch.real = std::move(real);
    ch.height = height;
    for (const SeqCutNode& in : ch.real.cut) {
      request(in.node);
      used_inputs_.insert(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(in.node)) << 24) |
          static_cast<std::uint32_t>(in.w));
    }
    chosen_[v] = std::move(ch);
  }

  /// Heights the consumers allow: A(x) = min over uses (x, w) at depth d in a
  /// consumer realized at height H of (H - d + phi*w). POs contribute only
  /// under a clock-period limit.
  std::unordered_map<NodeId, int> allowed_heights() const {
    std::unordered_map<NodeId, int> allowed;
    const auto tighten = [&](NodeId x, int bound) {
      const auto [it, inserted] = allowed.emplace(x, bound);
      if (!inserted) it->second = std::min(it->second, bound);
    };
    for (const auto& [v, ch] : chosen_) {
      (void)v;
      for (std::size_t i = 0; i < ch.real.cut.size(); ++i) {
        const SeqCutNode& in = ch.real.cut[i];
        if (!is_mappable(in.node)) continue;
        tighten(in.node, ch.height - ch.input_depth[i] + phi_ * in.w);
      }
    }
    if (opts_.po_label_limit.has_value()) {
      for (const NodeId po : c_.pos()) {
        const auto& e = c_.edge(c_.fanin_edges(po)[0]);
        if (is_mappable(e.from)) {
          tighten(e.from, *opts_.po_label_limit + phi_ * e.weight);
        }
      }
    }
    return allowed;
  }

  void relax() {
    // Swap decomposition DAGs for single plain K-cuts where the consumers
    // leave enough headroom, then fix up any constraint the new uses broke.
    LabelOptions plain = lopts_;
    plain.enable_decomposition = false;
    std::vector<NodeId> targets;
    for (const auto& [v, ch] : chosen_) {
      if (ch.real.decomp.has_value()) targets.push_back(v);
    }
    std::sort(targets.begin(), targets.end());
    {
      const auto allowed = allowed_heights();
      for (const NodeId v : targets) {
        const auto it = allowed.find(v);
        if (it == allowed.end()) continue;  // only POs use it (no cut uses)
        const int a = it->second;
        if (a <= chosen_.at(v).height) continue;
        if (auto real = realize_node(c_, labels_.labels, phi_, v, a, plain, stats_, nullptr,
                                     nullptr, &scratch_)) {
          install(v, std::move(*real), a);
        }
      }
      drain_queue();
    }
    // Verification fixpoint: revert any node whose (possibly relaxed) height
    // now exceeds what its final consumers allow.
    for (int round = 0; round < 8; ++round) {
      const auto allowed = allowed_heights();
      bool reverted = false;
      for (auto& [v, ch] : chosen_) {
        const auto it = allowed.find(v);
        const int a = it == allowed.end() ? std::numeric_limits<int>::max() : it->second;
        if (ch.height > a) {
          BaseReal base = base_realization(v);
          install(v, std::move(base.real), base.height);
          reverted = true;
        }
      }
      drain_queue();
      if (!reverted) return;
    }
    // Safety net: give up on relaxation entirely.
    std::vector<NodeId> all;
    for (const auto& [v, ch] : chosen_) {
      (void)ch;
      all.push_back(v);
    }
    for (const NodeId v : all) {
      BaseReal base = base_realization(v);
      install(v, std::move(base.real), base.height);
    }
    drain_queue();
  }

  Circuit emit() {
    // Prune to the closure actually reachable from the POs (relaxation may
    // have orphaned nodes), then declare + finish.
    std::unordered_set<NodeId> live;
    std::deque<NodeId> bfs;
    for (const NodeId po : c_.pos()) {
      const NodeId d = c_.edge(c_.fanin_edges(po)[0]).from;
      if (live.insert(d).second) bfs.push_back(d);
    }
    while (!bfs.empty()) {
      const NodeId v = bfs.front();
      bfs.pop_front();
      if (!is_mappable(v)) continue;
      for (const SeqCutNode& in : chosen_.at(v).real.cut) {
        if (live.insert(in.node).second) bfs.push_back(in.node);
      }
    }

    if (records_ != nullptr) {
      records_->clear();
      for (NodeId v = 0; v < c_.num_nodes(); ++v) {
        if (!live.count(v) || !is_mappable(v)) continue;
        const Chosen& ch = chosen_.at(v);
        records_->push_back(MappingRecord{v, ch.height, ch.real});
      }
    }

    Circuit out;
    std::unordered_map<NodeId, NodeId> to_out;
    for (const NodeId pi : c_.pis()) to_out[pi] = out.add_pi(c_.name(pi));
    for (NodeId v = 0; v < c_.num_nodes(); ++v) {
      if (!live.count(v)) continue;
      if (c_.is_gate(v) && !is_mappable(v)) {
        // Constant: emit directly.
        to_out[v] = out.add_gate(c_.name(v), c_.function(v), {});
      } else if (is_mappable(v)) {
        to_out[v] = out.declare_gate(c_.name(v));
      }
    }
    int fresh = 0;
    for (NodeId v = 0; v < c_.num_nodes(); ++v) {
      if (!live.count(v) || !is_mappable(v)) continue;
      const Chosen& ch = chosen_.at(v);
      std::vector<Circuit::FaninSpec> inputs;
      for (const SeqCutNode& in : ch.real.cut) {
        inputs.push_back({to_out.at(in.node), in.w});
      }
      if (!ch.real.decomp.has_value()) {
        out.finish_gate(to_out.at(v), ch.real.func, inputs);
        continue;
      }
      const auto& luts = ch.real.decomp->luts;
      std::vector<NodeId> lut_node(luts.size(), kNoNode);
      for (std::size_t j = 0; j < luts.size(); ++j) {
        std::vector<Circuit::FaninSpec> fanins;
        for (const DecompFanin& fin : luts[j].fanins) {
          if (fin.kind == DecompFanin::Kind::kInput) {
            fanins.push_back(inputs[static_cast<std::size_t>(fin.index)]);
          } else {
            fanins.push_back({lut_node[static_cast<std::size_t>(fin.index)], 0});
          }
        }
        if (j + 1 == luts.size()) {
          out.finish_gate(to_out.at(v), luts[j].func, fanins);
          lut_node[j] = to_out.at(v);
        } else {
          lut_node[j] = out.add_gate(c_.name(v) + "$e" + std::to_string(fresh++),
                                     luts[j].func, fanins);
        }
      }
    }
    for (const NodeId po : c_.pos()) {
      const auto& e = c_.edge(c_.fanin_edges(po)[0]);
      out.add_po(c_.name(po), {to_out.at(e.from), e.weight});
    }
    out.validate();
    return out;
  }

  const Circuit& c_;
  const LabelResult& labels_;
  int phi_;
  const LabelOptions& lopts_;
  const MapGenOptions& opts_;
  LabelStats& stats_;

  CutScratch scratch_;  // reused cut-test buffers across realizations

  std::unordered_map<NodeId, Chosen> chosen_;
  std::unordered_set<NodeId> pending_;
  std::unordered_set<std::uint64_t> used_inputs_;  // packed (node, w) signals
  std::deque<NodeId> queue_;
  std::vector<MappingRecord>* records_;  // optional audit artifacts
};

}  // namespace

Circuit generate_sequential_mapping(const Circuit& c, const LabelResult& labels, int phi,
                                    const LabelOptions& label_options,
                                    const MapGenOptions& options, LabelStats& stats,
                                    std::vector<MappingRecord>* records) {
  TS_CHECK(labels.feasible, "mapping generation requires converged labels");
  return Generator(c, labels, phi, label_options, options, stats, records).run();
}

}  // namespace turbosyn
