#pragma once
// First-class cross-φ probe history of a flow run.
//
// Every label probe a search stage runs — one LabelEngine::compute() for one
// target ratio φ under one update rule — is recorded here: its outcome, a
// hash of the converged label vector, its stats and wall time. The ledger is
// the structural home of three soundness rules the searches used to enforce
// only by convention:
//
//   1. No φ is ever label-probed twice per mode per run. record() rejects
//      duplicate (mode, φ) keys outright, so a mis-wired probe schedule
//      fails loudly instead of silently re-deriving (and re-paying for) a
//      known verdict. Multi-phase flows (TurboSYN) share one ledger across
//      their drivers, making the rule hold across phases too.
//   2. A degraded probe is never a certificate. An infeasible verdict under
//      a resource ceiling is recorded as kDegraded, not kInfeasible, so
//      minimality claims can only rest on genuine divergence certificates
//      (the PR 2 soundness rule, now auditable from the record).
//   3. Only feasible probes may seed another search (their labels witness
//      feasibility even when degraded). TurboSYN imports
//      TurboMap's upper-bound labels into the decomposition scan; the import
//      is recorded with `imported` set (no stats, no wall time — the
//      originating probe carries those) so the certificate's provenance
//      stays visible.
//
// FlowResult::probes exposes the full ledger after a run; the auditor's
// "probes" check re-verifies uniqueness, hash consistency with the winning
// labels, and the minimality witness at φ-1.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/labeling.hpp"

namespace turbosyn {

/// Which label-update rule a probe ran under: plain K-cuts (TurboMap) or
/// K-cuts plus sequential functional decomposition (TurboSYN). Labels are
/// mode-specific — a plain-feasible φ says nothing about the decomposition
/// labels at that φ beyond feasibility — so the ledger keys on (mode, φ).
enum class LabelMode : std::uint8_t { kPlain, kDecomp };
const char* label_mode_name(LabelMode m);

enum class ProbeOutcome : std::uint8_t {
  kOk,           // converged feasible, no budget interference
  kInfeasible,   // genuine divergence certificate
  kDegraded,     // a resource ceiling altered the probe (never a certificate)
  kInterrupted,  // deadline/cancel fired mid-probe; labels unusable
};
const char* probe_outcome_name(ProbeOutcome o);

/// FNV-1a over the label vector (little-endian 32-bit values). Used to tie
/// a recorded probe to the label vector a flow ultimately mapped with.
std::uint64_t hash_labels(std::span<const int> labels);

/// Outcome classification of a finished probe.
ProbeOutcome classify_probe(const LabelResult& r);

struct ProbeRecord {
  int phi = 0;
  LabelMode mode = LabelMode::kPlain;
  /// Engine that ran the probe, for merged portfolio ledgers. Empty for a
  /// standalone flow run (every probe belongs to the one engine that ran);
  /// the portfolio runner tags the winner's and every loser's records with
  /// their registry names before merging, so uniqueness keys on
  /// (engine, mode, φ) and the auditor can restrict certification checks to
  /// the winning engine's records — a losing engine's degraded probes can
  /// never outrank the winner's certificate.
  std::string engine;
  ProbeOutcome outcome = ProbeOutcome::kOk;
  Status status = Status::kOk;
  bool feasible = false;
  /// Certificate imported from another search's result rather than probed
  /// here (e.g. TurboMap's UB labels seeding the TurboSYN scan). Imported
  /// records carry no stats and no wall time — the originating probe does.
  bool imported = false;
  /// Provenance-only record of a warm seed (near-miss cache transfer): the
  /// labels were used purely as a lower-bound starting point, never as a
  /// certificate. Seed-only records are invisible to find()/contains() — a
  /// genuine probe at the same (mode, φ) may still run and be recorded —
  /// and the auditor excludes them from the uniqueness, certification and
  /// rejection-witness checks. Always has `imported` set and feasible=false.
  bool seed_only = false;
  /// The probe ran the dirty-set incremental iteration (warm-seeded plain
  /// update); converged labels are bit-identical either way.
  bool incremental = false;
  std::uint64_t label_hash = 0;  // hash_labels() when feasible, else 0
  int max_po_label = 0;
  LabelStats stats;
  double seconds = 0.0;
};

/// Append-only per-run probe history, keyed by (engine, mode, φ) — the
/// engine tag is empty everywhere in a standalone run, so the key degrades
/// to the classic (mode, φ). See the file comment for the soundness rules
/// it enforces.
class ProbeLedger {
 public:
  bool contains(LabelMode mode, int phi) const { return contains({}, mode, phi); }
  bool contains(const std::string& engine, LabelMode mode, int phi) const;
  /// The record at (engine, mode, phi), or nullptr. Pointers are
  /// invalidated by the next record() call.
  const ProbeRecord* find(LabelMode mode, int phi) const { return find({}, mode, phi); }
  const ProbeRecord* find(const std::string& engine, LabelMode mode, int phi) const;
  /// Appends a record; rejects (TS_CHECK) a duplicate (engine, mode, phi)
  /// key — the "no φ probed twice" guarantee.
  void record(ProbeRecord r);

  const std::vector<ProbeRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

 private:
  std::vector<ProbeRecord> records_;
};

}  // namespace turbosyn
