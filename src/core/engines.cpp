#include "core/engines.hpp"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "base/check.hpp"
#include "base/trace.hpp"
#include "core/driver.hpp"
#include "core/stages/flowsyn_map.hpp"
#include "core/stages/mapgen_stage.hpp"
#include "core/stages/pack_stage.hpp"
#include "core/stages/phi_search.hpp"
#include "core/stages/pipeline_retime_stage.hpp"
#include "core/stages/ub_probe.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The plain-label search pipeline (the TurboMap stages): also phase A of
/// every seeded-search engine, which is why it ignores the spec's mode.
StageList plain_search_stages() {
  StageList stages;
  stages.push_back(std::make_unique<UbProbeStage>(UbProbeStage::Kind::kIdentityMdr));
  stages.push_back(std::make_unique<PhiSearchStage>(PhiSearchStage::Config{}));
  stages.push_back(std::make_unique<MapGenStage>());
  stages.push_back(std::make_unique<PackStage>());
  stages.push_back(
      std::make_unique<PipelineRetimeStage>(PipelineRetimeStage::Kind::kPipelineRetime));
  return stages;
}

/// A kSearch spec expanded into its stage list.
StageList search_stages(const EngineSpec& spec) {
  StageList stages;
  stages.push_back(std::make_unique<UbProbeStage>(spec.period_objective
                                                      ? UbProbeStage::Kind::kClockPeriod
                                                      : UbProbeStage::Kind::kIdentityMdr));
  PhiSearchStage::Config cfg;
  cfg.mode = spec.mode;
  cfg.period_objective = spec.period_objective;
  stages.push_back(std::make_unique<PhiSearchStage>(std::move(cfg)));
  stages.push_back(std::make_unique<MapGenStage>(/*po_label_limit=*/spec.period_objective));
  stages.push_back(std::make_unique<PackStage>());
  stages.push_back(std::make_unique<PipelineRetimeStage>(
      spec.period_objective ? PipelineRetimeStage::Kind::kRetimeOnly
                            : PipelineRetimeStage::Kind::kPipelineRetime));
  return stages;
}

FlowResult run_search_engine(const EngineSpec& spec, const Circuit& c,
                             const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan span(options.trace, spec.trace_label);
  span.counter("incremental", options.incremental ? 1 : 0);
  FlowDriver driver(c, options);
  driver.run(search_stages(spec));
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_seeded_search_engine(const EngineSpec& spec, const Circuit& c,
                                    const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan flow_span(options.trace, spec.trace_label);
  flow_span.counter("incremental", options.incremental ? 1 : 0);
  // One no-reprobe scope across both phases: plain-mode probes from phase A
  // and `spec.mode` probes from phase B share the ledger.
  ProbeLedger ledger;

  // Step 1 of the paper's pseudo-code: TurboMap provides the upper bound UB.
  // Its labels at UB prove UB feasible for the decomposition search too
  // (every plain K-cut is a valid realization there), so the search below
  // starts from them instead of re-probing phi == UB.
  FlowDriver ub_driver(c, options, ledger);
  {
    TraceSpan phase(options.trace, spec.phase_ub_label);
    ub_driver.run(plain_search_stages());
  }
  const bool have_ub_labels = ub_driver.context().have_labels;
  auto ub_labels = std::make_shared<LabelResult>(ub_driver.context().labels);
  FlowResult ub_run = ub_driver.finish();
  if (ub_run.status == Status::kFailed) {
    // A contained phase-A failure ends the flow: whatever labels exist were
    // produced next to a blown stage boundary, so nothing seeds phase B.
    ub_run.seconds = seconds_since(start);
    return ub_run;
  }
  if (!have_ub_labels) {
    // The TurboMap stage was stopped before it proved any ratio feasible:
    // there are no labels to seed the decomposition search, so the anytime
    // answer is the TurboMap stage's own fallback result.
    ub_run.seconds = seconds_since(start);
    return ub_run;
  }

  FlowDriver driver(c, options, ledger);
  {
    TraceSpan phase(options.trace, spec.phase_search_label);
    StageList stages;
    stages.push_back(std::make_unique<UbProbeStage>(ub_run.phi));
    PhiSearchStage::Config cfg;
    cfg.schedule = PhiSearchStage::Schedule::kDescending;
    cfg.mode = spec.mode;
    cfg.seed = std::move(ub_labels);
    stages.push_back(std::make_unique<PhiSearchStage>(std::move(cfg)));
    stages.push_back(std::make_unique<MapGenStage>());
    stages.push_back(std::make_unique<PackStage>());
    stages.push_back(
        std::make_unique<PipelineRetimeStage>(PipelineRetimeStage::Kind::kPipelineRetime));
    driver.run(stages);
  }
  FlowResult result = driver.finish();
  result.stats.accumulate(ub_run.stats);
  result.status = combine_status(result.status, ub_run.status);
  fill_flow_diagnostics(result, c);
  // One timeline: the TurboMap phase's stages first, then the search phase's.
  result.stage_metrics.stages.insert(result.stage_metrics.stages.begin(),
                                     ub_run.stage_metrics.stages.begin(),
                                     ub_run.stage_metrics.stages.end());
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_no_search_engine(const EngineSpec& spec, const Circuit& c,
                                const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan span(options.trace, spec.trace_label);
  FlowDriver driver(c, options);
  StageList stages;
  stages.push_back(std::make_unique<FlowSynMapStage>());
  // No ratio search; phi is the ceiling of the measured MDR.
  stages.push_back(std::make_unique<PackStage>(/*phi_from_mdr=*/true));
  // flowmap() itself is not budget-aware; the final budget check reports a
  // deadline/cancel that fired during it (the mapping is still complete and
  // valid).
  stages.push_back(std::make_unique<PipelineRetimeStage>(
      PipelineRetimeStage::Kind::kPipelineRetime, /*final_budget_check=*/true));
  driver.run(stages);
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

const char* shape_name(EngineSpec::Shape shape) {
  switch (shape) {
    case EngineSpec::Shape::kSearch:
      return "search";
    case EngineSpec::Shape::kSeededSearch:
      return "seeded-search";
    case EngineSpec::Shape::kNoSearch:
      return "no-search";
  }
  return "?";
}

void append_delta(std::ostringstream& out, const char* key,
                  const std::optional<bool>& value) {
  out << ' ' << key << '=' << (value.has_value() ? (*value ? "1" : "0") : "-");
}

std::vector<EngineSpec> build_registry() {
  std::vector<EngineSpec> specs;

  EngineSpec turbomap;
  turbomap.name = "turbomap";
  turbomap.summary = "plain-label bisection, MDR objective (TurboMap + PLD)";
  turbomap.shape = EngineSpec::Shape::kSearch;
  turbomap.mode = LabelMode::kPlain;
  turbomap.strength = 1;
  turbomap.trace_label = "flow:turbomap";
  specs.push_back(turbomap);

  EngineSpec turbosyn_spec;
  turbosyn_spec.name = "turbosyn";
  turbosyn_spec.summary =
      "TurboMap upper bound, then descending decomposition scan (the paper's flow)";
  turbosyn_spec.shape = EngineSpec::Shape::kSeededSearch;
  turbosyn_spec.mode = LabelMode::kDecomp;
  turbosyn_spec.strength = 2;
  turbosyn_spec.trace_label = "flow:turbosyn";
  turbosyn_spec.phase_ub_label = "phase:turbomap-ub";
  turbosyn_spec.phase_search_label = "phase:turbosyn-search";
  specs.push_back(turbosyn_spec);

  EngineSpec flowsyn;
  flowsyn.name = "flowsyn_s";
  flowsyn.summary = "cut at FFs, FlowSYN per block, no ratio search (prior baseline)";
  flowsyn.shape = EngineSpec::Shape::kNoSearch;
  flowsyn.strength = 0;
  flowsyn.trace_label = "flow:flowsyn-s";
  specs.push_back(flowsyn);

  EngineSpec period;
  period.name = "turbomap_period";
  period.summary = "clock-period objective, retiming only (ICCD'96 TurboMap)";
  period.shape = EngineSpec::Shape::kSearch;
  period.mode = LabelMode::kPlain;
  period.period_objective = true;
  period.strength = 1;
  period.trace_label = "flow:turbomap-period";
  specs.push_back(period);

  EngineSpec ts_bisect;
  ts_bisect.name = "turbosyn_bisect";
  ts_bisect.summary = "single-phase decomposition bisection from the identity bound";
  ts_bisect.shape = EngineSpec::Shape::kSearch;
  ts_bisect.mode = LabelMode::kDecomp;
  ts_bisect.strength = 2;
  ts_bisect.trace_label = "flow:turbosyn_bisect";
  specs.push_back(ts_bisect);

  EngineSpec tm_nopld;
  tm_nopld.name = "turbomap_nopld";
  tm_nopld.summary = "TurboMap with the n^2 cycle criterion instead of PLD";
  tm_nopld.shape = EngineSpec::Shape::kSearch;
  tm_nopld.mode = LabelMode::kPlain;
  tm_nopld.strength = 1;
  tm_nopld.use_pld = false;
  tm_nopld.trace_label = "flow:turbomap_nopld";
  specs.push_back(tm_nopld);

  EngineSpec ts_tt;
  ts_tt.name = "turbosyn_tt";
  ts_tt.summary = "TurboSYN with the truth-table multiplicity engine (no OBDDs)";
  ts_tt.shape = EngineSpec::Shape::kSeededSearch;
  ts_tt.mode = LabelMode::kDecomp;
  ts_tt.strength = 2;
  ts_tt.use_bdd = false;
  ts_tt.trace_label = "flow:turbosyn_tt";
  ts_tt.phase_ub_label = "phase:turbosyn_tt-ub";
  ts_tt.phase_search_label = "phase:turbosyn_tt-search";
  specs.push_back(ts_tt);

  return specs;
}

}  // namespace

FlowOptions EngineSpec::apply(const FlowOptions& base) const {
  FlowOptions out = base;
  if (use_bdd.has_value()) out.use_bdd = *use_bdd;
  if (use_pld.has_value()) out.use_pld = *use_pld;
  if (label_relaxation.has_value()) out.label_relaxation = *label_relaxation;
  if (low_cost_cuts.has_value()) out.low_cost_cuts = *low_cost_cuts;
  if (cmax.has_value()) out.cmax = *cmax;
  return out;
}

std::string EngineSpec::fingerprint() const {
  std::ostringstream out;
  out << "engine " << name << " shape=" << shape_name(shape)
      << " mode=" << label_mode_name(mode) << " period=" << (period_objective ? 1 : 0)
      << " strength=" << strength;
  append_delta(out, "bdd", use_bdd);
  append_delta(out, "pld", use_pld);
  append_delta(out, "relax", label_relaxation);
  append_delta(out, "lcc", low_cost_cuts);
  out << " cmax=" << (cmax.has_value() ? std::to_string(*cmax) : "-");
  return out.str();
}

std::string EngineSpec::quality_key() const {
  std::ostringstream out;
  out << label_mode_name(mode) << '/' << (period_objective ? "period" : "mdr") << "/cmax="
      << (cmax.has_value() ? std::to_string(*cmax) : "-") << "/bdd="
      << (use_bdd.has_value() ? (*use_bdd ? "1" : "0") : "-");
  return out.str();
}

const std::vector<EngineSpec>& engine_registry() {
  static const std::vector<EngineSpec> registry = build_registry();
  return registry;
}

const EngineSpec* find_engine(const std::string& name) {
  for (const EngineSpec& spec : engine_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const EngineSpec& engine_for_kind(FlowKind kind) {
  const EngineSpec* spec = find_engine(flow_kind_name(kind));
  TS_CHECK(spec != nullptr, "flow kind missing from the engine registry");
  return *spec;
}

std::string engine_list_text() {
  std::ostringstream out;
  for (const EngineSpec& spec : engine_registry()) {
    out << spec.name << " (strength " << spec.strength << ", " << shape_name(spec.shape)
        << "): " << spec.summary << '\n';
  }
  return out.str();
}

bool never_beats(const EngineSpec& weaker, const EngineSpec& stronger) {
  if (weaker.period_objective != stronger.period_objective) return false;
  if (weaker.strength < stronger.strength) return true;
  return weaker.strength == stronger.strength &&
         weaker.quality_key() == stronger.quality_key();
}

bool portfolio_prefers(int phi_a, int strength_a, std::size_t pos_a, int phi_b,
                       int strength_b, std::size_t pos_b) {
  if (phi_a != phi_b) return phi_a < phi_b;
  if (strength_a != strength_b) return strength_a > strength_b;
  return pos_a < pos_b;
}

FlowResult run_engine(const EngineSpec& spec, const Circuit& c, const FlowOptions& base) {
  const FlowOptions options = spec.apply(base);
  switch (spec.shape) {
    case EngineSpec::Shape::kSearch:
      return run_search_engine(spec, c, options);
    case EngineSpec::Shape::kSeededSearch:
      return run_seeded_search_engine(spec, c, options);
    case EngineSpec::Shape::kNoSearch:
      return run_no_search_engine(spec, c, options);
  }
  TS_CHECK(false, "unknown engine shape");
  return {};
}

}  // namespace turbosyn
