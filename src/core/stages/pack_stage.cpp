#include "core/stages/pack_stage.hpp"

#include <algorithm>
#include <utility>

#include "mapping/dedupe.hpp"
#include "mapping/pack.hpp"
#include "retime/cycle_ratio.hpp"

namespace turbosyn {

void PackStage::run(FlowContext& ctx) {
  Circuit mapped = std::move(*ctx.mapped);
  if (ctx.options.dedupe) mapped = dedupe_luts(mapped);
  if (ctx.options.pack) mapped = pack_luts(mapped, ctx.options.k);
  ctx.result.luts = mapped.num_gates();
  ctx.result.ffs = mapped.num_ffs_shared();
  ctx.result.exact_mdr = circuit_mdr(mapped).ratio;
  if (phi_from_mdr_) {
    // No ratio search ran; report the ceiling of the measured MDR, with
    // combinational circuits (MDR 0) reported as their pipelined period 1.
    ctx.result.phi = static_cast<int>(std::max<std::int64_t>(1, ctx.result.exact_mdr.ceil()));
  }
  ctx.count("luts", ctx.result.luts);
  ctx.count("ffs", ctx.result.ffs);
  ctx.mapped = std::move(mapped);
}

}  // namespace turbosyn
