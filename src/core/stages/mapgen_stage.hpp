#pragma once
// MapGenStage: converged labels -> K-LUT network (plus audit artifacts).

#include "core/driver.hpp"

namespace turbosyn {

/// Generates the mapped network from the search stage's winning labels at
/// FlowResult::phi. When the search published no labels (interrupted before
/// proving any φ), the identity mapping — the K-bounded input itself — is
/// the anytime answer at the fallback φ the search left in the result.
/// With FlowOptions::collect_artifacts, fills FlowArtifacts (labels copy,
/// records, mode) for the auditor.
class MapGenStage final : public Stage {
 public:
  /// `po_label_limit`: clock-period mode — PO labels must stay within φ,
  /// which also caps how far relaxation may raise heights.
  explicit MapGenStage(bool po_label_limit = false) : po_label_limit_(po_label_limit) {}

  const char* name() const override { return "mapgen"; }
  std::vector<ArtifactId> consumes() const override {
    return {ArtifactId::kInputCircuit, ArtifactId::kWinningLabels};
  }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kMappedNetwork}; }
  void run(FlowContext& ctx) override;

 private:
  bool po_label_limit_;
};

}  // namespace turbosyn
