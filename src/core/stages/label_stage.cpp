#include "core/stages/label_stage.hpp"

#include "base/check.hpp"

namespace turbosyn {

void LabelStage::run(FlowContext& ctx) {
  TS_CHECK(phi_ >= 1, "label probe ratio must be >= 1");
  ctx.label_mode = mode_;
  const LabelOptions lopts = ctx.options.label_options(mode_ == LabelMode::kDecomp);
  LabelEngine engine(ctx.input, lopts);
  LabelResult r = ledger_probe(ctx, engine, mode_, phi_);
  ctx.result.stats.accumulate(r.stats);
  ctx.result.status = combine_status(ctx.result.status, r.status);
  ctx.result.phi = phi_;
  ctx.have_labels = r.feasible;
  ctx.labels = std::move(r);
}

}  // namespace turbosyn
