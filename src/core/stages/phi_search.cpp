#include "core/stages/phi_search.hpp"

#include "base/check.hpp"
#include "base/logging.hpp"

namespace turbosyn {

void PhiSearchStage::run(FlowContext& ctx) {
  TS_CHECK(ctx.ub.has_value(), "phi search needs an upper bound");
  const int ub = *ctx.ub;
  ctx.label_mode = config_.mode;
  const LabelOptions lopts = ctx.options.label_options(config_.mode == LabelMode::kDecomp);
  LabelEngine engine(ctx.input, lopts);
  FlowResult& result = ctx.result;

  // Near-miss warm seed: valid lower bounds at some φ*, plain mode only.
  // The engine treats them exactly like its own cross-φ warm starts — probes
  // at φ <= φ* seed from them and still prove the fixpoint — and the ledger
  // keeps a seed-only provenance record (never a verdict: a genuine probe at
  // φ* may still run and be recorded).
  if (const WarmImport* wi = ctx.options.warm_import.get();
      wi != nullptr && config_.mode == LabelMode::kPlain && wi->phi >= 1 &&
      static_cast<int>(wi->labels.size()) == static_cast<int>(ctx.input.num_nodes())) {
    engine.import_warm(wi->phi, wi->labels, wi->dirty_hint);
    ProbeRecord seed_rec;
    seed_rec.phi = wi->phi;
    seed_rec.mode = LabelMode::kPlain;
    seed_rec.outcome = ProbeOutcome::kOk;
    seed_rec.feasible = false;  // a seed certifies nothing
    seed_rec.imported = true;
    seed_rec.seed_only = true;
    seed_rec.label_hash = hash_labels(wi->labels);
    ctx.ledger.record(std::move(seed_rec));
    ctx.count("warm_imports", 1);
  }

  const auto interrupted_before_probe = [&] {
    if (!lopts.budget.interrupted()) return false;
    result.status = combine_status(result.status, lopts.budget.check());
    return true;
  };

  if (config_.schedule == Schedule::kDescending) {
    TS_CHECK(config_.seed != nullptr && config_.seed->feasible,
             "descending scan needs a feasible certificate at the upper bound");
    ctx.labels = *config_.seed;
    ctx.have_labels = true;
    result.status = combine_status(result.status, config_.seed->status);
    // Record the imported certificate: (mode, ub) is settled, never probed.
    ProbeRecord seed_rec;
    seed_rec.phi = ub;
    seed_rec.mode = config_.mode;
    seed_rec.outcome = classify_probe(*config_.seed);
    seed_rec.status = config_.seed->status;
    seed_rec.feasible = true;
    seed_rec.imported = true;
    seed_rec.label_hash = hash_labels(config_.seed->labels);
    seed_rec.max_po_label = config_.seed->max_po_label;
    ctx.ledger.record(std::move(seed_rec));

    int hi = ub - 1;
    while (hi >= 1) {
      if (interrupted_before_probe()) break;
      LabelResult r = ledger_probe(ctx, engine, config_.mode, hi);
      result.stats.accumulate(r.stats);
      result.status = combine_status(result.status, r.status);
      TS_DEBUG("phi=" << hi << (r.feasible ? " feasible" : " infeasible")
                      << " sweeps=" << r.stats.sweeps);
      if (!r.feasible) break;  // certificate, budget verdict, or interrupt
      ctx.labels = std::move(r);
      --hi;
    }
    result.phi = hi + 1;
    return;
  }

  int lo = 1;
  int hi = ub;
  bool have_best = false;
  while (lo <= hi) {
    if (interrupted_before_probe()) break;
    const int mid = lo + (hi - lo) / 2;
    LabelResult r = ledger_probe(ctx, engine, config_.mode, mid);
    result.stats.accumulate(r.stats);
    result.status = combine_status(result.status, r.status);
    TS_DEBUG("phi=" << mid << (r.feasible ? " feasible" : " infeasible")
                    << " sweeps=" << r.stats.sweeps);
    if (is_interrupt(r.status)) break;  // labels did not converge: unusable
    const bool accepted =
        r.feasible && (!config_.period_objective || r.max_po_label <= mid);
    if (accepted) {
      ctx.labels = std::move(r);
      have_best = true;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (!have_best) {
    // Only a budget can make the always-realizable upper bound "infeasible";
    // downstream stages fall back to the identity mapping at that bound.
    const char* msg = config_.period_objective ? "clock-period upper bound was not feasible"
                                               : "upper bound ratio was not feasible";
    TS_CHECK(result.status != Status::kOk, msg);
    result.phi = ub;
    ctx.have_labels = false;
    return;
  }
  ctx.have_labels = true;
  // Bisection invariant: hi + 1 is the smallest accepted φ.
  result.phi = hi + 1;
}

}  // namespace turbosyn
