#pragma once
// PackStage: dedupe + pack the mapped network and extract its metrics.

#include "core/driver.hpp"

namespace turbosyn {

/// Structural LUT deduplication and mpack/flowpack-style packing (each
/// gated by FlowOptions), followed by the area/ratio metrics: LUT count,
/// register bits, exact MDR of the packed network.
class PackStage final : public Stage {
 public:
  /// `phi_from_mdr`: flows without a ratio search (FlowSYN-s) report
  /// φ = max(1, ceil(exact MDR)) measured on the packed network.
  explicit PackStage(bool phi_from_mdr = false) : phi_from_mdr_(phi_from_mdr) {}

  const char* name() const override { return "pack"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kMappedNetwork}; }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kPackedNetwork}; }
  void run(FlowContext& ctx) override;

 private:
  bool phi_from_mdr_;
};

}  // namespace turbosyn
