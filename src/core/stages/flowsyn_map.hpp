#pragma once
// FlowSynMapStage: the FlowSYN-s baseline's combinational mapping core.

#include "core/driver.hpp"

namespace turbosyn {

/// Cuts the circuit at all registers, maps each combinational block with
/// FlowSYN (FlowMap + functional decomposition), and merges the registers
/// back. No ratio search, no labels — φ is measured afterwards by
/// PackStage(phi_from_mdr). When the budget already fired on entry the
/// identity mapping is the anytime answer (flowmap itself is not
/// budget-aware).
class FlowSynMapStage final : public Stage {
 public:
  const char* name() const override { return "flowsyn-map"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kInputCircuit}; }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kMappedNetwork}; }
  void run(FlowContext& ctx) override;
};

}  // namespace turbosyn
