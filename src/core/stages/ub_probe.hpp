#pragma once
// UbProbeStage: establishes the search upper bound (kUpperBound artifact).

#include "core/driver.hpp"

namespace turbosyn {

/// Computes the upper bound the φ search may start from. All three kinds
/// are cheap graph computations, not label probes: the identity mapping
/// (one LUT per gate) realizes any of these bounds.
class UbProbeStage final : public Stage {
 public:
  enum class Kind {
    kIdentityMdr,  // ceil(MDR of the input): the identity mapping's ratio
    kClockPeriod,  // the input's clock period (clock-period objective)
    kFixed,        // externally proven bound (e.g. a previous phase's φ)
  };

  explicit UbProbeStage(Kind kind) : kind_(kind) {}
  /// kFixed at the given bound.
  explicit UbProbeStage(int ub) : kind_(Kind::kFixed), fixed_ub_(ub) {}

  const char* name() const override { return "ub-probe"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kInputCircuit}; }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kUpperBound}; }
  void run(FlowContext& ctx) override;

 private:
  Kind kind_;
  int fixed_ub_ = 0;
};

}  // namespace turbosyn
