#pragma once
// PipelineRetimeStage: the timing tail — pipelining + retiming, or plain
// min-period retiming.

#include "core/driver.hpp"

namespace turbosyn {

/// Finalizes FlowResult::mapped and the (period, stages) claim.
class PipelineRetimeStage final : public Stage {
 public:
  enum class Kind {
    /// MDR mode: measure the achievable period with input pipelining +
    /// retiming on a copy (gated by FlowOptions::pipeline); the published
    /// network stays un-retimed, so it is cycle-accurate equivalent to the
    /// input from the all-zero state.
    kPipelineRetime,
    /// Clock-period mode: min-period retiming applied in place, no
    /// pipelining (runs regardless of FlowOptions::pipeline).
    kRetimeOnly,
  };

  /// `final_budget_check`: flows whose mapping core is not budget-aware
  /// (FlowSYN-s) fold a deadline/cancel that fired during it into the
  /// status here, at the very end.
  explicit PipelineRetimeStage(Kind kind, bool final_budget_check = false)
      : kind_(kind), final_budget_check_(final_budget_check) {}

  const char* name() const override { return "pipeline-retime"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kPackedNetwork}; }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kTiming}; }
  void run(FlowContext& ctx) override;

 private:
  Kind kind_;
  bool final_budget_check_;
};

}  // namespace turbosyn
