#include "core/stages/ub_probe.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/retiming.hpp"

namespace turbosyn {

void UbProbeStage::run(FlowContext& ctx) {
  switch (kind_) {
    case Kind::kIdentityMdr: {
      // The identity mapping (one LUT per gate) is always valid, so
      // ceil(MDR of the input) bounds the achievable ratio.
      const Rational mdr = circuit_mdr(ctx.input).ratio;
      ctx.ub = static_cast<int>(std::max<std::int64_t>(1, mdr.ceil()));
      break;
    }
    case Kind::kClockPeriod:
      // The unmapped circuit's clock period (identity mapping, no retiming)
      // is always achievable.
      ctx.ub = static_cast<int>(std::max<std::int64_t>(1, circuit_clock_period(ctx.input)));
      break;
    case Kind::kFixed:
      TS_CHECK(fixed_ub_ >= 1, "fixed upper bound must be >= 1");
      ctx.ub = fixed_ub_;
      break;
  }
  ctx.count("upper_bound", *ctx.ub);
}

}  // namespace turbosyn
