#pragma once
// PhiSearchStage: search for the smallest feasible φ in [1, ub].

#include <memory>

#include "core/driver.hpp"

namespace turbosyn {

/// Runs the φ search over one LabelEngine (all probes share the
/// decomposition cache; plain-mode probes warm-start from the nearest
/// previously feasible φ). Every probe goes through the ProbeLedger, so no
/// φ is probed twice and every verdict is recorded with its provenance.
/// Publishes the winning labels (kWinningLabels) and sets FlowResult::phi;
/// when stopped before proving any φ, `have_labels` stays false and phi
/// falls back to the upper bound (the identity mapping realizes it).
class PhiSearchStage final : public Stage {
 public:
  enum class Schedule {
    /// Bisection on [1, ub]. Used when ub's feasibility is only implied by
    /// construction (identity mapping): every probe is fresh.
    kBisect,
    /// Descending scan ub-1, ub-2, ... from an imported certificate at ub.
    /// Feasibility is monotone in φ, so both schedules find the same
    /// minimum; the scan pays for exactly one infeasible probe (the
    /// divergence certificate), where bisection would run about half of
    /// log2(ub) of them — the dominant cost with decomposition, whose
    /// isolation early-exit is unsound and disabled. An interrupt mid-scan
    /// simply keeps the last feasible probe as the anytime answer.
    kDescending,
  };

  struct Config {
    Schedule schedule = Schedule::kBisect;
    LabelMode mode = LabelMode::kPlain;
    /// Clock-period objective: a probe is accepted only when additionally
    /// max_po_label <= φ (PO labels bound the un-pipelined period).
    bool period_objective = false;
    /// kDescending only: labels already proven feasible at φ == ub by
    /// another search. Recorded in the ledger as an imported certificate;
    /// the scan starts at ub-1 and never re-probes ub. Must be feasible —
    /// the labels themselves witness feasibility, so a degraded feasible
    /// result is a valid seed (only infeasible verdicts lose certificate
    /// power under degradation).
    std::shared_ptr<const LabelResult> seed;
  };

  explicit PhiSearchStage(Config config) : config_(std::move(config)) {}

  const char* name() const override { return "phi-search"; }
  std::vector<ArtifactId> consumes() const override {
    return {ArtifactId::kInputCircuit, ArtifactId::kUpperBound};
  }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kWinningLabels}; }
  void run(FlowContext& ctx) override;

 private:
  Config config_;
};

}  // namespace turbosyn
