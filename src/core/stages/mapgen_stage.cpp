#include "core/stages/mapgen_stage.hpp"

#include <utility>

namespace turbosyn {

void MapGenStage::run(FlowContext& ctx) {
  if (!ctx.have_labels) {
    // The run was stopped before any probe converged. The identity mapping
    // (the K-bounded input itself, one LUT per gate) is always valid, so the
    // anytime answer is the input network at the search's upper bound.
    ctx.mapped = ctx.input;
    ctx.count("identity_fallback", 1);
    return;
  }
  const LabelOptions lopts = ctx.options.label_options(ctx.label_mode == LabelMode::kDecomp);
  MapGenOptions mopts;
  mopts.label_relaxation = ctx.options.label_relaxation;
  mopts.low_cost_cuts = ctx.options.low_cost_cuts;
  if (po_label_limit_) mopts.po_label_limit = ctx.result.phi;
  Circuit mapped = generate_sequential_mapping(
      ctx.input, ctx.labels, ctx.result.phi, lopts, mopts, ctx.result.stats,
      ctx.options.collect_artifacts ? &ctx.result.artifacts.records : nullptr);
  if (ctx.options.collect_artifacts) {
    ctx.result.artifacts.valid = true;
    ctx.result.artifacts.phi = ctx.result.phi;
    // Copy, not move: multi-phase flows keep reading the context's labels.
    ctx.result.artifacts.labels = ctx.labels;
    ctx.result.artifacts.mode = ctx.label_mode;
    ctx.result.artifacts.po_limited = po_label_limit_;
  }
  ctx.count("luts", mapped.num_gates());
  ctx.mapped = std::move(mapped);
}

}  // namespace turbosyn
