#include "core/stages/flowsyn_map.hpp"

#include <utility>

#include "mapping/flowmap.hpp"
#include "mapping/seq_split.hpp"

namespace turbosyn {

void FlowSynMapStage::run(FlowContext& ctx) {
  if (ctx.options.budget.interrupted()) {
    // Stopped before the combinational mapping even started: the identity
    // mapping is the anytime answer, as in the ratio searches.
    ctx.result.status = combine_status(ctx.result.status, ctx.options.budget.check());
    ctx.mapped = ctx.input;
    ctx.count("identity_fallback", 1);
    return;
  }
  const SequentialSplit split = split_at_registers(ctx.input);
  FlowMapOptions fopts;
  fopts.k = ctx.options.k;
  fopts.enable_decomposition = true;
  fopts.cmax = ctx.options.cmax;
  fopts.min_cut_height_span = ctx.options.height_span;
  fopts.use_bdd = ctx.options.use_bdd;
  const FlowMapResult mapping = flowmap(split.comb, fopts);
  const Circuit mapped_comb = generate_mapped_circuit(split.comb, mapping, fopts);
  Circuit merged = merge_registers(ctx.input, split, mapped_comb);
  ctx.count("luts", merged.num_gates());
  ctx.mapped = std::move(merged);
}

}  // namespace turbosyn
