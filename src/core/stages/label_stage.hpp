#pragma once
// LabelStage: one fixed-φ label probe (no search).

#include "core/driver.hpp"

namespace turbosyn {

/// Probes a single target ratio φ and publishes its labels. The building
/// block for custom pipelines (and the driver tests): where PhiSearchStage
/// schedules many probes, this runs exactly one, still through the ledger.
/// `have_labels` is set iff the probe was feasible; FlowResult::phi is set
/// to φ either way, so a downstream MapGenStage maps the certified labels
/// or falls back to the identity mapping.
class LabelStage final : public Stage {
 public:
  explicit LabelStage(int phi, LabelMode mode = LabelMode::kPlain)
      : phi_(phi), mode_(mode) {}

  const char* name() const override { return "label"; }
  std::vector<ArtifactId> consumes() const override { return {ArtifactId::kInputCircuit}; }
  std::vector<ArtifactId> produces() const override { return {ArtifactId::kWinningLabels}; }
  void run(FlowContext& ctx) override;

 private:
  int phi_;
  LabelMode mode_;
};

}  // namespace turbosyn
