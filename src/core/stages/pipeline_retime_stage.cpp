#include "core/stages/pipeline_retime_stage.hpp"

#include <utility>

#include "retime/pipeline.hpp"
#include "retime/retiming.hpp"

namespace turbosyn {

void PipelineRetimeStage::run(FlowContext& ctx) {
  FlowResult& result = ctx.result;
  Circuit mapped = std::move(*ctx.mapped);
  ctx.mapped.reset();
  if (kind_ == Kind::kPipelineRetime) {
    if (ctx.options.pipeline) {
      // Measure the achievable period on a copy: `mapped` stays un-retimed
      // so it is cycle-accurate equivalent to the input from the all-zero
      // state.
      Circuit pipelined = mapped;
      const PipelineResult p = pipeline_and_retime(pipelined, 64, &ctx.options.budget);
      result.period = p.period;
      result.pipeline_stages = p.stages;
      result.status = combine_status(result.status, p.status);
      ctx.count("retime_configs", p.configs_tried);
      ctx.count("pipeline_stages", p.stages);
    }
    result.mapped = std::move(mapped);
  } else {
    result.period = retime_min_period(mapped);
    result.mapped = std::move(mapped);
  }
  if (final_budget_check_) {
    result.status = combine_status(result.status, ctx.options.budget.check());
  }
}

}  // namespace turbosyn
