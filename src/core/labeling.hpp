#pragma once
// Iterative label computation (TurboMap) with sequential functional
// decomposition (TurboSYN) and positive loop detection (PLD).
//
// For a target ratio phi, node labels are lower-bounded iteratively:
//   l(source) = 0,  l(gate) starts at 1,
//   L(v) = max over fanin edges e(u,v) of l(u) - phi*w(e),
//   l_new(v) = L(v)   if a K-cut of E_v with height <= L(v) exists
//                     (or, TurboSYN only, a min-cut of width <= Cmax at
//                      height L(v)-h decomposes with achieved label <= L(v)),
//              L(v)+1 otherwise.
// Lower bounds only grow; the computation converges iff a mapping with MDR
// ratio <= phi exists (no positive loop). SCCs are processed in topological
// order. PLD (the paper's Section 4): after each sweep over an SCC, build
// the predecessor graph
//   Pi[v] = { u : e(u,v) in G, l(u) - phi*w(e) + 1 >= l(v) }   (l(v) > 1)
// and declare a positive loop as soon as the SCC is totally isolated from
// the PIs in it; detection is guaranteed within 6n sweeps for an SCC of n
// nodes (vs the previous n^2 bound, kept for the ablation benchmark).
//
// LabelEngine is the production entry point: one engine amortizes the graph
// analysis (SCCs, condensation wavefronts, zero-weight levels), shares the
// decomposition cache across probes, warm-starts each probe from the nearest
// previously feasible phi, and runs label updates in parallel (independent
// SCCs of a condensation wavefront concurrently; within an SCC, the gates of
// one zero-weight topological level as a batch). Updates are computed against
// the batch-start label snapshot and applied afterwards, so the iteration is
// race-free and its trajectory is identical for every thread count > 1;
// because labels form a monotone lower-bound iteration with a unique least
// fixpoint, converged labels are identical to the sequential engine's.

#include <cstdint>
#include <map>
#include <vector>

#include "base/run_budget.hpp"
#include "core/expanded.hpp"
#include "decomp/roth_karp.hpp"
#include "graph/scc.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

struct LabelOptions {
  int k = 5;
  bool enable_decomposition = false;  // false: TurboMap, true: TurboSYN
  int cmax = 15;                      // max resynthesis cut width (paper: 15)
  int height_span = 3;                // decomposition min-cut heights L(v)..L(v)-span+1
  bool use_pld = true;                // false: fall back to the n^2 stopping criterion
  bool use_bdd = true;                // decomposition multiplicity engine
  /// Extra cap on per-SCC sweeps (0 = only the criterion's own bound). Used
  /// by the PLD ablation bench to bound the n^2 baseline's runtime; when the
  /// cap fires the result reports infeasible with Status::kDegraded (a
  /// budget verdict, not an infeasibility certificate).
  std::int64_t sweep_budget = 0;
  /// Concurrency of the label engine: 0 = hardware concurrency, 1 = the
  /// sequential legacy sweep order, N > 1 = at most N concurrent updates.
  int num_threads = 0;
  /// Dirty-set incremental recomputation across φ probes: a warm-seeded
  /// probe re-runs only nodes whose label bound can actually move (seeded
  /// from the φ-sensitive and φ-exposed gates, propagated along fanouts),
  /// then proves the fixpoint with a verification sweep. When the engine's
  /// cone-dependency metadata matches the seed (the common descending-probe
  /// case), the verification skips every gate whose recorded read-set is
  /// untouched — quiescence itself certifies the fixpoint; otherwise one
  /// full sweep closes the gap. Converged labels are bit-identical to a
  /// cold run (the plain update is monotone with a unique least fixpoint).
  /// Only active for the plain update rule with PLD on and no sweep budget —
  /// decomposition probes always start cold and run full sweeps (the PR 1
  /// warm-start rule), and the n²-criterion/sweep-budget ablation modes
  /// keep their exact legacy sweep accounting.
  bool incremental = true;
  /// Deadline / cancellation / resource ceilings; default is unlimited, and
  /// an unlimited budget leaves results bit-identical to the budget-free
  /// code. Copies share state, so the same budget governs the whole run.
  RunBudget budget;
  ExpandedOptions expansion;
};

struct LabelStats {
  std::int64_t sweeps = 0;           // per-SCC iterations, summed
  std::int64_t node_updates = 0;     // LabelUpdate invocations
  std::int64_t cut_tests = 0;        // flow-based K-cut existence tests
  std::int64_t decomp_attempts = 0;  // resynthesis attempts
  std::int64_t decomp_successes = 0;
  std::int64_t cache_hits = 0;           // decomposition-memo hits
  std::int64_t flow_augmentations = 0;   // augmenting paths across all cut tests
  // Incremental-recomputation counters (zero on cold/full-sweep probes).
  std::int64_t nodes_skipped = 0;  // gates proven quiescent and skipped
                                   // (dirty rounds, metadata-verified
                                   // sweeps, hoisted early exits)
  std::int64_t dirty_rounds = 0;   // dirty-worklist rounds run
  // Budget interference counters (all zero on an unlimited run).
  std::int64_t bdd_budget_hits = 0;     // attempts cut short by the BDD node ceiling
  std::int64_t decomp_budget_hits = 0;  // attempts refused by the attempt ceiling
  std::int64_t flow_budget_hits = 0;    // cut tests cut short by the augmentation ceiling
  /// Nodes whose decomposition was abandoned under a resource ceiling, i.e.
  /// the nodes that fell back to their plain K-cut label (sound, possibly
  /// weaker). May contain repeats across sweeps; dedupe before reporting.
  std::vector<NodeId> degraded_nodes;

  /// Adds `from`'s counters (and degraded-node list) onto this.
  void accumulate(const LabelStats& from);
};

struct LabelResult {
  /// True iff the iteration converged: a mapping with MDR ratio <= phi
  /// exists. When false, `status` tells whether that verdict is a genuine
  /// infeasibility certificate (kOk) or budget-imposed (anything else).
  bool feasible = false;
  std::vector<int> labels;  // per node; meaningful when feasible
  int max_po_label = 0;     // for the clock-period (no pipelining) check
  /// kOk: exact. kDegraded: a resource ceiling (sweep/BDD/decomposition/
  /// flow budget) altered the computation — feasible results are still valid
  /// mappings, infeasible verdicts are no longer certificates.
  /// kDeadlineExceeded / kCancelled: the run was interrupted; labels did not
  /// converge and must not be used for mapping generation.
  Status status = Status::kOk;
  LabelStats stats;
};

/// Memoizes decomposition attempt outcomes across sweeps: the result of
/// "decompose the min-cut of E_v at this height" only depends on the cut and
/// its inputs' labels, which repeat heavily between iterations.
struct DecompCache {
  std::vector<std::unordered_map<std::uint64_t, bool>> per_node;
};

/// Incremental, parallel label computation for a fixed circuit and options.
/// Construction precomputes the SCC condensation, its wavefronts and the
/// zero-weight level batches; compute() may then be called for any sequence
/// of target ratios. All probes of one engine share the decomposition cache,
/// and each probe warm-starts from the converged labels of the nearest
/// previously feasible phi >= the probe (labels are antitone in phi, so
/// those labels are valid lower bounds that shortcut the iteration).
class LabelEngine {
 public:
  LabelEngine(const Circuit& c, const LabelOptions& options);

  /// Runs the label computation for target ratio phi (>= 1). For a fixed
  /// engine and phi the result is deterministic, and converged labels are
  /// identical for every num_threads setting.
  LabelResult compute(int phi);

  /// Imports externally derived labels as a warm seed for probes at
  /// phi <= `phi` (plain update rule only). Caller contract: `labels` must
  /// be a pointwise lower bound of the least fixpoint at `phi` — e.g. a
  /// near-miss cache transfer where every node with a structurally changed
  /// fanin cone was reset to its base label. The seed is never a
  /// certificate: the iteration still proves the fixpoint (and any verdict)
  /// itself, so results stay bit-identical to a cold run. `dirty_hint`
  /// lists the gates reset below the donor fixpoint; incremental probes add
  /// them to the initial dirty set.
  void import_warm(int phi, std::vector<int> labels, std::vector<NodeId> dirty_hint);

 private:
  struct Batch {
    int begin = 0;  // range into CompPlan::batch_gates
    int end = 0;
  };
  struct CompPlan {
    std::vector<NodeId> gates;        // updatable gates, zero-weight topo order
    std::vector<NodeId> batch_gates;  // same gates, (level, topo position) order
    std::vector<Batch> batches;       // one per zero-weight level
  };

  /// Verdict of one SCC's iteration. kInfeasible is a divergence certificate
  /// only when no resource ceiling interfered (tracked via LabelStats).
  enum class CompOutcome { kConverged, kInfeasible, kBudgetExhausted, kInterrupted };

  CompOutcome process_comp_sequential(int comp, int phi, std::vector<int>& labels,
                                      LabelStats& stats, CutScratch& scratch,
                                      std::int64_t sweep_budget, bool record_meta = false);
  CompOutcome process_comp_parallel(int comp, int phi, LabelResult& result);
  /// Dirty-worklist iteration for a warm-seeded plain-update probe, followed
  /// by the verification sweep. With `meta_fast` (cone-dependency metadata
  /// matches the seed) the verification skips gates whose recorded read-set
  /// is untouched since their last evaluation; otherwise it falls back to
  /// the full-sweep loop (whose first unchanged sweep proves the fixpoint).
  /// `hint_seeded` marks a donor-import probe whose caller pre-marked the
  /// mutated gates; together with meta_fast it gates whether the dirty
  /// rounds run at all (a metadata-less, hint-less re-seed goes straight to
  /// the fallback, which costs exactly the cold iteration).
  CompOutcome process_comp_incremental(int comp, int phi, std::vector<int>& labels,
                                       LabelStats& stats, CutScratch& scratch, bool meta_fast,
                                       bool hint_seeded);
  /// label_update plus cone-dependency bookkeeping: stamps the evaluation,
  /// and when a cut test ran, refreshes the gate's recorded read-set and
  /// φ-floor from the expanded network it built. An early-exit evaluation
  /// (l >= L+1, no network) depends on direct fanins only, so it clears
  /// both.
  int eval_update_recorded(NodeId v, int phi, std::span<const int> labels, LabelStats& stats,
                           CutScratch& scratch);
  /// True iff no label in v's recorded read-set has risen since v's last
  /// recorded evaluation (so re-evaluating v is provably a no-op as long as
  /// v is not dirty, φ-sensitive or φ-exposed).
  bool cone_reads_fresh(NodeId v) const;
  /// True iff warm-seeded probes may use the dirty-set machinery (see
  /// LabelOptions::incremental for the gating rationale).
  bool incremental_active() const {
    return options_.incremental && !options_.enable_decomposition && options_.use_pld &&
           options_.sweep_budget == 0;
  }
  void merge_worker_stats(LabelStats& into);

  const Circuit& c_;
  LabelOptions options_;
  int threads_ = 1;       // effective participant count (workers + caller)
  int caller_lane_ = 0;   // scratch slot the calling thread uses
  DecompCache cache_;
  SccDecomposition scc_;
  std::vector<int> topo_pos_;
  std::vector<CompPlan> plans_;          // indexed by component
  std::vector<std::vector<int>> waves_;  // gate-bearing components per wavefront
  std::vector<CutScratch> scratch_;      // one per pool lane
  std::vector<LabelStats> lane_stats_;
  std::vector<int> batch_result_;        // Jacobi buffer for one level batch
  std::map<int, std::vector<int>> warm_;  // feasible phi -> converged labels
  /// Imported (near-miss) warm entries, keyed like warm_: their labels are
  /// valid lower bounds but NOT converged fixpoints, so the exact-φ replay
  /// shortcut must skip them; the value is the dirty hint for the seed.
  std::map<int, std::vector<NodeId>> warm_hint_;
  std::vector<std::vector<NodeId>> phi_sensitive_;  // per comp: gates with a registered fanin
  std::vector<std::uint8_t> dirty_;                 // per-node dirty flags (incremental probes)

  // Cone-dependency metadata for verification-free incremental probes. A cut
  // test reads exactly the labels of the copies its expanded network interned
  // (cone_reads_), and its verdict depends on φ only through the allowed bits
  // of register-crossed copies: copy (u, w) is allowed iff l(u) - φ·w + 1 <=
  // H, which as φ decreases can only flip allowed -> mandatory, and only once
  // φ < (l(u)+1-H)/w. cone_phi_floor_ stores the largest such threshold over
  // the recorded network, so the verdict is provably φ-independent for every
  // probe φ >= floor as long as the labels it read are unchanged. Evaluations
  // and raises are stamped on a shared monotone clock, so "no read label rose
  // since my last evaluation" is one comparison per read. Recording runs only
  // on the single-threaded sequential/incremental paths; meta_valid_
  // certifies that every gate's metadata describes its evaluation at the
  // fixpoint stored in warm_[meta_phi_] — only then may a probe seeded from
  // that entry replace the full verification sweep with freshness checks.
  std::vector<std::vector<NodeId>> cone_reads_;   // per gate: labels its last cut test read
  std::vector<int> cone_phi_floor_;               // verdict φ-independent for φ >= floor
  std::vector<std::uint64_t> eval_stamp_;         // meta clock at last recorded evaluation
  std::vector<std::uint64_t> raise_stamp_;        // meta clock at last label raise
  std::vector<std::uint8_t> read_mark_;           // harvest dedupe scratch
  std::uint64_t meta_clock_ = 0;
  bool meta_valid_ = false;
  int meta_phi_ = 0;
};

/// Runs the label computation for target ratio phi (>= 1). One-shot
/// convenience wrapper over LabelEngine.
LabelResult compute_labels(const Circuit& c, int phi, const LabelOptions& options);

/// Single label update for node v given current lower bounds (exposed for
/// tests). Returns the new label (never below labels[v]); does not modify
/// `labels`. `cache` (optional) memoizes decomposition outcomes across
/// calls; `scratch` (optional) reuses cut-test buffers across calls.
int label_update(const Circuit& c, std::span<const int> labels, int phi, NodeId v,
                 const LabelOptions& options, LabelStats& stats, DecompCache* cache = nullptr,
                 CutScratch* scratch = nullptr);

/// The realization the label computation justifies for a node at its final
/// label: either a plain K-cut of E_v, or a decomposition over a wide cut.
struct NodeRealization {
  std::vector<SeqCutNode> cut;
  TruthTable func;                     // LUT function over `cut` (plain cuts)
  std::optional<DecompResult> decomp;  // present iff resynthesis is required;
                                       // its DecompFanin::input indices refer
                                       // to `cut` positions
};

/// Recomputes a realization for node v at height limit `height` (typically
/// the final label, or a relaxed height). Returns nullopt if none exists at
/// that height (callers then retry at height+1, which always succeeds at
/// l(v)+... the trivial fanin cut).
/// `shared` (optional): predicate marking signals already used as LUT inputs
/// elsewhere; when given, plain cuts are chosen by the paper's low-cost
/// K-cut rule (minimum size, then maximum sharing).
std::optional<NodeRealization> realize_node(
    const Circuit& c, std::span<const int> labels, int phi, NodeId v, int height,
    const LabelOptions& options, LabelStats& stats, DecompCache* cache = nullptr,
    const std::function<bool(const SeqCutNode&)>* shared = nullptr,
    CutScratch* scratch = nullptr);

}  // namespace turbosyn
