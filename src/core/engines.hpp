#pragma once
// Engine registry: every synthesis flow as a data-driven EngineSpec.
//
// The four paper flows (and their variants) differ only in which probe
// schedule, label-update rule and timing tail they run — the DAC'97
// machinery underneath is shared. An EngineSpec captures exactly those
// degrees of freedom: the pipeline shape, the label mode, the φ schedule,
// the objective, and a handful of FlowOptions deltas. run_engine() expands a
// spec into the stage list the FlowDriver executes, so "add a fifth engine"
// is one registry entry, not a fifth hand-written pipeline.
//
// The registry is also the soundness basis of portfolio racing
// (core/portfolio.hpp): each spec carries a dominance `strength`, and
// never_beats() encodes the domain facts that make first-to-certificate
// cancellation safe —
//
//   - decomposition is strictly label-improving, so for a fixed circuit and
//     options φ(decomp) <= φ(plain) (TurboSYN never loses to TurboMap);
//   - TurboMap's φ is minimal over all plain K-LUT mappings, so
//     φ(plain) <= ceil(MDR(FlowSYN-s mapping)) (a label search never loses
//     to the search-free baseline);
//   - two engines with equal strength and equal quality_key() resolve to
//     the same deterministic computation, hence certify the same φ.
//
// A weaker engine may therefore be cancelled the moment a dominating engine
// finishes with a certificate: the race's outcome is bit-identical to
// running every engine to completion and picking the best.

#include <optional>
#include <string>
#include <vector>

#include "core/flows.hpp"

namespace turbosyn {

struct EngineSpec {
  /// Pipeline shape run_engine() expands the spec into.
  enum class Shape : std::uint8_t {
    /// UB probe, φ search, mapgen, pack, timing tail (the TurboMap family).
    kSearch,
    /// Two phases sharing one ledger: a plain kSearch pass provides the
    /// upper bound and seed labels, then a descending scan in `mode` runs
    /// from that imported certificate (TurboSYN).
    kSeededSearch,
    /// Direct mapping with no ratio search; φ is measured after packing
    /// (FlowSYN-s).
    kNoSearch,
  };

  std::string name;     // CLI spelling; also the ledger/trace/cache tag
  std::string summary;  // one-liner for --engines-list
  Shape shape = Shape::kSearch;
  /// Update rule of the (final) search stage: plain K-cuts or K-cuts plus
  /// sequential functional decomposition.
  LabelMode mode = LabelMode::kPlain;
  /// Clock-period objective (the ICCD'96 TurboMap): probes additionally
  /// require max_po_label <= φ, mapgen caps relaxation at the PO labels,
  /// and the timing tail retimes without pipelining.
  bool period_objective = false;
  /// Dominance rank for sound cancellation: 0 = no search (FlowSYN-s),
  /// 1 = plain label search (TurboMap), 2 = decomposition search (TurboSYN).
  /// Strictly higher strength under the same objective can never certify a
  /// larger φ (see the file comment).
  int strength = 0;

  // FlowOptions deltas (unset = inherit the caller's options). These are
  // what makes a registry variant a different engine: e.g. a truth-table
  // multiplicity engine (use_bdd=false) or a tighter cmax.
  std::optional<bool> use_bdd;
  std::optional<bool> use_pld;
  std::optional<bool> label_relaxation;
  std::optional<bool> low_cost_cuts;
  std::optional<int> cmax;

  /// Root trace span. The four original flows keep their historical
  /// spellings ("flow:turbomap", ...); variants use "flow:<name>".
  std::string trace_label;
  /// kSeededSearch only: the two phase spans ("phase:turbomap-ub",
  /// "phase:turbosyn-search" for the original TurboSYN).
  std::string phase_ub_label;
  std::string phase_search_label;

  /// The caller's options with this engine's deltas applied. A spec with no
  /// deltas returns the options unchanged, so the four canonical engines
  /// stay bit-identical to the pre-registry flows.
  FlowOptions apply(const FlowOptions& base) const;

  /// Canonical text of everything spec-side that can change this engine's
  /// result for a fixed circuit and caller options — cache-key material.
  std::string fingerprint() const;

  /// The quality-relevant part of the fingerprint: the knobs that determine
  /// the certified φ (mode, objective, cmax, multiplicity engine), with
  /// speed-only knobs (use_pld) and mapping-structure knobs
  /// (label_relaxation, low_cost_cuts) excluded. Equal strength + equal
  /// quality key ⇒ identical certified φ: the basis of tie cancellation.
  std::string quality_key() const;
};

/// The built-in engines, in registry order: the four paper flows first
/// (turbomap, turbosyn, flowsyn_s, turbomap_period), then the variants
/// (turbosyn_bisect, turbomap_nopld, turbosyn_tt).
const std::vector<EngineSpec>& engine_registry();

/// Lookup by CLI name; nullptr when unknown.
const EngineSpec* find_engine(const std::string& name);

/// The registry entry behind a classic FlowKind (always present).
const EngineSpec& engine_for_kind(FlowKind kind);

/// Human-readable registry listing for --engines-list.
std::string engine_list_text();

/// True when `weaker`'s certified φ can never be smaller than `stronger`'s
/// on any circuit under shared caller options: same objective, and either
/// strictly lower strength or equal strength with an equal quality key.
/// This is the dominance predicate portfolio cancellation and the
/// "portfolio" audit check both rest on.
bool never_beats(const EngineSpec& weaker, const EngineSpec& stronger);

/// The portfolio selection order, shared by the runner, the auditor and the
/// fuzz oracle: engine a (φ `phi_a`, strength `strength_a`, list position
/// `pos_a`) is preferred over b when its φ is smaller, or φ ties and its
/// strength is higher, or both tie and it is listed earlier. Total and
/// deterministic for distinct positions.
bool portfolio_prefers(int phi_a, int strength_a, std::size_t pos_a, int phi_b,
                       int strength_b, std::size_t pos_b);

/// Runs one engine end to end: expands the spec into its stage pipeline and
/// drives it. The backbone of run_flow() and of every portfolio lane.
FlowResult run_engine(const EngineSpec& spec, const Circuit& c, const FlowOptions& options);

}  // namespace turbosyn
