#include "core/portfolio.hpp"

#include <chrono>
#include <mutex>
#include <optional>
#include <utility>

#include "base/check.hpp"
#include "base/thread_pool.hpp"
#include "base/trace.hpp"
#include "core/probe_ledger.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One engine's slot in the race. Slots are constructed once and never
/// moved: losing engines are cancelled through `token`'s stable address
/// while their lane is still running.
struct Lane {
  const EngineSpec* spec = nullptr;
  FlowResult result;
  CancelToken token;
  bool ran = false;        // run_engine() completed (any status)
  bool skipped = false;    // dominated before it started; never ran
  bool certified = false;  // finished with status kOk
  bool cancel_requested = false;
  double seconds = 0.0;
  std::int64_t carved_ms = 0;
};

/// The cancellation rule: winner W (finished, certified) justifies stopping
/// engine E iff E provably cannot beat W *and* the selection order would
/// prefer W over E even on a φ tie. The position clause keeps equal-quality
/// duplicates deterministic: a later-listed twin never cancels an
/// earlier-listed one.
bool race_dominates(const EngineSpec& w, std::size_t pos_w, const EngineSpec& e,
                    std::size_t pos_e) {
  return never_beats(e, w) && (e.strength < w.strength || pos_w < pos_e);
}

/// Severity rank for the no-certificate fallback: prefer the least-bad
/// status (the Status enum is ordered by severity).
int severity(Status s) { return static_cast<int>(s); }

}  // namespace

std::string validate_portfolio(const std::vector<const EngineSpec*>& engines) {
  if (engines.empty()) return "portfolio needs at least one engine";
  for (std::size_t i = 0; i < engines.size(); ++i) {
    if (engines[i] == nullptr) return "portfolio contains an unknown engine";
    for (std::size_t j = 0; j < i; ++j) {
      if (engines[j]->name == engines[i]->name) {
        return "engine listed twice in portfolio: " + engines[i]->name;
      }
    }
    if (engines[i]->period_objective != engines[0]->period_objective) {
      return "portfolio mixes clock-period and MDR objectives (" + engines[0]->name +
             " vs " + engines[i]->name + "): their phi values are incomparable";
    }
  }
  return {};
}

std::string parse_portfolio(const std::string& spec_list,
                            std::vector<const EngineSpec*>& engines) {
  engines.clear();
  std::size_t begin = 0;
  while (begin <= spec_list.size()) {
    std::size_t end = spec_list.find(',', begin);
    if (end == std::string::npos) end = spec_list.size();
    const std::string name = spec_list.substr(begin, end - begin);
    if (name.empty()) return "portfolio has an empty engine name (stray comma?)";
    const EngineSpec* spec = find_engine(name);
    if (spec == nullptr) {
      return "unknown engine '" + name + "' (see --engines-list)";
    }
    engines.push_back(spec);
    if (end == spec_list.size()) break;
    begin = end + 1;
  }
  return validate_portfolio(engines);
}

FlowResult run_portfolio(const std::vector<const EngineSpec*>& engines, const Circuit& c,
                         const FlowOptions& options, const PortfolioOptions& popt) {
  const std::string invalid = validate_portfolio(engines);
  TS_CHECK(invalid.empty(), "invalid portfolio: " << invalid);
  const std::size_t n = engines.size();
  const auto start = Clock::now();

  std::string names;
  for (const EngineSpec* spec : engines) {
    if (!names.empty()) names += ',';
    names += spec->name;
  }
  TraceSpan flow_span(options.trace, "flow:portfolio", names);

  std::vector<Lane> lanes(n);
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i].spec = engines[i];
    lanes[i].token.chain_to(options.budget.cancel_token());
  }

  std::mutex mu;

  const auto run_lane = [&](std::size_t i) {
    Lane& lane = lanes[i];
    {
      const std::lock_guard<std::mutex> lock(mu);
      // Dominated before starting: a finished certificate already proves
      // this engine cannot win, so skip the run entirely.
      for (std::size_t j = 0; j < n; ++j) {
        if (lanes[j].certified && race_dominates(*lanes[j].spec, j, *lane.spec, i)) {
          lane.skipped = true;
          lane.cancel_requested = true;
          lane.result.status = Status::kCancelled;
          break;
        }
      }
    }
    if (lane.skipped) {
      TraceSpan span(flow_span, "engine:" + lane.spec->name, "cancelled");
      span.counter("cancelled", 1);
      return;
    }

    FlowOptions opt = options;
    opt.budget = options.budget.fork();
    opt.budget.set_cancel_token(&lane.token);
    if (popt.budget_pool != nullptr) {
      lane.carved_ms = popt.budget_pool->carve(popt.slice_ms);
      if (lane.carved_ms > 0) opt.budget.tighten_deadline_ms(lane.carved_ms);
    }
    // Concurrent lanes are the parallelism; a nested for_each would
    // deadlock the shared pool.
    if (popt.concurrent && n > 1) opt.num_threads = 1;

    // Explicit parent: concurrent lanes run on pool threads, outside the
    // caller's per-thread span stack.
    TraceSpan span(flow_span, "engine:" + lane.spec->name);
    const auto lane_start = Clock::now();
    FlowResult r = run_engine(*lane.spec, c, opt);
    lane.seconds = seconds_since(lane_start);
    if (popt.budget_pool != nullptr) {
      popt.budget_pool->refund(lane.carved_ms,
                               static_cast<std::int64_t>(lane.seconds * 1000.0));
    }

    const std::lock_guard<std::mutex> lock(mu);
    lane.ran = true;
    lane.result = std::move(r);
    lane.certified = lane.result.status == Status::kOk;
    if (lane.certified) {
      // A certificate that outran a cancel request still counts: the run
      // finished exactly, so it is a finisher, not a casualty.
      lane.cancel_requested = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || lanes[j].ran || lanes[j].skipped || lanes[j].cancel_requested) continue;
        if (race_dominates(*lane.spec, i, *lanes[j].spec, j)) {
          lanes[j].token.cancel();
          lanes[j].cancel_requested = true;
        }
      }
    } else if (lane.cancel_requested) {
      span.set_detail("cancelled");
      span.counter("cancelled", 1);
    }
    span.counter("phi", lane.result.phi);
  };

  if (popt.concurrent && n > 1) {
    ThreadPool::global().for_each(
        n, [&](std::size_t item, int) { run_lane(item); }, popt.max_workers);
  } else {
    for (std::size_t i = 0; i < n; ++i) run_lane(i);
  }

  // Selection: best certificate under (φ, -strength, position); without any
  // certificate, the least-degraded finished result under the same order.
  std::optional<std::size_t> winner;
  for (std::size_t i = 0; i < n; ++i) {
    if (!lanes[i].certified) continue;
    if (!winner ||
        portfolio_prefers(lanes[i].result.phi, lanes[i].spec->strength, i,
                          lanes[*winner].result.phi, lanes[*winner].spec->strength,
                          *winner)) {
      winner = i;
    }
  }
  if (!winner) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!lanes[i].ran) continue;
      if (!winner) {
        winner = i;
        continue;
      }
      const int si = severity(lanes[i].result.status);
      const int sw = severity(lanes[*winner].result.status);
      if (si != sw ? si < sw
                   : portfolio_prefers(lanes[i].result.phi, lanes[i].spec->strength, i,
                                       lanes[*winner].result.phi,
                                       lanes[*winner].spec->strength, *winner)) {
        winner = i;
      }
    }
  }
  TS_CHECK(winner.has_value(), "portfolio ran no engine");
  const Lane& win = lanes[*winner];

  // Provenance table first (the winner's result is moved out below).
  std::vector<EngineRun> table;
  table.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    EngineRun run;
    run.name = lanes[i].spec->name;
    run.certified = lanes[i].certified;
    run.cancelled = lanes[i].cancel_requested && !lanes[i].certified;
    run.status = lanes[i].ran ? lanes[i].result.status : Status::kCancelled;
    run.phi = lanes[i].ran ? lanes[i].result.phi : 0;
    run.luts = lanes[i].ran ? lanes[i].result.luts : 0;
    run.seconds = lanes[i].seconds;
    table.push_back(std::move(run));
  }

  FlowResult result = std::move(lanes[*winner].result);
  result.engine = win.spec->name;
  result.portfolio = std::move(table);

  // Merged ledger: the winner's records first, each loser's in list order,
  // all engine-tagged. Replaying through a ProbeLedger re-enforces the
  // (engine, mode, φ) uniqueness rule structurally.
  ProbeLedger merged;
  for (ProbeRecord& rec : result.probes) {
    rec.engine = result.engine;
    merged.record(std::move(rec));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i == *winner || !lanes[i].ran) continue;
    for (ProbeRecord& rec : lanes[i].result.probes) {
      rec.engine = lanes[i].spec->name;
      merged.record(std::move(rec));
    }
  }
  result.probes = merged.records();

  result.seconds = seconds_since(start);
  flow_span.counter("engines", static_cast<std::int64_t>(n));
  flow_span.set_detail(names + " -> " + result.engine);
  return result;
}

}  // namespace turbosyn
