#include "core/labeling.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "base/check.hpp"
#include "base/thread_pool.hpp"
#include "graph/scc.hpp"

namespace turbosyn {
namespace {

/// L(v) = max over fanin edges of l(u) - phi*w(e).
std::int64_t fanin_bound(const Circuit& c, std::span<const int> labels, int phi, NodeId v) {
  const CsrTopology& topo = c.topology();
  std::int64_t best = std::numeric_limits<std::int64_t>::min();
  const std::int32_t begin = topo.fanin_offset[static_cast<std::size_t>(v)];
  const std::int32_t end = topo.fanin_offset[static_cast<std::size_t>(v) + 1];
  for (std::int32_t s = begin; s < end; ++s) {
    best = std::max(
        best,
        static_cast<std::int64_t>(
            labels[static_cast<std::size_t>(topo.fanin_src[static_cast<std::size_t>(s)])]) -
            static_cast<std::int64_t>(phi) * topo.fanin_weight[static_cast<std::size_t>(s)]);
  }
  return best;
}

DecompOptions decomp_options(const LabelOptions& options) {
  DecompOptions d;
  d.k = options.k;
  d.use_bdd = options.use_bdd;
  d.bdd_node_budget = options.budget.bdd_node_budget();
  return d;
}

/// Signature of one decomposition attempt: the cut, the inputs' effective
/// labels, and the target height fully determine the (deterministic) outcome
/// of decompose_for_label, so verdicts memoized under this key stay valid
/// across sweeps and across phi probes of the same engine.
std::uint64_t attempt_signature(std::span<const SeqCutNode> cut, std::span<const int> eff,
                                int height) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(height);
  const auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::size_t i = 0; i < cut.size(); ++i) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(cut[i].node)) << 32 |
        static_cast<std::uint32_t>(cut[i].w));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(eff[i])));
  }
  return h;
}

/// Tries resynthesis at min-cut heights `height`, height-1, ... Returns the
/// realization on success. With `existence_only`, a memoized success returns
/// an empty realization without re-running the decomposition: the label
/// iteration only needs the verdict, and mapping generation (which needs the
/// LUTs) always runs with existence_only = false.
/// Records v as degraded (fell back to its plain K-cut label under a
/// resource ceiling). Consecutive duplicates are skipped; full deduping
/// happens when the run's diagnostics are assembled.
void record_degraded(LabelStats& stats, NodeId v) {
  if (stats.degraded_nodes.empty() || stats.degraded_nodes.back() != v) {
    stats.degraded_nodes.push_back(v);
  }
}

std::optional<NodeRealization> try_decomposition(const Circuit& c, std::span<const int> labels,
                                                 int phi, NodeId v, int height,
                                                 const LabelOptions& options, LabelStats& stats,
                                                 DecompCache* cache, CutScratch* scratch,
                                                 bool existence_only = false) {
  CutScratch local;
  ExpandedNetwork& net = (scratch != nullptr ? *scratch : local).net;
  bool degraded = false;
  for (int h = 0; h < options.height_span; ++h) {
    net.build(c, labels, phi, v, height - h, options.expansion);
    const auto cut = net.find_cut(options.cmax);
    stats.flow_augmentations += net.augmentations();
    if (!cut) {
      if (net.flow_budget_hit()) {
        ++stats.flow_budget_hits;
        degraded = true;
      }
      break;  // stricter heights only widen the min-cut further
    }
    std::vector<int> eff(cut->size());
    for (std::size_t i = 0; i < cut->size(); ++i) {
      eff[i] = labels[static_cast<std::size_t>((*cut)[i].node)] - phi * (*cut)[i].w;
    }
    std::unordered_map<std::uint64_t, bool>* memo = nullptr;
    std::uint64_t key = 0;
    bool memoized_success = false;
    if (cache != nullptr) {
      memo = &cache->per_node[static_cast<std::size_t>(v)];
      key = attempt_signature(*cut, eff, height);
      if (const auto it = memo->find(key); it != memo->end()) {
        ++stats.cache_hits;
        if (!it->second) continue;  // this exact attempt already failed
        if (existence_only) return NodeRealization{};
        memoized_success = true;  // re-running a known success; exempt from
                                  // the attempt ceiling so mapping generation
                                  // can always rebuild what labeling proved
      }
    }
    if (!memoized_success && !options.budget.try_consume_decomp_attempt()) {
      ++stats.decomp_budget_hits;
      degraded = true;
      break;  // the ceiling is per-run: further heights would be refused too
    }
    ++stats.decomp_attempts;
    const TruthTable f = net.cut_function(*cut);
    DecompResult d = decompose_for_label(f, eff, height, decomp_options(options));
    if (d.budget_limited) {
      ++stats.bdd_budget_hits;
      if (!d.success) degraded = true;
    }
    if (memo != nullptr) memo->emplace(key, d.success);
    if (d.success) {
      ++stats.decomp_successes;
      NodeRealization r;
      r.cut = *cut;
      r.decomp = std::move(d);
      return r;
    }
  }
  if (degraded) record_degraded(stats, v);
  return std::nullopt;
}

}  // namespace

std::optional<NodeRealization> realize_node(const Circuit& c, std::span<const int> labels,
                                            int phi, NodeId v, int height,
                                            const LabelOptions& options, LabelStats& stats,
                                            DecompCache* cache,
                                            const std::function<bool(const SeqCutNode&)>* shared,
                                            CutScratch* scratch) {
  CutScratch local;
  ExpandedNetwork& net = (scratch != nullptr ? *scratch : local).net;
  net.build(c, labels, phi, v, height, options.expansion);
  ++stats.cut_tests;
  auto found = shared != nullptr ? net.find_low_cost_cut(options.k, *shared)
                                 : net.find_cut(options.k);
  stats.flow_augmentations += net.augmentations();
  if (auto& cut = found) {
    NodeRealization r;
    r.func = net.cut_function(*cut);
    r.cut = std::move(*cut);
    return r;
  }
  const bool budget_hit = net.flow_budget_hit();
  if (budget_hit) ++stats.flow_budget_hits;
  if (options.enable_decomposition) {
    if (auto d = try_decomposition(c, labels, phi, v, height, options, stats, cache, scratch)) {
      return d;
    }
  }
  if (budget_hit) {
    // The cut test was cut short by the augmentation ceiling, so "no cut"
    // is a budget verdict, not a fact. The trivial fanin cut needs no flow
    // computation and justifies every label of the form L(v)+1 (the value
    // the iteration assigns when its own cut tests are starved), so check
    // it directly: each fanin copy (u, w) must fit under the height limit.
    std::vector<SeqCutNode> cut;
    bool fits = true;
    for (const EdgeId e : c.fanin_edges(v)) {
      const auto& edge = c.edge(e);
      const std::int64_t eff =
          static_cast<std::int64_t>(labels[static_cast<std::size_t>(edge.from)]) -
          static_cast<std::int64_t>(phi) * edge.weight;
      if (eff + 1 > height) {
        fits = false;
        break;
      }
      cut.push_back(SeqCutNode{edge.from, edge.weight});
    }
    if (fits && static_cast<int>(cut.size()) <= options.k) {
      NodeRealization r;
      r.func = c.function(v);  // defined over the fanins in edge order
      r.cut = std::move(cut);
      return r;
    }
  }
  return std::nullopt;
}

int label_update(const Circuit& c, std::span<const int> labels, int phi, NodeId v,
                 const LabelOptions& options, LabelStats& stats, DecompCache* cache,
                 CutScratch* scratch) {
  ++stats.node_updates;
  const std::int64_t big_l = fanin_bound(c, labels, phi, v);
  const int current = labels[static_cast<std::size_t>(v)];
  TS_ASSERT(big_l < std::numeric_limits<int>::max());
  const int target = static_cast<int>(big_l);
  if (current >= target + 1) return current;  // cannot improve past L(v)+1

  // Existence-only variant of realize_node: skip LUT function extraction
  // (mapping generation recomputes it once, at the final labels).
  CutScratch local;
  ExpandedNetwork& net = (scratch != nullptr ? *scratch : local).net;
  net.build(c, labels, phi, v, target, options.expansion);
  ++stats.cut_tests;
  const bool have_cut = net.find_cut(options.k).has_value();
  stats.flow_augmentations += net.augmentations();
  if (have_cut) return std::max(current, target);
  if (net.flow_budget_hit()) ++stats.flow_budget_hits;
  if (options.enable_decomposition &&
      try_decomposition(c, labels, phi, v, target, options, stats, cache, scratch,
                        /*existence_only=*/true)
          .has_value()) {
    return std::max(current, target);
  }
  return std::max(current, target + 1);
}

namespace {

/// PLD: true iff the SCC is totally isolated from its support in the
/// predecessor graph — no node of the SCC is backed (transitively) by a node
/// with l <= 1 or by a predecessor outside the SCC. Runs on the CSR topology
/// with epoch-stamped scratch buffers: no allocation in steady state.
bool scc_isolated(const CsrTopology& topo, std::span<const int> labels, int phi,
                  std::span<const NodeId> scc, std::span<const int> component_of,
                  int comp_index, CutScratch& scratch) {
  if (scratch.iso_mark.size() < labels.size()) scratch.iso_mark.resize(labels.size(), 0);
  if (++scratch.iso_epoch == 0) {  // wrapped: stamps from 2^32 calls ago are stale
    scratch.iso_epoch = 1;
    std::fill(scratch.iso_mark.begin(), scratch.iso_mark.end(), 0);
  }
  const std::uint32_t epoch = scratch.iso_epoch;
  std::vector<NodeId>& queue = scratch.iso_queue;
  queue.clear();
  // Seeds: nodes with base-case labels or an external predecessor.
  for (const NodeId v : scc) {
    const int lv = labels[static_cast<std::size_t>(v)];
    if (lv <= 1) {
      scratch.iso_mark[static_cast<std::size_t>(v)] = epoch;
      queue.push_back(v);
      continue;
    }
    const std::int32_t begin = topo.fanin_offset[static_cast<std::size_t>(v)];
    const std::int32_t end = topo.fanin_offset[static_cast<std::size_t>(v) + 1];
    for (std::int32_t s = begin; s < end; ++s) {
      const NodeId u = topo.fanin_src[static_cast<std::size_t>(s)];
      const std::int64_t support =
          static_cast<std::int64_t>(labels[static_cast<std::size_t>(u)]) -
          static_cast<std::int64_t>(phi) * topo.fanin_weight[static_cast<std::size_t>(s)] + 1;
      if (support >= lv && component_of[static_cast<std::size_t>(u)] != comp_index) {
        scratch.iso_mark[static_cast<std::size_t>(v)] = epoch;
        queue.push_back(v);
        break;
      }
    }
  }
  if (queue.empty()) return true;

  // Propagate grounding along predecessor edges inside the SCC.
  std::size_t grounded_count = queue.size();
  for (std::size_t head = 0; head < queue.size() && grounded_count < scc.size(); ++head) {
    const NodeId u = queue[head];
    const std::int32_t begin = topo.fanout_offset[static_cast<std::size_t>(u)];
    const std::int32_t end = topo.fanout_offset[static_cast<std::size_t>(u) + 1];
    for (std::int32_t s = begin; s < end; ++s) {
      const NodeId v = topo.fanout_dst[static_cast<std::size_t>(s)];
      if (component_of[static_cast<std::size_t>(v)] != comp_index ||
          scratch.iso_mark[static_cast<std::size_t>(v)] == epoch) {
        continue;
      }
      const int lv = labels[static_cast<std::size_t>(v)];
      if (lv <= 1) continue;  // already a seed
      const std::int64_t support =
          static_cast<std::int64_t>(labels[static_cast<std::size_t>(u)]) -
          static_cast<std::int64_t>(phi) * topo.fanout_weight[static_cast<std::size_t>(s)] + 1;
      if (support >= lv) {
        scratch.iso_mark[static_cast<std::size_t>(v)] = epoch;
        ++grounded_count;
        queue.push_back(v);
      }
    }
  }
  // Isolated iff nothing is grounded; partial grounding means keep iterating.
  return grounded_count == 0;
}

}  // namespace

LabelEngine::LabelEngine(const Circuit& c, const LabelOptions& options)
    : c_(c), options_(options) {
  TS_CHECK(c.is_k_bounded(options.k), "label computation requires a k-bounded circuit");
  const std::size_t n = static_cast<std::size_t>(c.num_nodes());
  cache_.per_node.resize(n);
  // Prime the circuit's CSR topology cache while still single-threaded: the
  // lazy rebuild is not thread-safe, and every per-probe path reads it.
  c.topology();

  const Digraph g = c.to_digraph();
  scc_ = strongly_connected_components(g);

  // Sweep order: zero-weight topological position. Updates then propagate
  // through a whole combinational stretch in a single sweep, so each sweep
  // advances label information by one register lap around a loop.
  topo_pos_.assign(n, 0);
  std::vector<int> level(n, 0);  // zero-weight longest-path depth
  {
    const std::vector<NodeId> order =
        topological_order(g, [&](EdgeId e) { return g.edge(e).weight > 0; });
    for (std::size_t i = 0; i < order.size(); ++i) {
      topo_pos_[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
    for (const NodeId v : order) {
      for (const EdgeId e : c.fanin_edges(v)) {
        const auto& edge = c.edge(e);
        if (edge.weight == 0) {
          level[static_cast<std::size_t>(v)] =
              std::max(level[static_cast<std::size_t>(v)],
                       level[static_cast<std::size_t>(edge.from)] + 1);
        }
      }
    }
  }

  // Per-component plans. Gates of one zero-weight level never depend on each
  // other through a zero-weight edge, so they form the parallel batches;
  // levels run in ascending order, which preserves the sequential engine's
  // within-sweep propagation along combinational stretches.
  const int num_comps = static_cast<int>(scc_.components.size());
  plans_.resize(static_cast<std::size_t>(num_comps));
  for (int comp = 0; comp < num_comps; ++comp) {
    CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
    for (const NodeId v : scc_.components[static_cast<std::size_t>(comp)]) {
      if (c.is_gate(v) && !c.fanin_edges(v).empty()) plan.gates.push_back(v);
    }
    std::sort(plan.gates.begin(), plan.gates.end(), [&](NodeId a, NodeId b) {
      return topo_pos_[static_cast<std::size_t>(a)] < topo_pos_[static_cast<std::size_t>(b)];
    });
    plan.batch_gates = plan.gates;
    std::sort(plan.batch_gates.begin(), plan.batch_gates.end(), [&](NodeId a, NodeId b) {
      const int la = level[static_cast<std::size_t>(a)];
      const int lb = level[static_cast<std::size_t>(b)];
      if (la != lb) return la < lb;
      return topo_pos_[static_cast<std::size_t>(a)] < topo_pos_[static_cast<std::size_t>(b)];
    });
    for (std::size_t i = 0; i < plan.batch_gates.size();) {
      std::size_t j = i + 1;
      const int li = level[static_cast<std::size_t>(plan.batch_gates[i])];
      while (j < plan.batch_gates.size() &&
             level[static_cast<std::size_t>(plan.batch_gates[j])] == li) {
        ++j;
      }
      plan.batches.push_back(Batch{static_cast<int>(i), static_cast<int>(j)});
      i = j;
    }
  }

  // φ-sensitive gates: a probe at a new φ can only move the fanin bound of a
  // gate with a registered fanin edge (w > 0), since φ enters L(v) solely as
  // -φ·w. These seed the incremental dirty set; everything else becomes
  // dirty only transitively, or is caught by the verification sweep.
  phi_sensitive_.resize(static_cast<std::size_t>(num_comps));
  for (int comp = 0; comp < num_comps; ++comp) {
    for (const NodeId v : plans_[static_cast<std::size_t>(comp)].gates) {
      for (const EdgeId e : c.fanin_edges(v)) {
        if (c.edge(e).weight > 0) {
          phi_sensitive_[static_cast<std::size_t>(comp)].push_back(v);
          break;
        }
      }
    }
  }
  dirty_.assign(n, 0);
  // Cone-dependency metadata starts conservative: empty read-sets with zero
  // eval stamps mean "never recorded", which the freshness check treats as
  // stale, and the exposure bits force a first evaluation per gate.
  cone_reads_.resize(n);
  cone_phi_floor_.assign(n, std::numeric_limits<int>::max());
  eval_stamp_.assign(n, 0);
  raise_stamp_.assign(n, 0);
  read_mark_.assign(n, 0);

  // Condensation wavefronts by longest-path depth: every condensation edge
  // strictly increases depth, so components of one wave share no path and
  // all their external fanins converged in earlier waves. Component indices
  // are topologically ordered, so one ascending pass computes the depths.
  std::vector<int> depth(static_cast<std::size_t>(num_comps), 0);
  int max_depth = 0;
  for (int comp = 0; comp < num_comps; ++comp) {
    for (const NodeId v : scc_.components[static_cast<std::size_t>(comp)]) {
      for (const EdgeId e : c.fanin_edges(v)) {
        const int cu = scc_.component_of[static_cast<std::size_t>(c.edge(e).from)];
        if (cu != comp) {
          depth[static_cast<std::size_t>(comp)] =
              std::max(depth[static_cast<std::size_t>(comp)],
                       depth[static_cast<std::size_t>(cu)] + 1);
        }
      }
    }
    max_depth = std::max(max_depth, depth[static_cast<std::size_t>(comp)]);
  }
  waves_.assign(static_cast<std::size_t>(max_depth) + 1, {});
  for (int comp = 0; comp < num_comps; ++comp) {
    if (!plans_[static_cast<std::size_t>(comp)].gates.empty()) {
      waves_[static_cast<std::size_t>(depth[static_cast<std::size_t>(comp)])].push_back(comp);
    }
  }
  std::erase_if(waves_, [](const std::vector<int>& w) { return w.empty(); });

  // Effective concurrency and per-lane arenas. num_threads == 1 never touches
  // the pool (and is the byte-exact legacy sweep order).
  if (options_.num_threads == 1) {
    threads_ = 1;
    caller_lane_ = 0;
    scratch_.resize(1);
    lane_stats_.resize(1);
  } else {
    ThreadPool& pool = ThreadPool::global();
    const int lanes = pool.num_workers() + 1;
    // num_threads == 0 targets the hardware concurrency (so a single-core
    // host defaults to the sequential path even though the pool always keeps
    // one worker); an explicit count is honored up to the pool's lanes.
    const int requested = options_.num_threads <= 0
                              ? static_cast<int>(std::thread::hardware_concurrency())
                              : options_.num_threads;
    threads_ = std::max(1, std::min(requested, lanes));
    caller_lane_ = std::min(threads_ - 1, pool.num_workers());
    scratch_.resize(static_cast<std::size_t>(lanes));
    lane_stats_.resize(static_cast<std::size_t>(lanes));
  }
}

void LabelStats::accumulate(const LabelStats& from) {
  sweeps += from.sweeps;
  node_updates += from.node_updates;
  cut_tests += from.cut_tests;
  decomp_attempts += from.decomp_attempts;
  decomp_successes += from.decomp_successes;
  cache_hits += from.cache_hits;
  flow_augmentations += from.flow_augmentations;
  nodes_skipped += from.nodes_skipped;
  dirty_rounds += from.dirty_rounds;
  bdd_budget_hits += from.bdd_budget_hits;
  decomp_budget_hits += from.decomp_budget_hits;
  flow_budget_hits += from.flow_budget_hits;
  degraded_nodes.insert(degraded_nodes.end(), from.degraded_nodes.begin(),
                        from.degraded_nodes.end());
}

void LabelEngine::merge_worker_stats(LabelStats& into) {
  for (LabelStats& s : lane_stats_) {
    into.accumulate(s);
    s = LabelStats{};
  }
}

int LabelEngine::eval_update_recorded(NodeId v, int phi, std::span<const int> labels,
                                      LabelStats& stats, CutScratch& scratch) {
  const std::int64_t tests_before = stats.cut_tests;
  const int updated = label_update(c_, labels, phi, v, options_, stats, &cache_, &scratch);
  eval_stamp_[static_cast<std::size_t>(v)] = ++meta_clock_;
  std::vector<NodeId>& reads = cone_reads_[static_cast<std::size_t>(v)];
  if (stats.cut_tests == tests_before) {
    // Early exit (l >= L(v)+1): no network was built, the verdict depends on
    // the direct fanin labels alone (covered by fanout dirty propagation)
    // and on φ only through a registered direct fanin (covered by the
    // φ-sensitive seed) — so the cone metadata reduces to nothing.
    reads.clear();
    cone_phi_floor_[static_cast<std::size_t>(v)] = 0;
    return updated;
  }
  // A cut test ran: the verdict read exactly the labels of the copies the
  // expanded network interned (expansion, capacities and the flow all derive
  // from those). φ enters only through the allowed bits of register-crossed
  // copies, and lowering φ can only flip allowed -> mandatory, first at
  // φ < (l(u)+1-H)/w — record the largest such threshold as the gate's
  // φ-floor: above it, the identical network yields the identical verdict.
  const ExpandedNetwork& net = scratch.net;
  reads.clear();
  const std::int64_t height = fanin_bound(c_, labels, phi, v);  // the query's H
  int phi_floor = 0;
  const int m = net.num_expanded_nodes();
  for (int i = 0; i < m; ++i) {
    const SeqCutNode id = net.copy(i);
    if (read_mark_[static_cast<std::size_t>(id.node)] == 0) {
      read_mark_[static_cast<std::size_t>(id.node)] = 1;
      reads.push_back(id.node);
    }
    if (id.w > 0) {
      const std::int64_t l = labels[static_cast<std::size_t>(id.node)];
      const std::int64_t eff = l - static_cast<std::int64_t>(phi) * id.w;
      if (eff + 1 <= height) {  // allowed now; may flip mandatory below the floor
        const std::int64_t t = l + 1 - height;
        if (t > 0) {
          const std::int64_t f = (t + id.w - 1) / id.w;  // smallest safe φ
          phi_floor = static_cast<int>(std::max<std::int64_t>(phi_floor, f));
        }
      }
    }
  }
  for (const NodeId u : reads) read_mark_[static_cast<std::size_t>(u)] = 0;
  cone_phi_floor_[static_cast<std::size_t>(v)] = phi_floor;
  return updated;
}

bool LabelEngine::cone_reads_fresh(NodeId v) const {
  const std::uint64_t at = eval_stamp_[static_cast<std::size_t>(v)];
  if (at == 0) return false;  // never recorded
  for (const NodeId u : cone_reads_[static_cast<std::size_t>(v)]) {
    if (raise_stamp_[static_cast<std::size_t>(u)] > at) return false;
  }
  return true;
}

LabelEngine::CompOutcome LabelEngine::process_comp_sequential(int comp, int phi,
                                                              std::vector<int>& labels,
                                                              LabelStats& stats,
                                                              CutScratch& scratch,
                                                              std::int64_t sweep_budget,
                                                              bool record_meta) {
  const CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
  // PLD: the theorem's 6n bound with n = SCC size. Without PLD: the prior
  // criterion of n^2 iterations with n = circuit size (paper Section 4).
  const std::int64_t n = static_cast<std::int64_t>(plan.gates.size());
  const std::int64_t total = std::max<std::int64_t>(2, c_.num_gates());
  const std::int64_t criterion_cap = options_.use_pld ? 6 * n + 2 : total * total;
  const bool budget_binds = sweep_budget > 0 && sweep_budget < criterion_cap;
  const std::int64_t cap = budget_binds ? sweep_budget : criterion_cap;

  bool isolated_last_sweep = false;
  for (std::int64_t sweep = 0;; ++sweep) {
    ++stats.sweeps;
    bool changed = false;
    for (const NodeId v : plan.gates) {
      if (options_.budget.interrupted()) return CompOutcome::kInterrupted;
      const int updated =
          record_meta ? eval_update_recorded(v, phi, labels, stats, scratch)
                      : label_update(c_, labels, phi, v, options_, stats, &cache_, &scratch);
      if (updated > labels[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] = updated;
        if (record_meta) raise_stamp_[static_cast<std::size_t>(v)] = ++meta_clock_;
        changed = true;
      }
    }
    if (!changed) return CompOutcome::kConverged;  // SCC converged
    if (options_.use_pld) {
      // Any feasible fixpoint satisfies l(v) <= sum of delays <= #gates
      // (labels are maxima of path delay minus phi*registers), so a label
      // beyond that certifies divergence regardless of the iteration cap.
      // Kept inside the PLD package so the no-PLD mode stays a faithful
      // n^2-criterion baseline for the ablation benchmark.
      for (const NodeId v : plan.gates) {
        if (labels[static_cast<std::size_t>(v)] > c_.num_gates() + 1) {
          return CompOutcome::kInfeasible;
        }
      }
      // Early exit: the SCC keeps changing while totally isolated from its
      // support in the predecessor graph on two consecutive sweeps. (A
      // single isolated snapshot can be the just-reached fixpoint, so one
      // more changing sweep is required to certify divergence; the 6n cap
      // below is the theorem's unconditional guarantee.) The theorem's
      // premise — an ungrounded, still-changing SCC must rise forever —
      // holds for the plain K-cut update only: resynthesis can absorb a
      // rising support later (try_decomposition succeeds where the cut test
      // failed), so a feasible TurboSYN SCC may look isolated transiently
      // (observed on bbsse at phi=2). With decomposition the 6n cap decides.
      if (!options_.enable_decomposition) {
        const bool isolated = scc_isolated(c_.topology(), labels, phi,
                                           scc_.components[static_cast<std::size_t>(comp)],
                                           scc_.component_of, comp, scratch);
        if (isolated && isolated_last_sweep) return CompOutcome::kInfeasible;  // positive loop
        isolated_last_sweep = isolated;
      }
    }
    if (sweep + 1 >= cap) {
      // Distinguish "the criterion proved divergence" from "the caller's
      // sweep budget cut the iteration short" — only the former certifies
      // infeasibility.
      return budget_binds ? CompOutcome::kBudgetExhausted : CompOutcome::kInfeasible;
    }
  }
}

LabelEngine::CompOutcome LabelEngine::process_comp_parallel(int comp, int phi,
                                                            LabelResult& result) {
  const CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
  std::vector<int>& labels = result.labels;
  const std::int64_t n = static_cast<std::int64_t>(plan.gates.size());
  const std::int64_t total = std::max<std::int64_t>(2, c_.num_gates());
  const std::int64_t criterion_cap = options_.use_pld ? 6 * n + 2 : total * total;
  const bool budget_binds =
      options_.sweep_budget > 0 && options_.sweep_budget < criterion_cap;
  const std::int64_t cap = budget_binds ? options_.sweep_budget : criterion_cap;

  ThreadPool& pool = ThreadPool::global();
  // One level batch: compute every update against the batch-start snapshot
  // (Jacobi), then apply. The trajectory is therefore independent of thread
  // count and work-stealing order; the snapshot semantics are kept even for
  // batches run inline.
  const auto run_batch = [&](const Batch& b) {
    const std::size_t bn = static_cast<std::size_t>(b.end - b.begin);
    if (batch_result_.size() < bn) batch_result_.resize(bn);
    if (bn < 2 || threads_ == 1) {
      for (std::size_t i = 0; i < bn; ++i) {
        batch_result_[i] = label_update(
            c_, labels, phi, plan.batch_gates[static_cast<std::size_t>(b.begin) + i], options_,
            lane_stats_[static_cast<std::size_t>(caller_lane_)], &cache_,
            &scratch_[static_cast<std::size_t>(caller_lane_)]);
      }
    } else {
      pool.for_each(
          bn,
          [&](std::size_t i, int lane) {
            batch_result_[i] = label_update(
                c_, labels, phi, plan.batch_gates[static_cast<std::size_t>(b.begin) + i],
                options_, lane_stats_[static_cast<std::size_t>(lane)], &cache_,
                &scratch_[static_cast<std::size_t>(lane)]);
          },
          threads_ - 1, &options_.budget);
    }
    // A fired interrupt leaves some batch slots unwritten (the pool skips
    // their items), so the whole batch is discarded — labels are monotone
    // lower bounds, dropping in-flight updates is always safe.
    if (options_.budget.interrupted()) return false;
    bool changed = false;
    for (std::size_t i = 0; i < bn; ++i) {
      const NodeId v = plan.batch_gates[static_cast<std::size_t>(b.begin) + i];
      if (batch_result_[i] > labels[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] = batch_result_[i];
        changed = true;
      }
    }
    return changed;
  };

  bool isolated_last_sweep = false;
  bool isolated_twice = false;
  bool converged = false;
  bool diverged = false;
  bool interrupted = false;
  for (std::int64_t sweep = 0; sweep < cap; ++sweep) {
    ++lane_stats_[static_cast<std::size_t>(caller_lane_)].sweeps;
    bool changed = false;
    for (const Batch& b : plan.batches) {
      if (run_batch(b)) changed = true;
      if (options_.budget.interrupted()) {
        interrupted = true;
        break;
      }
    }
    if (interrupted) break;
    if (!changed) {
      converged = true;
      break;
    }
    if (options_.use_pld) {
      // The divergence certificate is a property of the current labels, not
      // of the sweep order, so it applies verbatim to the batched trajectory.
      for (const NodeId v : plan.gates) {
        if (labels[static_cast<std::size_t>(v)] > c_.num_gates() + 1) {
          diverged = true;
          break;
        }
      }
      if (diverged) break;
      // Isolation is only a divergence signal for the plain K-cut update
      // (see process_comp_sequential); with decomposition the cap decides.
      if (!options_.enable_decomposition) {
        const bool isolated = scc_isolated(c_.topology(), labels, phi,
                                           scc_.components[static_cast<std::size_t>(comp)],
                                           scc_.component_of, comp,
                                           scratch_[static_cast<std::size_t>(caller_lane_)]);
        if (isolated && isolated_last_sweep) {
          isolated_twice = true;
          break;
        }
        isolated_last_sweep = isolated;
      }
    }
  }
  merge_worker_stats(result.stats);

  if (interrupted) return CompOutcome::kInterrupted;
  if (converged) return CompOutcome::kConverged;
  if (diverged) return CompOutcome::kInfeasible;
  if (budget_binds && !isolated_twice) {
    return CompOutcome::kBudgetExhausted;  // sweep budget, not a certificate
  }
  if (!options_.use_pld) {
    return CompOutcome::kInfeasible;  // the n^2 bound holds for any fair sweep order
  }
  // The 6n cap and the isolation criterion are proven for the sequential
  // sweep order; re-run that exact order from the current labels (valid
  // lower bounds, so the least fixpoint is unchanged) to settle the verdict.
  // Feasible components re-converge here in a few sweeps.
  return process_comp_sequential(comp, phi, labels, result.stats,
                                 scratch_[static_cast<std::size_t>(caller_lane_)],
                                 options_.sweep_budget);
}

LabelEngine::CompOutcome LabelEngine::process_comp_incremental(int comp, int phi,
                                                               std::vector<int>& labels,
                                                               LabelStats& stats,
                                                               CutScratch& scratch, bool meta_fast,
                                                               bool hint_seeded) {
  const CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
  const CsrTopology& topo = c_.topology();
  const std::int64_t n = static_cast<std::int64_t>(plan.gates.size());
  const int label_bound = c_.num_gates() + 1;

  // Seed: gates whose fanin bound depends on φ directly, gates whose
  // recorded φ-floor this probe undercuts (their cut network can change
  // shape with φ even when no label they read did), plus any marks the
  // caller placed from a dirty hint or cross-component propagation. A gate
  // already at L(v)+1 under the new φ is exempt: its update is the early
  // exit, a provable no-op, so hoisting that check out of the worklist
  // skips the call entirely. A cut test also reads labels deeper in the
  // expanded cone than the direct fanins, so fanout-only propagation can
  // quiesce early on a reconvergent cone — the verification below closes
  // exactly that gap.
  const auto seed = [&](const NodeId v) {
    const std::int64_t bound = fanin_bound(c_, labels, phi, v);
    if (labels[static_cast<std::size_t>(v)] < bound + 1) {
      dirty_[static_cast<std::size_t>(v)] = 1;
    }
  };
  for (const NodeId v : phi_sensitive_[static_cast<std::size_t>(comp)]) seed(v);
  if (meta_fast) {
    for (const NodeId v : plan.gates) {
      if (phi < cone_phi_floor_[static_cast<std::size_t>(v)]) seed(v);
    }
  }

  // Worklist grinding pays only when the dirty frontier is small (adjacent-φ
  // reseeds, one-gate mutations) AND the rounds can stand in for sweep work:
  // under meta_fast the filtered verification sweep skips everything the
  // rounds settled, and under a donor hint the rounds localize the mutation
  // before the one full sweep the fallback needs. A metadata-less re-seed
  // without a hint (a bisection probing after an infeasible verdict) gets
  // neither discount — the fallback re-evaluates every gate regardless, so
  // any round there is a duplicated warm-up; likewise a frontier covering a
  // large share of the SCC (a multi-φ jump, or a diverging SCC where every
  // gate keeps rising) is a near-cold iteration the sweeps run at strictly
  // lower bookkeeping cost. Skipping the rounds is always sound: the marks
  // stay for the filtered sweep's skip test (or are cleared ahead of the
  // full-sweep fallback).
  std::int64_t initial_dirty = 0;
  for (const NodeId v : plan.gates) {
    initial_dirty += dirty_[static_cast<std::size_t>(v)];
  }
  const bool grind = (meta_fast || hint_seeded) && 4 * initial_dirty <= n;

  const std::int64_t round_cap = 6 * n + 2;  // same shape as the PLD sweep cap
  int isolated_streak = 0;
  for (std::int64_t round = 0; grind && round < round_cap; ++round) {
    bool any_dirty = false;
    for (const NodeId v : plan.gates) {
      if (dirty_[static_cast<std::size_t>(v)] != 0) {
        any_dirty = true;
        break;
      }
    }
    if (!any_dirty) break;  // quiescent; hand over to the verification sweep
    ++stats.dirty_rounds;
    std::int64_t processed = 0;
    bool changed = false;
    for (const NodeId v : plan.gates) {
      if (dirty_[static_cast<std::size_t>(v)] == 0) continue;
      dirty_[static_cast<std::size_t>(v)] = 0;
      if (options_.budget.interrupted()) return CompOutcome::kInterrupted;
      // Hoisted early exit: a gate already at L(v)+1 cannot improve, so the
      // update is the identity and the invocation itself is skipped. The
      // bound is recomputed from the live labels, so this is exactly the
      // callee's first branch and the trajectory is unchanged.
      if (labels[static_cast<std::size_t>(v)] >= fanin_bound(c_, labels, phi, v) + 1) continue;
      ++processed;
      const int updated = eval_update_recorded(v, phi, labels, stats, scratch);
      if (updated > labels[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] = updated;
        raise_stamp_[static_cast<std::size_t>(v)] = ++meta_clock_;
        changed = true;
        // The state-only divergence certificate (see process_comp_sequential)
        // is a property of the labels alone, so it applies verbatim here.
        if (updated > label_bound) return CompOutcome::kInfeasible;
        const std::int32_t begin = topo.fanout_offset[static_cast<std::size_t>(v)];
        const std::int32_t end = topo.fanout_offset[static_cast<std::size_t>(v) + 1];
        for (std::int32_t s = begin; s < end; ++s) {
          const NodeId t = topo.fanout_dst[static_cast<std::size_t>(s)];
          if (topo.flag(t, CsrTopology::kUpdatableGate)) {
            dirty_[static_cast<std::size_t>(t)] = 1;  // may land in a later comp
          }
        }
      }
    }
    stats.nodes_skipped += n - processed;
    // Advisory divergence probe: a still-rising SCC that is isolated from
    // its support on consecutive rounds is almost surely diverging, so stop
    // grinding cheap dirty rounds and hand over to the full-sweep loop,
    // whose isolation criterion is proven for its sweep order. Never a
    // certificate by itself — the worklist order differs from the theorem's.
    if (changed) {
      const bool isolated =
          scc_isolated(topo, labels, phi, scc_.components[static_cast<std::size_t>(comp)],
                       scc_.component_of, comp, scratch);
      if (isolated) {
        if (++isolated_streak >= 2) break;
      } else {
        isolated_streak = 0;
      }
    }
  }
  if (!meta_fast) {
    // Residual marks (round cap or advisory exit) are superseded by the full
    // sweeps; clear them so a later probe's seed is exact.
    for (const NodeId v : plan.gates) dirty_[static_cast<std::size_t>(v)] = 0;
    // Fixpoint verification and fallback in one: the full-sweep loop's first
    // unchanged sweep proves convergence, and anything the fanout propagation
    // missed is simply re-raised by regular sweeps. The labels entering here
    // are valid lower bounds (monotone updates from a valid seed), so the
    // least fixpoint — and every certificate — is unchanged. Recording along
    // the way re-synchronizes the cone metadata: the final unchanged sweep
    // evaluates every gate at the fixpoint, so the metadata describes exactly
    // that state and the next warm probe may verify by freshness instead.
    return process_comp_sequential(comp, phi, labels, stats, scratch, /*sweep_budget=*/0,
                                   /*record_meta=*/true);
  }

  // Metadata-verified convergence: the same loop as process_comp_sequential,
  // except that a gate that is not dirty and none of whose recorded reads
  // rose since its last evaluation is skipped — its update is provably the
  // identity (same labels read, and φ cannot move its verdict: φ-exposed and
  // φ-sensitive gates were seeded, and a prefiltered gate early-exits before
  // any cut test). Skipped updates are exact no-ops, so the label trajectory
  // equals the full sweep's sweep by sweep, and the PLD divergence bound,
  // isolation criterion and 6n cap all transfer unchanged. An all-skip sweep
  // is therefore the same certificate as an unchanged full sweep.
  const std::int64_t criterion_cap = 6 * n + 2;
  bool isolated_last = false;
  for (std::int64_t sweep = 0;; ++sweep) {
    ++stats.sweeps;
    bool changed = false;
    for (const NodeId v : plan.gates) {
      if (options_.budget.interrupted()) return CompOutcome::kInterrupted;
      if (dirty_[static_cast<std::size_t>(v)] == 0 && cone_reads_fresh(v)) {
        ++stats.nodes_skipped;
        continue;
      }
      dirty_[static_cast<std::size_t>(v)] = 0;
      // Same hoisted early exit as the dirty rounds: an unimprovable gate's
      // update is the identity, no invocation needed.
      if (labels[static_cast<std::size_t>(v)] >= fanin_bound(c_, labels, phi, v) + 1) {
        ++stats.nodes_skipped;
        continue;
      }
      const int updated = eval_update_recorded(v, phi, labels, stats, scratch);
      if (updated > labels[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] = updated;
        raise_stamp_[static_cast<std::size_t>(v)] = ++meta_clock_;
        changed = true;
        if (updated > label_bound) return CompOutcome::kInfeasible;
        const std::int32_t begin = topo.fanout_offset[static_cast<std::size_t>(v)];
        const std::int32_t end = topo.fanout_offset[static_cast<std::size_t>(v) + 1];
        for (std::int32_t s = begin; s < end; ++s) {
          const NodeId t = topo.fanout_dst[static_cast<std::size_t>(s)];
          if (topo.flag(t, CsrTopology::kUpdatableGate)) {
            dirty_[static_cast<std::size_t>(t)] = 1;  // may land in a later comp
          }
        }
      }
    }
    if (!changed) return CompOutcome::kConverged;
    const bool isolated =
        scc_isolated(topo, labels, phi, scc_.components[static_cast<std::size_t>(comp)],
                     scc_.component_of, comp, scratch);
    if (isolated && isolated_last) return CompOutcome::kInfeasible;  // positive loop
    isolated_last = isolated;
    if (sweep + 1 >= criterion_cap) return CompOutcome::kInfeasible;
  }
}

void LabelEngine::import_warm(int phi, std::vector<int> labels, std::vector<NodeId> dirty_hint) {
  TS_CHECK(phi >= 1, "imported warm seed requires phi >= 1");
  TS_CHECK(!options_.enable_decomposition, "warm imports are plain-update only");
  TS_CHECK(static_cast<std::int64_t>(labels.size()) == c_.num_nodes(),
           "imported warm seed size mismatch");
  // A genuinely converged entry at this phi is strictly better than any
  // imported lower bound; keep it.
  if (warm_.find(phi) != warm_.end()) return;
  // Normalize to the base initialization: sources stay 0 and updatable gates
  // start at 1, so a caller that left non-gate entries stale cannot poison
  // the iteration's invariants.
  const CsrTopology& topo = c_.topology();
  for (NodeId v = 0; v < c_.num_nodes(); ++v) {
    if (topo.flag(v, CsrTopology::kUpdatableGate)) {
      labels[static_cast<std::size_t>(v)] = std::max(1, labels[static_cast<std::size_t>(v)]);
    } else {
      labels[static_cast<std::size_t>(v)] = 0;
    }
  }
  warm_[phi] = std::move(labels);
  warm_hint_[phi] = std::move(dirty_hint);
}

LabelResult LabelEngine::compute(int phi) {
  TS_CHECK(phi >= 1, "target ratio must be >= 1");

  LabelResult result;
  // Stamps result.status before any exit: the outcome of the deciding
  // component, plus kDegraded whenever a resource ceiling interfered
  // anywhere (which also demotes an infeasible verdict from certificate to
  // budget-imposed — see LabelResult::status).
  const auto finish = [&](CompOutcome out) {
    if (out == CompOutcome::kInterrupted) {
      const Status s = options_.budget.check();
      result.status = combine_status(result.status, s == Status::kOk ? Status::kCancelled : s);
    } else if (out == CompOutcome::kBudgetExhausted) {
      result.status = combine_status(result.status, Status::kDegraded);
    }
    if (result.stats.bdd_budget_hits + result.stats.decomp_budget_hits +
            result.stats.flow_budget_hits >
        0) {
      result.status = combine_status(result.status, Status::kDegraded);
    }
  };
  // Warm start: labels are antitone in phi, so the converged labels of the
  // nearest previously feasible phi' >= phi are valid lower bounds for this
  // probe and the monotone iteration reaches the same least fixpoint. That
  // argument needs a monotone update, which only the plain K-cut update is:
  // with decomposition, raising one label can turn a neighbouring node's
  // resynthesis from success into failure, so the iteration is trajectory
  // sensitive and can settle on a different (still valid) fixpoint than a
  // cold start would. Different fixpoints pick different cuts, and mapped
  // results must be reproducible run to run — so decomposition probes always
  // start cold. They still share the decomposition memo: its verdicts are
  // pure functions of (cut, effective labels, height), independent of phi
  // and of the label trajectory.
  const bool warm_ok = !options_.enable_decomposition;
  bool incremental = false;
  int seed_phi = -1;
  const std::vector<NodeId>* dirty_hint = nullptr;
  if (const auto it = warm_.lower_bound(phi); warm_ok && it != warm_.end()) {
    seed_phi = it->first;
    const auto hint_it = warm_hint_.find(it->first);
    if (incremental_active() && it->first == phi && hint_it == warm_hint_.end()) {
      // Exact replay: warm entries at their own phi are stored only from
      // clean feasible probes, so they ARE the least fixpoint (PO labels
      // included) — the monotone iteration cannot move a single label.
      result.labels = it->second;
      result.feasible = true;
      for (const NodeId po : c_.pos()) {
        result.max_po_label =
            std::max(result.max_po_label, result.labels[static_cast<std::size_t>(po)]);
      }
      result.stats.nodes_skipped = c_.num_gates();
      return result;
    }
    result.labels = it->second;
    if (incremental_active()) {
      incremental = true;
      if (hint_it != warm_hint_.end()) dirty_hint = &hint_it->second;
    }
  } else {
    result.labels.assign(static_cast<std::size_t>(c_.num_nodes()), 0);
    for (NodeId v = 0; v < c_.num_nodes(); ++v) {
      if (c_.is_gate(v) && !c_.fanin_edges(v).empty()) {
        result.labels[static_cast<std::size_t>(v)] = 1;
      }
    }
  }

  // Cone-dependency metadata only certifies skips when it describes exactly
  // the fixpoint this probe is seeded from (same warm entry, no imported
  // hint). Any recorded probe rewrites the metadata, so it is invalidated up
  // front and re-certified only on clean convergence below; unrecorded
  // probes (parallel sweeps, non-incremental modes) never touch it.
  const bool recorded = incremental || (threads_ == 1 && incremental_active());
  const bool meta_fast =
      incremental && meta_valid_ && dirty_hint == nullptr && seed_phi == meta_phi_;
  if (recorded) meta_valid_ = false;

  if (incremental) {
    // Warm-seeded plain-update probe: dirty-set iteration per component,
    // sequentially in condensation order even when threads_ > 1 — cross-
    // component dirty propagation needs the shared dirty_ array, and the
    // converged labels are thread-count independent anyway (unique least
    // fixpoint), so only per-run stats would differ.
    const CsrTopology& topo = c_.topology();
    std::fill(dirty_.begin(), dirty_.end(), 0);
    if (dirty_hint != nullptr) {
      for (const NodeId v : *dirty_hint) {
        if (v >= 0 && v < c_.num_nodes() && topo.flag(v, CsrTopology::kUpdatableGate)) {
          dirty_[static_cast<std::size_t>(v)] = 1;
        }
      }
    }
    CutScratch& scratch = scratch_[static_cast<std::size_t>(caller_lane_)];
    for (int comp = 0; comp < static_cast<int>(scc_.components.size()); ++comp) {
      if (plans_[static_cast<std::size_t>(comp)].gates.empty()) continue;
      const CompOutcome out = process_comp_incremental(comp, phi, result.labels, result.stats,
                                                       scratch, meta_fast, dirty_hint != nullptr);
      if (out != CompOutcome::kConverged) {
        finish(out);
        return result;
      }
    }
  } else if (threads_ == 1) {
    for (int comp = 0; comp < static_cast<int>(scc_.components.size()); ++comp) {
      if (plans_[static_cast<std::size_t>(comp)].gates.empty()) continue;
      const CompOutcome out = process_comp_sequential(comp, phi, result.labels, result.stats,
                                                      scratch_[0], options_.sweep_budget,
                                                      /*record_meta=*/recorded);
      if (out != CompOutcome::kConverged) {
        finish(out);
        return result;
      }
    }
  } else {
    ThreadPool& pool = ThreadPool::global();
    // A certified diverging SCC decides the verdict no matter what happened
    // elsewhere; an interrupt beats a budget-imposed stop for the status.
    const auto rank = [](CompOutcome o) {
      switch (o) {
        case CompOutcome::kInfeasible:
          return 3;
        case CompOutcome::kInterrupted:
          return 2;
        case CompOutcome::kBudgetExhausted:
          return 1;
        case CompOutcome::kConverged:
          break;
      }
      return 0;
    };
    for (const std::vector<int>& wave : waves_) {
      if (wave.size() == 1) {
        const CompOutcome out = process_comp_parallel(wave[0], phi, result);
        if (out != CompOutcome::kConverged) {
          finish(out);
          return result;
        }
        continue;
      }
      // Components of one wavefront are mutually independent (no condensation
      // path connects them), so each runs the sequential inner order on its
      // own lane: its PLD criteria apply verbatim, every write targets its
      // own component's labels, and every external read is a frozen earlier
      // wave. The whole wave runs to completion before feasibility is
      // checked — no cross-thread aborts, so the outcome is deterministic.
      // (A fired interrupt skips unstarted components; their slots keep the
      // kInterrupted initializer.)
      std::vector<CompOutcome> outcomes(wave.size(), CompOutcome::kInterrupted);
      pool.for_each(
          wave.size(),
          [&](std::size_t i, int lane) {
            outcomes[i] =
                process_comp_sequential(wave[i], phi, result.labels,
                                        lane_stats_[static_cast<std::size_t>(lane)],
                                        scratch_[static_cast<std::size_t>(lane)],
                                        options_.sweep_budget);
          },
          threads_ - 1, &options_.budget);
      merge_worker_stats(result.stats);
      CompOutcome worst = CompOutcome::kConverged;
      for (const CompOutcome out : outcomes) {
        if (rank(out) > rank(worst)) worst = out;
      }
      if (worst != CompOutcome::kConverged) {
        finish(worst);
        return result;
      }
    }
  }

  // All SCCs converged: feasible. POs get L(po) for the clock-period check.
  result.feasible = true;
  for (const NodeId po : c_.pos()) {
    const std::int64_t l = fanin_bound(c_, result.labels, phi, po);
    result.labels[static_cast<std::size_t>(po)] = static_cast<int>(std::max<std::int64_t>(0, l));
    result.max_po_label =
        std::max(result.max_po_label, result.labels[static_cast<std::size_t>(po)]);
  }
  finish(CompOutcome::kConverged);
  // Degraded labels are valid for this probe but not proven least-fixpoint
  // lower bounds, so only clean probes seed future warm starts. A converged
  // fixpoint supersedes any imported seed at the same phi.
  if (warm_ok && result.status == Status::kOk) {
    warm_[phi] = result.labels;
    warm_hint_.erase(phi);
    // A cleanly converged recorded probe leaves every gate's cone metadata
    // describing its evaluation at this very fixpoint (the last sweep — full
    // or all-skip — touched or certified every gate), so the next probe
    // seeded from warm_[phi] may verify by read-set freshness alone.
    if (recorded) {
      meta_valid_ = true;
      meta_phi_ = phi;
    }
  }
  return result;
}

LabelResult compute_labels(const Circuit& c, int phi, const LabelOptions& options) {
  LabelEngine engine(c, options);
  return engine.compute(phi);
}

}  // namespace turbosyn
