#include "core/labeling.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "base/check.hpp"
#include "graph/scc.hpp"

namespace turbosyn {
namespace {

/// L(v) = max over fanin edges of l(u) - phi*w(e).
std::int64_t fanin_bound(const Circuit& c, std::span<const int> labels, int phi, NodeId v) {
  std::int64_t best = std::numeric_limits<std::int64_t>::min();
  for (const EdgeId e : c.fanin_edges(v)) {
    const auto& edge = c.edge(e);
    best = std::max(best, static_cast<std::int64_t>(labels[static_cast<std::size_t>(edge.from)]) -
                              static_cast<std::int64_t>(phi) * edge.weight);
  }
  return best;
}

DecompOptions decomp_options(const LabelOptions& options) {
  DecompOptions d;
  d.k = options.k;
  d.use_bdd = options.use_bdd;
  return d;
}

/// Signature of one decomposition attempt: the cut, the inputs' effective
/// labels and the target height fully determine the (deterministic) outcome.
std::uint64_t attempt_signature(std::span<const SeqCutNode> cut, std::span<const int> eff,
                                int height) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(height);
  const auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::size_t i = 0; i < cut.size(); ++i) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(cut[i].node)) << 32 |
        static_cast<std::uint32_t>(cut[i].w));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(eff[i])));
  }
  return h;
}

/// Tries resynthesis at min-cut heights `height`, height-1, ... Returns the
/// realization on success.
std::optional<NodeRealization> try_decomposition(const Circuit& c, std::span<const int> labels,
                                                 int phi, NodeId v, int height,
                                                 const LabelOptions& options, LabelStats& stats,
                                                 DecompCache* cache) {
  for (int h = 0; h < options.height_span; ++h) {
    ExpandedNetwork net(c, labels, phi, v, height - h, options.expansion);
    const auto cut = net.find_cut(options.cmax);
    if (!cut) break;  // stricter heights only widen the min-cut further
    std::vector<int> eff(cut->size());
    for (std::size_t i = 0; i < cut->size(); ++i) {
      eff[i] = labels[static_cast<std::size_t>((*cut)[i].node)] - phi * (*cut)[i].w;
    }
    std::unordered_map<std::uint64_t, bool>* memo = nullptr;
    std::uint64_t key = 0;
    if (cache != nullptr) {
      memo = &cache->per_node[static_cast<std::size_t>(v)];
      key = attempt_signature(*cut, eff, height);
      if (const auto it = memo->find(key); it != memo->end() && !it->second) {
        continue;  // this exact attempt already failed
      }
    }
    ++stats.decomp_attempts;
    const TruthTable f = net.cut_function(*cut);
    DecompResult d = decompose_for_label(f, eff, height, decomp_options(options));
    if (memo != nullptr) memo->emplace(key, d.success);
    if (d.success) {
      ++stats.decomp_successes;
      NodeRealization r;
      r.cut = *cut;
      r.decomp = std::move(d);
      return r;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<NodeRealization> realize_node(const Circuit& c, std::span<const int> labels,
                                            int phi, NodeId v, int height,
                                            const LabelOptions& options, LabelStats& stats,
                                            DecompCache* cache,
                                            const std::function<bool(const SeqCutNode&)>* shared) {
  ExpandedNetwork net(c, labels, phi, v, height, options.expansion);
  ++stats.cut_tests;
  if (auto cut = shared != nullptr ? net.find_low_cost_cut(options.k, *shared)
                                   : net.find_cut(options.k)) {
    NodeRealization r;
    r.func = net.cut_function(*cut);
    r.cut = std::move(*cut);
    return r;
  }
  if (options.enable_decomposition) {
    return try_decomposition(c, labels, phi, v, height, options, stats, cache);
  }
  return std::nullopt;
}

int label_update(const Circuit& c, std::vector<int>& labels, int phi, NodeId v,
                 const LabelOptions& options, LabelStats& stats, DecompCache* cache) {
  ++stats.node_updates;
  const std::int64_t big_l = fanin_bound(c, labels, phi, v);
  const int current = labels[static_cast<std::size_t>(v)];
  TS_ASSERT(big_l < std::numeric_limits<int>::max());
  const int target = static_cast<int>(big_l);
  if (current >= target + 1) return current;  // cannot improve past L(v)+1

  // Existence-only variant of realize_node: skip LUT function extraction
  // (mapping generation recomputes it once, at the final labels).
  ExpandedNetwork net(c, labels, phi, v, target, options.expansion);
  ++stats.cut_tests;
  if (net.find_cut(options.k).has_value()) return std::max(current, target);
  if (options.enable_decomposition &&
      try_decomposition(c, labels, phi, v, target, options, stats, cache).has_value()) {
    return std::max(current, target);
  }
  return std::max(current, target + 1);
}

namespace {

/// PLD: true iff the SCC is totally isolated from its support in the
/// predecessor graph — no node of the SCC is backed (transitively) by a node
/// with l <= 1 or by a predecessor outside the SCC.
bool scc_isolated(const Circuit& c, std::span<const int> labels, int phi,
                  std::span<const NodeId> scc, std::span<const int> component_of,
                  int comp_index) {
  std::deque<NodeId> queue;
  std::vector<NodeId> grounded_seed;
  // Seeds: nodes with base-case labels or an external predecessor.
  for (const NodeId v : scc) {
    const int lv = labels[static_cast<std::size_t>(v)];
    if (lv <= 1) {
      grounded_seed.push_back(v);
      continue;
    }
    for (const EdgeId e : c.fanin_edges(v)) {
      const auto& edge = c.edge(e);
      const std::int64_t support = static_cast<std::int64_t>(
                                       labels[static_cast<std::size_t>(edge.from)]) -
                                   static_cast<std::int64_t>(phi) * edge.weight + 1;
      if (support >= lv &&
          component_of[static_cast<std::size_t>(edge.from)] != comp_index) {
        grounded_seed.push_back(v);
        break;
      }
    }
  }
  if (grounded_seed.empty()) return true;

  // Propagate grounding along predecessor edges inside the SCC.
  std::vector<bool> grounded(static_cast<std::size_t>(c.num_nodes()), false);
  for (const NodeId v : grounded_seed) {
    grounded[static_cast<std::size_t>(v)] = true;
    queue.push_back(v);
  }
  std::size_t grounded_count = grounded_seed.size();
  while (!queue.empty() && grounded_count < scc.size()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const EdgeId e : c.fanout_edges(u)) {
      const auto& edge = c.edge(e);
      const NodeId v = edge.to;
      if (component_of[static_cast<std::size_t>(v)] != comp_index ||
          grounded[static_cast<std::size_t>(v)]) {
        continue;
      }
      const int lv = labels[static_cast<std::size_t>(v)];
      if (lv <= 1) continue;  // already a seed
      const std::int64_t support =
          static_cast<std::int64_t>(labels[static_cast<std::size_t>(u)]) -
          static_cast<std::int64_t>(phi) * edge.weight + 1;
      if (support >= lv) {
        grounded[static_cast<std::size_t>(v)] = true;
        ++grounded_count;
        queue.push_back(v);
      }
    }
  }
  // Isolated iff nothing is grounded; partial grounding means keep iterating.
  return grounded_count == 0;
}

}  // namespace

LabelResult compute_labels(const Circuit& c, int phi, const LabelOptions& options) {
  TS_CHECK(phi >= 1, "target ratio must be >= 1");
  TS_CHECK(c.is_k_bounded(options.k), "label computation requires a k-bounded circuit");

  LabelResult result;
  result.labels.assign(static_cast<std::size_t>(c.num_nodes()), 0);
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (c.is_gate(v) && !c.fanin_edges(v).empty()) result.labels[static_cast<std::size_t>(v)] = 1;
  }

  const Digraph g = c.to_digraph();
  const SccDecomposition scc = strongly_connected_components(g);
  DecompCache cache;
  cache.per_node.resize(static_cast<std::size_t>(c.num_nodes()));

  // Sweep order: zero-weight topological position. Updates then propagate
  // through a whole combinational stretch in a single sweep, so each sweep
  // advances label information by one register lap around a loop.
  std::vector<int> topo_pos(static_cast<std::size_t>(c.num_nodes()), 0);
  {
    const std::vector<NodeId> order =
        topological_order(g, [&](EdgeId e) { return g.edge(e).weight > 0; });
    for (std::size_t i = 0; i < order.size(); ++i) {
      topo_pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
  }

  for (std::size_t comp = 0; comp < scc.components.size(); ++comp) {
    // Collect the updatable gates of this SCC.
    std::vector<NodeId> gates;
    for (const NodeId v : scc.components[comp]) {
      if (c.is_gate(v) && !c.fanin_edges(v).empty()) gates.push_back(v);
    }
    if (gates.empty()) continue;
    std::sort(gates.begin(), gates.end(), [&](NodeId a, NodeId b) {
      return topo_pos[static_cast<std::size_t>(a)] < topo_pos[static_cast<std::size_t>(b)];
    });
    // PLD: the theorem's 6n bound with n = SCC size. Without PLD: the prior
    // criterion of n^2 iterations with n = circuit size (paper Section 4).
    const std::int64_t n = static_cast<std::int64_t>(gates.size());
    const std::int64_t total = std::max<std::int64_t>(2, c.num_gates());
    std::int64_t cap = options.use_pld ? 6 * n + 2 : total * total;
    if (options.sweep_budget > 0) cap = std::min(cap, options.sweep_budget);

    bool isolated_last_sweep = false;
    for (std::int64_t sweep = 0;; ++sweep) {
      ++result.stats.sweeps;
      bool changed = false;
      for (const NodeId v : gates) {
        const int updated = label_update(c, result.labels, phi, v, options, result.stats, &cache);
        if (updated > result.labels[static_cast<std::size_t>(v)]) {
          result.labels[static_cast<std::size_t>(v)] = updated;
          changed = true;
        }
      }
      if (!changed) break;  // SCC converged
      if (options.use_pld) {
        // Any feasible fixpoint satisfies l(v) <= sum of delays <= #gates
        // (labels are maxima of path delay minus phi*registers), so a label
        // beyond that certifies divergence regardless of the iteration cap.
        // Kept inside the PLD package so the no-PLD mode stays a faithful
        // n^2-criterion baseline for the ablation benchmark.
        for (const NodeId v : gates) {
          if (result.labels[static_cast<std::size_t>(v)] > c.num_gates() + 1) {
            return result;
          }
        }
        // Early exit: the SCC keeps changing while totally isolated from its
        // support in the predecessor graph on two consecutive sweeps. (A
        // single isolated snapshot can be the just-reached fixpoint, so one
        // more changing sweep is required to certify divergence; the 6n cap
        // below is the theorem's unconditional guarantee.)
        const bool isolated = scc_isolated(c, result.labels, phi, scc.components[comp],
                                           scc.component_of, static_cast<int>(comp));
        if (isolated && isolated_last_sweep) {
          return result;  // positive loop: infeasible at this phi
        }
        isolated_last_sweep = isolated;
      }
      if (sweep + 1 >= cap) {
        return result;  // stopping criterion reached without convergence
      }
    }
  }

  // All SCCs converged: feasible. POs get L(po) for the clock-period check.
  result.feasible = true;
  for (const NodeId po : c.pos()) {
    const std::int64_t l = fanin_bound(c, result.labels, phi, po);
    result.labels[static_cast<std::size_t>(po)] = static_cast<int>(std::max<std::int64_t>(0, l));
    result.max_po_label =
        std::max(result.max_po_label, result.labels[static_cast<std::size_t>(po)]);
  }
  return result;
}

}  // namespace turbosyn
