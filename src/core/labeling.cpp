#include "core/labeling.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <thread>

#include "base/check.hpp"
#include "base/thread_pool.hpp"
#include "graph/scc.hpp"

namespace turbosyn {
namespace {

/// L(v) = max over fanin edges of l(u) - phi*w(e).
std::int64_t fanin_bound(const Circuit& c, std::span<const int> labels, int phi, NodeId v) {
  std::int64_t best = std::numeric_limits<std::int64_t>::min();
  for (const EdgeId e : c.fanin_edges(v)) {
    const auto& edge = c.edge(e);
    best = std::max(best, static_cast<std::int64_t>(labels[static_cast<std::size_t>(edge.from)]) -
                              static_cast<std::int64_t>(phi) * edge.weight);
  }
  return best;
}

DecompOptions decomp_options(const LabelOptions& options) {
  DecompOptions d;
  d.k = options.k;
  d.use_bdd = options.use_bdd;
  d.bdd_node_budget = options.budget.bdd_node_budget();
  return d;
}

/// Signature of one decomposition attempt: the cut, the inputs' effective
/// labels, and the target height fully determine the (deterministic) outcome
/// of decompose_for_label, so verdicts memoized under this key stay valid
/// across sweeps and across phi probes of the same engine.
std::uint64_t attempt_signature(std::span<const SeqCutNode> cut, std::span<const int> eff,
                                int height) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(height);
  const auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (std::size_t i = 0; i < cut.size(); ++i) {
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(cut[i].node)) << 32 |
        static_cast<std::uint32_t>(cut[i].w));
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(eff[i])));
  }
  return h;
}

/// Tries resynthesis at min-cut heights `height`, height-1, ... Returns the
/// realization on success. With `existence_only`, a memoized success returns
/// an empty realization without re-running the decomposition: the label
/// iteration only needs the verdict, and mapping generation (which needs the
/// LUTs) always runs with existence_only = false.
/// Records v as degraded (fell back to its plain K-cut label under a
/// resource ceiling). Consecutive duplicates are skipped; full deduping
/// happens when the run's diagnostics are assembled.
void record_degraded(LabelStats& stats, NodeId v) {
  if (stats.degraded_nodes.empty() || stats.degraded_nodes.back() != v) {
    stats.degraded_nodes.push_back(v);
  }
}

std::optional<NodeRealization> try_decomposition(const Circuit& c, std::span<const int> labels,
                                                 int phi, NodeId v, int height,
                                                 const LabelOptions& options, LabelStats& stats,
                                                 DecompCache* cache, CutScratch* scratch,
                                                 bool existence_only = false) {
  CutScratch local;
  ExpandedNetwork& net = (scratch != nullptr ? *scratch : local).net;
  bool degraded = false;
  for (int h = 0; h < options.height_span; ++h) {
    net.build(c, labels, phi, v, height - h, options.expansion);
    const auto cut = net.find_cut(options.cmax);
    stats.flow_augmentations += net.augmentations();
    if (!cut) {
      if (net.flow_budget_hit()) {
        ++stats.flow_budget_hits;
        degraded = true;
      }
      break;  // stricter heights only widen the min-cut further
    }
    std::vector<int> eff(cut->size());
    for (std::size_t i = 0; i < cut->size(); ++i) {
      eff[i] = labels[static_cast<std::size_t>((*cut)[i].node)] - phi * (*cut)[i].w;
    }
    std::unordered_map<std::uint64_t, bool>* memo = nullptr;
    std::uint64_t key = 0;
    bool memoized_success = false;
    if (cache != nullptr) {
      memo = &cache->per_node[static_cast<std::size_t>(v)];
      key = attempt_signature(*cut, eff, height);
      if (const auto it = memo->find(key); it != memo->end()) {
        ++stats.cache_hits;
        if (!it->second) continue;  // this exact attempt already failed
        if (existence_only) return NodeRealization{};
        memoized_success = true;  // re-running a known success; exempt from
                                  // the attempt ceiling so mapping generation
                                  // can always rebuild what labeling proved
      }
    }
    if (!memoized_success && !options.budget.try_consume_decomp_attempt()) {
      ++stats.decomp_budget_hits;
      degraded = true;
      break;  // the ceiling is per-run: further heights would be refused too
    }
    ++stats.decomp_attempts;
    const TruthTable f = net.cut_function(*cut);
    DecompResult d = decompose_for_label(f, eff, height, decomp_options(options));
    if (d.budget_limited) {
      ++stats.bdd_budget_hits;
      if (!d.success) degraded = true;
    }
    if (memo != nullptr) memo->emplace(key, d.success);
    if (d.success) {
      ++stats.decomp_successes;
      NodeRealization r;
      r.cut = *cut;
      r.decomp = std::move(d);
      return r;
    }
  }
  if (degraded) record_degraded(stats, v);
  return std::nullopt;
}

}  // namespace

std::optional<NodeRealization> realize_node(const Circuit& c, std::span<const int> labels,
                                            int phi, NodeId v, int height,
                                            const LabelOptions& options, LabelStats& stats,
                                            DecompCache* cache,
                                            const std::function<bool(const SeqCutNode&)>* shared,
                                            CutScratch* scratch) {
  CutScratch local;
  ExpandedNetwork& net = (scratch != nullptr ? *scratch : local).net;
  net.build(c, labels, phi, v, height, options.expansion);
  ++stats.cut_tests;
  auto found = shared != nullptr ? net.find_low_cost_cut(options.k, *shared)
                                 : net.find_cut(options.k);
  stats.flow_augmentations += net.augmentations();
  if (auto& cut = found) {
    NodeRealization r;
    r.func = net.cut_function(*cut);
    r.cut = std::move(*cut);
    return r;
  }
  const bool budget_hit = net.flow_budget_hit();
  if (budget_hit) ++stats.flow_budget_hits;
  if (options.enable_decomposition) {
    if (auto d = try_decomposition(c, labels, phi, v, height, options, stats, cache, scratch)) {
      return d;
    }
  }
  if (budget_hit) {
    // The cut test was cut short by the augmentation ceiling, so "no cut"
    // is a budget verdict, not a fact. The trivial fanin cut needs no flow
    // computation and justifies every label of the form L(v)+1 (the value
    // the iteration assigns when its own cut tests are starved), so check
    // it directly: each fanin copy (u, w) must fit under the height limit.
    std::vector<SeqCutNode> cut;
    bool fits = true;
    for (const EdgeId e : c.fanin_edges(v)) {
      const auto& edge = c.edge(e);
      const std::int64_t eff =
          static_cast<std::int64_t>(labels[static_cast<std::size_t>(edge.from)]) -
          static_cast<std::int64_t>(phi) * edge.weight;
      if (eff + 1 > height) {
        fits = false;
        break;
      }
      cut.push_back(SeqCutNode{edge.from, edge.weight});
    }
    if (fits && static_cast<int>(cut.size()) <= options.k) {
      NodeRealization r;
      r.func = c.function(v);  // defined over the fanins in edge order
      r.cut = std::move(cut);
      return r;
    }
  }
  return std::nullopt;
}

int label_update(const Circuit& c, std::span<const int> labels, int phi, NodeId v,
                 const LabelOptions& options, LabelStats& stats, DecompCache* cache,
                 CutScratch* scratch) {
  ++stats.node_updates;
  const std::int64_t big_l = fanin_bound(c, labels, phi, v);
  const int current = labels[static_cast<std::size_t>(v)];
  TS_ASSERT(big_l < std::numeric_limits<int>::max());
  const int target = static_cast<int>(big_l);
  if (current >= target + 1) return current;  // cannot improve past L(v)+1

  // Existence-only variant of realize_node: skip LUT function extraction
  // (mapping generation recomputes it once, at the final labels).
  CutScratch local;
  ExpandedNetwork& net = (scratch != nullptr ? *scratch : local).net;
  net.build(c, labels, phi, v, target, options.expansion);
  ++stats.cut_tests;
  const bool have_cut = net.find_cut(options.k).has_value();
  stats.flow_augmentations += net.augmentations();
  if (have_cut) return std::max(current, target);
  if (net.flow_budget_hit()) ++stats.flow_budget_hits;
  if (options.enable_decomposition &&
      try_decomposition(c, labels, phi, v, target, options, stats, cache, scratch,
                        /*existence_only=*/true)
          .has_value()) {
    return std::max(current, target);
  }
  return std::max(current, target + 1);
}

namespace {

/// PLD: true iff the SCC is totally isolated from its support in the
/// predecessor graph — no node of the SCC is backed (transitively) by a node
/// with l <= 1 or by a predecessor outside the SCC.
bool scc_isolated(const Circuit& c, std::span<const int> labels, int phi,
                  std::span<const NodeId> scc, std::span<const int> component_of,
                  int comp_index) {
  std::deque<NodeId> queue;
  std::vector<NodeId> grounded_seed;
  // Seeds: nodes with base-case labels or an external predecessor.
  for (const NodeId v : scc) {
    const int lv = labels[static_cast<std::size_t>(v)];
    if (lv <= 1) {
      grounded_seed.push_back(v);
      continue;
    }
    for (const EdgeId e : c.fanin_edges(v)) {
      const auto& edge = c.edge(e);
      const std::int64_t support = static_cast<std::int64_t>(
                                       labels[static_cast<std::size_t>(edge.from)]) -
                                   static_cast<std::int64_t>(phi) * edge.weight + 1;
      if (support >= lv &&
          component_of[static_cast<std::size_t>(edge.from)] != comp_index) {
        grounded_seed.push_back(v);
        break;
      }
    }
  }
  if (grounded_seed.empty()) return true;

  // Propagate grounding along predecessor edges inside the SCC.
  std::vector<bool> grounded(static_cast<std::size_t>(c.num_nodes()), false);
  for (const NodeId v : grounded_seed) {
    grounded[static_cast<std::size_t>(v)] = true;
    queue.push_back(v);
  }
  std::size_t grounded_count = grounded_seed.size();
  while (!queue.empty() && grounded_count < scc.size()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const EdgeId e : c.fanout_edges(u)) {
      const auto& edge = c.edge(e);
      const NodeId v = edge.to;
      if (component_of[static_cast<std::size_t>(v)] != comp_index ||
          grounded[static_cast<std::size_t>(v)]) {
        continue;
      }
      const int lv = labels[static_cast<std::size_t>(v)];
      if (lv <= 1) continue;  // already a seed
      const std::int64_t support =
          static_cast<std::int64_t>(labels[static_cast<std::size_t>(u)]) -
          static_cast<std::int64_t>(phi) * edge.weight + 1;
      if (support >= lv) {
        grounded[static_cast<std::size_t>(v)] = true;
        ++grounded_count;
        queue.push_back(v);
      }
    }
  }
  // Isolated iff nothing is grounded; partial grounding means keep iterating.
  return grounded_count == 0;
}

}  // namespace

LabelEngine::LabelEngine(const Circuit& c, const LabelOptions& options)
    : c_(c), options_(options) {
  TS_CHECK(c.is_k_bounded(options.k), "label computation requires a k-bounded circuit");
  const std::size_t n = static_cast<std::size_t>(c.num_nodes());
  cache_.per_node.resize(n);

  const Digraph g = c.to_digraph();
  scc_ = strongly_connected_components(g);

  // Sweep order: zero-weight topological position. Updates then propagate
  // through a whole combinational stretch in a single sweep, so each sweep
  // advances label information by one register lap around a loop.
  topo_pos_.assign(n, 0);
  std::vector<int> level(n, 0);  // zero-weight longest-path depth
  {
    const std::vector<NodeId> order =
        topological_order(g, [&](EdgeId e) { return g.edge(e).weight > 0; });
    for (std::size_t i = 0; i < order.size(); ++i) {
      topo_pos_[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
    for (const NodeId v : order) {
      for (const EdgeId e : c.fanin_edges(v)) {
        const auto& edge = c.edge(e);
        if (edge.weight == 0) {
          level[static_cast<std::size_t>(v)] =
              std::max(level[static_cast<std::size_t>(v)],
                       level[static_cast<std::size_t>(edge.from)] + 1);
        }
      }
    }
  }

  // Per-component plans. Gates of one zero-weight level never depend on each
  // other through a zero-weight edge, so they form the parallel batches;
  // levels run in ascending order, which preserves the sequential engine's
  // within-sweep propagation along combinational stretches.
  const int num_comps = static_cast<int>(scc_.components.size());
  plans_.resize(static_cast<std::size_t>(num_comps));
  for (int comp = 0; comp < num_comps; ++comp) {
    CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
    for (const NodeId v : scc_.components[static_cast<std::size_t>(comp)]) {
      if (c.is_gate(v) && !c.fanin_edges(v).empty()) plan.gates.push_back(v);
    }
    std::sort(plan.gates.begin(), plan.gates.end(), [&](NodeId a, NodeId b) {
      return topo_pos_[static_cast<std::size_t>(a)] < topo_pos_[static_cast<std::size_t>(b)];
    });
    plan.batch_gates = plan.gates;
    std::sort(plan.batch_gates.begin(), plan.batch_gates.end(), [&](NodeId a, NodeId b) {
      const int la = level[static_cast<std::size_t>(a)];
      const int lb = level[static_cast<std::size_t>(b)];
      if (la != lb) return la < lb;
      return topo_pos_[static_cast<std::size_t>(a)] < topo_pos_[static_cast<std::size_t>(b)];
    });
    for (std::size_t i = 0; i < plan.batch_gates.size();) {
      std::size_t j = i + 1;
      const int li = level[static_cast<std::size_t>(plan.batch_gates[i])];
      while (j < plan.batch_gates.size() &&
             level[static_cast<std::size_t>(plan.batch_gates[j])] == li) {
        ++j;
      }
      plan.batches.push_back(Batch{static_cast<int>(i), static_cast<int>(j)});
      i = j;
    }
  }

  // Condensation wavefronts by longest-path depth: every condensation edge
  // strictly increases depth, so components of one wave share no path and
  // all their external fanins converged in earlier waves. Component indices
  // are topologically ordered, so one ascending pass computes the depths.
  std::vector<int> depth(static_cast<std::size_t>(num_comps), 0);
  int max_depth = 0;
  for (int comp = 0; comp < num_comps; ++comp) {
    for (const NodeId v : scc_.components[static_cast<std::size_t>(comp)]) {
      for (const EdgeId e : c.fanin_edges(v)) {
        const int cu = scc_.component_of[static_cast<std::size_t>(c.edge(e).from)];
        if (cu != comp) {
          depth[static_cast<std::size_t>(comp)] =
              std::max(depth[static_cast<std::size_t>(comp)],
                       depth[static_cast<std::size_t>(cu)] + 1);
        }
      }
    }
    max_depth = std::max(max_depth, depth[static_cast<std::size_t>(comp)]);
  }
  waves_.assign(static_cast<std::size_t>(max_depth) + 1, {});
  for (int comp = 0; comp < num_comps; ++comp) {
    if (!plans_[static_cast<std::size_t>(comp)].gates.empty()) {
      waves_[static_cast<std::size_t>(depth[static_cast<std::size_t>(comp)])].push_back(comp);
    }
  }
  std::erase_if(waves_, [](const std::vector<int>& w) { return w.empty(); });

  // Effective concurrency and per-lane arenas. num_threads == 1 never touches
  // the pool (and is the byte-exact legacy sweep order).
  if (options_.num_threads == 1) {
    threads_ = 1;
    caller_lane_ = 0;
    scratch_.resize(1);
    lane_stats_.resize(1);
  } else {
    ThreadPool& pool = ThreadPool::global();
    const int lanes = pool.num_workers() + 1;
    // num_threads == 0 targets the hardware concurrency (so a single-core
    // host defaults to the sequential path even though the pool always keeps
    // one worker); an explicit count is honored up to the pool's lanes.
    const int requested = options_.num_threads <= 0
                              ? static_cast<int>(std::thread::hardware_concurrency())
                              : options_.num_threads;
    threads_ = std::max(1, std::min(requested, lanes));
    caller_lane_ = std::min(threads_ - 1, pool.num_workers());
    scratch_.resize(static_cast<std::size_t>(lanes));
    lane_stats_.resize(static_cast<std::size_t>(lanes));
  }
}

void LabelStats::accumulate(const LabelStats& from) {
  sweeps += from.sweeps;
  node_updates += from.node_updates;
  cut_tests += from.cut_tests;
  decomp_attempts += from.decomp_attempts;
  decomp_successes += from.decomp_successes;
  cache_hits += from.cache_hits;
  flow_augmentations += from.flow_augmentations;
  bdd_budget_hits += from.bdd_budget_hits;
  decomp_budget_hits += from.decomp_budget_hits;
  flow_budget_hits += from.flow_budget_hits;
  degraded_nodes.insert(degraded_nodes.end(), from.degraded_nodes.begin(),
                        from.degraded_nodes.end());
}

void LabelEngine::merge_worker_stats(LabelStats& into) {
  for (LabelStats& s : lane_stats_) {
    into.accumulate(s);
    s = LabelStats{};
  }
}

LabelEngine::CompOutcome LabelEngine::process_comp_sequential(int comp, int phi,
                                                              std::vector<int>& labels,
                                                              LabelStats& stats,
                                                              CutScratch& scratch,
                                                              std::int64_t sweep_budget) {
  const CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
  // PLD: the theorem's 6n bound with n = SCC size. Without PLD: the prior
  // criterion of n^2 iterations with n = circuit size (paper Section 4).
  const std::int64_t n = static_cast<std::int64_t>(plan.gates.size());
  const std::int64_t total = std::max<std::int64_t>(2, c_.num_gates());
  const std::int64_t criterion_cap = options_.use_pld ? 6 * n + 2 : total * total;
  const bool budget_binds = sweep_budget > 0 && sweep_budget < criterion_cap;
  const std::int64_t cap = budget_binds ? sweep_budget : criterion_cap;

  bool isolated_last_sweep = false;
  for (std::int64_t sweep = 0;; ++sweep) {
    ++stats.sweeps;
    bool changed = false;
    for (const NodeId v : plan.gates) {
      if (options_.budget.interrupted()) return CompOutcome::kInterrupted;
      const int updated = label_update(c_, labels, phi, v, options_, stats, &cache_, &scratch);
      if (updated > labels[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] = updated;
        changed = true;
      }
    }
    if (!changed) return CompOutcome::kConverged;  // SCC converged
    if (options_.use_pld) {
      // Any feasible fixpoint satisfies l(v) <= sum of delays <= #gates
      // (labels are maxima of path delay minus phi*registers), so a label
      // beyond that certifies divergence regardless of the iteration cap.
      // Kept inside the PLD package so the no-PLD mode stays a faithful
      // n^2-criterion baseline for the ablation benchmark.
      for (const NodeId v : plan.gates) {
        if (labels[static_cast<std::size_t>(v)] > c_.num_gates() + 1) {
          return CompOutcome::kInfeasible;
        }
      }
      // Early exit: the SCC keeps changing while totally isolated from its
      // support in the predecessor graph on two consecutive sweeps. (A
      // single isolated snapshot can be the just-reached fixpoint, so one
      // more changing sweep is required to certify divergence; the 6n cap
      // below is the theorem's unconditional guarantee.) The theorem's
      // premise — an ungrounded, still-changing SCC must rise forever —
      // holds for the plain K-cut update only: resynthesis can absorb a
      // rising support later (try_decomposition succeeds where the cut test
      // failed), so a feasible TurboSYN SCC may look isolated transiently
      // (observed on bbsse at phi=2). With decomposition the 6n cap decides.
      if (!options_.enable_decomposition) {
        const bool isolated =
            scc_isolated(c_, labels, phi, scc_.components[static_cast<std::size_t>(comp)],
                         scc_.component_of, comp);
        if (isolated && isolated_last_sweep) return CompOutcome::kInfeasible;  // positive loop
        isolated_last_sweep = isolated;
      }
    }
    if (sweep + 1 >= cap) {
      // Distinguish "the criterion proved divergence" from "the caller's
      // sweep budget cut the iteration short" — only the former certifies
      // infeasibility.
      return budget_binds ? CompOutcome::kBudgetExhausted : CompOutcome::kInfeasible;
    }
  }
}

LabelEngine::CompOutcome LabelEngine::process_comp_parallel(int comp, int phi,
                                                            LabelResult& result) {
  const CompPlan& plan = plans_[static_cast<std::size_t>(comp)];
  std::vector<int>& labels = result.labels;
  const std::int64_t n = static_cast<std::int64_t>(plan.gates.size());
  const std::int64_t total = std::max<std::int64_t>(2, c_.num_gates());
  const std::int64_t criterion_cap = options_.use_pld ? 6 * n + 2 : total * total;
  const bool budget_binds =
      options_.sweep_budget > 0 && options_.sweep_budget < criterion_cap;
  const std::int64_t cap = budget_binds ? options_.sweep_budget : criterion_cap;

  ThreadPool& pool = ThreadPool::global();
  // One level batch: compute every update against the batch-start snapshot
  // (Jacobi), then apply. The trajectory is therefore independent of thread
  // count and work-stealing order; the snapshot semantics are kept even for
  // batches run inline.
  const auto run_batch = [&](const Batch& b) {
    const std::size_t bn = static_cast<std::size_t>(b.end - b.begin);
    if (batch_result_.size() < bn) batch_result_.resize(bn);
    if (bn < 2 || threads_ == 1) {
      for (std::size_t i = 0; i < bn; ++i) {
        batch_result_[i] = label_update(
            c_, labels, phi, plan.batch_gates[static_cast<std::size_t>(b.begin) + i], options_,
            lane_stats_[static_cast<std::size_t>(caller_lane_)], &cache_,
            &scratch_[static_cast<std::size_t>(caller_lane_)]);
      }
    } else {
      pool.for_each(
          bn,
          [&](std::size_t i, int lane) {
            batch_result_[i] = label_update(
                c_, labels, phi, plan.batch_gates[static_cast<std::size_t>(b.begin) + i],
                options_, lane_stats_[static_cast<std::size_t>(lane)], &cache_,
                &scratch_[static_cast<std::size_t>(lane)]);
          },
          threads_ - 1, &options_.budget);
    }
    // A fired interrupt leaves some batch slots unwritten (the pool skips
    // their items), so the whole batch is discarded — labels are monotone
    // lower bounds, dropping in-flight updates is always safe.
    if (options_.budget.interrupted()) return false;
    bool changed = false;
    for (std::size_t i = 0; i < bn; ++i) {
      const NodeId v = plan.batch_gates[static_cast<std::size_t>(b.begin) + i];
      if (batch_result_[i] > labels[static_cast<std::size_t>(v)]) {
        labels[static_cast<std::size_t>(v)] = batch_result_[i];
        changed = true;
      }
    }
    return changed;
  };

  bool isolated_last_sweep = false;
  bool isolated_twice = false;
  bool converged = false;
  bool diverged = false;
  bool interrupted = false;
  for (std::int64_t sweep = 0; sweep < cap; ++sweep) {
    ++lane_stats_[static_cast<std::size_t>(caller_lane_)].sweeps;
    bool changed = false;
    for (const Batch& b : plan.batches) {
      if (run_batch(b)) changed = true;
      if (options_.budget.interrupted()) {
        interrupted = true;
        break;
      }
    }
    if (interrupted) break;
    if (!changed) {
      converged = true;
      break;
    }
    if (options_.use_pld) {
      // The divergence certificate is a property of the current labels, not
      // of the sweep order, so it applies verbatim to the batched trajectory.
      for (const NodeId v : plan.gates) {
        if (labels[static_cast<std::size_t>(v)] > c_.num_gates() + 1) {
          diverged = true;
          break;
        }
      }
      if (diverged) break;
      // Isolation is only a divergence signal for the plain K-cut update
      // (see process_comp_sequential); with decomposition the cap decides.
      if (!options_.enable_decomposition) {
        const bool isolated =
            scc_isolated(c_, labels, phi, scc_.components[static_cast<std::size_t>(comp)],
                         scc_.component_of, comp);
        if (isolated && isolated_last_sweep) {
          isolated_twice = true;
          break;
        }
        isolated_last_sweep = isolated;
      }
    }
  }
  merge_worker_stats(result.stats);

  if (interrupted) return CompOutcome::kInterrupted;
  if (converged) return CompOutcome::kConverged;
  if (diverged) return CompOutcome::kInfeasible;
  if (budget_binds && !isolated_twice) {
    return CompOutcome::kBudgetExhausted;  // sweep budget, not a certificate
  }
  if (!options_.use_pld) {
    return CompOutcome::kInfeasible;  // the n^2 bound holds for any fair sweep order
  }
  // The 6n cap and the isolation criterion are proven for the sequential
  // sweep order; re-run that exact order from the current labels (valid
  // lower bounds, so the least fixpoint is unchanged) to settle the verdict.
  // Feasible components re-converge here in a few sweeps.
  return process_comp_sequential(comp, phi, labels, result.stats,
                                 scratch_[static_cast<std::size_t>(caller_lane_)],
                                 options_.sweep_budget);
}

LabelResult LabelEngine::compute(int phi) {
  TS_CHECK(phi >= 1, "target ratio must be >= 1");

  LabelResult result;
  // Stamps result.status before any exit: the outcome of the deciding
  // component, plus kDegraded whenever a resource ceiling interfered
  // anywhere (which also demotes an infeasible verdict from certificate to
  // budget-imposed — see LabelResult::status).
  const auto finish = [&](CompOutcome out) {
    if (out == CompOutcome::kInterrupted) {
      const Status s = options_.budget.check();
      result.status = combine_status(result.status, s == Status::kOk ? Status::kCancelled : s);
    } else if (out == CompOutcome::kBudgetExhausted) {
      result.status = combine_status(result.status, Status::kDegraded);
    }
    if (result.stats.bdd_budget_hits + result.stats.decomp_budget_hits +
            result.stats.flow_budget_hits >
        0) {
      result.status = combine_status(result.status, Status::kDegraded);
    }
  };
  // Warm start: labels are antitone in phi, so the converged labels of the
  // nearest previously feasible phi' >= phi are valid lower bounds for this
  // probe and the monotone iteration reaches the same least fixpoint. That
  // argument needs a monotone update, which only the plain K-cut update is:
  // with decomposition, raising one label can turn a neighbouring node's
  // resynthesis from success into failure, so the iteration is trajectory
  // sensitive and can settle on a different (still valid) fixpoint than a
  // cold start would. Different fixpoints pick different cuts, and mapped
  // results must be reproducible run to run — so decomposition probes always
  // start cold. They still share the decomposition memo: its verdicts are
  // pure functions of (cut, effective labels, height), independent of phi
  // and of the label trajectory.
  const bool warm_ok = !options_.enable_decomposition;
  if (const auto it = warm_.lower_bound(phi); warm_ok && it != warm_.end()) {
    result.labels = it->second;
  } else {
    result.labels.assign(static_cast<std::size_t>(c_.num_nodes()), 0);
    for (NodeId v = 0; v < c_.num_nodes(); ++v) {
      if (c_.is_gate(v) && !c_.fanin_edges(v).empty()) {
        result.labels[static_cast<std::size_t>(v)] = 1;
      }
    }
  }

  if (threads_ == 1) {
    for (int comp = 0; comp < static_cast<int>(scc_.components.size()); ++comp) {
      if (plans_[static_cast<std::size_t>(comp)].gates.empty()) continue;
      const CompOutcome out = process_comp_sequential(comp, phi, result.labels, result.stats,
                                                      scratch_[0], options_.sweep_budget);
      if (out != CompOutcome::kConverged) {
        finish(out);
        return result;
      }
    }
  } else {
    ThreadPool& pool = ThreadPool::global();
    // A certified diverging SCC decides the verdict no matter what happened
    // elsewhere; an interrupt beats a budget-imposed stop for the status.
    const auto rank = [](CompOutcome o) {
      switch (o) {
        case CompOutcome::kInfeasible:
          return 3;
        case CompOutcome::kInterrupted:
          return 2;
        case CompOutcome::kBudgetExhausted:
          return 1;
        case CompOutcome::kConverged:
          break;
      }
      return 0;
    };
    for (const std::vector<int>& wave : waves_) {
      if (wave.size() == 1) {
        const CompOutcome out = process_comp_parallel(wave[0], phi, result);
        if (out != CompOutcome::kConverged) {
          finish(out);
          return result;
        }
        continue;
      }
      // Components of one wavefront are mutually independent (no condensation
      // path connects them), so each runs the sequential inner order on its
      // own lane: its PLD criteria apply verbatim, every write targets its
      // own component's labels, and every external read is a frozen earlier
      // wave. The whole wave runs to completion before feasibility is
      // checked — no cross-thread aborts, so the outcome is deterministic.
      // (A fired interrupt skips unstarted components; their slots keep the
      // kInterrupted initializer.)
      std::vector<CompOutcome> outcomes(wave.size(), CompOutcome::kInterrupted);
      pool.for_each(
          wave.size(),
          [&](std::size_t i, int lane) {
            outcomes[i] =
                process_comp_sequential(wave[i], phi, result.labels,
                                        lane_stats_[static_cast<std::size_t>(lane)],
                                        scratch_[static_cast<std::size_t>(lane)],
                                        options_.sweep_budget);
          },
          threads_ - 1, &options_.budget);
      merge_worker_stats(result.stats);
      CompOutcome worst = CompOutcome::kConverged;
      for (const CompOutcome out : outcomes) {
        if (rank(out) > rank(worst)) worst = out;
      }
      if (worst != CompOutcome::kConverged) {
        finish(worst);
        return result;
      }
    }
  }

  // All SCCs converged: feasible. POs get L(po) for the clock-period check.
  result.feasible = true;
  for (const NodeId po : c_.pos()) {
    const std::int64_t l = fanin_bound(c_, result.labels, phi, po);
    result.labels[static_cast<std::size_t>(po)] = static_cast<int>(std::max<std::int64_t>(0, l));
    result.max_po_label =
        std::max(result.max_po_label, result.labels[static_cast<std::size_t>(po)]);
  }
  finish(CompOutcome::kConverged);
  // Degraded labels are valid for this probe but not proven least-fixpoint
  // lower bounds, so only clean probes seed future warm starts.
  if (warm_ok && result.status == Status::kOk) warm_[phi] = result.labels;
  return result;
}

LabelResult compute_labels(const Circuit& c, int phi, const LabelOptions& options) {
  LabelEngine engine(c, options);
  return engine.compute(phi);
}

}  // namespace turbosyn
