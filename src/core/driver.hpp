#pragma once
// FlowDriver: the staged pass pipeline behind the public flows.
//
// Each synthesis flow is a declarative list of Stage objects run by one
// driver loop. A stage declares the typed artifacts it consumes and
// produces; the driver checks the contract before each stage runs (a
// mis-ordered list fails loudly, not with a half-initialized context),
// measures per-stage wall time and counter deltas into
// FlowResult::stage_metrics, and emits a "stage:<name>" trace span per
// stage when FlowOptions::trace is set.
//
// The FlowContext is the blackboard the stages communicate through: the
// input circuit and options, the shared ProbeLedger (the no-reprobe scope —
// multi-phase flows pass one ledger to several drivers), the winning labels
// of the search stage, the in-flight mapped network, and the FlowResult
// being assembled. finish() exports the ledger and diagnostics into the
// result and moves it out.
//
// Budget checking, cancellation and warm-start policy are uniform across
// flows because they live in exactly one place each: budgets thread through
// FlowOptions::label_options() into every engine the stages construct,
// probe scheduling consults the ledger, and warm starts stay inside
// LabelEngine (per search stage) under the ledger's soundness rules.

#include <memory>
#include <optional>
#include <vector>

#include "core/flows.hpp"

namespace turbosyn {

/// Typed artifacts a stage may consume/produce. The driver tracks presence
/// only; the payloads live in FlowContext (labels, mapped, result fields).
enum class ArtifactId : std::uint8_t {
  kInputCircuit,   // the circuit under synthesis (provided by the driver)
  kUpperBound,     // FlowContext::ub — search upper bound on φ / the period
  kWinningLabels,  // FlowContext::labels/have_labels — search stage ran
  kMappedNetwork,  // FlowContext::mapped — un-packed LUT network
  kPackedNetwork,  // FlowContext::mapped — deduped/packed, metrics extracted
  kTiming,         // FlowResult::period/pipeline_stages/mapped finalized
};
const char* artifact_name(ArtifactId id);

/// Shared state of one driver run. Stages read and write it under the
/// artifact contract the driver enforces.
class FlowContext {
 public:
  FlowContext(const Circuit& input_circuit, const FlowOptions& flow_options,
              ProbeLedger& probe_ledger);

  const Circuit& input;
  const FlowOptions& options;
  ProbeLedger& ledger;
  TraceSink* trace = nullptr;  // == options.trace

  FlowResult result;
  /// Update rule of the search stage that ran (mirrors the ledger records).
  LabelMode label_mode = LabelMode::kPlain;
  /// Search upper bound (kUpperBound artifact).
  std::optional<int> ub;
  /// Winning labels of the search stage (kWinningLabels). `have_labels` is
  /// false when the search was stopped before proving any φ — downstream
  /// stages then fall back to the identity mapping.
  LabelResult labels;
  bool have_labels = false;
  /// The in-flight mapped network (kMappedNetwork / kPackedNetwork).
  std::optional<Circuit> mapped;

  bool has(ArtifactId id) const;
  /// Adds a counter onto the currently running stage's metric and its trace
  /// span (no-op between stages or for zero values).
  void count(const char* counter_name, std::int64_t value);

 private:
  friend class FlowDriver;
  void provide(ArtifactId id);

  unsigned artifacts_ = 0;
  StageMetric* current_metric_ = nullptr;
};

/// One pass of a flow pipeline. Stages are small stateless-ish objects
/// (configuration only); all run state lives in the FlowContext.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual std::vector<ArtifactId> consumes() const = 0;
  virtual std::vector<ArtifactId> produces() const = 0;
  virtual void run(FlowContext& ctx) = 0;
};

using StageList = std::vector<std::unique_ptr<Stage>>;

class FlowDriver {
 public:
  /// Driver with its own ProbeLedger.
  FlowDriver(const Circuit& c, const FlowOptions& options);
  /// Driver sharing an external ledger: multi-phase flows (TurboSYN) keep
  /// one no-reprobe scope across phases. `ledger` must outlive the driver.
  FlowDriver(const Circuit& c, const FlowOptions& options, ProbeLedger& ledger);

  /// Runs one stage: checks its consumes-contract, times it, collects its
  /// counter deltas into StageMetrics, marks its produces.
  void run(Stage& stage);
  /// Runs the stages in order.
  void run(const StageList& stages);

  FlowContext& context() { return ctx_; }

  /// Exports the probe ledger and diagnostics into the result and moves it
  /// out. The context stays readable (labels, mapped) afterwards.
  FlowResult finish();

 private:
  std::unique_ptr<ProbeLedger> owned_ledger_;
  FlowContext ctx_;
};

/// Derives the user-facing diagnostics (timed_out, deduped degraded node
/// names) from the accumulated status/stats. Idempotent; multi-phase flows
/// re-run it after merging phase stats.
void fill_flow_diagnostics(FlowResult& result, const Circuit& c);

/// Runs one label probe through the ledger: asserts (mode, φ) was not
/// probed before, computes, records outcome/hash/stats/wall time, emits a
/// "probe" trace span. The shared primitive of every search stage.
LabelResult ledger_probe(FlowContext& ctx, LabelEngine& engine, LabelMode mode, int phi);

}  // namespace turbosyn
