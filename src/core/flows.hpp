#pragma once
// End-to-end synthesis flows compared in the paper's Table 1.
//
//  - turbomap():  label computation without resynthesis, binary search on the
//                 integer MDR ratio (the TurboMap algorithm run in MDR mode,
//                 as the paper does when combining it with PLD).
//  - turbosyn():  the paper's contribution — TurboMap's upper bound, then
//                 binary search with sequential functional decomposition.
//  - flowsyn_s(): the strongest prior baseline — cut at all FFs, map each
//                 combinational block with FlowSYN, merge the FFs back.
//  - turbomap_period(): the original ICCD'96 TurboMap objective — minimum
//                 clock period under retiming only (no pipelining).
//
// Every flow returns the mapped network (after packing), its exact MDR
// ratio, and the clock period achieved after pipelining + retiming.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/rational.hpp"
#include "base/run_budget.hpp"
#include "core/labeling.hpp"
#include "core/mapgen.hpp"
#include "core/probe_ledger.hpp"
#include "netlist/circuit.hpp"
#include "retime/pipeline.hpp"

namespace turbosyn {

class TraceSink;

/// Externally derived warm seed for the plain-mode label search, typically a
/// near-miss cache transfer (cache/cached_flow.cpp): the converged labels of
/// a structurally similar circuit, with every node whose fanin cone changed
/// reset to its base label. Soundness contract: `labels` must be a pointwise
/// lower bound of the least fixpoint at `phi` — the engine still proves the
/// fixpoint (and every verdict) itself, so the seed is never a certificate
/// and results stay bit-identical to a cold run.
struct WarmImport {
  int phi = 0;                      // donor fixpoint's φ; seeds probes at φ' <= φ
  std::vector<int> labels;          // by input node id
  std::vector<NodeId> dirty_hint;   // gates reset below the donor fixpoint
};

struct FlowOptions {
  int k = 5;
  int cmax = 15;
  int height_span = 3;
  bool use_pld = true;           // positive loop detection (vs n^2 criterion)
  bool use_bdd = true;           // decomposition multiplicity engine
  bool label_relaxation = true;  // LUT-reduction in mapping generation
  bool low_cost_cuts = true;     // min-size, max-sharing cut selection
  bool dedupe = true;            // structural LUT deduplication
  bool pack = true;              // mpack/flowpack-style packing
  bool pipeline = true;          // post-process with pipelining + retiming
  int num_threads = 0;           // label engine: 0 = hardware, 1 = sequential
  /// Dirty-set incremental label recomputation for warm-seeded plain-update
  /// probes (see LabelOptions::incremental). Default on; converged labels
  /// and all mapped results are bit-identical either way, so this is
  /// excluded from the flow-cache key (like num_threads).
  bool incremental = true;
  /// Optional near-miss warm seed applied to the plain-mode search engine
  /// (never a certificate — see WarmImport). Shared, not owned; excluded
  /// from the cache key for the same reason as `incremental`.
  std::shared_ptr<const WarmImport> warm_import;
  /// Record the winning labels and per-node realizations in
  /// FlowResult::artifacts so the invariant auditor (verify/audit.hpp) can
  /// independently re-check the run. Off by default: the artifacts hold a
  /// full label vector plus one realization per mapped LUT.
  bool collect_artifacts = false;
  /// Deadline / cancellation / resource ceilings governing the whole flow.
  /// Default-constructed = unlimited; an unlimited budget leaves every result
  /// bit-identical to the budget-free code.
  RunBudget budget;
  ExpandedOptions expansion;
  /// Optional trace sink (base/trace.hpp): the flow, each stage and each φ
  /// probe emit scoped spans and counters into it. Not owned; nullptr (the
  /// default) disables tracing entirely.
  TraceSink* trace = nullptr;

  LabelOptions label_options(bool enable_decomposition) const;
};

/// Wall time and counters of one pipeline stage of a flow run. Counters are
/// stage-local deltas (labels computed, cut tests, flow augmentations,
/// decomposition attempts/cache hits, retime configurations, ...).
struct StageMetric {
  std::string name;
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  /// Value of a named counter (0 when the stage did not emit it).
  std::int64_t counter(const std::string& counter_name) const;
};

/// Per-stage breakdown of a flow run, in execution order. Multi-phase flows
/// (TurboSYN) concatenate their phases into one timeline.
struct StageMetrics {
  std::vector<StageMetric> stages;
  double total_seconds() const;
  /// First stage with the given name, or nullptr.
  const StageMetric* find(const std::string& stage_name) const;
};

/// Intermediate artifacts of a label-driven flow, kept for independent
/// re-verification. Only populated when FlowOptions::collect_artifacts is
/// set and the flow actually ran a label search to completion (FlowSYN-s and
/// interrupted identity fallbacks produce none — `valid` stays false and the
/// auditor skips the label/cut stages).
struct FlowArtifacts {
  bool valid = false;
  int phi = 0;                         // the ratio/period the labels certify
  LabelResult labels;                  // winning converged labels (input ids)
  std::vector<MappingRecord> records;  // realizations behind `mapped`
  /// Update rule the labels converged under — tells the auditor which ledger
  /// entry certifies them without re-deriving it from flow identity.
  LabelMode mode = LabelMode::kPlain;
  /// Clock-period objective: probes additionally required
  /// max_po_label <= φ, so the minimality witness at φ-1 may be a feasible
  /// probe rejected on its PO labels rather than an infeasibility.
  bool po_limited = false;
};

/// One engine's row in a portfolio run: what it achieved (or where it was
/// stopped), for the STATS rollups, the trace, and the "portfolio" audit
/// check. `cancelled` means the race stopped the engine before it finished
/// exactly — either mid-run (status is then kCancelled) or before it even
/// started (seconds == 0); a cancelled engine never holds a certificate.
struct EngineRun {
  std::string name;          // registry name
  int phi = 0;               // the engine's φ (0 when skipped before start)
  Status status = Status::kOk;
  bool certified = false;    // finished with status kOk: an eligible winner
  bool cancelled = false;    // lost the race (dominated by a finisher)
  double seconds = 0.0;      // the engine's own wall clock (0 when skipped)
  int luts = 0;
};

struct FlowResult {
  int phi = 0;               // minimum integer ratio/period the flow achieved
  Circuit mapped;            // final LUT network
  int luts = 0;
  std::int64_t ffs = 0;      // register bits in `mapped` (before pipelining)
  Rational exact_mdr;        // exact MDR ratio of `mapped`
  std::int64_t period = 0;   // clock period after pipelining + retiming
  int pipeline_stages = 0;
  LabelStats stats;          // accumulated across the binary search
  double seconds = 0.0;      // wall-clock of the whole flow
  /// kOk: exact run. kDegraded: a resource ceiling altered the computation;
  /// `mapped` is still a valid, equivalent network but `phi`/`period` may be
  /// above the true optimum. kDeadlineExceeded / kCancelled: the run was
  /// interrupted; `mapped` is the best feasible mapping found so far (the
  /// identity mapping if none completed), still equivalent to the input.
  Status status = Status::kOk;
  /// Convenience flag: the run was stopped by a deadline or cancellation
  /// before the search finished (status is kDeadlineExceeded or kCancelled).
  bool timed_out = false;
  /// Containment record (status == kFailed): the stage whose run() threw or
  /// tripped an injected fault, and the exception text. The driver caught
  /// the failure at the stage boundary and skipped the remaining stages, so
  /// `mapped` is whatever the last completed stage left behind (the empty
  /// default when mapping generation never ran) — usable for diagnostics,
  /// never as a result, never as a certificate, never cacheable.
  std::string failed_stage;
  std::string failure;
  /// Deduped names of nodes whose decomposition fell back to the plain K-cut
  /// label under a resource ceiling (empty on an unlimited run).
  std::vector<std::string> degraded_nodes;
  /// Label/realization artifacts for the auditor (see FlowArtifacts).
  FlowArtifacts artifacts;
  /// Per-stage wall-time/counter breakdown of the run (see StageMetrics).
  StageMetrics stage_metrics;
  /// Full probe ledger of the run: every (mode, φ) label probe with outcome,
  /// label hash, stats and wall time (empty for FlowSYN-s, which runs no
  /// ratio search). A portfolio run merges every engine's ledger here with
  /// each record tagged by its engine name. See core/probe_ledger.hpp for
  /// the soundness rules.
  std::vector<ProbeRecord> probes;
  /// Portfolio provenance. Empty for a standalone flow run. For a portfolio
  /// run, `engine` names the winning engine (the one whose result this is)
  /// and `portfolio` holds one row per raced engine in spec order —
  /// including the winner — so callers can audit the selection and meter
  /// the wall time the cancellations saved.
  std::string engine;
  std::vector<EngineRun> portfolio;
};

FlowResult run_turbomap(const Circuit& c, const FlowOptions& options);
FlowResult run_turbosyn(const Circuit& c, const FlowOptions& options);
FlowResult run_flowsyn_s(const Circuit& c, const FlowOptions& options);
FlowResult run_turbomap_period(const Circuit& c, const FlowOptions& options);

/// The four public flows as a first-class value, for callers that select a
/// flow at runtime (the BLIF CLI, the batch scheduler, the artifact cache
/// key). The names match the CLI spellings.
enum class FlowKind : std::uint8_t { kTurboMap, kTurboSyn, kFlowSynS, kTurboMapPeriod };

/// CLI spelling of a kind ("turbomap", "turbosyn", "flowsyn_s",
/// "turbomap_period").
const char* flow_kind_name(FlowKind kind);

/// Parses a CLI spelling; returns false (leaving `kind` untouched) on an
/// unknown name.
bool flow_kind_from_name(const std::string& name, FlowKind& kind);

/// Dispatches to the matching run_* entry point.
FlowResult run_flow(FlowKind kind, const Circuit& c, const FlowOptions& options);

}  // namespace turbosyn
