#pragma once
// Expanded circuits E_v and the partial flow network of TurboMap/TurboSYN.
//
// E_v (Pan–Liu) represents every LUT rooted at v realizable under retiming
// and node replication: its nodes are pairs u^w = (u, w) where w is the
// total register count along a path from u to v; every path from u^w to the
// root crosses exactly w registers. For a target ratio phi and height limit
// H, a node u^w may be a cut node (LUT input) iff
//     eff(u, w) + 1 = l(u) - phi*w + 1 <= H,
// otherwise it is "mandatory" — it cannot sit on the cut, though it may lie
// either inside the LUT or beyond a deeper cut. The network therefore gives
// allowed nodes capacity 1 and mandatory nodes infinite capacity.
//
// Expansion is exact through mandatory chains (they terminate because every
// cycle carries a register, which lowers eff by at least phi per lap) and
// continues `extra_levels` past the first allowed frontier to catch
// reconvergent cuts; remaining frontier nodes hang off the source. A node
// budget keeps degenerate cases bounded (treated conservatively as "no cut").

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/truth_table.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// A node of E_v: original node plus accumulated register count to the root.
struct SeqCutNode {
  NodeId node = kNoNode;
  int w = 0;
  bool operator==(const SeqCutNode&) const = default;
  bool operator<(const SeqCutNode& o) const {
    return node != o.node ? node < o.node : w < o.w;
  }
};

struct ExpandedOptions {
  int extra_levels = 2;       // expansion past the first allowed frontier
  int node_budget = 20000;    // max E_v nodes per query
};

/// The partial flow network of E_v for one (root, height-limit) query.
class ExpandedNetwork {
 public:
  /// labels: current node label lower bounds; sources (PIs/constants) must
  /// be 0 there. phi >= 1.
  ExpandedNetwork(const Circuit& c, std::span<const int> labels, int phi, NodeId root,
                  int height_limit, const ExpandedOptions& options);

  /// False when no cut at this height can exist at all (a source copy was
  /// mandatory, or the node budget was exhausted).
  bool viable() const { return viable_; }

  /// Minimum cut with all cut nodes allowed at the height limit and size
  /// <= size_limit; nullopt if none (or !viable()). Sorted, deterministic.
  std::optional<std::vector<SeqCutNode>> find_cut(int size_limit);

  /// The paper's low-cost K-cut (Step 2): among all cuts of minimum size,
  /// prefer one whose nodes satisfy `shared` (signals already used as LUT
  /// inputs elsewhere), maximizing input sharing. Implemented with weighted
  /// capacities (B per node + 1 penalty for non-shared), so the min cut is
  /// lexicographically (size, #non-shared)-minimal.
  std::optional<std::vector<SeqCutNode>> find_low_cost_cut(
      int size_limit, const std::function<bool(const SeqCutNode&)>& shared);

  /// Truth table of the root over the given cut (variable i = cut[i]).
  /// The cut must separate the root in E_v (as returned by find_cut).
  TruthTable cut_function(std::span<const SeqCutNode> cut) const;

  int num_expanded_nodes() const { return static_cast<int>(nodes_.size()); }

 private:
  struct ExpNode {
    SeqCutNode id;
    bool allowed = false;   // may be a cut node
    bool expanded = false;  // fanins materialized
    std::vector<int> fanins;  // indices into nodes_
  };

  int intern(SeqCutNode id);
  bool allowed(SeqCutNode id) const;
  void expand();
  /// Shared flow construction: per-node capacities from `capacity_of`,
  /// acceptance threshold `value_limit` on the max-flow.
  std::optional<std::vector<SeqCutNode>> find_cut_impl(
      std::int64_t value_limit, const std::function<std::int64_t(const ExpNode&)>& capacity_of);

  const Circuit& circuit_;
  std::span<const int> labels_;
  int phi_;
  NodeId root_;
  int height_limit_;
  ExpandedOptions options_;
  bool viable_ = true;

  std::vector<ExpNode> nodes_;
  std::unordered_map<std::uint64_t, int> index_;  // packed (node, w) -> index
};

}  // namespace turbosyn
