#pragma once
// Expanded circuits E_v and the partial flow network of TurboMap/TurboSYN.
//
// E_v (Pan–Liu) represents every LUT rooted at v realizable under retiming
// and node replication: its nodes are pairs u^w = (u, w) where w is the
// total register count along a path from u to v; every path from u^w to the
// root crosses exactly w registers. For a target ratio phi and height limit
// H, a node u^w may be a cut node (LUT input) iff
//     eff(u, w) + 1 = l(u) - phi*w + 1 <= H,
// otherwise it is "mandatory" — it cannot sit on the cut, though it may lie
// either inside the LUT or beyond a deeper cut. The network therefore gives
// allowed nodes capacity 1 and mandatory nodes infinite capacity.
//
// Expansion is exact through mandatory chains (they terminate because every
// cycle carries a register, which lowers eff by at least phi per lap) and
// continues `extra_levels` past the first allowed frontier to catch
// reconvergent cuts; remaining frontier nodes hang off the source. A node
// budget keeps degenerate cases bounded (treated conservatively as "no cut").
//
// Zero-state safety: a copy u^w with w >= 1 whose gate function evaluates to
// 1 on the all-zero input is never expanded, so it can only be a cut input,
// never LUT interior. An interior copy at w >= 1 is recomputed for early
// cycles from pre-history (pre-reset) values; since every register powers up
// at 0, that recomputation matches the register contents exactly when the
// all-zero input yields 0 — zeros are then a fixpoint of the recomputation
// and the mapped network reproduces the original's zero-state behavior from
// cycle 0. Without this rule, a register-crossed NOR/NOT-style gate inside a
// LUT boots to f(0..0) = 1 where the original read 0, and on loops that
// never resynchronize the difference persists at every cycle.
//
// One ExpandedNetwork instance is rebuildable: build() re-targets it to a
// new (root, height) query while keeping every internal buffer — the node
// store, the open-addressing (node, w) index, the BFS worklist and the whole
// Dinic state — so the label computation's per-gate cut test allocates
// nothing in steady state. CutScratch bundles one such instance as the
// per-thread arena of the parallel label engine.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "base/truth_table.hpp"
#include "graph/max_flow.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// A node of E_v: original node plus accumulated register count to the root.
struct SeqCutNode {
  NodeId node = kNoNode;
  int w = 0;
  bool operator==(const SeqCutNode&) const = default;
  bool operator<(const SeqCutNode& o) const {
    return node != o.node ? node < o.node : w < o.w;
  }
};

struct ExpandedOptions {
  int extra_levels = 2;       // expansion past the first allowed frontier
  int node_budget = 20000;    // max E_v nodes per query
  /// Max augmenting paths per cut test (0 = unlimited); when it fires the
  /// test conservatively reports "no cut" and flow_budget_hit() is set.
  std::int64_t flow_augment_budget = 0;
};

/// The partial flow network of E_v for one (root, height-limit) query.
class ExpandedNetwork {
 public:
  /// Empty network; call build() before querying. Reusing one instance
  /// across queries retains all internal buffers.
  ExpandedNetwork() = default;

  /// labels: current node label lower bounds; sources (PIs/constants) must
  /// be 0 there. phi >= 1.
  ExpandedNetwork(const Circuit& c, std::span<const int> labels, int phi, NodeId root,
                  int height_limit, const ExpandedOptions& options);

  /// Re-targets this network to a new query, reusing all internal storage.
  /// Results of previous queries (cuts, functions) must not be used after.
  void build(const Circuit& c, std::span<const int> labels, int phi, NodeId root,
             int height_limit, const ExpandedOptions& options);

  /// False when no cut at this height can exist at all (a source copy was
  /// mandatory, or the node budget was exhausted).
  bool viable() const { return viable_; }

  /// True iff a cut query since the last build() was cut short by the flow
  /// augmentation budget — its "no cut" answer was imposed, not proven.
  bool flow_budget_hit() const { return flow_budget_hit_; }

  /// Augmenting paths found by cut queries since the last build().
  std::int64_t augmentations() const { return augmentations_; }

  /// Minimum cut with all cut nodes allowed at the height limit and size
  /// <= size_limit; nullopt if none (or !viable()). Sorted, deterministic.
  std::optional<std::vector<SeqCutNode>> find_cut(int size_limit);

  /// The paper's low-cost K-cut (Step 2): among all cuts of minimum size,
  /// prefer one whose nodes satisfy `shared` (signals already used as LUT
  /// inputs elsewhere), maximizing input sharing. Implemented with weighted
  /// capacities (B per node + 1 penalty for non-shared), so the min cut is
  /// lexicographically (size, #non-shared)-minimal.
  std::optional<std::vector<SeqCutNode>> find_low_cost_cut(
      int size_limit, const std::function<bool(const SeqCutNode&)>& shared);

  /// Truth table of the root over the given cut (variable i = cut[i]).
  /// The cut must separate the root in E_v (as returned by find_cut).
  TruthTable cut_function(std::span<const SeqCutNode> cut) const;

  int num_expanded_nodes() const { return static_cast<int>(num_nodes_); }

  /// The i-th copy of the current query (0 <= i < num_expanded_nodes()).
  /// The base nodes of these copies are exactly the labels the query read:
  /// expansion and capacity decisions depend on no other label.
  SeqCutNode copy(int i) const { return nodes_[static_cast<std::size_t>(i)].id; }

  /// True iff the current query interned a register-crossed copy (w > 0).
  /// When false, every effective height equals a plain label, so the whole
  /// network — and any cut verdict on it — is independent of phi as long as
  /// the labels it read are unchanged.
  bool has_weighted_copy() const { return has_weighted_copy_; }

 private:
  struct ExpNode {
    SeqCutNode id;
    bool allowed = false;   // may be a cut node
    bool expanded = false;  // fanins materialized
    // Fanins as a contiguous [begin, end) run in fanin_pool_: nodes expand
    // one at a time, so each node's child indices land in one run and the
    // per-node std::vector (and its per-build clear/regrow) disappears.
    std::int32_t fanin_begin = 0;
    std::int32_t fanin_end = 0;
  };

  int intern(SeqCutNode id);
  int find_index(std::uint64_t key) const;  // -1 if absent
  void index_grow();
  bool allowed(SeqCutNode id) const;
  void expand();
  /// Shared flow construction: per-node capacities from `capacity_of`,
  /// acceptance threshold `value_limit` on the max-flow.
  std::optional<std::vector<SeqCutNode>> find_cut_impl(
      std::int64_t value_limit, const std::function<std::int64_t(const ExpNode&)>& capacity_of);

  const Circuit* circuit_ = nullptr;
  std::span<const int> labels_;
  int phi_ = 1;
  NodeId root_ = kNoNode;
  int height_limit_ = 0;
  ExpandedOptions options_;
  bool viable_ = true;
  bool has_weighted_copy_ = false;
  bool flow_budget_hit_ = false;
  std::int64_t augmentations_ = 0;

  // Node store: slots [0, num_nodes_) are live for the current query; the
  // vector is never shrunk. Fanin indices live in the shared flat pool.
  std::vector<ExpNode> nodes_;
  std::size_t num_nodes_ = 0;
  std::vector<std::int32_t> fanin_pool_;
  // High-water marks of the scratch vectors across builds; build() reserves
  // them up front so repeated cut tests stop reallocating mid-query.
  std::size_t hw_nodes_ = 0;
  std::size_t hw_cut_side_ = 0;

  // Open-addressing packed-(node, w) -> index map with O(1) epoch clearing.
  struct IndexSlot {
    std::uint64_t key = 0;
    int value = 0;
    std::uint32_t epoch = 0;
  };
  std::vector<IndexSlot> index_slots_;
  std::uint32_t index_epoch_ = 0;
  std::size_t index_size_ = 0;  // live entries this epoch

  // Reused expansion worklist and flow-network buffers.
  std::vector<int> slack_;
  std::vector<int> bfs_queue_;
  MaxFlow flow_;
  std::vector<int> in_id_;
  std::vector<int> out_id_;
  std::vector<bool> cut_side_;
};

/// Per-thread scratch arena for the label-computation hot path: a reusable
/// ExpandedNetwork (node store, hash index, worklists, Dinic state) plus the
/// epoch-cleared buffers of the PLD isolation check. Thread one through
/// label_update()/realize_node() to make repeated cut tests allocation-free;
/// each concurrent thread needs its own instance.
struct CutScratch {
  ExpandedNetwork net;
  // scc_isolated() scratch (labeling.cpp): per-node grounded stamps with
  // O(1) epoch clearing, and the BFS worklist.
  std::vector<std::uint32_t> iso_mark;
  std::uint32_t iso_epoch = 0;
  std::vector<NodeId> iso_queue;
};

}  // namespace turbosyn
