#include "core/driver.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/trace.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void add_counter(StageMetric& metric, const char* name, std::int64_t value) {
  if (value == 0) return;
  for (auto& [n, v] : metric.counters) {
    if (n == name) {
      v += value;
      return;
    }
  }
  metric.counters.emplace_back(name, value);
}

}  // namespace

const char* artifact_name(ArtifactId id) {
  switch (id) {
    case ArtifactId::kInputCircuit:
      return "input-circuit";
    case ArtifactId::kUpperBound:
      return "upper-bound";
    case ArtifactId::kWinningLabels:
      return "winning-labels";
    case ArtifactId::kMappedNetwork:
      return "mapped-network";
    case ArtifactId::kPackedNetwork:
      return "packed-network";
    case ArtifactId::kTiming:
      return "timing";
  }
  return "?";
}

FlowContext::FlowContext(const Circuit& input_circuit, const FlowOptions& flow_options,
                         ProbeLedger& probe_ledger)
    : input(input_circuit), options(flow_options), ledger(probe_ledger),
      trace(flow_options.trace) {}

bool FlowContext::has(ArtifactId id) const {
  return (artifacts_ & (1u << static_cast<unsigned>(id))) != 0;
}

void FlowContext::provide(ArtifactId id) { artifacts_ |= 1u << static_cast<unsigned>(id); }

void FlowContext::count(const char* counter_name, std::int64_t value) {
  if (current_metric_ != nullptr) add_counter(*current_metric_, counter_name, value);
}

FlowDriver::FlowDriver(const Circuit& c, const FlowOptions& options)
    : owned_ledger_(std::make_unique<ProbeLedger>()), ctx_(c, options, *owned_ledger_) {
  ctx_.provide(ArtifactId::kInputCircuit);
}

FlowDriver::FlowDriver(const Circuit& c, const FlowOptions& options, ProbeLedger& ledger)
    : ctx_(c, options, ledger) {
  ctx_.provide(ArtifactId::kInputCircuit);
}

void FlowDriver::run(Stage& stage) {
  // Contract violations are programming errors in the flow's stage list and
  // still throw to the caller; only the stage's own execution is contained.
  for (const ArtifactId a : stage.consumes()) {
    TS_CHECK(ctx_.has(a), "stage '" << stage.name() << "' consumes missing artifact '"
                                    << artifact_name(a) << "'");
  }
  for (const ArtifactId a : stage.produces()) {
    TS_CHECK(!ctx_.has(a), "stage '" << stage.name() << "' would produce artifact '"
                                     << artifact_name(a) << "' twice");
  }
  StageMetric metric;
  metric.name = stage.name();
  // Snapshot the shared stats so the metric reports this stage's delta.
  const LabelStats before = ctx_.result.stats;
  TraceSpan span(ctx_.trace, std::string("stage:") + stage.name());
  const auto start = Clock::now();
  ctx_.current_metric_ = &metric;
  bool completed = false;
  // Containment boundary: a stage that throws — a real defect or an armed
  // "driver.stage" failpoint — is recorded as kFailed with the stage named,
  // and the driver stops instead of the process dying. A failed run is
  // never a certificate and never cacheable (FlowCache::storable).
  try {
    if (failpoint::enabled()) {
      const std::string scoped = std::string("driver.stage.") + stage.name();
      for (const std::string& site : {scoped, std::string("driver.stage")}) {
        if (failpoint::check(site.c_str()).action == failpoint::Action::kError) {
          throw Error("failpoint " + site);
        }
      }
    }
    stage.run(ctx_);
    completed = true;
  } catch (const std::exception& e) {
    ctx_.result.status = combine_status(ctx_.result.status, Status::kFailed);
    ctx_.result.failed_stage = stage.name();
    ctx_.result.failure = e.what();
    span.set_detail(std::string("failed: ") + e.what());
    add_counter(metric, "failed", 1);
  }
  ctx_.current_metric_ = nullptr;
  metric.seconds = seconds_since(start);
  const LabelStats& after = ctx_.result.stats;
  add_counter(metric, "labels_computed", after.node_updates - before.node_updates);
  add_counter(metric, "cut_tests", after.cut_tests - before.cut_tests);
  add_counter(metric, "flow_augmentations",
              after.flow_augmentations - before.flow_augmentations);
  add_counter(metric, "decomp_attempts", after.decomp_attempts - before.decomp_attempts);
  add_counter(metric, "decomp_cache_hits", after.cache_hits - before.cache_hits);
  add_counter(metric, "dirty_rounds", after.dirty_rounds - before.dirty_rounds);
  add_counter(metric, "nodes_skipped", after.nodes_skipped - before.nodes_skipped);
  for (const auto& [name, value] : metric.counters) span.counter(name, value);
  // A failed stage provides nothing: downstream consumes-contracts stay
  // unsatisfied, so even a caller that ignores the status cannot run the
  // rest of the pipeline on half-initialized artifacts.
  if (completed) {
    for (const ArtifactId a : stage.produces()) ctx_.provide(a);
  }
  ctx_.result.stage_metrics.stages.push_back(std::move(metric));
}

void FlowDriver::run(const StageList& stages) {
  for (const auto& stage : stages) {
    if (ctx_.result.status == Status::kFailed) break;
    run(*stage);
  }
}

FlowResult FlowDriver::finish() {
  ctx_.result.probes = ctx_.ledger.records();
  fill_flow_diagnostics(ctx_.result, ctx_.input);
  return std::move(ctx_.result);
}

void fill_flow_diagnostics(FlowResult& result, const Circuit& c) {
  result.timed_out = is_interrupt(result.status);
  std::vector<NodeId> nodes = result.stats.degraded_nodes;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  result.degraded_nodes.clear();
  result.degraded_nodes.reserve(nodes.size());
  for (const NodeId v : nodes) result.degraded_nodes.push_back(c.name(v));
}

LabelResult ledger_probe(FlowContext& ctx, LabelEngine& engine, LabelMode mode, int phi) {
  TS_CHECK(!ctx.ledger.contains(mode, phi),
           "phi=" << phi << " (" << label_mode_name(mode) << ") already probed this run");
  TraceSpan span(ctx.trace, "probe",
                 std::string(label_mode_name(mode)) + " phi=" + std::to_string(phi));
  const auto start = Clock::now();
  LabelResult r = engine.compute(phi);
  ProbeRecord rec;
  rec.phi = phi;
  rec.mode = mode;
  rec.outcome = classify_probe(r);
  rec.status = r.status;
  rec.feasible = r.feasible;
  rec.label_hash = r.feasible ? hash_labels(r.labels) : 0;
  rec.max_po_label = r.max_po_label;
  // Nonzero dirty-set counters are the engine's signature that this probe
  // ran (or shortcut) the incremental path rather than full cold sweeps.
  rec.incremental = r.stats.dirty_rounds > 0 || r.stats.nodes_skipped > 0;
  rec.stats = r.stats;
  rec.seconds = seconds_since(start);
  span.counter("labels_computed", r.stats.node_updates);
  span.counter("cut_tests", r.stats.cut_tests);
  span.counter("flow_augmentations", r.stats.flow_augmentations);
  span.counter("decomp_attempts", r.stats.decomp_attempts);
  span.counter("decomp_cache_hits", r.stats.cache_hits);
  span.counter("dirty_rounds", r.stats.dirty_rounds);
  span.counter("nodes_skipped", r.stats.nodes_skipped);
  span.counter("incremental", rec.incremental ? 1 : 0);
  ctx.ledger.record(std::move(rec));
  ctx.count("probes", 1);
  return r;
}

}  // namespace turbosyn
