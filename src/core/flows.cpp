#include "core/flows.hpp"

#include <algorithm>
#include <chrono>

#include "base/check.hpp"
#include "base/logging.hpp"
#include "mapping/dedupe.hpp"
#include "mapping/flowmap.hpp"
#include "mapping/pack.hpp"
#include "mapping/seq_split.hpp"
#include "retime/cycle_ratio.hpp"
#include "retime/retiming.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void accumulate(LabelStats& into, const LabelStats& from) {
  into.sweeps += from.sweeps;
  into.node_updates += from.node_updates;
  into.cut_tests += from.cut_tests;
  into.decomp_attempts += from.decomp_attempts;
  into.decomp_successes += from.decomp_successes;
  into.bdd_budget_hits += from.bdd_budget_hits;
  into.decomp_budget_hits += from.decomp_budget_hits;
  into.flow_budget_hits += from.flow_budget_hits;
  into.degraded_nodes.insert(into.degraded_nodes.end(), from.degraded_nodes.begin(),
                             from.degraded_nodes.end());
}

bool is_interrupt(Status s) {
  return s == Status::kDeadlineExceeded || s == Status::kCancelled;
}

/// Derives the user-facing diagnostics from the accumulated status/stats.
void fill_diagnostics(FlowResult& result, const Circuit& c) {
  result.timed_out = is_interrupt(result.status);
  std::vector<NodeId> nodes = result.stats.degraded_nodes;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  result.degraded_nodes.clear();
  result.degraded_nodes.reserve(nodes.size());
  for (const NodeId v : nodes) result.degraded_nodes.push_back(c.name(v));
}

/// Packing + metric extraction + optional pipelining/retiming, shared by all
/// flows once a mapped network exists.
void finalize(FlowResult& result, const FlowOptions& options, Circuit mapped) {
  if (options.dedupe) mapped = dedupe_luts(mapped);
  if (options.pack) mapped = pack_luts(mapped, options.k);
  result.luts = mapped.num_gates();
  result.ffs = mapped.num_ffs_shared();
  result.exact_mdr = circuit_mdr(mapped).ratio;
  if (options.pipeline) {
    // Measure the achievable period on a copy: `mapped` stays un-retimed so
    // it is cycle-accurate equivalent to the input from the all-zero state.
    Circuit pipelined = mapped;
    const PipelineResult p = pipeline_and_retime(pipelined, 64, &options.budget);
    result.period = p.period;
    result.pipeline_stages = p.stages;
    result.status = combine_status(result.status, p.status);
  }
  result.mapped = std::move(mapped);
}

/// Outcome of a ratio search: the best phi proven feasible (when any was),
/// and the worst status any probe — or the budget itself — reported.
struct SearchVerdict {
  int phi = 0;
  bool have_best = false;
  Status status = Status::kOk;
};

/// Binary search for the smallest phi in [1, ub] whose label computation is
/// feasible; writes the winning labels. `ub` must be feasible (on an
/// unlimited run; under a budget the search may stop early and report the
/// best feasible probe so far — or none — with a non-kOk status). One
/// LabelEngine serves every probe, so all of them share the decomposition
/// cache and each warm-starts from the nearest previously feasible probe.
/// `known_ub` (optional): a LabelResult already proven feasible at phi == ub;
/// the search then starts from it and never re-probes ub.
SearchVerdict search_min_ratio(const Circuit& c, int ub, const LabelOptions& lopts,
                               LabelResult& best, LabelStats& stats,
                               const LabelResult* known_ub = nullptr) {
  LabelEngine engine(c, lopts);
  SearchVerdict verdict;
  int lo = 1;
  int hi = ub;
  const auto interrupted_before_probe = [&] {
    if (!lopts.budget.interrupted()) return false;
    verdict.status = combine_status(verdict.status, lopts.budget.check());
    return true;
  };
  if (known_ub != nullptr) {
    best = *known_ub;
    verdict.have_best = true;
    verdict.status = combine_status(verdict.status, known_ub->status);
    hi = ub - 1;
    // Descending scan instead of bisection. Feasibility is monotone in phi,
    // so both find the same minimum; but each feasible probe warm-starts
    // from the previous one (a few sweeps), while every infeasible probe
    // must run to a divergence certificate — the dominant cost, especially
    // with decomposition, where the isolation early-exit is unsound and
    // disabled. Scanning downward pays for exactly one infeasible probe;
    // bisection would hit about half of log2(ub) of them. As a bonus, an
    // interrupt mid-scan simply keeps the last feasible probe as the
    // anytime answer.
    while (hi >= lo) {
      if (interrupted_before_probe()) break;
      LabelResult r = engine.compute(hi);
      accumulate(stats, r.stats);
      verdict.status = combine_status(verdict.status, r.status);
      TS_DEBUG("phi=" << hi << (r.feasible ? " feasible" : " infeasible") << " sweeps="
                      << r.stats.sweeps);
      if (!r.feasible) break;  // certificate, budget verdict, or interrupt
      best = std::move(r);
      --hi;
    }
    verdict.phi = hi + 1;
    return verdict;
  }
  while (lo <= hi) {
    if (interrupted_before_probe()) break;
    const int mid = lo + (hi - lo) / 2;
    LabelResult r = engine.compute(mid);
    accumulate(stats, r.stats);
    verdict.status = combine_status(verdict.status, r.status);
    TS_DEBUG("phi=" << mid << (r.feasible ? " feasible" : " infeasible") << " sweeps="
                    << r.stats.sweeps);
    if (is_interrupt(r.status)) break;  // labels did not converge: unusable
    if (r.feasible) {
      best = std::move(r);
      verdict.have_best = true;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (!verdict.have_best) {
    // Only a budget can make the identity-mapping upper bound "infeasible".
    TS_CHECK(verdict.status != Status::kOk, "upper bound ratio was not feasible");
    return verdict;
  }
  verdict.phi = hi + 1;
  return verdict;
}

FlowResult run_mdr_flow(const Circuit& c, const FlowOptions& options, bool decompose, int ub,
                        const LabelResult* known_ub = nullptr,
                        LabelResult* out_labels = nullptr) {
  const auto start = Clock::now();
  FlowResult result;
  const LabelOptions lopts = options.label_options(decompose);
  LabelResult labels;
  const SearchVerdict verdict = search_min_ratio(c, ub, lopts, labels, result.stats, known_ub);
  result.status = verdict.status;
  if (out_labels != nullptr) *out_labels = labels;
  if (!verdict.have_best) {
    // The run was stopped before any probe converged. The identity mapping
    // (the K-bounded input itself, one LUT per gate) is always valid, so the
    // anytime answer is the input network at the search's upper bound.
    result.phi = ub;
    finalize(result, options, c);
    fill_diagnostics(result, c);
    result.seconds = seconds_since(start);
    return result;
  }
  result.phi = verdict.phi;
  MapGenOptions mopts;
  mopts.label_relaxation = options.label_relaxation;
  mopts.low_cost_cuts = options.low_cost_cuts;
  Circuit mapped = generate_sequential_mapping(
      c, labels, result.phi, lopts, mopts, result.stats,
      options.collect_artifacts ? &result.artifacts.records : nullptr);
  if (options.collect_artifacts) {
    result.artifacts.valid = true;
    result.artifacts.phi = result.phi;
    result.artifacts.labels = std::move(labels);
  }
  finalize(result, options, std::move(mapped));
  fill_diagnostics(result, c);
  result.seconds = seconds_since(start);
  return result;
}

/// Upper bound for the TurboMap binary search: the identity mapping (one LUT
/// per gate) is always a valid mapping, so ceil(MDR of the input) works.
int identity_mapping_ub(const Circuit& c) {
  const Rational mdr = circuit_mdr(c).ratio;
  return static_cast<int>(std::max<std::int64_t>(1, mdr.ceil()));
}

}  // namespace

LabelOptions FlowOptions::label_options(bool enable_decomposition) const {
  LabelOptions l;
  l.k = k;
  l.enable_decomposition = enable_decomposition;
  l.cmax = cmax;
  l.height_span = height_span;
  l.use_pld = use_pld;
  l.use_bdd = use_bdd;
  l.num_threads = num_threads;
  l.budget = budget;  // copies share state: one budget governs the whole flow
  l.expansion = expansion;
  l.expansion.flow_augment_budget = budget.flow_augment_budget();
  return l;
}

FlowResult run_turbomap(const Circuit& c, const FlowOptions& options) {
  return run_mdr_flow(c, options, /*decompose=*/false, identity_mapping_ub(c));
}

FlowResult run_turbosyn(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  // Step 1 of the paper's pseudo-code: TurboMap provides the upper bound UB.
  // Its labels at UB prove UB feasible for the decomposition search too
  // (every plain K-cut is a valid realization there), so the search below
  // starts from them instead of re-probing phi == UB.
  LabelResult ub_labels;
  FlowResult ub_run = run_mdr_flow(c, options, /*decompose=*/false, identity_mapping_ub(c),
                                   /*known_ub=*/nullptr, &ub_labels);
  if (!ub_labels.feasible) {
    // The TurboMap stage was stopped before it proved any ratio feasible:
    // there are no labels to seed the decomposition search, so the anytime
    // answer is the TurboMap stage's own fallback result.
    ub_run.seconds = seconds_since(start);
    return ub_run;
  }
  FlowResult result = run_mdr_flow(c, options, /*decompose=*/true, ub_run.phi, &ub_labels);
  accumulate(result.stats, ub_run.stats);
  result.status = combine_status(result.status, ub_run.status);
  fill_diagnostics(result, c);
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_flowsyn_s(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  FlowResult result;
  if (options.budget.interrupted()) {
    // Stopped before the combinational mapping even started: the identity
    // mapping is the anytime answer, as in the ratio searches.
    result.status = options.budget.check();
    finalize(result, options, c);
    result.phi = static_cast<int>(std::max<std::int64_t>(1, result.exact_mdr.ceil()));
    fill_diagnostics(result, c);
    result.seconds = seconds_since(start);
    return result;
  }

  const SequentialSplit split = split_at_registers(c);
  FlowMapOptions fopts;
  fopts.k = options.k;
  fopts.enable_decomposition = true;
  fopts.cmax = options.cmax;
  fopts.min_cut_height_span = options.height_span;
  fopts.use_bdd = options.use_bdd;
  const FlowMapResult mapping = flowmap(split.comb, fopts);
  const Circuit mapped_comb = generate_mapped_circuit(split.comb, mapping, fopts);
  Circuit merged = merge_registers(c, split, mapped_comb);
  finalize(result, options, std::move(merged));
  // FlowSYN-s has no ratio search; report the ceiling of the measured MDR,
  // with combinational circuits (MDR 0) reported as their pipelined period 1.
  result.phi = static_cast<int>(std::max<std::int64_t>(1, result.exact_mdr.ceil()));
  // flowmap() itself is not budget-aware; report a deadline/cancel that fired
  // during it (the mapping above is still complete and valid).
  result.status = combine_status(result.status, options.budget.check());
  fill_diagnostics(result, c);
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_turbomap_period(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  FlowResult result;
  const LabelOptions lopts = options.label_options(false);

  // Upper bound: the unmapped circuit's clock period (identity mapping,
  // no retiming) is always achievable.
  int ub = static_cast<int>(std::max<std::int64_t>(1, circuit_clock_period(c)));
  LabelEngine engine(c, lopts);
  LabelResult best;
  bool have_best = false;
  int lo = 1;
  int hi = ub;
  while (lo <= hi) {
    if (options.budget.interrupted()) {
      result.status = combine_status(result.status, options.budget.check());
      break;
    }
    const int mid = lo + (hi - lo) / 2;
    LabelResult r = engine.compute(mid);
    accumulate(result.stats, r.stats);
    result.status = combine_status(result.status, r.status);
    if (is_interrupt(r.status)) break;  // labels did not converge: unusable
    if (r.feasible && r.max_po_label <= mid) {
      best = std::move(r);
      have_best = true;
      result.phi = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  FlowOptions no_pipeline = options;
  no_pipeline.pipeline = false;
  if (!have_best) {
    // Only a budget can stop the search before the always-achievable upper
    // bound is proven; fall back to the identity mapping at that bound.
    TS_CHECK(result.status != Status::kOk, "clock-period upper bound was not feasible");
    result.phi = ub;
    finalize(result, no_pipeline, c);
    Circuit fallback_retimed = result.mapped;
    result.period = retime_min_period(fallback_retimed);
    result.mapped = std::move(fallback_retimed);
    fill_diagnostics(result, c);
    result.seconds = seconds_since(start);
    return result;
  }

  MapGenOptions mopts;
  mopts.label_relaxation = options.label_relaxation;
  mopts.low_cost_cuts = options.low_cost_cuts;
  mopts.po_label_limit = result.phi;
  Circuit mapped = generate_sequential_mapping(
      c, best, result.phi, lopts, mopts, result.stats,
      options.collect_artifacts ? &result.artifacts.records : nullptr);
  if (options.collect_artifacts) {
    result.artifacts.valid = true;
    result.artifacts.phi = result.phi;
    result.artifacts.labels = std::move(best);
  }
  finalize(result, no_pipeline, std::move(mapped));
  // Clock-period mode: retiming only.
  Circuit retimed = result.mapped;
  result.period = retime_min_period(retimed);
  result.mapped = std::move(retimed);
  fill_diagnostics(result, c);
  result.seconds = seconds_since(start);
  return result;
}

}  // namespace turbosyn
