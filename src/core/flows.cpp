#include "core/flows.hpp"

#include "base/check.hpp"
#include "core/engines.hpp"

namespace turbosyn {

// The four public flows are registry entries since PR 9: run_engine()
// expands an EngineSpec into the stage pipeline the FlowDriver executes
// (core/engines.cpp), so this file only keeps the FlowOptions plumbing and
// the FlowKind naming shims.

LabelOptions FlowOptions::label_options(bool enable_decomposition) const {
  LabelOptions l;
  l.k = k;
  l.enable_decomposition = enable_decomposition;
  l.cmax = cmax;
  l.height_span = height_span;
  l.use_pld = use_pld;
  l.use_bdd = use_bdd;
  l.num_threads = num_threads;
  l.incremental = incremental;
  l.budget = budget;  // copies share state: one budget governs the whole flow
  l.expansion = expansion;
  l.expansion.flow_augment_budget = budget.flow_augment_budget();
  return l;
}

std::int64_t StageMetric::counter(const std::string& counter_name) const {
  for (const auto& [name, value] : counters) {
    if (name == counter_name) return value;
  }
  return 0;
}

double StageMetrics::total_seconds() const {
  double total = 0.0;
  for (const StageMetric& stage : stages) total += stage.seconds;
  return total;
}

const StageMetric* StageMetrics::find(const std::string& stage_name) const {
  for (const StageMetric& stage : stages) {
    if (stage.name == stage_name) return &stage;
  }
  return nullptr;
}

FlowResult run_turbomap(const Circuit& c, const FlowOptions& options) {
  return run_engine(engine_for_kind(FlowKind::kTurboMap), c, options);
}

FlowResult run_turbosyn(const Circuit& c, const FlowOptions& options) {
  return run_engine(engine_for_kind(FlowKind::kTurboSyn), c, options);
}

FlowResult run_flowsyn_s(const Circuit& c, const FlowOptions& options) {
  return run_engine(engine_for_kind(FlowKind::kFlowSynS), c, options);
}

FlowResult run_turbomap_period(const Circuit& c, const FlowOptions& options) {
  return run_engine(engine_for_kind(FlowKind::kTurboMapPeriod), c, options);
}

const char* flow_kind_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kTurboMap:
      return "turbomap";
    case FlowKind::kTurboSyn:
      return "turbosyn";
    case FlowKind::kFlowSynS:
      return "flowsyn_s";
    case FlowKind::kTurboMapPeriod:
      return "turbomap_period";
  }
  return "?";
}

bool flow_kind_from_name(const std::string& name, FlowKind& kind) {
  for (const FlowKind k : {FlowKind::kTurboMap, FlowKind::kTurboSyn, FlowKind::kFlowSynS,
                           FlowKind::kTurboMapPeriod}) {
    if (name == flow_kind_name(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

FlowResult run_flow(FlowKind kind, const Circuit& c, const FlowOptions& options) {
  return run_engine(engine_for_kind(kind), c, options);
}

}  // namespace turbosyn
