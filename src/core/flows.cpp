#include "core/flows.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "base/check.hpp"
#include "base/trace.hpp"
#include "core/driver.hpp"
#include "core/stages/flowsyn_map.hpp"
#include "core/stages/mapgen_stage.hpp"
#include "core/stages/pack_stage.hpp"
#include "core/stages/phi_search.hpp"
#include "core/stages/pipeline_retime_stage.hpp"
#include "core/stages/ub_probe.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The TurboMap pipeline: identity-mapping upper bound, plain-label
/// bisection, mapping generation, packing, pipelining + retiming. Also
/// phase A of TurboSYN.
StageList turbomap_stages() {
  StageList stages;
  stages.push_back(std::make_unique<UbProbeStage>(UbProbeStage::Kind::kIdentityMdr));
  stages.push_back(std::make_unique<PhiSearchStage>(PhiSearchStage::Config{}));
  stages.push_back(std::make_unique<MapGenStage>());
  stages.push_back(std::make_unique<PackStage>());
  stages.push_back(
      std::make_unique<PipelineRetimeStage>(PipelineRetimeStage::Kind::kPipelineRetime));
  return stages;
}

}  // namespace

LabelOptions FlowOptions::label_options(bool enable_decomposition) const {
  LabelOptions l;
  l.k = k;
  l.enable_decomposition = enable_decomposition;
  l.cmax = cmax;
  l.height_span = height_span;
  l.use_pld = use_pld;
  l.use_bdd = use_bdd;
  l.num_threads = num_threads;
  l.incremental = incremental;
  l.budget = budget;  // copies share state: one budget governs the whole flow
  l.expansion = expansion;
  l.expansion.flow_augment_budget = budget.flow_augment_budget();
  return l;
}

std::int64_t StageMetric::counter(const std::string& counter_name) const {
  for (const auto& [name, value] : counters) {
    if (name == counter_name) return value;
  }
  return 0;
}

double StageMetrics::total_seconds() const {
  double total = 0.0;
  for (const StageMetric& stage : stages) total += stage.seconds;
  return total;
}

const StageMetric* StageMetrics::find(const std::string& stage_name) const {
  for (const StageMetric& stage : stages) {
    if (stage.name == stage_name) return &stage;
  }
  return nullptr;
}

FlowResult run_turbomap(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan span(options.trace, "flow:turbomap");
  span.counter("incremental", options.incremental ? 1 : 0);
  FlowDriver driver(c, options);
  driver.run(turbomap_stages());
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_turbosyn(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan flow_span(options.trace, "flow:turbosyn");
  flow_span.counter("incremental", options.incremental ? 1 : 0);
  // One no-reprobe scope across both phases: plain-mode probes from phase A
  // and decomposition-mode probes from phase B share the ledger.
  ProbeLedger ledger;

  // Step 1 of the paper's pseudo-code: TurboMap provides the upper bound UB.
  // Its labels at UB prove UB feasible for the decomposition search too
  // (every plain K-cut is a valid realization there), so the search below
  // starts from them instead of re-probing phi == UB.
  FlowDriver ub_driver(c, options, ledger);
  {
    TraceSpan phase(options.trace, "phase:turbomap-ub");
    ub_driver.run(turbomap_stages());
  }
  const bool have_ub_labels = ub_driver.context().have_labels;
  auto ub_labels = std::make_shared<LabelResult>(ub_driver.context().labels);
  FlowResult ub_run = ub_driver.finish();
  if (ub_run.status == Status::kFailed) {
    // A contained phase-A failure ends the flow: whatever labels exist were
    // produced next to a blown stage boundary, so nothing seeds phase B.
    ub_run.seconds = seconds_since(start);
    return ub_run;
  }
  if (!have_ub_labels) {
    // The TurboMap stage was stopped before it proved any ratio feasible:
    // there are no labels to seed the decomposition search, so the anytime
    // answer is the TurboMap stage's own fallback result.
    ub_run.seconds = seconds_since(start);
    return ub_run;
  }

  FlowDriver driver(c, options, ledger);
  {
    TraceSpan phase(options.trace, "phase:turbosyn-search");
    StageList stages;
    stages.push_back(std::make_unique<UbProbeStage>(ub_run.phi));
    PhiSearchStage::Config cfg;
    cfg.schedule = PhiSearchStage::Schedule::kDescending;
    cfg.mode = LabelMode::kDecomp;
    cfg.seed = std::move(ub_labels);
    stages.push_back(std::make_unique<PhiSearchStage>(std::move(cfg)));
    stages.push_back(std::make_unique<MapGenStage>());
    stages.push_back(std::make_unique<PackStage>());
    stages.push_back(
        std::make_unique<PipelineRetimeStage>(PipelineRetimeStage::Kind::kPipelineRetime));
    driver.run(stages);
  }
  FlowResult result = driver.finish();
  result.stats.accumulate(ub_run.stats);
  result.status = combine_status(result.status, ub_run.status);
  fill_flow_diagnostics(result, c);
  // One timeline: the TurboMap phase's stages first, then the search phase's.
  result.stage_metrics.stages.insert(result.stage_metrics.stages.begin(),
                                     ub_run.stage_metrics.stages.begin(),
                                     ub_run.stage_metrics.stages.end());
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_flowsyn_s(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan span(options.trace, "flow:flowsyn-s");
  FlowDriver driver(c, options);
  StageList stages;
  stages.push_back(std::make_unique<FlowSynMapStage>());
  // FlowSYN-s has no ratio search; phi is the ceiling of the measured MDR.
  stages.push_back(std::make_unique<PackStage>(/*phi_from_mdr=*/true));
  // flowmap() itself is not budget-aware; the final budget check reports a
  // deadline/cancel that fired during it (the mapping is still complete and
  // valid).
  stages.push_back(std::make_unique<PipelineRetimeStage>(
      PipelineRetimeStage::Kind::kPipelineRetime, /*final_budget_check=*/true));
  driver.run(stages);
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

FlowResult run_turbomap_period(const Circuit& c, const FlowOptions& options) {
  const auto start = Clock::now();
  TraceSpan span(options.trace, "flow:turbomap-period");
  span.counter("incremental", options.incremental ? 1 : 0);
  FlowDriver driver(c, options);
  StageList stages;
  // Upper bound: the unmapped circuit's clock period (identity mapping,
  // no retiming) is always achievable.
  stages.push_back(std::make_unique<UbProbeStage>(UbProbeStage::Kind::kClockPeriod));
  PhiSearchStage::Config cfg;
  cfg.period_objective = true;
  stages.push_back(std::make_unique<PhiSearchStage>(std::move(cfg)));
  stages.push_back(std::make_unique<MapGenStage>(/*po_label_limit=*/true));
  stages.push_back(std::make_unique<PackStage>());
  // Clock-period mode: retiming only, no pipelining.
  stages.push_back(
      std::make_unique<PipelineRetimeStage>(PipelineRetimeStage::Kind::kRetimeOnly));
  driver.run(stages);
  FlowResult result = driver.finish();
  result.seconds = seconds_since(start);
  return result;
}

const char* flow_kind_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kTurboMap:
      return "turbomap";
    case FlowKind::kTurboSyn:
      return "turbosyn";
    case FlowKind::kFlowSynS:
      return "flowsyn_s";
    case FlowKind::kTurboMapPeriod:
      return "turbomap_period";
  }
  return "?";
}

bool flow_kind_from_name(const std::string& name, FlowKind& kind) {
  for (const FlowKind k : {FlowKind::kTurboMap, FlowKind::kTurboSyn, FlowKind::kFlowSynS,
                           FlowKind::kTurboMapPeriod}) {
    if (name == flow_kind_name(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

FlowResult run_flow(FlowKind kind, const Circuit& c, const FlowOptions& options) {
  switch (kind) {
    case FlowKind::kTurboMap:
      return run_turbomap(c, options);
    case FlowKind::kTurboSyn:
      return run_turbosyn(c, options);
    case FlowKind::kFlowSynS:
      return run_flowsyn_s(c, options);
    case FlowKind::kTurboMapPeriod:
      return run_turbomap_period(c, options);
  }
  TS_CHECK(false, "unknown flow kind");
  return {};
}

}  // namespace turbosyn
