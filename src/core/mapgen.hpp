#pragma once
// Sequential mapping generation: turn converged labels into a K-LUT network.
//
// Walking back from the POs, every needed node is realized at its final
// label (a plain K-cut of E_v, or the decomposition DAG TurboSYN found); the
// cut nodes u^w become LUT fanins with w flip-flops on the edge. Because the
// labels converged for ratio phi, the resulting network has MDR ratio <= phi.
//
// Label relaxation (the paper's first LUT-reduction technique): a node that
// needed resynthesis at its own label may be realizable as a single plain
// K-cut at the (higher) height its consumers actually allow — replacing the
// decomposition DAG by one LUT. The relaxed height is computed from the
// consumers' realizations, so swapping never invalidates them.

#include <optional>
#include <vector>

#include "core/labeling.hpp"
#include "netlist/circuit.hpp"

namespace turbosyn {

/// One realized node of a generated mapping, as the generator chose it: the
/// root in the *input* circuit, the realized height, and the realization
/// (plain K-cut or decomposition DAG over the cut). Collected for the
/// invariant auditor (verify/audit.hpp), which independently re-derives cone
/// coverage, K-feasibility, function equality and height consistency from
/// the input circuit — records stay meaningful even after dedupe/packing
/// restructure the emitted network, because they never reference it.
struct MappingRecord {
  NodeId root = kNoNode;
  int height = 0;
  NodeRealization real;
};

struct MapGenOptions {
  bool label_relaxation = true;
  /// Choose plain cuts by the paper's low-cost rule (min size, then max
  /// sharing with inputs already used by other LUTs).
  bool low_cost_cuts = true;
  /// When set (clock-period mode, no pipelining), PO labels must stay within
  /// this bound, which also constrains how far relaxation may raise heights.
  std::optional<int> po_label_limit;
};

/// Generates the mapped LUT circuit for converged `labels` at ratio phi.
/// PI/PO names are preserved; LUT nodes take the name of the original node
/// they are rooted at (encoder LUTs get a "$e<i>" suffix). When `records` is
/// non-null it receives one MappingRecord per realized (live) node, in
/// input-circuit node order.
Circuit generate_sequential_mapping(const Circuit& c, const LabelResult& labels, int phi,
                                    const LabelOptions& label_options,
                                    const MapGenOptions& options, LabelStats& stats,
                                    std::vector<MappingRecord>* records = nullptr);

}  // namespace turbosyn
