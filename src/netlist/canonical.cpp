#include "netlist/canonical.hpp"

#include <algorithm>
#include <vector>

namespace turbosyn {
namespace {

int kind_rank(NodeKind k) {
  switch (k) {
    case NodeKind::kPi:
      return 0;
    case NodeKind::kGate:
      return 1;
    case NodeKind::kPo:
      return 2;
  }
  return 3;
}

void append_int(std::string& out, std::int64_t value) {
  out += std::to_string(value);
  out += ' ';
}

void append_truth_table(std::string& out, const TruthTable& t) {
  static const char* hex = "0123456789abcdef";
  append_int(out, t.num_vars());
  // Hex nibbles, low word first; the table length is implied by the arity.
  for (std::size_t w = 0; w < t.num_words(); ++w) {
    std::uint64_t word = t.word(w);
    const std::size_t bits = std::min<std::size_t>(64, t.num_bits() - w * 64);
    for (std::size_t nib = 0; nib * 4 < bits; ++nib) {
      out += hex[word & 0xf];
      word >>= 4;
    }
  }
  out += ' ';
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state) {
  for (const char ch : bytes) {
    state ^= static_cast<unsigned char>(ch);
    state *= 0x100000001b3ull;
  }
  return state;
}

std::vector<NodeId> canonical_node_order(const Circuit& c) {
  const int n = c.num_nodes();
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&c](NodeId a, NodeId b) {
    const int ra = kind_rank(c.kind(a));
    const int rb = kind_rank(c.kind(b));
    if (ra != rb) return ra < rb;
    return c.name(a) < c.name(b);
  });
  return order;
}

CanonicalForm canonical_circuit_form(const Circuit& c) {
  const int n = c.num_nodes();
  const std::vector<NodeId> order = canonical_node_order(c);
  std::vector<int> position(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;

  CanonicalForm form;
  form.text.reserve(static_cast<std::size_t>(n) * 24);
  form.text += "canon 1\n";
  append_int(form.text, n);
  form.text += '\n';
  for (const NodeId v : order) {
    switch (c.kind(v)) {
      case NodeKind::kPi:
        form.text += "pi ";
        form.text += c.name(v);
        break;
      case NodeKind::kPo:
      case NodeKind::kGate: {
        form.text += c.is_po(v) ? "po " : "gate ";
        form.text += c.name(v);
        form.text += ' ';
        if (c.is_gate(v)) append_truth_table(form.text, c.function(v));
        const auto fanins = c.fanin_edges(v);
        append_int(form.text, static_cast<std::int64_t>(fanins.size()));
        for (const EdgeId e : fanins) {
          // Fanin slot order is semantic (it matches the function's variable
          // order), so slots are serialized in place, by canonical index.
          append_int(form.text, position[static_cast<std::size_t>(c.edge(e).from)]);
          append_int(form.text, c.edge(e).weight);
        }
        break;
      }
    }
    form.text += '\n';
  }
  form.hash = fnv1a64(form.text);
  return form;
}

}  // namespace turbosyn
