#pragma once
// BLIF reader/writer (the SIS subset used by the MCNC benchmark flows).
//
// Supported constructs: .model/.inputs/.outputs/.names/.latch/.end, comments
// and line continuations. Latches are absorbed into edge weights of the
// retiming graph (a chain of k latches becomes weight k); latch initial
// values are ignored, consistent with the paper's retiming formulation.
// PO nodes receive an internal "$po:" name prefix so that output names may
// coincide with internal signal names; the writer strips the prefix.

#include <iosfwd>
#include <string>

#include "netlist/circuit.hpp"

namespace turbosyn {

inline constexpr const char* kPoPrefix = "$po:";

/// The user-visible name of a PO node (strips the internal prefix).
std::string po_display_name(const Circuit& c, NodeId po);

/// Parses a BLIF model into a Circuit. Throws turbosyn::Error on malformed
/// input (unknown signals, duplicate drivers, combinational loops, trailing
/// garbage after .end, ...); diagnostics carry "source:line:" context, with
/// `source_name` (the file path for read_blif_file) naming the input.
Circuit read_blif(std::istream& in, const std::string& source_name = "<blif>");
Circuit read_blif_string(const std::string& text, const std::string& source_name = "<blif>");
Circuit read_blif_file(const std::string& path);

/// Serializes the circuit as BLIF; edge weights are expanded into latch
/// chains. Gates are emitted as minterm covers.
void write_blif(const Circuit& c, std::ostream& out, const std::string& model_name = "circuit");
std::string write_blif_string(const Circuit& c, const std::string& model_name = "circuit");
void write_blif_file(const Circuit& c, const std::string& path,
                     const std::string& model_name = "circuit");

}  // namespace turbosyn
