#pragma once
// Sequential circuit = retiming graph G(V, E, W) with logic functions.
//
// Following Leiserson–Saxe and the paper, each node is a PI, a PO or a gate;
// each edge carries a weight = number of flip-flops on that connection.
// Gate logic is a truth table over the gate's fanins in fanin order, so the
// same structure represents both the K-bounded input network and the mapped
// K-LUT network. The unit delay model assigns delay 1 to every gate with
// fanins and 0 to PIs, POs and constants.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/truth_table.hpp"
#include "graph/digraph.hpp"

namespace turbosyn {

enum class NodeKind : std::uint8_t { kPi, kPo, kGate };

/// Flat CSR connectivity of a Circuit for the per-probe hot loops (label
/// bounds, expanded-network BFS, the PLD isolation check). The per-node
/// std::vector<EdgeId> representation costs two dependent loads per fanin
/// (edge id, then the Edge record); the CSR arrays put each node's fanin
/// drivers and weights in one contiguous run. `node_flags` folds the
/// per-node predicates those loops branch on into a single byte load.
struct CsrTopology {
  static constexpr std::uint8_t kIsPi = 1;            // source: no fanins
  static constexpr std::uint8_t kUpdatableGate = 2;   // gate with >= 1 fanin
  static constexpr std::uint8_t kZeroUnsafe = 4;      // gate, f(0..0) == 1

  std::vector<std::int32_t> fanin_offset;   // num_nodes + 1
  std::vector<NodeId> fanin_src;            // driver per fanin slot, slot order
  std::vector<std::int32_t> fanin_weight;   // register count per fanin slot
  std::vector<std::int32_t> fanout_offset;  // num_nodes + 1
  std::vector<NodeId> fanout_dst;
  std::vector<std::int32_t> fanout_weight;
  std::vector<std::uint8_t> node_flags;     // OR of the k* predicate bits
  std::uint64_t built_version = 0;          // structural_version_ at build time

  bool flag(NodeId v, std::uint8_t bit) const {
    return (node_flags[static_cast<std::size_t>(v)] & bit) != 0;
  }
};

class Circuit {
 public:
  struct Edge {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    int weight = 0;  // number of flip-flops on the connection
  };

  struct FaninSpec {
    NodeId driver = kNoNode;
    int weight = 0;
  };

  NodeId add_pi(const std::string& name);
  /// A PO observes exactly one signal; the fanin is given at creation.
  NodeId add_po(const std::string& name, FaninSpec fanin);
  /// Gate with logic `func` over `fanins` (func arity must match count).
  /// A 0-fanin gate is a constant and has delay 0.
  NodeId add_gate(const std::string& name, TruthTable func, std::span<const FaninSpec> fanins);

  /// Two-phase construction for cyclic (sequential) structures: declare all
  /// gates first, then attach logic and fanins. Every declared gate must be
  /// finished exactly once before validate().
  NodeId declare_gate(const std::string& name);
  void finish_gate(NodeId v, TruthTable func, std::span<const FaninSpec> fanins);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  int num_pis() const { return static_cast<int>(pis_.size()); }
  int num_pos() const { return static_cast<int>(pos_.size()); }
  /// Gates with at least one fanin (constants excluded), i.e. LUT/gate count.
  int num_gates() const;
  /// Total flip-flop bits = sum of edge weights (no sharing).
  std::int64_t num_ffs() const;
  /// Flip-flop bits with fanout sharing: registers on fanout edges of the
  /// same driver share a chain (as a real implementation and the BLIF writer
  /// do), so each driver costs its maximum outgoing weight.
  std::int64_t num_ffs_shared() const;

  NodeKind kind(NodeId v) const { return node(v).kind; }
  bool is_pi(NodeId v) const { return kind(v) == NodeKind::kPi; }
  bool is_po(NodeId v) const { return kind(v) == NodeKind::kPo; }
  bool is_gate(NodeId v) const { return kind(v) == NodeKind::kGate; }
  /// True for PIs and 0-fanin gates (constants): label/delay sources.
  bool is_source(NodeId v) const { return is_pi(v) || (is_gate(v) && fanin_edges(v).empty()); }
  const std::string& name(NodeId v) const { return node(v).name; }
  const TruthTable& function(NodeId v) const;
  /// Unit delay model: 1 for a gate with fanins, 0 otherwise.
  int delay(NodeId v) const { return is_gate(v) && !fanin_edges(v).empty() ? 1 : 0; }

  const Edge& edge(EdgeId e) const { return edges_[static_cast<std::size_t>(e)]; }
  void set_edge_weight(EdgeId e, int weight);
  std::span<const EdgeId> fanin_edges(NodeId v) const { return node(v).fanins; }
  std::span<const EdgeId> fanout_edges(NodeId v) const { return node(v).fanouts; }
  /// The driver of fanin slot `pos` of v (slot order matches function vars).
  NodeId fanin(NodeId v, int pos) const { return edge(fanin_edges(v)[static_cast<std::size_t>(pos)]).from; }

  std::span<const NodeId> pis() const { return pis_; }
  std::span<const NodeId> pos() const { return pos_; }

  /// Looks up a node by name; kNoNode if absent. Names must be unique.
  NodeId find(const std::string& name) const;

  /// Structural sanity: function arities match fanin counts, every cycle
  /// carries at least one flip-flop (no combinational loops), PO fanins
  /// present. Throws turbosyn::Error on violation.
  void validate() const;

  /// True if every gate has at most k fanins.
  bool is_k_bounded(int k) const;
  /// Largest gate fanin count.
  int max_fanin() const;

  /// Connectivity as a Digraph with identical node/edge ids.
  Digraph to_digraph() const;

  /// The CSR view of the current structure, built lazily and cached until
  /// the next structural change (add_node/add_edge/set_edge_weight). The
  /// steady-state call is one acquire load plus a version check, so the
  /// per-probe hot loops can call it freely. Priming is thread-safe:
  /// concurrent first calls race to the rebuild lock, one builds, the rest
  /// reuse its snapshot (mutations themselves still require exclusivity,
  /// as for any other method).
  const CsrTopology& topology() const;

 private:
  struct Node {
    NodeKind kind;
    std::string name;
    TruthTable func;       // meaningful for gates only
    bool finished = true;  // false between declare_gate and finish_gate
    std::vector<EdgeId> fanins;
    std::vector<EdgeId> fanouts;
  };

  const Node& node(NodeId v) const { return nodes_[static_cast<std::size_t>(v)]; }
  Node& node(NodeId v) { return nodes_[static_cast<std::size_t>(v)]; }
  NodeId add_node(NodeKind kind, const std::string& name);
  EdgeId add_edge(NodeId from, NodeId to, int weight);

  // Cached CSR view. Copies share the (immutable) snapshot; a mutation bumps
  // only the mutated object's structural version, so its next topology()
  // call rebuilds while other copies keep their still-valid snapshot.
  // `ptr` is the lock-free fast path (always equals snap.get()); `mu`
  // serializes rebuilds so concurrent read-only priming is safe.
  struct TopoCache {
    TopoCache() = default;
    TopoCache(const TopoCache& other) { *this = other; }
    TopoCache& operator=(const TopoCache& other) {
      if (this == &other) return *this;
      std::shared_ptr<const CsrTopology> shared = other.snapshot();
      const std::lock_guard<std::mutex> lock(mu);
      snap = std::move(shared);
      ptr.store(snap.get(), std::memory_order_release);
      return *this;
    }
    std::shared_ptr<const CsrTopology> snapshot() const {
      const std::lock_guard<std::mutex> lock(mu);
      return snap;
    }
    mutable std::mutex mu;
    std::shared_ptr<const CsrTopology> snap;        // guarded by mu
    std::atomic<const CsrTopology*> ptr{nullptr};   // == snap.get()
  };

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<NodeId> pis_;
  std::vector<NodeId> pos_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::uint64_t structural_version_ = 1;
  mutable TopoCache topo_cache_;
};

struct CircuitStats {
  int pis = 0;
  int pos = 0;
  int gates = 0;
  std::int64_t ffs = 0;
  int max_fanin = 0;
  int sccs_with_cycle = 0;  // number of non-trivial SCCs (loops)
};

CircuitStats compute_stats(const Circuit& c);

}  // namespace turbosyn
