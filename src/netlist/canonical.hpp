#pragma once
// Canonical structural form and content hash of a Circuit.
//
// The persistent flow-artifact cache (src/cache) keys entries by the circuit
// a flow actually ran on. Two parses of the same netlist must produce the
// same key even when nodes were inserted in a different order (BLIF permits
// any declaration order for .names), so the canonical form orders nodes by
// (kind, name) — names are unique per circuit — and rewrites every fanin
// reference as an index into that ordering. The derivation is iterative
// (one sort plus one serialization pass, no recursion) and covers exactly
// the inputs the label computation and mapping depend on: node kinds and
// names, gate truth tables, fanin slot order and per-edge register weights.
//
// The hash is FNV-1a/64 over the canonical text. Hash equality alone is
// never trusted: cache entries store the full canonical form and compare it
// on lookup, so a 64-bit collision degrades to a cache miss, not a wrong
// artifact.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/circuit.hpp"

namespace turbosyn {

inline constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;

/// FNV-1a/64 over `bytes`, continuing from `state` (chainable).
std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t state = kFnvOffset64);

struct CanonicalForm {
  std::string text;         // order-independent serialization (see above)
  std::uint64_t hash = 0;   // fnv1a64(text)
};

/// Canonical form of `c`. Insertion-order independent: any circuit with the
/// same named nodes, functions and weighted connections maps to the same
/// text regardless of how it was built.
CanonicalForm canonical_circuit_form(const Circuit& c);

/// The node ordering the canonical form serializes: sorted by (kind rank,
/// name) with PIs first, then gates, then POs. Position i of the result is
/// the input NodeId serialized at canonical index i. The flow cache stores
/// per-node payloads (label vectors) in this order so they survive parses
/// that assigned different input ids, and so near-miss transfers can match
/// nodes of two different circuits by name.
std::vector<NodeId> canonical_node_order(const Circuit& c);

}  // namespace turbosyn
