#include "netlist/circuit.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "graph/scc.hpp"

namespace turbosyn {

NodeId Circuit::add_node(NodeKind kind, const std::string& name) {
  TS_CHECK(!name.empty(), "node name must be non-empty");
  TS_CHECK(by_name_.find(name) == by_name_.end(), "duplicate node name '" << name << "'");
  const NodeId v = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{kind, name, TruthTable(), true, {}, {}});
  by_name_.emplace(name, v);
  ++structural_version_;
  return v;
}

EdgeId Circuit::add_edge(NodeId from, NodeId to, int weight) {
  TS_CHECK(from >= 0 && from < num_nodes(), "edge source out of range");
  TS_CHECK(to >= 0 && to < num_nodes(), "edge target out of range");
  TS_CHECK(weight >= 0, "edge weight (flip-flop count) must be non-negative");
  TS_CHECK(!is_po(from), "a PO cannot drive anything");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{from, to, weight});
  node(from).fanouts.push_back(e);
  node(to).fanins.push_back(e);
  ++structural_version_;
  return e;
}

NodeId Circuit::add_pi(const std::string& name) {
  const NodeId v = add_node(NodeKind::kPi, name);
  pis_.push_back(v);
  return v;
}

NodeId Circuit::add_po(const std::string& name, FaninSpec fanin) {
  const NodeId v = add_node(NodeKind::kPo, name);
  pos_.push_back(v);
  add_edge(fanin.driver, v, fanin.weight);
  return v;
}

NodeId Circuit::add_gate(const std::string& name, TruthTable func,
                         std::span<const FaninSpec> fanins) {
  const NodeId v = declare_gate(name);
  finish_gate(v, std::move(func), fanins);
  return v;
}

NodeId Circuit::declare_gate(const std::string& name) {
  const NodeId v = add_node(NodeKind::kGate, name);
  node(v).finished = false;
  return v;
}

void Circuit::finish_gate(NodeId v, TruthTable func, std::span<const FaninSpec> fanins) {
  TS_CHECK(is_gate(v), "finish_gate requires a declared gate");
  TS_CHECK(!node(v).finished, "gate '" << name(v) << "' finished twice");
  TS_CHECK(func.num_vars() == static_cast<int>(fanins.size()),
           "gate '" << name(v) << "': function arity " << func.num_vars() << " != fanin count "
                    << fanins.size());
  node(v).func = std::move(func);
  for (const FaninSpec& f : fanins) add_edge(f.driver, v, f.weight);
  node(v).finished = true;
  ++structural_version_;  // the function feeds CsrTopology::kZeroUnsafe
}

int Circuit::num_gates() const {
  int n = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_gate(v) && !fanin_edges(v).empty()) ++n;
  }
  return n;
}

std::int64_t Circuit::num_ffs() const {
  std::int64_t n = 0;
  for (const Edge& e : edges_) n += e.weight;
  return n;
}

std::int64_t Circuit::num_ffs_shared() const {
  std::int64_t n = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    int deepest = 0;
    for (const EdgeId e : fanout_edges(v)) deepest = std::max(deepest, edge(e).weight);
    n += deepest;
  }
  return n;
}

const TruthTable& Circuit::function(NodeId v) const {
  TS_CHECK(is_gate(v), "only gates have logic functions");
  return node(v).func;
}

void Circuit::set_edge_weight(EdgeId e, int weight) {
  TS_CHECK(weight >= 0, "edge weight must be non-negative");
  edges_[static_cast<std::size_t>(e)].weight = weight;
  ++structural_version_;
}

const CsrTopology& Circuit::topology() const {
  // Lock-free steady state; racing first calls fall through to the rebuild
  // lock below, where the loser reuses the winner's snapshot.
  const CsrTopology* cached = topo_cache_.ptr.load(std::memory_order_acquire);
  if (cached != nullptr && cached->built_version == structural_version_) return *cached;
  const std::lock_guard<std::mutex> lock(topo_cache_.mu);
  cached = topo_cache_.ptr.load(std::memory_order_relaxed);
  if (cached != nullptr && cached->built_version == structural_version_) return *cached;
  auto topo = std::make_shared<CsrTopology>();
  topo->built_version = structural_version_;
  const std::size_t n = static_cast<std::size_t>(num_nodes());
  topo->fanin_offset.resize(n + 1);
  topo->fanout_offset.resize(n + 1);
  topo->fanin_src.resize(static_cast<std::size_t>(num_edges()));
  topo->fanin_weight.resize(static_cast<std::size_t>(num_edges()));
  topo->fanout_dst.resize(static_cast<std::size_t>(num_edges()));
  topo->fanout_weight.resize(static_cast<std::size_t>(num_edges()));
  topo->node_flags.resize(n);
  std::size_t fanin_pos = 0;
  std::size_t fanout_pos = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    topo->fanin_offset[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(fanin_pos);
    topo->fanout_offset[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(fanout_pos);
    for (const EdgeId e : fanin_edges(v)) {
      topo->fanin_src[fanin_pos] = edge(e).from;
      topo->fanin_weight[fanin_pos] = edge(e).weight;
      ++fanin_pos;
    }
    for (const EdgeId e : fanout_edges(v)) {
      topo->fanout_dst[fanout_pos] = edge(e).to;
      topo->fanout_weight[fanout_pos] = edge(e).weight;
      ++fanout_pos;
    }
    std::uint8_t flags = 0;
    if (is_pi(v)) flags |= CsrTopology::kIsPi;
    if (is_gate(v) && !fanin_edges(v).empty()) {
      flags |= CsrTopology::kUpdatableGate;
      if (node(v).finished && node(v).func.bit(0)) flags |= CsrTopology::kZeroUnsafe;
    }
    topo->node_flags[static_cast<std::size_t>(v)] = flags;
  }
  topo->fanin_offset[n] = static_cast<std::int32_t>(fanin_pos);
  topo->fanout_offset[n] = static_cast<std::int32_t>(fanout_pos);
  topo_cache_.snap = std::move(topo);
  topo_cache_.ptr.store(topo_cache_.snap.get(), std::memory_order_release);
  return *topo_cache_.snap;
}

NodeId Circuit::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

void Circuit::validate() const {
  for (NodeId v = 0; v < num_nodes(); ++v) {
    switch (kind(v)) {
      case NodeKind::kPi:
        TS_CHECK(fanin_edges(v).empty(), "PI '" << name(v) << "' has fanins");
        break;
      case NodeKind::kPo:
        TS_CHECK(fanin_edges(v).size() == 1, "PO '" << name(v) << "' must have exactly one fanin");
        break;
      case NodeKind::kGate:
        TS_CHECK(node(v).finished, "gate '" << name(v) << "' declared but never finished");
        TS_CHECK(node(v).func.num_vars() == static_cast<int>(fanin_edges(v).size()),
                 "gate '" << name(v) << "' arity mismatch");
        break;
    }
  }
  // Every cycle must carry at least one flip-flop: the subgraph of weight-0
  // edges must be acyclic.
  const Digraph g = to_digraph();
  topological_order(g, [&](EdgeId e) { return g.edge(e).weight > 0; });
}

bool Circuit::is_k_bounded(int k) const { return max_fanin() <= k; }

int Circuit::max_fanin() const {
  int m = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (is_gate(v)) m = std::max(m, static_cast<int>(fanin_edges(v).size()));
  }
  return m;
}

Digraph Circuit::to_digraph() const {
  Digraph g;
  g.add_nodes(num_nodes());
  for (const Edge& e : edges_) g.add_edge(e.from, e.to, e.weight);
  return g;
}

CircuitStats compute_stats(const Circuit& c) {
  CircuitStats s;
  s.pis = c.num_pis();
  s.pos = c.num_pos();
  s.gates = c.num_gates();
  s.ffs = c.num_ffs_shared();
  s.max_fanin = c.max_fanin();
  const Digraph g = c.to_digraph();
  const SccDecomposition scc = strongly_connected_components(g);
  for (const auto& comp : scc.components) {
    if (comp.size() > 1) {
      ++s.sccs_with_cycle;
      continue;
    }
    for (const EdgeId e : g.fanout_edges(comp[0])) {
      if (g.edge(e).to == comp[0]) {
        ++s.sccs_with_cycle;
        break;
      }
    }
  }
  return s;
}

}  // namespace turbosyn
