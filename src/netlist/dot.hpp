#pragma once
// Graphviz (DOT) export of circuits.
//
// Renders the retiming graph: PIs as triangles, POs as inverted triangles,
// gates as boxes labeled with their name (and optionally the truth table
// hex); registered edges are labeled with their FF count and drawn heavier.

#include <iosfwd>
#include <span>
#include <string>

#include "netlist/circuit.hpp"

namespace turbosyn {

struct DotOptions {
  bool show_functions = false;  // append the truth-table hex to gate labels
  /// Optional per-node annotation (e.g. labels from the label computation);
  /// empty = none. Indexed by NodeId.
  std::span<const int> annotations = {};
};

void write_dot(const Circuit& c, std::ostream& out, const DotOptions& options = {});
std::string write_dot_string(const Circuit& c, const DotOptions& options = {});

}  // namespace turbosyn
