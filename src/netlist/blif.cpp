#include "netlist/blif.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/check.hpp"

namespace turbosyn {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

/// One .names block: output signal, input signals, cover rows.
struct CoverBlock {
  std::string output;
  std::vector<std::string> inputs;
  std::vector<std::pair<std::string, char>> rows;  // (input plane, output bit)
};

struct LatchDef {
  std::string input;
  std::string output;
};

/// Builds a truth table from an SOP cover. All rows must share the output
/// polarity (as SIS writes them); a '0' output plane complements the OR.
TruthTable cover_to_truth_table(const CoverBlock& block) {
  const int arity = static_cast<int>(block.inputs.size());
  TS_CHECK(arity <= TruthTable::kMaxVars,
           ".names '" << block.output << "' has " << arity << " inputs (max "
                      << TruthTable::kMaxVars << ")");
  TruthTable sum = TruthTable::constant(arity, false);
  char polarity = '1';
  bool polarity_set = false;
  for (const auto& [plane, out_bit] : block.rows) {
    TS_CHECK(static_cast<int>(plane.size()) == arity,
             ".names '" << block.output << "': cover row width mismatch");
    TS_CHECK(out_bit == '0' || out_bit == '1', "invalid cover output bit");
    if (!polarity_set) {
      polarity = out_bit;
      polarity_set = true;
    }
    TS_CHECK(out_bit == polarity, ".names '" << block.output << "': mixed output polarities");
    TruthTable product = TruthTable::constant(arity, true);
    for (int i = 0; i < arity; ++i) {
      if (plane[static_cast<std::size_t>(i)] == '1') {
        product = product & TruthTable::var(arity, i);
      } else if (plane[static_cast<std::size_t>(i)] == '0') {
        product = product & ~TruthTable::var(arity, i);
      } else {
        TS_CHECK(plane[static_cast<std::size_t>(i)] == '-', "invalid cover input character");
      }
    }
    sum = sum | product;
  }
  if (!polarity_set) return TruthTable::constant(arity, false);  // empty cover = const 0
  return polarity == '1' ? sum : ~sum;
}

class BlifParser {
 public:
  explicit BlifParser(std::istream& in) : in_(in) {}

  Circuit parse() {
    read_sections();
    return build();
  }

 private:
  void read_sections() {
    std::string line;
    std::string pending;
    bool done = false;
    while (!done && std::getline(in_, line)) {
      // Strip comments and handle '\' continuations.
      if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
      if (!line.empty() && line.back() == '\\') {
        line.pop_back();
        pending += line + ' ';
        continue;
      }
      line = pending + line;
      pending.clear();
      const auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      const std::string& head = tokens[0];
      if (head[0] != '.') {
        TS_CHECK(current_cover_ != nullptr, "cover row outside a .names block");
        if (tokens.size() == 1) {
          // Constant function: single output column.
          TS_CHECK(current_cover_->inputs.empty(), "cover row missing input plane");
          current_cover_->rows.emplace_back("", tokens[0][0]);
        } else {
          TS_CHECK(tokens.size() == 2, "cover row must be '<plane> <bit>'");
          current_cover_->rows.emplace_back(tokens[0], tokens[1][0]);
        }
        continue;
      }
      current_cover_ = nullptr;
      if (head == ".model") {
        // Model name ignored (single-model files only).
      } else if (head == ".inputs") {
        inputs_.insert(inputs_.end(), tokens.begin() + 1, tokens.end());
      } else if (head == ".outputs") {
        outputs_.insert(outputs_.end(), tokens.begin() + 1, tokens.end());
      } else if (head == ".names") {
        TS_CHECK(tokens.size() >= 2, ".names requires at least an output");
        CoverBlock block;
        block.output = tokens.back();
        block.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
        covers_.push_back(std::move(block));
        current_cover_ = &covers_.back();
      } else if (head == ".latch") {
        TS_CHECK(tokens.size() >= 3, ".latch requires input and output");
        latches_.push_back(LatchDef{tokens[1], tokens[2]});
      } else if (head == ".end") {
        done = true;
      } else {
        TS_CHECK(false, "unsupported BLIF construct '" << head << "'");
      }
    }
    TS_CHECK(pending.empty(), "dangling line continuation at end of file");
  }

  /// Resolves a signal name to its combinational driver node plus the number
  /// of latches between driver and the named signal (latch chains collapse
  /// into the returned edge weight).
  Circuit::FaninSpec resolve(const Circuit& c, const std::string& signal) const {
    std::string target = signal;
    int weight = 0;
    while (true) {
      const auto it = latch_by_output_.find(target);
      if (it == latch_by_output_.end()) break;
      ++weight;
      TS_CHECK(weight <= static_cast<int>(latches_.size()),
               "latch loop without combinational driver at '" << signal << "'");
      target = it->second->input;
    }
    const NodeId v = c.find(target);
    TS_CHECK(v != kNoNode, "undriven signal '" << target << "'");
    return Circuit::FaninSpec{v, weight};
  }

  Circuit build() {
    Circuit c;
    std::unordered_set<std::string> driven;
    for (const auto& latch : latches_) {
      TS_CHECK(driven.insert(latch.output).second,
               "signal '" << latch.output << "' driven more than once");
      latch_by_output_.emplace(latch.output, &latch);
    }
    for (const std::string& name : inputs_) {
      TS_CHECK(driven.insert(name).second, "signal '" << name << "' driven more than once");
      c.add_pi(name);
    }
    // Declare all gates first (sequential loops make any bottom-up order
    // impossible), then attach covers and finally the POs.
    std::vector<NodeId> gate_of(covers_.size());
    for (std::size_t i = 0; i < covers_.size(); ++i) {
      TS_CHECK(driven.insert(covers_[i].output).second,
               "signal '" << covers_[i].output << "' driven more than once");
      gate_of[i] = c.declare_gate(covers_[i].output);
    }
    for (std::size_t i = 0; i < covers_.size(); ++i) {
      std::vector<Circuit::FaninSpec> fanins;
      fanins.reserve(covers_[i].inputs.size());
      for (const std::string& in : covers_[i].inputs) fanins.push_back(resolve(c, in));
      c.finish_gate(gate_of[i], cover_to_truth_table(covers_[i]), fanins);
    }
    for (const std::string& name : outputs_) {
      c.add_po(std::string(kPoPrefix) + name, resolve(c, name));
    }
    c.validate();
    return c;
  }

  std::istream& in_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<CoverBlock> covers_;
  std::vector<LatchDef> latches_;
  CoverBlock* current_cover_ = nullptr;
  std::unordered_map<std::string, const LatchDef*> latch_by_output_;
};

}  // namespace

std::string po_display_name(const Circuit& c, NodeId po) {
  TS_CHECK(c.is_po(po), "po_display_name requires a PO node");
  const std::string& n = c.name(po);
  if (n.rfind(kPoPrefix, 0) == 0) return n.substr(std::string(kPoPrefix).size());
  return n;
}

Circuit read_blif(std::istream& in) { return BlifParser(in).parse(); }

Circuit read_blif_string(const std::string& text) {
  std::istringstream is(text);
  return read_blif(is);
}

Circuit read_blif_file(const std::string& path) {
  std::ifstream f(path);
  TS_CHECK(f.good(), "cannot open BLIF file '" << path << "'");
  return read_blif(f);
}

void write_blif(const Circuit& c, std::ostream& out, const std::string& model_name) {
  out << ".model " << model_name << '\n';
  out << ".inputs";
  for (const NodeId pi : c.pis()) out << ' ' << c.name(pi);
  out << '\n';
  out << ".outputs";
  for (const NodeId po : c.pos()) out << ' ' << po_display_name(c, po);
  out << '\n';

  // Latch chains: signal name of `driver` delayed by `level` >= 1 latches.
  // All .latch lines are emitted up front (before any .names) so gate covers
  // can reference them.
  std::map<std::pair<NodeId, int>, std::string> latch_signal;
  const auto declare_chain = [&](NodeId driver, int weight) {
    std::string prev = c.name(driver);
    for (int lvl = 1; lvl <= weight; ++lvl) {
      auto [it, inserted] = latch_signal.emplace(std::make_pair(driver, lvl), "");
      if (inserted) {
        it->second = c.name(driver) + "_ff" + std::to_string(lvl);
        out << ".latch " << prev << ' ' << it->second << " 0\n";
      }
      prev = it->second;
    }
  };
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    declare_chain(c.edge(e).from, c.edge(e).weight);
  }
  const auto signal_at = [&](NodeId driver, int weight) -> std::string {
    if (weight == 0) return c.name(driver);
    return latch_signal.at(std::make_pair(driver, weight));
  };

  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v)) continue;
    const auto fanins = c.fanin_edges(v);
    out << ".names";
    for (const EdgeId e : fanins) out << ' ' << signal_at(c.edge(e).from, c.edge(e).weight);
    out << ' ' << c.name(v) << '\n';
    const TruthTable& f = c.function(v);
    const int arity = f.num_vars();
    if (arity == 0) {
      if (f.bit(0)) out << "1\n";
      continue;
    }
    for (std::uint32_t m = 0; m < f.num_bits(); ++m) {
      if (!f.bit(m)) continue;
      std::string plane(static_cast<std::size_t>(arity), '0');
      for (int i = 0; i < arity; ++i) {
        if ((m >> i) & 1) plane[static_cast<std::size_t>(i)] = '1';
      }
      out << plane << " 1\n";
    }
  }

  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    const std::string sig = signal_at(e.from, e.weight);
    const std::string display = po_display_name(c, po);
    if (sig != display) out << ".names " << sig << ' ' << display << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const Circuit& c, const std::string& model_name) {
  std::ostringstream os;
  write_blif(c, os, model_name);
  return os.str();
}

void write_blif_file(const Circuit& c, const std::string& path, const std::string& model_name) {
  std::ofstream f(path);
  TS_CHECK(f.good(), "cannot open '" << path << "' for writing");
  write_blif(c, f, model_name);
}

}  // namespace turbosyn
