#include "netlist/blif.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/check.hpp"
#include "base/failpoint.hpp"

namespace turbosyn {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

/// A named signal together with the line of the directive that mentioned it.
struct SignalRef {
  std::string name;
  int line = 0;
};

/// One .names block: output signal, input signals, cover rows.
struct CoverBlock {
  std::string output;
  std::vector<std::string> inputs;
  struct Row {
    std::string plane;  // input plane ('0'/'1'/'-')
    char bit = '1';     // output bit
    int line = 0;
  };
  std::vector<Row> rows;
  int line = 0;  // line of the .names directive
};

struct LatchDef {
  std::string input;
  std::string output;
  int line = 0;
};

/// Builds a truth table from an SOP cover. All rows must share the output
/// polarity (as SIS writes them); a '0' output plane complements the OR.
/// `src` names the input for "source:line:" diagnostics.
TruthTable cover_to_truth_table(const CoverBlock& block, const std::string& src) {
  const int arity = static_cast<int>(block.inputs.size());
  TS_CHECK(arity <= TruthTable::kMaxVars,
           src << ':' << block.line << ": .names '" << block.output << "' has " << arity
               << " inputs (max " << TruthTable::kMaxVars << ")");
  TruthTable sum = TruthTable::constant(arity, false);
  char polarity = '1';
  bool polarity_set = false;
  for (const auto& row : block.rows) {
    TS_CHECK(static_cast<int>(row.plane.size()) == arity,
             src << ':' << row.line << ": .names '" << block.output
                 << "': cover row width mismatch (" << row.plane.size() << " columns for "
                 << arity << " inputs)");
    TS_CHECK(row.bit == '0' || row.bit == '1',
             src << ':' << row.line << ": invalid cover output bit '" << row.bit << "'");
    if (!polarity_set) {
      polarity = row.bit;
      polarity_set = true;
    }
    TS_CHECK(row.bit == polarity, src << ':' << row.line << ": .names '" << block.output
                                      << "': mixed output polarities");
    TruthTable product = TruthTable::constant(arity, true);
    for (int i = 0; i < arity; ++i) {
      if (row.plane[static_cast<std::size_t>(i)] == '1') {
        product = product & TruthTable::var(arity, i);
      } else if (row.plane[static_cast<std::size_t>(i)] == '0') {
        product = product & ~TruthTable::var(arity, i);
      } else {
        TS_CHECK(row.plane[static_cast<std::size_t>(i)] == '-',
                 src << ':' << row.line << ": invalid cover input character '"
                     << row.plane[static_cast<std::size_t>(i)] << "'");
      }
    }
    sum = sum | product;
  }
  if (!polarity_set) return TruthTable::constant(arity, false);  // empty cover = const 0
  return polarity == '1' ? sum : ~sum;
}

class BlifParser {
 public:
  BlifParser(std::istream& in, std::string source) : in_(in), src_(std::move(source)) {}

  Circuit parse() {
    read_sections();
    return build();
  }

 private:
  /// "source:line: " prefix for diagnostics anchored at `line`.
  std::string at(int line) const { return src_ + ':' + std::to_string(line) + ": "; }

  void read_sections() {
    std::string line;
    std::string pending;
    int pending_start = 0;  // line where the current continuation began
    int line_no = 0;
    bool done = false;
    while (!done && std::getline(in_, line)) {
      ++line_no;
      // Strip comments and handle '\' continuations.
      if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
      if (!line.empty() && line.back() == '\\') {
        if (pending.empty()) pending_start = line_no;
        line.pop_back();
        pending += line + ' ';
        continue;
      }
      // A construct is reported at the line it started on.
      const int at_line = pending.empty() ? line_no : pending_start;
      line = pending + line;
      pending.clear();
      const auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      const std::string& head = tokens[0];
      if (head[0] != '.') {
        TS_CHECK(current_cover_ != nullptr, at(at_line) << "cover row outside a .names block");
        if (tokens.size() == 1) {
          // Constant function: single output column.
          TS_CHECK(current_cover_->inputs.empty(),
                   at(at_line) << "cover row missing input plane");
          current_cover_->rows.push_back({"", tokens[0][0], at_line});
        } else {
          TS_CHECK(tokens.size() == 2, at(at_line) << "cover row must be '<plane> <bit>'");
          current_cover_->rows.push_back({tokens[0], tokens[1][0], at_line});
        }
        continue;
      }
      current_cover_ = nullptr;
      if (head == ".model") {
        // Model name ignored (single-model files only).
      } else if (head == ".inputs") {
        for (auto it = tokens.begin() + 1; it != tokens.end(); ++it) {
          inputs_.push_back({*it, at_line});
        }
      } else if (head == ".outputs") {
        for (auto it = tokens.begin() + 1; it != tokens.end(); ++it) {
          outputs_.push_back({*it, at_line});
        }
      } else if (head == ".names") {
        TS_CHECK(tokens.size() >= 2, at(at_line) << ".names requires at least an output");
        CoverBlock block;
        block.output = tokens.back();
        block.inputs.assign(tokens.begin() + 1, tokens.end() - 1);
        block.line = at_line;
        covers_.push_back(std::move(block));
        current_cover_ = &covers_.back();
      } else if (head == ".latch") {
        TS_CHECK(tokens.size() >= 3, at(at_line) << ".latch requires input and output");
        latches_.push_back(LatchDef{tokens[1], tokens[2], at_line});
      } else if (head == ".end") {
        done = true;
      } else {
        TS_CHECK(false, at(at_line) << "unsupported BLIF construct '" << head << "'");
      }
    }
    TS_CHECK(pending.empty(), at(pending_start) << "dangling line continuation at end of file");
    // Nothing but whitespace and comments may follow .end: silently ignoring
    // content there hides concatenated models and truncation artifacts.
    while (std::getline(in_, line)) {
      ++line_no;
      if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
      TS_CHECK(tokenize(line).empty(), at(line_no) << "trailing garbage after .end");
    }
  }

  /// Resolves a signal name to its combinational driver node plus the number
  /// of latches between driver and the named signal (latch chains collapse
  /// into the returned edge weight). `line` anchors diagnostics at the
  /// directive that referenced the signal.
  Circuit::FaninSpec resolve(const Circuit& c, const std::string& signal, int line) const {
    std::string target = signal;
    int weight = 0;
    while (true) {
      const auto it = latch_by_output_.find(target);
      if (it == latch_by_output_.end()) break;
      ++weight;
      TS_CHECK(weight <= static_cast<int>(latches_.size()),
               at(line) << "latch loop without combinational driver at '" << signal << "'");
      target = it->second->input;
    }
    const NodeId v = c.find(target);
    TS_CHECK(v != kNoNode, at(line) << "undriven signal '" << target << "'");
    return Circuit::FaninSpec{v, weight};
  }

  Circuit build() {
    Circuit c;
    std::unordered_set<std::string> driven;
    for (const auto& latch : latches_) {
      TS_CHECK(driven.insert(latch.output).second,
               at(latch.line) << "signal '" << latch.output << "' driven more than once");
      latch_by_output_.emplace(latch.output, &latch);
    }
    for (const SignalRef& in : inputs_) {
      TS_CHECK(driven.insert(in.name).second,
               at(in.line) << "signal '" << in.name << "' driven more than once");
      c.add_pi(in.name);
    }
    // Declare all gates first (sequential loops make any bottom-up order
    // impossible), then attach covers and finally the POs.
    std::vector<NodeId> gate_of(covers_.size());
    for (std::size_t i = 0; i < covers_.size(); ++i) {
      TS_CHECK(driven.insert(covers_[i].output).second,
               at(covers_[i].line)
                   << "signal '" << covers_[i].output << "' driven more than once");
      gate_of[i] = c.declare_gate(covers_[i].output);
    }
    for (std::size_t i = 0; i < covers_.size(); ++i) {
      std::vector<Circuit::FaninSpec> fanins;
      fanins.reserve(covers_[i].inputs.size());
      for (const std::string& in : covers_[i].inputs) {
        fanins.push_back(resolve(c, in, covers_[i].line));
      }
      c.finish_gate(gate_of[i], cover_to_truth_table(covers_[i], src_), fanins);
    }
    for (const SignalRef& out : outputs_) {
      c.add_po(std::string(kPoPrefix) + out.name, resolve(c, out.name, out.line));
    }
    c.validate();
    return c;
  }

  std::istream& in_;
  std::string src_;
  std::vector<SignalRef> inputs_;
  std::vector<SignalRef> outputs_;
  std::vector<CoverBlock> covers_;
  std::vector<LatchDef> latches_;
  CoverBlock* current_cover_ = nullptr;
  std::unordered_map<std::string, const LatchDef*> latch_by_output_;
};

}  // namespace

std::string po_display_name(const Circuit& c, NodeId po) {
  TS_CHECK(c.is_po(po), "po_display_name requires a PO node");
  const std::string& n = c.name(po);
  if (n.rfind(kPoPrefix, 0) == 0) return n.substr(std::string(kPoPrefix).size());
  return n;
}

Circuit read_blif(std::istream& in, const std::string& source_name) {
  return BlifParser(in, source_name).parse();
}

Circuit read_blif_string(const std::string& text, const std::string& source_name) {
  std::istringstream is(text);
  return read_blif(is, source_name);
}

Circuit read_blif_file(const std::string& path) {
  // Fault-injection site for ingest-path hardening tests: an armed
  // "blif.read" failpoint makes the read fail exactly as an unreadable file
  // would (the kThrow/kError policies both surface as turbosyn::Error here,
  // which batch supervision contains into a failed record).
  if (failpoint::enabled() &&
      failpoint::check("blif.read").action == failpoint::Action::kError) {
    throw Error("failpoint blif.read: cannot read BLIF file '" + path + "'");
  }
  std::ifstream f(path);
  TS_CHECK(f.good(), "cannot open BLIF file '" << path << "'");
  return read_blif(f, path);
}

void write_blif(const Circuit& c, std::ostream& out, const std::string& model_name) {
  out << ".model " << model_name << '\n';
  out << ".inputs";
  for (const NodeId pi : c.pis()) out << ' ' << c.name(pi);
  out << '\n';
  out << ".outputs";
  for (const NodeId po : c.pos()) out << ' ' << po_display_name(c, po);
  out << '\n';

  // Latch chains: signal name of `driver` delayed by `level` >= 1 latches.
  // All .latch lines are emitted up front (before any .names) so gate covers
  // can reference them.
  //
  // A PO fed through latches reserves its display name for the final latch
  // output of its chain (first PO wins), so `.latch n q 0` + `.outputs q`
  // round-trips without a buffer gate — the parser would otherwise turn the
  // writer's `.names n_ff1 q` alias into a real node.
  std::unordered_set<std::string> taken;
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_po(v)) taken.insert(c.name(v));
  }
  std::map<std::pair<NodeId, int>, std::string> reserved;
  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    if (e.weight == 0) continue;
    const std::string display = po_display_name(c, po);
    if (!taken.insert(display).second) continue;  // name already in use
    reserved.emplace(std::make_pair(e.from, e.weight), display);
  }
  std::map<std::pair<NodeId, int>, std::string> latch_signal;
  const auto declare_chain = [&](NodeId driver, int weight) {
    std::string prev = c.name(driver);
    for (int lvl = 1; lvl <= weight; ++lvl) {
      auto [it, inserted] = latch_signal.emplace(std::make_pair(driver, lvl), "");
      if (inserted) {
        const auto r = reserved.find(std::make_pair(driver, lvl));
        it->second =
            r != reserved.end() ? r->second : c.name(driver) + "_ff" + std::to_string(lvl);
        out << ".latch " << prev << ' ' << it->second << " 0\n";
      }
      prev = it->second;
    }
  };
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    declare_chain(c.edge(e).from, c.edge(e).weight);
  }
  const auto signal_at = [&](NodeId driver, int weight) -> std::string {
    if (weight == 0) return c.name(driver);
    return latch_signal.at(std::make_pair(driver, weight));
  };

  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    if (!c.is_gate(v)) continue;
    const auto fanins = c.fanin_edges(v);
    out << ".names";
    for (const EdgeId e : fanins) out << ' ' << signal_at(c.edge(e).from, c.edge(e).weight);
    out << ' ' << c.name(v) << '\n';
    const TruthTable& f = c.function(v);
    const int arity = f.num_vars();
    if (arity == 0) {
      if (f.bit(0)) out << "1\n";
      continue;
    }
    for (std::uint32_t m = 0; m < f.num_bits(); ++m) {
      if (!f.bit(m)) continue;
      std::string plane(static_cast<std::size_t>(arity), '0');
      for (int i = 0; i < arity; ++i) {
        if ((m >> i) & 1) plane[static_cast<std::size_t>(i)] = '1';
      }
      out << plane << " 1\n";
    }
  }

  for (const NodeId po : c.pos()) {
    const auto& e = c.edge(c.fanin_edges(po)[0]);
    const std::string sig = signal_at(e.from, e.weight);
    const std::string display = po_display_name(c, po);
    if (sig != display) out << ".names " << sig << ' ' << display << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const Circuit& c, const std::string& model_name) {
  std::ostringstream os;
  write_blif(c, os, model_name);
  return os.str();
}

void write_blif_file(const Circuit& c, const std::string& path, const std::string& model_name) {
  std::ofstream f(path);
  TS_CHECK(f.good(), "cannot open '" << path << "' for writing");
  write_blif(c, f, model_name);
}

}  // namespace turbosyn
