#include "netlist/dot.hpp"

#include <ostream>
#include <sstream>

#include "base/check.hpp"
#include "netlist/blif.hpp"

namespace turbosyn {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void write_dot(const Circuit& c, std::ostream& out, const DotOptions& options) {
  if (!options.annotations.empty()) {
    TS_CHECK(static_cast<int>(options.annotations.size()) == c.num_nodes(),
             "annotation vector must have one entry per node");
  }
  out << "digraph circuit {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (NodeId v = 0; v < c.num_nodes(); ++v) {
    std::string label = c.is_po(v) ? po_display_name(c, v) : c.name(v);
    if (options.show_functions && c.is_gate(v)) {
      label += "\\n0x" + c.function(v).to_hex();
    }
    if (!options.annotations.empty()) {
      label += "\\nl=" + std::to_string(options.annotations[static_cast<std::size_t>(v)]);
    }
    out << "  n" << v << " [label=\"" << escape(label) << "\" shape=";
    switch (c.kind(v)) {
      case NodeKind::kPi: out << "triangle"; break;
      case NodeKind::kPo: out << "invtriangle"; break;
      case NodeKind::kGate: out << "box"; break;
    }
    out << "];\n";
  }
  for (EdgeId e = 0; e < c.num_edges(); ++e) {
    const auto& edge = c.edge(e);
    out << "  n" << edge.from << " -> n" << edge.to;
    if (edge.weight > 0) {
      out << " [label=\"" << edge.weight << "\" style=bold color=firebrick]";
    }
    out << ";\n";
  }
  out << "}\n";
}

std::string write_dot_string(const Circuit& c, const DotOptions& options) {
  std::ostringstream os;
  write_dot(c, os, options);
  return os.str();
}

}  // namespace turbosyn
