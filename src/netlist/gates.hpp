#pragma once
// Truth tables for the standard gate library.
//
// The workload generator and tests build K-bounded networks from these
// primitives; the mapper itself is gate-agnostic and only sees truth tables.

#include "base/truth_table.hpp"

namespace turbosyn {

TruthTable tt_buf();
TruthTable tt_not();
TruthTable tt_and(int arity);
TruthTable tt_or(int arity);
TruthTable tt_nand(int arity);
TruthTable tt_nor(int arity);
TruthTable tt_xor(int arity);
TruthTable tt_xnor(int arity);
/// mux(s, a, b) = s ? b : a with variable order (s, a, b).
TruthTable tt_mux();
/// Majority of three inputs.
TruthTable tt_maj3();

}  // namespace turbosyn
