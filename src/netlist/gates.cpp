#include "netlist/gates.hpp"

#include "base/check.hpp"

namespace turbosyn {
namespace {

void check_gate_arity(int arity) {
  TS_CHECK(arity >= 1 && arity <= TruthTable::kMaxVars, "gate arity out of range");
}

}  // namespace

TruthTable tt_buf() { return TruthTable::var(1, 0); }

TruthTable tt_not() { return ~TruthTable::var(1, 0); }

TruthTable tt_and(int arity) {
  check_gate_arity(arity);
  TruthTable t = TruthTable::constant(arity, true);
  for (int i = 0; i < arity; ++i) t = t & TruthTable::var(arity, i);
  return t;
}

TruthTable tt_or(int arity) {
  check_gate_arity(arity);
  TruthTable t = TruthTable::constant(arity, false);
  for (int i = 0; i < arity; ++i) t = t | TruthTable::var(arity, i);
  return t;
}

TruthTable tt_nand(int arity) { return ~tt_and(arity); }

TruthTable tt_nor(int arity) { return ~tt_or(arity); }

TruthTable tt_xor(int arity) {
  check_gate_arity(arity);
  TruthTable t = TruthTable::constant(arity, false);
  for (int i = 0; i < arity; ++i) t = t ^ TruthTable::var(arity, i);
  return t;
}

TruthTable tt_xnor(int arity) { return ~tt_xor(arity); }

TruthTable tt_mux() {
  const TruthTable s = TruthTable::var(3, 0);
  const TruthTable a = TruthTable::var(3, 1);
  const TruthTable b = TruthTable::var(3, 2);
  return (~s & a) | (s & b);
}

TruthTable tt_maj3() {
  const TruthTable a = TruthTable::var(3, 0);
  const TruthTable b = TruthTable::var(3, 1);
  const TruthTable c = TruthTable::var(3, 2);
  return (a & b) | (a & c) | (b & c);
}

}  // namespace turbosyn
