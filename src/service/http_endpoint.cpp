#include "service/http_endpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "base/check.hpp"

namespace turbosyn {
namespace {

/// Full response bytes for one exchange. Every response carries an explicit
/// Content-Length and Connection: close, so even HTTP/1.1 clients that
/// would default to keep-alive read the body and hang up.
std::string http_response(int code, const char* reason, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // the peer is gone; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Parses "/trace/<decimal id>"; false for any other shape (including a
/// trailing slash, sign, or non-digit — a garbage id is a 404, not a 500).
bool parse_trace_target(std::string_view target, std::uint64_t* id) {
  constexpr std::string_view kPrefix = "/trace/";
  if (!target.starts_with(kPrefix)) return false;
  const std::string_view digits = target.substr(kPrefix.size());
  if (digits.empty() || digits.size() > 19) return false;
  std::uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

}  // namespace

HttpEndpoint::HttpEndpoint(int port, Handlers handlers)
    : requested_port_(port), handlers_(std::move(handlers)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

void HttpEndpoint::start() {
  TS_CHECK(listen_fd_ < 0, "HttpEndpoint::start() called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TS_CHECK(fd >= 0, std::string("socket(AF_INET): ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(requested_port_));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string error = "http bind/listen(127.0.0.1:" +
                              std::to_string(requested_port_) +
                              "): " + std::strerror(errno);
    ::close(fd);
    throw Error(error);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpEndpoint::stop() {
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpEndpoint::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    // A stalled peer must not wedge the scrape path: bound both directions,
    // then serve inline (responses are small and handlers are fast, so one
    // connection at a time keeps the endpoint free of thread churn).
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpEndpoint::serve_connection(int fd) {
  // Read until the end of the header block (GETs carry no body). 16 KiB is
  // generous for a request whose only meaningful content is the first line.
  std::string request;
  char chunk[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < (std::size_t{16} << 10)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (request.find("\r\n") == std::string::npos) return;  // nothing usable
      break;  // a bare request line without final CRLFCRLF still routes
    }
    request.append(chunk, static_cast<std::size_t>(n));
  }

  const std::size_t eol = request.find("\r\n");
  const std::string_view first_line =
      std::string_view(request).substr(0, eol == std::string::npos ? request.size() : eol);
  const std::size_t sp1 = first_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos : first_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    send_all(fd, http_response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string_view method = first_line.substr(0, sp1);
  std::string_view target = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Scrapers may append a query string; the routes here ignore it.
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);
  }

  if (method != "GET") {
    send_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
    return;
  }
  if (target == "/metrics") {
    send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                               handlers_.metrics ? handlers_.metrics() : std::string()));
    return;
  }
  if (target == "/healthz") {
    const bool ready = handlers_.ready && handlers_.ready();
    if (ready) {
      send_all(fd, http_response(200, "OK", "text/plain", "ok\n"));
    } else {
      send_all(fd, http_response(503, "Service Unavailable", "text/plain", "draining\n"));
    }
    return;
  }
  if (std::uint64_t id = 0; parse_trace_target(target, &id)) {
    const std::string body = handlers_.trace ? handlers_.trace(id) : std::string();
    if (body.empty()) {
      send_all(fd, http_response(404, "Not Found", "text/plain",
                                 "no trace for this request id\n"));
    } else {
      send_all(fd, http_response(200, "OK", "application/json", body));
    }
    return;
  }
  send_all(fd, http_response(404, "Not Found", "text/plain",
                             "routes: /metrics /healthz /trace/<id>\n"));
}

}  // namespace turbosyn
