#pragma once
// Always-on mapping daemon: a long-lived server that accepts circuits over a
// Unix-domain socket (optionally TCP loopback), runs them through the
// supervised cache-aware flow machinery, and streams results back as
// line-delimited JSON. One process, one shared FlowCache (with the
// in-memory hot tier — see cache/flow_cache.hpp), many clients.
//
// Protocol (DESIGN.md §14). One request per line:
//
//   {"op":"map","id":7,"client":"ci","blif":"...","flow":"turbosyn","k":5,
//    "deadline_ms":2000}                       — map an inline netlist
//   {"op":"map","id":8,"path":"/x/a.blif"}     — map a file the server reads
//   {"op":"map","id":9,"path":"/x/a.blif",
//    "portfolio":"turbosyn,turbomap,flowsyn_s",
//    "priority":"high"}                        — race engines, jump the line
//
// "portfolio" (a comma-separated engine list, validated against the
// registry at parse time) races the named engines instead of running one
// flow; the result record carries the winner in its "engine" field and the
// STATS aggregate rolls up per-engine win counts plus the wall time saved
// by cancelling provably-lost engines. "priority":"high" routes the request
// to its client's high-priority sub-queue (served 3:1 against normal — see
// AdmissionQueue below); "priority":"normal" is the default.
//   STATS      (or {"op":"stats"})             — one JSON aggregate object
//   PING       (or {"op":"ping"})              — liveness
//   CANCEL 7   (or {"op":"cancel","id":7})     — cancel a queued/running map
//   SHUTDOWN   (or {"op":"shutdown"})          — graceful drain
//
// Request objects are flat JSON (base/json_util.hpp): strict parsing,
// numbers validated with parse_int_strict — a malformed field is an "error"
// reply naming the field, never an atoi-style silent zero. Replies are one
// JSON object per line, first field "reply": "queued" acknowledges
// admission, "result" carries the finished record (the exact
// batch_record_json schema plus id/client), "cancel"/"stats"/"pong"/
// "error"/"shutdown" answer their verbs.
//
// Scheduling. Admitted requests enter an AdmissionQueue that is fair across
// client ids: workers pop round-robin over clients (not FIFO over arrival),
// and a per-client in-flight cap keeps one chatty client from occupying
// every lane. Each request runs under its own RunBudget slice carved from a
// configurable global BudgetPool — the daemon can promise "at most N
// core-seconds per window" and unused slice time is refunded.
//
// The server owns its worker threads rather than using ThreadPool::for_each:
// for_each is a barrier construct (one caller, one task set, join at the
// end), while a daemon needs lanes that outlive any one request and block on
// an empty queue. See DESIGN.md §14.
//
// Supervision and poison. Every request runs through run_supervised_job —
// retries with capped backoff, containment of stage failures — and a
// request that quarantines registers its circuit (keyed by canonical path,
// or a content hash for inline netlists) in a poison set: resubmitting the
// same circuit is answered with an immediate quarantined record instead of
// burning another max_attempts runs.
//
// Drain. request_shutdown() (the SHUTDOWN verb, or SIGTERM via the external
// cancel token) stops accepting, cancels running requests (they wind down
// to best-so-far), and emits a cancelled record for every request still
// queued — every admitted request produces exactly one JSONL record, even
// across a drain. JSONL goes through the hardened JsonlSink (write faults
// absorbed and counted, per-record flush).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/run_budget.hpp"
#include "base/trace.hpp"
#include "cache/flow_cache.hpp"
#include "service/batch_runner.hpp"
#include "service/http_endpoint.hpp"

namespace turbosyn {

/// One consistent read of every counter the daemon exposes. Both render
/// targets — the STATS JSON reply and the Prometheus /metrics exposition —
/// are pure functions of this struct, so a STATS reply and a scrape taken
/// from the same snapshot agree bit for bit on every shared counter
/// (DESIGN.md §16). Fill with MappingServer::snapshot().
struct StatsSnapshot {
  // Server counters and queue/worker state.
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t rejected = 0;
  std::int64_t poison_blocked = 0;
  std::int64_t retries = 0;
  std::int64_t queue_depth = 0;
  std::int64_t in_flight = 0;
  std::int64_t high_queued = 0;
  std::int64_t high_served = 0;
  std::int64_t normal_served = 0;
  int workers = 1;
  bool draining = false;
  std::int64_t jsonl_faults = 0;
  // Budget pool.
  std::int64_t budget_total_ms = 0;
  std::int64_t budget_remaining_ms = 0;
  // FlowCache (has_cache gates the whole block, mirroring STATS).
  bool has_cache = false;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_stores = 0;
  std::int64_t cache_rejects = 0;
  std::int64_t cache_near_hits = 0;
  std::int64_t cache_recovered_entries = 0;
  std::int64_t cache_recovered_tmp = 0;
  std::int64_t cache_recovered_sidecars = 0;
  std::int64_t cache_store_retries = 0;
  std::int64_t hot_hits = 0;
  std::int64_t hot_evictions = 0;
  std::int64_t hot_cost_evictions = 0;
  double hot_cost_retained_seconds = 0.0;
  std::int64_t hot_entries = 0;
  std::int64_t hot_bytes = 0;
  std::string hot_policy;  // "recency" | "cost-aware"
  // Portfolio rollups.
  std::int64_t portfolio_runs = 0;
  std::int64_t portfolio_cancelled_engines = 0;
  double portfolio_saved_seconds = 0.0;
  std::map<std::string, std::int64_t> portfolio_wins;
  // Probe ledger, flow wall time, per-stage rollups.
  std::int64_t total_probes = 0;
  std::int64_t imported_probes = 0;
  double flow_seconds = 0.0;
  struct StageStat {
    double seconds = 0.0;
    std::int64_t runs = 0;
  };
  std::map<std::string, StageStat> stages;
  // Failpoint trigger counts (always present; empty when nothing armed).
  std::map<std::string, std::int64_t> failpoints;
  // Trace counter totals: the global sink's totals merged with the
  // accumulated per-request (trace-ring) totals. has_trace gates the block.
  bool has_trace = false;
  std::map<std::string, std::int64_t> trace_totals;
  // Per-request trace ring.
  bool has_trace_ring = false;
  std::int64_t traces_stored = 0;
  std::int64_t traces_evicted = 0;
  std::int64_t trace_ring_entries = 0;
  std::int64_t trace_ring_bytes = 0;
};

/// The STATS reply ({"reply":"stats",...}) rendered from a snapshot.
std::string render_stats_json(const StatsSnapshot& snap);

/// The same counters as Prometheus text exposition format 0.0.4: every
/// family is `ts_`-prefixed, carries # HELP and # TYPE lines, and counters
/// end in `_total` (tools/promlint.py enforces all three in CI).
std::string render_prometheus(const StatsSnapshot& snap);

/// One "map" request, as parsed off the wire.
struct MapRequest {
  std::int64_t id = 0;     // client-chosen correlation id (>= 0)
  std::string client;      // fairness key; defaults to the connection's id
  std::string path;        // server-side file, when `blif` is empty
  std::string blif;        // inline netlist text (preferred for isolation)
  FlowKind flow = FlowKind::kTurboSyn;
  /// Engine names to race instead of `flow` (the "portfolio" request field,
  /// a comma-separated list validated at parse time). Empty = standalone.
  std::vector<std::string> portfolio;
  int k = 5;
  /// Requested wall-clock slice; the server caps it to its per-request
  /// ceiling and to what the global pool has left. 0 = server default.
  std::int64_t deadline_ms = 0;
  /// Two-level scheduling: 'priority':'high' requests go to the client's
  /// high-priority sub-queue, served 3:1 against its normal sub-queue.
  bool high_priority = false;
};

/// One parsed request line: a verb or a protocol error (never throws).
struct ParsedLine {
  enum class Kind { kMap, kStats, kPing, kCancel, kShutdown, kError };
  Kind kind = Kind::kError;
  MapRequest map;           // kMap
  std::int64_t cancel_id = 0;  // kCancel
  std::string error;        // kError: what was wrong, naming the field
};

/// Parses one request line: bare verbs (STATS, PING, CANCEL <id>, SHUTDOWN)
/// or a flat JSON object as documented above. Exposed for tests and for
/// embedding the protocol elsewhere.
ParsedLine parse_protocol_line(const std::string& line);

/// Round-robin admission queue with a per-client in-flight cap and
/// two-level per-client priorities.
///
/// push() enqueues under the ticket's client, into its high or normal
/// sub-queue (MapRequest::high_priority); pop() serves clients in
/// round-robin order, skipping any client at its in-flight cap, and blocks
/// while nothing is eligible. Within a client, the two sub-queues are
/// served 3:1 weighted round-robin: up to three high-priority tickets per
/// normal one, so urgent work jumps the line without starving the backlog.
/// complete() returns a client's in-flight slot. close() wakes every popper
/// with nullopt; drain() then removes whatever was still queued so the
/// caller can emit records for it.
class AdmissionQueue {
 public:
  struct Ticket {
    MapRequest request;
    std::uint64_t seq = 0;  // server-wide admission number
    int connection = -1;    // reply target (-1: none, e.g. tests)
    std::shared_ptr<CancelToken> cancel;  // per-request; never null once admitted
  };

  /// `max_depth` bounds queued (not yet popped) tickets; `per_client`
  /// bounds how many of one client's tickets may be popped-but-incomplete
  /// at once (>= 1).
  AdmissionQueue(std::size_t max_depth, int per_client);

  /// False when the queue is full or closed (the caller rejects the
  /// request); true means the ticket will be popped exactly once, unless
  /// the queue is closed first and drain() returns it.
  bool push(Ticket ticket);

  /// Next eligible ticket, blocking. nullopt once closed (after the queue
  /// has been observed empty or ineligible — remaining tickets are the
  /// drainer's).
  std::optional<Ticket> pop();

  /// Returns the in-flight slot pop() charged to `client` for ticket `id`.
  void complete(const std::string& client, std::int64_t id);

  void close();
  bool closed() const;

  /// Everything still queued (valid after close(); callable anytime).
  std::vector<Ticket> drain();

  /// Cancels a queued or in-flight ticket: sets its cancel token. True iff
  /// a ticket with this (client, id) was found (queued tickets stay queued
  /// — the popping worker observes the token and reports without running).
  bool cancel(const std::string& client, std::int64_t id);

  /// Cancels every queued and in-flight ticket (the drain path).
  void cancel_all();

  std::size_t depth() const;
  int in_flight() const;
  /// Tickets served (popped) from high / normal sub-queues so far.
  std::int64_t high_served() const;
  std::int64_t normal_served() const;
  /// Tickets currently queued in high-priority sub-queues.
  std::size_t high_depth() const;

 private:
  /// One client's two-band state: FIFO sub-queues plus the 3:1 weighted
  /// round-robin grant counter (how many consecutive high pops this client
  /// has taken since its last normal pop).
  struct ClientQueues {
    std::deque<Ticket> high;
    std::deque<Ticket> normal;
    int high_grants = 0;
    bool empty() const { return high.empty() && normal.empty(); }
  };

  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::size_t max_depth_;
  int per_client_;
  bool closed_ = false;
  /// Per-client sub-queues; round_robin_ orders the clients and the
  /// cursor rotates so every pop starts the scan at a different client.
  std::map<std::string, ClientQueues> queues_;
  std::vector<std::string> round_robin_;
  std::size_t rr_cursor_ = 0;
  std::map<std::string, int> in_flight_;
  std::size_t depth_ = 0;
  std::size_t high_depth_ = 0;
  std::int64_t high_served_ = 0;
  std::int64_t normal_served_ = 0;
  /// Tokens of popped-but-incomplete tickets, for cancel() of running work.
  std::map<std::pair<std::string, std::int64_t>, std::shared_ptr<CancelToken>> running_;
};

// BudgetPool moved to base/run_budget.hpp (PR 9): the portfolio runner in
// core carves per-engine slices from the same pool type the daemon carves
// per-request slices from.

struct MappingServerOptions {
  /// Unix-domain socket path (unlinked and rebound on start). Empty: no
  /// unix listener (tcp_port must then be set).
  std::string socket_path;
  /// TCP loopback listener port (-1 = off, 0 = ephemeral; see port()).
  int tcp_port = -1;
  int workers = 2;
  std::size_t max_queue = 256;
  int per_client_in_flight = 1;
  /// Global budget pool (0 = unlimited) and per-request slice ceiling
  /// (0 = uncapped). A request's own deadline_ms is honored up to the cap.
  std::int64_t global_budget_ms = 0;
  std::int64_t per_request_deadline_ms = 0;
  /// Shared artifact store (nullptr = uncached). Configure the hot tier on
  /// it before start() for in-memory repeat hits.
  FlowCache* cache = nullptr;
  /// Base flow options for every request (k/flow are per-request).
  FlowOptions flow;
  /// Supervision knobs, as in BatchOptions.
  int max_attempts = 2;
  std::int64_t retry_backoff_ms = 10;
  /// Optional JSONL record stream (hardened via JsonlSink).
  std::ostream* jsonl = nullptr;
  /// Optional external shutdown signal, polled by a monitor thread: wire
  /// this to global_cancel_token() and install_sigterm_cancellation() and a
  /// service manager's SIGTERM drains the daemon. Not owned.
  const CancelToken* external_shutdown = nullptr;
  /// HTTP observability endpoint port (-1 = off, 0 = ephemeral; see
  /// http_port()). Serves /metrics, /healthz and /trace/<seq> — the
  /// endpoint stays up through the drain so readiness probes see the flip.
  int http_port = -1;
  /// Per-request trace handles: > 0 keeps each admitted request's TraceSink
  /// span tree (JSON schema v1) in a bounded in-memory ring of at most this
  /// many requests, retrievable via /trace/<seq> or trace_json(). The
  /// result reply echoes the handle as "trace":<seq>. 0 disables the ring;
  /// when disabled, flow.trace (one shared sink) keeps PR 8 behavior.
  std::size_t trace_ring_entries = 0;
  /// Byte cap on the ring's stored JSON (oldest evicted first).
  std::size_t trace_ring_bytes = std::size_t{4} << 20;
};

class MappingServer {
 public:
  explicit MappingServer(MappingServerOptions options);
  ~MappingServer();  // request_shutdown() + wait()

  MappingServer(const MappingServer&) = delete;
  MappingServer& operator=(const MappingServer&) = delete;

  /// Binds the listeners and starts the accept/worker/monitor threads.
  /// Throws turbosyn::Error when nothing can be bound.
  void start();

  /// Begins the graceful drain (idempotent, any thread): listeners close,
  /// queued requests report cancelled, running requests wind down.
  void request_shutdown();

  /// Blocks until the drain finishes and every thread has joined.
  void wait();

  bool draining() const;

  /// Bound TCP port (after start(), when tcp_port was >= 0), else -1.
  int port() const;

  /// Bound HTTP endpoint port (after start(), when http_port was >= 0),
  /// else -1.
  int http_port() const;

  /// One consistent read of every exposed counter — the single source both
  /// stats_json() and the /metrics exposition render from.
  StatsSnapshot snapshot() const;

  /// The STATS aggregate: server counters, queue/budget state, cache
  /// counters (including the hot tier), probe-ledger and per-stage rollups,
  /// failpoint trigger counts, JSONL sink faults. One flat-ish JSON object
  /// (values may be nested objects; keys are stable). Equivalent to
  /// render_stats_json(snapshot()).
  std::string stats_json() const;

  /// Stored trace JSON for admission seq `seq` (trace_ring_entries > 0),
  /// or "" when the request never stored one / the ring evicted it.
  std::string trace_json(std::uint64_t seq) const;

  // Counters, exposed for tests and tsd's exit log.
  std::int64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  std::int64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  std::int64_t failed() const { return failed_.load(std::memory_order_relaxed); }
  std::int64_t cancelled() const { return cancelled_.load(std::memory_order_relaxed); }
  std::int64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  std::int64_t poison_blocked() const {
    return poison_blocked_.load(std::memory_order_relaxed);
  }
  std::int64_t jsonl_faults() const;

 private:
  struct Connection {
    int fd = -1;
    int id = -1;
    std::string default_client;
    std::mutex write_mu;
    std::thread reader;
    bool open = true;  // guarded by write_mu
  };

  void accept_loop(int listen_fd);
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void monitor_loop();

  void handle_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  void handle_map(const std::shared_ptr<Connection>& conn, MapRequest request);
  void run_ticket(AdmissionQueue::Ticket ticket);
  /// Stores one finished request's trace JSON in the bounded ring (evicting
  /// oldest-first past the entry/byte caps) and rolls its counter totals
  /// into trace_totals_.
  void store_trace(std::uint64_t seq, const TraceSink& sink);
  /// Emits the record to the JSONL stream and, when the connection is still
  /// up, as a "result" reply. `traced` appends "trace":<seq> — the handle a
  /// client quotes back to /trace/<seq> or --trace-fetch.
  void emit_record(const AdmissionQueue::Ticket& ticket, const BatchRecord& record,
                   bool traced = false);
  void send_reply(const std::shared_ptr<Connection>& conn, const std::string& line);
  std::shared_ptr<Connection> connection(int id) const;

  /// Poison key for a request: the path, or a hash of the inline text.
  static std::string poison_key(const MapRequest& request);

  MappingServerOptions options_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<BudgetPool> pool_;
  std::unique_ptr<JsonlSink> sink_;
  std::unique_ptr<HttpEndpoint> http_;

  // Per-request trace ring (guarded by trace_mu_): completed requests'
  // serialized span trees, keyed by admission seq, bounded by the options'
  // entry and byte caps with oldest-first eviction. trace_totals_
  // accumulates every per-request sink's counter totals so STATS/metrics
  // still aggregate across requests the ring has already evicted.
  struct TraceHandle {
    std::uint64_t seq = 0;
    std::string json;
  };
  mutable std::mutex trace_mu_;
  // A deque scanned linearly on fetch: the ring holds at most
  // trace_ring_entries handles (tens, not thousands) and fetches are rare
  // relative to stores, so an index would buy nothing.
  std::deque<TraceHandle> trace_ring_;  // front = oldest
  std::size_t trace_ring_bytes_now_ = 0;
  std::int64_t traces_stored_ = 0;
  std::int64_t traces_evicted_ = 0;
  std::map<std::string, std::int64_t> trace_totals_;

  std::vector<int> listen_fds_;
  int tcp_port_bound_ = -1;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> workers_;
  std::thread monitor_;

  mutable std::mutex conn_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  int next_connection_id_ = 0;

  mutable std::mutex poison_mu_;
  std::unordered_set<std::string> poison_;

  // Per-stage rollups across finished requests (guarded by stats_mu_).
  mutable std::mutex stats_mu_;
  std::map<std::string, double> stage_seconds_;
  std::map<std::string, std::int64_t> stage_runs_;
  std::int64_t total_probes_ = 0;
  std::int64_t imported_probes_ = 0;
  double flow_seconds_ = 0.0;
  // Portfolio rollups (guarded by stats_mu_): wins per engine, and wall
  // time saved by cancelled engines — per cancelled row, the slowest
  // finisher's seconds minus the row's seconds (how much longer the row
  // would have been allowed to run had nothing cancelled it).
  std::map<std::string, std::int64_t> portfolio_wins_;
  std::int64_t portfolio_runs_ = 0;
  std::int64_t portfolio_cancelled_engines_ = 0;
  double portfolio_saved_seconds_ = 0.0;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> failed_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> poison_blocked_{0};
  std::atomic<std::int64_t> retries_{0};
};

}  // namespace turbosyn
