#include "service/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/flow_cli.hpp"
#include "base/json_util.hpp"
#include "base/thread_pool.hpp"
#include "base/trace.hpp"
#include "decomp/gate_decomp.hpp"
#include "netlist/blif.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ',';
    out += name;
  }
  return out;
}

std::string path_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end = (dot == std::string::npos || dot <= start) ? path.size() : dot;
  return path.substr(start, end - start);
}

/// Splits one manifest line into fields. A field is either a bare
/// whitespace-delimited token or a double-quoted string (spaces allowed;
/// \" and \\ escapes). Throws with `context` on an unterminated quote.
std::vector<std::string> split_manifest_fields(const std::string& line,
                                               const std::string& context) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size()) break;
    std::string field;
    if (line[pos] == '"') {
      ++pos;
      bool closed = false;
      while (pos < line.size()) {
        const char ch = line[pos++];
        if (ch == '"') {
          closed = true;
          break;
        }
        if (ch == '\\' && pos < line.size() &&
            (line[pos] == '"' || line[pos] == '\\')) {
          field += line[pos++];
        } else {
          field += ch;
        }
      }
      TS_CHECK(closed, context << "unterminated quote in field " << fields.size() + 1);
    } else {
      while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') {
        field += line[pos++];
      }
    }
    fields.push_back(std::move(field));
  }
  return fields;
}

/// One circuit attempt: parse, K-bound, run the (cache-aware) flow. Every
/// fault — a parse error, a stage failure the driver contained, an injected
/// "batch.job" fault — lands in the record; this function never throws and
/// never kills the process.
BatchRecord run_job(const BatchJob& job, const BatchOptions& options) {
  BatchRecord record;
  record.name = job.name;
  record.path = job.path;
  record.flow = job.flow;
  record.k = job.k;
  const auto start = Clock::now();
  try {
    if (failpoint::enabled() &&
        failpoint::check("batch.job").action == failpoint::Action::kError) {
      throw Error("failpoint batch.job");
    }
    Circuit input = job.blif.empty() ? read_blif_file(job.path)
                                     : read_blif_string(job.blif, job.name);
    if (!input.is_k_bounded(job.k)) input = gate_decompose(input, job.k);

    FlowOptions flow_options = options.flow;
    // The manifest's per-job K governs the whole run — decomposition above
    // AND the mapper — not just the input bound (the fault fuzzer caught a
    // K=5 flow running on a K=4 job).
    flow_options.k = job.k;
    // The pool schedules whole circuits; nested for_each would deadlock.
    flow_options.num_threads = 1;
    // Fresh per-circuit budget slice sharing the batch's cancel token.
    flow_options.budget = RunBudget();
    if (options.per_circuit_deadline_ms > 0) {
      flow_options.budget.set_deadline_after_ms(options.per_circuit_deadline_ms);
    }
    if (options.cancel != nullptr) flow_options.budget.set_cancel_token(options.cancel);

    CacheRunInfo info;
    FlowResult result;
    if (!job.portfolio.empty()) {
      std::vector<const EngineSpec*> engines;
      const std::string invalid = parse_portfolio(join_names(job.portfolio), engines);
      if (!invalid.empty()) throw Error(invalid);
      // A batch task already occupies a pool lane; the race must run its
      // engines sequentially (dominance still skips provably-lost engines).
      PortfolioOptions popt;
      popt.concurrent = false;
      result = run_portfolio_cached(engines, input, flow_options, popt, options.cache,
                                    &info);
    } else {
      result = run_flow_cached(job.flow, input, flow_options, options.cache, &info);
    }
    record.ok = true;
    record.cache_hit = info.hit;
    record.engine = result.engine;
    record.portfolio = result.portfolio;
    record.phi = result.phi;
    record.luts = result.luts;
    record.ffs = result.ffs;
    record.period = result.period;
    record.pipeline_stages = result.pipeline_stages;
    record.status = result.status;
    record.probes = static_cast<int>(result.probes.size());
    for (const ProbeRecord& probe : result.probes) {
      if (probe.imported) ++record.imported_probes;
    }
    record.stage_metrics = result.stage_metrics;
    if (result.status == Status::kFailed) {
      record.failed_stage = result.failed_stage;
      record.error = result.failure;
    }
  } catch (const std::exception& e) {
    record.ok = false;
    record.error = e.what();
  }
  record.seconds = seconds_since(start);
  return record;
}

/// A record that should be retried: the attempt faulted (parse/flow
/// exception, contained stage failure). Interrupts are excluded — a
/// deadline or cancel is the budget working as designed, and re-running
/// would just burn the same budget again.
bool attempt_failed(const BatchRecord& record) {
  return (!record.ok || record.status == Status::kFailed) && !is_interrupt(record.status);
}

/// Capped exponential pause before attempt `next_attempt` (2-based), sliced
/// so a batch cancel cuts the sleep short.
void retry_backoff(const BatchOptions& options, int next_attempt) {
  const std::int64_t base = std::max<std::int64_t>(0, options.retry_backoff_ms);
  const int exponent = std::min(next_attempt - 2, 10);
  const std::int64_t pause =
      std::min<std::int64_t>(base << exponent, 1000);
  const auto until = Clock::now() + std::chrono::milliseconds(pause);
  while (Clock::now() < until) {
    if (options.cancel != nullptr && options.cancel->cancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

BatchRecord run_supervised_job(const BatchJob& job, const BatchOptions& options,
                               int* retries_out) {
  const int max_attempts = std::max(1, options.max_attempts);
  BatchRecord record;
  double total_seconds = 0.0;
  int retries = 0;
  for (int attempt = 1;; ++attempt) {
    record = run_job(job, options);
    total_seconds += record.seconds;
    record.seconds = total_seconds;  // the circuit's cost, not the attempt's
    record.attempts = attempt;
    if (!attempt_failed(record) || attempt >= max_attempts) break;
    if (options.cancel != nullptr && options.cancel->cancelled()) break;
    ++retries;
    retry_backoff(options, attempt + 1);
  }
  // Failing the last allowed attempt (without an interrupt cutting the
  // supervision short) marks the circuit deterministically bad.
  record.quarantined = attempt_failed(record) && record.attempts >= max_attempts;
  if (retries_out != nullptr) *retries_out = retries;
  return record;
}

bool JsonlSink::write(const std::string& line) {
  if (os_ == nullptr) return true;
  const std::lock_guard<std::mutex> lock(mu_);
  bool fault = false;
  try {
    if (failpoint::enabled() &&
        failpoint::check("batch.jsonl.write").action == failpoint::Action::kError) {
      fault = true;
    } else {
      *os_ << line << '\n' << std::flush;
      fault = !os_->good();
    }
  } catch (...) {
    fault = true;
  }
  if (fault) {
    os_->clear();
    faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return !fault;
}

std::vector<BatchJob> read_batch_manifest(std::istream& in, const std::string& source_name) {
  std::vector<BatchJob> jobs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string context = source_name + ":" + std::to_string(line_no) + ": ";
    const std::vector<std::string> fields = split_manifest_fields(line, context);
    if (fields.empty() || fields[0][0] == '#') continue;
    BatchJob job;
    job.path = fields[0];
    TS_CHECK(!job.path.empty(), context << "empty path in field 1");
    if (fields.size() >= 2) {
      if (fields[1].find(',') != std::string::npos) {
        // A comma-separated engine list races as a portfolio. Resolved and
        // validated here so a typo fails at manifest load, not mid-batch.
        std::vector<const EngineSpec*> engines;
        const std::string invalid = parse_portfolio(fields[1], engines);
        TS_CHECK(invalid.empty(), context << invalid << " in field 2");
        for (const EngineSpec* spec : engines) job.portfolio.push_back(spec->name);
      } else {
        // Name the offending field: an unquoted path with spaces lands its
        // tail here, and "unknown flow 'b.blif'" with no field context sent
        // users hunting through the flow table instead of their path.
        TS_CHECK(flow_kind_from_name(fields[1], job.flow),
                 context << "unknown flow '" << fields[1]
                         << "' in field 2 (expected turbomap|turbosyn|flowsyn_s|"
                            "turbomap_period or a comma-separated engine portfolio; "
                            "a path containing spaces must be double-quoted)");
      }
    }
    if (fields.size() >= 3) {
      TS_CHECK(parse_int_strict(fields[2], 2, 32, job.k),
               context << "bad K '" << fields[2]
                       << "' in field 3 (expected an integer in [2, 32])");
    }
    TS_CHECK(fields.size() <= 3, context << "trailing field '" << fields[3] << "'");
    job.name = path_stem(job.path);
    jobs.push_back(std::move(job));
  }

  // De-duplicate record names: two entries sharing a path stem (a/x.blif,
  // b/x.blif) used to stream indistinguishable JSONL records and an
  // ambiguous poison list — and the daemon's resubmission guard keys off
  // these names. Later duplicates get a ~N suffix in manifest order.
  std::unordered_set<std::string> taken;
  std::unordered_map<std::string, int> suffix;
  for (BatchJob& job : jobs) {
    std::string name = job.name;
    int& n = suffix[job.name];
    while (!taken.insert(name).second) {
      ++n;
      name = job.name + "~" + std::to_string(n + 1);
    }
    job.name = std::move(name);
  }
  return jobs;
}

std::vector<BatchJob> read_batch_manifest_file(const std::string& path) {
  std::ifstream in(path);
  TS_CHECK(in.good(), "cannot open manifest '" << path << "'");
  return read_batch_manifest(in, path);
}

std::string batch_record_json(const BatchRecord& record) {
  std::string out = "{\"name\":";
  json_append_string(out, record.name);
  out += ",\"path\":";
  json_append_string(out, record.path);
  out += ",\"flow\":";
  json_append_string(out, flow_kind_name(record.flow));
  if (!record.engine.empty()) {
    out += ",\"engine\":";
    json_append_string(out, record.engine);
  }
  out += ",\"k\":" + std::to_string(record.k);
  out += ",\"ok\":";
  out += record.ok ? "true" : "false";
  out += ",\"skipped\":";
  out += record.skipped ? "true" : "false";
  out += ",\"cache_hit\":";
  out += record.cache_hit ? "true" : "false";
  if (record.ok) {
    out += ",\"phi\":" + std::to_string(record.phi);
    out += ",\"luts\":" + std::to_string(record.luts);
    out += ",\"ffs\":" + std::to_string(record.ffs);
    out += ",\"period\":" + std::to_string(record.period);
    out += ",\"pipeline_stages\":" + std::to_string(record.pipeline_stages);
  }
  out += ",\"status\":";
  json_append_string(out, status_name(record.status));
  out += ",\"attempts\":" + std::to_string(record.attempts);
  out += ",\"quarantined\":";
  out += record.quarantined ? "true" : "false";
  if (!record.failed_stage.empty()) {
    out += ",\"failed_stage\":";
    json_append_string(out, record.failed_stage);
  }
  out += ",\"seconds\":" + json_double(record.seconds);
  if (!record.error.empty()) {
    out += ",\"error\":";
    json_append_string(out, record.error);
  }
  out += "}";
  return out;
}

BatchSummary run_batch(const std::vector<BatchJob>& jobs, const BatchOptions& options,
                       std::ostream* jsonl) {
  const auto start = Clock::now();
  BatchSummary summary;
  summary.records.resize(jobs.size());
  // Tasks the interrupt skips keep this initializer; finished tasks
  // overwrite it with their real record.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    summary.records[i].name = jobs[i].name;
    summary.records[i].path = jobs[i].path;
    summary.records[i].flow = jobs[i].flow;
    summary.records[i].k = jobs[i].k;
    summary.records[i].skipped = true;
    summary.records[i].status = Status::kCancelled;
  }

  RunBudget batch_interrupt;
  if (options.cancel != nullptr) batch_interrupt.set_cancel_token(options.cancel);

  JsonlSink sink(jsonl);
  std::atomic<int> retries{0};
  ThreadPool::global().for_each(
      jobs.size(),
      [&](std::size_t i, int /*lane*/) {
        int job_retries = 0;
        BatchRecord record = run_supervised_job(jobs[i], options, &job_retries);
        retries.fetch_add(job_retries, std::memory_order_relaxed);
        // Incremental flush: every record hits the sink (and the OS) the
        // moment its circuit settles, so a later crash loses at most the
        // in-flight line. A sink fault (disk full, injected
        // "batch.jsonl.write" error) is absorbed — the record stays in the
        // summary and the batch keeps going.
        if (sink.attached()) sink.write(batch_record_json(record));
        summary.records[i] = std::move(record);
      },
      options.num_workers, options.cancel != nullptr ? &batch_interrupt : nullptr);

  for (const BatchRecord& record : summary.records) {
    if (record.skipped) {
      ++summary.skipped;
    } else if (record.ok && record.status != Status::kFailed) {
      ++summary.completed;
      if (record.cache_hit) ++summary.cache_hits;
    } else {
      ++summary.failed;
    }
    if (record.quarantined) {
      ++summary.quarantined;
      summary.poisoned.push_back(record.name);
    }
  }
  summary.retries = retries.load(std::memory_order_relaxed);
  summary.jsonl_write_faults = sink.faults();
  summary.seconds = seconds_since(start);

  // Observability (DESIGN.md §13): the supervision outcome into the trace
  // stream. Emitted after the pool joins, so the counters are settled.
  if (options.flow.trace != nullptr) {
    TraceSpan span(options.flow.trace, "batch:summary");
    span.counter("completed", summary.completed);
    span.counter("failed", summary.failed);
    span.counter("skipped", summary.skipped);
    span.counter("cache_hits", summary.cache_hits);
    span.counter("retries", summary.retries);
    span.counter("quarantined", summary.quarantined);
    span.counter("jsonl_write_faults", summary.jsonl_write_faults);
  }
  return summary;
}

}  // namespace turbosyn
