#pragma once
// Minimal dependency-free HTTP/1.1 front end for the mapping daemon's
// observability surface (DESIGN.md §16). Serves exactly three read-only
// routes on TCP loopback:
//
//   GET /metrics       — Prometheus text exposition 0.0.4 (Handlers::metrics)
//   GET /healthz       — 200 "ok" when Handlers::ready() is true, else
//                        503 "draining" — a drain-aware readiness probe
//   GET /trace/<id>    — the stored per-request trace JSON for admission
//                        seq <id> (Handlers::trace), 404 when the ring no
//                        longer holds it
//
// Anything else is 404 (unknown path) or 405 (non-GET). This is not a web
// server: requests are parsed just enough to route (method + target up to
// the first CRLF, headers skipped), every response closes the connection,
// and a per-connection receive timeout bounds how long a stalled peer can
// hold the accept loop. All three handlers are called on the endpoint's
// accept thread — they must be thread-safe against the daemon's workers,
// which the snapshot-based renderers are by construction.
//
// The endpoint deliberately outlives the daemon's drain: /healthz flipping
// to 503 while SIGTERM winds the workers down is the whole point of a
// readiness probe, and /trace stays queryable for completed requests until
// the process exits. stop() closes the listener and joins.

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace turbosyn {

class HttpEndpoint {
 public:
  struct Handlers {
    /// Body of GET /metrics (content type text/plain; version=0.0.4).
    std::function<std::string()> metrics;
    /// Readiness for GET /healthz: true = 200 "ok", false = 503 "draining".
    std::function<bool()> ready;
    /// Stored trace JSON for GET /trace/<id>; empty string = 404.
    std::function<std::string(std::uint64_t)> trace;
  };

  /// `port` as in MappingServerOptions::tcp_port: 0 binds an ephemeral
  /// loopback port (see port()). Nothing is bound until start().
  HttpEndpoint(int port, Handlers handlers);
  ~HttpEndpoint();  // stop()

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Binds the loopback listener and starts the accept thread. Throws
  /// turbosyn::Error when the port cannot be bound.
  void start();

  /// Closes the listener and joins the accept thread (idempotent).
  void stop();

  /// The bound port (after start()), else -1.
  int port() const { return bound_port_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  int requested_port_;
  Handlers handlers_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  std::thread accept_thread_;
};

}  // namespace turbosyn
