#pragma once
// Batch multi-circuit scheduler: N netlists through the staged flows,
// concurrently, over the one shared ThreadPool.
//
// The batch runner inverts the parallelism axis: instead of one circuit
// using every core inside the label engine, each circuit-level task runs its
// flow sequentially (num_threads forced to 1 — the pool does not support
// nested for_each) and the pool schedules whole circuits across lanes. That
// is the right shape for serving many small-to-medium workloads: tasks are
// independent, the flow-artifact cache (src/cache) is shared — so repeated
// circuits cost one read — and results stream out as JSON-lines records the
// moment each circuit finishes.
//
// Budgeting: every circuit gets its own RunBudget slice (an optional
// per-circuit wall-clock deadline) wired to one shared CancelToken, so a
// single Ctrl-C or SIGTERM (or a caller-side cancel) drains the whole batch
// cooperatively: running tasks wind down to their best-so-far mapping,
// queued tasks are skipped and reported as such.
//
// Supervision (DESIGN.md §13): one circuit's fault never takes the batch
// down. A parse error, a stage failure the driver contained (kFailed), or an
// injected "batch.job" fault becomes a failed JSONL record; the circuit is
// retried with capped exponential backoff (BatchOptions::max_attempts) and,
// if it fails deterministically on every attempt, quarantined into the
// summary's poison list. Records stream to the JSONL sink per circuit with
// an explicit flush, so a later crash loses at most the in-flight record;
// sink write failures are absorbed and counted, never fatal.
//
// Manifest format (read_batch_manifest): one circuit per line,
//
//   path/to/circuit.blif [flow] [K]
//
// where `flow` is turbomap | turbosyn | flowsyn_s | turbomap_period
// (default turbosyn) or a comma-separated engine list
// ("turbosyn,turbomap,flowsyn_s" — any registry engines, see
// --engines-list) to race as a portfolio, and K is the LUT input bound
// (default 5). Blank lines
// and `#` comments are ignored. Inputs wider than K are decomposed on load.
// A path containing spaces must be double-quoted ("a b/x.blif", with \" and
// \\ escapes inside); an unquoted space used to shear the path into a bogus
// flow field and a misleading "unknown flow" error. Record names default to
// the path's stem and are de-duplicated in manifest order (a/x.blif and
// b/x.blif stream as "x" and "x~2"), so JSONL records and the summary's
// poison list always identify exactly one manifest entry.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "base/run_budget.hpp"
#include "cache/cached_flow.hpp"
#include "core/flows.hpp"

namespace turbosyn {

struct BatchJob {
  std::string name;  // defaults to the path's stem (de-duplicated per batch)
  std::string path;  // BLIF netlist; a display name when `blif` is inline
  /// Inline netlist text: when non-empty the job parses this instead of
  /// reading `path` (the mapping daemon ships circuits in-band this way).
  std::string blif;
  FlowKind flow = FlowKind::kTurboSyn;
  /// Engine names to race instead of `flow` (empty = standalone flow). The
  /// job runs through run_portfolio_cached in sequential mode — each batch
  /// task already occupies a pool lane, so the engines run in list order
  /// with dominance-based skipping instead of concurrent lanes.
  std::vector<std::string> portfolio;
  int k = 5;
};

/// Parses the manifest format above. Throws turbosyn::Error with
/// "file:line:" context on malformed lines (unknown flow, bad K).
std::vector<BatchJob> read_batch_manifest(std::istream& in,
                                          const std::string& source_name = "<manifest>");
std::vector<BatchJob> read_batch_manifest_file(const std::string& path);

struct BatchOptions {
  /// Base options for every flow run. num_threads is overridden to 1 per
  /// task (circuit-level parallelism replaces label-level parallelism) and
  /// budget is replaced by the per-circuit slice below.
  FlowOptions flow;
  /// Shared artifact store (nullptr = uncached).
  FlowCache* cache = nullptr;
  /// Circuit-level concurrency: how many pool lanes may run batch tasks
  /// (0 = all). The calling thread participates.
  int num_workers = 0;
  /// Per-circuit wall-clock deadline (0 = none). Each task gets a fresh
  /// RunBudget with this deadline, so one pathological circuit degrades to
  /// its best-so-far mapping instead of starving the batch.
  std::int64_t per_circuit_deadline_ms = 0;
  /// Cooperative cancel for the whole batch (nullptr = none): running tasks
  /// drain, queued tasks are skipped.
  const CancelToken* cancel = nullptr;
  /// Supervision: how many times one circuit may run before it is
  /// quarantined (>= 1). A task whose flow failed in containment (or whose
  /// parse threw) is re-run up to this many attempts; interrupts
  /// (deadline/cancel) are never retried — they are the budget working as
  /// designed, not a fault. A circuit still failing on its last attempt is
  /// quarantined: recorded as failed, listed in BatchSummary::poisoned, and
  /// never crashes the batch.
  int max_attempts = 2;
  /// Base pause before a retry, growing exponentially per extra attempt and
  /// capped at 1s. The sleep polls `cancel`, so Ctrl-C is never held hostage
  /// by a backing-off retry.
  std::int64_t retry_backoff_ms = 10;
};

/// One finished (or skipped/failed) circuit, as streamed to the JSONL sink.
struct BatchRecord {
  std::string name;
  std::string path;
  FlowKind flow = FlowKind::kTurboSyn;
  int k = 5;
  bool ok = false;         // the flow ran and returned a result
  bool skipped = false;    // cancelled before the task started
  bool cache_hit = false;
  /// Winning engine of a portfolio job (empty for standalone flows).
  std::string engine;
  /// The race table of a portfolio job (FlowResult::portfolio): one row per
  /// engine, for service-level win counts and wall-time-saved rollups.
  /// Empty for standalone flows and cache-replayed portfolio hits.
  std::vector<EngineRun> portfolio;
  int phi = 0;
  int luts = 0;
  std::int64_t ffs = 0;
  std::int64_t period = 0;
  int pipeline_stages = 0;
  Status status = Status::kOk;
  double seconds = 0.0;    // across every attempt
  std::string error;       // parse/flow failure text (ok == false or kFailed)
  std::string failed_stage;  // stage the driver contained (status == kFailed)
  int attempts = 1;          // runs this circuit took (> 1: it was retried)
  bool quarantined = false;  // failed deterministically on every attempt
  // Ledger/stage aggregates of the final attempt, for service-level STATS
  // rollups (not serialized into the JSONL record).
  int probes = 0;            // probe-ledger records of the run
  int imported_probes = 0;   // of those, replayed from the cache
  StageMetrics stage_metrics;
};

/// The record as one JSON object on a single line (no trailing newline).
/// `seconds` is emitted round-trippable (shortest decimal that parses back
/// to the same double) — the default 6-significant-digit ostream rendering
/// silently truncated long runs.
std::string batch_record_json(const BatchRecord& record);

/// One supervised job, exactly as run_batch() executes each manifest entry:
/// parse + flow with containment, capped-backoff retries up to
/// options.max_attempts, quarantine marking on a deterministic failure.
/// Never throws; `retries_out` (optional) receives the extra attempts taken.
/// The mapping daemon runs every admitted request through this.
BatchRecord run_supervised_job(const BatchJob& job, const BatchOptions& options,
                               int* retries_out = nullptr);

/// Hardened JSON-lines sink shared by the batch runner and the mapping
/// daemon: writes are serialized and flushed per record, so a later crash
/// loses at most the in-flight line; a write fault (disk full, an injected
/// "batch.jsonl.write" error, a throwing streambuf) is absorbed and
/// counted, never fatal — the record still exists in memory upstream.
class JsonlSink {
 public:
  /// `os` may be nullptr (detached sink: every write succeeds as a no-op).
  explicit JsonlSink(std::ostream* os) : os_(os) {}

  bool attached() const { return os_ != nullptr; }

  /// Writes `line` + '\n' and flushes. Returns false when the write
  /// faulted (absorbed: the stream's failbit is cleared and the sink stays
  /// usable for the next record).
  bool write(const std::string& line);

  /// Faults absorbed so far.
  int faults() const { return faults_.load(std::memory_order_relaxed); }

 private:
  std::ostream* os_;
  std::mutex mu_;
  std::atomic<int> faults_{0};
};

struct BatchSummary {
  std::vector<BatchRecord> records;  // one per job, in manifest order
  int completed = 0;
  int failed = 0;    // parse/flow errors (every quarantined circuit is here)
  int skipped = 0;   // cancelled before starting
  int cache_hits = 0;
  int retries = 0;       // extra attempts across all circuits
  int quarantined = 0;   // circuits that failed every attempt
  /// Names of the quarantined circuits, in manifest order — the poison list
  /// a wrapping service should exclude from resubmission.
  std::vector<std::string> poisoned;
  /// JSONL sink write failures absorbed (the record still lands in
  /// `records`; the sink's failbit is cleared and the batch continues).
  int jsonl_write_faults = 0;
  double seconds = 0.0;  // batch wall time
};

/// Runs every job over the shared pool. `jsonl` (optional) receives one
/// batch_record_json line per circuit, in completion order, as each
/// finishes; the summary keeps manifest order.
BatchSummary run_batch(const std::vector<BatchJob>& jobs, const BatchOptions& options,
                       std::ostream* jsonl = nullptr);

}  // namespace turbosyn
