#include "service/mapping_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string_view>
#include <utility>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/flow_cli.hpp"
#include "base/json_util.hpp"
#include "netlist/canonical.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

ParsedLine protocol_error(std::string message) {
  ParsedLine out;
  out.kind = ParsedLine::Kind::kError;
  out.error = std::move(message);
  return out;
}

}  // namespace

ParsedLine parse_protocol_line(const std::string& line) {
  const std::string_view s = trim(line);
  if (s.empty()) return protocol_error("empty request line");

  if (s[0] != '{') {
    // Bare verbs: STATS | PING | SHUTDOWN | CANCEL <id>.
    const std::size_t space = s.find(' ');
    const std::string_view verb = s.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : trim(s.substr(space + 1));
    ParsedLine out;
    if (verb == "STATS" && rest.empty()) {
      out.kind = ParsedLine::Kind::kStats;
      return out;
    }
    if (verb == "PING" && rest.empty()) {
      out.kind = ParsedLine::Kind::kPing;
      return out;
    }
    if (verb == "SHUTDOWN" && rest.empty()) {
      out.kind = ParsedLine::Kind::kShutdown;
      return out;
    }
    if (verb == "CANCEL") {
      long long id = 0;
      if (!parse_int_strict(rest, 0, std::numeric_limits<long long>::max() / 2, id)) {
        return protocol_error("CANCEL expects a non-negative integer id, got '" +
                              std::string(rest) + "'");
      }
      out.cancel_id = id;
      out.kind = ParsedLine::Kind::kCancel;
      return out;
    }
    return protocol_error("unknown verb '" + std::string(verb) +
                          "' (expected STATS, PING, CANCEL <id>, SHUTDOWN, or a JSON "
                          "request object)");
  }

  std::vector<std::pair<std::string, JsonScalar>> fields;
  std::string json_error;
  if (!parse_flat_json_object(s, fields, &json_error)) {
    return protocol_error("bad request JSON: " + json_error);
  }

  ParsedLine out;
  std::string op;
  bool has_id = false;
  for (const auto& [key, value] : fields) {
    const auto want_string = [&](std::string* into) -> bool {
      if (value.kind != JsonScalar::Kind::kString) return false;
      *into = value.text;
      return true;
    };
    if (key == "op") {
      if (!want_string(&op)) return protocol_error("field 'op': expected a string");
    } else if (key == "id") {
      long long id = 0;
      if (value.kind != JsonScalar::Kind::kNumber ||
          !parse_int_strict(value.text, 0, std::numeric_limits<long long>::max() / 2,
                            id)) {
        return protocol_error("field 'id': expected a non-negative integer, got '" +
                              value.text + "'");
      }
      out.map.id = id;
      has_id = true;
      out.cancel_id = out.map.id;
    } else if (key == "client") {
      if (!want_string(&out.map.client)) {
        return protocol_error("field 'client': expected a string");
      }
    } else if (key == "path") {
      if (!want_string(&out.map.path)) {
        return protocol_error("field 'path': expected a string");
      }
    } else if (key == "blif") {
      if (!want_string(&out.map.blif)) {
        return protocol_error("field 'blif': expected a string");
      }
    } else if (key == "flow") {
      if (value.kind != JsonScalar::Kind::kString ||
          !flow_kind_from_name(value.text, out.map.flow)) {
        return protocol_error(
            "field 'flow': expected turbomap|turbosyn|flowsyn_s|turbomap_period, got '" +
            value.text + "'");
      }
    } else if (key == "portfolio") {
      if (value.kind != JsonScalar::Kind::kString) {
        return protocol_error("field 'portfolio': expected a comma-separated engine list");
      }
      std::vector<const EngineSpec*> engines;
      if (const std::string invalid = parse_portfolio(value.text, engines);
          !invalid.empty()) {
        return protocol_error("field 'portfolio': " + invalid);
      }
      out.map.portfolio.clear();
      for (const EngineSpec* spec : engines) out.map.portfolio.push_back(spec->name);
    } else if (key == "priority") {
      if (value.kind != JsonScalar::Kind::kString ||
          (value.text != "high" && value.text != "normal")) {
        return protocol_error("field 'priority': expected \"high\" or \"normal\", got '" +
                              value.text + "'");
      }
      out.map.high_priority = value.text == "high";
    } else if (key == "k") {
      if (value.kind != JsonScalar::Kind::kNumber ||
          !parse_int_strict(value.text, 2, 32, out.map.k)) {
        return protocol_error("field 'k': expected an integer in [2, 32], got '" +
                              value.text + "'");
      }
    } else if (key == "deadline_ms") {
      long long deadline = 0;
      if (value.kind != JsonScalar::Kind::kNumber ||
          !parse_int_strict(value.text, 0, 1LL << 40, deadline)) {
        return protocol_error(
            "field 'deadline_ms': expected a non-negative integer, got '" + value.text +
            "'");
      }
      out.map.deadline_ms = deadline;
    } else {
      return protocol_error("unknown field '" + key + "'");
    }
  }

  if (op == "map") {
    if (out.map.blif.empty() && out.map.path.empty()) {
      return protocol_error("map request needs 'blif' (inline netlist) or 'path'");
    }
    out.kind = ParsedLine::Kind::kMap;
  } else if (op == "stats") {
    out.kind = ParsedLine::Kind::kStats;
  } else if (op == "ping") {
    out.kind = ParsedLine::Kind::kPing;
  } else if (op == "shutdown") {
    out.kind = ParsedLine::Kind::kShutdown;
  } else if (op == "cancel") {
    if (!has_id) return protocol_error("cancel request needs 'id'");
    out.kind = ParsedLine::Kind::kCancel;
  } else {
    return protocol_error("field 'op': expected map|stats|ping|cancel|shutdown, got '" +
                          op + "'");
  }
  return out;
}

// ---------------------------------------------------------------- queue ----

AdmissionQueue::AdmissionQueue(std::size_t max_depth, int per_client)
    : max_depth_(std::max<std::size_t>(1, max_depth)),
      per_client_(std::max(1, per_client)) {}

bool AdmissionQueue::push(Ticket ticket) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || depth_ >= max_depth_) return false;
    const std::string& client = ticket.request.client;
    auto [it, inserted] = queues_.try_emplace(client);
    if (inserted) round_robin_.push_back(client);
    const bool high = ticket.request.high_priority;
    (high ? it->second.high : it->second.normal).push_back(std::move(ticket));
    ++depth_;
    if (high) ++high_depth_;
  }
  ready_.notify_one();
  return true;
}

std::optional<AdmissionQueue::Ticket> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (closed_) return std::nullopt;
    const std::size_t n = round_robin_.size();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t idx = (rr_cursor_ + step) % n;
      const std::string& client = round_robin_[idx];
      const auto qit = queues_.find(client);
      if (qit == queues_.end() || qit->second.empty()) continue;
      if (in_flight_[client] >= per_client_) continue;
      // 3:1 weighted round-robin between this client's two bands: the high
      // sub-queue is served unless it just took three pops in a row while
      // normal work waited. One band empty hands the turn to the other
      // (serving high when normal is empty still charges the grant counter,
      // so a later normal arrival waits at most the remaining grants).
      ClientQueues& bands = qit->second;
      const bool serve_high =
          !bands.high.empty() && (bands.high_grants < 3 || bands.normal.empty());
      std::deque<Ticket>& band = serve_high ? bands.high : bands.normal;
      if (serve_high) {
        ++bands.high_grants;
        ++high_served_;
        --high_depth_;
      } else {
        bands.high_grants = 0;
        ++normal_served_;
      }
      Ticket ticket = std::move(band.front());
      band.pop_front();
      --depth_;
      ++in_flight_[client];
      running_[{client, ticket.request.id}] = ticket.cancel;
      // Resume the next scan just past the served client, so every client
      // with pending work gets a turn before anyone gets a second one.
      rr_cursor_ = (idx + 1) % n;
      return ticket;
    }
    ready_.wait(lock);
  }
}

void AdmissionQueue::complete(const std::string& client, std::int64_t id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = in_flight_.find(client);
    if (it != in_flight_.end() && it->second > 0) --it->second;
    running_.erase({client, id});
  }
  // A freed in-flight slot can make a queued ticket eligible.
  ready_.notify_all();
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::vector<AdmissionQueue::Ticket> AdmissionQueue::drain() {
  std::vector<Ticket> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [client, bands] : queues_) {
    for (Ticket& ticket : bands.high) out.push_back(std::move(ticket));
    for (Ticket& ticket : bands.normal) out.push_back(std::move(ticket));
    bands.high.clear();
    bands.normal.clear();
  }
  depth_ = 0;
  high_depth_ = 0;
  std::sort(out.begin(), out.end(),
            [](const Ticket& a, const Ticket& b) { return a.seq < b.seq; });
  return out;
}

bool AdmissionQueue::cancel(const std::string& client, std::int64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto qit = queues_.find(client); qit != queues_.end()) {
    for (std::deque<Ticket>* band : {&qit->second.high, &qit->second.normal}) {
      for (Ticket& ticket : *band) {
        if (ticket.request.id == id) {
          // The ticket stays queued: the worker that pops it observes the
          // token and reports cancelled without running, so the admission is
          // still answered by exactly one record.
          ticket.cancel->cancel();
          return true;
        }
      }
    }
  }
  if (const auto rit = running_.find({client, id}); rit != running_.end()) {
    rit->second->cancel();
    return true;
  }
  return false;
}

void AdmissionQueue::cancel_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [client, bands] : queues_) {
    for (Ticket& ticket : bands.high) ticket.cancel->cancel();
    for (Ticket& ticket : bands.normal) ticket.cancel->cancel();
  }
  for (auto& [key, token] : running_) token->cancel();
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

int AdmissionQueue::in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  int total = 0;
  for (const auto& [client, count] : in_flight_) total += count;
  return total;
}

std::int64_t AdmissionQueue::high_served() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_served_;
}

std::int64_t AdmissionQueue::normal_served() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return normal_served_;
}

std::size_t AdmissionQueue::high_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_depth_;
}

// BudgetPool lives in base/run_budget.cpp since PR 9.

// --------------------------------------------------------------- server ----

namespace {

/// Binds a Unix-domain stream listener at `path` (re-binding over a stale
/// socket file). Returns -1 with `error` set on failure.
int bind_unix_listener(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(AF_UNIX): ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = "bind/listen(" + path + "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Binds a TCP loopback listener (port 0 = ephemeral); reports the bound
/// port through `bound_port`. Returns -1 with `error` set on failure.
int bind_tcp_listener(int port, int* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(AF_INET): ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = "bind/listen(127.0.0.1:" + std::to_string(port) +
             "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

BatchRecord request_shell_record(const MapRequest& request, const std::string& display_path) {
  BatchRecord record;
  record.name = request.client + "#" + std::to_string(request.id);
  record.path = display_path;
  record.flow = request.flow;
  record.k = request.k;
  return record;
}

}  // namespace

MappingServer::MappingServer(MappingServerOptions options) : options_(std::move(options)) {
  queue_ = std::make_unique<AdmissionQueue>(options_.max_queue,
                                            options_.per_client_in_flight);
  pool_ = std::make_unique<BudgetPool>(options_.global_budget_ms,
                                       options_.per_request_deadline_ms);
  sink_ = std::make_unique<JsonlSink>(options_.jsonl);
}

MappingServer::~MappingServer() {
  request_shutdown();
  wait();
}

std::string MappingServer::poison_key(const MapRequest& request) {
  if (!request.blif.empty()) return "blif:" + hex64(fnv1a64(request.blif));
  std::error_code ec;
  const std::filesystem::path canonical = std::filesystem::weakly_canonical(request.path, ec);
  return "path:" + (ec ? request.path : canonical.string());
}

std::int64_t MappingServer::jsonl_faults() const { return sink_->faults(); }

void MappingServer::start() {
  TS_CHECK(!started_.exchange(true), "MappingServer::start() called twice");
  TS_CHECK(!options_.socket_path.empty() || options_.tcp_port >= 0,
           "MappingServer needs a unix socket path or a TCP port");
  std::string error;
  if (!options_.socket_path.empty()) {
    const int fd = bind_unix_listener(options_.socket_path, &error);
    TS_CHECK(fd >= 0, error);
    listen_fds_.push_back(fd);
  }
  if (options_.tcp_port >= 0) {
    const int fd = bind_tcp_listener(options_.tcp_port, &tcp_port_bound_, &error);
    if (fd < 0) {
      for (const int open_fd : listen_fds_) ::close(open_fd);
      listen_fds_.clear();
      throw Error(error);
    }
    listen_fds_.push_back(fd);
  }
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  const int workers = std::max(1, options_.workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  monitor_ = std::thread([this] { monitor_loop(); });
  if (options_.http_port >= 0) {
    HttpEndpoint::Handlers handlers;
    handlers.metrics = [this] { return render_prometheus(snapshot()); };
    handlers.ready = [this] { return !draining_.load(std::memory_order_relaxed); };
    handlers.trace = [this](std::uint64_t seq) { return trace_json(seq); };
    http_ = std::make_unique<HttpEndpoint>(options_.http_port, std::move(handlers));
    try {
      http_->start();
    } catch (...) {
      // The line protocol is already live; unwind it before rethrowing so
      // the caller never sees a half-started server.
      http_.reset();
      request_shutdown();
      wait();
      throw;
    }
  }
}

int MappingServer::port() const { return tcp_port_bound_; }

int MappingServer::http_port() const { return http_ != nullptr ? http_->port() : -1; }

bool MappingServer::draining() const { return draining_.load(std::memory_order_relaxed); }

void MappingServer::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (drain) or fatally broken
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(conn_mu_);
      conn->id = next_connection_id_++;
      conn->default_client = "conn-" + std::to_string(conn->id);
      connections_[conn->id] = conn;
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void MappingServer::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      handle_line(conn, buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    // A flood of unterminated bytes is a broken or hostile peer, not a
    // request. 64 MiB comfortably fits any realistic inline netlist.
    if (buffer.size() > (std::size_t{64} << 20)) break;
  }
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->open = false;
  ::close(conn->fd);
  conn->fd = -1;
}

void MappingServer::send_reply(const std::shared_ptr<Connection>& conn,
                               const std::string& line) {
  if (conn == nullptr) return;
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open || conn->fd < 0) return;
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(conn->fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn->open = false;  // the peer is gone; records still reach the JSONL
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::shared_ptr<MappingServer::Connection> MappingServer::connection(int id) const {
  const std::lock_guard<std::mutex> lock(conn_mu_);
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : it->second;
}

void MappingServer::handle_line(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  if (trim(line).empty()) return;  // blank keep-alives are not errors
  ParsedLine parsed = parse_protocol_line(line);
  switch (parsed.kind) {
    case ParsedLine::Kind::kError: {
      std::string reply = "{\"reply\":\"error\",\"error\":";
      json_append_string(reply, parsed.error);
      reply += "}";
      send_reply(conn, reply);
      return;
    }
    case ParsedLine::Kind::kPing:
      send_reply(conn, "{\"reply\":\"pong\"}");
      return;
    case ParsedLine::Kind::kStats:
      send_reply(conn, stats_json());
      return;
    case ParsedLine::Kind::kShutdown:
      send_reply(conn, "{\"reply\":\"shutdown\",\"draining\":true}");
      request_shutdown();
      return;
    case ParsedLine::Kind::kCancel: {
      const std::string client =
          parsed.map.client.empty() ? conn->default_client : parsed.map.client;
      const bool found = queue_->cancel(client, parsed.cancel_id);
      std::string reply = "{\"reply\":\"cancel\",\"id\":" + std::to_string(parsed.cancel_id) +
                          ",\"found\":";
      reply += found ? "true" : "false";
      reply += "}";
      send_reply(conn, reply);
      return;
    }
    case ParsedLine::Kind::kMap:
      if (parsed.map.client.empty()) parsed.map.client = conn->default_client;
      handle_map(conn, std::move(parsed.map));
      return;
  }
}

void MappingServer::handle_map(const std::shared_ptr<Connection>& conn,
                               MapRequest request) {
  const std::string key = poison_key(request);
  {
    const std::lock_guard<std::mutex> lock(poison_mu_);
    if (poison_.count(key) > 0) {
      // Resubmission of a quarantined circuit: answered immediately, never
      // re-run — the whole point of the poison list.
      poison_blocked_.fetch_add(1, std::memory_order_relaxed);
      BatchRecord record = request_shell_record(
          request, request.blif.empty() ? request.path : key);
      record.status = Status::kFailed;
      record.quarantined = true;
      record.attempts = 0;
      record.error = "circuit is quarantined (failed deterministically in an earlier run)";
      AdmissionQueue::Ticket shell;
      shell.request = request;
      shell.connection = conn != nullptr ? conn->id : -1;
      emit_record(shell, record);
      return;
    }
  }
  if (draining_.load(std::memory_order_relaxed)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::string reply = "{\"reply\":\"error\",\"id\":" + std::to_string(request.id) +
                        ",\"error\":\"server is draining\"}";
    send_reply(conn, reply);
    return;
  }
  AdmissionQueue::Ticket ticket;
  ticket.request = std::move(request);
  ticket.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ticket.connection = conn != nullptr ? conn->id : -1;
  ticket.cancel = std::make_shared<CancelToken>();
  const std::int64_t id = ticket.request.id;
  if (!queue_->push(std::move(ticket))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::string reply = "{\"reply\":\"error\",\"id\":" + std::to_string(id) +
                        ",\"error\":\"admission queue is full\"}";
    send_reply(conn, reply);
    return;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  std::string reply = "{\"reply\":\"queued\",\"id\":" + std::to_string(id) +
                      ",\"queue_depth\":" + std::to_string(queue_->depth()) + "}";
  send_reply(conn, reply);
}

void MappingServer::worker_loop() {
  while (std::optional<AdmissionQueue::Ticket> ticket = queue_->pop()) {
    const std::string client = ticket->request.client;
    const std::int64_t id = ticket->request.id;
    run_ticket(std::move(*ticket));
    queue_->complete(client, id);
  }
}

void MappingServer::run_ticket(AdmissionQueue::Ticket ticket) {
  const MapRequest& request = ticket.request;
  const std::string key = poison_key(request);
  const std::string display_path =
      request.blif.empty() ? request.path : "blif:" + hex64(fnv1a64(request.blif));

  if (ticket.cancel->cancelled()) {
    // Cancelled while queued (CANCEL verb or drain): one honest record,
    // zero compute.
    BatchRecord record = request_shell_record(request, display_path);
    record.skipped = true;
    record.status = Status::kCancelled;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    emit_record(ticket, record);
    return;
  }

  BatchJob job;
  job.name = request.client + "#" + std::to_string(request.id);
  job.path = display_path;
  job.blif = request.blif;
  job.flow = request.flow;
  job.portfolio = request.portfolio;
  job.k = request.k;

  BatchOptions options;
  options.flow = options_.flow;
  options.cache = options_.cache;
  options.max_attempts = options_.max_attempts;
  options.retry_backoff_ms = options_.retry_backoff_ms;
  options.cancel = ticket.cancel.get();
  const std::int64_t slice_ms = pool_->carve(request.deadline_ms);
  options.per_circuit_deadline_ms = slice_ms;

  // Per-request trace handle: with the ring enabled, this request runs
  // against its own sink so its span tree is retrievable in isolation via
  // /trace/<seq> — the shared options_.flow.trace sink (if any) is NOT also
  // fed, or every span would be double-counted in the merged totals.
  std::unique_ptr<TraceSink> request_trace;
  if (options_.trace_ring_entries > 0) {
    request_trace = std::make_unique<TraceSink>();
    options.flow.trace = request_trace.get();
  }

  const auto start = Clock::now();
  int retries = 0;
  BatchRecord record = run_supervised_job(job, options, &retries);
  retries_.fetch_add(retries, std::memory_order_relaxed);
  const auto used_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  pool_->refund(slice_ms, used_ms);

  if (record.quarantined) {
    const std::lock_guard<std::mutex> lock(poison_mu_);
    poison_.insert(key);
  }
  if (record.skipped || record.status == Status::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (record.ok && record.status != Status::kFailed) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    total_probes_ += record.probes;
    imported_probes_ += record.imported_probes;
    flow_seconds_ += record.seconds;
    for (const StageMetric& stage : record.stage_metrics.stages) {
      stage_seconds_[stage.name] += stage.seconds;
      stage_runs_[stage.name] += 1;
    }
    if (!record.engine.empty()) {
      ++portfolio_runs_;
      ++portfolio_wins_[record.engine];
      // Wall time saved by sound cancellation: each cancelled engine would
      // have been allowed to run as long as the slowest finisher did.
      double slowest_finisher = 0.0;
      for (const EngineRun& row : record.portfolio) {
        if (!row.cancelled && row.status != Status::kCancelled) {
          slowest_finisher = std::max(slowest_finisher, row.seconds);
        }
      }
      for (const EngineRun& row : record.portfolio) {
        if (!row.cancelled) continue;
        ++portfolio_cancelled_engines_;
        portfolio_saved_seconds_ += std::max(0.0, slowest_finisher - row.seconds);
      }
    }
  }
  if (request_trace != nullptr) store_trace(ticket.seq, *request_trace);
  emit_record(ticket, record, request_trace != nullptr);
}

void MappingServer::store_trace(std::uint64_t seq, const TraceSink& sink) {
  std::string json = sink.to_json();
  const std::lock_guard<std::mutex> lock(trace_mu_);
  // Totals survive eviction: the aggregate view (STATS "trace", /metrics
  // ts_trace_counter_total) covers every request ever traced, while the
  // ring bounds only the retrievable span trees.
  for (const auto& [name, value] : sink.totals()) trace_totals_[name] += value;
  if (json.size() > options_.trace_ring_bytes) return;  // would evict everything
  trace_ring_bytes_now_ += json.size();
  trace_ring_.push_back(TraceHandle{seq, std::move(json)});
  ++traces_stored_;
  while (trace_ring_.size() > options_.trace_ring_entries ||
         trace_ring_bytes_now_ > options_.trace_ring_bytes) {
    trace_ring_bytes_now_ -= trace_ring_.front().json.size();
    trace_ring_.pop_front();
    ++traces_evicted_;
  }
}

std::string MappingServer::trace_json(std::uint64_t seq) const {
  const std::lock_guard<std::mutex> lock(trace_mu_);
  for (const TraceHandle& handle : trace_ring_) {
    if (handle.seq == seq) return handle.json;
  }
  return {};
}

void MappingServer::emit_record(const AdmissionQueue::Ticket& ticket,
                                const BatchRecord& record, bool traced) {
  const std::string body = batch_record_json(record);  // "{...}"
  // The trace handle (when this request ran under the ring) rides in both
  // envelopes: "trace":<seq> is what a client quotes back to /trace/<seq>.
  const std::string trace_field =
      traced ? ",\"trace\":" + std::to_string(ticket.seq) : std::string();
  // The JSONL record and the wire reply share the record body byte for
  // byte; only the envelope differs.
  std::string jsonl_line = "{\"seq\":" + std::to_string(ticket.seq) +
                           ",\"id\":" + std::to_string(ticket.request.id) +
                           ",\"client\":";
  json_append_string(jsonl_line, ticket.request.client);
  jsonl_line += trace_field;
  jsonl_line += ",";
  jsonl_line += body.substr(1);
  sink_->write(jsonl_line);

  std::string reply = "{\"reply\":\"result\",\"id\":" + std::to_string(ticket.request.id) +
                      ",\"client\":";
  json_append_string(reply, ticket.request.client);
  reply += trace_field;
  reply += ",";
  reply += body.substr(1);
  send_reply(connection(ticket.connection), reply);
}

void MappingServer::monitor_loop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    if (options_.external_shutdown != nullptr && options_.external_shutdown->cancelled()) {
      request_shutdown();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void MappingServer::request_shutdown() {
  if (draining_.exchange(true)) return;
  if (!started_.load(std::memory_order_relaxed)) return;
  // 1. Stop the intake: closed listeners end the accept loops, a closed
  //    queue ends the workers once their current request finishes.
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  // 2. Cancel everything queued or running — running flows wind down to
  //    best-so-far under their budgets' cancel checks.
  queue_->cancel_all();
  queue_->close();
  // 3. Every still-queued admission gets its record now: the JSONL stream
  //    stays complete across the drain (the fork drill asserts exactly
  //    this), and connected clients hear why their request ended.
  for (AdmissionQueue::Ticket& ticket : queue_->drain()) {
    BatchRecord record = request_shell_record(
        ticket.request, ticket.request.blif.empty()
                            ? ticket.request.path
                            : "blif:" + hex64(fnv1a64(ticket.request.blif)));
    record.skipped = true;
    record.status = Status::kCancelled;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    emit_record(ticket, record);
  }
}

void MappingServer::wait() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (drained_.exchange(true)) return;
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (monitor_.joinable()) monitor_.join();
  // Readers block in read(): shut the sockets down to unblock them, then
  // join. The fds themselves are closed by each reader as it exits.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : connections_) conns.push_back(conn);
  }
  for (const auto& conn : conns) {
    const std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
  // The HTTP endpoint goes down last: /healthz keeps answering 503 through
  // the whole drain (that flip is what a readiness probe watches for) and
  // /trace stays fetchable until every record has been emitted.
  if (http_ != nullptr) http_->stop();
}

StatsSnapshot MappingServer::snapshot() const {
  StatsSnapshot snap;
  snap.admitted = admitted();
  snap.completed = completed();
  snap.failed = failed();
  snap.cancelled = cancelled();
  snap.rejected = rejected();
  snap.poison_blocked = poison_blocked();
  snap.retries = retries_.load(std::memory_order_relaxed);
  snap.queue_depth = static_cast<std::int64_t>(queue_->depth());
  snap.in_flight = queue_->in_flight();
  snap.high_queued = static_cast<std::int64_t>(queue_->high_depth());
  snap.high_served = queue_->high_served();
  snap.normal_served = queue_->normal_served();
  snap.workers = std::max(1, options_.workers);
  snap.draining = draining();
  snap.jsonl_faults = jsonl_faults();
  snap.budget_total_ms = pool_->total();
  snap.budget_remaining_ms = pool_->remaining();
  if (options_.cache != nullptr) {
    const FlowCache& cache = *options_.cache;
    snap.has_cache = true;
    snap.cache_hits = cache.hits();
    snap.cache_misses = cache.misses();
    snap.cache_stores = cache.stores();
    snap.cache_rejects = cache.rejects();
    snap.cache_near_hits = cache.near_hits();
    snap.cache_recovered_entries = cache.recovered_entries();
    snap.cache_recovered_tmp = cache.recovered_tmp();
    snap.cache_recovered_sidecars = cache.recovered_sidecars();
    snap.cache_store_retries = cache.retries();
    snap.hot_hits = cache.hot_hits();
    snap.hot_evictions = cache.hot_evictions();
    snap.hot_cost_evictions = cache.hot_cost_evictions();
    snap.hot_cost_retained_seconds = cache.hot_cost_retained_seconds();
    snap.hot_entries = cache.hot_entries();
    snap.hot_bytes = cache.hot_bytes();
    snap.hot_policy = hot_policy_name(cache.hot_policy());
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    snap.portfolio_runs = portfolio_runs_;
    snap.portfolio_cancelled_engines = portfolio_cancelled_engines_;
    snap.portfolio_saved_seconds = portfolio_saved_seconds_;
    snap.portfolio_wins = portfolio_wins_;
    snap.total_probes = total_probes_;
    snap.imported_probes = imported_probes_;
    snap.flow_seconds = flow_seconds_;
    for (const auto& [name, seconds] : stage_seconds_) {
      const auto runs = stage_runs_.find(name);
      snap.stages[name] =
          StatsSnapshot::StageStat{seconds, runs == stage_runs_.end() ? 0 : runs->second};
    }
  }
  for (const auto& [site, count] : failpoint::trigger_counts()) {
    snap.failpoints[site] = count;
  }
  // Trace totals: the shared sink (ring disabled) and the accumulated
  // per-request totals (ring enabled) merge into one view — exactly one of
  // the two sources is populated for any given request.
  if (options_.flow.trace != nullptr) {
    snap.has_trace = true;
    snap.trace_totals = options_.flow.trace->totals();
  }
  {
    const std::lock_guard<std::mutex> lock(trace_mu_);
    if (options_.trace_ring_entries > 0) {
      snap.has_trace = true;
      snap.has_trace_ring = true;
      for (const auto& [name, value] : trace_totals_) snap.trace_totals[name] += value;
      snap.traces_stored = traces_stored_;
      snap.traces_evicted = traces_evicted_;
      snap.trace_ring_entries = static_cast<std::int64_t>(trace_ring_.size());
      snap.trace_ring_bytes = static_cast<std::int64_t>(trace_ring_bytes_now_);
    }
  }
  return snap;
}

std::string MappingServer::stats_json() const { return render_stats_json(snapshot()); }

std::string render_stats_json(const StatsSnapshot& snap) {
  std::string s = "{\"reply\":\"stats\",\"server\":{";
  s += "\"admitted\":" + std::to_string(snap.admitted);
  s += ",\"completed\":" + std::to_string(snap.completed);
  s += ",\"failed\":" + std::to_string(snap.failed);
  s += ",\"cancelled\":" + std::to_string(snap.cancelled);
  s += ",\"rejected\":" + std::to_string(snap.rejected);
  s += ",\"poison_blocked\":" + std::to_string(snap.poison_blocked);
  s += ",\"retries\":" + std::to_string(snap.retries);
  s += ",\"queue_depth\":" + std::to_string(snap.queue_depth);
  s += ",\"in_flight\":" + std::to_string(snap.in_flight);
  s += ",\"high_queued\":" + std::to_string(snap.high_queued);
  s += ",\"high_served\":" + std::to_string(snap.high_served);
  s += ",\"normal_served\":" + std::to_string(snap.normal_served);
  s += ",\"workers\":" + std::to_string(snap.workers);
  s += ",\"draining\":";
  s += snap.draining ? "true" : "false";
  s += ",\"jsonl_faults\":" + std::to_string(snap.jsonl_faults);
  s += "},\"budget\":{\"total_ms\":" + std::to_string(snap.budget_total_ms);
  s += ",\"remaining_ms\":" + std::to_string(snap.budget_remaining_ms);
  s += "}";
  if (snap.has_cache) {
    s += ",\"cache\":{";
    s += "\"hits\":" + std::to_string(snap.cache_hits);
    s += ",\"misses\":" + std::to_string(snap.cache_misses);
    s += ",\"stores\":" + std::to_string(snap.cache_stores);
    s += ",\"rejects\":" + std::to_string(snap.cache_rejects);
    s += ",\"near_hits\":" + std::to_string(snap.cache_near_hits);
    s += ",\"recovered_entries\":" + std::to_string(snap.cache_recovered_entries);
    s += ",\"recovered_tmp\":" + std::to_string(snap.cache_recovered_tmp);
    s += ",\"recovered_sidecars\":" + std::to_string(snap.cache_recovered_sidecars);
    s += ",\"store_retries\":" + std::to_string(snap.cache_store_retries);
    s += ",\"hot_hits\":" + std::to_string(snap.hot_hits);
    s += ",\"hot_evictions\":" + std::to_string(snap.hot_evictions);
    s += ",\"hot_cost_evictions\":" + std::to_string(snap.hot_cost_evictions);
    s += ",\"hot_cost_retained_seconds\":" + json_double(snap.hot_cost_retained_seconds);
    s += ",\"hot_entries\":" + std::to_string(snap.hot_entries);
    s += ",\"hot_bytes\":" + std::to_string(snap.hot_bytes);
    s += ",\"hot_policy\":";
    json_append_string(s, snap.hot_policy);
    s += "}";
  }
  s += ",\"portfolio\":{\"runs\":" + std::to_string(snap.portfolio_runs);
  s += ",\"cancelled_engines\":" + std::to_string(snap.portfolio_cancelled_engines);
  s += ",\"cancelled_wall_saved_seconds\":" + json_double(snap.portfolio_saved_seconds);
  s += ",\"wins\":{";
  bool first_win = true;
  for (const auto& [engine, wins] : snap.portfolio_wins) {
    if (!first_win) s += ",";
    first_win = false;
    json_append_string(s, engine);
    s += ":" + std::to_string(wins);
  }
  s += "}}";
  s += ",\"ledger\":{\"probes\":" + std::to_string(snap.total_probes);
  s += ",\"imported_probes\":" + std::to_string(snap.imported_probes);
  s += "},\"flow_seconds\":" + json_double(snap.flow_seconds);
  s += ",\"stages\":{";
  bool first = true;
  for (const auto& [name, stage] : snap.stages) {
    if (!first) s += ",";
    first = false;
    json_append_string(s, name);
    s += ":{\"seconds\":" + json_double(stage.seconds);
    s += ",\"runs\":" + std::to_string(stage.runs) + "}";
  }
  s += "}";
  s += ",\"failpoints\":{";
  first = true;
  for (const auto& [site, count] : snap.failpoints) {
    if (!first) s += ",";
    first = false;
    json_append_string(s, site);
    s += ":" + std::to_string(count);
  }
  s += "}";
  if (snap.has_trace) {
    s += ",\"trace\":{";
    first = true;
    for (const auto& [name, value] : snap.trace_totals) {
      if (!first) s += ",";
      first = false;
      json_append_string(s, name);
      s += ":" + std::to_string(value);
    }
    s += "}";
  }
  if (snap.has_trace_ring) {
    s += ",\"trace_ring\":{\"stored\":" + std::to_string(snap.traces_stored);
    s += ",\"evicted\":" + std::to_string(snap.traces_evicted);
    s += ",\"entries\":" + std::to_string(snap.trace_ring_entries);
    s += ",\"bytes\":" + std::to_string(snap.trace_ring_bytes);
    s += "}";
  }
  s += "}";
  return s;
}

namespace {

/// One exposition family: # HELP, # TYPE, then the sample line(s). The
/// emitters below guarantee promlint.py's invariants by construction —
/// every family declared exactly once, counters suffixed _total, samples
/// immediately after their TYPE line.
void prom_family(std::string& out, const char* name, const char* help, const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void prom_sample(std::string& out, const char* name, std::int64_t value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void prom_sample(std::string& out, const char* name, double value) {
  out += name;
  out += ' ';
  out += json_double(value);
  out += '\n';
}

void prom_counter(std::string& out, const char* name, const char* help,
                  std::int64_t value) {
  prom_family(out, name, help, "counter");
  prom_sample(out, name, value);
}

void prom_gauge(std::string& out, const char* name, const char* help, std::int64_t value) {
  prom_family(out, name, help, "gauge");
  prom_sample(out, name, value);
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string prom_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_prometheus(const StatsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  prom_counter(out, "ts_server_admitted_total", "Requests admitted to the queue.",
               snap.admitted);
  prom_counter(out, "ts_server_completed_total", "Requests finished successfully.",
               snap.completed);
  prom_counter(out, "ts_server_failed_total", "Requests that failed or quarantined.",
               snap.failed);
  prom_counter(out, "ts_server_cancelled_total", "Requests cancelled or drained.",
               snap.cancelled);
  prom_counter(out, "ts_server_rejected_total",
               "Requests rejected at admission (full queue or draining).", snap.rejected);
  prom_counter(out, "ts_server_poison_blocked_total",
               "Resubmissions of quarantined circuits answered without running.",
               snap.poison_blocked);
  prom_counter(out, "ts_server_retries_total",
               "Supervised attempt retries across all requests.", snap.retries);
  prom_gauge(out, "ts_server_workers", "Configured worker lanes.", snap.workers);
  prom_gauge(out, "ts_server_draining",
             "1 while the graceful drain is in progress, else 0.",
             snap.draining ? 1 : 0);
  prom_counter(out, "ts_server_jsonl_faults_total",
               "JSONL sink write faults absorbed.", snap.jsonl_faults);
  prom_gauge(out, "ts_queue_depth", "Tickets queued, not yet popped.", snap.queue_depth);
  prom_gauge(out, "ts_queue_in_flight", "Tickets popped and running.", snap.in_flight);
  prom_gauge(out, "ts_queue_high_depth", "Queued high-priority tickets.",
             snap.high_queued);
  prom_counter(out, "ts_queue_high_served_total",
               "Tickets served from high-priority sub-queues.", snap.high_served);
  prom_counter(out, "ts_queue_normal_served_total",
               "Tickets served from normal sub-queues.", snap.normal_served);
  prom_gauge(out, "ts_budget_total_ms", "Global budget pool size (0 = unlimited).",
             snap.budget_total_ms);
  prom_gauge(out, "ts_budget_remaining_ms", "Budget pool milliseconds left.",
             snap.budget_remaining_ms);

  if (snap.has_cache) {
    prom_counter(out, "ts_cache_hits_total", "FlowCache lookup hits.", snap.cache_hits);
    prom_counter(out, "ts_cache_misses_total", "FlowCache lookup misses.",
                 snap.cache_misses);
    prom_counter(out, "ts_cache_stores_total", "Entries persisted.", snap.cache_stores);
    prom_counter(out, "ts_cache_rejects_total",
                 "Unstorable (quarantined/degraded) results refused.", snap.cache_rejects);
    prom_counter(out, "ts_cache_near_hits_total", "Near-miss warm-start donors served.",
                 snap.cache_near_hits);
    prom_counter(out, "ts_cache_recovered_entries_total",
                 "Torn or corrupt entries detected and absorbed.",
                 snap.cache_recovered_entries);
    prom_counter(out, "ts_cache_recovered_tmp_total",
                 "Stray tmp files garbage-collected.", snap.cache_recovered_tmp);
    prom_counter(out, "ts_cache_recovered_sidecars_total",
                 "Near-miss sidecars dropped.", snap.cache_recovered_sidecars);
    prom_counter(out, "ts_cache_store_retries_total",
                 "Store attempts re-run after transient failures.",
                 snap.cache_store_retries);
    prom_counter(out, "ts_cache_hot_hits_total",
                 "Hits served from the in-memory hot tier.", snap.hot_hits);
    prom_counter(out, "ts_cache_hot_evictions_total", "Hot-tier entries evicted.",
                 snap.hot_evictions);
    prom_counter(out, "ts_cache_hot_cost_evictions_total",
                 "Evictions where the cost-aware score overrode LRU order.",
                 snap.hot_cost_evictions);
    prom_family(out, "ts_cache_hot_cost_retained_seconds_total",
                "Flow wall seconds kept resident by cost-aware eviction.", "counter");
    prom_sample(out, "ts_cache_hot_cost_retained_seconds_total",
                snap.hot_cost_retained_seconds);
    prom_gauge(out, "ts_cache_hot_entries", "Hot-tier entries resident.",
               snap.hot_entries);
    prom_gauge(out, "ts_cache_hot_bytes", "Hot-tier estimated resident bytes.",
               snap.hot_bytes);
    prom_family(out, "ts_cache_hot_policy",
                "Active hot-tier eviction policy (1 on the active label).", "gauge");
    out += "ts_cache_hot_policy{policy=\"" + prom_label_escape(snap.hot_policy) +
           "\"} 1\n";
  }

  prom_counter(out, "ts_portfolio_runs_total", "Portfolio races finished.",
               snap.portfolio_runs);
  prom_counter(out, "ts_portfolio_cancelled_engines_total",
               "Engine lanes cancelled by a sound first certificate.",
               snap.portfolio_cancelled_engines);
  prom_family(out, "ts_portfolio_cancelled_wall_saved_seconds_total",
              "Wall seconds saved by cancelling provably-lost engines.", "counter");
  prom_sample(out, "ts_portfolio_cancelled_wall_saved_seconds_total",
              snap.portfolio_saved_seconds);
  prom_family(out, "ts_portfolio_wins_total", "Races won, per engine.", "counter");
  for (const auto& [engine, wins] : snap.portfolio_wins) {
    out += "ts_portfolio_wins_total{engine=\"" + prom_label_escape(engine) + "\"} " +
           std::to_string(wins) + '\n';
  }
  prom_counter(out, "ts_ledger_probes_total", "Probe-ledger records across requests.",
               snap.total_probes);
  prom_counter(out, "ts_ledger_imported_probes_total",
               "Ledger records imported from cache replays.", snap.imported_probes);
  prom_family(out, "ts_flow_seconds_total", "Flow wall seconds across requests.",
              "counter");
  prom_sample(out, "ts_flow_seconds_total", snap.flow_seconds);
  prom_family(out, "ts_stage_seconds_total", "Stage wall seconds, per stage.", "counter");
  for (const auto& [name, stage] : snap.stages) {
    out += "ts_stage_seconds_total{stage=\"" + prom_label_escape(name) + "\"} " +
           json_double(stage.seconds) + '\n';
  }
  prom_family(out, "ts_stage_runs_total", "Stage executions, per stage.", "counter");
  for (const auto& [name, stage] : snap.stages) {
    out += "ts_stage_runs_total{stage=\"" + prom_label_escape(name) + "\"} " +
           std::to_string(stage.runs) + '\n';
  }
  prom_family(out, "ts_failpoint_triggers_total", "Failpoint triggers, per site.",
              "counter");
  for (const auto& [site, count] : snap.failpoints) {
    out += "ts_failpoint_triggers_total{site=\"" + prom_label_escape(site) + "\"} " +
           std::to_string(count) + '\n';
  }
  if (snap.has_trace) {
    prom_family(out, "ts_trace_counter_total", "Trace counter totals, per counter name.",
                "counter");
    for (const auto& [name, value] : snap.trace_totals) {
      out += "ts_trace_counter_total{counter=\"" + prom_label_escape(name) + "\"} " +
             std::to_string(value) + '\n';
    }
  }
  if (snap.has_trace_ring) {
    prom_counter(out, "ts_trace_ring_stored_total",
                 "Per-request traces stored in the ring.", snap.traces_stored);
    prom_counter(out, "ts_trace_ring_evicted_total",
                 "Per-request traces evicted from the ring.", snap.traces_evicted);
    prom_gauge(out, "ts_trace_ring_entries", "Traces currently resident.",
               snap.trace_ring_entries);
    prom_gauge(out, "ts_trace_ring_bytes", "Bytes of trace JSON resident.",
               snap.trace_ring_bytes);
  }
  return out;
}

}  // namespace turbosyn
