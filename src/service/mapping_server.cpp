#include "service/mapping_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string_view>
#include <utility>

#include "base/check.hpp"
#include "base/failpoint.hpp"
#include "base/flow_cli.hpp"
#include "base/json_util.hpp"
#include "netlist/canonical.hpp"

namespace turbosyn {
namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(value));
  return std::string(buf);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

ParsedLine protocol_error(std::string message) {
  ParsedLine out;
  out.kind = ParsedLine::Kind::kError;
  out.error = std::move(message);
  return out;
}

}  // namespace

ParsedLine parse_protocol_line(const std::string& line) {
  const std::string_view s = trim(line);
  if (s.empty()) return protocol_error("empty request line");

  if (s[0] != '{') {
    // Bare verbs: STATS | PING | SHUTDOWN | CANCEL <id>.
    const std::size_t space = s.find(' ');
    const std::string_view verb = s.substr(0, space);
    const std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : trim(s.substr(space + 1));
    ParsedLine out;
    if (verb == "STATS" && rest.empty()) {
      out.kind = ParsedLine::Kind::kStats;
      return out;
    }
    if (verb == "PING" && rest.empty()) {
      out.kind = ParsedLine::Kind::kPing;
      return out;
    }
    if (verb == "SHUTDOWN" && rest.empty()) {
      out.kind = ParsedLine::Kind::kShutdown;
      return out;
    }
    if (verb == "CANCEL") {
      long long id = 0;
      if (!parse_int_strict(rest, 0, std::numeric_limits<long long>::max() / 2, id)) {
        return protocol_error("CANCEL expects a non-negative integer id, got '" +
                              std::string(rest) + "'");
      }
      out.cancel_id = id;
      out.kind = ParsedLine::Kind::kCancel;
      return out;
    }
    return protocol_error("unknown verb '" + std::string(verb) +
                          "' (expected STATS, PING, CANCEL <id>, SHUTDOWN, or a JSON "
                          "request object)");
  }

  std::vector<std::pair<std::string, JsonScalar>> fields;
  std::string json_error;
  if (!parse_flat_json_object(s, fields, &json_error)) {
    return protocol_error("bad request JSON: " + json_error);
  }

  ParsedLine out;
  std::string op;
  bool has_id = false;
  for (const auto& [key, value] : fields) {
    const auto want_string = [&](std::string* into) -> bool {
      if (value.kind != JsonScalar::Kind::kString) return false;
      *into = value.text;
      return true;
    };
    if (key == "op") {
      if (!want_string(&op)) return protocol_error("field 'op': expected a string");
    } else if (key == "id") {
      long long id = 0;
      if (value.kind != JsonScalar::Kind::kNumber ||
          !parse_int_strict(value.text, 0, std::numeric_limits<long long>::max() / 2,
                            id)) {
        return protocol_error("field 'id': expected a non-negative integer, got '" +
                              value.text + "'");
      }
      out.map.id = id;
      has_id = true;
      out.cancel_id = out.map.id;
    } else if (key == "client") {
      if (!want_string(&out.map.client)) {
        return protocol_error("field 'client': expected a string");
      }
    } else if (key == "path") {
      if (!want_string(&out.map.path)) {
        return protocol_error("field 'path': expected a string");
      }
    } else if (key == "blif") {
      if (!want_string(&out.map.blif)) {
        return protocol_error("field 'blif': expected a string");
      }
    } else if (key == "flow") {
      if (value.kind != JsonScalar::Kind::kString ||
          !flow_kind_from_name(value.text, out.map.flow)) {
        return protocol_error(
            "field 'flow': expected turbomap|turbosyn|flowsyn_s|turbomap_period, got '" +
            value.text + "'");
      }
    } else if (key == "portfolio") {
      if (value.kind != JsonScalar::Kind::kString) {
        return protocol_error("field 'portfolio': expected a comma-separated engine list");
      }
      std::vector<const EngineSpec*> engines;
      if (const std::string invalid = parse_portfolio(value.text, engines);
          !invalid.empty()) {
        return protocol_error("field 'portfolio': " + invalid);
      }
      out.map.portfolio.clear();
      for (const EngineSpec* spec : engines) out.map.portfolio.push_back(spec->name);
    } else if (key == "priority") {
      if (value.kind != JsonScalar::Kind::kString ||
          (value.text != "high" && value.text != "normal")) {
        return protocol_error("field 'priority': expected \"high\" or \"normal\", got '" +
                              value.text + "'");
      }
      out.map.high_priority = value.text == "high";
    } else if (key == "k") {
      if (value.kind != JsonScalar::Kind::kNumber ||
          !parse_int_strict(value.text, 2, 32, out.map.k)) {
        return protocol_error("field 'k': expected an integer in [2, 32], got '" +
                              value.text + "'");
      }
    } else if (key == "deadline_ms") {
      long long deadline = 0;
      if (value.kind != JsonScalar::Kind::kNumber ||
          !parse_int_strict(value.text, 0, 1LL << 40, deadline)) {
        return protocol_error(
            "field 'deadline_ms': expected a non-negative integer, got '" + value.text +
            "'");
      }
      out.map.deadline_ms = deadline;
    } else {
      return protocol_error("unknown field '" + key + "'");
    }
  }

  if (op == "map") {
    if (out.map.blif.empty() && out.map.path.empty()) {
      return protocol_error("map request needs 'blif' (inline netlist) or 'path'");
    }
    out.kind = ParsedLine::Kind::kMap;
  } else if (op == "stats") {
    out.kind = ParsedLine::Kind::kStats;
  } else if (op == "ping") {
    out.kind = ParsedLine::Kind::kPing;
  } else if (op == "shutdown") {
    out.kind = ParsedLine::Kind::kShutdown;
  } else if (op == "cancel") {
    if (!has_id) return protocol_error("cancel request needs 'id'");
    out.kind = ParsedLine::Kind::kCancel;
  } else {
    return protocol_error("field 'op': expected map|stats|ping|cancel|shutdown, got '" +
                          op + "'");
  }
  return out;
}

// ---------------------------------------------------------------- queue ----

AdmissionQueue::AdmissionQueue(std::size_t max_depth, int per_client)
    : max_depth_(std::max<std::size_t>(1, max_depth)),
      per_client_(std::max(1, per_client)) {}

bool AdmissionQueue::push(Ticket ticket) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || depth_ >= max_depth_) return false;
    const std::string& client = ticket.request.client;
    auto [it, inserted] = queues_.try_emplace(client);
    if (inserted) round_robin_.push_back(client);
    const bool high = ticket.request.high_priority;
    (high ? it->second.high : it->second.normal).push_back(std::move(ticket));
    ++depth_;
    if (high) ++high_depth_;
  }
  ready_.notify_one();
  return true;
}

std::optional<AdmissionQueue::Ticket> AdmissionQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (closed_) return std::nullopt;
    const std::size_t n = round_robin_.size();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t idx = (rr_cursor_ + step) % n;
      const std::string& client = round_robin_[idx];
      const auto qit = queues_.find(client);
      if (qit == queues_.end() || qit->second.empty()) continue;
      if (in_flight_[client] >= per_client_) continue;
      // 3:1 weighted round-robin between this client's two bands: the high
      // sub-queue is served unless it just took three pops in a row while
      // normal work waited. One band empty hands the turn to the other
      // (serving high when normal is empty still charges the grant counter,
      // so a later normal arrival waits at most the remaining grants).
      ClientQueues& bands = qit->second;
      const bool serve_high =
          !bands.high.empty() && (bands.high_grants < 3 || bands.normal.empty());
      std::deque<Ticket>& band = serve_high ? bands.high : bands.normal;
      if (serve_high) {
        ++bands.high_grants;
        ++high_served_;
        --high_depth_;
      } else {
        bands.high_grants = 0;
        ++normal_served_;
      }
      Ticket ticket = std::move(band.front());
      band.pop_front();
      --depth_;
      ++in_flight_[client];
      running_[{client, ticket.request.id}] = ticket.cancel;
      // Resume the next scan just past the served client, so every client
      // with pending work gets a turn before anyone gets a second one.
      rr_cursor_ = (idx + 1) % n;
      return ticket;
    }
    ready_.wait(lock);
  }
}

void AdmissionQueue::complete(const std::string& client, std::int64_t id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = in_flight_.find(client);
    if (it != in_flight_.end() && it->second > 0) --it->second;
    running_.erase({client, id});
  }
  // A freed in-flight slot can make a queued ticket eligible.
  ready_.notify_all();
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::vector<AdmissionQueue::Ticket> AdmissionQueue::drain() {
  std::vector<Ticket> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [client, bands] : queues_) {
    for (Ticket& ticket : bands.high) out.push_back(std::move(ticket));
    for (Ticket& ticket : bands.normal) out.push_back(std::move(ticket));
    bands.high.clear();
    bands.normal.clear();
  }
  depth_ = 0;
  high_depth_ = 0;
  std::sort(out.begin(), out.end(),
            [](const Ticket& a, const Ticket& b) { return a.seq < b.seq; });
  return out;
}

bool AdmissionQueue::cancel(const std::string& client, std::int64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto qit = queues_.find(client); qit != queues_.end()) {
    for (std::deque<Ticket>* band : {&qit->second.high, &qit->second.normal}) {
      for (Ticket& ticket : *band) {
        if (ticket.request.id == id) {
          // The ticket stays queued: the worker that pops it observes the
          // token and reports cancelled without running, so the admission is
          // still answered by exactly one record.
          ticket.cancel->cancel();
          return true;
        }
      }
    }
  }
  if (const auto rit = running_.find({client, id}); rit != running_.end()) {
    rit->second->cancel();
    return true;
  }
  return false;
}

void AdmissionQueue::cancel_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [client, bands] : queues_) {
    for (Ticket& ticket : bands.high) ticket.cancel->cancel();
    for (Ticket& ticket : bands.normal) ticket.cancel->cancel();
  }
  for (auto& [key, token] : running_) token->cancel();
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

int AdmissionQueue::in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  int total = 0;
  for (const auto& [client, count] : in_flight_) total += count;
  return total;
}

std::int64_t AdmissionQueue::high_served() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_served_;
}

std::int64_t AdmissionQueue::normal_served() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return normal_served_;
}

std::size_t AdmissionQueue::high_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_depth_;
}

// BudgetPool lives in base/run_budget.cpp since PR 9.

// --------------------------------------------------------------- server ----

namespace {

/// Binds a Unix-domain stream listener at `path` (re-binding over a stale
/// socket file). Returns -1 with `error` set on failure.
int bind_unix_listener(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(AF_UNIX): ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = "bind/listen(" + path + "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Binds a TCP loopback listener (port 0 = ephemeral); reports the bound
/// port through `bound_port`. Returns -1 with `error` set on failure.
int bind_tcp_listener(int port, int* bound_port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket(AF_INET): ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    *error = "bind/listen(127.0.0.1:" + std::to_string(port) +
             "): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

BatchRecord request_shell_record(const MapRequest& request, const std::string& display_path) {
  BatchRecord record;
  record.name = request.client + "#" + std::to_string(request.id);
  record.path = display_path;
  record.flow = request.flow;
  record.k = request.k;
  return record;
}

}  // namespace

MappingServer::MappingServer(MappingServerOptions options) : options_(std::move(options)) {
  queue_ = std::make_unique<AdmissionQueue>(options_.max_queue,
                                            options_.per_client_in_flight);
  pool_ = std::make_unique<BudgetPool>(options_.global_budget_ms,
                                       options_.per_request_deadline_ms);
  sink_ = std::make_unique<JsonlSink>(options_.jsonl);
}

MappingServer::~MappingServer() {
  request_shutdown();
  wait();
}

std::string MappingServer::poison_key(const MapRequest& request) {
  if (!request.blif.empty()) return "blif:" + hex64(fnv1a64(request.blif));
  std::error_code ec;
  const std::filesystem::path canonical = std::filesystem::weakly_canonical(request.path, ec);
  return "path:" + (ec ? request.path : canonical.string());
}

std::int64_t MappingServer::jsonl_faults() const { return sink_->faults(); }

void MappingServer::start() {
  TS_CHECK(!started_.exchange(true), "MappingServer::start() called twice");
  TS_CHECK(!options_.socket_path.empty() || options_.tcp_port >= 0,
           "MappingServer needs a unix socket path or a TCP port");
  std::string error;
  if (!options_.socket_path.empty()) {
    const int fd = bind_unix_listener(options_.socket_path, &error);
    TS_CHECK(fd >= 0, error);
    listen_fds_.push_back(fd);
  }
  if (options_.tcp_port >= 0) {
    const int fd = bind_tcp_listener(options_.tcp_port, &tcp_port_bound_, &error);
    if (fd < 0) {
      for (const int open_fd : listen_fds_) ::close(open_fd);
      listen_fds_.clear();
      throw Error(error);
    }
    listen_fds_.push_back(fd);
  }
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  const int workers = std::max(1, options_.workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

int MappingServer::port() const { return tcp_port_bound_; }

bool MappingServer::draining() const { return draining_.load(std::memory_order_relaxed); }

void MappingServer::accept_loop(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (drain) or fatally broken
    }
    if (draining_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(conn_mu_);
      conn->id = next_connection_id_++;
      conn->default_client = "conn-" + std::to_string(conn->id);
      connections_[conn->id] = conn;
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
  }
}

void MappingServer::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      handle_line(conn, buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
    // A flood of unterminated bytes is a broken or hostile peer, not a
    // request. 64 MiB comfortably fits any realistic inline netlist.
    if (buffer.size() > (std::size_t{64} << 20)) break;
  }
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->open = false;
  ::close(conn->fd);
  conn->fd = -1;
}

void MappingServer::send_reply(const std::shared_ptr<Connection>& conn,
                               const std::string& line) {
  if (conn == nullptr) return;
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open || conn->fd < 0) return;
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(conn->fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn->open = false;  // the peer is gone; records still reach the JSONL
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::shared_ptr<MappingServer::Connection> MappingServer::connection(int id) const {
  const std::lock_guard<std::mutex> lock(conn_mu_);
  const auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : it->second;
}

void MappingServer::handle_line(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  if (trim(line).empty()) return;  // blank keep-alives are not errors
  ParsedLine parsed = parse_protocol_line(line);
  switch (parsed.kind) {
    case ParsedLine::Kind::kError: {
      std::string reply = "{\"reply\":\"error\",\"error\":";
      json_append_string(reply, parsed.error);
      reply += "}";
      send_reply(conn, reply);
      return;
    }
    case ParsedLine::Kind::kPing:
      send_reply(conn, "{\"reply\":\"pong\"}");
      return;
    case ParsedLine::Kind::kStats:
      send_reply(conn, stats_json());
      return;
    case ParsedLine::Kind::kShutdown:
      send_reply(conn, "{\"reply\":\"shutdown\",\"draining\":true}");
      request_shutdown();
      return;
    case ParsedLine::Kind::kCancel: {
      const std::string client =
          parsed.map.client.empty() ? conn->default_client : parsed.map.client;
      const bool found = queue_->cancel(client, parsed.cancel_id);
      std::string reply = "{\"reply\":\"cancel\",\"id\":" + std::to_string(parsed.cancel_id) +
                          ",\"found\":";
      reply += found ? "true" : "false";
      reply += "}";
      send_reply(conn, reply);
      return;
    }
    case ParsedLine::Kind::kMap:
      if (parsed.map.client.empty()) parsed.map.client = conn->default_client;
      handle_map(conn, std::move(parsed.map));
      return;
  }
}

void MappingServer::handle_map(const std::shared_ptr<Connection>& conn,
                               MapRequest request) {
  const std::string key = poison_key(request);
  {
    const std::lock_guard<std::mutex> lock(poison_mu_);
    if (poison_.count(key) > 0) {
      // Resubmission of a quarantined circuit: answered immediately, never
      // re-run — the whole point of the poison list.
      poison_blocked_.fetch_add(1, std::memory_order_relaxed);
      BatchRecord record = request_shell_record(
          request, request.blif.empty() ? request.path : key);
      record.status = Status::kFailed;
      record.quarantined = true;
      record.attempts = 0;
      record.error = "circuit is quarantined (failed deterministically in an earlier run)";
      AdmissionQueue::Ticket shell;
      shell.request = request;
      shell.connection = conn != nullptr ? conn->id : -1;
      emit_record(shell, record);
      return;
    }
  }
  if (draining_.load(std::memory_order_relaxed)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::string reply = "{\"reply\":\"error\",\"id\":" + std::to_string(request.id) +
                        ",\"error\":\"server is draining\"}";
    send_reply(conn, reply);
    return;
  }
  AdmissionQueue::Ticket ticket;
  ticket.request = std::move(request);
  ticket.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ticket.connection = conn != nullptr ? conn->id : -1;
  ticket.cancel = std::make_shared<CancelToken>();
  const std::int64_t id = ticket.request.id;
  if (!queue_->push(std::move(ticket))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    std::string reply = "{\"reply\":\"error\",\"id\":" + std::to_string(id) +
                        ",\"error\":\"admission queue is full\"}";
    send_reply(conn, reply);
    return;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  std::string reply = "{\"reply\":\"queued\",\"id\":" + std::to_string(id) +
                      ",\"queue_depth\":" + std::to_string(queue_->depth()) + "}";
  send_reply(conn, reply);
}

void MappingServer::worker_loop() {
  while (std::optional<AdmissionQueue::Ticket> ticket = queue_->pop()) {
    const std::string client = ticket->request.client;
    const std::int64_t id = ticket->request.id;
    run_ticket(std::move(*ticket));
    queue_->complete(client, id);
  }
}

void MappingServer::run_ticket(AdmissionQueue::Ticket ticket) {
  const MapRequest& request = ticket.request;
  const std::string key = poison_key(request);
  const std::string display_path =
      request.blif.empty() ? request.path : "blif:" + hex64(fnv1a64(request.blif));

  if (ticket.cancel->cancelled()) {
    // Cancelled while queued (CANCEL verb or drain): one honest record,
    // zero compute.
    BatchRecord record = request_shell_record(request, display_path);
    record.skipped = true;
    record.status = Status::kCancelled;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    emit_record(ticket, record);
    return;
  }

  BatchJob job;
  job.name = request.client + "#" + std::to_string(request.id);
  job.path = display_path;
  job.blif = request.blif;
  job.flow = request.flow;
  job.portfolio = request.portfolio;
  job.k = request.k;

  BatchOptions options;
  options.flow = options_.flow;
  options.cache = options_.cache;
  options.max_attempts = options_.max_attempts;
  options.retry_backoff_ms = options_.retry_backoff_ms;
  options.cancel = ticket.cancel.get();
  const std::int64_t slice_ms = pool_->carve(request.deadline_ms);
  options.per_circuit_deadline_ms = slice_ms;

  const auto start = Clock::now();
  int retries = 0;
  BatchRecord record = run_supervised_job(job, options, &retries);
  retries_.fetch_add(retries, std::memory_order_relaxed);
  const auto used_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - start).count();
  pool_->refund(slice_ms, used_ms);

  if (record.quarantined) {
    const std::lock_guard<std::mutex> lock(poison_mu_);
    poison_.insert(key);
  }
  if (record.skipped || record.status == Status::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else if (record.ok && record.status != Status::kFailed) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    total_probes_ += record.probes;
    imported_probes_ += record.imported_probes;
    flow_seconds_ += record.seconds;
    for (const StageMetric& stage : record.stage_metrics.stages) {
      stage_seconds_[stage.name] += stage.seconds;
      stage_runs_[stage.name] += 1;
    }
    if (!record.engine.empty()) {
      ++portfolio_runs_;
      ++portfolio_wins_[record.engine];
      // Wall time saved by sound cancellation: each cancelled engine would
      // have been allowed to run as long as the slowest finisher did.
      double slowest_finisher = 0.0;
      for (const EngineRun& row : record.portfolio) {
        if (!row.cancelled && row.status != Status::kCancelled) {
          slowest_finisher = std::max(slowest_finisher, row.seconds);
        }
      }
      for (const EngineRun& row : record.portfolio) {
        if (!row.cancelled) continue;
        ++portfolio_cancelled_engines_;
        portfolio_saved_seconds_ += std::max(0.0, slowest_finisher - row.seconds);
      }
    }
  }
  emit_record(ticket, record);
}

void MappingServer::emit_record(const AdmissionQueue::Ticket& ticket,
                                const BatchRecord& record) {
  const std::string body = batch_record_json(record);  // "{...}"
  // The JSONL record and the wire reply share the record body byte for
  // byte; only the envelope differs.
  std::string jsonl_line = "{\"seq\":" + std::to_string(ticket.seq) +
                           ",\"id\":" + std::to_string(ticket.request.id) +
                           ",\"client\":";
  json_append_string(jsonl_line, ticket.request.client);
  jsonl_line += ",";
  jsonl_line += body.substr(1);
  sink_->write(jsonl_line);

  std::string reply = "{\"reply\":\"result\",\"id\":" + std::to_string(ticket.request.id) +
                      ",\"client\":";
  json_append_string(reply, ticket.request.client);
  reply += ",";
  reply += body.substr(1);
  send_reply(connection(ticket.connection), reply);
}

void MappingServer::monitor_loop() {
  while (!draining_.load(std::memory_order_relaxed)) {
    if (options_.external_shutdown != nullptr && options_.external_shutdown->cancelled()) {
      request_shutdown();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void MappingServer::request_shutdown() {
  if (draining_.exchange(true)) return;
  if (!started_.load(std::memory_order_relaxed)) return;
  // 1. Stop the intake: closed listeners end the accept loops, a closed
  //    queue ends the workers once their current request finishes.
  for (const int fd : listen_fds_) ::shutdown(fd, SHUT_RDWR);
  // 2. Cancel everything queued or running — running flows wind down to
  //    best-so-far under their budgets' cancel checks.
  queue_->cancel_all();
  queue_->close();
  // 3. Every still-queued admission gets its record now: the JSONL stream
  //    stays complete across the drain (the fork drill asserts exactly
  //    this), and connected clients hear why their request ended.
  for (AdmissionQueue::Ticket& ticket : queue_->drain()) {
    BatchRecord record = request_shell_record(
        ticket.request, ticket.request.blif.empty()
                            ? ticket.request.path
                            : "blif:" + hex64(fnv1a64(ticket.request.blif)));
    record.skipped = true;
    record.status = Status::kCancelled;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    emit_record(ticket, record);
  }
}

void MappingServer::wait() {
  if (!started_.load(std::memory_order_relaxed)) return;
  if (drained_.exchange(true)) return;
  for (std::thread& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  if (monitor_.joinable()) monitor_.join();
  // Readers block in read(): shut the sockets down to unblock them, then
  // join. The fds themselves are closed by each reader as it exits.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, conn] : connections_) conns.push_back(conn);
  }
  for (const auto& conn : conns) {
    const std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  if (!options_.socket_path.empty()) ::unlink(options_.socket_path.c_str());
}

std::string MappingServer::stats_json() const {
  std::string s = "{\"reply\":\"stats\",\"server\":{";
  s += "\"admitted\":" + std::to_string(admitted());
  s += ",\"completed\":" + std::to_string(completed());
  s += ",\"failed\":" + std::to_string(failed());
  s += ",\"cancelled\":" + std::to_string(cancelled());
  s += ",\"rejected\":" + std::to_string(rejected());
  s += ",\"poison_blocked\":" + std::to_string(poison_blocked());
  s += ",\"retries\":" + std::to_string(retries_.load(std::memory_order_relaxed));
  s += ",\"queue_depth\":" + std::to_string(queue_->depth());
  s += ",\"in_flight\":" + std::to_string(queue_->in_flight());
  s += ",\"high_queued\":" + std::to_string(queue_->high_depth());
  s += ",\"high_served\":" + std::to_string(queue_->high_served());
  s += ",\"normal_served\":" + std::to_string(queue_->normal_served());
  s += ",\"workers\":" + std::to_string(std::max(1, options_.workers));
  s += ",\"draining\":";
  s += draining() ? "true" : "false";
  s += ",\"jsonl_faults\":" + std::to_string(jsonl_faults());
  s += "},\"budget\":{\"total_ms\":" + std::to_string(pool_->total());
  s += ",\"remaining_ms\":" + std::to_string(pool_->remaining());
  s += "}";
  if (options_.cache != nullptr) {
    const FlowCache& cache = *options_.cache;
    s += ",\"cache\":{";
    s += "\"hits\":" + std::to_string(cache.hits());
    s += ",\"misses\":" + std::to_string(cache.misses());
    s += ",\"stores\":" + std::to_string(cache.stores());
    s += ",\"rejects\":" + std::to_string(cache.rejects());
    s += ",\"near_hits\":" + std::to_string(cache.near_hits());
    s += ",\"recovered_entries\":" + std::to_string(cache.recovered_entries());
    s += ",\"recovered_tmp\":" + std::to_string(cache.recovered_tmp());
    s += ",\"recovered_sidecars\":" + std::to_string(cache.recovered_sidecars());
    s += ",\"store_retries\":" + std::to_string(cache.retries());
    s += ",\"hot_hits\":" + std::to_string(cache.hot_hits());
    s += ",\"hot_evictions\":" + std::to_string(cache.hot_evictions());
    s += ",\"hot_entries\":" + std::to_string(cache.hot_entries());
    s += ",\"hot_bytes\":" + std::to_string(cache.hot_bytes());
    s += "}";
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    s += ",\"portfolio\":{\"runs\":" + std::to_string(portfolio_runs_);
    s += ",\"cancelled_engines\":" + std::to_string(portfolio_cancelled_engines_);
    s += ",\"cancelled_wall_saved_seconds\":" + json_double(portfolio_saved_seconds_);
    s += ",\"wins\":{";
    bool first_win = true;
    for (const auto& [engine, wins] : portfolio_wins_) {
      if (!first_win) s += ",";
      first_win = false;
      json_append_string(s, engine);
      s += ":" + std::to_string(wins);
    }
    s += "}}";
    s += ",\"ledger\":{\"probes\":" + std::to_string(total_probes_);
    s += ",\"imported_probes\":" + std::to_string(imported_probes_);
    s += "},\"flow_seconds\":" + json_double(flow_seconds_);
    s += ",\"stages\":{";
    bool first = true;
    for (const auto& [name, seconds] : stage_seconds_) {
      if (!first) s += ",";
      first = false;
      json_append_string(s, name);
      s += ":{\"seconds\":" + json_double(seconds);
      const auto runs = stage_runs_.find(name);
      s += ",\"runs\":" +
           std::to_string(runs == stage_runs_.end() ? 0 : runs->second) + "}";
    }
    s += "}";
  }
  {
    s += ",\"failpoints\":{";
    bool first = true;
    for (const auto& [site, count] : failpoint::trigger_counts()) {
      if (!first) s += ",";
      first = false;
      json_append_string(s, site);
      s += ":" + std::to_string(count);
    }
    s += "}";
  }
  if (options_.flow.trace != nullptr) {
    s += ",\"trace\":{";
    bool first = true;
    for (const auto& [name, value] : options_.flow.trace->totals()) {
      if (!first) s += ",";
      first = false;
      json_append_string(s, name);
      s += ":" + std::to_string(value);
    }
    s += "}";
  }
  s += "}";
  return s;
}

}  // namespace turbosyn
